/**
 * Figure 6: Devito acoustic benchmark on the WSE3 (large problem size)
 * vs 128 A100 GPUs (Tursa, MPI+OpenACC) and 128 dual-EPYC-7742 nodes
 * (ARCHER2, MPI+OpenMP), in GPts/s. The cluster baselines use the
 * calibrated analytic memory-bound models (see model/cluster_model.h
 * and DESIGN.md §1 for the substitution rationale).
 */

#include "bench_common.h"
#include "model/cluster_model.h"
#include "model/flops.h"

using namespace wsc;

int
main()
{
    printf("Figure 6: acoustic throughput, WSE3 vs cluster baselines "
           "(GPts/s)\n");
    bench::printRule('=');

    fe::Benchmark bench =
        fe::makeAcoustic(fe::largeSize().nx, fe::largeSize().ny, 12);
    model::WaferPerf wse3 = model::measureBenchmark(
        bench, wse::ArchParams::wse3(), bench::defaultMeasure());

    double bytesPerPoint = model::acousticBytesPerPointCacheMachine();
    model::ClusterSpec gpus = model::tursaA100Cluster();
    model::ClusterSpec cpus = model::archer2CpuCluster();
    double gpuGpts = gpus.gptsPerSec(bytesPerPoint);
    double cpuGpts = cpus.gptsPerSec(bytesPerPoint);

    printf("%-44s %12s %9s\n", "system", "GPts/s", "WSE3/x");
    bench::printRule();
    printf("%-44s %12.0f %9s\n", "WSE3 (ours, simulated+extrapolated)",
           wse3.gptsPerSec, "1.0");
    printf("%-44s %12.0f %8.1fx\n", gpus.name.c_str(), gpuGpts,
           wse3.gptsPerSec / gpuGpts);
    printf("%-44s %12.0f %8.1fx\n", cpus.name.c_str(), cpuGpts,
           wse3.gptsPerSec / cpuGpts);
    bench::printRule('=');
    printf("Paper shape: WSE3 ~14x the 128-A100 cluster and ~20x the "
           "128-node\nCPU system for time-to-solution at this problem "
           "size.\n");
    printf("(Assuming perfect CPU scaling, ~%.0f%% of ARCHER2 would "
           "match one WSE3.)\n",
           100.0 * wse3.gptsPerSec / (cpuGpts / 128.0) / 5860.0);
    return 0;
}
