/**
 * Compile-service throughput bench (BENCH_pr8.json).
 *
 * Drives wsc::service::CompileService with the five paper workloads at
 * several worker counts and reports requests/sec plus p50/p99 service
 * latency (queue + work) per scenario:
 *
 *   - cold: every request bypasses the artifact cache — the sustained
 *     full-pipeline compile rate, i.e. the context-recycling path.
 *   - warm: cache enabled, one warmup round — steady state is all
 *     cache hits, the request-deduplication path.
 *
 * Usage: service_throughput [out.json] [requests-per-scenario]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "service/compile_service.h"
#include "service/workload_requests.h"

using namespace wsc;

namespace {

struct Scenario
{
    std::string name;
    int threads;
    bool bypassCache;
    int requests;
    double wallSeconds = 0.0;
    double requestsPerSec = 0.0;
    double p50Micros = 0.0;
    double p99Micros = 0.0;
    double meanWorkMicros = 0.0;
    uint64_t cacheHits = 0;
    uint64_t contextsCreated = 0;
    uint64_t contextsRecycled = 0;
};

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

void
runScenario(Scenario &s)
{
    std::vector<service::CompileRequest> workloads =
        service::allWorkloadRequests(8, 8, 2);

    service::ServiceConfig config;
    config.threads = s.threads;
    service::CompileService svc(config);

    if (!s.bypassCache) {
        // Warmup: populate the cache so the timed run measures hits.
        for (const service::CompileRequest &request : workloads)
            svc.compile(request);
    }

    std::vector<std::future<service::CompileReply>> replies;
    replies.reserve(s.requests);
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < s.requests; ++i) {
        service::CompileRequest request = workloads[i % workloads.size()];
        request.bypassCache = s.bypassCache;
        replies.push_back(svc.submit(std::move(request)));
    }

    std::vector<double> latencies;
    latencies.reserve(replies.size());
    double workSum = 0.0;
    for (std::future<service::CompileReply> &f : replies) {
        service::CompileReply reply = f.get();
        if (!reply.ok) {
            std::fprintf(stderr, "FAILED request %s: %s\n",
                         reply.name.c_str(), reply.error.c_str());
            std::exit(1);
        }
        latencies.push_back(reply.queueMicros + reply.workMicros);
        workSum += reply.workMicros;
    }
    s.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();

    std::sort(latencies.begin(), latencies.end());
    s.requestsPerSec = s.requests / s.wallSeconds;
    s.p50Micros = percentile(latencies, 0.50);
    s.p99Micros = percentile(latencies, 0.99);
    s.meanWorkMicros = workSum / s.requests;

    service::ServiceStats stats = svc.stats();
    s.cacheHits = stats.cache.hits;
    s.contextsCreated = stats.contextsCreated;
    s.contextsRecycled = stats.contextsRecycled;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *outPath = argc > 1 ? argv[1] : "BENCH_pr8.json";
    int requests = argc > 2 ? std::atoi(argv[2]) : 200;

    std::vector<Scenario> scenarios = {
        {"cold_t1", 1, true, requests},
        {"cold_t2", 2, true, requests},
        {"cold_t4", 4, true, requests},
        {"warm_t1", 1, false, requests},
        {"warm_t4", 4, false, requests},
    };
    for (Scenario &s : scenarios) {
        runScenario(s);
        std::printf("%-8s threads=%d  %8.1f req/s  p50 %8.1f us  "
                    "p99 %8.1f us  hits %llu\n",
                    s.name.c_str(), s.threads, s.requestsPerSec,
                    s.p50Micros, s.p99Micros,
                    static_cast<unsigned long long>(s.cacheHits));
    }

    std::FILE *out = std::fopen(outPath, "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", outPath);
        return 1;
    }
    char stamp[64] = "unknown";
    std::time_t now = std::time(nullptr);
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%S%z",
                  std::localtime(&now));
    std::fprintf(out,
                 "{\n"
                 "  \"context\": {\n"
                 "    \"date\": \"%s\",\n"
                 "    \"executable\": \"%s\",\n"
                 "    \"requests_per_scenario\": %d,\n"
                 "    \"workloads\": [\"jacobian\", \"diffusion\", "
                 "\"acoustic\", \"seismic\", \"uvkbe\"],\n"
                 "    \"grid\": \"8x8, reduced z, 2 timesteps\"\n"
                 "  },\n"
                 "  \"benchmarks\": [\n",
                 stamp, argv[0], requests);
    for (size_t i = 0; i < scenarios.size(); ++i) {
        const Scenario &s = scenarios[i];
        std::fprintf(
            out,
            "    {\n"
            "      \"name\": \"service_throughput/%s\",\n"
            "      \"threads\": %d,\n"
            "      \"bypass_cache\": %s,\n"
            "      \"requests\": %d,\n"
            "      \"wall_seconds\": %.6f,\n"
            "      \"requests_per_second\": %.2f,\n"
            "      \"latency_p50_us\": %.2f,\n"
            "      \"latency_p99_us\": %.2f,\n"
            "      \"mean_work_us\": %.2f,\n"
            "      \"cache_hits\": %llu,\n"
            "      \"contexts_created\": %llu,\n"
            "      \"contexts_recycled\": %llu\n"
            "    }%s\n",
            s.name.c_str(), s.threads, s.bypassCache ? "true" : "false",
            s.requests, s.wallSeconds, s.requestsPerSec, s.p50Micros,
            s.p99Micros, s.meanWorkMicros,
            static_cast<unsigned long long>(s.cacheHits),
            static_cast<unsigned long long>(s.contextsCreated),
            static_cast<unsigned long long>(s.contextsRecycled),
            i + 1 < scenarios.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", outPath);
    return 0;
}
