/**
 * Table 1: lines-of-code comparison — generated CSL kernel only,
 * entire CSL (kernel + layout + runtime communications library), and
 * the DSL source the scientist writes.
 */

#include "bench_common.h"
#include "codegen/csl_emitter.h"
#include "codegen/loc_counter.h"
#include "dialects/all.h"
#include "transforms/pipeline.h"

using namespace wsc;

int
main()
{
    printf("Table 1: Lines of Code, generated CSL vs DSL source\n");
    bench::printRule('=');
    printf("%-12s %-9s %14s %12s %14s\n", "benchmark", "frontend",
           "CSL kernel", "CSL entire", "DSL (ours)");
    bench::printRule();

    int64_t libraryLoc =
        codegen::countLoc(codegen::stencilCommsLibrarySource());

    const char *names[] = {"Seismic", "Acoustic", "Diffusion",
                           "Jacobian", "UVKBE"};
    for (const char *name : names) {
        fe::Benchmark bench = bench::paperBenchmark(
            name, fe::largeSize().nx, fe::largeSize().ny, 100);
        ir::Context ctx;
        dialects::registerAllDialects(ctx);
        ir::OwningOp module = bench.program.emit(ctx);
        transforms::runPipeline(module.get());
        codegen::EmittedCsl csl = codegen::emitCsl(module.get());

        int64_t kernel = codegen::countLoc(csl.programFile);
        int64_t entire = kernel + codegen::countLoc(csl.layoutFile) +
                         libraryLoc;
        int64_t dsl = codegen::countLoc(bench.dslSource);
        printf("%-12s %-9s %14lld %12lld %14lld\n", name,
               bench.frontend.c_str(), static_cast<long long>(kernel),
               static_cast<long long>(entire),
               static_cast<long long>(dsl));
    }
    bench::printRule('=');
    printf("Runtime communications library: %lld LoC (counted once in "
           "'entire').\n",
           static_cast<long long>(libraryLoc));
    printf("Paper shape: kernels ~180-210 LoC, entire ~960-1000 LoC, "
           "DSL 28-81 LoC —\nan order of magnitude less code for the "
           "scientist.\n");
    return 0;
}
