/**
 * @file
 * Shared helpers for the paper-figure benchmark harnesses.
 *
 * All harnesses print the paper's rows/series from *measured* simulator
 * runs (reduced step counts, steady-state extrapolation; DESIGN.md §4).
 * Absolute numbers are not expected to match the authors' testbed — the
 * shape (orderings, rough factors, crossovers) is the reproduction
 * target; EXPERIMENTS.md records paper-vs-measured for every row.
 */

#ifndef WSC_BENCH_BENCH_COMMON_H
#define WSC_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>

#include "frontends/benchmarks.h"
#include "model/wafer_model.h"

namespace wsc::bench {

/** Simulated steps used to reach steady state per benchmark. */
inline model::MeasureOptions
defaultMeasure(int simGrid = 0)
{
    model::MeasureOptions options;
    options.steps = 12;
    options.warmupSteps = 4;
    options.simGrid = simGrid;
    return options;
}

/** Reduced-step instance of a named paper benchmark at a problem size. */
inline fe::Benchmark
paperBenchmark(const std::string &name, int64_t nx, int64_t ny,
               int64_t steps = 12)
{
    if (name == "Jacobian")
        return fe::makeJacobian(nx, ny, steps);
    if (name == "Diffusion")
        return fe::makeDiffusion(nx, ny, steps);
    if (name == "Acoustic")
        return fe::makeAcoustic(nx, ny, steps);
    if (name == "Seismic")
        return fe::makeSeismic(nx, ny, steps);
    return fe::makeUvkbe(nx, ny);
}

inline void
printRule(char c = '-')
{
    for (int i = 0; i < 74; ++i)
        std::putchar(c);
    std::putchar('\n');
}

} // namespace wsc::bench

#endif // WSC_BENCH_BENCH_COMMON_H
