/**
 * Ablation of the §5.7 optimization passes on the seismic and acoustic
 * kernels: coefficient promotion (comms/compute interleaving), the
 * one-shot broadcast reduction, fmac fusion, varith
 * fuse-repeated-operands, and the chunk-count policy.
 */

#include "bench_common.h"
#include "support/error.h"
#include "dialects/all.h"
#include "transforms/pipeline.h"

using namespace wsc;

namespace {

/** Cycles/step, or a negative value when the 48 kB budget is blown. */
double
measureWith(const char *name, const transforms::PipelineOptions &options,
            int simGrid)
{
    fe::Benchmark bench = bench::paperBenchmark(name, 100, 100, 12);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get(), options);
    try {
        model::WaferPerf perf = model::measureLoweredModule(
            module.get(), bench, wse::ArchParams::wse3(),
            bench::defaultMeasure(simGrid));
        return perf.cyclesPerStep;
    } catch (const FatalError &) {
        // e.g. removing fmac fusion re-introduces the scratch buffers
        // that push the seismic column past the 48 kB PE memory.
        return -1.0;
    }
}

} // namespace

int
main()
{
    printf("Ablation: cycles/step on the WSE3 with each optimization "
           "disabled\n(relative slowdown vs the full pipeline)\n");
    bench::printRule('=');
    printf("%-34s %12s %12s\n", "configuration", "Seismic",
           "Acoustic");
    bench::printRule();

    struct Case
    {
        const char *label;
        void (*tweak)(transforms::PipelineOptions &);
    };
    const Case cases[] = {
        {"full pipeline", [](transforms::PipelineOptions &) {}},
        {"- coefficient promotion",
         [](transforms::PipelineOptions &o) {
             o.enableCoeffPromotion = false;
         }},
        {"- one-shot reduction",
         [](transforms::PipelineOptions &o) {
             o.enableOneShotReduction = false;
         }},
        {"- fmac fusion",
         [](transforms::PipelineOptions &o) {
             o.enableFmacFusion = false;
         }},
        {"- varith repeated-operand fusion",
         [](transforms::PipelineOptions &o) {
             o.enableVarithFusion = false;
         }},
        {"forced 2 chunks",
         [](transforms::PipelineOptions &o) { o.forceNumChunks = 2; }},
        {"forced 4 chunks",
         [](transforms::PipelineOptions &o) { o.forceNumChunks = 4; }},
    };

    double baseSeismic = 0;
    double baseAcoustic = 0;
    for (const Case &c : cases) {
        transforms::PipelineOptions options;
        c.tweak(options);
        double seismic = measureWith("Seismic", options, 13);
        double acoustic = measureWith("Acoustic", options, 9);
        if (baseSeismic == 0) {
            baseSeismic = seismic;
            baseAcoustic = acoustic;
        }
        auto cell = [](double v, double base) {
            if (v < 0)
                return std::string("  OOM>48kB");
            char text[32];
            snprintf(text, sizeof text, "%10.3fx", v / base);
            return std::string(text);
        };
        printf("%-34s %12s %12s\n", c.label,
               cell(seismic, baseSeismic).c_str(),
               cell(acoustic, baseAcoustic).c_str());
    }
    bench::printRule('=');
    printf("Expected shape: ablations cost cycles (>= ~1.0x within the "
           "+/-8%%\nstep-period noise of the queueing simulator); "
           "chunking trades cycles\nfor receive-buffer memory. OOM>48kB "
           "marks configurations whose buffers\nno longer fit a PE "
           "(fmac fusion is what makes the single-chunk seismic\n"
           "layout possible).\n");
    return 0;
}
