/**
 * Figure 7: roofline of the five benchmarks on the WSE3 (two points
 * each: all accesses from local memory, all accesses via fabric) plus
 * the acoustic benchmark on a single A100.
 */

#include "bench_common.h"
#include "model/cluster_model.h"
#include "model/flops.h"
#include "model/roofline.h"

using namespace wsc;

int
main()
{
    wse::ArchParams wse3 = wse::ArchParams::wse3();
    model::Roof memRoof{"WSE3 memory", wse3.peakFlops(),
                        wse3.memoryBandwidth()};
    model::Roof fabricRoof{"WSE3 fabric", wse3.peakFlops(),
                           wse3.fabricBandwidth()};

    printf("Figure 7: WSE3 roofline (f32)\n");
    printf("  peak %.2f PFLOP/s | memory BW %.2f PB/s | fabric BW "
           "%.2f PB/s\n",
           wse3.peakFlops() / 1e15, wse3.memoryBandwidth() / 1e15,
           wse3.fabricBandwidth() / 1e15);
    printf("  memory ridge %.3f FLOP/B | fabric ridge %.3f FLOP/B\n",
           memRoof.ridgeIntensity(), fabricRoof.ridgeIntensity());
    bench::printRule('=');
    printf("%-10s %9s %9s %12s %13s %13s\n", "benchmark", "AI(mem)",
           "AI(fab)", "TFLOP/s", "mem regime", "fabric regime");
    bench::printRule();

    const char *names[] = {"Jacobian", "Diffusion", "Acoustic",
                           "Seismic", "UVKBE"};
    for (const char *name : names) {
        fe::Benchmark bench = bench::paperBenchmark(
            name, fe::largeSize().nx, fe::largeSize().ny);
        model::WaferPerf perf = model::measureBenchmark(
            bench, wse3, bench::defaultMeasure());
        double aiMem = perf.work.algoMemArithmeticIntensity();
        double aiFab = perf.work.fabricArithmeticIntensity();
        printf("%-10s %9.3f %9.3f %12.1f %13s %13s\n", name, aiMem,
               aiFab, perf.flopsPerSec / 1e12,
               memRoof.isBandwidthBound(aiMem) ? "memory-bound"
                                               : "compute-bound",
               fabricRoof.isBandwidthBound(aiFab) ? "fabric-bound"
                                                  : "compute-bound");
    }

    // The A100 acoustic point.
    model::ClusterSpec a100 = model::singleA100();
    model::Roof a100Roof{"A100", a100.perDevicePeakFlops,
                         a100.perDeviceBandwidth};
    double bytesPerPoint = model::acousticBytesPerPointCacheMachine();
    double flopsPerPoint = 33.0; // r=2 acoustic update
    double ai = flopsPerPoint / bytesPerPoint;
    double achieved = a100.flopsPerSec(flopsPerPoint, bytesPerPoint);
    bench::printRule();
    printf("%-10s %9.3f %9s %12.1f %13s (A100 ridge %.2f)\n",
           "Acoustic*", ai, "-", achieved / 1e12,
           a100Roof.isBandwidthBound(ai) ? "memory-bound"
                                         : "compute-bound",
           a100Roof.ridgeIntensity());
    printf("  (* on a single A100: DRAM BW %.2f TB/s, peak %.2f "
           "TFLOP/s)\n",
           a100.perDeviceBandwidth / 1e12,
           a100.perDevicePeakFlops / 1e12);
    bench::printRule('=');
    printf("Paper shape: all WSE3 benchmarks compute-bound vs memory; "
           "all but\nJacobian compute-bound vs fabric; the A100 acoustic "
           "point memory-bound.\n");
    return 0;
}
