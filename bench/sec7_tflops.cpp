/**
 * Section 7 comparison numbers: sustained TFLOP/s of the Jacobian and
 * the 25-point seismic kernel on the CS-2 and CS-3 (the related-work
 * comparison against SPADA's 2-D Laplacian / UVKBE figures).
 */

#include "bench_common.h"

using namespace wsc;

int
main()
{
    printf("Section 7: sustained TFLOP/s on CS-2 / CS-3 (large size)\n");
    bench::printRule('=');
    printf("%-10s %14s %14s %10s\n", "kernel", "CS-2 TFLOP/s",
           "CS-3 TFLOP/s", "CS3/CS2");
    bench::printRule();
    for (const char *name : {"Jacobian", "Seismic", "UVKBE"}) {
        fe::Benchmark b2 = bench::paperBenchmark(
            name, fe::largeSize().nx, fe::largeSize().ny);
        model::WaferPerf w2 = model::measureBenchmark(
            b2, wse::ArchParams::wse2(), bench::defaultMeasure());
        fe::Benchmark b3 = bench::paperBenchmark(
            name, fe::largeSize().nx, fe::largeSize().ny);
        model::WaferPerf w3 = model::measureBenchmark(
            b3, wse::ArchParams::wse3(), bench::defaultMeasure());
        printf("%-10s %14.0f %14.0f %9.2fx\n", name,
               w2.flopsPerSec / 1e12, w3.flopsPerSec / 1e12,
               w3.flopsPerSec / w2.flopsPerSec);
    }
    bench::printRule('=');
    printf("Paper: Jacobian 169 / 313 TFLOP/s; Seismic 491 / 678 "
           "TFLOP/s.\n(SPADA: 2-D Laplacian 120 TFLOP/s, UVKBE ~150 "
           "TFLOP/s on CS-2.)\n");
    return 0;
}
