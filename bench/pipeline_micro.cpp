/**
 * Compile-time micro-benchmarks (google-benchmark): cost of the
 * individual pipeline stages and the full lowering per benchmark.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "codegen/csl_emitter.h"
#include "dialects/all.h"
#include "interp/csl_interpreter.h"
#include "transforms/pipeline.h"
#include "wse/simulator.h"

using namespace wsc;

namespace {

void
BM_FrontendEmit(benchmark::State &state)
{
    fe::Benchmark bench = fe::makeSeismic(100, 100, 12);
    for (auto _ : state) {
        ir::Context ctx;
        dialects::registerAllDialects(ctx);
        ir::OwningOp module = bench.program.emit(ctx);
        benchmark::DoNotOptimize(module.get());
    }
}
BENCHMARK(BM_FrontendEmit);

void
BM_IrConstruction(benchmark::State &state)
{
    // Raw IR build/teardown cost with a warm context: every iteration
    // creates a module, a 2000-op chain with constants and attributes,
    // and destroys it, so steady state is served entirely from the
    // arena free lists (see ir/arena.h).
    namespace bt = wsc::dialects::builtin;
    namespace ar = wsc::dialects::arith;
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    for (auto _ : state) {
        ir::OwningOp module = bt::createModule(ctx);
        ir::OpBuilder b(ctx);
        b.setInsertionPointToEnd(&module->region(0).front());
        ir::Value acc = ar::createConstantF32(b, 1.0);
        for (int i = 0; i < 999; ++i) {
            ir::Value c = ar::createConstantF32(b, (i & 7) * 0.5);
            acc = ar::createAddF(b, acc, c);
        }
        benchmark::DoNotOptimize(module.get());
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_IrConstruction);

void
BM_FullPipeline(benchmark::State &state)
{
    const char *names[] = {"Jacobian", "Diffusion", "Acoustic",
                           "Seismic", "UVKBE"};
    const char *name = names[state.range(0)];
    fe::Benchmark bench = bench::paperBenchmark(name, 100, 100, 12);
    for (auto _ : state) {
        ir::Context ctx;
        dialects::registerAllDialects(ctx);
        ir::OwningOp module = bench.program.emit(ctx);
        transforms::runPipeline(module.get());
        benchmark::DoNotOptimize(module.get());
    }
    state.SetLabel(name);
}
BENCHMARK(BM_FullPipeline)->DenseRange(0, 4);

void
BM_CslEmission(benchmark::State &state)
{
    fe::Benchmark bench = fe::makeSeismic(100, 100, 12);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());
    for (auto _ : state) {
        codegen::EmittedCsl csl = codegen::emitCsl(module.get());
        benchmark::DoNotOptimize(csl.programFile.data());
    }
}
BENCHMARK(BM_CslEmission);

void
BM_SchedulerThroughput(benchmark::State &state)
{
    // Raw event-queue throughput: schedule and run N no-op events per
    // iteration. The schedule path must not allocate for inline-sized
    // callbacks, so this measures heap-sift plus dispatch cost only.
    const int64_t n = state.range(0);
    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1);
    uint64_t sink = 0;
    for (auto _ : state) {
        wse::Cycles base = sim.now();
        for (int64_t i = 0; i < n; ++i)
            sim.schedule(base + static_cast<wse::Cycles>(i % 64),
                         [&sink] { sink++; });
        sim.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerThroughput)->Arg(1 << 14);

void
BM_ShardedTimestep(benchmark::State &state)
{
    // Wall-clock scaling of the sharded engine on a large-fabric
    // acoustic workload (24x24 PEs); the argument is SimOptions::
    // threads. Results are cycle-identical across thread counts (see
    // the ShardedDeterminism suite); only host time changes. On a
    // single-core container the >1-thread runs serialize and mainly
    // measure barrier overhead.
    const int threads = static_cast<int>(state.range(0));
    fe::Benchmark bench = fe::makeAcoustic(24, 24, 8, 128);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());
    for (auto _ : state) {
        wse::Simulator sim(wse::ArchParams::wse3(), 24, 24,
                           wse::SimOptions{threads});
        interp::CslProgramInstance instance(sim, module.get());
        auto init = bench.init;
        instance.setFieldInit("p", [init](int x, int y, int z) {
            return init(0, x, y, z);
        });
        instance.configure();
        instance.launch();
        sim.run(4000000000ULL);
        benchmark::DoNotOptimize(sim.now());
    }
    state.SetLabel("acoustic 24x24");
    // Not "threads": that key is google-benchmark's own JSON field.
    state.counters["sim_threads"] = threads;
}
BENCHMARK(BM_ShardedTimestep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_ShardedTimestep2D(benchmark::State &state)
{
    // The paper-scale trajectory bench: a 96x96 acoustic grid under
    // different shard tilings and scheduler policies. Args:
    // (rows, cols, threads, adaptive). Row 0/0 encodes the sequential
    // baseline. Results are bit-identical across every row (pinned by
    // ShardedScale.Acoustic96Grid); on a 1-core container the parallel
    // rows mainly price the window/steal machinery, and the adaptive
    // rows show the barrier-collapse win.
    const int rows = static_cast<int>(state.range(0));
    const int cols = static_cast<int>(state.range(1));
    const int threads = static_cast<int>(state.range(2));
    const bool adaptive = state.range(3) != 0;
    fe::Benchmark bench = fe::makeAcoustic(96, 96, 2, 8);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());
    uint64_t windows = 0;
    for (auto _ : state) {
        wse::SimOptions options{threads};
        options.shardGrid = {rows, cols};
        options.adaptiveWindow = adaptive;
        wse::Simulator sim(wse::ArchParams::wse3(), 96, 96, options);
        interp::CslProgramInstance instance(sim, module.get());
        auto init = bench.init;
        instance.setFieldInit("p", [init](int x, int y, int z) {
            return init(0, x, y, z);
        });
        instance.configure();
        instance.launch();
        sim.run(4000000000ULL);
        benchmark::DoNotOptimize(sim.now());
        windows = sim.telemetry().windows;
    }
    state.SetLabel(rows == 0 ? "acoustic 96x96 sequential"
                             : "acoustic 96x96 tiled");
    state.counters["shard_rows"] = rows;
    state.counters["shard_cols"] = cols;
    state.counters["sim_threads"] = threads;
    state.counters["adaptive"] = adaptive ? 1 : 0;
    state.counters["windows"] = static_cast<double>(windows);
}
BENCHMARK(BM_ShardedTimestep2D)
    ->Args({0, 0, 1, 1})  // sequential baseline
    ->Args({1, 4, 4, 1})  // 1-D strips
    ->Args({2, 2, 4, 1})  // square tiles
    ->Args({2, 2, 4, 0})  // square tiles, fixed one-hop windows
    ->Args({4, 4, 4, 1})  // over-decomposed: stealing active
    ->Unit(benchmark::kMillisecond);

void
BM_InterpDispatch(benchmark::State &state)
{
    // Interpreter dispatch microbench: one simulated workload executed
    // through each execution tier, so the reference / switch / threaded
    // / fused deltas are visible in isolation (the simulated results
    // are bit-identical across all rows — see the InterpTiers suite).
    struct Mode
    {
        const char *label;
        bool reference;
        interp::DispatchKind dispatch;
        bool fuse;
    };
    static const Mode kModes[] = {
        {"reference", true, interp::DispatchKind::Auto, false},
        {"switch", false, interp::DispatchKind::Switch, false},
        {"switch+fused", false, interp::DispatchKind::Switch, true},
        {"threaded", false, interp::DispatchKind::Threaded, false},
        {"threaded+fused", false, interp::DispatchKind::Threaded, true},
    };
    const Mode &mode = kModes[state.range(0)];
    fe::Benchmark bench = fe::makeJacobian(7, 7, 64, 64);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());
    for (auto _ : state) {
        wse::Simulator sim(wse::ArchParams::wse3(), 7, 7);
        interp::CslProgramInstance instance(sim, module.get());
        instance.setReferenceMode(mode.reference);
        interp::InterpTuning tuning;
        tuning.dispatch = mode.dispatch;
        tuning.fuse = mode.fuse;
        instance.setTuning(tuning);
        auto init = bench.init;
        instance.setFieldInit("a", [init](int x, int y, int z) {
            return init(0, x, y, z);
        });
        instance.configure();
        instance.launch();
        sim.run(4000000000ULL);
        benchmark::DoNotOptimize(sim.now());
    }
    state.SetLabel(mode.label);
}
BENCHMARK(BM_InterpDispatch)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

void
BM_SimulatedTimestep(benchmark::State &state)
{
    // Simulator throughput: one steady-state timestep of Jacobian on a
    // 7x7 sub-grid (host wall-clock per simulated step).
    fe::Benchmark bench = fe::makeJacobian(7, 7, 64, 64);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());
    for (auto _ : state) {
        wse::Simulator sim(wse::ArchParams::wse3(), 7, 7);
        interp::CslProgramInstance instance(sim, module.get());
        auto init = bench.init;
        instance.setFieldInit("a", [init](int x, int y, int z) {
            return init(0, x, y, z);
        });
        instance.configure();
        instance.launch();
        sim.run(4000000000ULL);
        benchmark::DoNotOptimize(sim.now());
    }
    state.counters["steps"] = 64;
}
BENCHMARK(BM_SimulatedTimestep)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
