/**
 * Figure 5: the compiler-generated 25-point seismic kernel vs the
 * hand-written implementation of Jacquelin et al. (WSE2-only), across
 * the three problem sizes. Reported as speedup over the hand-written
 * WSE2 kernel, as in the paper.
 */

#include <cmath>

#include "baselines/handwritten_seismic.h"
#include "bench_common.h"

using namespace wsc;

namespace {

/** Steady-state cycles/step of the hand-written kernel on a sub-grid. */
double
handwrittenCyclesPerStep(int simGrid, int64_t nz, int64_t steps)
{
    wse::Simulator sim(wse::ArchParams::wse2(), simGrid, simGrid);
    baselines::HandwrittenSeismicConfig config;
    config.nz = nz;
    config.timesteps = steps;
    baselines::HandwrittenSeismic hw(sim, config);
    hw.setInit([](int f, int x, int y, int z) {
        return static_cast<float>(std::sin(0.1 * (x + y + z + f)));
    });
    hw.configure();
    hw.launch();
    sim.run(8000000000ULL);
    const std::vector<wse::Cycles> &marks =
        hw.stepMarks(simGrid / 2, simGrid / 2);
    size_t w = 4;
    return static_cast<double>(marks.back() - marks[w]) /
           static_cast<double>(marks.size() - 1 - w);
}

} // namespace

int
main()
{
    printf("Figure 5: generated seismic kernel vs hand-written "
           "(Jacquelin et al.)\nSpeedup over the hand-written WSE2 "
           "kernel, z = 450.\n");
    bench::printRule('=');
    printf("%-14s %12s %12s %12s\n", "size", "hand WSE2",
           "ours WSE2", "ours WSE3");
    bench::printRule();

    fe::ProblemSize sizes[] = {fe::smallSize(), fe::mediumSize(),
                               fe::largeSize()};
    const int64_t steps = 14;
    const int simGrid = 13;
    for (const fe::ProblemSize &size : sizes) {
        double hwCycles = handwrittenCyclesPerStep(simGrid, 450, steps);

        fe::Benchmark ours2 = fe::makeSeismic(size.nx, size.ny, steps);
        model::WaferPerf w2 = model::measureBenchmark(
            ours2, wse::ArchParams::wse2(),
            bench::defaultMeasure(simGrid));
        fe::Benchmark ours3 = fe::makeSeismic(size.nx, size.ny, steps);
        model::WaferPerf w3 = model::measureBenchmark(
            ours3, wse::ArchParams::wse3(),
            bench::defaultMeasure(simGrid));

        // Same problem size: speedup = inverse cycles-per-step ratio,
        // with the WSE3's clock advantage applied.
        double clock2 = wse::ArchParams::wse2().clockGHz;
        double clock3 = wse::ArchParams::wse3().clockGHz;
        double oursWse2 = hwCycles / w2.cyclesPerStep;
        double oursWse3 =
            (hwCycles / clock2) / (w3.cyclesPerStep / clock3);
        printf("%-14s %12.2f %12.3f %12.3f\n",
               (std::to_string(size.nx) + "x" + std::to_string(size.ny) +
                "x450")
                   .c_str(),
               1.0, oursWse2, oursWse3);
    }
    bench::printRule('=');
    printf("Paper shape: ours(WSE2) up to ~1.08x the hand-written code "
           "(single\nchunk, trimmed columns, ~50%% fewer tasks); "
           "ours(WSE3) up to ~1.38x.\n");
    printf("Note: the steady-state interior metric is size-invariant "
           "here; the\npaper's mild size dependence comes from "
           "whole-wafer fill effects the\nsub-grid methodology "
           "deliberately factors out (DESIGN.md #4).\n");
    return 0;
}
