/**
 * Figure 4: performance of Jacobian (Flang), Diffusion (Devito),
 * Seismic (Cerebras) and UVKBE (PSyclone) on the WSE2 and WSE3 at the
 * large problem size (750x994), in GPts/s.
 */

#include "bench_common.h"

using namespace wsc;

int
main()
{
    printf("Figure 4: WSE2 vs WSE3, large problem size (750x994), "
           "GPts/s\n");
    printf("(simulated sub-grid, steady-state extrapolation; paper "
           "iteration\n counts are annotated, runs use reduced "
           "steps)\n");
    bench::printRule('=');
    printf("%-10s %-8s %12s %12s %9s %14s\n", "benchmark", "frontend",
           "WSE2 GPts/s", "WSE3 GPts/s", "WSE3/WSE2", "paper iters");
    bench::printRule();

    const char *names[] = {"Jacobian", "Diffusion", "Seismic", "UVKBE"};
    for (const char *name : names) {
        fe::Benchmark b2 =
            bench::paperBenchmark(name, fe::largeSize().nx,
                                  fe::largeSize().ny);
        fe::Benchmark b3 =
            bench::paperBenchmark(name, fe::largeSize().nx,
                                  fe::largeSize().ny);
        model::WaferPerf w2 = model::measureBenchmark(
            b2, wse::ArchParams::wse2(), bench::defaultMeasure());
        model::WaferPerf w3 = model::measureBenchmark(
            b3, wse::ArchParams::wse3(), bench::defaultMeasure());
        printf("%-10s %-8s %12.0f %12.0f %8.2fx %14lld\n", name,
               b2.frontend.c_str(), w2.gptsPerSec, w3.gptsPerSec,
               w3.gptsPerSec / w2.gptsPerSec,
               static_cast<long long>(b2.paperIterations));
    }
    bench::printRule('=');
    printf("Paper shape: every benchmark faster on WSE3 (upgraded "
           "switching\nlogic + newer generation), bars in the 10^3-10^4 "
           "GPts/s band.\n");
    return 0;
}
