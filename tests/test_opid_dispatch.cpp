/**
 * @file
 * PR 1 coverage: OpId interning semantics, equivalence of the pre-decoded
 * interpreter against the reference tree-walking evaluator, and fixpoint
 * behaviour of the worklist rewrite driver.
 */

#include "test_helpers.h"

#include "ir/pattern.h"

namespace wsc::test {
namespace {

namespace ar = dialects::arith;
namespace bt = dialects::builtin;
namespace csl = dialects::csl;
namespace fn = dialects::func;

//===----------------------------------------------------------------------===
// OpId interning
//===----------------------------------------------------------------------===

TEST(OpIdTest, InterningIsIdempotent)
{
    ir::OpId a = ir::OpId::get("test.some_op");
    ir::OpId b = ir::OpId::get("test.some_op");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.raw(), b.raw());
    EXPECT_EQ(a.str(), "test.some_op");
}

TEST(OpIdTest, DistinctNamesGetDistinctIds)
{
    EXPECT_NE(ir::OpId::get("test.op_x"), ir::OpId::get("test.op_y"));
    EXPECT_NE(ar::kAddF, ar::kMulF);
    EXPECT_NE(ar::kAddF, ir::OpId());
    EXPECT_FALSE(ir::OpId().valid());
    EXPECT_TRUE(ar::kAddF.valid());
}

TEST(OpIdTest, DialectConstantsSpellTheirNames)
{
    EXPECT_EQ(ar::kConstant.str(), "arith.constant");
    EXPECT_EQ(csl::kModule.str(), "csl.module");
    // Implicit string view keeps string-based APIs source-compatible.
    std::string spelled = csl::kFadds;
    EXPECT_EQ(spelled, "csl.fadds");
}

TEST_F(IrTest, OperationCarriesInternedIdentity)
{
    ir::OwningOp module = bt::createModule(ctx);
    EXPECT_TRUE(module->is(bt::kModule));
    EXPECT_FALSE(module->is(csl::kModule));
    EXPECT_EQ(module->opId(), ir::OpId::get("builtin.module"));
    EXPECT_EQ(module->name(), "builtin.module");
}

TEST_F(IrTest, RegistryIsIndexedByOpId)
{
    EXPECT_TRUE(ctx.isRegisteredOp(ar::kConstant));
    EXPECT_TRUE(ctx.isRegisteredOp(csl::kReturn));
    EXPECT_NE(ctx.opInfo(csl::kReturn), nullptr);
    EXPECT_TRUE(ctx.opInfo(csl::kReturn)->isTerminator);
    EXPECT_FALSE(ctx.isRegisteredOp(ir::OpId::get("test.unregistered")));
}

//===----------------------------------------------------------------------===
// Dispatch equivalence: pre-decoded interpreter vs reference evaluator
//===----------------------------------------------------------------------===

/**
 * Runs `bench` end to end twice — once through the pre-decoded
 * instruction stream and once through the reference tree-walker — and
 * asserts bit-identical field columns and identical cycle counts.
 */
void
expectDispatchEquivalence(fe::Benchmark &bench, int nx, int ny)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    struct Run
    {
        wse::Cycles finalCycle = 0;
        uint64_t unblocks = 0;
        std::vector<std::vector<float>> columns;
        std::vector<std::vector<wse::Cycles>> marks;
    };
    auto runOnce = [&](bool reference) {
        wse::Simulator sim(wse::ArchParams::wse3(), nx, ny);
        interp::CslProgramInstance instance(sim, module.get());
        instance.setReferenceMode(reference);
        for (size_t f = 0; f < bench.program.numFields(); ++f) {
            int fi = static_cast<int>(f);
            auto init = bench.init;
            instance.setFieldInit(bench.program.fieldName(f),
                                  [init, fi](int x, int y, int z) {
                                      return init(fi, x, y, z);
                                  });
        }
        instance.configure();
        instance.launch();
        Run run;
        run.finalCycle = sim.run(4000000000ULL);
        run.unblocks = instance.unblockCount();
        for (size_t f = 0; f < bench.program.numFields(); ++f)
            for (int x = 0; x < nx; ++x)
                for (int y = 0; y < ny; ++y) {
                    run.columns.push_back(instance.readFieldColumn(
                        bench.program.fieldName(f), x, y));
                    run.marks.push_back(instance.stepMarks(x, y));
                }
        return run;
    };

    Run compiled = runOnce(false);
    Run reference = runOnce(true);

    EXPECT_EQ(compiled.finalCycle, reference.finalCycle);
    EXPECT_EQ(compiled.unblocks, reference.unblocks);
    ASSERT_EQ(compiled.columns.size(), reference.columns.size());
    for (size_t i = 0; i < compiled.columns.size(); ++i) {
        ASSERT_EQ(compiled.columns[i].size(), reference.columns[i].size());
        for (size_t z = 0; z < compiled.columns[i].size(); ++z)
            ASSERT_EQ(compiled.columns[i][z], reference.columns[i][z])
                << "column " << i << " diverges at z=" << z;
    }
    EXPECT_EQ(compiled.marks, reference.marks);
}

TEST(DispatchEquivalence, SeismicMatchesReferenceBitExactly)
{
    fe::Benchmark bench = fe::makeSeismic(8, 8, 3, 20);
    expectDispatchEquivalence(bench, 8, 8);
}

TEST(DispatchEquivalence, DiffusionMatchesReferenceBitExactly)
{
    fe::Benchmark bench = fe::makeDiffusion(7, 7, 4, 16);
    expectDispatchEquivalence(bench, 7, 7);
}

//===----------------------------------------------------------------------===
// Worklist driver
//===----------------------------------------------------------------------===

/** Dead-op elimination over arith: erase value ops with unused results. */
ir::NamedPattern
deadArithPattern()
{
    return {"erase-dead-arith",
            [](ir::Operation *op, ir::OpBuilder &) {
                if (op->opId() != ar::kConstant &&
                    op->opId() != ar::kAddF && op->opId() != ar::kMulF)
                    return false;
                if (op->hasResultUses())
                    return false;
                op->erase();
                return true;
            }};
}

TEST_F(IrTest, WorklistCascadesThroughInvalidatedDefs)
{
    // a dead chain c -> add -> mul: erasing the tail must re-enqueue the
    // defs so the whole chain dies in one driver run.
    ir::OwningOp owner = bt::createModule(ctx);
    ir::Operation *module = owner.get();
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module));
    ir::Value c = ar::createConstantF32(b, 2.0);
    ir::Value sum = ar::createAddF(b, c, c);
    ar::createMulF(b, sum, sum);
    ASSERT_EQ(countOps(module, ar::kMulF), 1);

    bool changed =
        ir::applyPatternsGreedily(module, {deadArithPattern()});
    EXPECT_TRUE(changed);
    EXPECT_EQ(countOps(module, ar::kMulF), 0);
    EXPECT_EQ(countOps(module, ar::kAddF), 0);
    EXPECT_EQ(countOps(module, ar::kConstant), 0);

    // Fixpoint: a second run has nothing left to do.
    EXPECT_FALSE(
        ir::applyPatternsGreedily(module, {deadArithPattern()}));
}

TEST_F(IrTest, WorklistReenqueuesUseCountGatedSiblings)
{
    // M is gated on its operand having exactly one use. At first visit
    // the gate fails (a dead sibling D also uses the value); when dce
    // erases D, the driver must re-enqueue M so the gated rewrite still
    // fires — the old full-rescan driver got this for free.
    ir::OpId deadOp = ir::OpId::get("test.dead");
    ir::OpId sinkOp = ir::OpId::get("test.sink2");
    ir::NamedPattern gated{
        "tag-single-use-mul",
        [](ir::Operation *op, ir::OpBuilder &) {
            if (op->opId() != ar::kMulF || op->hasAttr("tagged"))
                return false;
            if (op->operand(0).numUses() != 1)
                return false;
            op->setAttr("tagged",
                        ir::getIntAttr(op->context(), 1));
            return true;
        }};
    ir::NamedPattern dce{
        "erase-test-dead",
        [deadOp](ir::Operation *op, ir::OpBuilder &) {
            if (op->opId() != deadOp)
                return false;
            op->erase();
            return true;
        }};

    ir::OwningOp owner = bt::createModule(ctx);
    ir::Operation *module = owner.get();
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module));
    ir::Value c = ar::createConstantF32(b, 1.0);
    ir::Value v = ar::createAddF(b, c, c);
    ir::Operation *mul =
        ar::createMulF(b, v, c).definingOp(); // single use of v
    b.create(deadOp, {v});                    // dead second user of v
    b.create(sinkOp, {mul->result()});        // keep the mul alive

    EXPECT_TRUE(ir::applyPatternsGreedily(module, {gated, dce}));
    EXPECT_EQ(countOps(module, deadOp), 0);
    // The gate only opens after D dies; a driver that fails to
    // re-enqueue M leaves it untagged.
    EXPECT_TRUE(mul->hasAttr("tagged"));
}

TEST_F(IrTest, WorklistVisitsOpsCreatedByRewrites)
{
    // Pattern 1 expands mul(x, x) into add-chains; pattern 2 then
    // constant-folds adds of constants. Convergence requires the driver
    // to revisit ops created mid-run.
    ir::NamedPattern expand{
        "expand-mul",
        [](ir::Operation *op, ir::OpBuilder &b) {
            if (op->opId() != ar::kMulF)
                return false;
            if (op->operand(0) != op->operand(1))
                return false;
            ir::Value sum =
                ar::createAddF(b, op->operand(0), op->operand(1));
            ir::replaceOp(op, {sum});
            return true;
        }};
    ir::NamedPattern fold{
        "fold-add-of-constants",
        [](ir::Operation *op, ir::OpBuilder &b) {
            if (op->opId() != ar::kAddF)
                return false;
            ir::Operation *lhs = op->operand(0).definingOp();
            ir::Operation *rhs = op->operand(1).definingOp();
            if (!dialects::isa(lhs, ar::kConstant) ||
                !dialects::isa(rhs, ar::kConstant))
                return false;
            double value = ir::floatAttrValue(lhs->attr("value")) +
                           ir::floatAttrValue(rhs->attr("value"));
            ir::Value folded = ar::createConstantF32(b, value);
            ir::replaceOp(op, {folded});
            return true;
        }};

    ir::OwningOp owner = bt::createModule(ctx);
    ir::Operation *module = owner.get();
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module));
    ir::Value c = ar::createConstantF32(b, 3.0);
    ir::Value m = ar::createMulF(b, c, c);
    // Keep the result alive through a func.return-less anchor op.
    b.create(ir::OpId::get("test.sink"), {m});

    EXPECT_TRUE(ir::applyPatternsGreedily(
        module, {expand, fold, deadArithPattern()}));
    EXPECT_EQ(countOps(module, ar::kMulF), 0);
    EXPECT_EQ(countOps(module, ar::kAddF), 0);
    // The sink now consumes a single folded constant (6.0).
    ir::Operation *sink = firstOp(module, "test.sink");
    ASSERT_NE(sink, nullptr);
    ir::Operation *def = sink->operand(0).definingOp();
    ASSERT_TRUE(dialects::isa(def, ar::kConstant));
    EXPECT_DOUBLE_EQ(ir::floatAttrValue(def->attr("value")), 6.0);
    EXPECT_EQ(countOps(module, ar::kConstant), 1);
}

TEST(WorklistDriver, PipelineReachesSameFixpointAsRepeatedRuns)
{
    // Transform-heavy module: the full lowering pipeline must converge,
    // and re-running the final (pattern-driven) stages must change
    // nothing — i.e. the worklist driver reached the greedy fixpoint.
    fe::Benchmark bench = fe::makeSeismic(8, 8, 2, 20);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());
    std::string once = ir::printOp(module.get());

    transforms::PipelineOptions options;
    ir::PassManager pm = transforms::buildPipeline(options);
    // Lowered modules are outside the pipeline's input language, so
    // passes must be no-ops on an already-lowered module only for the
    // pattern-driven cleanup stages; instead assert print stability via
    // verifier + deterministic output of a fresh identical lowering.
    ir::OwningOp again = bench.program.emit(ctx);
    transforms::runPipeline(again.get());
    EXPECT_EQ(once, ir::printOp(again.get()));
    ASSERT_TRUE(ir::succeeded(ir::verify(module.get())));
}

} // namespace
} // namespace wsc::test
