#include "test_helpers.h"

#include "transforms/csl_wrapper_hoist.h"
#include "transforms/distribute_stencil.h"
#include "transforms/stencil_inlining.h"
#include "transforms/stencil_to_csl_stencil.h"
#include "transforms/tensorize_z.h"
#include "transforms/varith_transforms.h"

namespace wsc::test {
namespace {

namespace st = dialects::stencil;
namespace cs = dialects::csl_stencil;
namespace cw = dialects::csl_wrapper;
namespace dmp = dialects::dmp;

class Group2Test : public IrTest
{
  protected:
    ir::OwningOp
    lowerToGroup2(fe::Benchmark &bench,
                  transforms::StencilToCslStencilOptions options = {})
    {
        ir::OwningOp module = bench.program.emit(ctx);
        ir::PassManager pm;
        pm.addPass(transforms::createStencilInliningPass());
        pm.addPass(transforms::createArithToVarithPass());
        pm.addPass(
            transforms::createVarithFuseRepeatedOperandsPass());
        pm.addPass(transforms::createDistributeStencilPass());
        pm.addPass(transforms::createTensorizeZPass());
        pm.addPass(transforms::createStencilToCslStencilPass(options));
        pm.addPass(transforms::createCslWrapperHoistPass());
        pm.run(module.get());
        return module;
    }
};

TEST_F(Group2Test, SwapBecomesCslStencilApply)
{
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 2, 16);
    ir::OwningOp module = lowerToGroup2(bench);
    EXPECT_EQ(countOps(module.get(), dmp::kSwap), 0);
    EXPECT_EQ(countOps(module.get(), st::kApply), 0);
    EXPECT_EQ(countOps(module.get(), cs::kApply), 1);
    EXPECT_TRUE(ir::verifies(module.get()));
}

TEST_F(Group2Test, ApplyCarriesCanonicalExchanges)
{
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 2, 16);
    ir::OwningOp module = lowerToGroup2(bench);
    ir::Operation *apply = firstOp(module.get(), cs::kApply);
    std::vector<dmp::Exchange> exchanges = cs::applyExchanges(apply);
    ASSERT_EQ(exchanges.size(), 8u);
    EXPECT_EQ(cs::canonicalExchangeOrder(exchanges), exchanges);
}

TEST_F(Group2Test, CoefficientsArePromoted)
{
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 2, 16);
    ir::OwningOp module = lowerToGroup2(bench);
    ir::Operation *apply = firstOp(module.get(), cs::kApply);
    ir::Attribute coeffs = apply->attr("coeffs");
    ASSERT_TRUE(coeffs);
    std::vector<double> values = ir::denseAttrValues(coeffs);
    ASSERT_EQ(values.size(), 8u);
    // Distance-1 and distance-2 coefficients of the r=2 Laplacian.
    const double c1 = 0.1 * 16.0 / 12.0;
    const double c2 = 0.1 * -1.0 / 12.0;
    int count1 = 0;
    int count2 = 0;
    for (double v : values) {
        if (std::abs(v - c1) < 1e-12)
            count1++;
        if (std::abs(v - c2) < 1e-12)
            count2++;
    }
    EXPECT_EQ(count1, 4);
    EXPECT_EQ(count2, 4);
}

TEST_F(Group2Test, PromotionCanBeDisabled)
{
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 2, 16);
    transforms::StencilToCslStencilOptions options;
    options.disableCoeffPromotion = true;
    ir::OwningOp module = lowerToGroup2(bench, options);
    ir::Operation *apply = firstOp(module.get(), cs::kApply);
    EXPECT_FALSE(apply->attr("coeffs"));
    // The receive region then carries the multiplies itself.
    int muls = 0;
    for (ir::Operation *op :
         cs::applyRecvBlock(apply)->opsVector())
        if (op->name() == "arith.mulf" || op->name() == "varith.mul")
            muls++;
    EXPECT_GT(muls, 0);
}

TEST_F(Group2Test, RecvRegionInsertsIntoAccumulator)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 2, 16);
    ir::OwningOp module = lowerToGroup2(bench);
    ir::Operation *apply = firstOp(module.get(), cs::kApply);
    ir::Block *recv = cs::applyRecvBlock(apply);
    EXPECT_EQ(recv->numArguments(), 3u);
    bool sawInsert = false;
    for (ir::Operation *op : recv->opsVector())
        if (op->name() == "tensor.insert_slice")
            sawInsert = true;
    EXPECT_TRUE(sawInsert);
    EXPECT_EQ(recv->terminator()->opId(), cs::kYield);
}

TEST_F(Group2Test, DoneRegionCombinesAccumulatorWithLocalTerms)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 2, 16);
    ir::OwningOp module = lowerToGroup2(bench);
    ir::Operation *apply = firstOp(module.get(), cs::kApply);
    ir::Block *done = cs::applyDoneBlock(apply);
    // Accumulator block arg (index 1) must feed the local combination.
    EXPECT_GT(done->argument(1).numUses(), 0u);
    // Jacobian's trailing multiply by 1/6 stays in the done region.
    int muls = 0;
    for (ir::Operation *op : done->opsVector())
        if (op->name() == "arith.mulf" || op->name() == "varith.mul")
            muls++;
    EXPECT_GE(muls, 1);
}

TEST_F(Group2Test, ChunkingRespectsMemoryBudget)
{
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 2, 704);
    // 8 sections x 700 x 4B = 22.4 kB; force a 12 kB budget -> chunks.
    transforms::StencilToCslStencilOptions options;
    options.recvBufferBudgetBytes = 12 * 1024;
    ir::OwningOp module = lowerToGroup2(bench, options);
    ir::Operation *apply = firstOp(module.get(), cs::kApply);
    EXPECT_GE(cs::applyNumChunks(apply), 2);
    // Receive buffer fits the budget.
    ir::Type recvType =
        cs::applyRecvBlock(apply)->argument(0).type();
    EXPECT_LE(ir::numElementsOf(recvType) * 4, 12 * 1024);
}

TEST_F(Group2Test, ForcedChunkCount)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 2, 16);
    transforms::StencilToCslStencilOptions options;
    options.forceNumChunks = 2;
    ir::OwningOp module = lowerToGroup2(bench, options);
    EXPECT_EQ(cs::applyNumChunks(firstOp(module.get(), cs::kApply)), 2);
}

TEST_F(Group2Test, UvkbeSplitsIntoTwoApplies)
{
    // Inlining fuses UVKBE into one apply with two communicated fields;
    // the conversion splits it back into a chain of two csl applies.
    fe::Benchmark bench = fe::makeUvkbe(8, 8, 16);
    ir::OwningOp module = lowerToGroup2(bench);
    EXPECT_EQ(countOps(module.get(), cs::kApply), 2);
    EXPECT_TRUE(ir::verifies(module.get()));
}

TEST_F(Group2Test, WrapperCarriesProgramParams)
{
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 2, 16);
    ir::OwningOp module = lowerToGroup2(bench);
    ir::Operation *wrapper = firstOp(module.get(), cw::kModule);
    ASSERT_NE(wrapper, nullptr);
    EXPECT_EQ(cw::moduleExtent(wrapper),
              std::make_pair(int64_t(8), int64_t(8)));
    std::map<std::string, int64_t> params;
    for (const cw::Param &p : cw::moduleParams(wrapper))
        params[p.name] = p.value;
    EXPECT_EQ(params.at("z_dim"), 16);
    EXPECT_EQ(params.at("pattern"), 2);
    // The kernel function lives in the program region now.
    EXPECT_EQ(countOps(module.get(), dialects::func::kFunc), 1);
    ir::Operation *kernel =
        firstOp(module.get(), dialects::func::kFunc);
    EXPECT_EQ(kernel->parentOp(), wrapper);
}

TEST_F(Group2Test, WrapperLayoutHasImports)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 2, 16);
    ir::OwningOp module = lowerToGroup2(bench);
    EXPECT_GE(countOps(module.get(), cw::kImport), 2);
}

} // namespace
} // namespace wsc::test
