/**
 * @file
 * Shared fixtures and builders for the wsestencil test suite.
 */

#ifndef WSC_TESTS_TEST_HELPERS_H
#define WSC_TESTS_TEST_HELPERS_H

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "dialects/all.h"
#include "frontends/benchmarks.h"
#include "support/error.h"
#include "interp/csl_interpreter.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "model/reference.h"
#include "transforms/pipeline.h"
#include "wse/simulator.h"

namespace wsc::test {

/** Fixture owning a context with every dialect registered. */
class IrTest : public ::testing::Test
{
  protected:
    IrTest() { dialects::registerAllDialects(ctx); }

    ir::Context ctx;
};

/** Count ops with the given identity under root. */
inline int
countOps(ir::Operation *root, ir::OpId id)
{
    int n = 0;
    root->walk([&](ir::Operation *op) {
        if (op->is(id))
            n++;
    });
    return n;
}

/** First op with the given identity under root (or nullptr). */
inline ir::Operation *
firstOp(ir::Operation *root, ir::OpId id)
{
    ir::Operation *found = nullptr;
    root->walk([&](ir::Operation *op) {
        if (!found && op->is(id))
            found = op;
    });
    return found;
}

/// @name Spelled-out op-name conveniences for test readability.
/// @{
inline int
countOps(ir::Operation *root, const char *name)
{
    return countOps(root, ir::OpId::get(name));
}

inline ir::Operation *
firstOp(ir::Operation *root, const char *name)
{
    return firstOp(root, ir::OpId::get(name));
}
/// @}

/**
 * Run a benchmark end to end (pipeline + simulator) and compare every
 * field against the reference executor. Returns the max relative error.
 *
 * `compareMargin` skips the outer x/y cells: stencil-inlining computes
 * fused kernels only on the joint interior of all fused accesses, so
 * programs whose statements have different access sets (UVKBE) are
 * compared on the region where the unfused reference and the fused
 * program agree by construction.
 */
inline double
endToEndError(fe::Benchmark &bench, const wse::ArchParams &arch, int nx,
              int ny, int64_t steps, int compareMargin = 0)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    EXPECT_TRUE(ir::succeeded(ir::verify(module.get())));
    ir::PipelineResult pipeline = transforms::runPipeline(module.get());
    EXPECT_TRUE(pipeline.succeeded) << pipeline.str();

    wse::Simulator sim(arch, nx, ny);
    interp::CslProgramInstance instance(sim, module.get());
    for (size_t f = 0; f < bench.program.numFields(); ++f) {
        int fi = static_cast<int>(f);
        auto init = bench.init;
        instance.setFieldInit(bench.program.fieldName(f),
                              [init, fi](int x, int y, int z) {
                                  return init(fi, x, y, z);
                              });
    }
    instance.configure();
    instance.launch();
    sim.run(4000000000ULL);
    EXPECT_EQ(instance.unblockCount(),
              static_cast<uint64_t>(nx) * static_cast<uint64_t>(ny));

    model::ReferenceExecutor ref(bench.program, bench.init);
    ref.run(steps);

    double maxErr = 0.0;
    for (size_t f = 0; f < bench.program.numFields(); ++f) {
        if (bench.program.isIntermediate(f))
            continue; // never written back to the host
        const std::string &name = bench.program.fieldName(f);
        for (int x = compareMargin; x < nx - compareMargin; ++x)
            for (int y = compareMargin; y < ny - compareMargin; ++y) {
                std::vector<float> col =
                    instance.readFieldColumn(name, x, y);
                for (size_t z = 0; z < col.size(); ++z) {
                    double r = ref.at(f, x, y,
                                      static_cast<int64_t>(z));
                    double err = std::abs(col[z] - r) /
                                 std::max(1.0, std::abs(r));
                    maxErr = std::max(maxErr, err);
                }
            }
    }
    return maxErr;
}

} // namespace wsc::test

#endif // WSC_TESTS_TEST_HELPERS_H
