#include "test_helpers.h"

#include "transforms/arith_to_linalg.h"
#include "transforms/bufferize.h"
#include "transforms/csl_wrapper_hoist.h"
#include "transforms/distribute_stencil.h"
#include "transforms/linalg_fuse_fmac.h"
#include "transforms/stencil_inlining.h"
#include "transforms/stencil_to_csl_stencil.h"
#include "transforms/tensorize_z.h"
#include "transforms/varith_transforms.h"

namespace wsc::test {
namespace {

namespace cs = dialects::csl_stencil;
namespace ln = dialects::linalg;

class Group3Test : public IrTest
{
  protected:
    ir::OwningOp
    lowerToGroup3(fe::Benchmark &bench, bool fuseFmac = true)
    {
        ir::OwningOp module = bench.program.emit(ctx);
        ir::PassManager pm;
        pm.addPass(transforms::createStencilInliningPass());
        pm.addPass(transforms::createArithToVarithPass());
        pm.addPass(
            transforms::createVarithFuseRepeatedOperandsPass());
        pm.addPass(transforms::createDistributeStencilPass());
        pm.addPass(transforms::createTensorizeZPass());
        pm.addPass(transforms::createStencilToCslStencilPass());
        pm.addPass(transforms::createCslWrapperHoistPass());
        pm.addPass(transforms::createBufferizePass());
        pm.addPass(transforms::createArithToLinalgPass());
        if (fuseFmac)
            pm.addPass(transforms::createLinalgFuseFmacPass());
        pm.run(module.get());
        return module;
    }
};

TEST_F(Group3Test, RegionsAreMemRefTyped)
{
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 2, 16);
    ir::OwningOp module = lowerToGroup3(bench);
    ir::Operation *apply = firstOp(module.get(), cs::kApply);
    ir::Block *recv = cs::applyRecvBlock(apply);
    EXPECT_TRUE(ir::isMemRef(recv->argument(0).type()));
    EXPECT_TRUE(ir::isMemRef(recv->argument(2).type()));
    ir::Block *done = cs::applyDoneBlock(apply);
    EXPECT_TRUE(ir::isMemRef(done->argument(1).type()));
    EXPECT_TRUE(ir::verifies(module.get()));
}

TEST_F(Group3Test, AccumulatorIsAllocated)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 2, 16);
    ir::OwningOp module = lowerToGroup3(bench);
    ir::Operation *apply = firstOp(module.get(), cs::kApply);
    ir::Operation *accDef = apply->operand(1).definingOp();
    ASSERT_NE(accDef, nullptr);
    EXPECT_EQ(accDef->name(), "memref.alloc");
    EXPECT_EQ(countOps(module.get(), "tensor.empty"), 0);
}

TEST_F(Group3Test, InsertSliceBecomesSubview)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 2, 16);
    ir::OwningOp module = lowerToGroup3(bench);
    EXPECT_EQ(countOps(module.get(), "tensor.insert_slice"), 0);
    ir::Operation *apply = firstOp(module.get(), cs::kApply);
    bool sawSubview = false;
    for (ir::Operation *op :
         cs::applyRecvBlock(apply)->opsVector())
        if (op->name() == "memref.subview")
            sawSubview = true;
    EXPECT_TRUE(sawSubview);
}

TEST_F(Group3Test, ArithBecomesDpsLinalg)
{
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 2, 16);
    ir::OwningOp module = lowerToGroup3(bench, /*fuseFmac=*/false);
    ir::Operation *apply = firstOp(module.get(), cs::kApply);
    // No value-form arithmetic remains in the regions.
    int arith = 0;
    apply->walk([&](ir::Operation *op) {
        if (op->name() == "arith.addf" || op->name() == "varith.add" ||
            op->name() == "arith.mulf" || op->name() == "varith.mul")
            arith++;
    });
    EXPECT_EQ(arith, 0);
    EXPECT_GT(countOps(apply, ln::kAdd), 0);
}

TEST_F(Group3Test, DoneRegionReusesAccumulatorInPlace)
{
    // The paper's Listing 5: linalg ops write into acc to save memory.
    fe::Benchmark bench = fe::makeJacobian(8, 8, 2, 16);
    ir::OwningOp module = lowerToGroup3(bench, /*fuseFmac=*/false);
    ir::Operation *apply = firstOp(module.get(), cs::kApply);
    ir::Block *done = cs::applyDoneBlock(apply);
    ir::Value acc = done->argument(1);
    bool accUsedAsOut = false;
    for (ir::Operation *op : done->opsVector()) {
        if (!ln::isLinalgOp(op))
            continue;
        if (op->operand(op->numOperands() - 1) == acc)
            accUsedAsOut = true;
    }
    EXPECT_TRUE(accUsedAsOut);
}

TEST_F(Group3Test, ResultGetsDedicatedBuffer)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 2, 16);
    ir::OwningOp module = lowerToGroup3(bench);
    ir::Operation *apply = firstOp(module.get(), cs::kApply);
    ir::Block *done = cs::applyDoneBlock(apply);
    ir::Value yielded = done->terminator()->operand(0);
    ir::Operation *def = yielded.definingOp();
    ASSERT_NE(def, nullptr);
    EXPECT_EQ(def->name(), "memref.alloc");
    EXPECT_TRUE(def->hasAttr("result_buffer"));
}

TEST_F(Group3Test, FmacFusionReplacesMulAddPairs)
{
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 2, 16);
    ir::OwningOp unfused = lowerToGroup3(bench, /*fuseFmac=*/false);
    fe::Benchmark bench2 = fe::makeDiffusion(8, 8, 2, 16);
    ir::OwningOp fused = lowerToGroup3(bench2, /*fuseFmac=*/true);
    EXPECT_EQ(countOps(unfused.get(), ln::kFmac), 0);
    // Diffusion's local z terms (4 of them) fuse to fmacs.
    EXPECT_GE(countOps(fused.get(), ln::kFmac), 4);
    EXPECT_LT(countOps(fused.get(), ln::kMul),
              countOps(unfused.get(), ln::kMul));
    EXPECT_TRUE(ir::verifies(fused.get()));
}

TEST_F(Group3Test, FmacFusionRemovesTemporaries)
{
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 2, 16);
    ir::OwningOp unfused = lowerToGroup3(bench, /*fuseFmac=*/false);
    fe::Benchmark bench2 = fe::makeDiffusion(8, 8, 2, 16);
    ir::OwningOp fused = lowerToGroup3(bench2, /*fuseFmac=*/true);
    EXPECT_LT(countOps(fused.get(), "memref.alloc"),
              countOps(unfused.get(), "memref.alloc"));
}

} // namespace
} // namespace wsc::test
