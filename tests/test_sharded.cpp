/**
 * @file
 * PR 5 + PR 10 coverage: the sharded parallel simulator.
 *
 * The determinism contract (docs/architecture.md §4): a threads=N run
 * under ANY shard tiling, window policy and stealing mode must be
 * cycle-identical and bit-identical in SimStats, step marks and field
 * contents to the threads=1 run. These tests pin that contract on all
 * five paper workloads across 1-D strips and several 2-D tilings,
 * exercise cross-shard boundary delivery ordering directly at the
 * fabric level, check the adaptive-window and work-stealing machinery
 * through the scheduler telemetry (which may vary; results may not),
 * and cover the allocation-recycling rings (activation frames, payload
 * slots, cross-shard outbox lanes).
 *
 * The ShardedDeterminism suite is also wired to `ctest -L sharded`;
 * the large-grid runs live in ShardedScale (same label, own budget).
 */

#include "test_helpers.h"

#include "wse/payload.h"

namespace wsc::test {
namespace {

/** Everything observable about one simulated run. */
struct RunResult
{
    wse::Cycles finalCycle = 0;
    wse::SimStats stats;
    uint64_t fabricHops = 0;
    uint64_t unblocks = 0;
    /** Concatenated per-PE step marks, row-major. */
    std::vector<wse::Cycles> marks;
    /** Concatenated bytes of the first field's columns, row-major. */
    std::vector<float> fields;

    bool
    operator==(const RunResult &o) const
    {
        return finalCycle == o.finalCycle &&
               stats.eventsProcessed == o.stats.eventsProcessed &&
               stats.waveletsSent == o.stats.waveletsSent &&
               stats.taskActivations == o.stats.taskActivations &&
               stats.dsdOps == o.stats.dsdOps &&
               stats.flops == o.stats.flops &&
               stats.memBytes == o.stats.memBytes &&
               fabricHops == o.fabricHops && unblocks == o.unblocks &&
               marks == o.marks && fields == o.fields;
    }
};

/** Compile once, run with the given options, capture everything.
 *  Also returns the run's scheduler telemetry through `telemetry`
 *  (execution shape — never part of the equality contract). */
RunResult
runWorkloadOpts(ir::Operation *module, fe::Benchmark &bench, int nx,
                int ny, wse::SimOptions options,
                wse::ShardingTelemetry *telemetry = nullptr)
{
    wse::Simulator sim(wse::ArchParams::wse3(), nx, ny,
                       std::move(options));
    interp::CslProgramInstance instance(sim, module);
    for (size_t f = 0; f < bench.program.numFields(); ++f) {
        int fi = static_cast<int>(f);
        auto init = bench.init;
        instance.setFieldInit(bench.program.fieldName(f),
                              [init, fi](int x, int y, int z) {
                                  return init(fi, x, y, z);
                              });
    }
    instance.configure();
    instance.launch();

    RunResult r;
    r.finalCycle = sim.run(4000000000ULL);
    r.stats = sim.stats();
    r.fabricHops = sim.fabric().waveletHops();
    r.unblocks = instance.unblockCount();
    const std::string &field = bench.program.fieldName(0);
    for (int x = 0; x < nx; ++x)
        for (int y = 0; y < ny; ++y) {
            const auto &m = instance.stepMarks(x, y);
            r.marks.insert(r.marks.end(), m.begin(), m.end());
            std::vector<float> col = instance.readFieldColumn(field, x, y);
            r.fields.insert(r.fields.end(), col.begin(), col.end());
        }
    if (telemetry)
        *telemetry = sim.telemetry();
    return r;
}

/** Compile once, run at the given thread count, capture everything. */
RunResult
runWorkload(ir::Operation *module, fe::Benchmark &bench, int nx, int ny,
            int threads)
{
    return runWorkloadOpts(module, bench, nx, ny,
                           wse::SimOptions{threads});
}

/** Expect a == b with per-member messages (tiling named in `what`). */
void
expectRunsEqual(const RunResult &sequential, const RunResult &other,
                const char *what)
{
    EXPECT_EQ(sequential.finalCycle, other.finalCycle) << what;
    EXPECT_EQ(sequential.stats.eventsProcessed,
              other.stats.eventsProcessed)
        << what;
    EXPECT_EQ(sequential.stats.waveletsSent, other.stats.waveletsSent)
        << what;
    EXPECT_EQ(sequential.stats.taskActivations,
              other.stats.taskActivations)
        << what;
    EXPECT_EQ(sequential.stats.dsdOps, other.stats.dsdOps) << what;
    EXPECT_EQ(sequential.stats.flops, other.stats.flops) << what;
    EXPECT_EQ(sequential.stats.memBytes, other.stats.memBytes) << what;
    EXPECT_EQ(sequential.fabricHops, other.fabricHops) << what;
    EXPECT_EQ(sequential.unblocks, other.unblocks) << what;
    EXPECT_EQ(sequential.marks, other.marks) << what;
    EXPECT_EQ(sequential.fields, other.fields) << what;
    EXPECT_TRUE(sequential == other) << what;
}

/**
 * threads=1 vs threads=4 (auto-tiled), 1-D column strips and three
 * distinct explicit 2-D tilings must all agree bit-for-bit, with
 * adaptive windows and work stealing at their (enabled) defaults.
 */
void
expectShardedEquivalence(fe::Benchmark bench, int nx, int ny)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    RunResult sequential = runWorkload(module.get(), bench, nx, ny, 1);
    expectRunsEqual(sequential,
                    runWorkload(module.get(), bench, nx, ny, 4),
                    "threads=4 (auto tiling)");

    struct TilingCase
    {
        wse::ShardGrid grid;
        const char *what;
    };
    const TilingCase tilings[] = {
        {{1, 4}, "1-D strips 1x4"},
        {{2, 2}, "2-D tiles 2x2"},
        {{4, 2}, "2-D tiles 4x2"},
        {{2, 4}, "2-D tiles 2x4"},
    };
    for (const TilingCase &t : tilings) {
        wse::SimOptions options{4};
        options.shardGrid = t.grid;
        expectRunsEqual(sequential,
                        runWorkloadOpts(module.get(), bench, nx, ny,
                                        options),
                        t.what);
    }
}

TEST(ShardedDeterminism, Jacobian)
{
    expectShardedEquivalence(fe::makeJacobian(7, 7, 4, 64), 7, 7);
}

TEST(ShardedDeterminism, Diffusion)
{
    expectShardedEquivalence(fe::makeDiffusion(7, 7, 4, 16), 7, 7);
}

TEST(ShardedDeterminism, Acoustic)
{
    expectShardedEquivalence(fe::makeAcoustic(8, 8, 3, 32), 8, 8);
}

TEST(ShardedDeterminism, Seismic)
{
    expectShardedEquivalence(fe::makeSeismic(8, 8, 3, 20), 8, 8);
}

TEST(ShardedDeterminism, Uvkbe)
{
    expectShardedEquivalence(fe::makeUvkbe(8, 8, 24), 8, 8);
}

TEST(ShardedDeterminism, ThreadCountsBeyondWidthClamp)
{
    // threads > width used to clamp to one column strip per column;
    // with 2-D tiling threads=16 on a 5x5 grid auto-derives a 4x4
    // tiling (25 PEs across 16 tiles) and still matches bit-for-bit.
    fe::Benchmark bench = fe::makeDiffusion(5, 5, 2, 16);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());
    RunResult a = runWorkload(module.get(), bench, 5, 5, 1);
    RunResult b = runWorkload(module.get(), bench, 5, 5, 16);
    EXPECT_TRUE(a == b);
}

//===----------------------------------------------------------------------===
// 2-D tiling resolution and the scheduler knobs (PR 10)
//===----------------------------------------------------------------------===

TEST(ShardedDeterminism, AutoShardGridDerivation)
{
    wse::ArchParams arch = wse::ArchParams::wse3();
    {
        // threads=4 on a square grid: most-square 2x2 tiling.
        wse::Simulator sim(arch, 8, 8, wse::SimOptions{4});
        EXPECT_EQ(sim.shardRows(), 2);
        EXPECT_EQ(sim.shardCols(), 2);
        EXPECT_EQ(sim.shardCount(), 4);
        EXPECT_EQ(sim.threads(), 4);
    }
    {
        // Height-1 grids degenerate to the classic column strips.
        wse::Simulator sim(arch, 6, 1, wse::SimOptions{6});
        EXPECT_EQ(sim.shardRows(), 1);
        EXPECT_EQ(sim.shardCols(), 6);
    }
    {
        // Width-1 grids tile along rows instead of clamping to 1.
        wse::Simulator sim(arch, 1, 6, wse::SimOptions{4});
        EXPECT_EQ(sim.shardRows(), 4);
        EXPECT_EQ(sim.shardCols(), 1);
    }
    {
        // threads=16 on 5x5: the largest fitting factorisation, 4x4.
        wse::Simulator sim(arch, 5, 5, wse::SimOptions{16});
        EXPECT_EQ(sim.shardRows(), 4);
        EXPECT_EQ(sim.shardCols(), 4);
        EXPECT_EQ(sim.threads(), 16);
    }
    {
        // Explicit tiling decouples shards from workers: six tiles can
        // be driven by two workers (the window scheduler deals and
        // steals shard-windows among them).
        wse::SimOptions options{2};
        options.shardGrid = {2, 3};
        wse::Simulator sim(arch, 6, 6, options);
        EXPECT_EQ(sim.shardCount(), 6);
        EXPECT_EQ(sim.shardRows(), 2);
        EXPECT_EQ(sim.shardCols(), 3);
        EXPECT_EQ(sim.threads(), 2);
    }
    {
        // Explicit tilings clamp to the grid extents.
        wse::SimOptions options{4};
        options.shardGrid = {9, 2};
        wse::Simulator sim(arch, 4, 3, options);
        EXPECT_EQ(sim.shardRows(), 3);
        EXPECT_EQ(sim.shardCols(), 2);
    }
}

TEST(ShardedDeterminism, TilingStressMatrix)
{
    // The tsan-gated stress matrix: one workload re-run under every
    // tiling shape in {1x4, 2x2, 4x2} must match threads=1 bit-for-bit
    // while the claim/steal machinery runs with fewer workers than
    // shards (the shape that maximises stealing).
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 4, 16);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());
    RunResult sequential = runWorkload(module.get(), bench, 8, 8, 1);
    const wse::ShardGrid tilings[] = {{1, 4}, {2, 2}, {4, 2}};
    for (const wse::ShardGrid &g : tilings) {
        for (int threads : {2, 4}) {
            wse::SimOptions options{threads};
            options.shardGrid = g;
            wse::ShardingTelemetry telemetry;
            RunResult run = runWorkloadOpts(module.get(), bench, 8, 8,
                                            options, &telemetry);
            expectRunsEqual(sequential, run, "tiling stress");
            EXPECT_GT(telemetry.windows, 0u);
            EXPECT_GT(telemetry.shardWindowsRun, 0u);
        }
    }
}

TEST(ShardedDeterminism, AdaptiveWindowReducesBarriers)
{
    // Adaptive windows are a pure scheduling policy: bit-identical
    // results, strictly fewer barrier windows than the fixed one-hop
    // policy on a grid with interior (non-boundary) activity.
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 4, 16);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    wse::SimOptions fixed{4};
    fixed.adaptiveWindow = false;
    wse::SimOptions adaptive{4};
    adaptive.adaptiveWindow = true;

    wse::ShardingTelemetry fixedT, adaptiveT;
    RunResult fixedRun = runWorkloadOpts(module.get(), bench, 8, 8,
                                         fixed, &fixedT);
    RunResult adaptiveRun = runWorkloadOpts(module.get(), bench, 8, 8,
                                            adaptive, &adaptiveT);
    expectRunsEqual(fixedRun, adaptiveRun, "adaptive vs fixed window");

    EXPECT_GT(fixedT.windows, 0u);
    EXPECT_LT(adaptiveT.windows, fixedT.windows)
        << "adaptive windows should collapse barriers (fixed="
        << fixedT.windows << ", adaptive=" << adaptiveT.windows << ")";
    // Same total simulated span, fewer windows => wider windows.
    EXPECT_GE(adaptiveT.windowCycles / std::max<uint64_t>(
                                          1, adaptiveT.windows),
              fixedT.windowCycles / std::max<uint64_t>(1,
                                                       fixedT.windows));
}

TEST(ShardedDeterminism, WorkStealingMatchesStaticAssignment)
{
    // More shards than workers: stealing on vs off vs sequential must
    // agree bit-for-bit; the window sequence (a deterministic quantity)
    // must also agree, while steals only ever happen with stealing on.
    fe::Benchmark bench = fe::makeJacobian(7, 7, 4, 64);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());
    RunResult sequential = runWorkload(module.get(), bench, 7, 7, 1);

    wse::SimOptions stealing{2};
    stealing.shardGrid = {2, 2};
    stealing.workStealing = true;
    wse::SimOptions pinned{2};
    pinned.shardGrid = {2, 2};
    pinned.workStealing = false;

    wse::ShardingTelemetry stealT, pinT;
    RunResult stolen = runWorkloadOpts(module.get(), bench, 7, 7,
                                       stealing, &stealT);
    RunResult static_ = runWorkloadOpts(module.get(), bench, 7, 7,
                                        pinned, &pinT);
    expectRunsEqual(sequential, stolen, "work stealing on");
    expectRunsEqual(sequential, static_, "work stealing off");
    EXPECT_EQ(stealT.windows, pinT.windows);
    EXPECT_EQ(stealT.shardWindowsRun, pinT.shardWindowsRun);
    EXPECT_EQ(pinT.steals, 0u);
}

TEST(ShardedDeterminism, OutboxSteadyStateAllocationFree)
{
    // Satellite contract: outbox lanes are cleared (capacity kept)
    // between windows, so lane growth happens only while reaching the
    // high-water mark — a long run must see a realloc count bounded by
    // the working set, orders of magnitude below the window count.
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 8, 16);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    // The fixed one-hop window maximises windows (one drain per hop).
    wse::SimOptions options{4};
    options.adaptiveWindow = false;
    wse::ShardingTelemetry telemetry;
    runWorkloadOpts(module.get(), bench, 8, 8, options, &telemetry);
    EXPECT_GT(telemetry.windows, 100u);
    // Growth to a high-water mark H costs O(log H) reallocations per
    // lane; 12 lanes (2x2 tiling) x a generous log bound still sits
    // far below one realloc per window.
    EXPECT_LT(telemetry.outboxReallocs, 150u);
    EXPECT_LT(telemetry.outboxReallocs, telemetry.windows / 4)
        << "windows=" << telemetry.windows
        << " reallocs=" << telemetry.outboxReallocs;
}

//===----------------------------------------------------------------------===
// Large-grid scenarios (ShardedScale: same `sharded` gate, own budget)
//===----------------------------------------------------------------------===

TEST(ShardedScale, Acoustic96Grid)
{
    // The paper-scale trajectory scenario: a 96x96 acoustic grid (the
    // README scenario table's large-grid run; examples/
    // large_grid_acoustic.cpp drives the same shape standalone) must
    // stay bit-identical across threads=1, 1-D strips and three
    // distinct 2-D tilings with adaptive windows + stealing enabled.
    fe::Benchmark bench = fe::makeAcoustic(96, 96, 2, 8);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    RunResult sequential =
        runWorkload(module.get(), bench, 96, 96, 1);
    struct TilingCase
    {
        wse::ShardGrid grid;
        const char *what;
    };
    const TilingCase tilings[] = {
        {{1, 4}, "96x96 1-D strips 1x4"},
        {{2, 2}, "96x96 2-D tiles 2x2"},
        {{4, 2}, "96x96 2-D tiles 4x2"},
        {{2, 4}, "96x96 2-D tiles 2x4"},
    };
    for (const TilingCase &t : tilings) {
        wse::SimOptions options{4};
        options.shardGrid = t.grid;
        wse::ShardingTelemetry telemetry;
        RunResult run = runWorkloadOpts(module.get(), bench, 96, 96,
                                        options, &telemetry);
        expectRunsEqual(sequential, run, t.what);
        EXPECT_GT(telemetry.windows, 0u);
    }
}

TEST(ShardedScale, Stress256Smoke)
{
    // Smoke-scale 256x256 stress config: one step, shallow columns —
    // enough to push 64k PEs through the cross-shard machinery at a
    // 4x4 tiling without blowing the CI budget.
    fe::Benchmark bench = fe::makeAcoustic(256, 256, 1, 8);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    RunResult sequential =
        runWorkload(module.get(), bench, 256, 256, 1);
    wse::SimOptions options{4};
    options.shardGrid = {4, 4};
    wse::ShardingTelemetry telemetry;
    RunResult tiled = runWorkloadOpts(module.get(), bench, 256, 256,
                                      options, &telemetry);
    expectRunsEqual(sequential, tiled, "256x256 4x4 tiles");
    EXPECT_GT(telemetry.windows, 0u);
    EXPECT_GT(telemetry.shardWindowsRun, telemetry.windows)
        << "a 16-shard window should run several shard-windows";
}

//===----------------------------------------------------------------------===
// Cross-shard boundary deliveries at the fabric level
//===----------------------------------------------------------------------===

struct Recorded
{
    int x;
    int distance;
    wse::Cycles at;
    float head;

    bool operator==(const Recorded &) const = default;
};

/**
 * Drives two overlapping eastward multicast streams across every shard
 * boundary of a 6x1 strip and records the deliveries. With one column
 * per shard every hop is a cross-shard mailbox handoff.
 */
std::vector<Recorded>
runBoundaryStreams(int threads)
{
    wse::Simulator sim(wse::ArchParams::wse3(), 6, 1,
                       wse::SimOptions{threads});
    // Recording is only touched by events owned by the receiving PEs;
    // collecting per-PE then flattening keeps the observation race-free.
    std::vector<std::vector<Recorded>> perPe(6);
    auto deliver = std::make_shared<const wse::DeliveryFn>(
        [&perPe](const wse::StreamDelivery &d,
                 const std::vector<float> &payload) {
            perPe[static_cast<size_t>(d.peX)].push_back(
                {d.peX, d.distance, d.completeAt, payload[0]});
        });
    std::vector<float> first(40, 1.0f);
    std::vector<float> second(40, 2.0f);
    std::vector<float> third(40, 3.0f);
    // Same link chain, same injection cycle: contention must resolve
    // identically at every thread count.
    sim.fabric().sendStream(0, 0, wse::Direction::East, {1, 3, 5}, first,
                            0, *deliver);
    sim.fabric().sendStream(0, 0, wse::Direction::East, {2, 4}, second, 0,
                            *deliver);
    sim.fabric().sendStream(1, 0, wse::Direction::East, {2, 4}, third, 10,
                            *deliver);
    sim.run();
    std::vector<Recorded> flat;
    for (const auto &pe : perPe)
        flat.insert(flat.end(), pe.begin(), pe.end());
    return flat;
}

TEST(ShardedDeterminism, BoundaryDeliveryOrdering)
{
    std::vector<Recorded> sequential = runBoundaryStreams(1);
    std::vector<Recorded> sharded = runBoundaryStreams(6);
    // Stream 1 delivers at 3 hops, streams 2 and 3 at 2 each.
    ASSERT_EQ(sequential.size(), 7u);
    EXPECT_EQ(sequential, sharded);

    // Per stream, farther hops land strictly later.
    for (size_t i = 0; i < sequential.size(); ++i)
        for (size_t j = 0; j < sequential.size(); ++j)
            if (sequential[i].head == sequential[j].head &&
                sequential[i].distance < sequential[j].distance)
                EXPECT_LT(sequential[i].at, sequential[j].at);
}

TEST(ShardedDeterminism, HostSendsConvergingAcrossShardsTieBreak)
{
    // Two host-initiated streams from senders living in different
    // shards converge on the middle PE at the same cycle with identical
    // (cycle, owner, creator=host) key prefixes: the tie must break by
    // the single host sequence counter, not by per-shard counters
    // (regression: per-shard host sequences made this order depend on
    // the thread count).
    std::vector<std::pair<float, wse::Cycles>> trace[2];
    for (int i = 0; i < 2; ++i) {
        wse::Simulator sim(wse::ArchParams::wse3(), 3, 1,
                           wse::SimOptions{i == 0 ? 1 : 3});
        auto record = [&trace, i](const wse::StreamDelivery &,
                                  const std::vector<float> &p) {
            // All deliveries land on PE (1,0): single-owner recording.
            trace[i].push_back({p[0], 0});
        };
        std::vector<float> fromEast(50, 2.0f);
        std::vector<float> fromWest(50, 1.0f);
        sim.fabric().sendStream(2, 0, wse::Direction::West, {1},
                                fromEast, 0, record);
        sim.fabric().sendStream(0, 0, wse::Direction::East, {1},
                                fromWest, 0, record);
        trace[i].back().second = sim.run();
    }
    ASSERT_EQ(trace[0].size(), 2u);
    EXPECT_EQ(trace[0], trace[1]);
}

TEST(ShardedDeterminism, ContendedLinkSerializesAcrossShards)
{
    // Two streams from the same sender crossing a shard boundary: the
    // second cannot land earlier than m cycles after the first.
    for (int threads : {1, 3}) {
        wse::Simulator sim(wse::ArchParams::wse3(), 3, 1,
                           wse::SimOptions{threads});
        const wse::Cycles m = 100;
        std::vector<wse::Cycles> landed;
        auto deliver = [&landed](const wse::StreamDelivery &d,
                                 const std::vector<float> &) {
            landed.push_back(d.completeAt);
        };
        std::vector<float> payload(m, 1.0f);
        sim.fabric().sendStream(0, 0, wse::Direction::East, {2}, payload,
                                0, deliver);
        sim.fabric().sendStream(0, 0, wse::Direction::East, {2}, payload,
                                0, deliver);
        sim.run();
        ASSERT_EQ(landed.size(), 2u);
        EXPECT_GE(std::max(landed[0], landed[1]),
                  std::min(landed[0], landed[1]) + m);
    }
}

//===----------------------------------------------------------------------===
// Recycling rings: activation frames and payload slots
//===----------------------------------------------------------------------===

TEST(ShardedDeterminism, FrameArenaRecyclesAcrossNestedActivations)
{
    // A stepped workload dispatches hundreds of compiled activations per
    // PE, each of which may nest further frames through csl.call. The
    // frame stack must serve virtually all of them from recycled
    // storage: fresh allocations are bounded by the nesting working set,
    // not by the activation count.
    fe::Benchmark bench = fe::makeJacobian(5, 5, 20, 32);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    wse::Simulator sim(wse::ArchParams::wse3(), 5, 5);
    interp::CslProgramInstance instance(sim, module.get());
    auto init = bench.init;
    instance.setFieldInit(bench.program.fieldName(0),
                          [init](int x, int y, int z) {
                              return init(0, x, y, z);
                          });
    instance.configure();
    instance.launch();
    sim.run(4000000000ULL);

    auto [acquires, fresh] = instance.frameStats();
    EXPECT_GT(acquires, sim.stats().taskActivations);
    EXPECT_GT(acquires, 8 * fresh)
        << "activation frames are not being recycled (acquires="
        << acquires << ", fresh=" << fresh << ")";
    // Every PE needs at least one frame, so some fresh allocations are
    // expected; the bound is the per-PE nesting depth, not steps.
    EXPECT_LE(fresh, 25u * 8u);
}

TEST(ShardedDeterminism, PayloadRingRecyclesSlots)
{
    // A chunked exchange workload acquires one payload slot per chunk
    // per sender. The ring's high-water mark tracks the genuine
    // in-flight working set (boundary PEs run ahead of interior PEs,
    // so early-arrival stashes legitimately pin slots — the hardware
    // equivalent of wavelets queued at the input ramps); recycling must
    // still serve most acquires, and every slot must come back once
    // the run drains.
    fe::Benchmark bench = fe::makeDiffusion(5, 5, 20, 16);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    wse::Simulator sim(wse::ArchParams::wse3(), 5, 5);
    interp::CslProgramInstance instance(sim, module.get());
    auto init = bench.init;
    instance.setFieldInit(bench.program.fieldName(0),
                          [init](int x, int y, int z) {
                              return init(0, x, y, z);
                          });
    instance.configure();
    instance.launch();
    sim.run(4000000000ULL);

    wse::PayloadPool &pool = sim.pe(0, 0).payloadPool();
    EXPECT_GT(pool.acquires(), 0u);
    EXPECT_GT(pool.acquires(), 2 * pool.created())
        << "payload slots are not being recycled (acquires="
        << pool.acquires() << ", created=" << pool.created() << ")";
    EXPECT_EQ(pool.liveSlots(), 0u)
        << "payload slots leaked past the end of the run";
}

TEST(ShardedDeterminism, PayloadRefCountingReturnsSlots)
{
    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1);
    wse::PayloadPool &pool = sim.pe(0, 0).payloadPool();
    {
        wse::PayloadRef a = pool.acquire();
        a.mutableData() = {1.0f, 2.0f};
        wse::PayloadRef b = a; // second reference pins the slot
        a.reset();
        EXPECT_TRUE(b.valid());
        EXPECT_EQ(b.data()[1], 2.0f);
    }
    // Both references dropped: the next acquire reuses the slot.
    wse::PayloadRef c = pool.acquire();
    EXPECT_EQ(pool.slotCount(), 1u);
    EXPECT_TRUE(c.data().empty()); // recycled slots come back cleared
}

TEST(ShardedDeterminism, SameCycleEventsOrderByOwnerPe)
{
    // The deterministic key orders same-cycle events of different PEs by
    // the owner's dense grid id, independent of activation order.
    wse::Simulator sim(wse::ArchParams::wse3(), 2, 1);
    std::vector<int> order;
    sim.pe(0, 0).registerTask("t", wse::TaskKind::Local,
                              [&](wse::TaskContext &) {
                                  order.push_back(0);
                              });
    sim.pe(1, 0).registerTask("t", wse::TaskKind::Local,
                              [&](wse::TaskContext &) {
                                  order.push_back(1);
                              });
    sim.pe(1, 0).activate("t", 100); // activated first, runs second
    sim.pe(0, 0).activate("t", 100);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

} // namespace
} // namespace wsc::test
