/**
 * @file
 * PR 5 coverage: the sharded parallel simulator.
 *
 * The determinism contract (docs/architecture.md): a threads=N run must
 * be cycle-identical and bit-identical in SimStats and field contents to
 * the threads=1 run. These tests pin that contract on all five paper
 * workloads, exercise cross-shard boundary delivery ordering directly
 * at the fabric level, and cover the two allocation-recycling rings the
 * PR introduced (interpreter activation frames, payload slots).
 *
 * The ShardedDeterminism suite is also wired to `ctest -L sharded`.
 */

#include "test_helpers.h"

#include "wse/payload.h"

namespace wsc::test {
namespace {

/** Everything observable about one simulated run. */
struct RunResult
{
    wse::Cycles finalCycle = 0;
    wse::SimStats stats;
    uint64_t fabricHops = 0;
    uint64_t unblocks = 0;
    /** Concatenated bytes of the first field's columns, row-major. */
    std::vector<float> fields;

    bool
    operator==(const RunResult &o) const
    {
        return finalCycle == o.finalCycle &&
               stats.eventsProcessed == o.stats.eventsProcessed &&
               stats.waveletsSent == o.stats.waveletsSent &&
               stats.taskActivations == o.stats.taskActivations &&
               stats.dsdOps == o.stats.dsdOps &&
               stats.flops == o.stats.flops &&
               stats.memBytes == o.stats.memBytes &&
               fabricHops == o.fabricHops && unblocks == o.unblocks &&
               fields == o.fields;
    }
};

/** Compile once, run at the given thread count, capture everything. */
RunResult
runWorkload(ir::Operation *module, fe::Benchmark &bench, int nx, int ny,
            int threads)
{
    wse::Simulator sim(wse::ArchParams::wse3(), nx, ny,
                       wse::SimOptions{threads});
    interp::CslProgramInstance instance(sim, module);
    for (size_t f = 0; f < bench.program.numFields(); ++f) {
        int fi = static_cast<int>(f);
        auto init = bench.init;
        instance.setFieldInit(bench.program.fieldName(f),
                              [init, fi](int x, int y, int z) {
                                  return init(fi, x, y, z);
                              });
    }
    instance.configure();
    instance.launch();

    RunResult r;
    r.finalCycle = sim.run(4000000000ULL);
    r.stats = sim.stats();
    r.fabricHops = sim.fabric().waveletHops();
    r.unblocks = instance.unblockCount();
    const std::string &field = bench.program.fieldName(0);
    for (int x = 0; x < nx; ++x)
        for (int y = 0; y < ny; ++y) {
            std::vector<float> col = instance.readFieldColumn(field, x, y);
            r.fields.insert(r.fields.end(), col.begin(), col.end());
        }
    return r;
}

/** threads=1 vs threads=4 must agree bit-for-bit. */
void
expectShardedEquivalence(fe::Benchmark bench, int nx, int ny)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    RunResult sequential = runWorkload(module.get(), bench, nx, ny, 1);
    RunResult sharded = runWorkload(module.get(), bench, nx, ny, 4);

    EXPECT_EQ(sequential.finalCycle, sharded.finalCycle);
    EXPECT_EQ(sequential.stats.eventsProcessed,
              sharded.stats.eventsProcessed);
    EXPECT_EQ(sequential.stats.waveletsSent, sharded.stats.waveletsSent);
    EXPECT_EQ(sequential.stats.taskActivations,
              sharded.stats.taskActivations);
    EXPECT_EQ(sequential.stats.dsdOps, sharded.stats.dsdOps);
    EXPECT_EQ(sequential.stats.flops, sharded.stats.flops);
    EXPECT_EQ(sequential.stats.memBytes, sharded.stats.memBytes);
    EXPECT_EQ(sequential.fabricHops, sharded.fabricHops);
    EXPECT_EQ(sequential.unblocks, sharded.unblocks);
    EXPECT_EQ(sequential.fields, sharded.fields);
    EXPECT_TRUE(sequential == sharded);
}

TEST(ShardedDeterminism, Jacobian)
{
    expectShardedEquivalence(fe::makeJacobian(7, 7, 4, 64), 7, 7);
}

TEST(ShardedDeterminism, Diffusion)
{
    expectShardedEquivalence(fe::makeDiffusion(7, 7, 4, 16), 7, 7);
}

TEST(ShardedDeterminism, Acoustic)
{
    expectShardedEquivalence(fe::makeAcoustic(8, 8, 3, 32), 8, 8);
}

TEST(ShardedDeterminism, Seismic)
{
    expectShardedEquivalence(fe::makeSeismic(8, 8, 3, 20), 8, 8);
}

TEST(ShardedDeterminism, Uvkbe)
{
    expectShardedEquivalence(fe::makeUvkbe(8, 8, 24), 8, 8);
}

TEST(ShardedDeterminism, ThreadCountsBeyondWidthClamp)
{
    // threads > width clamps to one shard per column and still matches.
    fe::Benchmark bench = fe::makeDiffusion(5, 5, 2, 16);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());
    RunResult a = runWorkload(module.get(), bench, 5, 5, 1);
    RunResult b = runWorkload(module.get(), bench, 5, 5, 16);
    EXPECT_TRUE(a == b);
}

//===----------------------------------------------------------------------===
// Cross-shard boundary deliveries at the fabric level
//===----------------------------------------------------------------------===

struct Recorded
{
    int x;
    int distance;
    wse::Cycles at;
    float head;

    bool operator==(const Recorded &) const = default;
};

/**
 * Drives two overlapping eastward multicast streams across every shard
 * boundary of a 6x1 strip and records the deliveries. With one column
 * per shard every hop is a cross-shard mailbox handoff.
 */
std::vector<Recorded>
runBoundaryStreams(int threads)
{
    wse::Simulator sim(wse::ArchParams::wse3(), 6, 1,
                       wse::SimOptions{threads});
    // Recording is only touched by events owned by the receiving PEs;
    // collecting per-PE then flattening keeps the observation race-free.
    std::vector<std::vector<Recorded>> perPe(6);
    auto deliver = std::make_shared<const wse::DeliveryFn>(
        [&perPe](const wse::StreamDelivery &d,
                 const std::vector<float> &payload) {
            perPe[static_cast<size_t>(d.peX)].push_back(
                {d.peX, d.distance, d.completeAt, payload[0]});
        });
    std::vector<float> first(40, 1.0f);
    std::vector<float> second(40, 2.0f);
    std::vector<float> third(40, 3.0f);
    // Same link chain, same injection cycle: contention must resolve
    // identically at every thread count.
    sim.fabric().sendStream(0, 0, wse::Direction::East, {1, 3, 5}, first,
                            0, *deliver);
    sim.fabric().sendStream(0, 0, wse::Direction::East, {2, 4}, second, 0,
                            *deliver);
    sim.fabric().sendStream(1, 0, wse::Direction::East, {2, 4}, third, 10,
                            *deliver);
    sim.run();
    std::vector<Recorded> flat;
    for (const auto &pe : perPe)
        flat.insert(flat.end(), pe.begin(), pe.end());
    return flat;
}

TEST(ShardedDeterminism, BoundaryDeliveryOrdering)
{
    std::vector<Recorded> sequential = runBoundaryStreams(1);
    std::vector<Recorded> sharded = runBoundaryStreams(6);
    // Stream 1 delivers at 3 hops, streams 2 and 3 at 2 each.
    ASSERT_EQ(sequential.size(), 7u);
    EXPECT_EQ(sequential, sharded);

    // Per stream, farther hops land strictly later.
    for (size_t i = 0; i < sequential.size(); ++i)
        for (size_t j = 0; j < sequential.size(); ++j)
            if (sequential[i].head == sequential[j].head &&
                sequential[i].distance < sequential[j].distance)
                EXPECT_LT(sequential[i].at, sequential[j].at);
}

TEST(ShardedDeterminism, HostSendsConvergingAcrossShardsTieBreak)
{
    // Two host-initiated streams from senders living in different
    // shards converge on the middle PE at the same cycle with identical
    // (cycle, owner, creator=host) key prefixes: the tie must break by
    // the single host sequence counter, not by per-shard counters
    // (regression: per-shard host sequences made this order depend on
    // the thread count).
    std::vector<std::pair<float, wse::Cycles>> trace[2];
    for (int i = 0; i < 2; ++i) {
        wse::Simulator sim(wse::ArchParams::wse3(), 3, 1,
                           wse::SimOptions{i == 0 ? 1 : 3});
        auto record = [&trace, i](const wse::StreamDelivery &,
                                  const std::vector<float> &p) {
            // All deliveries land on PE (1,0): single-owner recording.
            trace[i].push_back({p[0], 0});
        };
        std::vector<float> fromEast(50, 2.0f);
        std::vector<float> fromWest(50, 1.0f);
        sim.fabric().sendStream(2, 0, wse::Direction::West, {1},
                                fromEast, 0, record);
        sim.fabric().sendStream(0, 0, wse::Direction::East, {1},
                                fromWest, 0, record);
        trace[i].back().second = sim.run();
    }
    ASSERT_EQ(trace[0].size(), 2u);
    EXPECT_EQ(trace[0], trace[1]);
}

TEST(ShardedDeterminism, ContendedLinkSerializesAcrossShards)
{
    // Two streams from the same sender crossing a shard boundary: the
    // second cannot land earlier than m cycles after the first.
    for (int threads : {1, 3}) {
        wse::Simulator sim(wse::ArchParams::wse3(), 3, 1,
                           wse::SimOptions{threads});
        const wse::Cycles m = 100;
        std::vector<wse::Cycles> landed;
        auto deliver = [&landed](const wse::StreamDelivery &d,
                                 const std::vector<float> &) {
            landed.push_back(d.completeAt);
        };
        std::vector<float> payload(m, 1.0f);
        sim.fabric().sendStream(0, 0, wse::Direction::East, {2}, payload,
                                0, deliver);
        sim.fabric().sendStream(0, 0, wse::Direction::East, {2}, payload,
                                0, deliver);
        sim.run();
        ASSERT_EQ(landed.size(), 2u);
        EXPECT_GE(std::max(landed[0], landed[1]),
                  std::min(landed[0], landed[1]) + m);
    }
}

//===----------------------------------------------------------------------===
// Recycling rings: activation frames and payload slots
//===----------------------------------------------------------------------===

TEST(ShardedDeterminism, FrameArenaRecyclesAcrossNestedActivations)
{
    // A stepped workload dispatches hundreds of compiled activations per
    // PE, each of which may nest further frames through csl.call. The
    // frame stack must serve virtually all of them from recycled
    // storage: fresh allocations are bounded by the nesting working set,
    // not by the activation count.
    fe::Benchmark bench = fe::makeJacobian(5, 5, 20, 32);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    wse::Simulator sim(wse::ArchParams::wse3(), 5, 5);
    interp::CslProgramInstance instance(sim, module.get());
    auto init = bench.init;
    instance.setFieldInit(bench.program.fieldName(0),
                          [init](int x, int y, int z) {
                              return init(0, x, y, z);
                          });
    instance.configure();
    instance.launch();
    sim.run(4000000000ULL);

    auto [acquires, fresh] = instance.frameStats();
    EXPECT_GT(acquires, sim.stats().taskActivations);
    EXPECT_GT(acquires, 8 * fresh)
        << "activation frames are not being recycled (acquires="
        << acquires << ", fresh=" << fresh << ")";
    // Every PE needs at least one frame, so some fresh allocations are
    // expected; the bound is the per-PE nesting depth, not steps.
    EXPECT_LE(fresh, 25u * 8u);
}

TEST(ShardedDeterminism, PayloadRingRecyclesSlots)
{
    // A chunked exchange workload acquires one payload slot per chunk
    // per sender. The ring's high-water mark tracks the genuine
    // in-flight working set (boundary PEs run ahead of interior PEs,
    // so early-arrival stashes legitimately pin slots — the hardware
    // equivalent of wavelets queued at the input ramps); recycling must
    // still serve most acquires, and every slot must come back once
    // the run drains.
    fe::Benchmark bench = fe::makeDiffusion(5, 5, 20, 16);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    wse::Simulator sim(wse::ArchParams::wse3(), 5, 5);
    interp::CslProgramInstance instance(sim, module.get());
    auto init = bench.init;
    instance.setFieldInit(bench.program.fieldName(0),
                          [init](int x, int y, int z) {
                              return init(0, x, y, z);
                          });
    instance.configure();
    instance.launch();
    sim.run(4000000000ULL);

    wse::PayloadPool &pool = sim.pe(0, 0).payloadPool();
    EXPECT_GT(pool.acquires(), 0u);
    EXPECT_GT(pool.acquires(), 2 * pool.created())
        << "payload slots are not being recycled (acquires="
        << pool.acquires() << ", created=" << pool.created() << ")";
    EXPECT_EQ(pool.liveSlots(), 0u)
        << "payload slots leaked past the end of the run";
}

TEST(ShardedDeterminism, PayloadRefCountingReturnsSlots)
{
    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1);
    wse::PayloadPool &pool = sim.pe(0, 0).payloadPool();
    {
        wse::PayloadRef a = pool.acquire();
        a.mutableData() = {1.0f, 2.0f};
        wse::PayloadRef b = a; // second reference pins the slot
        a.reset();
        EXPECT_TRUE(b.valid());
        EXPECT_EQ(b.data()[1], 2.0f);
    }
    // Both references dropped: the next acquire reuses the slot.
    wse::PayloadRef c = pool.acquire();
    EXPECT_EQ(pool.slotCount(), 1u);
    EXPECT_TRUE(c.data().empty()); // recycled slots come back cleared
}

TEST(ShardedDeterminism, SameCycleEventsOrderByOwnerPe)
{
    // The deterministic key orders same-cycle events of different PEs by
    // the owner's dense grid id, independent of activation order.
    wse::Simulator sim(wse::ArchParams::wse3(), 2, 1);
    std::vector<int> order;
    sim.pe(0, 0).registerTask("t", wse::TaskKind::Local,
                              [&](wse::TaskContext &) {
                                  order.push_back(0);
                              });
    sim.pe(1, 0).registerTask("t", wse::TaskKind::Local,
                              [&](wse::TaskContext &) {
                                  order.push_back(1);
                              });
    sim.pe(1, 0).activate("t", 100); // activated first, runs second
    sim.pe(0, 0).activate("t", 100);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

} // namespace
} // namespace wsc::test
