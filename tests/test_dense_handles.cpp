/**
 * @file
 * PR 2 coverage: the dense-handle simulator core. SimStats equivalence
 * of the compiled interpreter against the reference evaluator under the
 * handle-based Pe/StarComm/fabric paths, Pe handle semantics (id
 * resolution, unknown-name errors, buffer free/realloc reuse), the
 * allocation-free event queue's ordering and fallback behaviour, and the
 * worklist driver's per-pattern counters.
 */

#include "test_helpers.h"

#include <array>
#include <sstream>

#include "ir/pattern.h"

namespace wsc::test {
namespace {

namespace ar = dialects::arith;
namespace bt = dialects::builtin;

//===----------------------------------------------------------------------===
// SimStats equivalence: compiled vs reference under dense handles
//===----------------------------------------------------------------------===

/**
 * Runs `bench` end to end in both interpreter modes and asserts the
 * aggregate SimStats (events, wavelets, activations, DSD ops, flops,
 * memory traffic) and the final cycle count are identical — the
 * dense-handle core must not change what is simulated, only how fast
 * the simulation runs.
 */
void
expectStatsEquivalence(fe::Benchmark &bench, int nx, int ny)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    struct Run
    {
        wse::Cycles finalCycle = 0;
        wse::SimStats stats;
    };
    auto runOnce = [&](bool reference) {
        wse::Simulator sim(wse::ArchParams::wse3(), nx, ny);
        interp::CslProgramInstance instance(sim, module.get());
        instance.setReferenceMode(reference);
        for (size_t f = 0; f < bench.program.numFields(); ++f) {
            int fi = static_cast<int>(f);
            auto init = bench.init;
            instance.setFieldInit(bench.program.fieldName(f),
                                  [init, fi](int x, int y, int z) {
                                      return init(fi, x, y, z);
                                  });
        }
        instance.configure();
        instance.launch();
        Run run;
        run.finalCycle = sim.run(4000000000ULL);
        run.stats = sim.stats();
        return run;
    };

    Run compiled = runOnce(false);
    Run reference = runOnce(true);

    EXPECT_EQ(compiled.finalCycle, reference.finalCycle);
    EXPECT_EQ(compiled.stats.eventsProcessed,
              reference.stats.eventsProcessed);
    EXPECT_EQ(compiled.stats.waveletsSent, reference.stats.waveletsSent);
    EXPECT_EQ(compiled.stats.taskActivations,
              reference.stats.taskActivations);
    EXPECT_EQ(compiled.stats.dsdOps, reference.stats.dsdOps);
    EXPECT_EQ(compiled.stats.flops, reference.stats.flops);
    EXPECT_EQ(compiled.stats.memBytes, reference.stats.memBytes);
}

TEST(DenseHandleEquivalence, SeismicStatsMatchReference)
{
    fe::Benchmark bench = fe::makeSeismic(8, 8, 3, 20);
    expectStatsEquivalence(bench, 8, 8);
}

TEST(DenseHandleEquivalence, DiffusionStatsMatchReference)
{
    fe::Benchmark bench = fe::makeDiffusion(7, 7, 4, 16);
    expectStatsEquivalence(bench, 7, 7);
}

//===----------------------------------------------------------------------===
// Pe handle semantics
//===----------------------------------------------------------------------===

class PeHandleTest : public ::testing::Test
{
  protected:
    PeHandleTest() : sim(wse::ArchParams::wse3(), 1, 1) {}

    wse::Simulator sim;
};

TEST_F(PeHandleTest, TaskIdResolution)
{
    wse::Pe &pe = sim.pe(0, 0);
    int fired = 0;
    wse::TaskId id = pe.registerTask("t", wse::TaskKind::Local,
                                     [&](wse::TaskContext &) { fired++; });
    EXPECT_TRUE(id.valid());
    EXPECT_EQ(pe.taskId("t"), id);
    EXPECT_EQ(pe.findTask("t"), id);
    EXPECT_TRUE(pe.hasTask("t"));
    EXPECT_FALSE(pe.findTask("ghost").valid());
    EXPECT_FALSE(pe.hasTask("ghost"));

    pe.activate(id, 0);
    sim.run();
    EXPECT_EQ(fired, 1);
}

TEST_F(PeHandleTest, UnknownNamesPanic)
{
    wse::Pe &pe = sim.pe(0, 0);
    EXPECT_THROW(pe.taskId("ghost"), PanicError);
    EXPECT_THROW(pe.activate("ghost", 0), PanicError);
    EXPECT_THROW(pe.bufferId("nope"), PanicError);
    EXPECT_THROW(pe.buffer("nope"), PanicError);
    EXPECT_THROW(pe.freeBuffer("nope"), PanicError);
    EXPECT_THROW(pe.activate(wse::TaskId{}, 0), PanicError);
    EXPECT_THROW(pe.buffer(wse::BufferId{}), PanicError);
}

TEST_F(PeHandleTest, BufferIdResolutionAndAliasing)
{
    wse::Pe &pe = sim.pe(0, 0);
    wse::BufferId a = pe.allocBufferId("a", 100);
    EXPECT_TRUE(a.valid());
    EXPECT_EQ(pe.bufferId("a"), a);
    EXPECT_EQ(pe.findBuffer("a"), a);
    EXPECT_EQ(&pe.buffer(a), &pe.buffer("a"));
    EXPECT_EQ(pe.bufferName(a), "a");
    EXPECT_EQ(pe.buffer(a).size(), 100u);
    EXPECT_EQ(pe.memoryBytesUsed(), 400u);
    // Double allocation of a live name is an error.
    EXPECT_THROW(pe.allocBufferId("a", 10), PanicError);
}

TEST_F(PeHandleTest, BufferFreeReallocReusesHandle)
{
    wse::Pe &pe = sim.pe(0, 0);
    wse::BufferId a = pe.allocBufferId("a", 100);
    pe.buffer(a)[0] = 42.0f;
    pe.freeBuffer(a);
    EXPECT_FALSE(pe.hasBuffer("a"));
    EXPECT_EQ(pe.memoryBytesUsed(), 0u);
    EXPECT_THROW(pe.buffer(a), PanicError); // Stale handle use.
    EXPECT_THROW(pe.bufferId("a"), PanicError);

    // Re-allocation reuses the slot: same handle, fresh zeroed contents.
    wse::BufferId again = pe.allocBufferId("a", 50);
    EXPECT_EQ(again, a);
    EXPECT_TRUE(pe.hasBuffer("a"));
    EXPECT_EQ(pe.buffer(a).size(), 50u);
    EXPECT_EQ(pe.buffer(a)[0], 0.0f);
    EXPECT_EQ(pe.memoryBytesUsed(), 200u);

    // Other buffers keep their handles across the free/realloc cycle.
    wse::BufferId b = pe.allocBufferId("b", 10);
    EXPECT_NE(b, a);
    EXPECT_EQ(pe.bufferId("b"), b);
}

TEST_F(PeHandleTest, ScalarIdInterning)
{
    wse::Pe &pe = sim.pe(0, 0);
    EXPECT_FALSE(pe.hasScalar("x"));
    EXPECT_FALSE(pe.findScalar("x").valid());
    wse::ScalarId x = pe.scalarId("x");
    EXPECT_TRUE(x.valid());
    EXPECT_TRUE(pe.hasScalar("x"));
    EXPECT_EQ(pe.scalarId("x"), x); // Idempotent interning.
    EXPECT_EQ(pe.findScalar("x"), x);
    pe.scalar(x) = 7.0;
    EXPECT_EQ(pe.scalar("x"), 7.0);
    wse::ScalarId y = pe.scalarId("y");
    EXPECT_NE(y, x);
    EXPECT_EQ(pe.scalar(y), 0.0);
}

//===----------------------------------------------------------------------===
// Event queue: ordering and callback storage
//===----------------------------------------------------------------------===

TEST(EventQueue, ManySameCycleEventsRunFifo)
{
    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1);
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        sim.schedule(5, [&order, i] { order.push_back(i); });
    sim.run();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, InterleavedSchedulingKeepsCycleOrder)
{
    // Events scheduled from inside events, with recycled callback
    // slots, still run in (cycle, sequence) order.
    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1);
    std::vector<wse::Cycles> at;
    for (int i = 0; i < 10; ++i)
        sim.schedule(static_cast<wse::Cycles>(10 * i), [&, i] {
            at.push_back(sim.now());
            sim.schedule(sim.now() + 5,
                         [&] { at.push_back(sim.now()); });
        });
    sim.run();
    ASSERT_EQ(at.size(), 20u);
    for (size_t i = 1; i < at.size(); ++i)
        EXPECT_LE(at[i - 1], at[i]);
    EXPECT_EQ(sim.stats().eventsProcessed, 20u);
}

TEST(EventQueue, OversizedCallbacksFallBackToHeap)
{
    // Captures beyond EventCallback::kInlineSize take the (single
    // allocation) heap path but behave identically.
    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1);
    std::array<uint64_t, 32> big{}; // 256 bytes, > kInlineSize
    for (size_t i = 0; i < big.size(); ++i)
        big[i] = i + 1;
    uint64_t sum = 0;
    sim.schedule(1, [big, &sum] {
        for (uint64_t v : big)
            sum += v;
    });
    sim.run();
    EXPECT_EQ(sum, 32u * 33u / 2);
    static_assert(sizeof(std::array<uint64_t, 32>) >
                  wse::EventCallback::kInlineSize);
}

TEST(EventQueue, CallbacksReleaseCapturedState)
{
    // Slot recycling must destroy the moved-out callback after it runs:
    // a shared_ptr captured by an executed event does not linger.
    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1);
    auto token = std::make_shared<int>(7);
    sim.schedule(1, [token] {});
    EXPECT_EQ(token.use_count(), 2);
    sim.run();
    EXPECT_EQ(token.use_count(), 1);
}

//===----------------------------------------------------------------------===
// Worklist driver pattern counters
//===----------------------------------------------------------------------===

TEST_F(IrTest, PatternCountersTrackHitsAndMisses)
{
    ir::resetPatternStats();

    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Value c = ar::createConstantF32(b, 1.0);
    ar::createAddF(b, c, c);
    ar::createAddF(b, c, c);

    std::vector<ir::NamedPattern> patterns = {
        {"drop-dead-adds", [](ir::Operation *op, ir::OpBuilder &) {
             if (op->name() != "arith.addf" || op->hasResultUses())
                 return false;
             op->erase();
             return true;
         }},
    };
    EXPECT_TRUE(ir::applyPatternsGreedily(module.get(), patterns));

    const auto &stats = ir::patternStats();
    ASSERT_EQ(stats.count("drop-dead-adds"), 1u);
    const ir::PatternStat &s = stats.at("drop-dead-adds");
    EXPECT_EQ(s.hits, 2u);   // Both dead adds were erased.
    EXPECT_GE(s.misses, 1u); // At least the constant did not match.

    std::ostringstream os;
    ir::dumpPatternStats(os);
    EXPECT_NE(os.str().find("drop-dead-adds: 2 hits"),
              std::string::npos);

    ir::resetPatternStats();
    EXPECT_TRUE(ir::patternStats().empty());
}

TEST_F(IrTest, PatternCountersSurviveNonConvergencePanic)
{
    // The counters exist to debug diverging patterns, so the
    // non-convergence panic must not discard the run's counts.
    ir::resetPatternStats();
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ar::createConstantF32(b, 1.0);
    std::vector<ir::NamedPattern> patterns = {
        {"flip-flop", [](ir::Operation *op, ir::OpBuilder &) {
             return op->name() == "arith.constant";
         }},
    };
    EXPECT_THROW(ir::applyPatternsGreedily(module.get(), patterns, 16),
                 PanicError);
    ASSERT_EQ(ir::patternStats().count("flip-flop"), 1u);
    EXPECT_EQ(ir::patternStats().at("flip-flop").hits, 16u);
    ir::resetPatternStats();
}

TEST_F(IrTest, PatternCountersAccumulateAcrossRuns)
{
    ir::resetPatternStats();
    for (int round = 0; round < 2; ++round) {
        ir::OwningOp module = bt::createModule(ctx);
        ir::OpBuilder b(ctx);
        b.setInsertionPointToEnd(bt::moduleBody(module.get()));
        ar::createConstantF32(b, 1.0);
        std::vector<ir::NamedPattern> patterns = {
            {"never-matches",
             [](ir::Operation *, ir::OpBuilder &) { return false; }},
        };
        ir::applyPatternsGreedily(module.get(), patterns);
    }
    EXPECT_EQ(ir::patternStats().at("never-matches").misses, 2u);
    ir::resetPatternStats();
}

} // namespace
} // namespace wsc::test
