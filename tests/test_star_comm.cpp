#include <gtest/gtest.h>

#include <map>

#include "comms/star_comm.h"
#include "support/error.h"
#include "wse/simulator.h"

namespace wsc::test {
namespace {

using comms::Access;
using comms::StarComm;
using comms::StarCommConfig;
using wse::ArchParams;

/** Value stamped into PE (x, y)'s column at element z. */
float
stamp(int x, int y, int z)
{
    return static_cast<float>(1000 * x + 100 * y + z);
}

/**
 * Harness: every PE owns a stamped send column and a driver task that
 * starts one exchange; receive/done callbacks count activations.
 */
class StarCommTest : public ::testing::Test
{
  protected:
    void
    build(int w, int h, StarCommConfig config,
          ArchParams params = ArchParams::wse3())
    {
        sim = std::make_unique<wse::Simulator>(params, w, h);
        comm = std::make_unique<StarComm>(*sim, config);
        for (int x = 0; x < w; ++x) {
            for (int y = 0; y < h; ++y) {
                wse::Pe &pe = sim->pe(x, y);
                std::vector<float> &send = pe.allocBuffer(
                    "send", static_cast<size_t>(config.zSize));
                for (int64_t z = 0; z < config.zSize; ++z)
                    send[static_cast<size_t>(z)] =
                        stamp(x, y, static_cast<int>(z));
                pe.registerTask("driver", wse::TaskKind::Local,
                                [this](wse::TaskContext &ctx) {
                                    comm->exchange(ctx, "send", "recv",
                                                   "done");
                                });
                pe.registerTask(
                    "recv", wse::TaskKind::Local,
                    [this, x, y](wse::TaskContext &ctx) {
                        if (comm->config().perSectionCallbacks) {
                            auto [section, offset] =
                                comm->popCompletedSection(ctx.pe());
                            (void)section;
                            (void)offset;
                        } else {
                            offsets[{x, y}].push_back(
                                comm->popCompletedChunkOffset(ctx.pe()));
                        }
                        recvCount[{x, y}]++;
                    });
                pe.registerTask("done", wse::TaskKind::Local,
                                [this, x, y](wse::TaskContext &) {
                                    doneCount[{x, y}]++;
                                });
            }
        }
        comm->setup();
    }

    void
    runExchange()
    {
        for (int x = 0; x < sim->width(); ++x)
            for (int y = 0; y < sim->height(); ++y)
                sim->pe(x, y).activate("driver", 0);
        sim->run();
    }

    std::unique_ptr<wse::Simulator> sim;
    std::unique_ptr<StarComm> comm;
    std::map<std::pair<int, int>, int> recvCount;
    std::map<std::pair<int, int>, int> doneCount;
    std::map<std::pair<int, int>, std::vector<int64_t>> offsets;
};

StarCommConfig
fourNeighbourConfig(int64_t z, int64_t chunks = 1)
{
    StarCommConfig config;
    config.accesses = comms::canonicalAccessOrder(
        {{1, 0}, {-1, 0}, {0, -1}, {0, 1}});
    config.zSize = z;
    config.numChunks = chunks;
    return config;
}

TEST_F(StarCommTest, InteriorPeReceivesAllNeighbourColumns)
{
    build(3, 3, fourNeighbourConfig(8));
    runExchange();
    wse::Pe &pe = sim->pe(1, 1);
    std::vector<float> &recv = pe.buffer("recv_buffer");
    int64_t chunk = comm->chunkElems();
    for (size_t s = 0; s < 4; ++s) {
        const Access &a = comm->config().accesses[s];
        for (int64_t zIdx = 0; zIdx < chunk; ++zIdx) {
            EXPECT_EQ(recv[s * chunk + zIdx],
                      stamp(1 + a.dx, 1 + a.dy, static_cast<int>(zIdx)))
                << "section " << s << " z " << zIdx;
        }
    }
    EXPECT_EQ((recvCount[{1, 1}]), 1);
    EXPECT_EQ((doneCount[{1, 1}]), 1);
}

TEST_F(StarCommTest, BoundaryPeSkipsReceiveButFinishes)
{
    build(3, 3, fourNeighbourConfig(8));
    runExchange();
    EXPECT_EQ(comm->expectedSections(0, 0), 0);
    EXPECT_EQ((recvCount[{0, 0}]), 0);
    EXPECT_EQ((doneCount[{0, 0}]), 1);
    // Every PE finishes.
    for (int x = 0; x < 3; ++x)
        for (int y = 0; y < 3; ++y)
            EXPECT_EQ((doneCount[{x, y}]), 1);
}

TEST_F(StarCommTest, ChunkingSplitsCallbacks)
{
    build(3, 3, fourNeighbourConfig(8, /*chunks=*/2));
    runExchange();
    EXPECT_EQ((recvCount[{1, 1}]), 2);
    EXPECT_EQ((doneCount[{1, 1}]), 1);
    EXPECT_EQ((offsets[{1, 1}]), (std::vector<int64_t>{0, 4}));
    EXPECT_EQ(comm->chunkElems(), 4);
    // The landing buffer only holds one chunk per section.
    EXPECT_EQ(comm->recvBufferBytes(), 4 * 4 * 4);
}

TEST_F(StarCommTest, TrimsShortenTheStream)
{
    StarCommConfig config = fourNeighbourConfig(10);
    config.trimFirst = 2;
    config.trimLast = 2;
    build(3, 3, config);
    runExchange();
    EXPECT_EQ(comm->commElems(), 6);
    std::vector<float> &recv = sim->pe(1, 1).buffer("recv_buffer");
    // Section 0 is the east source (2, 1); its stream starts at z=2.
    EXPECT_EQ(recv[0], stamp(2, 1, 2));
    // Wavelet accounting shows the trimmed length.
    EXPECT_EQ(sim->stats().waveletsSent % 6, 0u);
}

TEST_F(StarCommTest, PromotedCoefficientsApplyWhileLanding)
{
    StarCommConfig config = fourNeighbourConfig(6);
    config.coeffs = {0.5, 0.5, 2.0, 2.0};
    build(3, 3, config);
    runExchange();
    std::vector<float> &recv = sim->pe(1, 1).buffer("recv_buffer");
    const Access &a0 = comm->config().accesses[0];
    EXPECT_FLOAT_EQ(recv[0], 0.5f * stamp(1 + a0.dx, 1 + a0.dy, 0));
}

TEST_F(StarCommTest, MultiDistanceStarDeliversPerDistance)
{
    StarCommConfig config;
    config.accesses = comms::canonicalAccessOrder(
        {{1, 0}, {2, 0}, {-1, 0}, {-2, 0}, {0, 1}, {0, 2}, {0, -1},
         {0, -2}});
    config.zSize = 6;
    build(5, 5, config);
    runExchange();
    wse::Pe &pe = sim->pe(2, 2);
    std::vector<float> &recv = pe.buffer("recv_buffer");
    int64_t chunk = comm->chunkElems();
    for (size_t s = 0; s < config.accesses.size(); ++s) {
        const Access &a = comm->config().accesses[s];
        EXPECT_EQ(recv[static_cast<int64_t>(s) * chunk],
                  stamp(2 + a.dx, 2 + a.dy, 0))
            << "section " << s;
    }
    EXPECT_EQ((doneCount[{2, 2}]), 1);
}

TEST_F(StarCommTest, AsymmetricPatternOnlySendsWhatIsAccessed)
{
    StarCommConfig config;
    config.accesses = {{1, 0}}; // only the east source
    config.zSize = 4;
    build(3, 1, config);
    runExchange();
    // Each eligible sender ships one 4-element stream one hop.
    // Receivers: (0,0) and (1,0) have an east source; (2,0) does not.
    EXPECT_EQ((recvCount[{0, 0}]), 1);
    EXPECT_EQ((recvCount[{1, 0}]), 1);
    EXPECT_EQ((recvCount[{2, 0}]), 0);
    EXPECT_EQ(sim->stats().waveletsSent, 8u);
}

TEST_F(StarCommTest, PerSectionCallbacksDoubleTaskTraffic)
{
    StarCommConfig perChunk = fourNeighbourConfig(8);
    build(3, 3, perChunk);
    runExchange();
    int chunkCallbacks = recvCount[{1, 1}];

    recvCount.clear();
    doneCount.clear();
    StarCommConfig perSection = fourNeighbourConfig(8);
    perSection.perSectionCallbacks = true;
    build(3, 3, perSection);
    runExchange();
    EXPECT_EQ((recvCount[{1, 1}]), 4);
    EXPECT_GT((recvCount[{1, 1}]), chunkCallbacks);
}

TEST_F(StarCommTest, BackToBackExchangesKeepEpochsSeparate)
{
    StarCommConfig config = fourNeighbourConfig(6);
    build(3, 3, config);
    // Drive two exchanges: the done callback of the first immediately
    // starts the second (continuation style).
    for (int x = 0; x < 3; ++x)
        for (int y = 0; y < 3; ++y) {
            wse::Pe &pe = sim->pe(x, y);
            pe.registerTask("driver2", wse::TaskKind::Local,
                            [this](wse::TaskContext &ctx) {
                                comm->exchange(ctx, "send", "recv",
                                               "done2");
                            });
            pe.registerTask("done2", wse::TaskKind::Local,
                            [this, x, y](wse::TaskContext &) {
                                doneCount[{x, y}] += 10;
                            });
        }
    for (int x = 0; x < 3; ++x)
        for (int y = 0; y < 3; ++y)
            sim->pe(x, y).activate("driver", 0);
    // Chain: when the first done fires, start the second exchange.
    // Re-register done by driving again after the first run completes.
    sim->run();
    for (int x = 0; x < 3; ++x)
        for (int y = 0; y < 3; ++y)
            sim->pe(x, y).activate("driver2", sim->now());
    sim->run();
    EXPECT_EQ((doneCount[{1, 1}]), 1 + 10);
    EXPECT_EQ((recvCount[{1, 1}]), 2);
}

TEST_F(StarCommTest, OverlappingExchangeOnSameSiteIsRejected)
{
    build(3, 3, fourNeighbourConfig(6));
    wse::Pe &pe = sim->pe(1, 1);
    pe.registerTask("bad", wse::TaskKind::Local,
                    [this](wse::TaskContext &ctx) {
                        comm->exchange(ctx, "send", "recv", "done");
                        comm->exchange(ctx, "send", "recv", "done");
                    });
    pe.activate("bad", 0);
    EXPECT_THROW(sim->run(), PanicError);
}

TEST_F(StarCommTest, AccessesMustBeCanonical)
{
    StarCommConfig config;
    config.accesses = {{0, 1}, {1, 0}}; // wrong order (S before E)
    config.zSize = 4;
    wse::Simulator s(ArchParams::wse3(), 2, 2);
    EXPECT_THROW(StarComm(s, config), PanicError);
}

TEST_F(StarCommTest, RoutersAreConfiguredForAllTravelDirections)
{
    build(3, 3, fourNeighbourConfig(6));
    const wse::Router &router = comm->router(1, 1);
    for (int c = 0; c < 4; ++c)
        EXPECT_TRUE(router.hasRoute(static_cast<wse::Color>(c)));
}

TEST_F(StarCommTest, Wse2ExchangeTakesLongerThanWse3)
{
    build(3, 3, fourNeighbourConfig(64), ArchParams::wse3());
    runExchange();
    wse::Cycles wse3End = sim->now();

    recvCount.clear();
    doneCount.clear();
    build(3, 3, fourNeighbourConfig(64), ArchParams::wse2());
    runExchange();
    wse::Cycles wse2End = sim->now();
    EXPECT_GT(wse2End, wse3End);
}

} // namespace
} // namespace wsc::test
