/**
 * @file
 * Unit tests for the per-context arena allocator (ir/arena.h) and the
 * arena-backed IR object lifetime rules: single-block operations with
 * trailing storage, erase -> free-list recycling, pointer-stable
 * interned storage, and operand-array growth.
 */

#include "test_helpers.h"

#include "ir/arena.h"

namespace wsc::test {
namespace {

namespace bt = dialects::builtin;
namespace ar = dialects::arith;

//===----------------------------------------------------------------------===
// Raw Arena semantics
//===----------------------------------------------------------------------===

TEST(ArenaTest, BumpAllocationIsAlignedAndDistinct)
{
    ir::Arena arena;
    void *a = arena.allocate(24);
    void *b = arena.allocate(8);
    EXPECT_NE(a, b);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % ir::Arena::kAlignment, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % ir::Arena::kAlignment, 0u);
    EXPECT_EQ(arena.pageCount(), 1u);
}

TEST(ArenaTest, DeallocateRecyclesSameSizeClass)
{
    ir::Arena arena;
    void *a = arena.allocate(48);
    arena.deallocate(a, 48);
    // Same size class (rounded to 16) must reuse the freed block.
    void *b = arena.allocate(40);
    EXPECT_EQ(a, b);
    EXPECT_EQ(arena.recycleHits(), 1u);
    // A different class must not.
    arena.deallocate(b, 48);
    void *c = arena.allocate(128);
    EXPECT_NE(a, c);
}

TEST(ArenaTest, PagesGrowAndOversizeGetsDedicatedPage)
{
    ir::Arena arena;
    size_t before = arena.pageCount();
    for (int i = 0; i < 2000; ++i)
        arena.allocate(64);
    EXPECT_GT(arena.pageCount(), before);
    // Oversize allocations (> kPageSize) succeed on a dedicated page and
    // leave the bump window intact for small allocations.
    void *big = arena.allocate(ir::Arena::kPageSize + 1024);
    ASSERT_NE(big, nullptr);
    void *small = arena.allocate(16);
    ASSERT_NE(small, nullptr);
}

TEST(ArenaTest, FreeListIsLifo)
{
    ir::Arena arena;
    void *a = arena.allocate(32);
    void *b = arena.allocate(32);
    arena.deallocate(a, 32);
    arena.deallocate(b, 32);
    EXPECT_EQ(arena.allocate(32), b);
    EXPECT_EQ(arena.allocate(32), a);
}

//===----------------------------------------------------------------------===
// Context-level allocation
//===----------------------------------------------------------------------===

TEST_F(IrTest, ContextAllocateRunsDestructorsAtTeardown)
{
    static int destroyed = 0;
    struct Probe
    {
        ~Probe() { ++destroyed; }
        // Non-trivial payload so the dtor registry must be used.
        std::string payload = "needs destruction";
    };
    destroyed = 0;
    {
        ir::Context local;
        local.allocate<Probe>();
        local.allocate<Probe>();
        EXPECT_EQ(destroyed, 0);
    }
    EXPECT_EQ(destroyed, 2);
}

TEST_F(IrTest, InternedStorageIsPointerStable)
{
    // Interning many distinct types must never move earlier storage.
    ir::Type first = ir::getTensorType(ctx, {1, 2}, ir::getF32Type(ctx));
    const ir::TypeStorage *firstImpl = first.impl();
    for (int64_t i = 0; i < 2000; ++i)
        ir::getTensorType(ctx, {i, i + 1}, ir::getF32Type(ctx));
    EXPECT_EQ(ir::getTensorType(ctx, {1, 2}, ir::getF32Type(ctx)).impl(),
              firstImpl);
    // Attributes behave the same.
    ir::Attribute a = ir::getIntAttr(ctx, 42);
    for (int64_t i = 0; i < 2000; ++i)
        ir::getIntAttr(ctx, 100000 + i);
    EXPECT_EQ(ir::getIntAttr(ctx, 42), a);
}

//===----------------------------------------------------------------------===
// Operation lifetime in the arena
//===----------------------------------------------------------------------===

TEST_F(IrTest, ErasedOpMemoryIsRecycled)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(&module->region(0).front());

    // Pre-intern both constants' attributes so the second create's only
    // arena traffic is the op block itself.
    ir::getIntAttr(ctx, 1, ir::getI32Type(ctx));
    ir::getIntAttr(ctx, 2, ir::getI32Type(ctx));
    ir::Operation *first = ar::createConstantI32(b, 1).definingOp();
    void *addr = first;
    size_t hitsBefore = ctx.arena().recycleHits();
    first->erase();
    // Creating an identical op must pop the recycled block (LIFO).
    ir::Operation *second = ar::createConstantI32(b, 2).definingOp();
    EXPECT_EQ(static_cast<void *>(second), addr);
    EXPECT_GT(ctx.arena().recycleHits(), hitsBefore);
}

TEST_F(IrTest, EraseCreateLoopDoesNotGrowArena)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(&module->region(0).front());

    // Warm up so pages and pool entries exist.
    for (int i = 0; i < 16; ++i)
        ar::createConstantI32(b, i % 4).definingOp()->erase();
    size_t bytesBefore = ctx.arena().bytesAllocated();
    for (int i = 0; i < 10000; ++i)
        ar::createConstantI32(b, i % 4).definingOp()->erase();
    // The rewrite-style loop must be served from the free lists.
    EXPECT_EQ(ctx.arena().bytesAllocated(), bytesBefore);
}

TEST_F(IrTest, OperandGrowthBeyondInlineCapacity)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(&module->region(0).front());

    ir::Value c0 = ar::createConstantI32(b, 0);
    ir::Operation *op = b.create("test.variadic", {c0});
    for (int i = 0; i < 33; ++i)
        op->appendOperand(c0);
    ASSERT_EQ(op->numOperands(), 34u);
    for (unsigned i = 0; i < op->numOperands(); ++i)
        EXPECT_EQ(op->operand(i), c0);
    EXPECT_EQ(c0.numUses(), 34u);
    // Erase from the middle and the tail keeps use counts consistent.
    op->eraseOperand(5);
    op->eraseOperand(op->numOperands() - 1);
    EXPECT_EQ(op->numOperands(), 32u);
    EXPECT_EQ(c0.numUses(), 32u);
    op->setOperands({c0});
    EXPECT_EQ(c0.numUses(), 1u);
}

TEST_F(IrTest, ResultValuesLiveInTheOpAllocation)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(&module->region(0).front());

    ir::Operation *op =
        b.create("test.two_results", {},
                 {ir::getF32Type(ctx), ir::getI32Type(ctx)});
    // Trailing results sit directly after the Operation header.
    auto *base = reinterpret_cast<char *>(op);
    auto *r0 = reinterpret_cast<char *>(op->result(0).impl());
    auto *r1 = reinterpret_cast<char *>(op->result(1).impl());
    EXPECT_EQ(r0, base + sizeof(ir::Operation));
    EXPECT_EQ(r1, r0 + sizeof(ir::ValueImpl));
    EXPECT_EQ(op->result(0).definingOp(), op);
    EXPECT_EQ(op->result(1).index(), 1u);
}

TEST_F(IrTest, IntrusiveListInsertEraseMoveKeepsOrder)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::Block *body = &module->region(0).front();
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(body);

    ir::Operation *a = ar::createConstantI32(b, 0).definingOp();
    ir::Operation *c = ar::createConstantI32(b, 2).definingOp();
    b.setInsertionPoint(c);
    ir::Operation *m = ar::createConstantI32(b, 1).definingOp();

    auto order = body->opsVector();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], a);
    EXPECT_EQ(order[1], m);
    EXPECT_EQ(order[2], c);
    EXPECT_EQ(a->nextOp(), m);
    EXPECT_EQ(c->prevOp(), m);
    EXPECT_EQ(a->prevOp(), nullptr);
    EXPECT_EQ(c->nextOp(), nullptr);

    m->moveToEnd(body);
    EXPECT_EQ(body->terminator(), m);
    m->moveBefore(a);
    EXPECT_EQ(&body->front(), m);
    EXPECT_EQ(body->size(), 3u);

    a->erase();
    EXPECT_EQ(body->size(), 2u);
    EXPECT_EQ(m->nextOp(), c);
    EXPECT_EQ(c->prevOp(), m);
}

} // namespace
} // namespace wsc::test
