#include <gtest/gtest.h>

#include "support/error.h"

namespace wsc {
namespace {

TEST(Support, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error"), FatalError);
}

TEST(Support, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Support, FatalCarriesMessage)
{
    try {
        fatal("bad configuration: chunk too large");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("chunk too large"),
                  std::string::npos);
    }
}

TEST(Support, StrcatFormatsMixedTypes)
{
    EXPECT_EQ(strcat("pe (", 3, ", ", 4, ")"), "pe (3, 4)");
}

TEST(Support, AssertMacroPassesOnTrue)
{
    EXPECT_NO_THROW(WSC_ASSERT(1 + 1 == 2, "arithmetic"));
}

TEST(Support, AssertMacroThrowsWithLocation)
{
    try {
        WSC_ASSERT(false, "custom detail " << 42);
        FAIL() << "expected PanicError";
    } catch (const PanicError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("custom detail 42"), std::string::npos);
        EXPECT_NE(msg.find("test_support.cpp"), std::string::npos);
    }
}

} // namespace
} // namespace wsc
