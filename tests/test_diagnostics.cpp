/**
 * @file
 * Diagnostics & error-recovery suite (`ctest -L diagnostics`).
 *
 * Proves the no-abort contract for malformed input: broken IR and
 * hostile frontend source run through the full pipeline, the process
 * survives, the diagnostic names the offending op and the failing pass,
 * and a subsequent valid compile in the same context produces CSL that
 * is byte-identical to a fresh-context compile.
 */

#include "test_helpers.h"

#include <functional>

#include "codegen/csl_emitter.h"
#include "frontends/fortran_frontend.h"
#include "ir/context.h"
#include "ir/diagnostics.h"
#include "ir/pass.h"

namespace wsc::test {
namespace {

namespace ar = dialects::arith;
namespace bt = dialects::builtin;
namespace fn = dialects::func;
namespace st = dialects::stencil;

class DiagnosticsTest : public IrTest
{
};

//===----------------------------------------------------------------------===
// Engine mechanics
//===----------------------------------------------------------------------===

TEST_F(DiagnosticsTest, HandlerStackNestsAndRestores)
{
    ir::DiagnosticCollector outer(ctx);
    EXPECT_EQ(ctx.diagnostics().handlerDepth(), 1u);
    {
        ir::DiagnosticCollector inner(ctx);
        EXPECT_EQ(ctx.diagnostics().handlerDepth(), 2u);
        ir::emitError(ctx) << "inner-scope failure";
        ASSERT_EQ(inner.diagnostics().size(), 1u);
        EXPECT_TRUE(inner.hadError());
        EXPECT_TRUE(outer.diagnostics().empty());
    }
    EXPECT_EQ(ctx.diagnostics().handlerDepth(), 1u);
    ir::emitError(ctx) << "outer-scope failure";
    ASSERT_EQ(outer.diagnostics().size(), 1u);
    EXPECT_EQ(outer.diagnostics()[0].message, "outer-scope failure");
    EXPECT_EQ(ctx.diagnostics().errorCount(), 2u);
}

TEST_F(DiagnosticsTest, ErrorCountIgnoresWarningsAndRemarks)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::DiagnosticCollector collector(ctx);
    ir::emitWarning(module.get()) << "just a warning";
    ir::emitRemark(module.get()) << "just a remark";
    EXPECT_EQ(ctx.diagnostics().errorCount(), 0u);
    ir::emitError(module.get()) << "an actual error";
    EXPECT_EQ(ctx.diagnostics().errorCount(), 1u);
    ASSERT_EQ(collector.diagnostics().size(), 3u);
    EXPECT_EQ(collector.diagnostics()[0].severity, ir::Severity::Warning);
    EXPECT_EQ(collector.diagnostics()[1].severity, ir::Severity::Remark);
    EXPECT_EQ(collector.diagnostics()[2].severity, ir::Severity::Error);
}

TEST_F(DiagnosticsTest, LocationNamesNearestSymbolAncestor)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Operation *kernel = fn::createFunc(b, "kernel", {}, {});
    b.setInsertionPointToEnd(fn::funcBody(kernel));
    ir::Value c = ar::createConstantF32(b, 1.0);

    std::string loc = ir::diagnosticLocation(c.definingOp());
    EXPECT_NE(loc.find("'arith.constant'"), std::string::npos) << loc;
    EXPECT_NE(loc.find("in 'func.func' @kernel"), std::string::npos)
        << loc;
}

TEST_F(DiagnosticsTest, NotesRenderBelowParent)
{
    ir::Diagnostic d(ir::Severity::Error, "kernel cannot be split");
    d.attachNote("first mixing point was here");
    std::string text = d.str();
    EXPECT_NE(text.find("error: kernel cannot be split"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("note: first mixing point was here"),
              std::string::npos)
        << text;
}

TEST_F(DiagnosticsTest, InFlightDiagnosticConvertsToLogicalResult)
{
    ir::DiagnosticCollector collector(ctx);
    ir::LogicalResult bad = ir::emitError(ctx) << "cannot lower";
    EXPECT_TRUE(ir::failed(bad));
    ASSERT_EQ(collector.diagnostics().size(), 1u);
    EXPECT_EQ(collector.diagnostics()[0].message, "cannot lower");
}

//===----------------------------------------------------------------------===
// PassManager failure semantics
//===----------------------------------------------------------------------===

TEST_F(DiagnosticsTest, EmittedErrorFailsPassEvenWithoutFailureReturn)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::PassManager pm;
    // Legacy-style void pass: emits an error but cannot return failure.
    pm.addPass("leaky", [](ir::Operation *m) {
        ir::emitError(m) << "error without a failing return";
    });
    ir::PipelineResult result = pm.run(module.get());
    EXPECT_FALSE(result.succeeded);
    EXPECT_EQ(result.failedPass, "leaky");
    ASSERT_NE(result.firstError(), nullptr);
    EXPECT_EQ(result.firstError()->pass, "leaky");
}

TEST_F(DiagnosticsTest, WarningsDoNotFailThePipeline)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::PassManager pm;
    pm.addPass("chatty", [](ir::Operation *m) {
        ir::emitWarning(m) << "heads up";
    });
    ir::PipelineResult result = pm.run(module.get());
    EXPECT_TRUE(result.succeeded);
    ASSERT_EQ(result.diagnostics.size(), 1u);
    EXPECT_EQ(result.diagnostics[0].severity, ir::Severity::Warning);
    EXPECT_EQ(result.diagnostics[0].pass, "chatty");
}

TEST_F(DiagnosticsTest, PanicInsidePassBecomesInternalErrorDiagnostic)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::PassManager pm;
    pm.addPass("broken-invariant", [](ir::Operation *) {
        WSC_ASSERT(false, "simulated invariant violation");
    });
    ir::PipelineResult result = pm.run(module.get());
    EXPECT_FALSE(result.succeeded);
    ASSERT_NE(result.firstError(), nullptr);
    EXPECT_NE(result.firstError()->message.find("internal error"),
              std::string::npos)
        << result.str();
}

//===----------------------------------------------------------------------===
// Per-dialect verifier failures
//===----------------------------------------------------------------------===

struct VerifierCase
{
    const char *dialect;
    const char *op;
    unsigned numResults;
    unsigned numRegions;
    const char *expect;
};

TEST_F(DiagnosticsTest, EveryDialectVerifierEmitsLocatedDiagnostic)
{
    // One invalid op per dialect: zero operands (or zero regions /
    // missing attribute) trips each registered verify hook.
    const VerifierCase cases[] = {
        {"builtin", "builtin.module", 0, 0, "expected 1 regions, got 0"},
        {"arith", "arith.constant", 1, 0, "requires a value attribute"},
        {"varith", "varith.add", 1, 0,
         "expected at least 1 operands, got 0"},
        {"stencil", "stencil.access", 1, 0, "expected 1 operands, got 0"},
        {"csl_stencil", "csl_stencil.access", 1, 0,
         "expected 1 operands, got 0"},
        {"csl", "csl.fadds", 0, 0, "expected 3 operands, got 0"},
        {"csl_wrapper", "csl_wrapper.module", 0, 0,
         "expected 2 regions, got 0"},
        {"dmp", "dmp.swap", 1, 0, "expected 1 operands, got 0"},
        {"func", "func.func", 0, 0, "expected 1 regions, got 0"},
        {"scf", "scf.for", 0, 1, "expected at least 3 operands, got 0"},
        {"linalg", "linalg.fmac", 0, 0, "expected 4 operands, got 0"},
        {"memref", "memref.alloc", 0, 0, "expected 1 results, got 0"},
        {"tensor", "tensor.empty", 0, 0, "expected 1 results, got 0"},
    };

    for (const VerifierCase &c : cases) {
        SCOPED_TRACE(std::string(c.dialect) + ": " + c.op);
        ir::OwningOp module = bt::createModule(ctx);
        ir::OpBuilder b(ctx);
        b.setInsertionPointToEnd(bt::moduleBody(module.get()));
        std::vector<ir::Type> results(c.numResults, ir::getF32Type(ctx));
        b.create(c.op, {}, results, {}, c.numRegions);

        ir::DiagnosticCollector collector(ctx);
        EXPECT_TRUE(ir::failed(ir::verify(module.get())));
        bool found = false;
        for (const ir::Diagnostic &d : collector.diagnostics()) {
            if (d.severity != ir::Severity::Error)
                continue;
            if (d.location.find(std::string("'") + c.op + "'") ==
                std::string::npos)
                continue;
            EXPECT_NE(d.message.find(c.expect), std::string::npos)
                << d.str();
            found = true;
        }
        EXPECT_TRUE(found)
            << "no located diagnostic for " << c.op;
    }
}

TEST_F(DiagnosticsTest, MismatchedOperandTypesAreDiagnosed)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Value f = ar::createConstantF32(b, 1.0);
    ir::Value i = ar::createConstantI32(b, 1);
    b.create("arith.addf", {f, i}, {ir::getF32Type(ctx)});

    ir::DiagnosticCollector collector(ctx);
    EXPECT_TRUE(ir::failed(ir::verify(module.get())));
    ASSERT_FALSE(collector.diagnostics().empty());
    const ir::Diagnostic &d = collector.diagnostics().front();
    EXPECT_NE(d.message.find("operand types differ"), std::string::npos)
        << d.str();
    EXPECT_NE(d.location.find("'arith.addf'"), std::string::npos)
        << d.str();
}

//===----------------------------------------------------------------------===
// Malformed-IR corpus through the full pipeline (no-abort contract)
//===----------------------------------------------------------------------===

struct CorpusCase
{
    const char *name;
    std::function<ir::OwningOp(ir::Context &)> build;
    const char *expectPass;
    const char *expectMessage;
};

TEST_F(DiagnosticsTest, MalformedIrCorpusFailsWithoutAborting)
{
    const CorpusCase corpus[] = {
        {"diagonal access",
         [](ir::Context &c) {
             fe::Program p(fe::Grid{8, 8, 16});
             p.setTimesteps(2);
             fe::Field u = p.addField("u");
             p.setUpdate(u, u.at(1, 1, 0));
             return p.emit(c);
         },
         "distribute-stencil", "box-shaped"},
        {"remote z offset",
         [](ir::Context &c) {
             fe::Program p(fe::Grid{8, 8, 16});
             p.setTimesteps(2);
             fe::Field u = p.addField("u");
             p.setUpdate(u, u.at(1, 0, 1));
             return p.emit(c);
         },
         "distribute-stencil", "z offset"},
        {"multiplicative remote/local mix",
         [](ir::Context &c) {
             fe::Program p(fe::Grid{8, 8, 16});
             p.setTimesteps(2);
             fe::Field u = p.addField("u");
             p.setUpdate(u, u.at(1, 0, 0) * u.at(0, 0, 0));
             return p.emit(c);
         },
         "convert-stencil-to-csl-stencil", "addition"},
        {"unsupported op in apply body",
         [](ir::Context &c) {
             fe::Program p(fe::Grid{8, 8, 16});
             p.setTimesteps(2);
             fe::Field u = p.addField("u");
             p.setUpdate(u, fe::constant(0.5) *
                                (u.at(0, 0, 1) + u.at(0, 0, -1)));
             ir::OwningOp module = p.emit(c);
             ir::Operation *apply = firstOp(module.get(), st::kApply);
             EXPECT_NE(apply, nullptr);
             if (!apply)
                 return module;
             ir::OpBuilder b(c);
             b.setInsertionPoint(st::applyBody(apply)->terminator());
             b.create("tensor.empty", {},
                      {ir::getTensorType(c, {4}, ir::getF32Type(c))});
             return module;
         },
         "tensorize-z", "unsupported op in apply body"},
        {"empty module (invariant violation)",
         [](ir::Context &c) { return bt::createModule(c); },
         "wrap-in-csl-wrapper", "internal error"},
    };

    for (const CorpusCase &c : corpus) {
        SCOPED_TRACE(c.name);
        ir::OwningOp module = c.build(ctx);
        ir::PipelineResult result = transforms::runPipeline(module.get());
        EXPECT_FALSE(result.succeeded);
        EXPECT_EQ(result.failedPass, c.expectPass) << result.str();
        ASSERT_NE(result.firstError(), nullptr);
        EXPECT_NE(result.firstError()->message.find(c.expectMessage),
                  std::string::npos)
            << result.str();
        EXPECT_EQ(result.firstError()->pass, c.expectPass);
        // The module survives the failure for post-mortem printing.
        EXPECT_FALSE(ir::printOp(module.get()).empty());
    }
}

TEST_F(DiagnosticsTest, SameContextRecoversToByteIdenticalCsl)
{
    // A failed compile must not poison the context: compile the same
    // valid benchmark in this (dirtied) context and in a fresh one, and
    // require byte-identical CSL.
    {
        fe::Program p(fe::Grid{8, 8, 16});
        p.setTimesteps(2);
        fe::Field u = p.addField("u");
        p.setUpdate(u, u.at(1, 1, 0)); // box-shaped: rejected
        ir::OwningOp bad = p.emit(ctx);
        ir::PipelineResult result = transforms::runPipeline(bad.get());
        ASSERT_FALSE(result.succeeded);
    }

    auto compile = [](ir::Context &c) {
        fe::Benchmark bench = fe::makeDiffusion(8, 8, 2, 16);
        ir::OwningOp module = bench.program.emit(c);
        EXPECT_TRUE(ir::succeeded(ir::verify(module.get())));
        ir::PipelineResult result =
            transforms::runPipeline(module.get());
        EXPECT_TRUE(result.succeeded) << result.str();
        return codegen::emitCsl(module.get());
    };

    codegen::EmittedCsl dirtied = compile(ctx);
    ir::Context fresh;
    dialects::registerAllDialects(fresh);
    codegen::EmittedCsl pristine = compile(fresh);

    EXPECT_EQ(dirtied.layoutFile, pristine.layoutFile);
    EXPECT_EQ(dirtied.programFile, pristine.programFile);
    EXPECT_FALSE(dirtied.programFile.empty());
}

//===----------------------------------------------------------------------===
// Hostile Fortran corpus (frontend locations)
//===----------------------------------------------------------------------===

TEST_F(DiagnosticsTest, FortranDiagnosticsCarryLineAndColumn)
{
    fe::FortranKernelConfig config{12, 12, 32, 2};
    struct FortranCase
    {
        const char *name;
        const char *source;
        const char *expectMessage;
        const char *expectLocation; // prefix match; "" = any fortran:
    };
    const FortranCase cases[] = {
        {"unexpected character",
         "do i = 2, 11\n"
         " do j = 2, 11\n"
         "  do k = 2, 31\n"
         "   a(k,j,i) = @\n"
         "  enddo\n enddo\nenddo\n",
         "unexpected character '@'", "fortran:4:15"},
        {"absolute index",
         "do i = 2, 11\n"
         " do j = 2, 11\n"
         "  do k = 2, 31\n"
         "   a(k,j,i) = a(1,j,i)\n"
         "  enddo\n enddo\nenddo\n",
         "absolute indices", "fortran:4"},
        {"shallow loop nest",
         "do i = 2, 11\n"
         "enddo\n",
         "3-deep spatial loop nest", "fortran:"},
        {"off-centre assignment target",
         "do i = 2, 11\n"
         " do j = 2, 11\n"
         "  do k = 2, 31\n"
         "   a(k,j,i+1) = a(k,j,i)\n"
         "  enddo\n enddo\nenddo\n",
         "centre point", "fortran:4"},
        {"missing enddo",
         "do i = 2, 11\n"
         " do j = 2, 11\n"
         "  do k = 2, 31\n"
         "   a(k,j,i) = a(k-1,j,i)\n",
         "enddo", "fortran:"},
    };

    for (const FortranCase &c : cases) {
        SCOPED_TRACE(c.name);
        fe::FortranParseResult result =
            fe::parseFortranStencilChecked(c.source, config);
        EXPECT_FALSE(result);
        EXPECT_FALSE(result.program.has_value());
        EXPECT_EQ(result.diagnostic.severity, ir::Severity::Error);
        EXPECT_NE(result.diagnostic.message.find(c.expectMessage),
                  std::string::npos)
            << result.diagnostic.str();
        EXPECT_EQ(result.diagnostic.location.rfind(c.expectLocation, 0),
                  0u)
            << result.diagnostic.location;
    }
}

TEST_F(DiagnosticsTest, FortranCheckedParseSucceedsOnValidSource)
{
    const char *source =
        "do i = 2, 11\n"
        " do j = 2, 11\n"
        "  do k = 2, 31\n"
        "   a(k,j,i) = 0.5 * (a(k,j,i-1) + a(k,j,i+1))\n"
        "  enddo\n enddo\nenddo\n";
    fe::FortranParseResult result = fe::parseFortranStencilChecked(
        source, fe::FortranKernelConfig{12, 12, 32, 2});
    ASSERT_TRUE(result) << result.diagnostic.str();
    ASSERT_TRUE(result.program.has_value());
    EXPECT_EQ(result.program->numFields(), 1u);
}

} // namespace
} // namespace wsc::test
