#include "test_helpers.h"

#include "transforms/linalg_to_csl.h"

namespace wsc::test {
namespace {

namespace csl = dialects::csl;
namespace ln = dialects::linalg;

class Group5Test : public IrTest
{
  protected:
    ir::OwningOp
    lowerFully(fe::Benchmark &bench,
               transforms::PipelineOptions options = {})
    {
        ir::OwningOp module = bench.program.emit(ctx);
        transforms::runPipeline(module.get(), options);
        return module;
    }

    ir::Operation *
    taskNamed(ir::Operation *module, const std::string &name)
    {
        ir::Operation *found = nullptr;
        module->walk([&](ir::Operation *op) {
            if ((op->opId() == csl::kTask ||
                 op->opId() == csl::kFunc) &&
                op->strAttr("sym_name") == name)
                found = op;
        });
        return found;
    }
};

TEST_F(Group5Test, NoLinalgOrMemrefComputeRemains)
{
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 3, 16);
    ir::OwningOp module = lowerFully(bench);
    int leftovers = 0;
    module->walk([&](ir::Operation *op) {
        if (ln::isLinalgOp(op) || op->name() == "memref.subview" ||
            op->name() == "memref.alloc" ||
            op->name() == "csl_stencil.access")
            leftovers++;
    });
    EXPECT_EQ(leftovers, 0);
    EXPECT_TRUE(ir::verifies(module.get()));
}

TEST_F(Group5Test, ProducesLayoutAndProgramModules)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 3, 16);
    ir::OwningOp module = lowerFully(bench);
    int layout = 0;
    int program = 0;
    module->walk([&](ir::Operation *op) {
        if (op->opId() != csl::kModule)
            return;
        if (op->strAttr("kind") == "layout")
            layout++;
        else if (op->strAttr("kind") == "program")
            program++;
    });
    EXPECT_EQ(layout, 1);
    EXPECT_EQ(program, 1);
}

TEST_F(Group5Test, OneShotReductionInReceiveTask)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 3, 16);
    ir::OwningOp module = lowerFully(bench);
    ir::Operation *recv =
        taskNamed(module.get(), "receive_chunk_cb0");
    ASSERT_NE(recv, nullptr);
    // With promoted coefficients and a uniform reduction the whole
    // 4-section buffer reduces in a single @fadds on a wrapped DSD.
    EXPECT_EQ(countOps(recv, csl::kFadds), 1);
    ir::Operation *dsd = firstOp(recv, csl::kGetMemDsd);
    bool sawWrap = false;
    recv->walk([&](ir::Operation *op) {
        if (op->opId() == csl::kGetMemDsd && op->hasAttr("wrap"))
            sawWrap = true;
    });
    (void)dsd;
    EXPECT_TRUE(sawWrap);
}

TEST_F(Group5Test, OneShotCanBeDisabled)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 3, 16);
    transforms::PipelineOptions options;
    options.enableOneShotReduction = false;
    ir::OwningOp module = lowerFully(bench, options);
    ir::Operation *recv =
        taskNamed(module.get(), "receive_chunk_cb0");
    // Separate pointers and individual builtin calls per section.
    EXPECT_EQ(countOps(recv, csl::kFadds), 4);
}

TEST_F(Group5Test, FmacsAreGenerated)
{
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 3, 16);
    ir::OwningOp module = lowerFully(bench);
    ir::Operation *done = taskNamed(module.get(), "done_exchange_cb0");
    ASSERT_NE(done, nullptr);
    // The local z terms lower to @fmacs.
    EXPECT_GE(countOps(done, csl::kFmacs), 4);
}

TEST_F(Group5Test, SeqKernelUsesFmovsZeroAndDsdOperand)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 3, 16);
    ir::OwningOp module = lowerFully(bench);
    ir::Operation *seq = taskNamed(module.get(), "seq_kernel0");
    EXPECT_EQ(countOps(seq, csl::kFmovs), 1);
    ir::Operation *comms = firstOp(seq, csl::kCommsExchange);
    ASSERT_NE(comms, nullptr);
    EXPECT_TRUE(csl::isDsdType(comms->operand(0).type()));
}

TEST_F(Group5Test, ZShiftedAccessesBecomeOffsetDsds)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 3, 16);
    ir::OwningOp module = lowerFully(bench);
    ir::Operation *done = taskNamed(module.get(), "done_exchange_cb0");
    // Jacobian z±1 terms: DSDs at offsets 0 and 2 of the column
    // (interior base rz=1, dz=∓1).
    std::set<int64_t> offsets;
    done->walk([&](ir::Operation *op) {
        if (op->opId() == csl::kGetMemDsd)
            offsets.insert(op->intAttr("offset"));
    });
    EXPECT_TRUE(offsets.count(0));
    EXPECT_TRUE(offsets.count(2));
}

TEST_F(Group5Test, DynamicChunkOffsetUsesIncrementDsd)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 3, 16);
    transforms::PipelineOptions options;
    options.forceNumChunks = 2;
    ir::OwningOp module = lowerFully(bench, options);
    ir::Operation *recv =
        taskNamed(module.get(), "receive_chunk_cb0");
    EXPECT_GE(countOps(recv, csl::kIncrementDsdOffset), 1);
    EXPECT_TRUE(ir::verifies(module.get()));
}

TEST_F(Group5Test, LayoutModuleDescribesPlacement)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 3, 16);
    ir::OwningOp module = lowerFully(bench);
    ir::Operation *rect = firstOp(module.get(), csl::kSetRectangle);
    ASSERT_NE(rect, nullptr);
    EXPECT_EQ(rect->intAttr("width"), 8);
    EXPECT_EQ(rect->intAttr("height"), 8);
    ir::Operation *tile = firstOp(module.get(), csl::kSetTileCode);
    ASSERT_NE(tile, nullptr);
    EXPECT_EQ(tile->strAttr("file"), "pe.csl");
    ir::Attribute params = tile->attr("params");
    EXPECT_EQ(ir::intAttrValue(ir::dictAttrGet(params, "z_dim")), 16);
}

TEST_F(Group5Test, ProgramModuleHasParams)
{
    fe::Benchmark bench = fe::makeDiffusion(8, 8, 3, 16);
    ir::OwningOp module = lowerFully(bench);
    std::set<std::string> params;
    module->walk([&](ir::Operation *op) {
        if (op->opId() == csl::kParam)
            params.insert(op->strAttr("name"));
    });
    EXPECT_TRUE(params.count("z_dim"));
    EXPECT_TRUE(params.count("num_chunks"));
    EXPECT_TRUE(params.count("pattern"));
}

} // namespace
} // namespace wsc::test
