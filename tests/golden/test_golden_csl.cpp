/**
 * @file
 * Golden-file locks on the CSL emitter output and on simulated cycle
 * counts for all five paper workloads (Jacobian, heat diffusion,
 * acoustic, seismic, UVKBE).
 *
 * The emitted `pe.csl`/`layout.csl` bytes are compared verbatim against
 * the files in tests/golden/, locking the byte-exact format that PR 2's
 * single-buffer emitter rewrite preserved; the final simulator cycle of
 * a small compiled run is locked the same way, so an IR or interpreter
 * change that alters behaviour (not just speed) fails here first.
 *
 * Regenerating after an intentional format change:
 *
 *     WSC_UPDATE_GOLDEN=1 ./build/wsc_golden_tests
 *
 * then review the diff of tests/golden/ before committing (see the
 * top-level README, "Golden files").
 */

#include "test_helpers.h"

#include <fstream>
#include <sstream>

#include "codegen/csl_emitter.h"
#include "support/env.h"

namespace wsc::test {
namespace {

bool
updateRequested()
{
    return envFlag("WSC_UPDATE_GOLDEN");
}

std::string
goldenPath(const std::string &file)
{
    return std::string(WSC_GOLDEN_DIR) + "/" + file;
}

/** First byte offset where the two strings differ. */
size_t
firstMismatch(const std::string &a, const std::string &b)
{
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i)
        if (a[i] != b[i])
            return i;
    return n;
}

void
checkGolden(const std::string &file, const std::string &actual)
{
    std::string path = goldenPath(file);
    if (updateRequested()) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.is_open()) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open())
        << "missing golden file " << path
        << " — regenerate with WSC_UPDATE_GOLDEN=1 ./wsc_golden_tests";
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string expected = buf.str();
    if (expected == actual)
        return;
    size_t at = firstMismatch(expected, actual);
    size_t from = at < 40 ? 0 : at - 40;
    ADD_FAILURE() << file << " differs from golden ("
                  << expected.size() << " golden bytes vs "
                  << actual.size() << " actual); first mismatch at byte "
                  << at << ":\n  golden: ..."
                  << expected.substr(from, 80) << "...\n  actual: ..."
                  << actual.substr(from, 80)
                  << "...\nIf the change is intentional, regenerate with "
                     "WSC_UPDATE_GOLDEN=1 and review the diff.";
}

class GoldenCslTest : public IrTest
{
  protected:
    codegen::EmittedCsl
    emit(fe::Benchmark &bench)
    {
        ir::OwningOp module = bench.program.emit(ctx);
        transforms::runPipeline(module.get());
        return codegen::emitCsl(module.get());
    }

    /** Final cycle of a compiled-mode run on an nx x ny fabric. */
    wse::Cycles
    simulate(fe::Benchmark &bench, int nx, int ny, int threads = 1)
    {
        ir::OwningOp module = bench.program.emit(ctx);
        transforms::runPipeline(module.get());
        wse::Simulator sim(wse::ArchParams::wse3(), nx, ny,
                           wse::SimOptions{threads});
        interp::CslProgramInstance instance(sim, module.get());
        for (size_t f = 0; f < bench.program.numFields(); ++f) {
            int fi = static_cast<int>(f);
            auto init = bench.init;
            instance.setFieldInit(bench.program.fieldName(f),
                                  [init, fi](int x, int y, int z) {
                                      return init(fi, x, y, z);
                                  });
        }
        instance.configure();
        instance.launch();
        return sim.run(4000000000ULL);
    }
};

TEST_F(GoldenCslTest, SeismicEmittedBytes)
{
    fe::Benchmark bench = fe::makeSeismic(16, 16, 8, 20);
    codegen::EmittedCsl csl = emit(bench);
    checkGolden("seismic_pe.csl", csl.programFile);
    checkGolden("seismic_layout.csl", csl.layoutFile);
}

TEST_F(GoldenCslTest, DiffusionEmittedBytes)
{
    fe::Benchmark bench = fe::makeDiffusion(16, 16, 8, 16);
    codegen::EmittedCsl csl = emit(bench);
    checkGolden("diffusion_pe.csl", csl.programFile);
    checkGolden("diffusion_layout.csl", csl.layoutFile);
}

TEST_F(GoldenCslTest, JacobianEmittedBytes)
{
    fe::Benchmark bench = fe::makeJacobian(16, 16, 8, 24);
    codegen::EmittedCsl csl = emit(bench);
    checkGolden("jacobian_pe.csl", csl.programFile);
    checkGolden("jacobian_layout.csl", csl.layoutFile);
}

TEST_F(GoldenCslTest, AcousticEmittedBytes)
{
    fe::Benchmark bench = fe::makeAcoustic(16, 16, 8, 24);
    codegen::EmittedCsl csl = emit(bench);
    checkGolden("acoustic_pe.csl", csl.programFile);
    checkGolden("acoustic_layout.csl", csl.layoutFile);
}

TEST_F(GoldenCslTest, UvkbeEmittedBytes)
{
    fe::Benchmark bench = fe::makeUvkbe(16, 16, 24);
    codegen::EmittedCsl csl = emit(bench);
    checkGolden("uvkbe_pe.csl", csl.programFile);
    checkGolden("uvkbe_layout.csl", csl.layoutFile);
}

TEST_F(GoldenCslTest, SimulatedCycleCounts)
{
    fe::Benchmark jacobian = fe::makeJacobian(7, 7, 4, 64);
    fe::Benchmark diffusion = fe::makeDiffusion(7, 7, 4, 16);
    fe::Benchmark acoustic = fe::makeAcoustic(8, 8, 3, 32);
    fe::Benchmark seismic = fe::makeSeismic(8, 8, 3, 20);
    fe::Benchmark uvkbe = fe::makeUvkbe(8, 8, 24);
    std::ostringstream os;
    os << "jacobian_7x7x4: " << simulate(jacobian, 7, 7) << "\n"
       << "diffusion_7x7x4: " << simulate(diffusion, 7, 7) << "\n"
       << "acoustic_8x8x3: " << simulate(acoustic, 8, 8) << "\n"
       << "seismic_8x8x3: " << simulate(seismic, 8, 8) << "\n"
       << "uvkbe_8x8: " << simulate(uvkbe, 8, 8) << "\n";
    checkGolden("cycle_counts.txt", os.str());
}

TEST_F(GoldenCslTest, SimulatedCycleCountsShardedMatch)
{
    // The sharded engine must land on exactly the golden cycle counts:
    // a threads=4 run of every locked workload reproduces them.
    fe::Benchmark jacobian = fe::makeJacobian(7, 7, 4, 64);
    fe::Benchmark diffusion = fe::makeDiffusion(7, 7, 4, 16);
    fe::Benchmark acoustic = fe::makeAcoustic(8, 8, 3, 32);
    fe::Benchmark seismic = fe::makeSeismic(8, 8, 3, 20);
    fe::Benchmark uvkbe = fe::makeUvkbe(8, 8, 24);
    std::ostringstream os;
    os << "jacobian_7x7x4: " << simulate(jacobian, 7, 7, 4) << "\n"
       << "diffusion_7x7x4: " << simulate(diffusion, 7, 7, 4) << "\n"
       << "acoustic_8x8x3: " << simulate(acoustic, 8, 8, 4) << "\n"
       << "seismic_8x8x3: " << simulate(seismic, 8, 8, 4) << "\n"
       << "uvkbe_8x8: " << simulate(uvkbe, 8, 8, 4) << "\n";
    if (updateRequested())
        return; // cycle_counts.txt is written by the threads=1 lock.
    checkGolden("cycle_counts.txt", os.str());
}

} // namespace
} // namespace wsc::test
