#include "test_helpers.h"

namespace wsc::test {
namespace {

TEST(Reference, ConstantFieldStaysConstantUnderAveraging)
{
    fe::Program p(fe::Grid{6, 6, 8});
    p.setTimesteps(3);
    fe::Field u = p.addField("u");
    p.setUpdate(u, fe::constant(0.25) *
                       (u.at(1, 0, 0) + u.at(-1, 0, 0) + u.at(0, 1, 0) +
                        u.at(0, -1, 0)));
    model::ReferenceExecutor ref(
        p, [](int, int64_t, int64_t, int64_t) { return 2.0f; });
    ref.run(3);
    // Averaging a constant field keeps it constant everywhere.
    for (int64_t x = 0; x < 6; ++x)
        for (int64_t y = 0; y < 6; ++y)
            for (int64_t z = 0; z < 8; ++z)
                EXPECT_FLOAT_EQ(ref.at(0, x, y, z), 2.0f);
}

TEST(Reference, BoundaryPointsNeverChange)
{
    fe::Program p(fe::Grid{5, 5, 6});
    p.setTimesteps(2);
    fe::Field u = p.addField("u");
    p.setUpdate(u, fe::constant(0.0) * u.at(1, 0, 0));
    model::ReferenceExecutor ref(
        p, [](int, int64_t x, int64_t y, int64_t z) {
            return static_cast<float>(x + 10 * y + 100 * z);
        });
    ref.run(2);
    // x = 4 cannot access x+1: stays at its initial value.
    EXPECT_FLOAT_EQ(ref.at(0, 4, 2, 3), 4 + 20 + 300);
    // x = 2 is interior: becomes 0.
    EXPECT_FLOAT_EQ(ref.at(0, 2, 2, 3), 0.0f);
}

TEST(Reference, RotationCopiesWholeField)
{
    fe::Program p(fe::Grid{4, 4, 4});
    p.setTimesteps(1);
    fe::Field u = p.addField("u");
    fe::Field v = p.addField("v");
    p.setUpdate(u, u.at(1, 0, 0) + v());
    p.setUpdate(v, u());
    model::ReferenceExecutor ref(
        p, [](int f, int64_t x, int64_t, int64_t) {
            return f == 0 ? static_cast<float>(x) : 100.0f;
        });
    ref.run(1);
    // v becomes the old u everywhere, including boundaries.
    for (int64_t x = 0; x < 4; ++x)
        EXPECT_FLOAT_EQ(ref.at(1, x, 0, 0), static_cast<float>(x));
}

TEST(Reference, NextAccessSeesSequentialUpdate)
{
    fe::Program p(fe::Grid{4, 4, 4});
    p.setTimesteps(1);
    fe::Field a = p.addField("a");
    fe::Field b = p.addField("b");
    p.setUpdate(a, fe::constant(5.0) + fe::constant(0.0) * a());
    p.setUpdate(b, a.next(0, 0, 0) + fe::constant(1.0) +
                       fe::constant(0.0) * b.at(1, 0, 0));
    model::ReferenceExecutor ref(
        p, [](int, int64_t, int64_t, int64_t) { return 0.0f; });
    ref.run(1);
    // b = new a + 1 = 6 at points where both updates applied.
    EXPECT_FLOAT_EQ(ref.at(1, 1, 1, 1), 6.0f);
}

TEST(Reference, ZOffsetsWork)
{
    fe::Program p(fe::Grid{3, 3, 8});
    p.setTimesteps(1);
    fe::Field u = p.addField("u");
    p.setUpdate(u, u.at(0, 0, 1));
    model::ReferenceExecutor ref(
        p, [](int, int64_t, int64_t, int64_t z) {
            return static_cast<float>(z);
        });
    ref.run(1);
    EXPECT_FLOAT_EQ(ref.at(0, 1, 1, 3), 4.0f);
    // z = 7 cannot access z+1: unchanged.
    EXPECT_FLOAT_EQ(ref.at(0, 1, 1, 7), 7.0f);
}

TEST(Reference, DeterministicAcrossRuns)
{
    fe::Benchmark b1 = fe::makeDiffusion(6, 6, 4, 12);
    fe::Benchmark b2 = fe::makeDiffusion(6, 6, 4, 12);
    model::ReferenceExecutor r1(b1.program, b1.init);
    model::ReferenceExecutor r2(b2.program, b2.init);
    r1.run(4);
    r2.run(4);
    for (int64_t x = 0; x < 6; ++x)
        for (int64_t z = 0; z < 12; ++z)
            EXPECT_EQ(r1.at(0, x, 3, z), r2.at(0, x, 3, z));
}

} // namespace
} // namespace wsc::test
