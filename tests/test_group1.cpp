#include "test_helpers.h"

#include "transforms/distribute_stencil.h"
#include "transforms/stencil_inlining.h"
#include "transforms/tensorize_z.h"

namespace wsc::test {
namespace {

namespace st = dialects::stencil;
namespace dmp = dialects::dmp;

class Group1Test : public IrTest
{
  protected:
    ir::OwningOp
    buildDiffusionIr(int64_t nx = 8, int64_t ny = 8, int64_t nz = 16)
    {
        fe::Benchmark bench = fe::makeDiffusion(nx, ny, 2, nz);
        return bench.program.emit(ctx);
    }

    void
    runGroup1(ir::Operation *module)
    {
        ir::PassManager pm;
        pm.addPass(transforms::createDistributeStencilPass());
        pm.addPass(transforms::createTensorizeZPass());
        pm.run(module);
    }
};

TEST_F(Group1Test, DistributeInsertsSwap)
{
    ir::OwningOp module = buildDiffusionIr();
    ir::PassManager pm;
    pm.addPass(transforms::createDistributeStencilPass());
    pm.run(module.get());
    ASSERT_EQ(countOps(module.get(), dmp::kSwap), 1);
    ir::Operation *swap = firstOp(module.get(), dmp::kSwap);
    // Diffusion (r=2) has 8 remote accesses.
    EXPECT_EQ(dmp::swapExchanges(swap).size(), 8u);
    EXPECT_EQ(dmp::swapTopology(swap),
              std::make_pair(int64_t(8), int64_t(8)));
}

TEST_F(Group1Test, LocalOnlyAppliesGetNoSwap)
{
    fe::Program p(fe::Grid{8, 8, 16});
    p.setTimesteps(2);
    fe::Field u = p.addField("u");
    p.setUpdate(u, fe::constant(0.5) * (u.at(0, 0, 1) + u.at(0, 0, -1)));
    ir::OwningOp module = p.emit(ctx);
    ir::PassManager pm;
    pm.addPass(transforms::createDistributeStencilPass());
    pm.run(module.get());
    EXPECT_EQ(countOps(module.get(), dmp::kSwap), 0);
}

TEST_F(Group1Test, DiagonalAccessIsRejected)
{
    fe::Program p(fe::Grid{8, 8, 16});
    p.setTimesteps(2);
    fe::Field u = p.addField("u");
    p.setUpdate(u, u.at(1, 1, 0));
    ir::OwningOp module = p.emit(ctx);
    ir::PassManager pm;
    pm.addPass(transforms::createDistributeStencilPass());
    ir::PipelineResult result = pm.run(module.get());
    EXPECT_FALSE(result.succeeded);
    ASSERT_NE(result.firstError(), nullptr);
    EXPECT_NE(result.firstError()->message.find("box-shaped"),
              std::string::npos);
    EXPECT_NE(result.firstError()->location.find("stencil.access"),
              std::string::npos);
}

TEST_F(Group1Test, RemoteZOffsetIsRejected)
{
    fe::Program p(fe::Grid{8, 8, 16});
    p.setTimesteps(2);
    fe::Field u = p.addField("u");
    p.setUpdate(u, u.at(1, 0, 1));
    ir::OwningOp module = p.emit(ctx);
    ir::PassManager pm;
    pm.addPass(transforms::createDistributeStencilPass());
    ir::PipelineResult result = pm.run(module.get());
    EXPECT_FALSE(result.succeeded);
    ASSERT_NE(result.firstError(), nullptr);
    EXPECT_NE(result.firstError()->message.find("z offset"),
              std::string::npos);
}

TEST_F(Group1Test, TensorizeConvertsTypes)
{
    ir::OwningOp module = buildDiffusionIr();
    runGroup1(module.get());
    EXPECT_TRUE(ir::verifies(module.get()));

    ir::Operation *apply = firstOp(module.get(), st::kApply);
    ASSERT_NE(apply, nullptr);
    // 2-D temp of z-column tensors.
    ir::Type t = apply->operand(0).type();
    ASSERT_TRUE(st::isTempType(t));
    EXPECT_EQ(st::boundsOf(t).rank(), 2u);
    ir::Type column = st::stencilElementTypeOf(t);
    ASSERT_TRUE(ir::isTensor(column));
    EXPECT_EQ(ir::shapeOf(column)[0], 16);
}

TEST_F(Group1Test, TensorizeRecordsZInfo)
{
    ir::OwningOp module = buildDiffusionIr();
    runGroup1(module.get());
    ir::Operation *apply = firstOp(module.get(), st::kApply);
    EXPECT_EQ(apply->intAttr("z_dim"), 16);
    EXPECT_EQ(apply->intAttr("z_offset"), 2); // r=2 in z
}

TEST_F(Group1Test, BodyValuesBecomeInteriorTensors)
{
    ir::OwningOp module = buildDiffusionIr();
    runGroup1(module.get());
    ir::Operation *apply = firstOp(module.get(), st::kApply);
    ir::Operation *ret = st::applyBody(apply)->terminator();
    ir::Type t = ret->operand(0).type();
    ASSERT_TRUE(ir::isTensor(t));
    EXPECT_EQ(ir::shapeOf(t)[0], 12); // 16 - 2*2
}

TEST_F(Group1Test, ConstantsBecomeDenseSplats)
{
    ir::OwningOp module = buildDiffusionIr();
    runGroup1(module.get());
    ir::Operation *apply = firstOp(module.get(), st::kApply);
    bool allDense = true;
    apply->walk([&](ir::Operation *op) {
        if (op->name() == "arith.constant" &&
            !ir::isDenseAttr(op->attr("value")))
            allDense = false;
    });
    EXPECT_TRUE(allDense);
}

TEST_F(Group1Test, FunctionSignatureIsTensorized)
{
    ir::OwningOp module = buildDiffusionIr();
    runGroup1(module.get());
    ir::Operation *kernel =
        firstOp(module.get(), dialects::func::kFunc);
    ir::Type fnType = ir::typeAttrValue(kernel->attr("function_type"));
    ir::Type arg = ir::functionInputs(fnType)[0];
    EXPECT_EQ(st::boundsOf(arg).rank(), 2u);
}

TEST_F(Group1Test, ZeroZRadiusKeepsFullColumn)
{
    // UVKBE accesses have no z offsets: interior == full column.
    fe::Benchmark bench = fe::makeUvkbe(8, 8, 16);
    ir::OwningOp module = bench.program.emit(ctx);
    ir::PassManager pm;
    pm.addPass(transforms::createStencilInliningPass());
    pm.run(module.get());
    runGroup1(module.get());
    ir::Operation *apply = firstOp(module.get(), st::kApply);
    EXPECT_EQ(apply->intAttr("z_offset"), 0);
}

} // namespace
} // namespace wsc::test
