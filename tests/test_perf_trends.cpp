#include "test_helpers.h"

#include "baselines/handwritten_seismic.h"
#include "model/wafer_model.h"

namespace wsc::test {
namespace {

/** Steady-state cycles/step of the hand-written kernel on WSE2. */
double
handwrittenCyclesPerStep(int grid, int64_t nz, int64_t steps)
{
    wse::Simulator sim(wse::ArchParams::wse2(), grid, grid);
    baselines::HandwrittenSeismicConfig config;
    config.nz = nz;
    config.timesteps = steps;
    baselines::HandwrittenSeismic hw(sim, config);
    hw.setInit([](int f, int x, int y, int z) {
        return static_cast<float>(std::sin(0.1 * (x + y + z + f)));
    });
    hw.configure();
    hw.launch();
    sim.run(4000000000ULL);
    const std::vector<wse::Cycles> &marks =
        hw.stepMarks(grid / 2, grid / 2);
    size_t w = 3;
    return static_cast<double>(marks.back() - marks[w]) /
           static_cast<double>(marks.size() - 1 - w);
}

/**
 * These tests pin the *shape* of the paper's performance results (§6):
 * orderings and rough factors, not absolute numbers.
 */
class PerfTrend : public ::testing::Test
{
  protected:
    model::MeasureOptions fastOptions(int grid = 0)
    {
        model::MeasureOptions o;
        o.steps = 10;
        o.warmupSteps = 3;
        o.simGrid = grid;
        return o;
    }
};

TEST_F(PerfTrend, Wse3BeatsWse2OnEveryBenchmark)
{
    // Figure 4's ordering, on reduced problem instances.
    std::vector<fe::Benchmark> benches;
    benches.push_back(fe::makeJacobian(100, 100, 10, 128));
    benches.push_back(fe::makeDiffusion(100, 100, 10, 128));
    benches.push_back(fe::makeSeismic(100, 100, 10, 96));
    for (fe::Benchmark &bench : benches) {
        model::WaferPerf w2 = model::measureBenchmark(
            bench, wse::ArchParams::wse2(), fastOptions());
        model::WaferPerf w3 = model::measureBenchmark(
            bench, wse::ArchParams::wse3(), fastOptions());
        EXPECT_GT(w3.gptsPerSec, w2.gptsPerSec) << bench.name;
    }
}

TEST_F(PerfTrend, GeneratedSeismicBeatsHandwrittenOnWse2)
{
    // Figure 5: the generated kernel's single chunk, trimmed columns
    // and per-chunk callbacks give it the edge (up to ~8% in the
    // paper). At the paper's column length the advantage is a modest
    // factor; short columns would exaggerate the fixed task/switch
    // overheads the hand-written kernel pays per chunk.
    const int64_t NZ = 450; // the paper's seismic column
    fe::Benchmark bench = fe::makeSeismic(11, 11, 12, NZ);
    model::WaferPerf ours = model::measureBenchmark(
        bench, wse::ArchParams::wse2(), fastOptions(11));
    double hw = handwrittenCyclesPerStep(11, NZ, 12);
    EXPECT_LT(ours.cyclesPerStep, hw);
    // The simulator's queueing model amplifies the hand-written
    // kernel's chunk-synchronization stalls beyond the paper's 7.9%
    // (EXPERIMENTS.md); bound the advantage to the same order.
    EXPECT_GT(ours.cyclesPerStep, 0.5 * hw);
}

TEST_F(PerfTrend, GeneratedUsesFewerTaskActivations)
{
    // §6.1: our communications library reduces task count by ~50%.
    const int64_t NZ = 96;
    fe::Benchmark bench = fe::makeSeismic(11, 11, 12, NZ);
    model::WaferPerf ours = model::measureBenchmark(
        bench, wse::ArchParams::wse2(), fastOptions(11));

    wse::Simulator sim(wse::ArchParams::wse2(), 11, 11);
    baselines::HandwrittenSeismicConfig config;
    config.nz = NZ;
    config.timesteps = 12;
    baselines::HandwrittenSeismic hw(sim, config);
    hw.setInit([](int, int, int, int) { return 1.0f; });
    hw.configure();
    hw.launch();
    sim.run(4000000000ULL);
    double hwActivations =
        static_cast<double>(sim.pe(5, 5).taskActivations()) / 12.0;

    EXPECT_LT(ours.taskActivationsPerStep, 0.6 * hwActivations);
}

TEST_F(PerfTrend, MoreChunksCostMoreTime)
{
    // The chunk-count ablation: chunking saves memory, costs cycles.
    fe::Benchmark bench = fe::makeDiffusion(9, 9, 10, 128);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);

    auto measure = [&](int64_t chunks) {
        fe::Benchmark local = fe::makeDiffusion(9, 9, 10, 128);
        ir::OwningOp module = local.program.emit(ctx);
        transforms::PipelineOptions options;
        options.forceNumChunks = chunks;
        transforms::runPipeline(module.get(), options);
        return model::measureLoweredModule(
            module.get(), local, wse::ArchParams::wse3(),
            model::MeasureOptions{9, 10, 3});
    };
    model::WaferPerf one = measure(1);
    model::WaferPerf four = measure(4);
    EXPECT_LT(one.cyclesPerStep, four.cyclesPerStep);
    EXPECT_GT(one.peMemoryBytes, four.peMemoryBytes);
    (void)bench;
}

TEST_F(PerfTrend, JacobianIsTheMostFabricHungryBenchmark)
{
    // Figure 7: Jacobian is the only fabric-bound kernel — it has the
    // lowest fabric arithmetic intensity of the five.
    std::vector<fe::Benchmark> all = fe::makeAllBenchmarks(12, 12, 4);
    double jacobianAi = 0;
    double minOtherAi = 1e30;
    for (fe::Benchmark &bench : all) {
        ir::Context ctx;
        dialects::registerAllDialects(ctx);
        ir::OwningOp module = bench.program.emit(ctx);
        transforms::runPipeline(module.get());
        model::WorkProfile work =
            model::analyzeProgramWork(module.get());
        double ai = work.fabricArithmeticIntensity();
        if (bench.name == "Jacobian")
            jacobianAi = ai;
        else
            minOtherAi = std::min(minOtherAi, ai);
    }
    EXPECT_LT(jacobianAi, minOtherAi);
}

TEST_F(PerfTrend, AllBenchmarksComputeBoundVsMemoryRoof)
{
    // Figure 7: every benchmark sits right of the WSE3 memory ridge
    // under the algorithmic traffic accounting.
    wse::ArchParams wse3 = wse::ArchParams::wse3();
    double ridge = wse3.peakFlops() / wse3.memoryBandwidth();
    // Note: the paper's z depths matter — use them.
    std::vector<fe::Benchmark> benches;
    benches.push_back(fe::makeJacobian(12, 12, 4));
    benches.push_back(fe::makeDiffusion(12, 12, 4));
    benches.push_back(fe::makeAcoustic(12, 12, 4));
    benches.push_back(fe::makeSeismic(12, 12, 4));
    benches.push_back(fe::makeUvkbe(12, 12));
    for (fe::Benchmark &bench : benches) {
        ir::Context ctx;
        dialects::registerAllDialects(ctx);
        ir::OwningOp module = bench.program.emit(ctx);
        transforms::runPipeline(module.get());
        model::WorkProfile work =
            model::analyzeProgramWork(module.get());
        EXPECT_GT(work.algoMemArithmeticIntensity(), ridge)
            << bench.name;
    }
}

TEST_F(PerfTrend, SelfTransmitAblationExplainsPartOfWse2Gap)
{
    // Removing only the WSE2 self-transmit requirement (keeping its
    // clock) must speed it up: the §6 mechanism in isolation.
    fe::Benchmark bench = fe::makeJacobian(9, 9, 10, 128);
    wse::ArchParams wse2 = wse::ArchParams::wse2();
    model::WaferPerf base =
        model::measureBenchmark(bench, wse2, fastOptions(9));
    wse::ArchParams patched = wse2;
    patched.switchRequiresSelfTransmit = false;
    patched.name = "WSE2-noself";
    fe::Benchmark bench2 = fe::makeJacobian(9, 9, 10, 128);
    model::WaferPerf noSelf =
        model::measureBenchmark(bench2, patched, fastOptions(9));
    EXPECT_LT(noSelf.cyclesPerStep, base.cyclesPerStep);
}

} // namespace
} // namespace wsc::test
