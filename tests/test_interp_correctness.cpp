#include "test_helpers.h"

namespace wsc::test {
namespace {

/** (arch factory, label) x benchmark sweep. */
struct ArchCase
{
    const char *label;
    wse::ArchParams (*make)();
};

class EndToEnd : public ::testing::TestWithParam<ArchCase>
{
};

TEST_P(EndToEnd, JacobianMatchesReference)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 5, 16);
    EXPECT_LT(endToEndError(bench, GetParam().make(), 8, 8, 5), 1e-4);
}

TEST_P(EndToEnd, DiffusionMatchesReference)
{
    fe::Benchmark bench = fe::makeDiffusion(9, 8, 5, 20);
    EXPECT_LT(endToEndError(bench, GetParam().make(), 9, 8, 5), 1e-4);
}

TEST_P(EndToEnd, AcousticMatchesReference)
{
    fe::Benchmark bench = fe::makeAcoustic(8, 9, 5, 20);
    EXPECT_LT(endToEndError(bench, GetParam().make(), 8, 9, 5), 1e-4);
}

TEST_P(EndToEnd, SeismicMatchesReference)
{
    // r=4 needs at least a 9x9 grid to have interior PEs.
    fe::Benchmark bench = fe::makeSeismic(10, 10, 4, 24);
    EXPECT_LT(endToEndError(bench, GetParam().make(), 10, 10, 4), 1e-4);
}

TEST_P(EndToEnd, UvkbeMatchesReference)
{
    fe::Benchmark bench = fe::makeUvkbe(8, 8, 16);
    // Fused kernels compute on the joint interior (see endToEndError).
    EXPECT_LT(endToEndError(bench, GetParam().make(), 8, 8, 1,
                            /*compareMargin=*/1),
              1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    BothGenerations, EndToEnd,
    ::testing::Values(ArchCase{"WSE2", &wse::ArchParams::wse2},
                      ArchCase{"WSE3", &wse::ArchParams::wse3}),
    [](const ::testing::TestParamInfo<ArchCase> &info) {
        return info.param.label;
    });

TEST(EndToEndExtras, NonSquareGrids)
{
    fe::Benchmark bench = fe::makeJacobian(12, 5, 4, 16);
    EXPECT_LT(endToEndError(bench, wse::ArchParams::wse3(), 12, 5, 4),
              1e-4);
}

TEST(EndToEndExtras, LongerRuns)
{
    fe::Benchmark bench = fe::makeDiffusion(7, 7, 24, 12);
    EXPECT_LT(endToEndError(bench, wse::ArchParams::wse3(), 7, 7, 24),
              1e-3);
}

TEST(EndToEndExtras, MultiChunkExecutionIsCorrect)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 5, 24);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::PipelineOptions options;
    options.forceNumChunks = 3; // 22 interior / 3 -> uneven last chunk
    transforms::runPipeline(module.get(), options);

    wse::Simulator sim(wse::ArchParams::wse3(), 8, 8);
    interp::CslProgramInstance instance(sim, module.get());
    auto init = bench.init;
    instance.setFieldInit("a", [init](int x, int y, int z) {
        return init(0, x, y, z);
    });
    instance.configure();
    instance.launch();
    sim.run(4000000000ULL);

    model::ReferenceExecutor ref(bench.program, bench.init);
    ref.run(5);
    double maxErr = 0;
    for (int x = 0; x < 8; ++x)
        for (int y = 0; y < 8; ++y) {
            std::vector<float> col = instance.readFieldColumn("a", x, y);
            for (size_t z = 0; z < col.size(); ++z)
                maxErr = std::max(
                    maxErr,
                    static_cast<double>(std::abs(
                        col[z] -
                        ref.at(0, x, y, static_cast<int64_t>(z)))));
        }
    EXPECT_LT(maxErr, 1e-4);
}

TEST(EndToEndExtras, DisabledOptimizationsStayCorrect)
{
    // All four §5.7 optimizations off: slower but identical results.
    fe::Benchmark bench = fe::makeAcoustic(8, 8, 4, 16);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::PipelineOptions options;
    options.enableStencilInlining = false;
    options.enableVarithFusion = false;
    options.enableCoeffPromotion = false;
    options.enableOneShotReduction = false;
    options.enableFmacFusion = false;
    transforms::runPipeline(module.get(), options);

    wse::Simulator sim(wse::ArchParams::wse3(), 8, 8);
    interp::CslProgramInstance instance(sim, module.get());
    for (size_t f = 0; f < bench.program.numFields(); ++f) {
        int fi = static_cast<int>(f);
        auto init = bench.init;
        instance.setFieldInit(bench.program.fieldName(f),
                              [init, fi](int x, int y, int z) {
                                  return init(fi, x, y, z);
                              });
    }
    instance.configure();
    instance.launch();
    sim.run(4000000000ULL);

    model::ReferenceExecutor ref(bench.program, bench.init);
    ref.run(4);
    double maxErr = 0;
    for (int x = 0; x < 8; ++x)
        for (int y = 0; y < 8; ++y) {
            std::vector<float> col = instance.readFieldColumn("u", x, y);
            for (size_t z = 0; z < col.size(); ++z)
                maxErr = std::max(
                    maxErr,
                    static_cast<double>(std::abs(
                        col[z] -
                        ref.at(0, x, y, static_cast<int64_t>(z)))));
        }
    EXPECT_LT(maxErr, 1e-4);
}

TEST(EndToEndExtras, PeMemoryStaysWithinBudgetForPaperColumns)
{
    // The real seismic column (z=450, 16 sections) must fit 48 kB.
    fe::Benchmark bench = fe::makeSeismic(10, 10, 2);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());
    wse::Simulator sim(wse::ArchParams::wse2(), 10, 10);
    interp::CslProgramInstance instance(sim, module.get());
    for (size_t f = 0; f < bench.program.numFields(); ++f) {
        int fi = static_cast<int>(f);
        auto init = bench.init;
        instance.setFieldInit(bench.program.fieldName(f),
                              [init, fi](int x, int y, int z) {
                                  return init(fi, x, y, z);
                              });
    }
    EXPECT_NO_THROW(instance.configure());
    size_t bytes = instance.memoryBytesUsed(5, 5);
    EXPECT_LE(bytes, 48u * 1024u);
    EXPECT_GT(bytes, 30u * 1024u); // the single-chunk layout is large
}

} // namespace
} // namespace wsc::test
