/**
 * @file
 * PR 9 coverage: the tiered execution engine. Every dispatch variant —
 * token-threaded, portable switch, counting (stats) and the fused
 * superinstruction stream — must be bit-identical to the reference
 * tree-walking evaluator on all five workloads, at threads=1 and
 * threads=4 (`ctest -L interp`). Also locks the opcode X-macro
 * round-trip, the profile artifact format and the PGO feedback loop.
 */

#include "test_helpers.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace wsc::test {
namespace {

//===----------------------------------------------------------------------===
// Harness
//===----------------------------------------------------------------------===

/** One run's observable outcome: cycle-exact and bit-exact state. */
struct TierRun
{
    wse::Cycles finalCycle = 0;
    uint64_t unblocks = 0;
    std::vector<std::vector<float>> columns;
    std::vector<std::vector<wse::Cycles>> marks;

    bool operator==(const TierRun &o) const
    {
        if (finalCycle != o.finalCycle || unblocks != o.unblocks ||
            columns.size() != o.columns.size() ||
            marks.size() != o.marks.size())
            return false;
        // Bit-exact float comparison, not approximate: the tiers must
        // execute the same arithmetic in the same order.
        for (size_t i = 0; i < columns.size(); ++i)
            if (columns[i] != o.columns[i])
                return false;
        return marks == o.marks;
    }
};

/** How to run a workload: which tier, at which thread count. */
struct TierMode
{
    const char *label;
    bool reference = false;
    int threads = 1;
    interp::InterpTuning tuning;
};

/** Run the compiled `module` once under `mode` and capture everything. */
TierRun
runTier(ir::Operation *module, fe::Benchmark &bench, int nx, int ny,
        const TierMode &mode, const char *expectDispatch = nullptr,
        bool expectFused = false)
{
    wse::Simulator sim(wse::ArchParams::wse3(), nx, ny,
                       wse::SimOptions{mode.threads});
    interp::CslProgramInstance instance(sim, module);
    instance.setReferenceMode(mode.reference);
    instance.setTuning(mode.tuning);
    for (size_t f = 0; f < bench.program.numFields(); ++f) {
        int fi = static_cast<int>(f);
        auto init = bench.init;
        instance.setFieldInit(bench.program.fieldName(f),
                              [init, fi](int x, int y, int z) {
                                  return init(fi, x, y, z);
                              });
    }
    instance.configure();
    if (expectDispatch != nullptr)
        EXPECT_STREQ(instance.resolvedDispatch(), expectDispatch)
            << mode.label;
    if (expectFused)
        EXPECT_GT(instance.fusedCount(), 0u) << mode.label;
    else if (!mode.tuning.fuse)
        EXPECT_EQ(instance.fusedCount(), 0u) << mode.label;
    instance.launch();

    TierRun run;
    run.finalCycle = sim.run(4000000000ULL);
    run.unblocks = instance.unblockCount();
    for (size_t f = 0; f < bench.program.numFields(); ++f)
        for (int x = 0; x < nx; ++x)
            for (int y = 0; y < ny; ++y) {
                run.columns.push_back(instance.readFieldColumn(
                    bench.program.fieldName(f), x, y));
                run.marks.push_back(instance.stepMarks(x, y));
            }
    return run;
}

/**
 * The dispatch-equivalence contract: reference, switch, threaded,
 * threaded-without-fusion and threads=4 runs of `bench` all produce
 * bit-identical fields, step marks, unblock counts and final cycles.
 */
void
expectTierEquivalence(fe::Benchmark bench, int nx, int ny)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    TierMode reference{"reference"};
    reference.reference = true;
    TierRun oracle = runTier(module.get(), bench, nx, ny, reference,
                             "reference");

    std::vector<TierMode> modes;
    TierMode switchFused{"switch+fused"};
    switchFused.tuning.dispatch = interp::DispatchKind::Switch;
    modes.push_back(switchFused);
    TierMode switchPlain{"switch+nofuse"};
    switchPlain.tuning.dispatch = interp::DispatchKind::Switch;
    switchPlain.tuning.fuse = false;
    modes.push_back(switchPlain);
    TierMode autoFused{"auto+fused"};
    modes.push_back(autoFused);
    TierMode autoPlain{"auto+nofuse"};
    autoPlain.tuning.fuse = false;
    modes.push_back(autoPlain);
    TierMode counting{"counting"};
    counting.tuning.collectStats = true;
    modes.push_back(counting);
    TierMode sharded{"auto+fused@4threads"};
    sharded.threads = 4;
    modes.push_back(sharded);

    for (const TierMode &mode : modes) {
        TierRun run = runTier(module.get(), bench, nx, ny, mode);
        EXPECT_TRUE(run == oracle)
            << bench.name << " diverged under " << mode.label;
    }
}

//===----------------------------------------------------------------------===
// Dispatch equivalence across all five workloads
//===----------------------------------------------------------------------===

TEST(InterpTiers, JacobianAllTiersBitIdentical)
{
    expectTierEquivalence(fe::makeJacobian(6, 6, 3, 24), 6, 6);
}

TEST(InterpTiers, DiffusionAllTiersBitIdentical)
{
    expectTierEquivalence(fe::makeDiffusion(7, 7, 4, 16), 7, 7);
}

TEST(InterpTiers, AcousticAllTiersBitIdentical)
{
    expectTierEquivalence(fe::makeAcoustic(6, 6, 3, 20), 6, 6);
}

TEST(InterpTiers, SeismicAllTiersBitIdentical)
{
    expectTierEquivalence(fe::makeSeismic(8, 8, 3, 20), 8, 8);
}

TEST(InterpTiers, UvkbeAllTiersBitIdentical)
{
    expectTierEquivalence(fe::makeUvkbe(8, 8, 16), 8, 8);
}

//===----------------------------------------------------------------------===
// Tier plumbing
//===----------------------------------------------------------------------===

TEST(InterpTiers, FusionCreatesSuperinstructions)
{
    fe::Benchmark bench = fe::makeSeismic(6, 6, 2, 12);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    TierMode fused{"fused"};
    runTier(module.get(), bench, 6, 6, fused, nullptr,
            /*expectFused=*/true);
    TierMode plain{"nofuse"};
    plain.tuning.fuse = false;
    runTier(module.get(), bench, 6, 6, plain);
}

TEST(InterpTiers, ResolvedDispatchNamesTheVariant)
{
    fe::Benchmark bench = fe::makeDiffusion(5, 5, 2, 8);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    TierMode sw{"switch"};
    sw.tuning.dispatch = interp::DispatchKind::Switch;
    runTier(module.get(), bench, 5, 5, sw, "switch");

    TierMode counting{"counting"};
    counting.tuning.collectStats = true;
    runTier(module.get(), bench, 5, 5, counting, "counting");

    TierMode threaded{"threaded"};
    threaded.tuning.dispatch = interp::DispatchKind::Threaded;
    const char *expect = interp::CslProgramInstance::
                             threadedDispatchAvailable()
                             ? "threaded"
                             : "switch";
    runTier(module.get(), bench, 5, 5, threaded, expect);
}

TEST(InterpTiers, EnvKnobsOverrideProgrammaticTuning)
{
    fe::Benchmark bench = fe::makeDiffusion(5, 5, 2, 8);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    // Programmatic tuning asks for the default (threaded, fused);
    // the environment forces switch dispatch with fusion off.
    ::setenv("WSC_INTERP_DISPATCH", "switch", 1);
    ::setenv("WSC_INTERP_NO_FUSE", "1", 1);
    TierMode mode{"env-forced"};
    mode.tuning.fuse = false; // expectation helper checks fusedCount==0
    TierRun envRun = runTier(module.get(), bench, 5, 5, mode, "switch");
    ::unsetenv("WSC_INTERP_DISPATCH");
    ::unsetenv("WSC_INTERP_NO_FUSE");

    TierMode reference{"reference"};
    reference.reference = true;
    TierRun oracle = runTier(module.get(), bench, 5, 5, reference);
    EXPECT_TRUE(envRun == oracle);
}

//===----------------------------------------------------------------------===
// Opcode table and profile artifact
//===----------------------------------------------------------------------===

TEST(InterpTiers, OpcodeNamesRoundTrip)
{
    for (size_t i = 0; i < interp::kNumOpcodes; ++i) {
        auto op = static_cast<interp::Opcode>(i);
        const char *name = interp::opcodeName(op);
        ASSERT_NE(name, nullptr);
        interp::Opcode back = interp::Opcode::Unsupported;
        EXPECT_TRUE(interp::opcodeFromName(name, back)) << name;
        EXPECT_EQ(back, op) << name;
    }
    interp::Opcode out = interp::Opcode::Nop;
    EXPECT_FALSE(interp::opcodeFromName("NotAnOpcode", out));
}

TEST(InterpTiers, ProfileArtifactRoundTrips)
{
    interp::InterpProfile prof;
    prof.note(interp::InterpProfile::kNoPrev, interp::Opcode::Cmp);
    prof.note(static_cast<uint8_t>(interp::Opcode::Cmp),
              interp::Opcode::If);
    prof.note(static_cast<uint8_t>(interp::Opcode::Cmp),
              interp::Opcode::If);
    prof.note(static_cast<uint8_t>(interp::Opcode::If),
              interp::Opcode::Fmacs);

    std::stringstream ss;
    prof.writeProfile(ss);
    std::vector<interp::ProfiledPair> pairs;
    ASSERT_TRUE(interp::readProfile(ss, pairs));
    bool sawCmpIf = false;
    for (const auto &p : pairs)
        if (p.first == interp::Opcode::Cmp &&
            p.second == interp::Opcode::If) {
            sawCmpIf = true;
            EXPECT_EQ(p.count, 2u);
        }
    EXPECT_TRUE(sawCmpIf);

    // Unknown opcode names are skipped, malformed lines reject the file.
    std::stringstream skip("# comment\npair Bogus If 3\npair Cmp If 1\n");
    pairs.clear();
    ASSERT_TRUE(interp::readProfile(skip, pairs));
    ASSERT_EQ(pairs.size(), 1u);
    std::stringstream bad("pair Cmp If notanumber\n");
    EXPECT_FALSE(interp::readProfile(bad, pairs));
}

TEST(InterpTiers, PgoLoopFeedsProfileBackIntoFusion)
{
    fe::Benchmark bench = fe::makeSeismic(6, 6, 2, 12);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    // Stage 1: profiling run (counting dispatch, fusion off so the
    // profile sees the raw opcode pairs).
    std::string path;
    {
        wse::Simulator sim(wse::ArchParams::wse3(), 6, 6);
        interp::CslProgramInstance instance(sim, module.get());
        interp::InterpTuning tuning;
        tuning.collectStats = true;
        tuning.fuse = false;
        instance.setTuning(tuning);
        for (size_t f = 0; f < bench.program.numFields(); ++f) {
            int fi = static_cast<int>(f);
            auto init = bench.init;
            instance.setFieldInit(bench.program.fieldName(f),
                                  [init, fi](int x, int y, int z) {
                                      return init(fi, x, y, z);
                                  });
        }
        instance.configure();
        instance.launch();
        sim.run(4000000000ULL);

        ASSERT_NE(instance.profile(), nullptr);
        EXPECT_GT(instance.profile()->total(), 0u);
        // Cmp;If is statically adjacent in every workload's step guard.
        EXPECT_GT(instance.profile()->pairTotal(interp::Opcode::Cmp,
                                                interp::Opcode::If),
                  0u);

        path = std::string(::testing::TempDir()) + "wsc_pgo_profile.txt";
        std::ofstream os(path);
        ASSERT_TRUE(os.good());
        instance.profile()->writeProfile(os);
    }

    // Stage 2: feed the artifact back; fusion must fire and the run
    // must stay bit-identical to the reference oracle.
    TierMode reference{"reference"};
    reference.reference = true;
    TierRun oracle = runTier(module.get(), bench, 6, 6, reference);

    TierMode pgo{"pgo"};
    pgo.tuning.profilePath = path;
    TierRun fed = runTier(module.get(), bench, 6, 6, pgo, nullptr,
                          /*expectFused=*/true);
    EXPECT_TRUE(fed == oracle);
    std::remove(path.c_str());
}

} // namespace
} // namespace wsc::test
