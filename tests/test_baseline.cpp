#include "test_helpers.h"

#include "baselines/handwritten_seismic.h"

namespace wsc::test {
namespace {

TEST(HandwrittenSeismic, MatchesTheReferenceExecutor)
{
    const int N = 10;
    const int64_t NZ = 24;
    const int64_t STEPS = 4;
    fe::Benchmark bench = fe::makeSeismic(N, N, STEPS, NZ);

    wse::Simulator sim(wse::ArchParams::wse2(), N, N);
    baselines::HandwrittenSeismicConfig config;
    config.nz = NZ;
    config.timesteps = STEPS;
    baselines::HandwrittenSeismic hw(sim, config);
    hw.setInit(bench.init);
    hw.configure();
    hw.launch();
    sim.run(4000000000ULL);

    model::ReferenceExecutor ref(bench.program, bench.init);
    ref.run(STEPS);
    double maxErr = 0;
    for (int x = 0; x < N; ++x)
        for (int y = 0; y < N; ++y) {
            std::vector<float> col = hw.readP(x, y);
            for (size_t z = 0; z < col.size(); ++z) {
                double r = ref.at(0, x, y, static_cast<int64_t>(z));
                maxErr = std::max(maxErr,
                                  std::abs(col[z] - r) /
                                      std::max(1.0, std::abs(r)));
            }
        }
    EXPECT_LT(maxErr, 1e-4);
}

TEST(HandwrittenSeismic, UsesTwoChunksAndFullColumns)
{
    wse::Simulator sim(wse::ArchParams::wse2(), 10, 10);
    baselines::HandwrittenSeismicConfig config;
    config.nz = 24;
    config.timesteps = 2;
    baselines::HandwrittenSeismic hw(sim, config);
    EXPECT_EQ(hw.comm().config().numChunks, 2);
    EXPECT_EQ(hw.comm().config().trimFirst, 0);
    EXPECT_EQ(hw.comm().config().trimLast, 0);
    EXPECT_EQ(hw.comm().commElems(), 24); // untrimmed
    EXPECT_TRUE(hw.comm().config().perSectionCallbacks);
    EXPECT_TRUE(hw.comm().config().coeffs.empty());
}

TEST(HandwrittenSeismic, StepMarksAdvanceMonotonically)
{
    wse::Simulator sim(wse::ArchParams::wse2(), 10, 10);
    baselines::HandwrittenSeismicConfig config;
    config.nz = 24;
    config.timesteps = 5;
    baselines::HandwrittenSeismic hw(sim, config);
    hw.setInit([](int, int, int, int) { return 1.0f; });
    hw.configure();
    hw.launch();
    sim.run(4000000000ULL);
    const std::vector<wse::Cycles> &marks = hw.stepMarks(5, 5);
    ASSERT_GE(marks.size(), 5u);
    for (size_t i = 1; i < marks.size(); ++i)
        EXPECT_GT(marks[i], marks[i - 1]);
}

} // namespace
} // namespace wsc::test
