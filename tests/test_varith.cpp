#include "test_helpers.h"

#include "transforms/varith_transforms.h"

namespace wsc::test {
namespace {

namespace bt = dialects::builtin;
namespace ar = dialects::arith;
namespace va = dialects::varith;
namespace fn = dialects::func;

class VarithTest : public IrTest
{
  protected:
    VarithTest() : module(bt::createModule(ctx)), b(ctx)
    {
        ir::OpBuilder mb(ctx);
        mb.setInsertionPointToEnd(bt::moduleBody(module.get()));
        fnOp = fn::createFunc(mb, "f", {ir::getF32Type(ctx)}, {});
        b.setInsertionPointToEnd(fn::funcBody(fnOp));
    }

    void
    finishAndRun(ir::Value result, bool fuseRepeated = false)
    {
        // Keep the result alive through an opaque user.
        b.create("builtin.unrealized_cast", {result},
                 {ir::getF32Type(ctx)});
        fn::createReturn(b);
        ir::PassManager pm;
        pm.addPass(transforms::createArithToVarithPass());
        if (fuseRepeated)
            pm.addPass(
                transforms::createVarithFuseRepeatedOperandsPass());
        pm.run(module.get());
    }

    ir::OwningOp module;
    ir::Operation *fnOp;
    ir::OpBuilder b;
};

TEST_F(VarithTest, AddChainCollapsesToSingleVariadic)
{
    ir::Value x = fn::funcBody(fnOp)->argument(0);
    ir::Value c1 = ar::createConstantF32(b, 1.0);
    ir::Value c2 = ar::createConstantF32(b, 2.0);
    ir::Value sum = ar::createAddF(b, ar::createAddF(b, x, c1),
                                   ar::createAddF(b, c2, x));
    finishAndRun(sum);
    EXPECT_EQ(countOps(module.get(), "arith.addf"), 0);
    EXPECT_EQ(countOps(module.get(), va::kAdd), 1);
    ir::Operation *add = firstOp(module.get(), va::kAdd);
    EXPECT_EQ(add->numOperands(), 4u);
    EXPECT_TRUE(ir::verifies(module.get()));
}

TEST_F(VarithTest, MulChainsCollapseSeparately)
{
    ir::Value x = fn::funcBody(fnOp)->argument(0);
    ir::Value c = ar::createConstantF32(b, 3.0);
    ir::Value prod =
        ar::createMulF(b, ar::createMulF(b, x, c), x);
    finishAndRun(prod);
    EXPECT_EQ(countOps(module.get(), va::kMul), 1);
    EXPECT_EQ(firstOp(module.get(), va::kMul)->numOperands(), 3u);
}

TEST_F(VarithTest, MixedTreeKeepsStructure)
{
    // (a + b) * (a + c): two adds feed one mul; the adds collapse but
    // must not merge through the multiplication.
    ir::Value x = fn::funcBody(fnOp)->argument(0);
    ir::Value c1 = ar::createConstantF32(b, 1.0);
    ir::Value c2 = ar::createConstantF32(b, 2.0);
    ir::Value m = ar::createMulF(b, ar::createAddF(b, x, c1),
                                 ar::createAddF(b, x, c2));
    finishAndRun(m);
    EXPECT_EQ(countOps(module.get(), va::kAdd), 2);
    EXPECT_EQ(countOps(module.get(), va::kMul), 1);
}

TEST_F(VarithTest, SharedSubtreesAreNotFlattened)
{
    // A producer with two users must not be folded into either.
    ir::Value x = fn::funcBody(fnOp)->argument(0);
    ir::Value shared = ar::createAddF(b, x, x);
    ir::Value sum = ar::createAddF(b, shared, x);
    b.create("builtin.unrealized_cast", {shared},
             {ir::getF32Type(ctx)});
    finishAndRun(sum);
    EXPECT_EQ(countOps(module.get(), va::kAdd), 2);
}

TEST_F(VarithTest, RepeatedAddendsBecomeMultiplication)
{
    // u + u + u -> 3 * u (the Acoustic optimization of §5.7).
    ir::Value x = fn::funcBody(fnOp)->argument(0);
    ir::Value sum =
        ar::createAddF(b, ar::createAddF(b, x, x), x);
    finishAndRun(sum, /*fuseRepeated=*/true);
    EXPECT_EQ(countOps(module.get(), va::kAdd), 0);
    ir::Operation *mul = firstOp(module.get(), "arith.mulf");
    ASSERT_NE(mul, nullptr);
    bool sawThree = false;
    module->walk([&](ir::Operation *op) {
        if (ar::isFloatConstant(op) &&
            ar::floatConstantValue(op) == 3.0)
            sawThree = true;
    });
    EXPECT_TRUE(sawThree);
}

TEST_F(VarithTest, MixedRepeatsKeepOtherOperands)
{
    // u + u + w -> 2*u + w.
    ir::Value x = fn::funcBody(fnOp)->argument(0);
    ir::Value w = ar::createConstantF32(b, 7.0);
    ir::Value sum =
        ar::createAddF(b, ar::createAddF(b, x, x), w);
    finishAndRun(sum, /*fuseRepeated=*/true);
    ir::Operation *add = firstOp(module.get(), va::kAdd);
    ASSERT_NE(add, nullptr);
    EXPECT_EQ(add->numOperands(), 2u);
    EXPECT_EQ(countOps(module.get(), "arith.mulf"), 1);
}

TEST_F(VarithTest, VarithToArithExpandsBack)
{
    ir::Value x = fn::funcBody(fnOp)->argument(0);
    ir::Value c = ar::createConstantF32(b, 1.0);
    ir::Value sum = ar::createAddF(b, ar::createAddF(b, x, c), x);
    finishAndRun(sum);
    ir::PassManager pm;
    pm.addPass(transforms::createVarithToArithPass());
    pm.run(module.get());
    EXPECT_EQ(countOps(module.get(), va::kAdd), 0);
    EXPECT_EQ(countOps(module.get(), "arith.addf"), 2);
    EXPECT_TRUE(ir::verifies(module.get()));
}

TEST_F(VarithTest, AcousticEndToEndWithFusion)
{
    // The real kernel containing the u+u pattern stays correct.
    fe::Benchmark bench = fe::makeAcoustic(8, 8, 3, 16);
    double err = endToEndError(bench, wse::ArchParams::wse3(), 8, 8, 3);
    EXPECT_LT(err, 1e-4);
}

} // namespace
} // namespace wsc::test
