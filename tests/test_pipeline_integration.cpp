#include "test_helpers.h"

namespace wsc::test {
namespace {

namespace csl = dialects::csl;

class PipelineTest : public IrTest
{
};

TEST_F(PipelineTest, AllBenchmarksLowerAndVerify)
{
    for (fe::Benchmark &bench : fe::makeAllBenchmarks(12, 12, 3)) {
        ir::Context localCtx;
        dialects::registerAllDialects(localCtx);
        ir::OwningOp module = bench.program.emit(localCtx);
        EXPECT_NO_THROW(transforms::runPipeline(module.get()))
            << bench.name;
        EXPECT_TRUE(ir::verifies(module.get())) << bench.name;
        EXPECT_GE(countOps(module.get(), csl::kTask), 1) << bench.name;
    }
}

TEST_F(PipelineTest, PipelineHasTheDocumentedStageCount)
{
    ir::PassManager pm = transforms::buildPipeline();
    // 3 optimization + 2 group1 + 2 group2 + 3 group3 + 1 group4 +
    // 3 group5 passes.
    EXPECT_EQ(pm.size(), 14u);
    EXPECT_EQ(pm.pass(0).name(), "stencil-inlining");
    EXPECT_EQ(pm.pass(pm.size() - 1).name(), "lower-csl-wrapper");
}

TEST_F(PipelineTest, AblationTogglesChangeTheOutput)
{
    fe::Benchmark a = fe::makeDiffusion(8, 8, 3, 16);
    ir::OwningOp base = a.program.emit(ctx);
    transforms::runPipeline(base.get());

    fe::Benchmark b = fe::makeDiffusion(8, 8, 3, 16);
    ir::OwningOp noFmac = b.program.emit(ctx);
    transforms::PipelineOptions options;
    options.enableFmacFusion = false;
    transforms::runPipeline(noFmac.get(), options);

    EXPECT_GT(countOps(base.get(), csl::kFmacs),
              countOps(noFmac.get(), csl::kFmacs));
}

TEST_F(PipelineTest, ChunkForcingPropagatesToCommsExchange)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 3, 32);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::PipelineOptions options;
    options.forceNumChunks = 4;
    transforms::runPipeline(module.get(), options);
    ir::Operation *comms = firstOp(module.get(), csl::kCommsExchange);
    ASSERT_NE(comms, nullptr);
    EXPECT_EQ(csl::commsExchangeSpec(comms).numChunks, 4);
}

TEST_F(PipelineTest, SeismicCarriesSixteenAccesses)
{
    fe::Benchmark bench = fe::makeSeismic(12, 12, 3, 24);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());
    ir::Operation *comms = firstOp(module.get(), csl::kCommsExchange);
    csl::CommsExchangeSpec spec = csl::commsExchangeSpec(comms);
    EXPECT_EQ(spec.accesses.size(), 16u);
    EXPECT_EQ(spec.pattern, 4);
    EXPECT_EQ(spec.trimFirst, 4);
    EXPECT_EQ(spec.trimLast, 4);
}

TEST_F(PipelineTest, OnlyRequiredDataIsCommunicated)
{
    // A one-sided stencil communicates exactly one section (§6.1: only
    // data required by the calculation).
    fe::Program p(fe::Grid{8, 8, 16});
    p.setTimesteps(2);
    fe::Field u = p.addField("u");
    p.setUpdate(u, fe::constant(0.5) * (u() + u.at(1, 0, 0)));
    ir::OwningOp module = p.emit(ctx);
    transforms::runPipeline(module.get());
    ir::Operation *comms = firstOp(module.get(), csl::kCommsExchange);
    ASSERT_NE(comms, nullptr);
    csl::CommsExchangeSpec spec = csl::commsExchangeSpec(comms);
    ASSERT_EQ(spec.accesses.size(), 1u);
    EXPECT_EQ(spec.accesses[0], std::make_pair(int64_t(1), int64_t(0)));
}

TEST_F(PipelineTest, PipelineIsDeterministic)
{
    fe::Benchmark a = fe::makeAcoustic(8, 8, 3, 16);
    ir::OwningOp m1 = a.program.emit(ctx);
    transforms::runPipeline(m1.get());
    fe::Benchmark b = fe::makeAcoustic(8, 8, 3, 16);
    ir::OwningOp m2 = b.program.emit(ctx);
    transforms::runPipeline(m2.get());
    EXPECT_EQ(ir::printOp(m1.get()), ir::printOp(m2.get()));
}

TEST_F(PipelineTest, VerifyEachCanBeDisabled)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 2, 16);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::PipelineOptions options;
    options.verifyEach = false;
    EXPECT_NO_THROW(transforms::runPipeline(module.get(), options));
}

} // namespace
} // namespace wsc::test
