#include "test_helpers.h"

namespace wsc::test {
namespace {

namespace bt = dialects::builtin;
namespace ar = dialects::arith;
namespace fn = dialects::func;
namespace scf = dialects::scf;
namespace st = dialects::stencil;
namespace tn = dialects::tensor;
namespace mr = dialects::memref;
namespace ln = dialects::linalg;
namespace dmp = dialects::dmp;
namespace va = dialects::varith;
namespace cs = dialects::csl_stencil;
namespace cw = dialects::csl_wrapper;
namespace csl = dialects::csl;

/** Fixture with a module and a positioned builder. */
class DialectTest : public IrTest
{
  protected:
    DialectTest() : module(bt::createModule(ctx)), b(ctx)
    {
        b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    }

    bool verifies() { return ir::verifies(module.get()); }

    ir::OwningOp module;
    ir::OpBuilder b;
};

//===--- arith -------------------------------------------------------------

TEST_F(DialectTest, ArithConstantsAndBinaries)
{
    ir::Value c = ar::createConstantF32(b, 0.5);
    ir::Value i = ar::createConstantI32(b, 7);
    ir::Value sum = ar::createAddF(b, c, c);
    ir::Value prod = ar::createMulF(b, sum, c);
    (void)i;
    (void)prod;
    EXPECT_TRUE(verifies());
    EXPECT_TRUE(ar::isFloatConstant(c.definingOp()));
    EXPECT_EQ(ar::floatConstantValue(c.definingOp()), 0.5);
    EXPECT_FALSE(ar::isFloatConstant(i.definingOp()));
}

TEST_F(DialectTest, ArithDenseSplatConstant)
{
    ir::Type t = ir::getTensorType(ctx, {16}, ir::getF32Type(ctx));
    ir::Value c = ar::createDenseConstant(b, t, 0.25);
    EXPECT_TRUE(ar::isFloatConstant(c.definingOp()));
    EXPECT_EQ(ar::floatConstantValue(c.definingOp()), 0.25);
    EXPECT_TRUE(verifies());
}

TEST_F(DialectTest, ArithCmpRequiresPredicate)
{
    ir::Value a = ar::createConstantI32(b, 1);
    ir::Value c = ar::createCmpI(b, "lt", a, a);
    EXPECT_EQ(c.type(), ir::getI1Type(ctx));
    EXPECT_TRUE(verifies());
}

TEST_F(DialectTest, ArithTypeMismatchIsRejected)
{
    ir::Value f = ar::createConstantF32(b, 1.0);
    b.create(ar::kAddF, {f, f}, {ir::getI32Type(ctx)});
    EXPECT_FALSE(verifies());
}

//===--- func / scf ---------------------------------------------------------

TEST_F(DialectTest, FuncWithBodyAndReturn)
{
    ir::Operation *f =
        fn::createFunc(b, "kernel", {ir::getF32Type(ctx)}, {});
    ir::OpBuilder fb(ctx);
    fb.setInsertionPointToEnd(fn::funcBody(f));
    fn::createReturn(fb);
    EXPECT_EQ(fn::funcName(f), "kernel");
    EXPECT_TRUE(verifies());
}

TEST_F(DialectTest, ScfForCarriesIterArgs)
{
    ir::Operation *f = fn::createFunc(b, "kernel", {}, {});
    ir::OpBuilder fb(ctx);
    fb.setInsertionPointToEnd(fn::funcBody(f));
    ir::Value lb = ar::createConstantIndex(fb, 0);
    ir::Value ub = ar::createConstantIndex(fb, 10);
    ir::Value step = ar::createConstantIndex(fb, 1);
    ir::Value init = ar::createConstantF32(fb, 0.0);
    ir::Operation *forOp = scf::createFor(fb, lb, ub, step, {init});
    ir::OpBuilder body(ctx);
    body.setInsertionPointToEnd(scf::forBody(forOp));
    scf::createYield(body, {scf::forIterArgs(forOp)[0]});
    fn::createReturn(fb);

    EXPECT_EQ(forOp->numResults(), 1u);
    EXPECT_EQ(scf::forInductionVar(forOp).type(),
              ir::getIndexType(ctx));
    EXPECT_EQ(scf::forIterInits(forOp)[0], init);
    EXPECT_TRUE(verifies());
}

TEST_F(DialectTest, ScfIfThenElse)
{
    ir::Operation *f = fn::createFunc(b, "kernel", {}, {});
    ir::OpBuilder fb(ctx);
    fb.setInsertionPointToEnd(fn::funcBody(f));
    ir::Value a = ar::createConstantI32(fb, 1);
    ir::Value cond = ar::createCmpI(fb, "ne", a, a);
    ir::Operation *ifOp = scf::createIf(fb, cond);
    ir::OpBuilder tb(ctx);
    tb.setInsertionPointToEnd(scf::ifThenBlock(ifOp));
    scf::createYield(tb);
    ir::OpBuilder eb(ctx);
    eb.setInsertionPointToEnd(scf::ifElseBlock(ifOp));
    scf::createYield(eb);
    fn::createReturn(fb);
    EXPECT_TRUE(verifies());
}

//===--- stencil -------------------------------------------------------------

TEST_F(DialectTest, StencilTypesCarryBounds)
{
    st::Bounds bounds{{0, 0, 0}, {256, 256, 512}};
    ir::Type field = st::getFieldType(ctx, bounds, ir::getF32Type(ctx));
    ir::Type temp = st::getTempType(ctx, bounds, ir::getF32Type(ctx));
    EXPECT_TRUE(st::isFieldType(field));
    EXPECT_TRUE(st::isTempType(temp));
    EXPECT_NE(field, temp);
    EXPECT_EQ(st::boundsOf(field), bounds);
    EXPECT_EQ(st::boundsOf(field).totalSize(), 256 * 256 * 512);
}

TEST_F(DialectTest, StencilApplyRoundTrip)
{
    st::Bounds bounds{{0, 0, 0}, {8, 8, 16}};
    ir::Type field = st::getFieldType(ctx, bounds, ir::getF32Type(ctx));
    ir::Operation *f = fn::createFunc(b, "kernel", {field}, {});
    ir::OpBuilder fb(ctx);
    fb.setInsertionPointToEnd(fn::funcBody(f));
    ir::Value temp = st::createLoad(fb, fn::funcBody(f)->argument(0));
    ir::Operation *apply = st::createApply(
        fb, {temp}, {temp.type()});
    ir::OpBuilder ab(ctx);
    ab.setInsertionPointToEnd(st::applyBody(apply));
    ir::Value d0 =
        st::createAccess(ab, st::applyBody(apply)->argument(0),
                         {1, 0, 0});
    st::createReturn(ab, {d0});
    st::createStore(fb, apply->result(), fn::funcBody(f)->argument(0),
                    bounds);
    fn::createReturn(fb);

    EXPECT_TRUE(verifies());
    EXPECT_EQ(st::accessOffset(d0.definingOp()),
              (std::vector<int64_t>{1, 0, 0}));
}

TEST_F(DialectTest, StencilLoadRejectsNonField)
{
    st::Bounds bounds{{0, 0}, {8, 8}};
    ir::Type temp = st::getTempType(ctx, bounds, ir::getF32Type(ctx));
    ir::Operation *f = fn::createFunc(b, "kernel", {temp}, {});
    ir::OpBuilder fb(ctx);
    fb.setInsertionPointToEnd(fn::funcBody(f));
    fb.create(st::kLoad, {fn::funcBody(f)->argument(0)}, {temp});
    fn::createReturn(fb);
    EXPECT_FALSE(verifies());
}

//===--- tensor / memref / linalg --------------------------------------------

TEST_F(DialectTest, TensorInsertSlice)
{
    ir::Type big = ir::getTensorType(ctx, {32}, ir::getF32Type(ctx));
    ir::Type small = ir::getTensorType(ctx, {8}, ir::getF32Type(ctx));
    ir::Value dest = tn::createEmpty(b, big);
    ir::Value src = ar::createDenseConstant(b, small, 1.0);
    ir::Value off = ar::createConstantIndex(b, 8);
    ir::Value out = tn::createInsertSlice(b, src, dest, off, 8);
    EXPECT_EQ(out.type(), big);
    EXPECT_TRUE(verifies());
}

TEST_F(DialectTest, MemRefAllocSubviewLoadStore)
{
    ir::Type buf = ir::getMemRefType(ctx, {64}, ir::getF32Type(ctx));
    ir::Value alloc = mr::createAlloc(b, buf);
    ir::Value sub = mr::createSubview(b, alloc, 4, 16);
    EXPECT_EQ(ir::shapeOf(sub.type()), (std::vector<int64_t>{16}));
    ir::Value idx = ar::createConstantIndex(b, 0);
    ir::Value v = mr::createLoad(b, sub, {idx});
    mr::createStore(b, v, alloc, {idx});
    EXPECT_TRUE(verifies());
}

TEST_F(DialectTest, LinalgDpsOps)
{
    ir::Type buf = ir::getMemRefType(ctx, {16}, ir::getF32Type(ctx));
    ir::Value x = mr::createAlloc(b, buf);
    ir::Value y = mr::createAlloc(b, buf);
    ir::Value zero = ar::createConstantF32(b, 0.0);
    ln::createFill(b, zero, x);
    ln::createBinary(b, ln::kAdd, x, y, x);
    ir::Value scalar = ar::createConstantF32(b, 2.0);
    ln::createFmac(b, x, y, scalar, x);
    EXPECT_TRUE(verifies());
    EXPECT_EQ(ln::flopsPerElement(firstOp(module.get(), ln::kFmac)), 2);
    EXPECT_EQ(ln::flopsPerElement(firstOp(module.get(), ln::kAdd)), 1);
}

//===--- dmp / varith ---------------------------------------------------------

TEST_F(DialectTest, DmpSwapRoundTrip)
{
    st::Bounds bounds{{0, 0}, {8, 8}};
    ir::Type temp = st::getTempType(
        ctx, bounds, ir::getTensorType(ctx, {16}, ir::getF32Type(ctx)));
    ir::Operation *f = fn::createFunc(b, "kernel", {temp}, {});
    ir::OpBuilder fb(ctx);
    fb.setInsertionPointToEnd(fn::funcBody(f));
    std::vector<dmp::Exchange> swaps = {{1, 0, 1}, {-1, 0, 1}};
    ir::Value swapped = dmp::createSwap(
        fb, fn::funcBody(f)->argument(0), swaps, 8, 8);
    fn::createReturn(fb);
    (void)swapped;
    EXPECT_TRUE(verifies());
    ir::Operation *swap = firstOp(module.get(), dmp::kSwap);
    EXPECT_EQ(dmp::swapExchanges(swap), swaps);
    EXPECT_EQ(dmp::swapTopology(swap), std::make_pair(int64_t(8),
                                                      int64_t(8)));
}

TEST_F(DialectTest, VarithRequiresUniformTypes)
{
    ir::Value f = ar::createConstantF32(b, 1.0);
    ir::Value i = ar::createConstantI32(b, 1);
    b.create(va::kAdd, {f, i}, {f.type()});
    EXPECT_FALSE(verifies());
}

//===--- csl_stencil -----------------------------------------------------------

TEST_F(DialectTest, CslStencilPrefetchDescribesTheReceiveBuffer)
{
    st::Bounds bounds{{0, 0}, {8, 8}};
    ir::Type temp = st::getTempType(
        ctx, bounds, ir::getTensorType(ctx, {16, 1}, ir::getF32Type(ctx)));
    ir::Operation *f = fn::createFunc(b, "kernel", {temp}, {});
    ir::OpBuilder fb(ctx);
    fb.setInsertionPointToEnd(fn::funcBody(f));
    std::vector<dmp::Exchange> swaps = {{1, 0, 1}, {-1, 0, 1}};
    ir::Type bufType =
        ir::getTensorType(ctx, {2, 16}, ir::getF32Type(ctx));
    ir::Value buf = cs::createPrefetch(
        fb, fn::funcBody(f)->argument(0), swaps, 2, bufType);
    fn::createReturn(fb);
    EXPECT_EQ(buf.type(), bufType);
    ir::Operation *prefetch = firstOp(module.get(), cs::kPrefetch);
    EXPECT_EQ(cs::applyExchanges(prefetch).size(), 2u);
    EXPECT_EQ(cs::applyNumChunks(prefetch), 2);
    EXPECT_TRUE(verifies());
}

TEST_F(DialectTest, CanonicalExchangeOrderIsEwnsByDistance)
{
    std::vector<dmp::Exchange> swaps = {
        {0, 2, 2}, {-1, 0, 1}, {2, 0, 2}, {1, 0, 1}, {0, -1, 1}};
    std::vector<dmp::Exchange> sorted =
        cs::canonicalExchangeOrder(swaps);
    // East (dx>0) by distance, then West, then North, then South.
    EXPECT_EQ(sorted[0], (dmp::Exchange{1, 0, 1}));
    EXPECT_EQ(sorted[1], (dmp::Exchange{2, 0, 2}));
    EXPECT_EQ(sorted[2], (dmp::Exchange{-1, 0, 1}));
    EXPECT_EQ(sorted[3], (dmp::Exchange{0, -1, 1}));
    EXPECT_EQ(sorted[4], (dmp::Exchange{0, 2, 2}));
}

TEST_F(DialectTest, CanonicalOrderAgreesWithCommsLibrary)
{
    std::vector<dmp::Exchange> swaps;
    std::vector<comms::Access> accesses;
    for (int d = 1; d <= 3; ++d) {
        for (auto [dx, dy] : {std::pair{d, 0}, {-d, 0}, {0, d}, {0, -d}}) {
            swaps.push_back({dx, dy, d});
            accesses.push_back({dx, dy});
        }
    }
    std::vector<dmp::Exchange> s = cs::canonicalExchangeOrder(swaps);
    std::vector<comms::Access> a = comms::canonicalAccessOrder(accesses);
    ASSERT_EQ(s.size(), a.size());
    for (size_t i = 0; i < s.size(); ++i) {
        EXPECT_EQ(s[i].dx, a[i].dx) << "index " << i;
        EXPECT_EQ(s[i].dy, a[i].dy) << "index " << i;
    }
}

//===--- csl_wrapper -----------------------------------------------------------

TEST_F(DialectTest, CslWrapperModuleStructure)
{
    ir::Operation *w = cw::createModule(
        b, 8, 9, {{"z_dim", 512}, {"pattern", 2}}, "pe.csl");
    ir::OpBuilder lb(ctx);
    lb.setInsertionPointToEnd(cw::layoutBlock(w));
    cw::createYield(lb, {});
    EXPECT_EQ(cw::moduleExtent(w), std::make_pair(int64_t(8),
                                                  int64_t(9)));
    std::vector<cw::Param> params = cw::moduleParams(w);
    ASSERT_EQ(params.size(), 2u);
    EXPECT_EQ(params[0].name, "z_dim");
    EXPECT_EQ(params[0].value, 512);
    EXPECT_EQ(cw::layoutBlock(w)->numArguments(), 4u);
    EXPECT_TRUE(verifies());
}

//===--- csl -------------------------------------------------------------------

TEST_F(DialectTest, CslModuleKinds)
{
    csl::createModule(b, "layout", "layout");
    csl::createModule(b, "program", "pe");
    EXPECT_TRUE(verifies());
    ir::Operation *bad = csl::createModule(b, "program", "x");
    bad->setAttr("kind", ir::getStringAttr(ctx, "bogus"));
    EXPECT_FALSE(verifies());
}

TEST_F(DialectTest, CslTaskKindsAreValidated)
{
    ir::Operation *program = csl::createModule(b, "program", "pe");
    ir::OpBuilder pb(ctx);
    pb.setInsertionPointToEnd(csl::moduleBody(program));
    ir::Operation *task = csl::createTask(pb, "t0", "local", 3);
    ir::OpBuilder tb(ctx);
    tb.setInsertionPointToEnd(csl::calleeBody(task));
    csl::createReturn(tb);
    EXPECT_TRUE(verifies());
    task->setAttr("kind", ir::getStringAttr(ctx, "weird"));
    EXPECT_FALSE(verifies());
}

TEST_F(DialectTest, CslVariablesAndDsds)
{
    ir::Operation *program = csl::createModule(b, "program", "pe");
    ir::OpBuilder pb(ctx);
    pb.setInsertionPointToEnd(csl::moduleBody(program));
    ir::Type buf = ir::getMemRefType(ctx, {512}, ir::getF32Type(ctx));
    csl::createVariable(pb, "u", buf);
    ir::Operation *f = csl::createFunc(pb, "f");
    ir::OpBuilder fb(ctx);
    fb.setInsertionPointToEnd(csl::calleeBody(f));
    ir::Value d = csl::createGetMemDsd(fb, "u", 4, 504);
    ir::Value zero = ar::createConstantF32(fb, 0.0);
    csl::createBuiltin(fb, csl::kFmovs, {d, zero});
    csl::createReturn(fb);
    EXPECT_TRUE(verifies());
    EXPECT_TRUE(csl::isDsdType(d.type()));
}

TEST_F(DialectTest, CslCommsExchangeSpecRoundTrip)
{
    ir::Operation *program = csl::createModule(b, "program", "pe");
    ir::OpBuilder pb(ctx);
    pb.setInsertionPointToEnd(csl::moduleBody(program));
    ir::Type buf = ir::getMemRefType(ctx, {512}, ir::getF32Type(ctx));
    csl::createVariable(pb, "u", buf);
    ir::Operation *f = csl::createFunc(pb, "seq");
    ir::OpBuilder fb(ctx);
    fb.setInsertionPointToEnd(csl::calleeBody(f));
    ir::Value d = csl::createGetMemDsd(fb, "u", 0, 512);

    csl::CommsExchangeSpec spec;
    spec.recvCallback = "recv0";
    spec.doneCallback = "done0";
    spec.recvBufferName = "recv_buffer0";
    spec.accesses = {{1, 0}, {-1, 0}, {0, -1}, {0, 1}};
    spec.numChunks = 2;
    spec.pattern = 1;
    spec.zSize = 512;
    spec.trimFirst = 1;
    spec.trimLast = 1;
    spec.coeffs = {0.25, 0.25, 0.25, 0.25};
    ir::Operation *op = csl::createCommsExchange(fb, d, spec);
    csl::createReturn(fb);

    csl::CommsExchangeSpec decoded = csl::commsExchangeSpec(op);
    EXPECT_EQ(decoded.recvCallback, "recv0");
    EXPECT_EQ(decoded.recvBufferName, "recv_buffer0");
    EXPECT_EQ(decoded.accesses, spec.accesses);
    EXPECT_EQ(decoded.numChunks, 2);
    EXPECT_EQ(decoded.trimFirst, 1);
    EXPECT_EQ(decoded.coeffs, spec.coeffs);
    EXPECT_TRUE(verifies());
}

TEST_F(DialectTest, CslPtrTypes)
{
    ir::Type buf = ir::getMemRefType(ctx, {16}, ir::getF32Type(ctx));
    ir::Type ptr = csl::getPtrType(ctx, buf);
    EXPECT_TRUE(csl::isPtrType(ptr));
    EXPECT_EQ(csl::ptrPointeeType(ptr), buf);
}

} // namespace
} // namespace wsc::test
