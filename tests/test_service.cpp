/**
 * @file
 * Concurrent compile-service suite (`ctest -L service`).
 *
 * The differential contract: every artifact produced by the service —
 * any worker count, any request interleaving, recycled contexts, cache
 * hits, evicted-and-recompiled entries — must be byte-identical to a
 * cold single-threaded compile of the same request, and malformed
 * requests must fail their own job with exactly the diagnostics the
 * single-shot PR 7 corpus locks in, without poisoning the worker or
 * its context. Run under the tsan preset to prove the cache and pool
 * synchronization.
 */

#include "test_helpers.h"

#include <future>
#include <vector>

#include "codegen/csl_emitter.h"
#include "frontends/fortran_frontend.h"
#include "ir/diagnostics.h"
#include "ir/module_hash.h"
#include "service/compile_service.h"
#include "service/workload_requests.h"

namespace wsc::test {
namespace {

namespace bt = dialects::builtin;
namespace st = dialects::stencil;

constexpr int64_t kNx = 8, kNy = 8, kSteps = 2;

/** Cold oracle: compile `request` single-threaded in a fresh context. */
codegen::EmittedCsl
coldCompile(const service::CompileRequest &request)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::DiagnosticCollector collector(ctx);
    ir::OwningOp module = request.build(ctx);
    EXPECT_TRUE(module) << request.name;
    EXPECT_TRUE(ir::succeeded(ir::verify(module.get())));
    ir::PipelineResult result =
        transforms::runPipeline(module.get(), request.options);
    EXPECT_TRUE(result.succeeded) << result.str();
    return codegen::emitCsl(module.get());
}

void
expectBytesEqual(const codegen::EmittedCsl &got,
                 const codegen::EmittedCsl &want)
{
    EXPECT_EQ(got.layoutFile, want.layoutFile);
    EXPECT_EQ(got.programFile, want.programFile);
    EXPECT_FALSE(got.programFile.empty());
}

//===----------------------------------------------------------------------===
// Malformed corpora — the exact PR 7 single-shot cases, now as requests
//===----------------------------------------------------------------------===

struct BadIrCase
{
    const char *name;
    std::function<ir::OwningOp(ir::Context &)> build;
    const char *expectPass;
    const char *expectMessage;
};

std::vector<BadIrCase>
badIrCorpus()
{
    return {
        {"diagonal access",
         [](ir::Context &c) {
             fe::Program p(fe::Grid{8, 8, 16});
             p.setTimesteps(2);
             fe::Field u = p.addField("u");
             p.setUpdate(u, u.at(1, 1, 0));
             return p.emit(c);
         },
         "distribute-stencil", "box-shaped"},
        {"remote z offset",
         [](ir::Context &c) {
             fe::Program p(fe::Grid{8, 8, 16});
             p.setTimesteps(2);
             fe::Field u = p.addField("u");
             p.setUpdate(u, u.at(1, 0, 1));
             return p.emit(c);
         },
         "distribute-stencil", "z offset"},
        {"multiplicative remote/local mix",
         [](ir::Context &c) {
             fe::Program p(fe::Grid{8, 8, 16});
             p.setTimesteps(2);
             fe::Field u = p.addField("u");
             p.setUpdate(u, u.at(1, 0, 0) * u.at(0, 0, 0));
             return p.emit(c);
         },
         "convert-stencil-to-csl-stencil", "addition"},
        {"unsupported op in apply body",
         [](ir::Context &c) {
             fe::Program p(fe::Grid{8, 8, 16});
             p.setTimesteps(2);
             fe::Field u = p.addField("u");
             p.setUpdate(u, fe::constant(0.5) *
                                (u.at(0, 0, 1) + u.at(0, 0, -1)));
             ir::OwningOp module = p.emit(c);
             ir::Operation *apply = firstOp(module.get(), st::kApply);
             EXPECT_NE(apply, nullptr);
             if (!apply)
                 return module;
             ir::OpBuilder b(c);
             b.setInsertionPoint(st::applyBody(apply)->terminator());
             b.create("tensor.empty", {},
                      {ir::getTensorType(c, {4}, ir::getF32Type(c))});
             return module;
         },
         "tensorize-z", "unsupported op in apply body"},
        {"empty module (invariant violation)",
         [](ir::Context &c) { return bt::createModule(c); },
         "wrap-in-csl-wrapper", "internal error"},
    };
}

struct FortranCase
{
    const char *name;
    const char *source;
    const char *expectMessage;
    const char *expectLocation; // prefix match
};

std::vector<FortranCase>
fortranCorpus()
{
    return {
        {"unexpected character",
         "do i = 2, 11\n"
         " do j = 2, 11\n"
         "  do k = 2, 31\n"
         "   a(k,j,i) = @\n"
         "  enddo\n enddo\nenddo\n",
         "unexpected character '@'", "fortran:4:15"},
        {"absolute index",
         "do i = 2, 11\n"
         " do j = 2, 11\n"
         "  do k = 2, 31\n"
         "   a(k,j,i) = a(1,j,i)\n"
         "  enddo\n enddo\nenddo\n",
         "absolute indices", "fortran:4"},
        {"shallow loop nest",
         "do i = 2, 11\n"
         "enddo\n",
         "3-deep spatial loop nest", "fortran:"},
        {"off-centre assignment target",
         "do i = 2, 11\n"
         " do j = 2, 11\n"
         "  do k = 2, 31\n"
         "   a(k,j,i+1) = a(k,j,i)\n"
         "  enddo\n enddo\nenddo\n",
         "centre point", "fortran:4"},
        {"missing enddo",
         "do i = 2, 11\n"
         " do j = 2, 11\n"
         "  do k = 2, 31\n"
         "   a(k,j,i) = a(k-1,j,i)\n",
         "enddo", "fortran:"},
    };
}

const fe::FortranKernelConfig kFortranConfig{12, 12, 32, 2};

/** The error diagnostic of a failed reply (or nullptr). */
const ir::Diagnostic *
replyError(const service::CompileReply &reply)
{
    return reply.pipeline.firstError();
}

//===----------------------------------------------------------------------===
// Differential stress: N workers x all workloads x repeated rounds,
// hostile requests interleaved — every success byte-compared to the
// cold oracle, every failure compared to the PR 7 corpus.
//===----------------------------------------------------------------------===

void
runDifferentialStress(int threads, int rounds)
{
    std::vector<service::CompileRequest> workloads =
        service::allWorkloadRequests(kNx, kNy, kSteps);
    std::vector<codegen::EmittedCsl> cold;
    cold.reserve(workloads.size());
    for (const service::CompileRequest &request : workloads)
        cold.push_back(coldCompile(request));

    std::vector<BadIrCase> badIr = badIrCorpus();
    std::vector<FortranCase> badFortran = fortranCorpus();

    service::ServiceConfig config;
    config.threads = threads;
    service::CompileService svc(config);

    struct Pending
    {
        std::future<service::CompileReply> reply;
        size_t workload;       // index into `cold`, or SIZE_MAX
        const BadIrCase *ir;   // or nullptr
        const FortranCase *ft; // or nullptr
    };
    std::vector<Pending> pending;

    for (int round = 0; round < rounds; ++round) {
        for (size_t i = 0; i < workloads.size(); ++i) {
            // Interleave one hostile request per workload so failures
            // land on the same workers/contexts as the good compiles.
            const BadIrCase &bad = badIr[(round + i) % badIr.size()];
            service::CompileRequest badRequest;
            badRequest.name = bad.name;
            badRequest.build = bad.build;
            pending.push_back(
                {svc.submit(std::move(badRequest)), SIZE_MAX, &bad,
                 nullptr});

            pending.push_back(
                {svc.submit(workloads[i]), i, nullptr, nullptr});

            const FortranCase &hostile =
                badFortran[(round + i) % badFortran.size()];
            pending.push_back(
                {svc.submit(service::fortranRequest(
                     hostile.name, hostile.source, kFortranConfig)),
                 SIZE_MAX, nullptr, &hostile});
        }
    }

    for (Pending &p : pending) {
        service::CompileReply reply = p.reply.get();
        if (p.workload != SIZE_MAX) {
            SCOPED_TRACE(reply.name);
            ASSERT_TRUE(reply.ok) << reply.error;
            ASSERT_NE(reply.artifact, nullptr);
            expectBytesEqual(reply.artifact->csl, cold[p.workload]);
            continue;
        }
        ASSERT_FALSE(reply.ok);
        EXPECT_EQ(reply.artifact, nullptr);
        const ir::Diagnostic *err = replyError(reply);
        ASSERT_NE(err, nullptr) << reply.name;
        if (p.ir) {
            SCOPED_TRACE(p.ir->name);
            EXPECT_EQ(reply.pipeline.failedPass, p.ir->expectPass)
                << reply.pipeline.str();
            EXPECT_NE(err->message.find(p.ir->expectMessage),
                      std::string::npos)
                << err->str();
        } else {
            SCOPED_TRACE(p.ft->name);
            EXPECT_EQ(reply.pipeline.failedPass, "frontend")
                << reply.pipeline.str();
            EXPECT_NE(err->message.find(p.ft->expectMessage),
                      std::string::npos)
                << err->str();
            EXPECT_EQ(err->location.rfind(p.ft->expectLocation, 0), 0u)
                << err->location;
        }
    }

    service::ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.submitted,
              static_cast<uint64_t>(pending.size()));
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_EQ(stats.failed,
              static_cast<uint64_t>(2 * rounds * workloads.size()));
    EXPECT_LE(stats.contextsCreated,
              static_cast<uint64_t>(threads));
    EXPECT_GT(stats.contextsRecycled, 0u);
    if (threads == 1) {
        // Serial FIFO: every workload round after the first is a hit.
        EXPECT_EQ(stats.cache.hits,
                  static_cast<uint64_t>((rounds - 1) *
                                        workloads.size()));
    }
}

TEST(ServiceStressTest, DifferentialSingleWorker)
{
    runDifferentialStress(/*threads=*/1, /*rounds=*/3);
}

TEST(ServiceStressTest, DifferentialEightWorkers)
{
    runDifferentialStress(/*threads=*/8, /*rounds=*/3);
}

TEST(ServiceStressTest, ValidFortranCompilesThroughService)
{
    const char *source =
        "do i = 2, 11\n"
        " do j = 2, 11\n"
        "  do k = 2, 31\n"
        "   a(k,j,i) = 0.5 * (a(k,j,i-1) + a(k,j,i+1))\n"
        "  enddo\n enddo\nenddo\n";
    service::CompileRequest request = service::fortranRequest(
        "fortran-valid", source, kFortranConfig);
    codegen::EmittedCsl cold = coldCompile(request);

    service::CompileService svc;
    service::CompileReply reply = svc.compile(std::move(request));
    ASSERT_TRUE(reply.ok) << reply.error;
    expectBytesEqual(reply.artifact->csl, cold);
}

//===----------------------------------------------------------------------===
// Failure semantics: a failed job leaves its worker and context reusable
//===----------------------------------------------------------------------===

TEST(ServiceFailureTest, FailedJobLeavesWorkerReusable)
{
    service::CompileService svc; // one worker, one context
    for (const BadIrCase &bad : badIrCorpus()) {
        SCOPED_TRACE(bad.name);
        service::CompileRequest request;
        request.name = bad.name;
        request.build = bad.build;
        service::CompileReply reply = svc.compile(std::move(request));
        ASSERT_FALSE(reply.ok);
        EXPECT_EQ(reply.pipeline.failedPass, bad.expectPass);

        // The very next job on the same (recycled) context must match
        // the cold oracle byte for byte.
        service::CompileRequest good = service::benchmarkRequest(
            fe::makeDiffusion(kNx, kNy, kSteps, 16));
        good.bypassCache = true; // force a real compile every round
        codegen::EmittedCsl cold = coldCompile(good);
        service::CompileReply ok = svc.compile(std::move(good));
        ASSERT_TRUE(ok.ok) << ok.error;
        expectBytesEqual(ok.artifact->csl, cold);
    }
    EXPECT_EQ(svc.stats().contextsCreated, 1u);
}

TEST(ServiceFailureTest, FrontendThrowBecomesFailedReply)
{
    service::CompileService svc;
    service::CompileRequest request;
    request.name = "throwing-frontend";
    request.build = [](ir::Context &) -> ir::OwningOp {
        throw FatalError("frontend blew up");
    };
    service::CompileReply reply = svc.compile(std::move(request));
    ASSERT_FALSE(reply.ok);
    EXPECT_EQ(reply.pipeline.failedPass, "frontend");
    ASSERT_NE(replyError(reply), nullptr);
    EXPECT_NE(replyError(reply)->message.find("frontend blew up"),
              std::string::npos);
}

TEST(ServiceFailureTest, FrontendPanicBecomesInternalErrorReply)
{
    service::CompileService svc;
    service::CompileRequest request;
    request.name = "panicking-frontend";
    request.build = [](ir::Context &) -> ir::OwningOp {
        WSC_ASSERT(false, "simulated frontend invariant violation");
        return ir::OwningOp();
    };
    service::CompileReply reply = svc.compile(std::move(request));
    ASSERT_FALSE(reply.ok);
    EXPECT_EQ(reply.pipeline.failedPass, "frontend");
    ASSERT_NE(replyError(reply), nullptr);
    EXPECT_NE(replyError(reply)->message.find("internal error"),
              std::string::npos);
}

TEST(ServiceFailureTest, VerifierRejectionIsAFailedReply)
{
    service::CompileService svc;
    service::CompileRequest request;
    request.name = "invalid-ir";
    request.build = [](ir::Context &c) {
        ir::OwningOp module = bt::createModule(c);
        ir::OpBuilder b(c);
        b.setInsertionPointToEnd(bt::moduleBody(module.get()));
        b.create("arith.constant", {}, {ir::getF32Type(c)});
        return module;
    };
    service::CompileReply reply = svc.compile(std::move(request));
    ASSERT_FALSE(reply.ok);
    EXPECT_EQ(reply.pipeline.failedPass, "verify");
    ASSERT_NE(replyError(reply), nullptr);
    EXPECT_NE(replyError(reply)->message.find("value attribute"),
              std::string::npos);
}

//===----------------------------------------------------------------------===
// Artifact cache correctness
//===----------------------------------------------------------------------===

TEST(ServiceCacheTest, HitIsByteIdenticalWithSameCycleCount)
{
    service::CompileService svc;
    fe::Benchmark bench = fe::makeDiffusion(7, 7, 4, 16);
    service::CompileRequest request =
        service::benchmarkRequest(bench, /*simulate=*/true, 7, 7);

    service::CompileReply miss = svc.compile(request);
    ASSERT_TRUE(miss.ok) << miss.error;
    EXPECT_FALSE(miss.cacheHit);
    ASSERT_TRUE(miss.artifact->sim.simulated);
    EXPECT_GT(miss.artifact->sim.finalCycle, 0u);
    EXPECT_EQ(miss.artifact->sim.unblocks, 49u);

    service::CompileReply hit = svc.compile(request);
    ASSERT_TRUE(hit.ok) << hit.error;
    EXPECT_TRUE(hit.cacheHit);
    EXPECT_EQ(hit.key.lo, miss.key.lo);
    EXPECT_EQ(hit.key.hi, miss.key.hi);
    expectBytesEqual(hit.artifact->csl, miss.artifact->csl);
    EXPECT_EQ(hit.artifact->sim.finalCycle,
              miss.artifact->sim.finalCycle);

    // The cached cycle count is the real one: a bypass recompile (full
    // pipeline + fresh simulation) lands on the same final cycle.
    request.bypassCache = true;
    service::CompileReply fresh = svc.compile(request);
    ASSERT_TRUE(fresh.ok) << fresh.error;
    EXPECT_FALSE(fresh.cacheHit);
    expectBytesEqual(fresh.artifact->csl, miss.artifact->csl);
    EXPECT_EQ(fresh.artifact->sim.finalCycle,
              miss.artifact->sim.finalCycle);

    service::CacheStats stats = svc.cache().stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
}

TEST(ServiceCacheTest, CodegenOnlyEntryDoesNotServeSimRequests)
{
    service::CompileService svc;
    fe::Benchmark bench = fe::makeDiffusion(7, 7, 4, 16);

    service::CompileReply plain =
        svc.compile(service::benchmarkRequest(bench));
    ASSERT_TRUE(plain.ok);
    EXPECT_FALSE(plain.artifact->sim.simulated);

    // Same module + options but a simulation request: different sim
    // hash, different key — never served the unsimulated artifact.
    service::CompileReply simulated = svc.compile(
        service::benchmarkRequest(bench, /*simulate=*/true, 7, 7));
    ASSERT_TRUE(simulated.ok) << simulated.error;
    EXPECT_FALSE(simulated.cacheHit);
    EXPECT_FALSE(plain.key.lo == simulated.key.lo &&
                 plain.key.hi == simulated.key.hi);
    EXPECT_TRUE(simulated.artifact->sim.simulated);
    expectBytesEqual(simulated.artifact->csl, plain.artifact->csl);
}

TEST(ServiceCacheTest, DistinctOptionsAndArchNeverCollide)
{
    service::CompileService svc;
    fe::Benchmark bench = fe::makeDiffusion(kNx, kNy, kSteps, 16);

    service::CompileRequest base = service::benchmarkRequest(bench);

    service::CompileRequest noInline = service::benchmarkRequest(bench);
    noInline.options.enableStencilInlining = false;

    service::CompileRequest chunked = service::benchmarkRequest(bench);
    chunked.options.forceNumChunks = 4;

    service::CompileRequest wse2 = service::benchmarkRequest(bench);
    wse2.arch = wse::ArchParams::wse2();

    service::CompileReply r0 = svc.compile(base);
    service::CompileReply r1 = svc.compile(noInline);
    service::CompileReply r2 = svc.compile(chunked);
    service::CompileReply r3 = svc.compile(wse2);
    const service::CompileReply *replies[] = {&r0, &r1, &r2, &r3};
    for (const service::CompileReply *reply : replies)
        ASSERT_TRUE(reply->ok) << reply->error;

    // All four are misses (pairwise-distinct keys) and all four live in
    // the cache simultaneously.
    EXPECT_EQ(svc.cache().stats().hits, 0u);
    EXPECT_EQ(svc.cache().size(), 4u);
    for (size_t a = 0; a < 4; ++a)
        for (size_t b = a + 1; b < 4; ++b)
            EXPECT_FALSE(replies[a]->key.lo == replies[b]->key.lo &&
                         replies[a]->key.hi == replies[b]->key.hi)
                << a << " vs " << b;

    // And every variant still round-trips to a hit of its own entry.
    service::CompileReply again = svc.compile(noInline);
    EXPECT_TRUE(again.cacheHit);
    expectBytesEqual(again.artifact->csl, r1.artifact->csl);
}

TEST(ServiceCacheTest, EvictionUnderCapacityBoundRecompilesCorrectly)
{
    service::ServiceConfig config;
    config.cacheCapacity = 1; // single shard, single entry
    service::CompileService svc(config);

    service::CompileRequest a = service::benchmarkRequest(
        fe::makeJacobian(kNx, kNy, kSteps, 24));
    service::CompileRequest b = service::benchmarkRequest(
        fe::makeDiffusion(kNx, kNy, kSteps, 16));

    service::CompileReply first = svc.compile(a);
    ASSERT_TRUE(first.ok);
    service::CompileReply evictor = svc.compile(b);
    ASSERT_TRUE(evictor.ok);
    EXPECT_EQ(svc.cache().stats().evictions, 1u);
    EXPECT_EQ(svc.cache().size(), 1u);

    // `a` was evicted: the re-request is a miss and the recompiled
    // artifact is byte-identical to the original.
    service::CompileReply recompiled = svc.compile(a);
    ASSERT_TRUE(recompiled.ok);
    EXPECT_FALSE(recompiled.cacheHit);
    expectBytesEqual(recompiled.artifact->csl, first.artifact->csl);
    EXPECT_EQ(svc.cache().stats().evictions, 2u);
}

//===----------------------------------------------------------------------===
// Module fingerprint: stable across contexts and interning histories
//===----------------------------------------------------------------------===

TEST(ServiceFingerprintTest, StableAcrossContextsAndInterningHistory)
{
    fe::Benchmark bench = fe::makeDiffusion(kNx, kNy, kSteps, 16);

    ir::Context fresh;
    dialects::registerAllDialects(fresh);
    ir::ModuleFingerprint want;
    {
        ir::OwningOp module = bench.program.emit(fresh);
        want = ir::fingerprintModule(module.get());
    }

    // A context with a very different interning history (a full other
    // workload compiled first, then recycled) must agree: the
    // fingerprint depends on content, not on per-context intern ids.
    ir::Context dirty;
    dialects::registerAllDialects(dirty);
    {
        fe::Benchmark other = fe::makeSeismic(kNx, kNy, kSteps, 20);
        ir::OwningOp module = other.program.emit(dirty);
        ir::PipelineResult result =
            transforms::runPipeline(module.get());
        ASSERT_TRUE(result.succeeded) << result.str();
        EXPECT_NE(ir::fingerprintModule(module.get()), want);
    }
    dirty.reset();
    {
        ir::OwningOp module = bench.program.emit(dirty);
        EXPECT_EQ(ir::fingerprintModule(module.get()), want);
    }
}

TEST(ServiceFingerprintTest, ContentChangesChangeTheFingerprint)
{
    auto fingerprintOf = [](double coeff) {
        ir::Context ctx;
        dialects::registerAllDialects(ctx);
        fe::Program p(fe::Grid{8, 8, 16});
        p.setTimesteps(2);
        fe::Field u = p.addField("u");
        p.setUpdate(u, fe::constant(coeff) *
                           (u.at(0, 0, 1) + u.at(0, 0, -1)));
        ir::OwningOp module = p.emit(ctx);
        return ir::fingerprintModule(module.get());
    };
    // A single constant differing in the last bit must flip the key.
    EXPECT_NE(fingerprintOf(0.5), fingerprintOf(0.25));
    EXPECT_EQ(fingerprintOf(0.5), fingerprintOf(0.5));
}

//===----------------------------------------------------------------------===
// Context recycling: arena pages and intern pools plateau
//===----------------------------------------------------------------------===

TEST(ServiceResetTest, FiftyCompilesPerWorkloadPlateau)
{
    std::vector<service::CompileRequest> workloads =
        service::allWorkloadRequests(kNx, kNy, kSteps);
    for (service::CompileRequest &request : workloads) {
        SCOPED_TRACE(request.name);
        ir::Context ctx;
        dialects::registerAllDialects(ctx);

        codegen::EmittedCsl firstCsl;
        size_t plateauPages = 0;
        ir::Context::InternStats plateauIntern;
        for (int round = 0; round < 50; ++round) {
            {
                ir::DiagnosticCollector collector(ctx);
                ir::OwningOp module = request.build(ctx);
                ASSERT_TRUE(module);
                ir::PipelineResult result = transforms::runPipeline(
                    module.get(), request.options);
                ASSERT_TRUE(result.succeeded) << result.str();
                codegen::EmittedCsl csl =
                    codegen::emitCsl(module.get());
                if (round == 0)
                    firstCsl = csl;
                else
                    expectBytesEqual(csl, firstCsl);
            }
            ctx.reset();

            // The workload is identical every round, so after a warmup
            // round the retained arena pages and the intern-pool sizes
            // must stop growing entirely.
            if (round == 1) {
                plateauPages = ctx.arena().pageCount();
                plateauIntern = ctx.internStats();
                EXPECT_GT(plateauPages, 0u);
            } else if (round > 1) {
                EXPECT_EQ(ctx.arena().pageCount(), plateauPages)
                    << "arena grew on round " << round;
                ir::Context::InternStats now = ctx.internStats();
                EXPECT_EQ(now.types, plateauIntern.types);
                EXPECT_EQ(now.attrs, plateauIntern.attrs);
                EXPECT_EQ(now.attrNames, plateauIntern.attrNames);
            }
        }
        EXPECT_EQ(ctx.arena().resetCount(), 50u);
    }
}

TEST(ServiceResetTest, ResetRefusesWithHandlerInstalled)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::DiagnosticCollector collector(ctx);
    EXPECT_THROW(ctx.reset(), PanicError);
}

TEST(ServiceResetTest, PoolRecyclesInsteadOfCreating)
{
    int setups = 0;
    service::ContextPool pool(
        [&setups](ir::Context &ctx) {
            ++setups;
            dialects::registerAllDialects(ctx);
        });
    {
        service::ContextPool::Lease lease = pool.acquire();
        fe::Benchmark bench = fe::makeDiffusion(kNx, kNy, kSteps, 16);
        ir::OwningOp module = bench.program.emit(*lease);
        EXPECT_TRUE(ir::succeeded(ir::verify(module.get())));
    }
    EXPECT_EQ(pool.idle(), 1u);
    {
        service::ContextPool::Lease lease = pool.acquire();
        // The recycled context still has its dialects registered (the
        // op registry survives reset): emission works with no setup.
        fe::Benchmark bench = fe::makeJacobian(kNx, kNy, kSteps, 24);
        ir::OwningOp module = bench.program.emit(*lease);
        EXPECT_TRUE(ir::succeeded(ir::verify(module.get())));
    }
    EXPECT_EQ(setups, 1);
    EXPECT_EQ(pool.created(), 1u);
    EXPECT_EQ(pool.recycled(), 1u);
}

} // namespace
} // namespace wsc::test
