#include "test_helpers.h"

#include "frontends/fortran_frontend.h"

namespace wsc::test {
namespace {

namespace st = dialects::stencil;
namespace fnd = dialects::func;

TEST(SymFrontend, ExprRadius)
{
    fe::Program p(fe::Grid{8, 8, 16});
    fe::Field u = p.addField("u");
    fe::Expr e = u.at(2, 0, 0) + u.at(0, -1, 0) * fe::constant(3.0) +
                 u.at(0, 0, 4);
    int rx = 0, ry = 0, rz = 0;
    e.radius(rx, ry, rz);
    EXPECT_EQ(rx, 2);
    EXPECT_EQ(ry, 1);
    EXPECT_EQ(rz, 4);
}

TEST(SymFrontend, EmitSingleApplyWithLoop)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    fe::Program p(fe::Grid{8, 8, 16});
    p.setTimesteps(5);
    fe::Field u = p.addField("u");
    p.setUpdate(u, fe::constant(0.25) * (u.at(1, 0, 0) + u.at(-1, 0, 0) +
                                         u.at(0, 0, 1) + u.at(0, 0, -1)));
    ir::OwningOp module = p.emit(ctx);
    ASSERT_TRUE(ir::succeeded(ir::verify(module.get())));
    EXPECT_EQ(countOps(module.get(), st::kApply), 1);
    EXPECT_EQ(countOps(module.get(), dialects::scf::kFor), 1);
    EXPECT_EQ(countOps(module.get(), st::kLoad), 1);
    EXPECT_EQ(countOps(module.get(), st::kStore), 1);
}

TEST(SymFrontend, SingleIterationHasNoLoop)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    fe::Program p(fe::Grid{8, 8, 16});
    p.setTimesteps(1);
    fe::Field u = p.addField("u");
    p.setUpdate(u, u.at(1, 0, 0) + u.at(-1, 0, 0));
    ir::OwningOp module = p.emit(ctx);
    ASSERT_TRUE(ir::succeeded(ir::verify(module.get())));
    EXPECT_EQ(countOps(module.get(), dialects::scf::kFor), 0);
    EXPECT_EQ(countOps(module.get(), st::kApply), 1);
}

TEST(SymFrontend, RotationBecomesYieldPermutation)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    fe::Program p(fe::Grid{8, 8, 16});
    p.setTimesteps(4);
    fe::Field u = p.addField("u");
    fe::Field uPrev = p.addField("u_prev");
    p.setUpdate(u, fe::constant(2.0) * u() - uPrev() + u.at(1, 0, 0));
    p.setUpdate(uPrev, u());
    ir::OwningOp module = p.emit(ctx);
    ASSERT_TRUE(ir::succeeded(ir::verify(module.get())));
    // One apply (the rotation adds no compute).
    EXPECT_EQ(countOps(module.get(), st::kApply), 1);
    ir::Operation *forOp = firstOp(module.get(), dialects::scf::kFor);
    ASSERT_NE(forOp, nullptr);
    EXPECT_EQ(forOp->numResults(), 2u);
}

TEST(SymFrontend, AccessesAreCse)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    fe::Program p(fe::Grid{8, 8, 16});
    fe::Field u = p.addField("u");
    // u appears twice at the same offset: one access op expected.
    p.setUpdate(u, u() + u());
    ir::OwningOp module = p.emit(ctx);
    EXPECT_EQ(countOps(module.get(), st::kAccess), 1);
}

TEST(SymFrontend, ArgNamesAttrMatchesFields)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    fe::Program p(fe::Grid{4, 4, 8});
    fe::Field a = p.addField("alpha");
    p.addField("beta");
    p.setUpdate(a, a.at(1, 0, 0));
    ir::OwningOp module = p.emit(ctx);
    ir::Operation *kernel = firstOp(module.get(), fnd::kFunc);
    std::vector<ir::Attribute> names =
        ir::arrayAttrValue(kernel->attr("arg_names"));
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(ir::stringAttrValue(names[0]), "alpha");
    EXPECT_EQ(ir::stringAttrValue(names[1]), "beta");
}

//===--- Fortran frontend -----------------------------------------------------

TEST(FortranFrontend, ParsesJacobianLoopNest)
{
    std::string src = R"(
      do step = 1, 10
       do i = 2, 7
        do j = 2, 7
         do k = 2, 15
          a(k,j,i) = 0.25 * (a(k,j,i-1) + a(k,j,i+1) + a(k-1,j,i)
                      + a(k+1,j,i))
         enddo
        enddo
       enddo
      enddo
    )";
    fe::Program p = fe::parseFortranStencil(
        src, fe::FortranKernelConfig{8, 8, 16, 10});
    EXPECT_EQ(p.numFields(), 1u);
    EXPECT_EQ(p.fieldName(0), "a");
    EXPECT_EQ(p.timesteps(), 10);
    ASSERT_TRUE(p.update(0).has_value());
}

TEST(FortranFrontend, FirstIndexIsZ)
{
    // a(k+3,j,i) must be a z offset of +3, not an x offset.
    std::string src =
        "do i = 2, 7\n do j = 2, 7\n  do k = 2, 15\n"
        "   a(k,j,i) = a(k+3,j,i)\n"
        "  enddo\n enddo\nenddo\n";
    fe::Program p = fe::parseFortranStencil(
        src, fe::FortranKernelConfig{8, 8, 16, 1});
    const fe::ExprNode *n = p.update(0)->node().get();
    EXPECT_EQ(n->kind, fe::ExprKind::Access);
    EXPECT_EQ(n->dz, 3);
    EXPECT_EQ(n->dx, 0);
}

TEST(FortranFrontend, LaterStatementsSeeEarlierResults)
{
    std::string src =
        "do i = 2, 7\n do j = 2, 7\n  do k = 2, 15\n"
        "   ke(k,j,i) = 0.5 * u(k,j,i)\n"
        "   out(k,j,i) = ke(k,j,i) + v(k,j,i)\n"
        "  enddo\n enddo\nenddo\n";
    fe::Program p = fe::parseFortranStencil(
        src, fe::FortranKernelConfig{8, 8, 16, 1});
    EXPECT_EQ(p.numFields(), 4u);
    // out = ke.next + v: find the ke access and check the flag.
    const fe::ExprNode *addNode = nullptr;
    for (size_t f = 0; f < p.numFields(); ++f)
        if (p.fieldName(f) == "out")
            addNode = p.update(f)->node().get();
    ASSERT_NE(addNode, nullptr);
    ASSERT_EQ(addNode->kind, fe::ExprKind::Add);
    EXPECT_TRUE(addNode->lhs->next); // the ke reference
    EXPECT_FALSE(addNode->rhs->next);
}

TEST(FortranFrontend, SelfReferenceReadsOldValues)
{
    std::string src =
        "do i = 2, 7\n do j = 2, 7\n  do k = 2, 15\n"
        "   a(k,j,i) = a(k,j,i+1)\n"
        "  enddo\n enddo\nenddo\n";
    fe::Program p = fe::parseFortranStencil(
        src, fe::FortranKernelConfig{8, 8, 16, 1});
    EXPECT_FALSE(p.update(0)->node()->next);
}

TEST(FortranFrontend, RejectsDiagonalTargets)
{
    std::string src =
        "do i = 2, 7\n do j = 2, 7\n  do k = 2, 15\n"
        "   a(k,j+1,i) = a(k,j,i)\n"
        "  enddo\n enddo\nenddo\n";
    EXPECT_THROW(fe::parseFortranStencil(
                     src, fe::FortranKernelConfig{8, 8, 16, 1}),
                 FatalError);
}

TEST(FortranFrontend, RejectsWrongLoopVarUse)
{
    std::string src =
        "do i = 2, 7\n do j = 2, 7\n  do k = 2, 15\n"
        "   a(j,k,i) = 1.0\n"
        "  enddo\n enddo\nenddo\n";
    EXPECT_THROW(fe::parseFortranStencil(
                     src, fe::FortranKernelConfig{8, 8, 16, 1}),
                 FatalError);
}

TEST(FortranFrontend, ParsesNegativeAndParenthesizedExprs)
{
    std::string src =
        "do i = 2, 7\n do j = 2, 7\n  do k = 2, 15\n"
        "   a(k,j,i) = -0.5 * (a(k,j,i+1) - a(k,j,i-1)) / 2.0\n"
        "  enddo\n enddo\nenddo\n";
    fe::Program p = fe::parseFortranStencil(
        src, fe::FortranKernelConfig{8, 8, 16, 1});
    ASSERT_TRUE(p.update(0).has_value());
}

//===--- benchmark definitions -------------------------------------------------

TEST(Benchmarks, FiveBenchmarksBuild)
{
    std::vector<fe::Benchmark> all = fe::makeAllBenchmarks(12, 12, 3);
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(all[0].name, "Jacobian");
    EXPECT_EQ(all[0].frontend, "Flang");
    EXPECT_EQ(all[1].name, "Diffusion");
    EXPECT_EQ(all[2].name, "Acoustic");
    EXPECT_EQ(all[3].name, "Seismic");
    EXPECT_EQ(all[4].name, "UVKBE");
    EXPECT_EQ(all[4].frontend, "PSyclone");
}

TEST(Benchmarks, PaperZDimensions)
{
    EXPECT_EQ(fe::makeJacobian(8, 8, 1).program.grid().nz, 900);
    EXPECT_EQ(fe::makeDiffusion(8, 8, 1).program.grid().nz, 704);
    EXPECT_EQ(fe::makeAcoustic(8, 8, 1).program.grid().nz, 604);
    EXPECT_EQ(fe::makeSeismic(10, 10, 1).program.grid().nz, 450);
    EXPECT_EQ(fe::makeUvkbe(8, 8).program.grid().nz, 600);
}

TEST(Benchmarks, PaperIterationCounts)
{
    EXPECT_EQ(fe::makeJacobian(8, 8, 1).paperIterations, 100000);
    EXPECT_EQ(fe::makeDiffusion(8, 8, 1).paperIterations, 512);
    EXPECT_EQ(fe::makeAcoustic(8, 8, 1).paperIterations, 512);
    EXPECT_EQ(fe::makeSeismic(10, 10, 1).paperIterations, 100000);
    EXPECT_EQ(fe::makeUvkbe(8, 8).paperIterations, 1);
}

TEST(Benchmarks, ProblemSizesMatchPaper)
{
    EXPECT_EQ(fe::smallSize().nx, 100);
    EXPECT_EQ(fe::mediumSize().nx, 500);
    EXPECT_EQ(fe::largeSize().nx, 750);
    EXPECT_EQ(fe::largeSize().ny, 994);
}

TEST(Benchmarks, SeismicIs25Point)
{
    fe::Benchmark b = fe::makeSeismic(10, 10, 1);
    int rx = 0, ry = 0, rz = 0;
    b.program.update(0)->radius(rx, ry, rz);
    EXPECT_EQ(rx, 4);
    EXPECT_EQ(ry, 4);
    EXPECT_EQ(rz, 4);
}

TEST(Benchmarks, UvkbeHasFourFieldsTwoUpdates)
{
    fe::Benchmark b = fe::makeUvkbe(8, 8, 16);
    EXPECT_EQ(b.program.numFields(), 4u);
    int updates = 0;
    for (size_t f = 0; f < b.program.numFields(); ++f)
        if (b.program.update(f))
            updates++;
    EXPECT_EQ(updates, 2);
}

} // namespace
} // namespace wsc::test
