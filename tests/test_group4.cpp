#include "test_helpers.h"

#include "transforms/arith_to_linalg.h"
#include "transforms/bufferize.h"
#include "transforms/control_flow_to_task_graph.h"
#include "transforms/csl_wrapper_hoist.h"
#include "transforms/distribute_stencil.h"
#include "transforms/linalg_fuse_fmac.h"
#include "transforms/stencil_inlining.h"
#include "transforms/stencil_to_csl_stencil.h"
#include "transforms/tensorize_z.h"
#include "transforms/varith_transforms.h"

namespace wsc::test {
namespace {

namespace csl = dialects::csl;
namespace cw = dialects::csl_wrapper;

class Group4Test : public IrTest
{
  protected:
    ir::OwningOp
    lowerToGroup4(fe::Benchmark &bench)
    {
        ir::OwningOp module = bench.program.emit(ctx);
        ir::PassManager pm;
        pm.addPass(transforms::createStencilInliningPass());
        pm.addPass(transforms::createArithToVarithPass());
        pm.addPass(
            transforms::createVarithFuseRepeatedOperandsPass());
        pm.addPass(transforms::createDistributeStencilPass());
        pm.addPass(transforms::createTensorizeZPass());
        pm.addPass(transforms::createStencilToCslStencilPass());
        pm.addPass(transforms::createCslWrapperHoistPass());
        pm.addPass(transforms::createBufferizePass());
        pm.addPass(transforms::createArithToLinalgPass());
        pm.addPass(transforms::createLinalgFuseFmacPass());
        pm.addPass(transforms::createControlFlowToTaskGraphPass());
        pm.run(module.get());
        return module;
    }

    std::set<std::string>
    symbolNames(ir::Operation *module)
    {
        std::set<std::string> names;
        module->walk([&](ir::Operation *op) {
            if (op->opId() == csl::kFunc || op->opId() == csl::kTask)
                names.insert(op->strAttr("sym_name"));
        });
        return names;
    }
};

TEST_F(Group4Test, TimestepLoopBecomesFigureOneStructure)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 5, 16);
    ir::OwningOp module = lowerToGroup4(bench);
    std::set<std::string> names = symbolNames(module.get());
    // The task graph of the paper's Figure 1.
    EXPECT_TRUE(names.count("f_main"));
    EXPECT_TRUE(names.count("for_cond0"));
    EXPECT_TRUE(names.count("seq_kernel0"));
    EXPECT_TRUE(names.count("receive_chunk_cb0"));
    EXPECT_TRUE(names.count("done_exchange_cb0"));
    EXPECT_TRUE(names.count("for_inc0"));
    EXPECT_TRUE(names.count("for_post0"));
    // No structured control flow or stencil ops remain at top level.
    EXPECT_EQ(countOps(module.get(), "scf.for"), 0);
    EXPECT_EQ(countOps(module.get(), "csl_stencil.apply"), 0);
    EXPECT_EQ(countOps(module.get(), "func.func"), 0);
    EXPECT_TRUE(ir::verifies(module.get()));
}

TEST_F(Group4Test, CallbacksAreLocalTasks)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 5, 16);
    ir::OwningOp module = lowerToGroup4(bench);
    ir::Operation *recv = nullptr;
    ir::Operation *cond = nullptr;
    module->walk([&](ir::Operation *op) {
        if (op->opId() != csl::kTask)
            return;
        if (op->strAttr("sym_name") == "receive_chunk_cb0")
            recv = op;
        if (op->strAttr("sym_name") == "for_cond0")
            cond = op;
    });
    ASSERT_NE(recv, nullptr);
    ASSERT_NE(cond, nullptr);
    EXPECT_EQ(recv->strAttr("kind"), "local");
    // The receive task takes the chunk offset.
    EXPECT_EQ(csl::calleeBody(recv)->numArguments(), 1u);
    EXPECT_EQ(csl::calleeBody(cond)->numArguments(), 0u);
    // Distinct task ids.
    EXPECT_NE(recv->intAttr("id"), cond->intAttr("id"));
}

TEST_F(Group4Test, SeqKernelZeroesAccumulatorAndExchanges)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 5, 16);
    ir::OwningOp module = lowerToGroup4(bench);
    ir::Operation *seq = nullptr;
    module->walk([&](ir::Operation *op) {
        if (op->opId() == csl::kFunc &&
            op->strAttr("sym_name") == "seq_kernel0")
            seq = op;
    });
    ASSERT_NE(seq, nullptr);
    EXPECT_EQ(countOps(seq, "linalg.fill"), 1);
    EXPECT_EQ(countOps(seq, csl::kCommsExchange), 1);
    ir::Operation *comms = firstOp(seq, csl::kCommsExchange);
    csl::CommsExchangeSpec spec = csl::commsExchangeSpec(comms);
    EXPECT_EQ(spec.recvCallback, "receive_chunk_cb0");
    EXPECT_EQ(spec.doneCallback, "done_exchange_cb0");
    EXPECT_EQ(spec.zSize, 16);
    EXPECT_EQ(spec.trimFirst, 1); // Jacobian z radius
    EXPECT_EQ(spec.accesses.size(), 4u);
}

TEST_F(Group4Test, ContinuationChainsThroughDoneCallback)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 5, 16);
    ir::OwningOp module = lowerToGroup4(bench);
    ir::Operation *done = nullptr;
    module->walk([&](ir::Operation *op) {
        if (op->opId() == csl::kTask &&
            op->strAttr("sym_name") == "done_exchange_cb0")
            done = op;
    });
    ASSERT_NE(done, nullptr);
    ir::Operation *call = firstOp(done, csl::kCall);
    ASSERT_NE(call, nullptr);
    EXPECT_EQ(call->strAttr("callee"), "for_inc0");
}

TEST_F(Group4Test, ForIncRotatesPointersAndReactivates)
{
    fe::Benchmark bench = fe::makeAcoustic(8, 8, 5, 16);
    ir::OwningOp module = lowerToGroup4(bench);
    ir::Operation *inc = nullptr;
    module->walk([&](ir::Operation *op) {
        if (op->opId() == csl::kFunc &&
            op->strAttr("sym_name") == "for_inc0")
            inc = op;
    });
    ASSERT_NE(inc, nullptr);
    // Acoustic rotates three buffers: all three pointer slots change.
    EXPECT_EQ(countOps(inc, csl::kStoreVar), 1 + 3); // step + 3 ptrs
    ir::Operation *activate = firstOp(inc, csl::kActivate);
    ASSERT_NE(activate, nullptr);
    EXPECT_EQ(activate->strAttr("task"), "for_cond0");
}

TEST_F(Group4Test, ModuleVariablesForFieldsAndBuffers)
{
    fe::Benchmark bench = fe::makeAcoustic(8, 8, 5, 16);
    ir::OwningOp module = lowerToGroup4(bench);
    std::set<std::string> vars;
    module->walk([&](ir::Operation *op) {
        if (op->opId() == csl::kVariable)
            vars.insert(op->strAttr("sym_name"));
    });
    EXPECT_TRUE(vars.count("u"));
    EXPECT_TRUE(vars.count("u_prev"));
    EXPECT_TRUE(vars.count("out0"));
    EXPECT_TRUE(vars.count("acc0"));
    EXPECT_TRUE(vars.count("recv_buffer0"));
    EXPECT_TRUE(vars.count("ptr_iter0"));
    EXPECT_TRUE(vars.count("ptr_iter1"));
    EXPECT_TRUE(vars.count("ptr_out0"));
    EXPECT_TRUE(vars.count("step"));
    EXPECT_TRUE(vars.count("is_interior0"));
}

TEST_F(Group4Test, ResultBufferInheritsFieldInit)
{
    fe::Benchmark bench = fe::makeAcoustic(8, 8, 5, 16);
    ir::OwningOp module = lowerToGroup4(bench);
    ir::Operation *out0 = nullptr;
    module->walk([&](ir::Operation *op) {
        if (op->opId() == csl::kVariable &&
            op->strAttr("sym_name") == "out0")
            out0 = op;
    });
    ASSERT_NE(out0, nullptr);
    ASSERT_TRUE(out0->hasAttr("init_as"));
    EXPECT_EQ(out0->strAttr("init_as"), "u");
}

TEST_F(Group4Test, UvkbeChainsTwoKernelsWithoutLoop)
{
    fe::Benchmark bench = fe::makeUvkbe(8, 8, 16);
    ir::OwningOp module = lowerToGroup4(bench);
    std::set<std::string> names = symbolNames(module.get());
    EXPECT_TRUE(names.count("seq_kernel0"));
    EXPECT_TRUE(names.count("seq_kernel1"));
    EXPECT_FALSE(names.count("for_cond0"));
    EXPECT_FALSE(names.count("for_inc0"));
    // done_exchange_cb0 chains into seq_kernel1.
    ir::Operation *done0 = nullptr;
    module->walk([&](ir::Operation *op) {
        if (op->opId() == csl::kTask &&
            op->strAttr("sym_name") == "done_exchange_cb0")
            done0 = op;
    });
    ASSERT_NE(done0, nullptr);
    EXPECT_EQ(firstOp(done0, csl::kCall)->strAttr("callee"),
              "seq_kernel1");
}

TEST_F(Group4Test, ResultFieldMappingRecorded)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 5, 16);
    ir::OwningOp module = lowerToGroup4(bench);
    ir::Operation *wrapper = firstOp(module.get(), cw::kModule);
    ir::Attribute results = wrapper->attr("result_fields");
    ASSERT_TRUE(results);
    std::vector<ir::Attribute> entries = ir::arrayAttrValue(results);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(ir::stringAttrValue(ir::dictAttrGet(entries[0], "field")),
              "a");
    EXPECT_EQ(ir::intAttrValue(ir::dictAttrGet(entries[0], "via_ptr")),
              1);
}

TEST_F(Group4Test, ExportsHostSymbols)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 5, 16);
    ir::OwningOp module = lowerToGroup4(bench);
    int fnExports = 0;
    int varExports = 0;
    module->walk([&](ir::Operation *op) {
        if (op->opId() != csl::kExport)
            return;
        if (op->strAttr("kind") == "fn")
            fnExports++;
        else
            varExports++;
    });
    EXPECT_EQ(fnExports, 1); // f_main
    EXPECT_EQ(varExports, 1); // the field
}

} // namespace
} // namespace wsc::test
