#include <gtest/gtest.h>

#include "support/error.h"
#include "wse/fabric.h"
#include "wse/simulator.h"

namespace wsc::test {
namespace {

using wse::ArchParams;
using wse::Cycles;
using wse::Direction;
using wse::Simulator;

struct Delivery
{
    int x;
    int y;
    int distance;
    Cycles at;
    std::vector<float> data;
};

class FabricTest : public ::testing::Test
{
  protected:
    std::vector<Delivery> deliveries;

    wse::DeliveryFn
    collect()
    {
        return [this](const wse::StreamDelivery &d,
                      const std::vector<float> &payload) {
            deliveries.push_back(
                {d.peX, d.peY, d.distance, d.completeAt, payload});
        };
    }
};

TEST_F(FabricTest, SingleHopDeliveryCarriesPayload)
{
    Simulator sim(ArchParams::wse3(), 3, 1);
    std::vector<float> payload = {1.0f, 2.0f, 3.0f};
    sim.fabric().sendStream(0, 0, Direction::East, {1}, payload, 0,
                            collect());
    sim.run();
    ASSERT_EQ(deliveries.size(), 1u);
    EXPECT_EQ(deliveries[0].x, 1);
    EXPECT_EQ(deliveries[0].y, 0);
    EXPECT_EQ(deliveries[0].data, payload);
    // 3 wavelets: inject 3 cycles, 1 hop, landing.
    EXPECT_GE(deliveries[0].at, 4u);
}

TEST_F(FabricTest, MulticastDeliversAtEachListedDistance)
{
    Simulator sim(ArchParams::wse3(), 5, 1);
    sim.fabric().sendStream(0, 0, Direction::East, {1, 2, 3},
                            {1.0f, 2.0f}, 0, collect());
    sim.run();
    ASSERT_EQ(deliveries.size(), 3u);
    EXPECT_EQ(deliveries[0].distance, 1);
    EXPECT_EQ(deliveries[2].distance, 3);
    EXPECT_EQ(deliveries[2].x, 3);
    // Farther hops land strictly later.
    EXPECT_LT(deliveries[0].at, deliveries[1].at);
    EXPECT_LT(deliveries[1].at, deliveries[2].at);
}

TEST_F(FabricTest, SkippedDistancesForwardWithoutDelivering)
{
    Simulator sim(ArchParams::wse3(), 5, 1);
    sim.fabric().sendStream(0, 0, Direction::East, {3}, {1.0f}, 0,
                            collect());
    sim.run();
    ASSERT_EQ(deliveries.size(), 1u);
    EXPECT_EQ(deliveries[0].x, 3);
}

TEST_F(FabricTest, StreamsTruncateAtTheGridEdge)
{
    Simulator sim(ArchParams::wse3(), 2, 1);
    sim.fabric().sendStream(0, 0, Direction::East, {1, 2, 3}, {1.0f}, 0,
                            collect());
    sim.run();
    ASSERT_EQ(deliveries.size(), 1u); // only distance 1 exists
}

TEST_F(FabricTest, AllFourDirectionsWork)
{
    Simulator sim(ArchParams::wse3(), 3, 3);
    for (Direction d : wse::allDirections())
        sim.fabric().sendStream(1, 1, d, {1}, {1.0f}, 0, collect());
    sim.run();
    ASSERT_EQ(deliveries.size(), 4u);
    std::set<std::pair<int, int>> targets;
    for (const Delivery &d : deliveries)
        targets.insert({d.x, d.y});
    EXPECT_TRUE(targets.count({2, 1})); // east
    EXPECT_TRUE(targets.count({0, 1})); // west
    EXPECT_TRUE(targets.count({1, 0})); // north
    EXPECT_TRUE(targets.count({1, 2})); // south
}

TEST_F(FabricTest, LinkContentionSerializesStreams)
{
    Simulator sim(ArchParams::wse3(), 3, 1);
    const Cycles m = 100;
    std::vector<float> payload(m, 1.0f);
    // Two streams from the same sender on the same link.
    sim.fabric().sendStream(0, 0, Direction::East, {1}, payload, 0,
                            collect());
    sim.fabric().sendStream(0, 0, Direction::East, {1}, payload, 0,
                            collect());
    sim.run();
    ASSERT_EQ(deliveries.size(), 2u);
    Cycles first = std::min(deliveries[0].at, deliveries[1].at);
    Cycles second = std::max(deliveries[0].at, deliveries[1].at);
    // The second stream cannot land less than m cycles after the first.
    EXPECT_GE(second, first + m);
}

TEST_F(FabricTest, OppositeDirectionsDoNotContend)
{
    Simulator sim(ArchParams::wse3(), 3, 1);
    const Cycles m = 100;
    std::vector<float> payload(m, 1.0f);
    // PE1 sends east and west simultaneously: different links.
    sim.fabric().sendStream(1, 0, Direction::East, {1}, payload, 0,
                            collect());
    sim.fabric().sendStream(1, 0, Direction::West, {1}, payload, 0,
                            collect());
    sim.run();
    ASSERT_EQ(deliveries.size(), 2u);
    // Both land around the same time; sender ramp serializes injection,
    // so allow the injection gap but not a full extra stream.
    Cycles diff = deliveries[0].at > deliveries[1].at
                      ? deliveries[0].at - deliveries[1].at
                      : deliveries[1].at - deliveries[0].at;
    EXPECT_LE(diff, m + 10);
}

TEST_F(FabricTest, SelfTransmitOccupiesSenderOnWse2)
{
    // Identical send on WSE2 vs WSE3: the WSE2 sender's work timeline
    // must additionally absorb the self-copy.
    const Cycles m = 200;
    std::vector<float> payload(m, 1.0f);

    Simulator sim3(ArchParams::wse3(), 2, 1);
    sim3.fabric().sendStream(0, 0, Direction::East, {1}, payload, 0,
                             collect());
    sim3.run();
    Cycles free3 = sim3.pe(0, 0).workFree();

    Simulator sim2(ArchParams::wse2(), 2, 1);
    sim2.fabric().sendStream(0, 0, Direction::East, {1}, payload, 0,
                             collect());
    sim2.run();
    Cycles free2 = sim2.pe(0, 0).workFree();

    EXPECT_EQ(free3, m);
    EXPECT_EQ(free2, 2 * m);
}

TEST_F(FabricTest, SwitchReconfigCostsMoreOnWse2)
{
    Simulator sim2(ArchParams::wse2(), 2, 1);
    Simulator sim3(ArchParams::wse3(), 2, 1);
    Cycles t2 = sim2.fabric().switchReconfig(0, 0, Direction::East, 0);
    Cycles t3 = sim3.fabric().switchReconfig(0, 0, Direction::East, 0);
    EXPECT_GT(t2, t3);
}

TEST_F(FabricTest, WaveletStatsCountHops)
{
    Simulator sim(ArchParams::wse3(), 4, 1);
    sim.fabric().sendStream(0, 0, Direction::East, {1, 3},
                            {1.0f, 2.0f}, 0, collect());
    sim.run();
    // 2 wavelets over 3 hops.
    EXPECT_EQ(sim.stats().waveletsSent, 6u);
    EXPECT_EQ(sim.fabric().waveletHops(), 6u);
}

TEST_F(FabricTest, PayloadIsSnapshottedPerDelivery)
{
    Simulator sim(ArchParams::wse3(), 3, 1);
    std::vector<float> payload = {7.0f};
    sim.fabric().sendStream(0, 0, Direction::East, {1, 2}, payload, 0,
                            collect());
    payload[0] = -1.0f; // mutation after the call must not be visible
    sim.run();
    ASSERT_EQ(deliveries.size(), 2u);
    EXPECT_EQ(deliveries[0].data[0], 7.0f);
    EXPECT_EQ(deliveries[1].data[0], 7.0f);
}

} // namespace
} // namespace wsc::test
