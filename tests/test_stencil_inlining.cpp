#include "test_helpers.h"

#include "transforms/stencil_inlining.h"

namespace wsc::test {
namespace {

namespace st = dialects::stencil;

/** Build the UVKBE-like two-apply chain and run the inlining pass. */
class InliningTest : public IrTest
{
  protected:
    ir::OwningOp
    buildTwoApplies(bool offsetAccess)
    {
        fe::Program p(fe::Grid{8, 8, 16});
        p.setTimesteps(1);
        fe::Field u = p.addField("u");
        fe::Field ke = p.addField("ke");
        fe::Field out = p.addField("out");
        p.setUpdate(ke, fe::constant(0.25) *
                            (u.at(1, 0, 0) + u.at(-1, 0, 0)));
        fe::Expr keRef = offsetAccess ? ke.next(0, 1, 0)
                                      : ke.next(0, 0, 0);
        p.setUpdate(out, keRef + fe::constant(0.5) * u());
        p.markIntermediate("ke");
        return p.emit(ctx);
    }

    void
    runPass(ir::Operation *module)
    {
        ir::PassManager pm;
        pm.addPass(transforms::createStencilInliningPass());
        pm.run(module);
    }
};

TEST_F(InliningTest, MergesConsecutiveApplies)
{
    ir::OwningOp module = buildTwoApplies(/*offsetAccess=*/false);
    EXPECT_EQ(countOps(module.get(), st::kApply), 2);
    runPass(module.get());
    EXPECT_EQ(countOps(module.get(), st::kApply), 1);
    EXPECT_TRUE(ir::verifies(module.get()));
}

TEST_F(InliningTest, ComposesAccessOffsets)
{
    ir::OwningOp module = buildTwoApplies(/*offsetAccess=*/true);
    runPass(module.get());
    EXPECT_EQ(countOps(module.get(), st::kApply), 1);
    // The inlined producer accesses u at (±1, 1): composed offsets.
    bool sawComposed = false;
    module->walk([&](ir::Operation *op) {
        if (op->opId() != st::kAccess)
            return;
        std::vector<int64_t> off = st::accessOffset(op);
        if (off[0] == 1 && off[1] == 1)
            sawComposed = true;
    });
    EXPECT_TRUE(sawComposed);
}

TEST_F(InliningTest, DoesNotInlineMultiConsumerProducers)
{
    // Producer feeding two distinct applies must stay.
    fe::Program p(fe::Grid{8, 8, 16});
    p.setTimesteps(1);
    fe::Field u = p.addField("u");
    fe::Field a = p.addField("a");
    fe::Field b = p.addField("b");
    p.setUpdate(u, fe::constant(2.0) * u());
    p.setUpdate(a, u.next(0, 0, 0) + fe::constant(0.0) * a.at(1, 0, 0));
    p.setUpdate(b, u.next(0, 0, 0) + fe::constant(0.0) * b.at(0, 1, 0));
    ir::OwningOp module = p.emit(ctx);
    EXPECT_EQ(countOps(module.get(), st::kApply), 3);
    runPass(module.get());
    // u's producer has two consumers: not inlined; a and b have no
    // producer chain of their own.
    EXPECT_EQ(countOps(module.get(), st::kApply), 3);
}

TEST_F(InliningTest, FusedKernelComputesSameResult)
{
    // End to end equivalence: inlining must not change semantics (it is
    // later split again by the csl_stencil conversion).
    fe::Benchmark bench = fe::makeUvkbe(8, 8, 12);
    double err = endToEndError(bench, wse::ArchParams::wse3(), 8, 8, 1,
                               /*compareMargin=*/1);
    EXPECT_LT(err, 1e-4);
}

TEST_F(InliningTest, InliningIsIdempotent)
{
    ir::OwningOp module = buildTwoApplies(false);
    runPass(module.get());
    std::string once = ir::printOp(module.get());
    runPass(module.get());
    EXPECT_EQ(once, ir::printOp(module.get()));
}

} // namespace
} // namespace wsc::test
