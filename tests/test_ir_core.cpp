#include "test_helpers.h"

#include "ir/pattern.h"
#include "ir/pass.h"

namespace wsc::test {
namespace {

namespace bt = dialects::builtin;
namespace ar = dialects::arith;
namespace fn = dialects::func;

//===----------------------------------------------------------------------===
// Types
//===----------------------------------------------------------------------===

TEST_F(IrTest, TypesAreUniqued)
{
    EXPECT_EQ(ir::getF32Type(ctx), ir::getF32Type(ctx));
    EXPECT_EQ(ir::getIntegerType(ctx, 16), ir::getI16Type(ctx));
    EXPECT_NE(ir::getF32Type(ctx), ir::getF64Type(ctx));
}

TEST_F(IrTest, TensorTypeRoundTrip)
{
    ir::Type t = ir::getTensorType(ctx, {4, 255}, ir::getF32Type(ctx));
    EXPECT_TRUE(ir::isTensor(t));
    EXPECT_EQ(ir::shapeOf(t), (std::vector<int64_t>{4, 255}));
    EXPECT_EQ(ir::elementTypeOf(t), ir::getF32Type(ctx));
    EXPECT_EQ(ir::numElementsOf(t), 1020);
    EXPECT_EQ(t.str(), "tensor<4x255xf32>");
}

TEST_F(IrTest, MemRefTypeDistinctFromTensor)
{
    ir::Type t = ir::getTensorType(ctx, {8}, ir::getF32Type(ctx));
    ir::Type m = ir::getMemRefType(ctx, {8}, ir::getF32Type(ctx));
    EXPECT_NE(t, m);
    EXPECT_TRUE(ir::isMemRef(m));
    EXPECT_EQ(m.str(), "memref<8xf32>");
}

TEST_F(IrTest, FunctionTypeInputsAndResults)
{
    ir::Type f32 = ir::getF32Type(ctx);
    ir::Type i32 = ir::getI32Type(ctx);
    ir::Type fnType = ir::getFunctionType(ctx, {f32, i32}, {f32});
    EXPECT_TRUE(ir::isFunction(fnType));
    EXPECT_EQ(ir::functionInputs(fnType),
              (std::vector<ir::Type>{f32, i32}));
    EXPECT_EQ(ir::functionResults(fnType), (std::vector<ir::Type>{f32}));
}

TEST_F(IrTest, BitWidths)
{
    EXPECT_EQ(ir::bitWidth(ir::getF32Type(ctx)), 32u);
    EXPECT_EQ(ir::bitWidth(ir::getF16Type(ctx)), 16u);
    EXPECT_EQ(ir::bitWidth(ir::getI16Type(ctx)), 16u);
}

TEST_F(IrTest, DialectTypesCarryParameters)
{
    ir::Type a = ir::getType(ctx, "csl.dsd", {}, {}, {"mem1d_dsd"});
    ir::Type b = ir::getType(ctx, "csl.dsd", {}, {}, {"fabin_dsd"});
    EXPECT_NE(a, b);
    EXPECT_EQ(a, ir::getType(ctx, "csl.dsd", {}, {}, {"mem1d_dsd"}));
}

//===----------------------------------------------------------------------===
// Attributes
//===----------------------------------------------------------------------===

TEST_F(IrTest, AttributesAreUniqued)
{
    EXPECT_EQ(ir::getIntAttr(ctx, 42), ir::getIntAttr(ctx, 42));
    EXPECT_NE(ir::getIntAttr(ctx, 42), ir::getIntAttr(ctx, 43));
    EXPECT_EQ(ir::getStringAttr(ctx, "abc"),
              ir::getStringAttr(ctx, "abc"));
}

TEST_F(IrTest, ArrayAttrRoundTrip)
{
    ir::Attribute arr = ir::getIntArrayAttr(ctx, {1, -2, 3});
    EXPECT_EQ(ir::intArrayAttrValue(arr),
              (std::vector<int64_t>{1, -2, 3}));
}

TEST_F(IrTest, DictAttrLookup)
{
    ir::Attribute d = ir::getDictAttr(
        ctx, {{"width", ir::getIntAttr(ctx, 7)},
              {"name", ir::getStringAttr(ctx, "pe")}});
    EXPECT_EQ(ir::intAttrValue(ir::dictAttrGet(d, "width")), 7);
    EXPECT_EQ(ir::stringAttrValue(ir::dictAttrGet(d, "name")), "pe");
    EXPECT_FALSE(ir::dictAttrGet(d, "missing"));
}

TEST_F(IrTest, DenseAttrSplat)
{
    ir::Type t = ir::getTensorType(ctx, {510}, ir::getF32Type(ctx));
    ir::Attribute d = ir::getDenseAttr(ctx, t, {0.12345});
    EXPECT_TRUE(ir::isDenseAttr(d));
    EXPECT_EQ(ir::denseAttrValues(d).size(), 1u);
    EXPECT_EQ(ir::attrType(d), t);
}

TEST_F(IrTest, FloatAttrPrinting)
{
    ir::Attribute f = ir::getFloatAttr(ctx, 2.5, ir::getF32Type(ctx));
    EXPECT_EQ(f.str(), "2.5 : f32");
}

//===----------------------------------------------------------------------===
// Operations, blocks, values
//===----------------------------------------------------------------------===

TEST_F(IrTest, ModuleCreation)
{
    ir::OwningOp module = bt::createModule(ctx);
    EXPECT_EQ(module->name(), "builtin.module");
    EXPECT_EQ(module->numRegions(), 1u);
    EXPECT_TRUE(bt::moduleBody(module.get())->empty());
}

TEST_F(IrTest, BuilderInsertsInOrder)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Value c1 = ar::createConstantF32(b, 1.0);
    ir::Value c2 = ar::createConstantF32(b, 2.0);
    ar::createAddF(b, c1, c2);
    ir::Block *body = bt::moduleBody(module.get());
    EXPECT_EQ(body->size(), 3u);
    EXPECT_EQ(body->front().name(), "arith.constant");
    EXPECT_EQ(body->back().name(), "arith.addf");
}

TEST_F(IrTest, UseListsTrackUsers)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Value c = ar::createConstantF32(b, 1.0);
    ir::Value sum = ar::createAddF(b, c, c);
    EXPECT_EQ(c.numUses(), 2u);
    EXPECT_EQ(c.users().size(), 1u); // unique users
    EXPECT_EQ(sum.numUses(), 0u);
    EXPECT_FALSE(sum.hasUses());
}

TEST_F(IrTest, ReplaceAllUsesWith)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Value c1 = ar::createConstantF32(b, 1.0);
    ir::Value c2 = ar::createConstantF32(b, 2.0);
    ir::Value sum = ar::createAddF(b, c1, c1);
    c1.replaceAllUsesWith(c2);
    EXPECT_EQ(c1.numUses(), 0u);
    EXPECT_EQ(c2.numUses(), 2u);
    EXPECT_EQ(sum.definingOp()->operand(0), c2);
}

TEST_F(IrTest, EraseRefusesLiveUses)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Value c = ar::createConstantF32(b, 1.0);
    ar::createAddF(b, c, c);
    EXPECT_THROW(c.definingOp()->erase(), PanicError);
}

TEST_F(IrTest, EraseRemovesUsesOfOperands)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Value c = ar::createConstantF32(b, 1.0);
    ir::Value sum = ar::createAddF(b, c, c);
    sum.definingOp()->erase();
    EXPECT_EQ(c.numUses(), 0u);
    EXPECT_EQ(bt::moduleBody(module.get())->size(), 1u);
}

TEST_F(IrTest, MoveBeforeReordersOps)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Value c1 = ar::createConstantF32(b, 1.0);
    ir::Value c2 = ar::createConstantF32(b, 2.0);
    (void)c1;
    c2.definingOp()->moveBefore(c1.definingOp());
    ir::Block *body = bt::moduleBody(module.get());
    EXPECT_EQ(ir::floatAttrValue(body->front().attr("value")), 2.0);
}

TEST_F(IrTest, WalkVisitsNestedOps)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Operation *fnOp = fn::createFunc(b, "f", {}, {});
    ir::OpBuilder fb(ctx);
    fb.setInsertionPointToEnd(fn::funcBody(fnOp));
    ar::createConstantF32(fb, 1.0);
    fn::createReturn(fb);
    EXPECT_EQ(countOps(module.get(), "arith.constant"), 1);
    EXPECT_EQ(countOps(module.get(), "func.return"), 1);
}

TEST_F(IrTest, BlockArgumentsHaveIndices)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Operation *fnOp = fn::createFunc(
        b, "f", {ir::getF32Type(ctx), ir::getI32Type(ctx)}, {});
    ir::Block *body = fn::funcBody(fnOp);
    EXPECT_EQ(body->numArguments(), 2u);
    EXPECT_TRUE(body->argument(0).isBlockArgument());
    EXPECT_EQ(body->argument(1).index(), 1u);
    EXPECT_EQ(body->argument(1).type(), ir::getI32Type(ctx));
}

TEST_F(IrTest, SymbolLookup)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    fn::createFunc(b, "alpha", {}, {});
    ir::Operation *beta = fn::createFunc(b, "beta", {}, {});
    EXPECT_EQ(ir::lookupSymbol(module.get(), "beta"), beta);
    EXPECT_EQ(ir::lookupSymbol(module.get(), "gamma"), nullptr);
}

TEST_F(IrTest, AttributeAccessors)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Operation *op = b.create("builtin.unrealized_cast",
                                 {ar::createConstantF32(b, 0.0)},
                                 {ir::getF32Type(ctx)});
    op->setAttr("level", ir::getIntAttr(ctx, 3));
    EXPECT_TRUE(op->hasAttr("level"));
    EXPECT_EQ(op->intAttr("level"), 3);
    op->removeAttr("level");
    EXPECT_FALSE(op->hasAttr("level"));
}

//===----------------------------------------------------------------------===
// Printer
//===----------------------------------------------------------------------===

TEST_F(IrTest, PrinterEmitsGenericForm)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Value c = ar::createConstantF32(b, 1.5);
    ar::createAddF(b, c, c);
    std::string text = ir::printOp(module.get());
    EXPECT_NE(text.find("\"arith.constant\"()"), std::string::npos);
    EXPECT_NE(text.find("\"arith.addf\"(%0, %0)"), std::string::npos);
    EXPECT_NE(text.find("-> (f32)"), std::string::npos);
}

TEST_F(IrTest, PrinterNumbersBlockArguments)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Operation *fnOp =
        fn::createFunc(b, "f", {ir::getF32Type(ctx)}, {});
    ir::OpBuilder fb(ctx);
    fb.setInsertionPointToEnd(fn::funcBody(fnOp));
    fn::createReturn(fb, {fn::funcBody(fnOp)->argument(0)});
    std::string text = ir::printOp(module.get());
    EXPECT_NE(text.find("%arg0"), std::string::npos);
}

//===----------------------------------------------------------------------===
// Verifier
//===----------------------------------------------------------------------===

TEST_F(IrTest, VerifierAcceptsValidIr)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Value c = ar::createConstantF32(b, 1.0);
    ar::createAddF(b, c, c);
    EXPECT_TRUE(ir::verifies(module.get()));
}

TEST_F(IrTest, VerifierFlagsUseBeforeDef)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Value c1 = ar::createConstantF32(b, 1.0);
    ir::Value sum = ar::createAddF(b, c1, c1);
    // Move the constant after its user.
    c1.definingOp()->moveToEnd(bt::moduleBody(module.get()));
    (void)sum;
    std::vector<std::string> errors = ir::verifyCollect(module.get());
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("not visible"), std::string::npos);
}

TEST_F(IrTest, VerifierFlagsMissingRequiredAttr)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    b.create("arith.constant", {}, {ir::getF32Type(ctx)});
    EXPECT_FALSE(ir::verifies(module.get()));
}

TEST_F(IrTest, VerifierFlagsOperandCountMismatch)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Value c = ar::createConstantF32(b, 1.0);
    b.create("arith.addf", {c}, {ir::getF32Type(ctx)});
    EXPECT_FALSE(ir::verifies(module.get()));
}

TEST_F(IrTest, VerifierFlagsMisplacedTerminator)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Operation *fnOp = fn::createFunc(b, "f", {}, {});
    ir::OpBuilder fb(ctx);
    fb.setInsertionPointToEnd(fn::funcBody(fnOp));
    fn::createReturn(fb);
    ar::createConstantF32(fb, 1.0); // after the terminator
    std::vector<std::string> errors = ir::verifyCollect(module.get());
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("terminator"), std::string::npos);
}

TEST_F(IrTest, VerifyEmitsLocatedDiagnostics)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    b.create("arith.constant", {}, {ir::getF32Type(ctx)});
    ir::DiagnosticCollector collector(ctx);
    EXPECT_TRUE(ir::failed(ir::verify(module.get())));
    ASSERT_FALSE(collector.diagnostics().empty());
    EXPECT_TRUE(collector.hadError());
    EXPECT_NE(collector.diagnostics()[0].location.find("arith.constant"),
              std::string::npos);
}

//===----------------------------------------------------------------------===
// Pattern driver
//===----------------------------------------------------------------------===

TEST_F(IrTest, GreedyDriverReachesFixpoint)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ir::Value c = ar::createConstantF32(b, 1.0);
    ir::Value s1 = ar::createAddF(b, c, c);
    ir::Value s2 = ar::createAddF(b, s1, c);
    ar::createMulF(b, s2, s2);

    // Pattern: erase dead addf ops (none initially; mul keeps s2 live).
    std::vector<ir::NamedPattern> patterns = {
        {"drop-dead-adds", [](ir::Operation *op, ir::OpBuilder &) {
             if (op->name() != "arith.addf" || op->hasResultUses())
                 return false;
             op->erase();
             return true;
         }},
    };
    bool changed = ir::applyPatternsGreedily(module.get(), patterns);
    EXPECT_FALSE(changed);

    // Now erase the mul so the chain becomes dead; driver should peel
    // the adds one after the other.
    firstOp(module.get(), "arith.mulf")->erase();
    changed = ir::applyPatternsGreedily(module.get(), patterns);
    EXPECT_TRUE(changed);
    EXPECT_EQ(countOps(module.get(), "arith.addf"), 0);
}

TEST_F(IrTest, NonConvergingPatternIsCaught)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));
    ar::createConstantF32(b, 1.0);
    std::vector<ir::NamedPattern> patterns = {
        {"flip-flop", [](ir::Operation *op, ir::OpBuilder &) {
             // Claims a change without changing anything.
             return op->name() == "arith.constant";
         }},
    };
    EXPECT_THROW(ir::applyPatternsGreedily(module.get(), patterns, 16),
                 PanicError);
}

//===----------------------------------------------------------------------===
// Pass manager
//===----------------------------------------------------------------------===

TEST_F(IrTest, PassManagerRunsInOrder)
{
    ir::OwningOp module = bt::createModule(ctx);
    std::vector<std::string> order;
    ir::PassManager pm(/*verifyEach=*/true);
    pm.addPass("first", [&](ir::Operation *) { order.push_back("a"); });
    pm.addPass("second", [&](ir::Operation *) { order.push_back("b"); });
    pm.run(module.get());
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b"}));
}

TEST_F(IrTest, PassManagerVerifiesBetweenPasses)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::PassManager pm(/*verifyEach=*/true);
    pm.addPass("corrupt", [&](ir::Operation *m) {
        ir::OpBuilder b(ctx);
        b.setInsertionPointToEnd(bt::moduleBody(m));
        b.create("arith.constant", {}, {ir::getF32Type(ctx)});
    });
    ir::PipelineResult result = pm.run(module.get());
    EXPECT_FALSE(result.succeeded);
    EXPECT_EQ(result.failedPass, "corrupt");
    ASSERT_NE(result.firstError(), nullptr);
    // Every diagnostic is stamped with the pass that was active.
    EXPECT_EQ(result.firstError()->pass, "corrupt");
}

TEST_F(IrTest, AfterPassHookFires)
{
    ir::OwningOp module = bt::createModule(ctx);
    ir::PassManager pm;
    pm.addPass("noop", [](ir::Operation *) {});
    int fired = 0;
    pm.setAfterPassHook(
        [&](const ir::Pass &, ir::Operation *) { fired++; });
    pm.run(module.get());
    EXPECT_EQ(fired, 1);
}

} // namespace
} // namespace wsc::test
