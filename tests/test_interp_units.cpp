#include "test_helpers.h"

namespace wsc::test {
namespace {

namespace csl = dialects::csl;
namespace ar = dialects::arith;
namespace scf = dialects::scf;
namespace bt = dialects::builtin;

/**
 * Interpreter unit tests against hand-written csl-ir programs: each
 * exercises a specific op family on a 1x1 simulated grid, independent
 * of the compilation pipeline.
 */
class InterpUnit : public IrTest
{
  protected:
    InterpUnit() : module(bt::createModule(ctx)), b(ctx)
    {
        b.setInsertionPointToEnd(bt::moduleBody(module.get()));
        program = csl::createModule(b, "program", "pe");
        pb = std::make_unique<ir::OpBuilder>(ctx);
        pb->setInsertionPointToEnd(csl::moduleBody(program));
    }

    /** Append a csl.func and position a builder in its body. */
    ir::OpBuilder
    makeFunc(const std::string &name)
    {
        ir::Operation *fn = csl::createFunc(*pb, name);
        ir::OpBuilder fb(ctx);
        fb.setInsertionPointToEnd(csl::calleeBody(fn));
        return fb;
    }

    ir::OwningOp module;
    ir::Operation *program;
    ir::OpBuilder b;
    std::unique_ptr<ir::OpBuilder> pb;
};

TEST_F(InterpUnit, DsdBuiltinsComputeOnBuffers)
{
    ir::Type buf = ir::getMemRefType(ctx, {8}, ir::getF32Type(ctx));
    csl::createVariable(*pb, "x", buf);
    ir::OpBuilder fb = makeFunc("f_main");
    ir::Value d = csl::createGetMemDsd(fb, "x", 0, 8);
    ir::Value c = ar::createConstantF32(fb, 3.0);
    csl::createBuiltin(fb, csl::kFmovs, {d, c});
    ir::Value half = ar::createConstantF32(fb, 0.5);
    csl::createBuiltin(fb, csl::kFmuls, {d, d, half});
    csl::createReturn(fb);
    ASSERT_TRUE(ir::succeeded(ir::verify(module.get())));

    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1);
    interp::CslProgramInstance instance(sim, module.get());
    instance.configure();
    instance.launch();
    sim.run();
    EXPECT_EQ(sim.pe(0, 0).buffer("x"),
              std::vector<float>(8, 1.5f));
}

TEST_F(InterpUnit, ScalarVariablesAndControlFlow)
{
    csl::createVariable(*pb, "counter", ir::getI32Type(ctx),
                        ir::getIntAttr(ctx, 0));
    // count_up: counter < 5 ? (counter += 1; re-activate) : stop.
    {
        ir::Operation *task =
            csl::createTask(*pb, "count_up", "local", 0);
        ir::OpBuilder tb(ctx);
        tb.setInsertionPointToEnd(csl::calleeBody(task));
        ir::Value v = csl::createLoadVar(tb, "counter",
                                         ir::getI32Type(ctx));
        ir::Value limit = ar::createConstantI32(tb, 5);
        ir::Value cond = ar::createCmpI(tb, "lt", v, limit);
        ir::Operation *ifOp = scf::createIf(tb, cond);
        ir::OpBuilder thenB(ctx);
        thenB.setInsertionPointToEnd(scf::ifThenBlock(ifOp));
        ir::Value one = ar::createConstantI32(thenB, 1);
        ir::Value next = ar::createAddI(thenB, v, one);
        csl::createStoreVar(thenB, "counter", next);
        csl::createActivate(thenB, "count_up");
        scf::createYield(thenB);
        ir::OpBuilder elseB(ctx);
        elseB.setInsertionPointToEnd(scf::ifElseBlock(ifOp));
        scf::createYield(elseB);
        csl::createReturn(tb);
    }
    ir::OpBuilder fb = makeFunc("f_main");
    csl::createActivate(fb, "count_up");
    csl::createReturn(fb);
    ASSERT_TRUE(ir::succeeded(ir::verify(module.get())));

    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1);
    interp::CslProgramInstance instance(sim, module.get());
    instance.configure();
    instance.launch();
    sim.run();
    EXPECT_EQ(sim.pe(0, 0).scalar("counter"), 5.0);
    // f_main + 6 count_up dispatches.
    EXPECT_EQ(sim.pe(0, 0).taskActivations(), 7u);
}

TEST_F(InterpUnit, PointerVariablesRotateBuffers)
{
    ir::Type buf = ir::getMemRefType(ctx, {4}, ir::getF32Type(ctx));
    csl::createVariable(*pb, "a", buf);
    csl::createVariable(*pb, "b", buf);
    csl::createVariable(*pb, "pa", csl::getPtrType(ctx, buf),
                        ir::getStringAttr(ctx, "a"));
    csl::createVariable(*pb, "pb", csl::getPtrType(ctx, buf),
                        ir::getStringAttr(ctx, "b"));
    ir::OpBuilder fb = makeFunc("f_main");
    // Write 1.0 through pa (-> a), swap, write 2.0 through pa (-> b).
    ir::Value d1 = csl::createGetMemDsd(fb, "pa", 0, 4, 1,
                                        /*viaPtr=*/true);
    csl::createBuiltin(fb, csl::kFmovs,
                       {d1, ar::createConstantF32(fb, 1.0)});
    ir::Value pav =
        csl::createLoadVar(fb, "pa", csl::getPtrType(ctx, buf));
    ir::Value pbv =
        csl::createLoadVar(fb, "pb", csl::getPtrType(ctx, buf));
    csl::createStoreVar(fb, "pa", pbv);
    csl::createStoreVar(fb, "pb", pav);
    ir::Value d2 = csl::createGetMemDsd(fb, "pa", 0, 4, 1,
                                        /*viaPtr=*/true);
    csl::createBuiltin(fb, csl::kFmovs,
                       {d2, ar::createConstantF32(fb, 2.0)});
    csl::createReturn(fb);
    ASSERT_TRUE(ir::succeeded(ir::verify(module.get())));

    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1);
    interp::CslProgramInstance instance(sim, module.get());
    instance.configure();
    instance.launch();
    sim.run();
    EXPECT_EQ(sim.pe(0, 0).buffer("a"), std::vector<float>(4, 1.0f));
    EXPECT_EQ(sim.pe(0, 0).buffer("b"), std::vector<float>(4, 2.0f));
}

TEST_F(InterpUnit, CallsExecuteSynchronously)
{
    csl::createVariable(*pb, "order", ir::getI32Type(ctx),
                        ir::getIntAttr(ctx, 0));
    {
        ir::OpBuilder hb = makeFunc("helper");
        ir::Value v =
            csl::createLoadVar(hb, "order", ir::getI32Type(ctx));
        ir::Value ten = ar::createConstantI32(hb, 10);
        csl::createStoreVar(hb, "order",
                            ar::createAddI(hb, v, ten));
        csl::createReturn(hb);
    }
    ir::OpBuilder fb = makeFunc("f_main");
    csl::createCall(fb, "helper");
    csl::createCall(fb, "helper");
    ir::Value v = csl::createLoadVar(fb, "order", ir::getI32Type(ctx));
    ir::Value one = ar::createConstantI32(fb, 1);
    csl::createStoreVar(fb, "order", ar::createAddI(fb, v, one));
    csl::createReturn(fb);
    ASSERT_TRUE(ir::succeeded(ir::verify(module.get())));

    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1);
    interp::CslProgramInstance instance(sim, module.get());
    instance.configure();
    instance.launch();
    sim.run();
    // Two helper calls ran before the final increment: 10+10+1.
    EXPECT_EQ(sim.pe(0, 0).scalar("order"), 21.0);
}

TEST_F(InterpUnit, IncrementDsdOffsetShiftsTheView)
{
    ir::Type buf = ir::getMemRefType(ctx, {8}, ir::getF32Type(ctx));
    csl::createVariable(*pb, "x", buf);
    ir::OpBuilder fb = makeFunc("f_main");
    ir::Value base = csl::createGetMemDsd(fb, "x", 0, 4);
    ir::Value off = ar::createConstantI32(fb, 4);
    ir::Value shifted = csl::createIncrementDsdOffset(fb, base, off);
    csl::createBuiltin(fb, csl::kFmovs,
                       {shifted, ar::createConstantF32(fb, 9.0)});
    csl::createReturn(fb);
    ASSERT_TRUE(ir::succeeded(ir::verify(module.get())));

    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1);
    interp::CslProgramInstance instance(sim, module.get());
    instance.configure();
    instance.launch();
    sim.run();
    const std::vector<float> &x = sim.pe(0, 0).buffer("x");
    EXPECT_EQ(x[3], 0.0f);
    EXPECT_EQ(x[4], 9.0f);
    EXPECT_EQ(x[7], 9.0f);
}

TEST_F(InterpUnit, UnknownOpIsRejected)
{
    ir::OpBuilder fb = makeFunc("f_main");
    fb.create("tensor.empty", {}, {ir::getTensorType(
                                      ctx, {4}, ir::getF32Type(ctx))});
    csl::createReturn(fb);

    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1);
    interp::CslProgramInstance instance(sim, module.get());
    instance.configure();
    instance.launch();
    EXPECT_THROW(sim.run(), PanicError);
}

TEST_F(InterpUnit, UnblockCountsHostReturns)
{
    ir::OpBuilder fb = makeFunc("f_main");
    csl::createUnblockCmdStream(fb);
    csl::createReturn(fb);
    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1);
    interp::CslProgramInstance instance(sim, module.get());
    instance.configure();
    instance.launch();
    sim.run();
    EXPECT_EQ(instance.unblockCount(), 1u);
}

} // namespace
} // namespace wsc::test
