/**
 * @file
 * PR 6 coverage: deterministic fault injection, deadlock diagnosis and
 * graceful degradation (wse/fault.h; `ctest -L faults`).
 *
 * The contract: a fault plan is part of the simulated world, so a
 * faulty threads=4 run must match the faulty threads=1 run bit-exactly
 * — same SimReport, same fault counters, same field bytes when the run
 * completes. Injected deadlocks must end with a SimDiagnosis naming the
 * blocked PEs and pending tasks instead of hanging or dying on a
 * one-line fatal, and exchange timeouts must let the rest of the wafer
 * finish around a dead neighbour.
 */

#include "test_helpers.h"

#include <map>
#include <tuple>

#include "comms/star_comm.h"
#include "wse/fault.h"
#include "wse/payload.h"

namespace wsc::test {
namespace {

//===----------------------------------------------------------------------===
// Thread-count determinism under fault plans
//===----------------------------------------------------------------------===

/** Everything observable about one faulted run. */
struct FaultRun
{
    wse::SimOutcome outcome = wse::SimOutcome::Completed;
    wse::Cycles finalCycle = 0;
    wse::SimStats stats;
    wse::FaultStats faults;
    std::vector<uint32_t> haltedPes;
    std::vector<uint32_t> degradedPes;
    /** (x, y, what, since, peHalted) rows of the diagnosis. */
    std::vector<std::tuple<int, int, std::string, wse::Cycles, bool>>
        blocked;
    uint64_t unblocks = 0;
    /** Concatenated bytes of the first field's columns, row-major. */
    std::vector<float> fields;

    bool operator==(const FaultRun &) const = default;
};

/** Compile once, run faulted with the given options, capture all. */
FaultRun
runFaultedOpts(ir::Operation *module, fe::Benchmark &bench, int nx,
               int ny, wse::SimOptions options)
{
    wse::Simulator sim(wse::ArchParams::wse3(), nx, ny,
                       std::move(options));
    interp::CslProgramInstance instance(sim, module);
    for (size_t f = 0; f < bench.program.numFields(); ++f) {
        int fi = static_cast<int>(f);
        auto init = bench.init;
        instance.setFieldInit(bench.program.fieldName(f),
                              [init, fi](int x, int y, int z) {
                                  return init(fi, x, y, z);
                              });
    }
    instance.configure();
    instance.launch();

    const wse::SimReport &rep = sim.runWithReport(4000000000ULL);
    FaultRun r;
    r.outcome = rep.outcome;
    r.finalCycle = rep.finalCycle;
    r.stats = rep.stats;
    r.faults = rep.faults;
    r.haltedPes = rep.haltedPes;
    r.degradedPes = rep.degradedPes;
    for (const wse::BlockedPeInfo &b : rep.diagnosis.blockedPes)
        r.blocked.emplace_back(b.x, b.y, b.what, b.since, b.peHalted);
    r.unblocks = instance.unblockCount();
    const std::string &field = bench.program.fieldName(0);
    for (int x = 0; x < nx; ++x)
        for (int y = 0; y < ny; ++y) {
            std::vector<float> col = instance.readFieldColumn(field, x, y);
            r.fields.insert(r.fields.end(), col.begin(), col.end());
        }
    return r;
}

/** Compile once, run faulted at the given thread count, capture all. */
FaultRun
runFaulted(ir::Operation *module, fe::Benchmark &bench, int nx, int ny,
           int threads, const wse::FaultPlan &plan,
           wse::Cycles timeoutCycles)
{
    wse::SimOptions options{threads};
    options.faults = plan;
    options.exchangeTimeoutCycles = timeoutCycles;
    return runFaultedOpts(module, bench, nx, ny, std::move(options));
}

/** threads=1 vs threads=4 must agree bit-for-bit under the plan;
 *  returns the sequential run for scenario-specific assertions. */
FaultRun
expectFaultEquivalence(fe::Benchmark bench, int nx, int ny,
                       const wse::FaultPlan &plan,
                       wse::Cycles timeoutCycles)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    FaultRun sequential =
        runFaulted(module.get(), bench, nx, ny, 1, plan, timeoutCycles);
    FaultRun sharded =
        runFaulted(module.get(), bench, nx, ny, 4, plan, timeoutCycles);

    EXPECT_EQ(static_cast<int>(sequential.outcome),
              static_cast<int>(sharded.outcome))
        << wse::simOutcomeName(sequential.outcome) << " vs "
        << wse::simOutcomeName(sharded.outcome);
    EXPECT_EQ(sequential.finalCycle, sharded.finalCycle);
    EXPECT_TRUE(sequential.stats == sharded.stats);
    EXPECT_TRUE(sequential.faults == sharded.faults);
    EXPECT_EQ(sequential.haltedPes, sharded.haltedPes);
    EXPECT_EQ(sequential.degradedPes, sharded.degradedPes);
    EXPECT_EQ(sequential.blocked, sharded.blocked);
    EXPECT_EQ(sequential.unblocks, sharded.unblocks);
    EXPECT_EQ(sequential.fields, sharded.fields);
    EXPECT_TRUE(sequential == sharded);
    return sequential;
}

TEST(FaultDeterminism, PeHaltDiffusion)
{
    wse::FaultPlan plan;
    plan.haltPe(3, 3, 0);
    FaultRun r = expectFaultEquivalence(fe::makeDiffusion(7, 7, 4, 16), 7,
                                        7, plan, /*timeout=*/4000);
    // The wafer finishes around the dead PE: its neighbours degrade
    // their exchanges and every live PE returns control to the host.
    EXPECT_EQ(r.outcome, wse::SimOutcome::Degraded);
    EXPECT_EQ(r.haltedPes, (std::vector<uint32_t>{3 * 7 + 3}));
    EXPECT_EQ(r.faults.pesHalted, 1u);
    EXPECT_GT(r.faults.exchangeTimeouts, 0u);
    EXPECT_GT(r.faults.exchangesDegraded, 0u);
    EXPECT_EQ(r.unblocks, 48u); // all but the halted PE
}

TEST(FaultDeterminism, PeHaltJacobian)
{
    wse::FaultPlan plan;
    plan.haltPe(2, 4, 1);
    FaultRun r = expectFaultEquivalence(fe::makeJacobian(7, 7, 4, 64), 7,
                                        7, plan, /*timeout=*/6000);
    EXPECT_EQ(r.outcome, wse::SimOutcome::Degraded);
    EXPECT_EQ(r.faults.pesHalted, 1u);
    EXPECT_EQ(r.unblocks, 48u);
}

TEST(FaultDeterminism, LinkDropDiffusion)
{
    wse::FaultPlan plan;
    plan.dropLink(2, 3, wse::Direction::East, 0);
    FaultRun r = expectFaultEquivalence(fe::makeDiffusion(7, 7, 4, 16), 7,
                                        7, plan, /*timeout=*/4000);
    EXPECT_EQ(r.outcome, wse::SimOutcome::Degraded);
    EXPECT_TRUE(r.haltedPes.empty());
    EXPECT_GT(r.faults.streamsDroppedByLinks, 0u);
    EXPECT_FALSE(r.degradedPes.empty());
    EXPECT_EQ(r.unblocks, 49u); // no PE died, all complete (degraded)
}

TEST(FaultDeterminism, LinkDropJacobian)
{
    wse::FaultPlan plan;
    plan.dropLink(4, 2, wse::Direction::North, 100);
    FaultRun r = expectFaultEquivalence(fe::makeJacobian(7, 7, 4, 64), 7,
                                        7, plan, /*timeout=*/6000);
    EXPECT_EQ(r.outcome, wse::SimOutcome::Degraded);
    EXPECT_GT(r.faults.streamsDroppedByLinks, 0u);
    EXPECT_EQ(r.unblocks, 49u);
}

TEST(FaultDeterminism, PayloadCorruptionDiffusion)
{
    wse::FaultPlan plan;
    plan.seed = 1234;
    plan.corruptPayload(3, 3, wse::Direction::East, 0);
    plan.corruptPayload(2, 3, wse::Direction::North, 1);
    FaultRun r = expectFaultEquivalence(fe::makeDiffusion(7, 7, 4, 16), 7,
                                        7, plan, /*timeout=*/0);
    // Corruption garbles values without losing streams: the program
    // completes normally and the garbage propagates bit-identically.
    EXPECT_EQ(r.outcome, wse::SimOutcome::Completed);
    EXPECT_EQ(r.faults.payloadsCorrupted, 2u);
    EXPECT_EQ(r.unblocks, 49u);
}

TEST(FaultDeterminism, PayloadCorruptionJacobian)
{
    wse::FaultPlan plan;
    plan.seed = 99;
    plan.corruptPayload(1, 3, wse::Direction::South, 2);
    FaultRun r = expectFaultEquivalence(fe::makeJacobian(7, 7, 4, 64), 7,
                                        7, plan, /*timeout=*/0);
    EXPECT_EQ(r.outcome, wse::SimOutcome::Completed);
    EXPECT_EQ(r.faults.payloadsCorrupted, 1u);
    EXPECT_EQ(r.unblocks, 49u);
}

TEST(FaultDeterminism, StutterDiffusion)
{
    wse::FaultPlan plan;
    plan.stutterPe(3, 3, 0, wse::kNeverCycle, 3);
    FaultRun r = expectFaultEquivalence(fe::makeDiffusion(7, 7, 4, 16), 7,
                                        7, plan, /*timeout=*/0);
    // A slow PE reorders nothing semantically: everything completes
    // with identical numerics, just later.
    EXPECT_EQ(r.outcome, wse::SimOutcome::Completed);
    EXPECT_EQ(r.unblocks, 49u);
}

//===----------------------------------------------------------------------===
// SimReport surface
//===----------------------------------------------------------------------===

TEST(FaultReport, CleanRunReportsCompleted)
{
    fe::Benchmark bench = fe::makeDiffusion(5, 5, 4, 16);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    wse::FaultPlan empty;
    FaultRun r = runFaulted(module.get(), bench, 5, 5, 1, empty, 0);
    EXPECT_EQ(r.outcome, wse::SimOutcome::Completed);
    EXPECT_TRUE(r.haltedPes.empty());
    EXPECT_TRUE(r.degradedPes.empty());
    EXPECT_TRUE(r.faults == wse::FaultStats{});
    EXPECT_EQ(r.unblocks, 25u);
}

TEST(FaultReport, EmptyPlanMatchesDefaultRun)
{
    // SimOptions carrying an empty plan must be byte-identical to a
    // simulator that never heard of faults (the golden-safety property;
    // also pinned by `ctest -L golden`).
    fe::Benchmark bench = fe::makeDiffusion(5, 5, 4, 16);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    wse::FaultPlan empty;
    FaultRun withPlan = runFaulted(module.get(), bench, 5, 5, 1, empty, 0);

    wse::Simulator sim(wse::ArchParams::wse3(), 5, 5);
    interp::CslProgramInstance instance(sim, module.get());
    auto init = bench.init;
    instance.setFieldInit(bench.program.fieldName(0),
                          [init](int x, int y, int z) {
                              return init(0, x, y, z);
                          });
    instance.configure();
    instance.launch();
    wse::Cycles finalCycle = sim.run(4000000000ULL);

    EXPECT_EQ(withPlan.finalCycle, finalCycle);
    EXPECT_TRUE(withPlan.stats == sim.stats());
    EXPECT_EQ(sim.report().outcome, wse::SimOutcome::Completed);
}

//===----------------------------------------------------------------------===
// Deadlock and budget diagnosis
//===----------------------------------------------------------------------===

TEST(FaultDiagnosis, DeadlockNamesBlockedPeAndTask)
{
    // Watchdog off: a dead PE starves its neighbours forever. The run
    // must terminate (queues drain) and diagnose the deadlock, naming
    // the live PEs stuck mid-exchange and the halted PE's pending task.
    // (Radius-2 diffusion computes on the 3x3 interior of a 7x7 grid,
    // so the halted (3, 3) starves the four star neighbours it feeds.)
    fe::Benchmark bench = fe::makeDiffusion(7, 7, 4, 16);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    wse::FaultPlan plan;
    plan.haltPe(3, 3, 0);
    FaultRun r = runFaulted(module.get(), bench, 7, 7, 1, plan, 0);

    EXPECT_EQ(r.outcome, wse::SimOutcome::Deadlock);
    ASSERT_FALSE(r.blocked.empty());
    bool liveBlockedOnExchange = false;
    for (const auto &[x, y, what, since, halted] : r.blocked)
        if (!halted && what.find("halo exchange") != std::string::npos)
            liveBlockedOnExchange = true;
    EXPECT_TRUE(liveBlockedOnExchange)
        << "no live PE reported blocked on its exchange";

    // The same scenario sharded: deadlocks reproduce bit-identically
    // across thread counts too.
    FaultRun again = runFaulted(module.get(), bench, 7, 7, 4, plan, 0);
    EXPECT_TRUE(r == again);
}

TEST(FaultDiagnosis, DeadlockDumpMentionsPendingTask)
{
    wse::SimOptions options{1};
    options.faults.haltPe(0, 0, 5);
    wse::Simulator sim(wse::ArchParams::wse3(), 1, 1, options);
    bool ran = false;
    sim.pe(0, 0).registerTask("t_stuck", wse::TaskKind::Local,
                              [&ran](wse::TaskContext &) { ran = true; });
    sim.pe(0, 0).activate("t_stuck", 10);
    const wse::SimReport &rep = sim.runWithReport();

    EXPECT_FALSE(ran);
    // Every blocked party was halted by the plan: degraded, not
    // deadlocked — the dead PE is expected to leave work behind.
    EXPECT_EQ(rep.outcome, wse::SimOutcome::Degraded);
    EXPECT_EQ(rep.haltedPes, (std::vector<uint32_t>{0}));
    ASSERT_FALSE(rep.diagnosis.pendingTasks.empty());
    EXPECT_EQ(rep.diagnosis.pendingTasks[0].task, "t_stuck");
    EXPECT_TRUE(rep.diagnosis.pendingTasks[0].peHalted);
    EXPECT_NE(rep.diagnosis.toString().find("t_stuck"),
              std::string::npos);
}

TEST(FaultDiagnosis, EventBudgetDumpsQueues)
{
    fe::Benchmark bench = fe::makeDiffusion(5, 5, 4, 16);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    for (int threads : {1, 4}) {
        wse::Simulator sim(wse::ArchParams::wse3(), 5, 5,
                           wse::SimOptions{threads});
        interp::CslProgramInstance instance(sim, module.get());
        auto init = bench.init;
        instance.setFieldInit(bench.program.fieldName(0),
                              [init](int x, int y, int z) {
                                  return init(0, x, y, z);
                              });
        instance.configure();
        instance.launch();

        const wse::SimReport &rep = sim.runWithReport(/*maxEvents=*/500);
        EXPECT_EQ(rep.outcome, wse::SimOutcome::EventBudgetExceeded);
        EXPECT_EQ(rep.diagnosis.eventBudget, 500u);
        EXPECT_FALSE(rep.diagnosis.queues.empty());
        EXPECT_FALSE(rep.ok());
    }

    // The legacy surface: run() turns the same diagnosis into a
    // FatalError carrying the dump instead of the old one-liner.
    wse::Simulator sim(wse::ArchParams::wse3(), 5, 5);
    interp::CslProgramInstance instance(sim, module.get());
    auto init = bench.init;
    instance.setFieldInit(bench.program.fieldName(0),
                          [init](int x, int y, int z) {
                              return init(0, x, y, z);
                          });
    instance.configure();
    instance.launch();
    try {
        sim.run(/*maxEvents=*/500);
        FAIL() << "run() under budget must throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("event budget"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("queue"), std::string::npos);
    }
}

//===----------------------------------------------------------------------===
// Graceful degradation mechanics
//===----------------------------------------------------------------------===

TEST(FaultDegrade, TimeoutDegradesAndCompletes)
{
    fe::Benchmark bench = fe::makeDiffusion(7, 7, 4, 16);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    wse::SimOptions options{1};
    options.faults.haltPe(3, 3, 0);
    options.exchangeTimeoutCycles = 3000;
    wse::Simulator sim(wse::ArchParams::wse3(), 7, 7, options);
    interp::CslProgramInstance instance(sim, module.get());
    auto init = bench.init;
    instance.setFieldInit(bench.program.fieldName(0),
                          [init](int x, int y, int z) {
                              return init(0, x, y, z);
                          });
    instance.configure();
    instance.launch();

    const wse::SimReport &rep = sim.runWithReport(4000000000ULL);
    EXPECT_EQ(rep.outcome, wse::SimOutcome::Degraded);
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(instance.unblockCount(), 48u); // all but the dead PE
    EXPECT_FALSE(rep.degradedPes.empty());

    // The exchange site saw the watchdog fire and counted it.
    ASSERT_FALSE(instance.commSites().empty());
    const comms::StarCommStats &cs = instance.commSites()[0]->stats();
    EXPECT_GT(cs.timeouts, 0u);
    EXPECT_GT(cs.degradedExchanges, 0u);
    EXPECT_GE(rep.faults.exchangeTimeouts, cs.timeouts);
    EXPECT_GE(rep.faults.exchangesDegraded, cs.degradedExchanges);
}

//===----------------------------------------------------------------------===
// Sharded worker error path (regression: no std::terminate, no hang)
//===----------------------------------------------------------------------===

TEST(FaultRobustness, WorkerExceptionUnderThreads4)
{
    // A callback throwing on a worker thread must surface as the same
    // FatalError on the calling thread — siblings keep arriving at the
    // barrier, the workers join, the simulator stays destructible.
    wse::Simulator sim(wse::ArchParams::wse3(), 8, 1,
                       wse::SimOptions{4});
    for (int x = 0; x < 8; ++x)
        sim.pe(x, 0).registerTask(
            "tick", wse::TaskKind::Local,
            [x](wse::TaskContext &ctx) {
                ctx.consume(10);
                if (x == 5 && ctx.startCycle() > 100)
                    fatal(strcat("injected task failure on PE ", x));
                ctx.pe().activate("tick", ctx.currentCycle() + 50);
            });
    for (int x = 0; x < 8; ++x)
        sim.pe(x, 0).activate("tick", 0);
    EXPECT_THROW(sim.run(1000000), FatalError);
}

//===----------------------------------------------------------------------===
// Fault mechanics at the fabric/PE level
//===----------------------------------------------------------------------===

TEST(FaultUnit, DeadLinkDropsAtInjection)
{
    wse::SimOptions options{1};
    options.faults.dropLink(0, 0, wse::Direction::East, 0);
    wse::Simulator sim(wse::ArchParams::wse3(), 3, 1, options);
    int deliveries = 0;
    auto deliver = [&deliveries](const wse::StreamDelivery &,
                                 const std::vector<float> &) {
        deliveries++;
    };
    sim.fabric().sendStream(0, 0, wse::Direction::East, {1, 2},
                            std::vector<float>(8, 1.0f), 0, deliver);
    sim.run();
    EXPECT_EQ(deliveries, 0);
    EXPECT_EQ(sim.report().faults.streamsDroppedByLinks, 1u);
}

TEST(FaultUnit, DeadLinkDropsMidPathAfterEarlierDeliveries)
{
    wse::SimOptions options{1};
    options.faults.dropLink(1, 0, wse::Direction::East, 0);
    wse::Simulator sim(wse::ArchParams::wse3(), 4, 1, options);
    std::vector<int> landedAt;
    auto deliver = [&landedAt](const wse::StreamDelivery &d,
                               const std::vector<float> &) {
        landedAt.push_back(d.peX);
    };
    sim.fabric().sendStream(0, 0, wse::Direction::East, {1, 3},
                            std::vector<float>(8, 1.0f), 0, deliver);
    sim.run();
    // Hop 1 lands before the dead link; hop 3 is lost behind it.
    EXPECT_EQ(landedAt, (std::vector<int>{1}));
    EXPECT_EQ(sim.report().faults.streamsDroppedByLinks, 1u);
}

TEST(FaultUnit, DegradedLinkDelaysDelivery)
{
    wse::Cycles completeAt[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
        wse::SimOptions options{1};
        if (i == 1)
            options.faults.degradeLink(0, 0, wse::Direction::East, 0,
                                       /*extraHopCycles=*/50);
        wse::Simulator sim(wse::ArchParams::wse3(), 2, 1, options);
        auto deliver = [&completeAt, i](const wse::StreamDelivery &d,
                                        const std::vector<float> &) {
            completeAt[i] = d.completeAt;
        };
        sim.fabric().sendStream(0, 0, wse::Direction::East, {1},
                                std::vector<float>(8, 1.0f), 0, deliver);
        sim.run();
    }
    EXPECT_EQ(completeAt[1], completeAt[0] + 50);
}

TEST(FaultUnit, PayloadCorruptionCopiesSharedChunk)
{
    // One chunk fanned out in two directions shares one payload slot;
    // corrupting the East stream must not leak into the West one.
    wse::SimOptions options{1};
    options.faults.seed = 7;
    options.faults.corruptPayload(1, 0, wse::Direction::East, 0);
    wse::Simulator sim(wse::ArchParams::wse3(), 3, 1, options);

    std::map<int, std::vector<float>> dataOf;
    std::map<int, bool> corruptedOf;
    auto deliver = std::make_shared<const wse::DeliveryFn>(
        [&](const wse::StreamDelivery &d, const std::vector<float> &p) {
            dataOf[d.peX] = p;
            corruptedOf[d.peX] = d.payload.corrupted();
        });
    wse::PayloadRef chunk = sim.pe(1, 0).payloadPool().acquire();
    chunk.mutableData().assign(16, 1.0f);
    sim.fabric().sendStream(1, 0, wse::Direction::East, 1u << 1, chunk, 0,
                            deliver);
    sim.fabric().sendStream(1, 0, wse::Direction::West, 1u << 1, chunk, 0,
                            deliver);
    chunk.reset();
    sim.run();

    ASSERT_EQ(dataOf.size(), 2u);
    // West (PE 0): pristine. East (PE 2): exactly one garbled element.
    EXPECT_EQ(dataOf[0], std::vector<float>(16, 1.0f));
    EXPECT_FALSE(corruptedOf[0]);
    EXPECT_TRUE(corruptedOf[2]);
    int changed = 0;
    for (float v : dataOf[2])
        if (v != 1.0f) {
            changed++;
            EXPECT_TRUE(std::isfinite(v)); // never NaN/inf garbage
        }
    EXPECT_EQ(changed, 1);
    EXPECT_EQ(sim.report().faults.payloadsCorrupted, 1u);
}

TEST(FaultUnit, PayloadDropLosesOneStreamOnly)
{
    wse::SimOptions options{1};
    options.faults.dropPayload(0, 0, wse::Direction::East, 0);
    wse::Simulator sim(wse::ArchParams::wse3(), 2, 1, options);
    int deliveries = 0;
    auto deliver = [&deliveries](const wse::StreamDelivery &,
                                 const std::vector<float> &) {
        deliveries++;
    };
    std::vector<float> payload(8, 1.0f);
    sim.fabric().sendStream(0, 0, wse::Direction::East, {1}, payload, 0,
                            deliver);
    sim.fabric().sendStream(0, 0, wse::Direction::East, {1}, payload, 0,
                            deliver);
    sim.run();
    // Stream 0 vanishes after the first hop; stream 1 is untouched.
    EXPECT_EQ(deliveries, 1);
    EXPECT_EQ(sim.report().faults.payloadsDropped, 1u);
}

TEST(FaultUnit, StutterSlowsWork)
{
    // A task's consumed cycles land on the work timeline, so the
    // stutter shows up in workFree(), not in the last event's cycle.
    wse::Cycles workFree[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
        wse::SimOptions options{1};
        if (i == 1)
            options.faults.stutterPe(0, 0, 0, wse::kNeverCycle, 4);
        wse::Simulator sim(wse::ArchParams::wse3(), 1, 1, options);
        sim.pe(0, 0).registerTask("work", wse::TaskKind::Local,
                                  [](wse::TaskContext &ctx) {
                                      ctx.consume(100);
                                  });
        sim.pe(0, 0).activate("work", 0);
        sim.run();
        workFree[i] = sim.pe(0, 0).workFree();
    }
    EXPECT_GE(workFree[1], 4 * workFree[0]);
    EXPECT_GT(workFree[0], 0u);
}

//===----------------------------------------------------------------------===
// Shard-tiling determinism under fault plans (PR 10)
//===----------------------------------------------------------------------===

/**
 * A fault plan is part of the simulated world, so it must replay
 * bit-exactly not only at any thread count but under any shard tiling:
 * injection ordinals are counted on the owning link's shard in
 * deterministic event order, never off scheduling artifacts. Compares
 * threads=1 against 1-D strips and two 2-D tilings — outcome, fault
 * counters, diagnosis rows AND field bytes.
 */
void
expectFaultTilingEquivalence(fe::Benchmark bench, int nx, int ny,
                             const wse::FaultPlan &plan,
                             wse::Cycles timeoutCycles)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());

    FaultRun sequential =
        runFaulted(module.get(), bench, nx, ny, 1, plan, timeoutCycles);
    const wse::ShardGrid tilings[] = {{1, 4}, {2, 2}, {4, 2}};
    for (const wse::ShardGrid &grid : tilings) {
        wse::SimOptions options{4};
        options.faults = plan;
        options.exchangeTimeoutCycles = timeoutCycles;
        options.shardGrid = grid;
        FaultRun tiled =
            runFaultedOpts(module.get(), bench, nx, ny, options);
        EXPECT_EQ(static_cast<int>(sequential.outcome),
                  static_cast<int>(tiled.outcome))
            << grid.rows << "x" << grid.cols;
        EXPECT_EQ(sequential.finalCycle, tiled.finalCycle)
            << grid.rows << "x" << grid.cols;
        EXPECT_TRUE(sequential.stats == tiled.stats)
            << grid.rows << "x" << grid.cols;
        EXPECT_TRUE(sequential.faults == tiled.faults)
            << grid.rows << "x" << grid.cols;
        EXPECT_EQ(sequential.haltedPes, tiled.haltedPes);
        EXPECT_EQ(sequential.degradedPes, tiled.degradedPes);
        EXPECT_EQ(sequential.blocked, tiled.blocked);
        EXPECT_EQ(sequential.unblocks, tiled.unblocks);
        EXPECT_EQ(sequential.fields, tiled.fields)
            << grid.rows << "x" << grid.cols;
    }
}

TEST(FaultTiling, CompositePlanDiffusion)
{
    // Halt + N/S link drop + payload corruption crossing horizontal
    // tile boundaries: the shape that would expose any tiling
    // dependence in ordinal counting or recovery ordering.
    wse::FaultPlan plan;
    plan.seed = 7;
    plan.haltPe(5, 2, 40);
    plan.dropLink(3, 4, wse::Direction::North, 60);
    plan.corruptPayload(2, 2, wse::Direction::South, 1);
    expectFaultTilingEquivalence(fe::makeDiffusion(7, 7, 4, 16), 7, 7,
                                 plan, /*timeout=*/4000);
}

TEST(FaultTiling, CompositePlanJacobian)
{
    wse::FaultPlan plan;
    plan.seed = 11;
    plan.haltPe(1, 5, 80);
    plan.stutterPe(4, 1, 0, 2000, 3);
    plan.dropPayload(3, 3, wse::Direction::East, 0);
    expectFaultTilingEquivalence(fe::makeJacobian(7, 7, 4, 64), 7, 7,
                                 plan, /*timeout=*/6000);
}

} // namespace
} // namespace wsc::test
