#include "test_helpers.h"

#include "codegen/csl_emitter.h"
#include "codegen/loc_counter.h"

namespace wsc::test {
namespace {

class EmitterTest : public IrTest
{
  protected:
    codegen::EmittedCsl
    emit(fe::Benchmark &bench)
    {
        ir::OwningOp module = bench.program.emit(ctx);
        transforms::runPipeline(module.get());
        return codegen::emitCsl(module.get());
    }
};

TEST_F(EmitterTest, ProgramContainsFigureOneStructure)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 100, 16);
    codegen::EmittedCsl csl = emit(bench);
    const std::string &pe = csl.programFile;
    EXPECT_NE(pe.find("fn f_main() void"), std::string::npos);
    EXPECT_NE(pe.find("task for_cond0() void"), std::string::npos);
    EXPECT_NE(pe.find("fn seq_kernel0() void"), std::string::npos);
    EXPECT_NE(pe.find("task receive_chunk_cb0"), std::string::npos);
    EXPECT_NE(pe.find("task done_exchange_cb0"), std::string::npos);
    EXPECT_NE(pe.find("fn for_inc0() void"), std::string::npos);
    EXPECT_NE(pe.find("fn for_post0() void"), std::string::npos);
}

TEST_F(EmitterTest, ProgramUsesCslIdioms)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 100, 16);
    codegen::EmittedCsl csl = emit(bench);
    const std::string &pe = csl.programFile;
    EXPECT_NE(pe.find("@get_dsd(mem1d_dsd"), std::string::npos);
    EXPECT_NE(pe.find("@fadds("), std::string::npos);
    EXPECT_NE(pe.find("@fmovs("), std::string::npos);
    EXPECT_NE(pe.find("@zeros("), std::string::npos);
    EXPECT_NE(pe.find("@bind_local_task("), std::string::npos);
    EXPECT_NE(pe.find("@export_symbol(f_main"), std::string::npos);
    EXPECT_NE(pe.find("@activate("), std::string::npos);
    EXPECT_NE(pe.find("comms.communicate("), std::string::npos);
    EXPECT_NE(pe.find("sys_mod.unblock_cmd_stream()"),
              std::string::npos);
    EXPECT_NE(pe.find("@import_module(\"<memcpy/memcpy>\")"),
              std::string::npos);
}

TEST_F(EmitterTest, PointerRotationIsPrinted)
{
    fe::Benchmark bench = fe::makeAcoustic(8, 8, 100, 16);
    codegen::EmittedCsl csl = emit(bench);
    const std::string &pe = csl.programFile;
    EXPECT_NE(pe.find("var ptr_iter0: [*]f32 = &u;"), std::string::npos);
    EXPECT_NE(pe.find("var ptr_out0: [*]f32 = &out0;"),
              std::string::npos);
    // for_inc stores the rotated pointers.
    EXPECT_NE(pe.find("ptr_iter0 = "), std::string::npos);
}

TEST_F(EmitterTest, LayoutFileDescribesGrid)
{
    fe::Benchmark bench = fe::makeJacobian(9, 7, 100, 16);
    codegen::EmittedCsl csl = emit(bench);
    const std::string &layout = csl.layoutFile;
    EXPECT_NE(layout.find("@set_rectangle(9, 7)"), std::string::npos);
    EXPECT_NE(layout.find("@set_tile_code(x, y, \"pe.csl\""),
              std::string::npos);
    EXPECT_NE(layout.find(".z_dim = 16"), std::string::npos);
    EXPECT_NE(layout.find("@export_name(\"f_main\""),
              std::string::npos);
}

TEST_F(EmitterTest, WrappedDsdPrintsModuloAccess)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 100, 16);
    codegen::EmittedCsl csl = emit(bench);
    EXPECT_NE(csl.programFile.find("(i % "), std::string::npos);
}

TEST_F(EmitterTest, EmissionIsDeterministic)
{
    fe::Benchmark a = fe::makeDiffusion(8, 8, 10, 16);
    fe::Benchmark b = fe::makeDiffusion(8, 8, 10, 16);
    EXPECT_EQ(emit(a).programFile, emit(b).programFile);
}

TEST_F(EmitterTest, RuntimeLibraryIsSubstantial)
{
    const std::string &lib = codegen::stencilCommsLibrarySource();
    EXPECT_NE(lib.find("fn communicate("), std::string::npos);
    EXPECT_NE(lib.find("@set_local_color_config"), std::string::npos);
    EXPECT_GT(codegen::countLoc(lib), 100);
}

TEST_F(EmitterTest, LocCounterSkipsBlanksAndComments)
{
    std::string src = "// comment\n\nfn f() void {\n  return;\n}\n";
    EXPECT_EQ(codegen::countLoc(src), 3);
}

TEST_F(EmitterTest, DslIsMuchShorterThanGeneratedCsl)
{
    // The Table 1 productivity claim, on our artifacts.
    for (fe::Benchmark &bench : fe::makeAllBenchmarks(12, 12, 4)) {
        ir::Context localCtx;
        dialects::registerAllDialects(localCtx);
        ir::OwningOp module = bench.program.emit(localCtx);
        transforms::runPipeline(module.get());
        codegen::EmittedCsl csl = codegen::emitCsl(module.get());
        int64_t kernel = codegen::countLoc(csl.programFile);
        int64_t dsl = codegen::countLoc(bench.dslSource);
        EXPECT_GT(kernel, 2 * dsl)
            << bench.name << ": kernel=" << kernel << " dsl=" << dsl;
    }
}

} // namespace
} // namespace wsc::test
