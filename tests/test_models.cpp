#include "test_helpers.h"

#include "model/cluster_model.h"
#include "model/flops.h"
#include "model/roofline.h"
#include "model/wafer_model.h"

namespace wsc::test {
namespace {

class ModelTest : public IrTest
{
};

TEST_F(ModelTest, WorkProfileCountsJacobianFlops)
{
    fe::Benchmark bench = fe::makeJacobian(8, 8, 4, 16);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::runPipeline(module.get());
    model::WorkProfile work = model::analyzeProgramWork(module.get());

    // Interior column is 14 points; receive reduce touches 4 sections.
    EXPECT_EQ(work.pointsPerPe, 14u);
    // One-shot reduce: 4*14 adds; plus local compute and the fill.
    EXPECT_GE(work.flops, 4u * 14u + 2u * 14u);
    // Fabric: 4 directions x 14 trimmed elements x 4 bytes.
    EXPECT_EQ(work.fabricBytes, 4u * 14u * 4u);
    EXPECT_GT(work.memBytes, 0u);
    EXPECT_GT(work.memArithmeticIntensity(), 0.0);
}

TEST_F(ModelTest, ChunkCountDoesNotChangeTotalWork)
{
    fe::Benchmark a = fe::makeJacobian(8, 8, 4, 32);
    ir::OwningOp m1 = a.program.emit(ctx);
    transforms::runPipeline(m1.get());
    fe::Benchmark b = fe::makeJacobian(8, 8, 4, 32);
    ir::OwningOp m2 = b.program.emit(ctx);
    transforms::PipelineOptions options;
    options.forceNumChunks = 2;
    transforms::runPipeline(m2.get(), options);

    model::WorkProfile w1 = model::analyzeProgramWork(m1.get());
    model::WorkProfile w2 = model::analyzeProgramWork(m2.get());
    EXPECT_EQ(w1.fabricBytes, w2.fabricBytes);
    EXPECT_EQ(w1.flops, w2.flops);
}

TEST_F(ModelTest, RooflineRidgeAndRegimes)
{
    model::Roof roof{"test", 1e15, 1e13};
    EXPECT_DOUBLE_EQ(roof.ridgeIntensity(), 100.0);
    EXPECT_TRUE(roof.isBandwidthBound(10.0));
    EXPECT_FALSE(roof.isBandwidthBound(200.0));
    EXPECT_DOUBLE_EQ(roof.attainable(10.0), 1e14);
    EXPECT_DOUBLE_EQ(roof.attainable(1000.0), 1e15);
}

TEST_F(ModelTest, ClusterModelsAreMemoryBoundAtStencilIntensity)
{
    model::ClusterSpec a100 = model::singleA100();
    model::Roof roof{"A100", a100.perDevicePeakFlops,
                     a100.perDeviceBandwidth};
    // Acoustic AI ~ 2 FLOP/byte: far below the A100 ridge (~8.6).
    EXPECT_TRUE(roof.isBandwidthBound(2.0));
}

TEST_F(ModelTest, ClusterThroughputScalesWithDevices)
{
    model::ClusterSpec one = model::singleA100();
    model::ClusterSpec many = model::tursaA100Cluster();
    double bytes = model::acousticBytesPerPointCacheMachine();
    EXPECT_GT(many.gptsPerSec(bytes), one.gptsPerSec(bytes));
    EXPECT_LT(many.gptsPerSec(bytes),
              128.0 * one.gptsPerSec(bytes)); // scaling losses
}

TEST_F(ModelTest, WaferMeasurementProducesSaneNumbers)
{
    fe::Benchmark bench = fe::makeJacobian(750, 994, 8, 64);
    model::MeasureOptions options;
    options.simGrid = 7;
    options.steps = 8;
    model::WaferPerf perf =
        model::measureBenchmark(bench, wse::ArchParams::wse3(), options);
    EXPECT_GT(perf.cyclesPerStep, 64.0); // at least the column length
    EXPECT_GT(perf.gptsPerSec, 0.0);
    EXPECT_GT(perf.flopsPerSec, 0.0);
    EXPECT_LT(perf.flopsPerSec, wse::ArchParams::wse3().peakFlops());
    EXPECT_LE(perf.peMemoryBytes, 48u * 1024u);
}

TEST_F(ModelTest, ExtrapolationMatchesLargerDirectSimulation)
{
    // The homogeneous-work argument (DESIGN.md §4): per-step interior
    // cycles measured on a small grid predict a larger grid's.
    fe::Benchmark small = fe::makeJacobian(7, 7, 10, 48);
    model::MeasureOptions optSmall;
    optSmall.simGrid = 7;
    optSmall.steps = 10;
    model::WaferPerf onSmall = model::measureBenchmark(
        small, wse::ArchParams::wse3(), optSmall);

    fe::Benchmark large = fe::makeJacobian(13, 13, 10, 48);
    model::MeasureOptions optLarge;
    optLarge.simGrid = 13;
    optLarge.steps = 10;
    model::WaferPerf onLarge = model::measureBenchmark(
        large, wse::ArchParams::wse3(), optLarge);

    EXPECT_NEAR(onSmall.cyclesPerStep / onLarge.cyclesPerStep, 1.0,
                0.15);
}

TEST_F(ModelTest, PerStepCyclesScaleWithColumnLength)
{
    fe::Benchmark shallow = fe::makeJacobian(7, 7, 8, 32);
    fe::Benchmark deep = fe::makeJacobian(7, 7, 8, 128);
    model::MeasureOptions options;
    options.simGrid = 7;
    options.steps = 8;
    model::WaferPerf a = model::measureBenchmark(
        shallow, wse::ArchParams::wse3(), options);
    model::WaferPerf b = model::measureBenchmark(
        deep, wse::ArchParams::wse3(), options);
    EXPECT_GT(b.cyclesPerStep, 2.0 * a.cyclesPerStep);
    EXPECT_LT(b.cyclesPerStep, 8.0 * a.cyclesPerStep);
}

} // namespace
} // namespace wsc::test
