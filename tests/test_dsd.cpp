#include <gtest/gtest.h>

#include "support/error.h"
#include "wse/dsd.h"
#include "wse/simulator.h"

namespace wsc::test {
namespace {

using wse::ArchParams;
using wse::Dsd;
using wse::DsdOperand;

/** Run `fn` inside a task and return the consumed cycles. */
class DsdTest : public ::testing::Test
{
  protected:
    DsdTest() : sim(ArchParams::wse3(), 1, 1), pe(sim.pe(0, 0)) {}

    wse::Cycles
    inTask(const std::function<void(wse::TaskContext &)> &fn)
    {
        wse::Cycles consumed = 0;
        static int counter = 0;
        std::string name = "t" + std::to_string(counter++);
        pe.registerTask(name, wse::TaskKind::Local,
                        [&](wse::TaskContext &ctx) {
                            fn(ctx);
                            consumed = ctx.consumed();
                        });
        pe.activate(name, 0);
        sim.run();
        return consumed;
    }

    wse::Simulator sim;
    wse::Pe &pe;
};

TEST_F(DsdTest, FaddsElementwise)
{
    std::vector<float> a = {1, 2, 3, 4};
    std::vector<float> b = {10, 20, 30, 40};
    std::vector<float> d(4, 0);
    inTask([&](wse::TaskContext &ctx) {
        wse::fadds(ctx, Dsd{&d, 0, 4, 1},
                   DsdOperand::fromDsd(Dsd{&a, 0, 4, 1}),
                   DsdOperand::fromDsd(Dsd{&b, 0, 4, 1}));
    });
    EXPECT_EQ(d, (std::vector<float>{11, 22, 33, 44}));
}

TEST_F(DsdTest, FmacsFusedMultiplyAccumulate)
{
    std::vector<float> acc = {1, 1, 1};
    std::vector<float> src = {2, 3, 4};
    inTask([&](wse::TaskContext &ctx) {
        wse::fmacs(ctx, Dsd{&acc, 0, 3, 1},
                   DsdOperand::fromDsd(Dsd{&acc, 0, 3, 1}),
                   DsdOperand::fromDsd(Dsd{&src, 0, 3, 1}), 0.5f);
    });
    EXPECT_EQ(acc, (std::vector<float>{2.0f, 2.5f, 3.0f}));
}

TEST_F(DsdTest, ScalarOperandsBroadcast)
{
    std::vector<float> d(5, 0);
    inTask([&](wse::TaskContext &ctx) {
        wse::fmovs(ctx, Dsd{&d, 0, 5, 1}, DsdOperand::fromScalar(7.5f));
    });
    EXPECT_EQ(d, std::vector<float>(5, 7.5f));
}

TEST_F(DsdTest, OffsetAndStrideViews)
{
    std::vector<float> buf = {0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<float> out(3, 0);
    inTask([&](wse::TaskContext &ctx) {
        // Every second element starting at 1: {1, 3, 5}.
        wse::fmovs(ctx, Dsd{&out, 0, 3, 1},
                   DsdOperand::fromDsd(Dsd{&buf, 1, 3, 2}));
    });
    EXPECT_EQ(out, (std::vector<float>{1, 3, 5}));
}

TEST_F(DsdTest, ShiftedViewsAliasCorrectly)
{
    std::vector<float> buf = {1, 2, 3, 4, 5, 6};
    inTask([&](wse::TaskContext &ctx) {
        Dsd interior{&buf, 1, 4, 1};
        // buf[1..5) += buf[2..6): in-order elementwise.
        wse::fadds(ctx, interior, DsdOperand::fromDsd(interior),
                   DsdOperand::fromDsd(interior.shifted(1)));
    });
    EXPECT_EQ(buf[1], 2 + 3);
}

TEST_F(DsdTest, WrappedDsdImplementsOneShotReduction)
{
    // recv = 3 sections x 4 elements; acc (4) += all sections.
    std::vector<float> recv = {1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3};
    std::vector<float> acc(4, 0);
    inTask([&](wse::TaskContext &ctx) {
        Dsd accWrap{&acc, 0, 12, 1, /*wrap=*/4};
        wse::fadds(ctx, accWrap, DsdOperand::fromDsd(accWrap),
                   DsdOperand::fromDsd(Dsd{&recv, 0, 12, 1}));
    });
    EXPECT_EQ(acc, std::vector<float>(4, 6.0f));
}

TEST_F(DsdTest, OutOfRangeAccessPanics)
{
    std::vector<float> buf(4, 0);
    EXPECT_THROW(
        inTask([&](wse::TaskContext &ctx) {
            wse::fmovs(ctx, Dsd{&buf, 2, 4, 1},
                       DsdOperand::fromScalar(0.0f));
        }),
        PanicError);
}

TEST_F(DsdTest, CostsScaleWithLength)
{
    std::vector<float> a(100, 1);
    std::vector<float> d(100, 0);
    wse::Cycles c100 = inTask([&](wse::TaskContext &ctx) {
        wse::fadds(ctx, Dsd{&d, 0, 100, 1},
                   DsdOperand::fromDsd(Dsd{&a, 0, 100, 1}),
                   DsdOperand::fromScalar(1.0f));
    });
    wse::Cycles c10 = inTask([&](wse::TaskContext &ctx) {
        wse::fadds(ctx, Dsd{&d, 0, 10, 1},
                   DsdOperand::fromDsd(Dsd{&a, 0, 10, 1}),
                   DsdOperand::fromScalar(1.0f));
    });
    EXPECT_EQ(c100 - c10, 90u);
}

TEST_F(DsdTest, FlopAccountingPerBuiltin)
{
    std::vector<float> a(10, 1);
    std::vector<float> d(10, 0);
    uint64_t before = sim.stats().flops;
    inTask([&](wse::TaskContext &ctx) {
        wse::fmacs(ctx, Dsd{&d, 0, 10, 1},
                   DsdOperand::fromDsd(Dsd{&a, 0, 10, 1}),
                   DsdOperand::fromDsd(Dsd{&a, 0, 10, 1}), 2.0f);
        wse::fmovs(ctx, Dsd{&d, 0, 10, 1},
                   DsdOperand::fromScalar(0.0f));
    });
    // fmacs: 2 flops/elem; fmovs: 0.
    EXPECT_EQ(sim.stats().flops - before, 20u);
}

} // namespace
} // namespace wsc::test
