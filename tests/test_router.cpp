#include <gtest/gtest.h>

#include "support/error.h"
#include "wse/router.h"

namespace wsc::test {
namespace {

using wse::Direction;
using wse::RouteConfig;
using wse::Router;

TEST(RouterTest, ConfigureAndQueryRoutes)
{
    Router router;
    EXPECT_FALSE(router.hasRoute(3));
    router.configure(3, wse::makeStarRoute(Direction::East, true, false,
                                           false));
    EXPECT_TRUE(router.hasRoute(3));
    const RouteConfig &route = router.route(3);
    EXPECT_EQ(route.positions.size(), 1u);
    EXPECT_TRUE(route.active().txTo.count(Direction::East));
}

TEST(RouterTest, ColorRangeIsChecked)
{
    Router router;
    EXPECT_THROW(router.configure(wse::kNumColors,
                                  wse::makeStarRoute(Direction::East,
                                                     true, false, false)),
                 PanicError);
}

TEST(RouterTest, SwitchPositionsAdvanceAndWrap)
{
    Router router;
    RouteConfig config = wse::makeStarRoute(Direction::East, true, false,
                                            false);
    config.positions.push_back(
        wse::makeStarRoute(Direction::East, false, false, false)
            .positions[0]);
    router.configure(0, config);
    EXPECT_EQ(router.route(0).current, 0u);
    router.advanceSwitch(0);
    EXPECT_EQ(router.route(0).current, 1u);
    router.advanceSwitch(0);
    EXPECT_EQ(router.route(0).current, 0u); // wraps
    router.advanceSwitch(0);
    router.resetSwitches();
    EXPECT_EQ(router.route(0).current, 0u);
}

TEST(RouterTest, StarRouteForwardAndDeliver)
{
    // Intermediate PE: accepts from behind, delivers and forwards.
    RouteConfig mid = wse::makeStarRoute(Direction::East,
                                         /*isSender=*/false,
                                         /*isTerminal=*/false, false);
    EXPECT_TRUE(mid.active().rxFrom.count(Direction::West));
    EXPECT_TRUE(mid.active().deliverToRamp);
    EXPECT_TRUE(mid.active().txTo.count(Direction::East));
    // Terminal PE: delivers only.
    RouteConfig terminal = wse::makeStarRoute(Direction::East, false,
                                              /*isTerminal=*/true, false);
    EXPECT_TRUE(terminal.active().deliverToRamp);
    EXPECT_FALSE(terminal.active().txTo.count(Direction::East));
}

TEST(RouterTest, Wse2SelfTransmitShowsInSenderPosition)
{
    RouteConfig wse2 = wse::makeStarRoute(Direction::North,
                                          /*isSender=*/true, false,
                                          /*selfTransmit=*/true);
    RouteConfig wse3 = wse::makeStarRoute(Direction::North, true, false,
                                          /*selfTransmit=*/false);
    EXPECT_TRUE(wse2.active().deliverToRamp);
    EXPECT_FALSE(wse3.active().deliverToRamp);
}

TEST(RouterTest, UnknownColorPanics)
{
    Router router;
    EXPECT_THROW(router.route(5), PanicError);
    EXPECT_THROW(router.advanceSwitch(5), PanicError);
}

} // namespace
} // namespace wsc::test
