#include <gtest/gtest.h>

#include "support/error.h"
#include "wse/simulator.h"

namespace wsc::test {
namespace {

using wse::ArchParams;
using wse::Cycles;
using wse::Simulator;

TEST(ArchParamsTest, Wse3RooflineNumbersMatchThePaper)
{
    ArchParams p = ArchParams::wse3();
    // Figure 7: peak 1.52 PFLOP/s, memory 18.22 PB/s, fabric 3.30 PB/s.
    EXPECT_NEAR(p.peakFlops() / 1e15, 1.52, 0.25);
    EXPECT_NEAR(p.memoryBandwidth() / 1e15, 18.22, 3.0);
    EXPECT_NEAR(p.fabricBandwidth() / 1e15, 3.30, 0.9);
    EXPECT_EQ(p.peMemoryBytes, 48 * 1024);
}

TEST(ArchParamsTest, Wse2DiffersInSwitchingAndClock)
{
    ArchParams w2 = ArchParams::wse2();
    ArchParams w3 = ArchParams::wse3();
    EXPECT_TRUE(w2.switchRequiresSelfTransmit);
    EXPECT_FALSE(w3.switchRequiresSelfTransmit);
    EXPECT_GT(w2.switchReconfigCycles, w3.switchReconfigCycles);
    EXPECT_LT(w2.clockGHz, w3.clockGHz);
    // The large problem size fills the WSE2 grid exactly.
    EXPECT_EQ(w2.fabricWidth, 750);
    EXPECT_EQ(w2.fabricHeight, 994);
}

TEST(SimulatorTest, EventsRunInTimeOrder)
{
    Simulator sim(ArchParams::wse3(), 2, 2);
    std::vector<int> order;
    sim.schedule(30, [&] { order.push_back(3); });
    sim.schedule(10, [&] { order.push_back(1); });
    sim.schedule(20, [&] { order.push_back(2); });
    Cycles end = sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(end, 30u);
}

TEST(SimulatorTest, TiesRunInScheduleOrder)
{
    Simulator sim(ArchParams::wse3(), 1, 1);
    std::vector<int> order;
    sim.schedule(5, [&] { order.push_back(1); });
    sim.schedule(5, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, SchedulingIntoThePastPanics)
{
    Simulator sim(ArchParams::wse3(), 1, 1);
    sim.schedule(10, [&] {
        EXPECT_THROW(sim.schedule(5, [] {}), PanicError);
    });
    sim.run();
}

TEST(SimulatorTest, EventBudgetCatchesLivelock)
{
    Simulator sim(ArchParams::wse3(), 1, 1);
    std::function<void()> respawn = [&] {
        sim.schedule(sim.now() + 1, respawn);
    };
    sim.schedule(0, respawn);
    EXPECT_THROW(sim.run(/*maxEvents=*/100), FatalError);
}

TEST(SimulatorTest, GridMustFitTheFabric)
{
    EXPECT_THROW(Simulator(ArchParams::wse2(), 751, 1), FatalError);
    EXPECT_NO_THROW(Simulator(ArchParams::wse2(), 4, 4));
}

TEST(PeTest, BufferAllocationTracksMemory)
{
    Simulator sim(ArchParams::wse3(), 1, 1);
    wse::Pe &pe = sim.pe(0, 0);
    pe.allocBuffer("a", 1000);
    EXPECT_EQ(pe.memoryBytesUsed(), 4000u);
    pe.allocBuffer("b", 500);
    EXPECT_EQ(pe.memoryBytesUsed(), 6000u);
    pe.freeBuffer("a");
    EXPECT_EQ(pe.memoryBytesUsed(), 2000u);
}

TEST(PeTest, The48kbLimitIsEnforced)
{
    Simulator sim(ArchParams::wse3(), 1, 1);
    wse::Pe &pe = sim.pe(0, 0);
    pe.allocBuffer("big", 11000); // 44 kB
    EXPECT_THROW(pe.allocBuffer("more", 2000), FatalError);
}

TEST(PeTest, DuplicateBufferNamesAreRejected)
{
    Simulator sim(ArchParams::wse3(), 1, 1);
    wse::Pe &pe = sim.pe(0, 0);
    pe.allocBuffer("a", 10);
    EXPECT_THROW(pe.allocBuffer("a", 10), PanicError);
}

TEST(PeTest, TasksDispatchWithActivationOverhead)
{
    ArchParams params = ArchParams::wse3();
    Simulator sim(params, 1, 1);
    wse::Pe &pe = sim.pe(0, 0);
    Cycles started = 0;
    pe.registerTask("t", wse::TaskKind::Local,
                    [&](wse::TaskContext &ctx) {
                        started = ctx.startCycle();
                        ctx.consume(100);
                    });
    pe.activate("t", 50);
    sim.run();
    EXPECT_EQ(started, 50 + params.taskActivateCycles);
    EXPECT_EQ(pe.workFree(), started + 100);
    EXPECT_EQ(pe.taskActivations(), 1u);
}

TEST(PeTest, TasksSerializeOnTheWorkTimeline)
{
    ArchParams params = ArchParams::wse3();
    Simulator sim(params, 1, 1);
    wse::Pe &pe = sim.pe(0, 0);
    std::vector<Cycles> starts;
    wse::TaskFn fn = [&](wse::TaskContext &ctx) {
        starts.push_back(ctx.startCycle());
        ctx.consume(100);
    };
    pe.registerTask("a", wse::TaskKind::Local, fn);
    pe.registerTask("b", wse::TaskKind::Local, fn);
    pe.activate("a", 0);
    pe.activate("b", 0);
    sim.run();
    ASSERT_EQ(starts.size(), 2u);
    // The second task waits for the first's work plus its own dispatch.
    EXPECT_GE(starts[1], starts[0] + 100);
}

TEST(PeTest, FifoOrderIsPreserved)
{
    Simulator sim(ArchParams::wse3(), 1, 1);
    wse::Pe &pe = sim.pe(0, 0);
    std::vector<std::string> order;
    pe.registerTask("x", wse::TaskKind::Local,
                    [&](wse::TaskContext &) { order.push_back("x"); });
    pe.registerTask("y", wse::TaskKind::Local,
                    [&](wse::TaskContext &) { order.push_back("y"); });
    pe.activate("x", 100);
    pe.activate("y", 100);
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"x", "y"}));
}

TEST(PeTest, ActivatingUnknownTaskPanics)
{
    Simulator sim(ArchParams::wse3(), 1, 1);
    EXPECT_THROW(sim.pe(0, 0).activate("ghost", 0), PanicError);
}

TEST(PeTest, DsdOpChargesSetupAndPerElementCycles)
{
    ArchParams params = ArchParams::wse3();
    Simulator sim(params, 1, 1);
    wse::Pe &pe = sim.pe(0, 0);
    Cycles consumed = 0;
    pe.registerTask("t", wse::TaskKind::Local,
                    [&](wse::TaskContext &ctx) {
                        ctx.dsdOp(450, 2);
                        consumed = ctx.consumed();
                    });
    pe.activate("t", 0);
    sim.run();
    EXPECT_EQ(consumed, params.dsdSetupCycles + 450);
    EXPECT_EQ(sim.stats().flops, 900u);
    EXPECT_EQ(sim.stats().memBytes, 450u * 12);
}

} // namespace
} // namespace wsc::test
