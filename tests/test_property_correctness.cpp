#include "test_helpers.h"

namespace wsc::test {
namespace {

/**
 * Property suite: for any star-shaped linear stencil (random-ish
 * coefficients derived from the parameters), any grid shape and chunk
 * count, the compiled WSE program must agree with the reference
 * executor. This sweeps the space the paper's pipeline must handle:
 * radius 1..3, multiple z depths, uneven grids and chunked exchanges.
 */
struct PropertyCase
{
    int radius;
    int nx;
    int ny;
    int nz;
    int steps;
    int forceChunks; // 0 = policy default
};

class StencilProperty : public ::testing::TestWithParam<PropertyCase>
{
};

/** Deterministic pseudo-random coefficient for term i. */
double
coeffFor(int i, int radius)
{
    double c = 0.03 + 0.021 * ((i * 7 + radius * 13) % 11);
    return ((i + radius) % 2 == 0) ? c : -c;
}

fe::Benchmark
makePropertyBenchmark(const PropertyCase &pc)
{
    fe::Program program(
        fe::Grid{pc.nx, pc.ny, pc.nz});
    program.setTimesteps(pc.steps);
    fe::Field u = program.addField("u");
    // Coefficients are assigned in a fixed order (chained `+` would
    // leave the evaluation order of `term++` unspecified).
    int term = 0;
    auto next = [&] { return fe::constant(coeffFor(term++, pc.radius)); };
    fe::Expr update = next() * u();
    for (int d = 1; d <= pc.radius; ++d) {
        update = update + next() * u.at(d, 0, 0);
        update = update + next() * u.at(-d, 0, 0);
        update = update + next() * u.at(0, d, 0);
        update = update + next() * u.at(0, -d, 0);
        update = update + next() * u.at(0, 0, d);
        update = update + next() * u.at(0, 0, -d);
    }
    program.setUpdate(u, update);

    fe::Benchmark bench;
    bench.name = "property";
    bench.frontend = "sym";
    bench.program = std::move(program);
    bench.paperIterations = pc.steps;
    bench.init = [](int f, int64_t x, int64_t y, int64_t z) {
        return static_cast<float>(
            std::sin(0.13 * static_cast<double>(x + 2 * y) + 0.2 * f) +
            0.4 * std::cos(0.09 * static_cast<double>(z)));
    };
    return bench;
}

TEST_P(StencilProperty, CompiledMatchesReference)
{
    PropertyCase pc = GetParam();
    fe::Benchmark bench = makePropertyBenchmark(pc);

    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    transforms::PipelineOptions options;
    options.forceNumChunks = pc.forceChunks;
    transforms::runPipeline(module.get(), options);

    wse::Simulator sim(wse::ArchParams::wse3(), pc.nx, pc.ny);
    interp::CslProgramInstance instance(sim, module.get());
    auto init = bench.init;
    instance.setFieldInit("u", [init](int x, int y, int z) {
        return init(0, x, y, z);
    });
    instance.configure();
    instance.launch();
    sim.run(4000000000ULL);

    model::ReferenceExecutor ref(bench.program, bench.init);
    ref.run(pc.steps);
    double maxErr = 0;
    for (int x = 0; x < pc.nx; ++x)
        for (int y = 0; y < pc.ny; ++y) {
            std::vector<float> col = instance.readFieldColumn("u", x, y);
            for (size_t z = 0; z < col.size(); ++z) {
                double r = ref.at(0, x, y, static_cast<int64_t>(z));
                maxErr = std::max(maxErr,
                                  std::abs(col[z] - r) /
                                      std::max(1.0, std::abs(r)));
            }
        }
    EXPECT_LT(maxErr, 2e-4);
}

INSTANTIATE_TEST_SUITE_P(
    RadiusGridChunkSweep, StencilProperty,
    ::testing::Values(
        PropertyCase{1, 6, 6, 10, 3, 0},
        PropertyCase{1, 6, 6, 10, 3, 2},
        PropertyCase{1, 9, 4, 14, 4, 0},
        PropertyCase{1, 4, 9, 14, 4, 3},
        PropertyCase{2, 7, 7, 12, 3, 0},
        PropertyCase{2, 7, 7, 12, 3, 2},
        PropertyCase{2, 10, 6, 18, 3, 4},
        PropertyCase{2, 6, 10, 18, 2, 0},
        PropertyCase{3, 8, 8, 16, 3, 0},
        PropertyCase{3, 8, 8, 16, 3, 2},
        PropertyCase{3, 11, 8, 20, 2, 5},
        PropertyCase{3, 8, 11, 20, 2, 0}),
    [](const ::testing::TestParamInfo<PropertyCase> &info) {
        const PropertyCase &pc = info.param;
        return "r" + std::to_string(pc.radius) + "_g" +
               std::to_string(pc.nx) + "x" + std::to_string(pc.ny) +
               "x" + std::to_string(pc.nz) + "_s" +
               std::to_string(pc.steps) + "_c" +
               std::to_string(pc.forceChunks);
    });

} // namespace
} // namespace wsc::test
