/**
 * @file
 * The Devito-like symbolic frontend: a small C++ eDSL for expressing
 * finite-difference stencil updates over 3-D grids, plus the shared
 * Program representation every frontend (Devito-like, Fortran/Flang,
 * PSyclone-like) lowers into. Program::emit() produces the stencil
 * dialect IR consumed by the compilation pipeline; the same expression
 * trees drive the scalar reference executor used as the correctness
 * oracle.
 */

#ifndef WSC_FRONTENDS_SYM_H
#define WSC_FRONTENDS_SYM_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/operation.h"

namespace wsc::fe {

/** Expression node kinds. */
enum class ExprKind { Access, Const, Add, Sub, Mul, Div };

/** A node of a stencil update expression. */
struct ExprNode
{
    ExprKind kind;
    // Access:
    int field = -1;
    int dx = 0;
    int dy = 0;
    int dz = 0;
    /**
     * When set, the access reads the field's value as updated earlier in
     * the same timestep (sequential-update semantics; the field must be
     * updated before the referencing one). Otherwise accesses read
     * begin-of-step values.
     */
    bool next = false;
    // Const:
    double value = 0.0;
    // Binary:
    std::shared_ptr<ExprNode> lhs;
    std::shared_ptr<ExprNode> rhs;
};

/** Value-semantics expression handle with operator overloading. */
class Expr
{
  public:
    Expr() = default;
    explicit Expr(std::shared_ptr<ExprNode> node) : node_(std::move(node))
    {
    }

    const std::shared_ptr<ExprNode> &node() const { return node_; }
    explicit operator bool() const { return node_ != nullptr; }

    /** Largest |offset| per dimension across the expression. */
    void radius(int &rx, int &ry, int &rz) const;

  private:
    std::shared_ptr<ExprNode> node_;
};

Expr constant(double v);
Expr operator+(Expr a, Expr b);
Expr operator-(Expr a, Expr b);
Expr operator*(Expr a, Expr b);
Expr operator/(Expr a, Expr b);
Expr operator*(double a, Expr b);
Expr operator+(Expr a, double b);

/** The 3-D problem grid: x, y across PEs; z within a PE column. */
struct Grid
{
    int64_t nx = 0;
    int64_t ny = 0;
    int64_t nz = 0;
};

class Program;

/** A named field (grid function). */
class Field
{
  public:
    Field() = default;

    const std::string &name() const;
    int index() const { return index_; }

    /** Access at an offset from the current grid point. */
    Expr at(int dx, int dy, int dz) const;
    /** Access at the current point. */
    Expr operator()() const { return at(0, 0, 0); }
    /** Access the value updated earlier in the same timestep. */
    Expr next(int dx, int dy, int dz) const;

    /** Second-order central difference in x/y (radius-1 helper). */
    Expr shiftX(int d) const { return at(d, 0, 0); }
    Expr shiftY(int d) const { return at(0, d, 0); }
    Expr shiftZ(int d) const { return at(0, 0, d); }

  private:
    friend class Program;
    Field(Program *program, int index) : program_(program), index_(index)
    {
    }
    Program *program_ = nullptr;
    int index_ = -1;
};

/**
 * A stencil program: fields plus one update expression per field giving
 * its next-timestep value (absent = the field is read-only). An update
 * that is exactly `field.at(0,0,0)` of another field expresses buffer
 * rotation (e.g. u_prev' = u).
 */
class Program
{
  public:
    Program() = default;
    explicit Program(Grid grid) : grid_(grid) {}

    Field addField(const std::string &name);
    void setUpdate(const Field &field, Expr next);
    void setTimesteps(int64_t steps) { timesteps_ = steps; }
    /**
     * Mark a field as a pure intermediate: it is computed and consumed
     * within a step but never written back to the host. Its producing
     * apply then has a single consumer, which is what lets
     * stencil-inlining fuse consecutive applies (UVKBE).
     */
    void markIntermediate(const std::string &fieldName);
    bool isIntermediate(size_t i) const { return intermediate_[i]; }

    const Grid &grid() const { return grid_; }
    int64_t timesteps() const { return timesteps_; }
    size_t numFields() const { return fieldNames_.size(); }
    const std::string &fieldName(size_t i) const { return fieldNames_[i]; }
    const std::optional<Expr> &update(size_t i) const
    {
        return updates_[i];
    }

    /**
     * Lower to the stencil dialect: a builtin.module containing a
     * func.func kernel with loads, the timestep loop (when timesteps >
     * 1), one stencil.apply per non-trivial update, and stores.
     */
    ir::OwningOp emit(ir::Context &ctx) const;

  private:
    friend class Field;
    Grid grid_{};
    int64_t timesteps_ = 1;
    std::vector<std::string> fieldNames_;
    std::vector<std::optional<Expr>> updates_;
    std::vector<bool> intermediate_;
};

} // namespace wsc::fe

#endif // WSC_FRONTENDS_SYM_H
