/**
 * @file
 * The Flang / PSyclone stand-in frontend: parses Fortran-style stencil
 * loop nests (the form of the paper's Listing 1 / Figure 1) into the
 * shared fe::Program representation, from which the stencil dialect is
 * emitted. This reproduces the paper's claim that application code needs
 * no changes: the scientist's loop nest is consumed as-is.
 *
 * Supported shape:
 *
 *   do step = 1, T          ! optional timestep loop
 *    do i = 2, NX-1         ! x over PEs
 *     do j = 2, NY-1        ! y over PEs
 *      do k = 2, NZ-1       ! z within a PE column
 *        a(k,j,i) = 0.125 * (a(k,j,i-1) + a(k,j,i+1) + ...)
 *        b(k,j,i) = ...     ! later statements see earlier results
 *      enddo
 *     enddo
 *    enddo
 *   enddo
 *
 * Array references use Fortran column-major convention: the first index
 * is the innermost (z) dimension. Following the paper's Listing 1→2
 * translation, in-place self-references take value semantics (Jacobi
 * reads of the previous timestep); reads of fields assigned by *earlier
 * statements* see the updated values (Fortran statement order).
 */

#ifndef WSC_FRONTENDS_FORTRAN_FRONTEND_H
#define WSC_FRONTENDS_FORTRAN_FRONTEND_H

#include <cstdint>
#include <optional>
#include <string>

#include "frontends/sym.h"
#include "ir/diagnostics.h"
#include "support/error.h"

namespace wsc::fe {

/** Grid extents and timestep count for a parsed kernel. */
struct FortranKernelConfig
{
    int64_t nx = 0;
    int64_t ny = 0;
    int64_t nz = 0;
    /** Used when the source has no explicit timestep loop. */
    int64_t timesteps = 1;
};

/**
 * Thrown by the legacy `parseFortranStencil` wrapper on malformed input.
 * Derives from FatalError so existing catch sites keep working; new code
 * should prefer `parseFortranStencilChecked`, which never throws for
 * malformed source.
 */
class FrontendError : public FatalError
{
  public:
    using FatalError::FatalError;
};

/** Outcome of a checked parse: a program, or a located diagnostic. */
struct FortranParseResult
{
    /** Engaged on success. */
    std::optional<Program> program;
    /** On failure: the error, located as "fortran:<line>:<col>". */
    ir::Diagnostic diagnostic;

    explicit operator bool() const { return program.has_value(); }
};

/**
 * Parse a Fortran-style stencil kernel into a Program. Malformed input
 * produces a failed result carrying a source-located diagnostic; the
 * process is never terminated.
 */
FortranParseResult
parseFortranStencilChecked(const std::string &source,
                           const FortranKernelConfig &config);

/**
 * Legacy throwing wrapper: returns the parsed Program, or throws
 * FrontendError (a FatalError) rendering the diagnostic on malformed
 * input.
 */
Program parseFortranStencil(const std::string &source,
                            const FortranKernelConfig &config);

} // namespace wsc::fe

#endif // WSC_FRONTENDS_FORTRAN_FRONTEND_H
