#include "frontends/benchmarks.h"

#include <cmath>
#include <sstream>

#include "frontends/fortran_frontend.h"
#include "support/error.h"

namespace wsc::fe {

namespace {

/** Deterministic smooth initial condition (per field). */
InitFn
smoothInit()
{
    return [](int f, int64_t x, int64_t y, int64_t z) -> float {
        double phase = 0.3 * f;
        return static_cast<float>(
            std::sin(0.11 * static_cast<double>(x) + phase) +
            std::cos(0.07 * static_cast<double>(y) - phase) +
            0.5 * std::sin(0.05 * static_cast<double>(z)));
    };
}

} // namespace

ProblemSize
smallSize()
{
    return {100, 100, "small"};
}

ProblemSize
mediumSize()
{
    return {500, 500, "medium"};
}

ProblemSize
largeSize()
{
    return {750, 994, "large"};
}

Benchmark
makeJacobian(int64_t nx, int64_t ny, int64_t timesteps, int64_t nz)
{
    // The Fortran kernel a scientist writes (paper Figure 1 / Listing 1).
    std::ostringstream src;
    src << "do step = 1, " << timesteps << "\n"
        << " do i = 2, " << nx - 1 << "\n"
        << "  do j = 2, " << ny - 1 << "\n"
        << "   do k = 2, " << nz - 1 << "\n"
        << "    a(k,j,i) = 0.16666667 * (a(k-1,j,i) + a(k+1,j,i)"
        << " + a(k,j-1,i) + a(k,j+1,i) + a(k,j,i-1) + a(k,j,i+1))\n"
        << "   enddo\n"
        << "  enddo\n"
        << " enddo\n"
        << "enddo\n";
    FortranKernelConfig config{nx, ny, nz, timesteps};
    Benchmark b{"Jacobian", "Flang",
                parseFortranStencil(src.str(), config), src.str(),
                /*paperIterations=*/100000, smoothInit()};
    return b;
}

Benchmark
makeDiffusion(int64_t nx, int64_t ny, int64_t timesteps, int64_t nz)
{
    // Devito-style heat equation with an 8th..no, 4th-order (r=2)
    // isotropic Laplacian: u' = u + a*dt*lap2(u).
    Program program(Grid{nx, ny, nz});
    program.setTimesteps(timesteps);
    Field u = program.addField("u");

    const double nu = 0.1; // a*dt/h^2
    const double c1 = nu * 16.0 / 12.0;
    const double c2 = nu * -1.0 / 12.0;
    const double c0 = 1.0 + 3.0 * nu * -30.0 / 12.0;

    Expr update = constant(c0) * u() +
                  constant(c1) * u.at(1, 0, 0) +
                  constant(c1) * u.at(-1, 0, 0) +
                  constant(c2) * u.at(2, 0, 0) +
                  constant(c2) * u.at(-2, 0, 0) +
                  constant(c1) * u.at(0, 1, 0) +
                  constant(c1) * u.at(0, -1, 0) +
                  constant(c2) * u.at(0, 2, 0) +
                  constant(c2) * u.at(0, -2, 0) +
                  constant(c1) * u.at(0, 0, 1) +
                  constant(c1) * u.at(0, 0, -1) +
                  constant(c2) * u.at(0, 0, 2) +
                  constant(c2) * u.at(0, 0, -2);
    program.setUpdate(u, update);

    // The equivalent Devito source a scientist writes.
    std::string dsl =
        "import numpy as np\n"
        "from devito import Grid, TimeFunction, Eq, Operator, solve\n"
        "grid = Grid(shape=(" + std::to_string(nx) + ", " +
        std::to_string(ny) + ", " + std::to_string(nz) + "))\n"
        "u = TimeFunction(name='u', grid=grid, space_order=4)\n"
        "u.data[:] = init(grid)\n"
        "eq = Eq(u.dt, 0.1 * u.laplace)\n"
        "stencil = solve(eq, u.forward)\n"
        "op = Operator(Eq(u.forward, stencil))\n"
        "op.apply(time=" + std::to_string(timesteps) + ")\n";

    return Benchmark{"Diffusion", "Devito", std::move(program), dsl,
                     /*paperIterations=*/512, smoothInit()};
}

Benchmark
makeAcoustic(int64_t nx, int64_t ny, int64_t timesteps, int64_t nz)
{
    // Devito-style isotropic acoustic wave equation, 2nd order in time:
    // u' = 2u - u_prev + (c*dt/h)^2 * lap2(u).
    Program program(Grid{nx, ny, nz});
    program.setTimesteps(timesteps);
    Field u = program.addField("u");
    Field uPrev = program.addField("u_prev");

    const double courant = 0.2; // (c*dt/h)^2
    const double c1 = courant * 16.0 / 12.0;
    const double c2 = courant * -1.0 / 12.0;
    const double c0 = 3.0 * courant * -30.0 / 12.0;

    // 2u is written as (u + u): three consecutive additions of the same
    // argument collapse to a multiplication under
    // varith-fuse-repeated-operands (paper §5.7, Acoustic).
    Expr update = u() + u() - uPrev() + constant(c0) * u() +
                  constant(c1) * u.at(1, 0, 0) +
                  constant(c1) * u.at(-1, 0, 0) +
                  constant(c2) * u.at(2, 0, 0) +
                  constant(c2) * u.at(-2, 0, 0) +
                  constant(c1) * u.at(0, 1, 0) +
                  constant(c1) * u.at(0, -1, 0) +
                  constant(c2) * u.at(0, 2, 0) +
                  constant(c2) * u.at(0, -2, 0) +
                  constant(c1) * u.at(0, 0, 1) +
                  constant(c1) * u.at(0, 0, -1) +
                  constant(c2) * u.at(0, 0, 2) +
                  constant(c2) * u.at(0, 0, -2);
    program.setUpdate(u, update);
    program.setUpdate(uPrev, u()); // buffer rotation

    std::string dsl =
        "from devito import Grid, TimeFunction, Eq, Operator, solve\n"
        "grid = Grid(shape=(" + std::to_string(nx) + ", " +
        std::to_string(ny) + ", " + std::to_string(nz) + "))\n"
        "u = TimeFunction(name='u', grid=grid, time_order=2, "
        "space_order=4)\n"
        "u.data[:] = ricker_source(grid)\n"
        "pde = u.dt2 - u.laplace * vel * vel\n"
        "stencil = Eq(u.forward, solve(pde, u.forward))\n"
        "op = Operator([stencil])\n"
        "op.apply(time=" + std::to_string(timesteps) + ")\n";

    return Benchmark{"Acoustic", "Devito", std::move(program), dsl,
                     /*paperIterations=*/512, smoothInit()};
}

SeismicCoefficients
seismicCoefficients()
{
    const double v2dt2 = 0.15;
    SeismicCoefficients c;
    c.k[0] = v2dt2 * 8.0 / 5.0 / 4.0;
    c.k[1] = v2dt2 * -1.0 / 5.0 / 4.0;
    c.k[2] = v2dt2 * 8.0 / 315.0 / 4.0;
    c.k[3] = v2dt2 * -1.0 / 560.0 / 4.0;
    c.k0 = 3.0 * v2dt2 * -205.0 / 72.0 / 4.0;
    return c;
}

Benchmark
makeSeismic(int64_t nx, int64_t ny, int64_t timesteps, int64_t nz)
{
    // The 25-point (r=4, 8th-order in space) seismic kernel of
    // Jacquelin et al., 2nd-order leapfrog in time.
    Program program(Grid{nx, ny, nz});
    program.setTimesteps(timesteps);
    Field p = program.addField("p");
    Field pPrev = program.addField("p_prev");

    SeismicCoefficients sc = seismicCoefficients();
    const double k0 = sc.k0;

    Expr lap = constant(k0) * p();
    const double *coeffs = sc.k;
    for (int d = 1; d <= 4; ++d) {
        double c = coeffs[d - 1];
        lap = lap + constant(c) * p.at(d, 0, 0) +
              constant(c) * p.at(-d, 0, 0) +
              constant(c) * p.at(0, d, 0) +
              constant(c) * p.at(0, -d, 0) +
              constant(c) * p.at(0, 0, d) +
              constant(c) * p.at(0, 0, -d);
    }
    Expr update = constant(2.0) * p() - pPrev() + lap;
    program.setUpdate(p, update);
    program.setUpdate(pPrev, p());

    std::string dsl =
        "from devito import Grid, TimeFunction, Eq, Operator, solve\n"
        "grid = Grid(shape=(" + std::to_string(nx) + ", " +
        std::to_string(ny) + ", " + std::to_string(nz) + "))\n"
        "p = TimeFunction(name='p', grid=grid, time_order=2, "
        "space_order=8)\n"
        "p.data[:] = source_wavefield(grid)\n"
        "pde = p.dt2 - p.laplace * vel * vel\n"
        "stencil = Eq(p.forward, solve(pde, p.forward))\n"
        "op = Operator([stencil])\n"
        "op.apply(time=" + std::to_string(timesteps) + ")\n";

    return Benchmark{"Seismic", "CSL", std::move(program), dsl,
                     /*paperIterations=*/100000, smoothInit()};
}

Benchmark
makeUvkbe(int64_t nx, int64_t ny, int64_t nz)
{
    // PSyclone-style kernel: four fields, two communicated (u, v), two
    // consecutive applies (the second reads the first's result), one
    // iteration.
    std::ostringstream src;
    src << "do i = 2, " << nx - 1 << "\n"
        << " do j = 2, " << ny - 1 << "\n"
        << "  do k = 2, " << nz - 1 << "\n"
        << "   ke(k,j,i) = 0.25 * (u(k,j,i+1) + u(k,j,i-1))"
        << " + 0.5 * u(k,j,i)\n"
        << "   out(k,j,i) = ke(k,j,i) + 0.25 * (v(k,j+1,i)"
        << " + v(k,j-1,i)) + 0.5 * v(k,j,i)\n"
        << "  enddo\n"
        << " enddo\n"
        << "enddo\n";
    FortranKernelConfig config{nx, ny, nz, /*timesteps=*/1};
    Benchmark b{"UVKBE", "PSyclone",
                parseFortranStencil(src.str(), config), src.str(),
                /*paperIterations=*/1, smoothInit()};
    // ke is consumed by the second statement and never written back:
    // with a single consumer, stencil-inlining fuses both applies into
    // one (paper §5.7), which the csl_stencil conversion then splits
    // again per communicated buffer.
    b.program.markIntermediate("ke");
    return b;
}

std::vector<Benchmark>
makeAllBenchmarks(int64_t nx, int64_t ny, int64_t timesteps)
{
    std::vector<Benchmark> out;
    out.push_back(makeJacobian(nx, ny, timesteps));
    out.push_back(makeDiffusion(nx, ny, timesteps));
    out.push_back(makeAcoustic(nx, ny, timesteps));
    out.push_back(makeSeismic(nx, ny, timesteps));
    out.push_back(makeUvkbe(nx, ny));
    return out;
}

} // namespace wsc::fe
