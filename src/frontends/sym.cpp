#include "frontends/sym.h"

#include <algorithm>
#include <map>
#include <set>

#include "dialects/arith.h"
#include "dialects/builtin.h"
#include "dialects/func.h"
#include "dialects/scf.h"
#include "dialects/stencil.h"
#include "ir/diagnostics.h"
#include "support/error.h"

namespace wsc::fe {

namespace {

namespace st = dialects::stencil;
namespace ar = dialects::arith;
namespace fn = dialects::func;
namespace scf = dialects::scf;

std::shared_ptr<ExprNode>
makeBinary(ExprKind kind, Expr a, Expr b)
{
    WSC_ASSERT(a && b, "binary expression with null operand");
    auto node = std::make_shared<ExprNode>();
    node->kind = kind;
    node->lhs = a.node();
    node->rhs = b.node();
    return node;
}

void
radiusOf(const std::shared_ptr<ExprNode> &node, int &rx, int &ry, int &rz)
{
    if (!node)
        return;
    if (node->kind == ExprKind::Access) {
        rx = std::max(rx, std::abs(node->dx));
        ry = std::max(ry, std::abs(node->dy));
        rz = std::max(rz, std::abs(node->dz));
    }
    radiusOf(node->lhs, rx, ry, rz);
    radiusOf(node->rhs, rx, ry, rz);
}

} // namespace

void
Expr::radius(int &rx, int &ry, int &rz) const
{
    radiusOf(node_, rx, ry, rz);
}

Expr
constant(double v)
{
    auto node = std::make_shared<ExprNode>();
    node->kind = ExprKind::Const;
    node->value = v;
    return Expr(node);
}

Expr
operator+(Expr a, Expr b)
{
    return Expr(makeBinary(ExprKind::Add, a, b));
}

Expr
operator-(Expr a, Expr b)
{
    return Expr(makeBinary(ExprKind::Sub, a, b));
}

Expr
operator*(Expr a, Expr b)
{
    return Expr(makeBinary(ExprKind::Mul, a, b));
}

Expr
operator/(Expr a, Expr b)
{
    return Expr(makeBinary(ExprKind::Div, a, b));
}

Expr
operator*(double a, Expr b)
{
    return constant(a) * b;
}

Expr
operator+(Expr a, double b)
{
    return a + constant(b);
}

const std::string &
Field::name() const
{
    return program_->fieldName(static_cast<size_t>(index_));
}

Expr
Field::at(int dx, int dy, int dz) const
{
    auto node = std::make_shared<ExprNode>();
    node->kind = ExprKind::Access;
    node->field = index_;
    node->dx = dx;
    node->dy = dy;
    node->dz = dz;
    return Expr(node);
}

Expr
Field::next(int dx, int dy, int dz) const
{
    Expr e = at(dx, dy, dz);
    e.node()->next = true;
    return e;
}

Field
Program::addField(const std::string &name)
{
    fieldNames_.push_back(name);
    updates_.emplace_back();
    intermediate_.push_back(false);
    return Field(this, static_cast<int>(fieldNames_.size()) - 1);
}

void
Program::markIntermediate(const std::string &fieldName)
{
    for (size_t i = 0; i < fieldNames_.size(); ++i) {
        if (fieldNames_[i] == fieldName) {
            intermediate_[i] = true;
            return;
        }
    }
    throw ir::DiagnosedError(ir::Diagnostic(
        ir::Severity::Error,
        "markIntermediate: unknown field '" + fieldName + "'"));
}

void
Program::setUpdate(const Field &field, Expr next)
{
    WSC_ASSERT(field.index() >= 0 &&
                   field.index() < static_cast<int>(updates_.size()),
               "update for an unknown field");
    updates_[static_cast<size_t>(field.index())] = next;
}

namespace {

/** Is the update a pure rotation (reads one field at offset zero)? */
bool
isRotation(const Expr &e, int &sourceField)
{
    const auto &n = e.node();
    if (n->kind == ExprKind::Access && n->dx == 0 && n->dy == 0 &&
        n->dz == 0 && !n->next) {
        sourceField = n->field;
        return true;
    }
    return false;
}

/** References collected from an update expression. */
struct AccessKey
{
    int field;
    bool next;
    auto operator<=>(const AccessKey &) const = default;
};

void
collectRefs(const std::shared_ptr<ExprNode> &node,
            std::set<AccessKey> &refs)
{
    if (!node)
        return;
    if (node->kind == ExprKind::Access)
        refs.insert({node->field, node->next});
    collectRefs(node->lhs, refs);
    collectRefs(node->rhs, refs);
}

/** Emits one update expression as a stencil.apply body. */
class ExprEmitter
{
  public:
    ExprEmitter(ir::OpBuilder &b,
                const std::map<AccessKey, ir::Value> &argOf)
        : b_(b), argOf_(argOf)
    {
    }

    ir::Value
    emit(const std::shared_ptr<ExprNode> &node)
    {
        switch (node->kind) {
          case ExprKind::Const:
            return ar::createConstantF32(b_, node->value);
          case ExprKind::Access: {
            // CSE accesses so that repeated operands are recognizable by
            // varith-fuse-repeated-operands.
            auto key = std::make_tuple(node->field, node->next, node->dx,
                                       node->dy, node->dz);
            auto it = accessCache_.find(key);
            if (it != accessCache_.end())
                return it->second;
            ir::Value source = argOf_.at({node->field, node->next});
            ir::Value v = st::createAccess(
                b_, source, {node->dx, node->dy, node->dz});
            accessCache_.emplace(key, v);
            return v;
          }
          case ExprKind::Add:
            return ar::createAddF(b_, emit(node->lhs), emit(node->rhs));
          case ExprKind::Sub:
            return ar::createSubF(b_, emit(node->lhs), emit(node->rhs));
          case ExprKind::Mul:
            return ar::createMulF(b_, emit(node->lhs), emit(node->rhs));
          case ExprKind::Div:
            return ar::createDivF(b_, emit(node->lhs), emit(node->rhs));
        }
        panic("unreachable expression kind");
    }

  private:
    ir::OpBuilder &b_;
    const std::map<AccessKey, ir::Value> &argOf_;
    std::map<std::tuple<int, bool, int, int, int>, ir::Value>
        accessCache_;
};

/**
 * Build one stencil.apply for an update, given the current SSA value of
 * each (field, next) source.
 */
ir::Value
emitApply(ir::OpBuilder &b, ir::Context &ctx, const Expr &update,
          const std::map<AccessKey, ir::Value> &valueOf,
          ir::Type resultType)
{
    std::set<AccessKey> refs;
    collectRefs(update.node(), refs);
    std::vector<ir::Value> operands;
    std::map<AccessKey, ir::Value> argOf;
    for (const AccessKey &key : refs)
        operands.push_back(valueOf.at(key));
    ir::Operation *apply = st::createApply(b, operands, {resultType});
    ir::Block *body = st::applyBody(apply);
    size_t idx = 0;
    for (const AccessKey &key : refs)
        argOf[key] = body->argument(static_cast<unsigned>(idx++));
    ir::OpBuilder bodyBuilder(ctx);
    bodyBuilder.setInsertionPointToEnd(body);
    ExprEmitter emitter(bodyBuilder, argOf);
    ir::Value result = emitter.emit(update.node());
    st::createReturn(bodyBuilder, {result});
    return apply->result();
}

} // namespace

ir::OwningOp
Program::emit(ir::Context &ctx) const
{
    namespace bt = dialects::builtin;
    ir::OwningOp module = bt::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(bt::moduleBody(module.get()));

    st::Bounds bounds{{0, 0, 0}, {grid_.nx, grid_.ny, grid_.nz}};
    ir::Type f32 = ir::getF32Type(ctx);
    ir::Type fieldType = st::getFieldType(ctx, bounds, f32);
    ir::Type tempType = st::getTempType(ctx, bounds, f32);

    std::vector<ir::Type> argTypes(numFields(), fieldType);
    ir::Operation *kernel = fn::createFunc(b, "kernel", argTypes, {});
    std::vector<ir::Attribute> argNames;
    for (const std::string &name : fieldNames_)
        argNames.push_back(ir::getStringAttr(ctx, name));
    kernel->setAttr("arg_names", ir::getArrayAttr(ctx, argNames));

    ir::Block *body = fn::funcBody(kernel);
    ir::OpBuilder kb(ctx);
    kb.setInsertionPointToEnd(body);

    // Loads: begin-of-run values of every field.
    std::vector<ir::Value> loads;
    for (size_t i = 0; i < numFields(); ++i)
        loads.push_back(
            st::createLoad(kb, body->argument(static_cast<unsigned>(i))));

    // Updated fields (in field order) carry loop state.
    std::vector<size_t> updated;
    for (size_t i = 0; i < numFields(); ++i)
        if (updates_[i])
            updated.push_back(i);
    WSC_ASSERT(!updated.empty(), "program without updates");

    auto emitStep =
        [&](ir::OpBuilder &sb,
            const std::map<size_t, ir::Value> &currentOf)
        -> std::map<size_t, ir::Value> {
        // Sequential-update semantics: next-references read results of
        // earlier updates in the same step.
        std::map<size_t, ir::Value> nextOf;
        for (size_t i : updated) {
            const Expr &update = *updates_[i];
            int rotationSource = -1;
            if (isRotation(update, rotationSource)) {
                nextOf[i] = currentOf.at(
                    static_cast<size_t>(rotationSource));
                continue;
            }
            std::map<AccessKey, ir::Value> valueOf;
            std::set<AccessKey> refs;
            collectRefs(update.node(), refs);
            for (const AccessKey &key : refs) {
                size_t f = static_cast<size_t>(key.field);
                if (key.next) {
                    WSC_ASSERT(nextOf.count(f),
                               "next-reference to a field updated later");
                    valueOf[key] = nextOf.at(f);
                } else {
                    valueOf[key] = currentOf.at(f);
                }
            }
            nextOf[i] = emitApply(sb, ctx, update, valueOf, tempType);
        }
        return nextOf;
    };

    std::map<size_t, ir::Value> finalOf;
    if (timesteps_ > 1) {
        ir::Value lb = ar::createConstantIndex(kb, 0);
        ir::Value ub = ar::createConstantIndex(kb, timesteps_);
        ir::Value step = ar::createConstantIndex(kb, 1);
        std::vector<ir::Value> inits;
        for (size_t i : updated)
            inits.push_back(loads[i]);
        ir::Operation *forOp = scf::createFor(kb, lb, ub, step, inits);
        std::vector<ir::Value> iterArgs = scf::forIterArgs(forOp);

        std::map<size_t, ir::Value> currentOf;
        for (size_t i = 0; i < numFields(); ++i)
            currentOf[i] = loads[i];
        for (size_t j = 0; j < updated.size(); ++j)
            currentOf[updated[j]] = iterArgs[j];

        ir::OpBuilder lbld(ctx);
        lbld.setInsertionPointToEnd(scf::forBody(forOp));
        std::map<size_t, ir::Value> nextOf = emitStep(lbld, currentOf);
        std::vector<ir::Value> yields;
        for (size_t i : updated)
            yields.push_back(nextOf.at(i));
        scf::createYield(lbld, yields);

        for (size_t j = 0; j < updated.size(); ++j)
            finalOf[updated[j]] =
                forOp->result(static_cast<unsigned>(j));
    } else {
        std::map<size_t, ir::Value> currentOf;
        for (size_t i = 0; i < numFields(); ++i)
            currentOf[i] = loads[i];
        std::map<size_t, ir::Value> nextOf = emitStep(kb, currentOf);
        for (size_t i : updated) {
            // Rotations are meaningless for a single step unless they
            // feed a store; map them directly.
            finalOf[i] = nextOf.at(i);
        }
    }

    // Stores: write every non-intermediate updated field back.
    for (size_t i : updated) {
        if (intermediate_[i])
            continue;
        ir::Value v = finalOf.at(i);
        st::createStore(kb, v, body->argument(static_cast<unsigned>(i)),
                        bounds);
    }
    fn::createReturn(kb);
    return module;
}

} // namespace wsc::fe
