/**
 * @file
 * The five paper benchmarks (§6), each expressed through its frontend:
 *
 *   Jacobian  (Flang)    — 3-D 6-point star, Laplace diffusion, z=900
 *   Diffusion (Devito)   — 3-D 13-point star (r=2) heat equation, z=704
 *   Acoustic  (Devito)   — 3-D 13-point star, 2nd-order-in-time wave
 *                          equation, z=604
 *   Seismic   (CSL)      — 3-D 25-point star (r=4) seismic kernel
 *                          (Jacquelin et al.), z=450
 *   UVKBE     (PSyclone) — four fields, two communicated, two
 *                          consecutive applies, one iteration, z=600
 *
 * Problem sizes follow the paper: small 100x100, medium 500x500,
 * large 750x994 (fills the WSE2 grid).
 */

#ifndef WSC_FRONTENDS_BENCHMARKS_H
#define WSC_FRONTENDS_BENCHMARKS_H

#include <cstdint>
#include <functional>
#include <string>

#include "frontends/sym.h"

namespace wsc::fe {

/** Initial condition: value of field `f` at grid point (x, y, z). */
using InitFn = std::function<float(int f, int64_t x, int64_t y, int64_t z)>;

/** A fully-specified benchmark instance. */
struct Benchmark
{
    std::string name;
    std::string frontend; ///< Flang / Devito / PSyclone / CSL
    Program program;
    /** The DSL source a scientist writes (Table 1 LoC accounting). */
    std::string dslSource;
    /** Iteration count used in the paper's evaluation. */
    int64_t paperIterations = 1;
    InitFn init;
};

/** Paper problem sizes (x, y). */
struct ProblemSize
{
    int64_t nx;
    int64_t ny;
    const char *label;
};
ProblemSize smallSize();
ProblemSize mediumSize();
ProblemSize largeSize();

/// @name Benchmark builders (timesteps = simulated steps)
/// @{
Benchmark makeJacobian(int64_t nx, int64_t ny, int64_t timesteps,
                       int64_t nz = 900);
Benchmark makeDiffusion(int64_t nx, int64_t ny, int64_t timesteps,
                        int64_t nz = 704);
Benchmark makeAcoustic(int64_t nx, int64_t ny, int64_t timesteps,
                       int64_t nz = 604);
Benchmark makeSeismic(int64_t nx, int64_t ny, int64_t timesteps,
                      int64_t nz = 450);
Benchmark makeUvkbe(int64_t nx, int64_t ny, int64_t nz = 600);
/// @}

/** All five benchmarks at a given size with reduced step counts. */
std::vector<Benchmark> makeAllBenchmarks(int64_t nx, int64_t ny,
                                         int64_t timesteps);

/** Finite-difference coefficients of the 25-point seismic kernel,
 *  shared with the hand-written baseline. */
struct SeismicCoefficients
{
    /** Laplacian centre weight (all three axes combined). */
    double k0 = 0.0;
    /** Per-distance weights (1..4), identical across axes. */
    double k[4] = {0, 0, 0, 0};
};
SeismicCoefficients seismicCoefficients();

} // namespace wsc::fe

#endif // WSC_FRONTENDS_BENCHMARKS_H
