#include "frontends/fortran_frontend.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <vector>

#include "support/error.h"

namespace wsc::fe {

namespace {

/** Token kinds of the small Fortran subset. */
enum class Tok
{
    Ident,
    Number,
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
    Equals,
    End
};

struct Token
{
    Tok kind;
    std::string text;
    double number = 0.0;
    bool isInt = false;
    int64_t intValue = 0;
    /** 1-based source position of the token's first character. */
    int line = 1;
    int col = 1;
};

/**
 * Unwind with a source-located diagnostic ("fortran:<line>:<col>"). The
 * frontend has no ir::Context at hand, so the diagnostic rides inside
 * the exception; the checked entry point catches and returns it.
 */
[[noreturn]] void
errorAt(int line, int col, const std::string &msg)
{
    ir::Diagnostic d(ir::Severity::Error, msg);
    d.location =
        "fortran:" + std::to_string(line) + ":" + std::to_string(col);
    throw ir::DiagnosedError(std::move(d));
}

[[noreturn]] void
errorAt(const Token &t, const std::string &msg)
{
    errorAt(t.line, t.col, msg);
}

/** Tokenizer; strips `!` comments and is case-insensitive for idents. */
class Lexer
{
  public:
    explicit Lexer(const std::string &source)
    {
        // Line starts, for O(log n) index -> line:col mapping.
        std::vector<size_t> lineStarts{0};
        for (size_t j = 0; j < source.size(); ++j)
            if (source[j] == '\n')
                lineStarts.push_back(j + 1);
        auto positionOf = [&](size_t idx) {
            size_t lo = static_cast<size_t>(
                std::upper_bound(lineStarts.begin(), lineStarts.end(),
                                 idx) -
                lineStarts.begin() - 1);
            return std::pair<int, int>(
                static_cast<int>(lo + 1),
                static_cast<int>(idx - lineStarts[lo] + 1));
        };
        auto stamp = [&](Token t, size_t start) {
            auto [line, col] = positionOf(start);
            t.line = line;
            t.col = col;
            tokens_.push_back(std::move(t));
        };

        size_t i = 0;
        while (i < source.size()) {
            char c = source[i];
            if (c == '!') { // comment to end of line
                while (i < source.size() && source[i] != '\n')
                    i++;
                continue;
            }
            if (std::isspace(static_cast<unsigned char>(c))) {
                i++;
                continue;
            }
            if (std::isalpha(static_cast<unsigned char>(c)) ||
                c == '_') {
                size_t start = i;
                std::string ident;
                while (i < source.size() &&
                       (std::isalnum(
                            static_cast<unsigned char>(source[i])) ||
                        source[i] == '_')) {
                    ident += static_cast<char>(std::tolower(
                        static_cast<unsigned char>(source[i])));
                    i++;
                }
                stamp({Tok::Ident, ident}, start);
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c)) ||
                (c == '.' && i + 1 < source.size() &&
                 std::isdigit(
                     static_cast<unsigned char>(source[i + 1])))) {
                size_t start = i;
                bool isInt = true;
                while (i < source.size() &&
                       (std::isdigit(
                            static_cast<unsigned char>(source[i])) ||
                        source[i] == '.' || source[i] == 'e' ||
                        source[i] == 'E' ||
                        ((source[i] == '+' || source[i] == '-') && i > 0 &&
                         (source[i - 1] == 'e' || source[i - 1] == 'E')))) {
                    if (source[i] == '.' || source[i] == 'e' ||
                        source[i] == 'E')
                        isInt = false;
                    i++;
                }
                Token t{Tok::Number, source.substr(start, i - start)};
                t.number = std::stod(t.text);
                t.isInt = isInt;
                if (isInt)
                    t.intValue = std::stoll(t.text);
                stamp(std::move(t), start);
                continue;
            }
            Tok kind;
            switch (c) {
              case '+': kind = Tok::Plus; break;
              case '-': kind = Tok::Minus; break;
              case '*': kind = Tok::Star; break;
              case '/': kind = Tok::Slash; break;
              case '(': kind = Tok::LParen; break;
              case ')': kind = Tok::RParen; break;
              case ',': kind = Tok::Comma; break;
              case '=': kind = Tok::Equals; break;
              default: {
                auto [line, col] = positionOf(i);
                errorAt(line, col,
                        strcat("unexpected character '", c, "'"));
              }
            }
            stamp({kind, std::string(1, c)}, i);
            i++;
        }
        Token end{Tok::End, "<end of input>"};
        auto [line, col] = positionOf(source.size());
        end.line = line;
        end.col = col;
        tokens_.push_back(std::move(end));
    }

    const Token &peek(size_t ahead = 0) const
    {
        size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
        return tokens_[idx];
    }
    Token
    next()
    {
        Token t = peek();
        if (pos_ + 1 < tokens_.size())
            pos_++;
        return t;
    }
    Token
    expect(Tok kind, const std::string &what)
    {
        Token t = next();
        if (t.kind != kind)
            errorAt(t, "expected " + what + ", got '" + t.text + "'");
        return t;
    }
    bool
    accept(Tok kind)
    {
        if (peek().kind != kind)
            return false;
        next();
        return true;
    }

  private:
    std::vector<Token> tokens_;
    size_t pos_ = 0;
};

/** One parsed assignment: target field plus expression. */
struct Assignment
{
    std::string target;
    Expr expr;
};

/** Parser building Program expressions. */
class Parser
{
  public:
    Parser(Lexer &lex, Program &program,
           const std::vector<std::string> &loopVars)
        : lex_(lex), program_(program), loopVars_(loopVars)
    {
    }

    /** loopVars_ order: [z, y, x] (Fortran index order of refs). */
    Expr
    parseExpr()
    {
        Expr lhs = parseTerm();
        while (true) {
            if (lex_.accept(Tok::Plus))
                lhs = lhs + parseTerm();
            else if (lex_.accept(Tok::Minus))
                lhs = lhs - parseTerm();
            else
                return lhs;
        }
    }

    /** Parse `name(k,j,i)` after the name has been consumed. */
    Expr
    parseRef(const std::string &name)
    {
        lex_.expect(Tok::LParen, "'('");
        int offsets[3] = {0, 0, 0}; // z, y, x
        for (int d = 0; d < 3; ++d) {
            parseIndex(d, offsets[d]);
            if (d < 2)
                lex_.expect(Tok::Comma, "','");
        }
        lex_.expect(Tok::RParen, "')'");
        Field f = fieldFor(name);
        // offsets are (z, y, x); Field::at takes (dx, dy, dz).
        Expr e = f.at(offsets[2], offsets[1], offsets[0]);
        if (assignedEarlier_.count(name))
            e.node()->next = true;
        return e;
    }

    Field
    fieldFor(const std::string &name)
    {
        auto it = fields_.find(name);
        if (it != fields_.end())
            return it->second;
        Field f = program_.addField(name);
        fields_.emplace(name, f);
        return f;
    }

    void
    markAssigned(const std::string &name)
    {
        assignedEarlier_.insert(name);
    }

  private:
    Expr
    parseTerm()
    {
        Expr lhs = parseFactor();
        while (true) {
            if (lex_.accept(Tok::Star))
                lhs = lhs * parseFactor();
            else if (lex_.accept(Tok::Slash))
                lhs = lhs / parseFactor();
            else
                return lhs;
        }
    }

    Expr
    parseFactor()
    {
        if (lex_.accept(Tok::Minus))
            return constant(-1.0) * parseFactor();
        if (lex_.peek().kind == Tok::Number) {
            Token t = lex_.next();
            return constant(t.number);
        }
        if (lex_.accept(Tok::LParen)) {
            Expr e = parseExpr();
            lex_.expect(Tok::RParen, "')'");
            return e;
        }
        Token ident = lex_.expect(Tok::Ident, "identifier");
        return parseRef(ident.text);
    }

    /** Index expression: var | var+int | var-int | int. */
    void
    parseIndex(int dim, int &offset)
    {
        Token t = lex_.next();
        if (t.kind == Tok::Number) {
            errorAt(t, "absolute indices are not supported; use loop "
                       "variables");
        }
        if (t.kind != Tok::Ident || t.text != loopVars_[dim])
            errorAt(t, "index " + std::to_string(dim) +
                           " must use loop variable '" + loopVars_[dim] +
                           "', got '" + t.text + "'");
        offset = 0;
        if (lex_.peek().kind == Tok::Plus ||
            lex_.peek().kind == Tok::Minus) {
            bool negative = lex_.next().kind == Tok::Minus;
            Token n = lex_.expect(Tok::Number, "integer offset");
            offset = static_cast<int>(n.intValue) * (negative ? -1 : 1);
        }
    }

    Lexer &lex_;
    Program &program_;
    std::vector<std::string> loopVars_;
    std::map<std::string, Field> fields_;
    std::set<std::string> assignedEarlier_;
};

Program
parseImpl(const std::string &source, const FortranKernelConfig &config)
{
    WSC_ASSERT(config.nx > 0 && config.ny > 0 && config.nz > 0,
               "fortran frontend requires grid extents");
    Lexer lex(source);

    // Collect the DO nest headers.
    std::vector<std::string> doVars;
    std::vector<std::pair<int64_t, int64_t>> doBounds;
    Token firstTok = lex.peek();
    while (lex.peek().kind == Tok::Ident && lex.peek().text == "do") {
        lex.next();
        Token var = lex.expect(Tok::Ident, "loop variable");
        lex.expect(Tok::Equals, "'='");
        int64_t lb = 0;
        int64_t ub = 0;
        if (lex.peek().kind == Tok::Number)
            lb = lex.next().intValue;
        lex.expect(Tok::Comma, "','");
        if (lex.peek().kind == Tok::Number) {
            ub = lex.next().intValue;
        } else {
            // Symbolic bound (e.g. nx-1): skip identifier +/- number.
            lex.next();
            if (lex.accept(Tok::Minus) || lex.accept(Tok::Plus))
                lex.expect(Tok::Number, "integer");
        }
        doVars.push_back(var.text);
        doBounds.emplace_back(lb, ub);
    }
    if (doVars.size() != 3 && doVars.size() != 4)
        errorAt(firstTok,
                "expected a 3-deep spatial loop nest (optionally inside "
                "a timestep loop), found " +
                    std::to_string(doVars.size()) + " do header(s)");

    bool hasTimeLoop = doVars.size() == 4;
    int64_t timesteps = config.timesteps;
    if (hasTimeLoop && doBounds[0].second >= doBounds[0].first)
        timesteps = doBounds[0].second - doBounds[0].first + 1;

    // Spatial loop order (outer to inner) is x, y, z; Fortran refs index
    // them innermost-first: (z, y, x).
    size_t base = hasTimeLoop ? 1 : 0;
    std::vector<std::string> loopVars = {doVars[base + 2],
                                         doVars[base + 1],
                                         doVars[base + 0]};

    Program program(Grid{config.nx, config.ny, config.nz});
    program.setTimesteps(timesteps);
    Parser parser(lex, program, loopVars);

    // Assignments until the first enddo.
    while (!(lex.peek().kind == Tok::Ident &&
             lex.peek().text == "enddo") &&
           lex.peek().kind != Tok::End) {
        Token target = lex.expect(Tok::Ident, "assignment target");
        Expr targetRef = parser.parseRef(target.text);
        const auto &node = targetRef.node();
        if (node->dx != 0 || node->dy != 0 || node->dz != 0)
            errorAt(target,
                    "assignment target must be the centre point");
        lex.expect(Tok::Equals, "'='");
        Expr rhs = parser.parseExpr();
        program.setUpdate(parser.fieldFor(target.text), rhs);
        parser.markAssigned(target.text);
    }
    for (size_t i = 0; i < doVars.size(); ++i) {
        Token end = lex.expect(Tok::Ident, "enddo");
        if (end.text != "enddo")
            errorAt(end, "expected enddo, got '" + end.text + "'");
    }
    return program;
}

} // namespace

FortranParseResult
parseFortranStencilChecked(const std::string &source,
                           const FortranKernelConfig &config)
{
    FortranParseResult result;
    try {
        result.program = parseImpl(source, config);
    } catch (ir::DiagnosedError &e) {
        result.diagnostic =
            e.hasDiagnostic()
                ? e.takeDiagnostic()
                : ir::Diagnostic(ir::Severity::Error, e.what());
    }
    return result;
}

Program
parseFortranStencil(const std::string &source,
                    const FortranKernelConfig &config)
{
    FortranParseResult result = parseFortranStencilChecked(source, config);
    if (!result)
        throw FrontendError("fortran frontend: " + result.diagnostic.str());
    return std::move(*result.program);
}

} // namespace wsc::fe
