#include "codegen/loc_counter.h"

#include <sstream>

namespace wsc::codegen {

int64_t
countLoc(const std::string &source)
{
    std::istringstream is(source);
    std::string line;
    int64_t count = 0;
    while (std::getline(is, line)) {
        size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        if (line.compare(first, 2, "//") == 0)
            continue;
        count++;
    }
    return count;
}

} // namespace wsc::codegen
