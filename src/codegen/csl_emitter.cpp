#include "codegen/csl_emitter.h"

#include <map>
#include <sstream>

#include "dialects/arith.h"
#include "dialects/csl.h"
#include "dialects/scf.h"
#include "support/error.h"

namespace wsc::codegen {

namespace {

namespace csl = dialects::csl;
namespace ar = dialects::arith;
namespace scf = dialects::scf;

/** Emits the body of one function/task as CSL statements. */
class BodyEmitter
{
  public:
    BodyEmitter(std::ostream &os,
                const std::map<std::string, int64_t> &taskIds)
        : os_(os), taskIds_(taskIds)
    {
    }

    void
    emitBlock(ir::Block *block, int indent)
    {
        for (ir::Operation *op : block->opsVector())
            emitOp(op, indent);
    }

    /** Pre-bind a value (e.g. a task parameter) to a fixed name. */
    void
    bindName(ir::Value v, const std::string &name)
    {
        names_[v.impl()] = name;
    }

  private:
    std::string
    nameOf(ir::Value v)
    {
        auto it = names_.find(v.impl());
        if (it != names_.end())
            return it->second;
        std::string name = "v" + std::to_string(next_++);
        names_.emplace(v.impl(), name);
        return name;
    }

    /** Argument rendering for DSD builtins (value name or literal). */
    std::string
    operandText(ir::Value v)
    {
        return nameOf(v);
    }

    void
    line(int indent, const std::string &text)
    {
        os_ << std::string(static_cast<size_t>(indent) * 2, ' ') << text
            << "\n";
    }

    void
    emitOp(ir::Operation *op, int indent)
    {
        ir::OpId n = op->opId();
        std::ostringstream s;
        if (n == ar::kConstant) {
            ir::Attribute a = op->attr("value");
            ir::Type t = op->result().type();
            std::string typeName = ir::isFloat(t)
                                       ? "f32"
                                       : (ir::isIndex(t) ? "i16" : "i32");
            s << "const " << nameOf(op->result()) << ": " << typeName
              << " = ";
            if (ir::isFloatAttr(a))
                s << ir::floatAttrValue(a);
            else
                s << ir::intAttrValue(a);
            s << ";";
            line(indent, s.str());
            return;
        }
        if (n == ar::kAddI || n == ar::kAddF || n == ar::kSubI ||
            n == ar::kSubF || n == ar::kMulI || n == ar::kMulF ||
            n == ar::kDivF) {
            const char *sym = (n == ar::kAddI || n == ar::kAddF) ? "+"
                              : (n == ar::kSubI || n == ar::kSubF)
                                  ? "-"
                                  : (n == ar::kDivF) ? "/" : "*";
            s << "const " << nameOf(op->result()) << " = "
              << nameOf(op->operand(0)) << " " << sym << " "
              << nameOf(op->operand(1)) << ";";
            line(indent, s.str());
            return;
        }
        if (n == ar::kCmpI) {
            static const std::map<std::string, std::string> preds = {
                {"lt", "<"}, {"le", "<="}, {"gt", ">"},
                {"ge", ">="}, {"eq", "=="}, {"ne", "!="}};
            s << "const " << nameOf(op->result()) << " = "
              << nameOf(op->operand(0)) << " "
              << preds.at(op->strAttr("predicate")) << " "
              << nameOf(op->operand(1)) << ";";
            line(indent, s.str());
            return;
        }
        if (n == scf::kIf) {
            line(indent, "if (" + nameOf(op->operand(0)) + ") {");
            emitBlock(scf::ifThenBlock(op), indent + 1);
            if (!op->region(1).empty() &&
                scf::ifElseBlock(op)->size() > 1) {
                line(indent, "} else {");
                emitBlock(scf::ifElseBlock(op), indent + 1);
            }
            line(indent, "}");
            return;
        }
        if (n == scf::kYield)
            return;
        if (n == csl::kReturn) {
            line(indent, "return;");
            return;
        }
        if (n == csl::kLoadVar) {
            ir::Type t = op->result().type();
            if (csl::isPtrType(t) || ir::isMemRef(t)) {
                s << "const " << nameOf(op->result()) << " = "
                  << op->strAttr("var") << ";";
            } else {
                s << "const " << nameOf(op->result()) << " = "
                  << op->strAttr("var") << ";";
            }
            line(indent, s.str());
            return;
        }
        if (n == csl::kStoreVar) {
            s << op->strAttr("var") << " = " << nameOf(op->operand(0))
              << ";";
            line(indent, s.str());
            return;
        }
        if (n == csl::kAddressOf) {
            s << "const " << nameOf(op->result()) << " = &"
              << op->strAttr("var") << ";";
            line(indent, s.str());
            return;
        }
        if (n == csl::kGetMemDsd) {
            int64_t len = op->intAttr("length");
            int64_t off = op->intAttr("offset");
            int64_t stride = op->intAttr("stride");
            std::string base = op->strAttr("var");
            if (op->hasAttr("via_ptr"))
                base += ".*";
            s << "var " << nameOf(op->result())
              << " = @get_dsd(mem1d_dsd, .{ .tensor_access = |i|{" << len
              << "} -> " << base << "[";
            if (op->hasAttr("wrap"))
                s << "(i % " << op->intAttr("wrap") << ")";
            else
                s << "i";
            if (stride != 1)
                s << " * " << stride;
            if (off != 0)
                s << " + " << off;
            s << "] });";
            line(indent, s.str());
            return;
        }
        if (n == csl::kIncrementDsdOffset) {
            s << "var " << nameOf(op->result())
              << " = @increment_dsd_offset(" << nameOf(op->operand(0))
              << ", " << nameOf(op->operand(1)) << ", f32);";
            line(indent, s.str());
            return;
        }
        if (n == csl::kSetDsdLength) {
            s << "var " << nameOf(op->result()) << " = @set_dsd_length("
              << nameOf(op->operand(0)) << ", @as(u16, "
              << nameOf(op->operand(1)) << "));";
            line(indent, s.str());
            return;
        }
        if (n == csl::kFadds || n == csl::kFsubs || n == csl::kFmuls ||
            n == csl::kFmovs || n == csl::kFmacs) {
            std::string builtin = "@" + n.str().substr(4); // strip "csl."
            s << builtin << "(";
            for (unsigned i = 0; i < op->numOperands(); ++i)
                s << (i ? ", " : "") << operandText(op->operand(i));
            s << ");";
            line(indent, s.str());
            return;
        }
        if (n == csl::kCall) {
            line(indent, op->strAttr("callee") + "();");
            return;
        }
        if (n == csl::kActivate) {
            const std::string &task = op->strAttr("task");
            auto it = taskIds_.find(task);
            int64_t id = it == taskIds_.end() ? 0 : it->second;
            line(indent, "@activate(@get_local_task_id(" +
                             std::to_string(id) + ")); // " + task);
            return;
        }
        if (n == csl::kCommsExchange) {
            csl::CommsExchangeSpec spec = csl::commsExchangeSpec(op);
            s << "comms.communicate(" << nameOf(op->operand(0)) << ", "
              << spec.numChunks << ", &" << spec.recvCallback << ", &"
              << spec.doneCallback << ");";
            line(indent, s.str());
            return;
        }
        if (n == csl::kUnblockCmdStream) {
            line(indent, "sys_mod.unblock_cmd_stream();");
            return;
        }
        if (n == csl::kImportModule || n == csl::kMemberCall ||
            n == csl::kExport || n == csl::kParam)
            return; // printed at module level
        panic("csl emitter: unsupported op in body: " + n.str());
    }

    std::ostream &os_;
    const std::map<std::string, int64_t> &taskIds_;
    std::map<ir::ValueImpl *, std::string> names_;
    int next_ = 0;
};

std::string
memrefShapeText(ir::Type t)
{
    std::ostringstream s;
    const std::vector<int64_t> &shape = ir::shapeOf(t);
    s << "[";
    for (size_t i = 0; i < shape.size(); ++i)
        s << (i ? ", " : "") << shape[i];
    s << "]f32";
    return s.str();
}

std::string
emitProgram(ir::Operation *program)
{
    std::ostringstream os;
    os << "// pe.csl — generated by the wsestencil MLIR lowering "
          "pipeline\n";
    os << "// (paper: An MLIR Lowering Pipeline for Stencils at "
          "Wafer-Scale)\n\n";

    // Task id table for @activate / @bind_local_task.
    std::map<std::string, int64_t> taskIds;
    for (ir::Operation *op : csl::moduleBody(program)->opsVector())
        if (op->opId() == csl::kTask)
            taskIds[op->strAttr("sym_name")] = op->intAttr("id");

    for (ir::Operation *op : csl::moduleBody(program)->opsVector()) {
        ir::OpId n = op->opId();
        if (n == csl::kParam) {
            os << "param " << op->strAttr("name") << ": i16;\n";
            continue;
        }
        if (n == csl::kImportModule) {
            const std::string &module = op->strAttr("module");
            std::string sym = module == "<memcpy/memcpy>"
                                  ? "sys_mod"
                                  : (module == "stencil_comms.csl"
                                         ? "comms"
                                         : "mod");
            os << "const " << sym << " = @import_module(\"" << module
               << "\");\n";
            continue;
        }
        if (n == csl::kVariable) {
            ir::Type t = ir::typeAttrValue(op->attr("type"));
            const std::string &name = op->strAttr("sym_name");
            if (ir::isMemRef(t)) {
                os << "var " << name << " = @zeros("
                   << memrefShapeText(t) << ");";
                if (op->hasAttr("comms_owned"))
                    os << " // landing buffer managed by comms";
                os << "\n";
            } else if (csl::isPtrType(t)) {
                os << "var " << name << ": [*]f32 = &"
                   << ir::stringAttrValue(op->attr("init")) << ";\n";
            } else {
                int64_t init = 0;
                if (ir::Attribute a = op->attr("init"))
                    init = ir::intAttrValue(a);
                os << "var " << name << ": i32 = " << init << ";\n";
            }
            continue;
        }
        if (n == csl::kFunc) {
            os << "\nfn " << op->strAttr("sym_name") << "() void {\n";
            BodyEmitter body(os, taskIds);
            body.emitBlock(csl::calleeBody(op), 1);
            os << "}\n";
            continue;
        }
        if (n == csl::kTask) {
            ir::Block *body = csl::calleeBody(op);
            os << "\ntask " << op->strAttr("sym_name") << "(";
            if (body->numArguments() == 1)
                os << "offset: i16";
            os << ") void {\n";
            BodyEmitter emitter(os, taskIds);
            if (body->numArguments() == 1)
                emitter.bindName(body->argument(0), "offset");
            emitter.emitBlock(body, 1);
            os << "}\n";
            continue;
        }
        if (n == csl::kExport)
            continue; // handled below
    }

    // Comptime epilogue: task binding and symbol exports.
    os << "\ncomptime {\n";
    for (const auto &[name, id] : taskIds)
        os << "  @bind_local_task(" << name << ", @get_local_task_id("
           << id << "));\n";
    for (ir::Operation *op : csl::moduleBody(program)->opsVector()) {
        if (op->opId() != csl::kExport)
            continue;
        const std::string &kind = op->strAttr("kind");
        os << "  @export_symbol(" << op->strAttr("name")
           << (kind == "fn" ? ", fn()void" : "") << ");\n";
    }
    os << "}\n";
    return os.str();
}

std::string
emitLayout(ir::Operation *layout)
{
    std::ostringstream os;
    os << "// layout.csl — generated layout metaprogram\n";
    os << "// Executed at compile time by the CSL staged compiler to\n";
    os << "// place and specialize the PE programs.\n\n";
    int64_t width = 1;
    int64_t height = 1;
    std::string file = "pe.csl";
    ir::Attribute params;
    for (ir::Operation *op : csl::moduleBody(layout)->opsVector()) {
        if (op->opId() == csl::kSetRectangle) {
            width = op->intAttr("width");
            height = op->intAttr("height");
        } else if (op->opId() == csl::kSetTileCode) {
            file = op->strAttr("file");
            params = op->attr("params");
        }
    }
    os << "param memcpy_params: comptime_struct;\n";
    os << "const memcpy = @import_module(\"<memcpy/get_params>\", .{ "
          ".width = "
       << width << ", .height = " << height << " });\n\n";
    os << "layout {\n";
    os << "  @set_rectangle(" << width << ", " << height << ");\n";
    os << "  var x: i16 = 0;\n";
    os << "  while (x < " << width << ") : (x += 1) {\n";
    os << "    var y: i16 = 0;\n";
    os << "    while (y < " << height << ") : (y += 1) {\n";
    os << "      @set_tile_code(x, y, \"" << file << "\", .{";
    if (params && ir::isDictAttr(params)) {
        const ir::AttrStorage &s = *params.impl();
        for (size_t i = 0; i < s.keys.size(); ++i) {
            os << (i ? ", " : " ") << "." << s.keys[i] << " = "
               << ir::Attribute(s.elems[i]).str();
        }
    }
    os << " });\n";
    os << "    }\n";
    os << "  }\n";
    os << "  @export_name(\"f_main\", fn()void);\n";
    os << "}\n";
    return os.str();
}

} // namespace

EmittedCsl
emitCsl(ir::Operation *root)
{
    EmittedCsl out;
    root->walk([&](ir::Operation *op) {
        if (op->opId() != csl::kModule)
            return;
        if (op->strAttr("kind") == "program")
            out.programFile = emitProgram(op);
        else
            out.layoutFile = emitLayout(op);
    });
    WSC_ASSERT(!out.programFile.empty(), "no program module to emit");
    return out;
}

} // namespace wsc::codegen
