#include "codegen/csl_emitter.h"

#include <charconv>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "dialects/arith.h"
#include "dialects/csl.h"
#include "dialects/scf.h"
#include "support/error.h"

namespace wsc::codegen {

namespace {

namespace csl = dialects::csl;
namespace ar = dialects::arith;
namespace scf = dialects::scf;

/**
 * Append-only writer over one reserved string buffer: the whole file is
 * built by appends (no per-line ostringstream churn). Doubles print in
 * printf "%g" format, matching the default ostream formatting the
 * emitter used before.
 */
class CslWriter
{
  public:
    CslWriter() { out_.reserve(64 * 1024); }

    std::string take() { return std::move(out_); }

    CslWriter &
    operator<<(const char *s)
    {
        out_ += s;
        return *this;
    }
    CslWriter &
    operator<<(const std::string &s)
    {
        out_ += s;
        return *this;
    }
    CslWriter &
    operator<<(char c)
    {
        out_ += c;
        return *this;
    }
    CslWriter &
    operator<<(int64_t v)
    {
        char buf[24];
        auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
        out_.append(buf, end);
        return *this;
    }
    CslWriter &
    operator<<(int v)
    {
        return *this << static_cast<int64_t>(v);
    }
    CslWriter &
    operator<<(unsigned v)
    {
        return *this << static_cast<int64_t>(v);
    }
    CslWriter &
    operator<<(size_t v)
    {
        return *this << static_cast<int64_t>(v);
    }
    CslWriter &
    operator<<(double v)
    {
        char buf[32];
        int n = std::snprintf(buf, sizeof(buf), "%g", v);
        out_.append(buf, static_cast<size_t>(n));
        return *this;
    }

    /** Start a statement line at `n` indentation levels (2 spaces). */
    void indent(int n) { out_.append(static_cast<size_t>(n) * 2, ' '); }
    /** End the current line. */
    void nl() { out_ += '\n'; }

  private:
    std::string out_;
};

/** Emits the body of one function/task as CSL statements. */
class BodyEmitter
{
  public:
    BodyEmitter(CslWriter &w, const std::map<std::string, int64_t> &taskIds)
        : w_(w), taskIds_(taskIds)
    {
    }

    void
    emitBlock(ir::Block *block, int indent)
    {
        for (ir::Operation *op : block->opsVector())
            emitOp(op, indent);
    }

    /** Pre-bind a value (e.g. a task parameter) to a fixed name. */
    void
    bindName(ir::Value v, const std::string &name)
    {
        names_[v.impl()] = name;
    }

  private:
    const std::string &
    nameOf(ir::Value v)
    {
        auto it = names_.find(v.impl());
        if (it != names_.end())
            return it->second;
        return names_
            .emplace(v.impl(), "v" + std::to_string(next_++))
            .first->second;
    }

    void
    emitOp(ir::Operation *op, int indent)
    {
        ir::OpId n = op->opId();
        if (n == ar::kConstant) {
            ir::Attribute a = op->attr(ir::attrs::kValue);
            ir::Type t = op->result().type();
            const char *typeName = ir::isFloat(t)
                                       ? "f32"
                                       : (ir::isIndex(t) ? "i16" : "i32");
            w_.indent(indent);
            w_ << "const " << nameOf(op->result()) << ": " << typeName
               << " = ";
            if (ir::isFloatAttr(a))
                w_ << ir::floatAttrValue(a);
            else
                w_ << ir::intAttrValue(a);
            w_ << ";";
            w_.nl();
            return;
        }
        if (n == ar::kAddI || n == ar::kAddF || n == ar::kSubI ||
            n == ar::kSubF || n == ar::kMulI || n == ar::kMulF ||
            n == ar::kDivF) {
            const char *sym = (n == ar::kAddI || n == ar::kAddF) ? "+"
                              : (n == ar::kSubI || n == ar::kSubF)
                                  ? "-"
                                  : (n == ar::kDivF) ? "/" : "*";
            w_.indent(indent);
            w_ << "const " << nameOf(op->result()) << " = "
               << nameOf(op->operand(0)) << " " << sym << " "
               << nameOf(op->operand(1)) << ";";
            w_.nl();
            return;
        }
        if (n == ar::kCmpI) {
            static const std::map<std::string, std::string> preds = {
                {"lt", "<"}, {"le", "<="}, {"gt", ">"},
                {"ge", ">="}, {"eq", "=="}, {"ne", "!="}};
            w_.indent(indent);
            w_ << "const " << nameOf(op->result()) << " = "
               << nameOf(op->operand(0)) << " "
               << preds.at(op->strAttr(ir::attrs::kPredicate)) << " "
               << nameOf(op->operand(1)) << ";";
            w_.nl();
            return;
        }
        if (n == scf::kIf) {
            w_.indent(indent);
            w_ << "if (" << nameOf(op->operand(0)) << ") {";
            w_.nl();
            emitBlock(scf::ifThenBlock(op), indent + 1);
            if (!op->region(1).empty() &&
                scf::ifElseBlock(op)->size() > 1) {
                w_.indent(indent);
                w_ << "} else {";
                w_.nl();
                emitBlock(scf::ifElseBlock(op), indent + 1);
            }
            w_.indent(indent);
            w_ << "}";
            w_.nl();
            return;
        }
        if (n == scf::kYield)
            return;
        if (n == csl::kReturn) {
            w_.indent(indent);
            w_ << "return;";
            w_.nl();
            return;
        }
        if (n == csl::kLoadVar) {
            w_.indent(indent);
            w_ << "const " << nameOf(op->result()) << " = "
               << op->strAttr(ir::attrs::kVar) << ";";
            w_.nl();
            return;
        }
        if (n == csl::kStoreVar) {
            w_.indent(indent);
            w_ << op->strAttr(ir::attrs::kVar) << " = " << nameOf(op->operand(0))
               << ";";
            w_.nl();
            return;
        }
        if (n == csl::kAddressOf) {
            w_.indent(indent);
            w_ << "const " << nameOf(op->result()) << " = &"
               << op->strAttr(ir::attrs::kVar) << ";";
            w_.nl();
            return;
        }
        if (n == csl::kGetMemDsd) {
            int64_t len = op->intAttr(ir::attrs::kLength);
            int64_t off = op->intAttr(ir::attrs::kOffset);
            int64_t stride = op->intAttr(ir::attrs::kStride);
            w_.indent(indent);
            w_ << "var " << nameOf(op->result())
               << " = @get_dsd(mem1d_dsd, .{ .tensor_access = |i|{"
               << len << "} -> " << op->strAttr(ir::attrs::kVar);
            if (op->hasAttr(ir::attrs::kViaPtr))
                w_ << ".*";
            w_ << "[";
            if (op->hasAttr(ir::attrs::kWrap))
                w_ << "(i % " << op->intAttr(ir::attrs::kWrap) << ")";
            else
                w_ << "i";
            if (stride != 1)
                w_ << " * " << stride;
            if (off != 0)
                w_ << " + " << off;
            w_ << "] });";
            w_.nl();
            return;
        }
        if (n == csl::kIncrementDsdOffset) {
            w_.indent(indent);
            w_ << "var " << nameOf(op->result())
               << " = @increment_dsd_offset(" << nameOf(op->operand(0))
               << ", " << nameOf(op->operand(1)) << ", f32);";
            w_.nl();
            return;
        }
        if (n == csl::kSetDsdLength) {
            w_.indent(indent);
            w_ << "var " << nameOf(op->result()) << " = @set_dsd_length("
               << nameOf(op->operand(0)) << ", @as(u16, "
               << nameOf(op->operand(1)) << "));";
            w_.nl();
            return;
        }
        if (n == csl::kFadds || n == csl::kFsubs || n == csl::kFmuls ||
            n == csl::kFmovs || n == csl::kFmacs) {
            w_.indent(indent);
            w_ << "@" << n.str().substr(4) << "("; // strip "csl."
            for (unsigned i = 0; i < op->numOperands(); ++i) {
                if (i)
                    w_ << ", ";
                w_ << nameOf(op->operand(i));
            }
            w_ << ");";
            w_.nl();
            return;
        }
        if (n == csl::kCall) {
            w_.indent(indent);
            w_ << op->strAttr(ir::attrs::kCallee) << "();";
            w_.nl();
            return;
        }
        if (n == csl::kActivate) {
            const std::string &task = op->strAttr(ir::attrs::kTask);
            auto it = taskIds_.find(task);
            int64_t id = it == taskIds_.end() ? 0 : it->second;
            w_.indent(indent);
            w_ << "@activate(@get_local_task_id(" << id << ")); // "
               << task;
            w_.nl();
            return;
        }
        if (n == csl::kCommsExchange) {
            csl::CommsExchangeSpec spec = csl::commsExchangeSpec(op);
            w_.indent(indent);
            w_ << "comms.communicate(" << nameOf(op->operand(0)) << ", "
               << spec.numChunks << ", &" << spec.recvCallback << ", &"
               << spec.doneCallback << ");";
            w_.nl();
            return;
        }
        if (n == csl::kUnblockCmdStream) {
            w_.indent(indent);
            w_ << "sys_mod.unblock_cmd_stream();";
            w_.nl();
            return;
        }
        if (n == csl::kImportModule || n == csl::kMemberCall ||
            n == csl::kExport || n == csl::kParam)
            return; // printed at module level
        panic("csl emitter: unsupported op in body: " + n.str());
    }

    CslWriter &w_;
    const std::map<std::string, int64_t> &taskIds_;
    std::unordered_map<ir::ValueImpl *, std::string> names_;
    int next_ = 0;
};

void
appendMemrefShape(CslWriter &w, ir::Type t)
{
    const std::vector<int64_t> &shape = ir::shapeOf(t);
    w << "[";
    for (size_t i = 0; i < shape.size(); ++i) {
        if (i)
            w << ", ";
        w << shape[i];
    }
    w << "]f32";
}

std::string
emitProgram(ir::Operation *program)
{
    CslWriter w;
    w << "// pe.csl — generated by the wsestencil MLIR lowering "
         "pipeline\n";
    w << "// (paper: An MLIR Lowering Pipeline for Stencils at "
         "Wafer-Scale)\n\n";

    // Task id table for @activate / @bind_local_task.
    std::map<std::string, int64_t> taskIds;
    for (ir::Operation *op : csl::moduleBody(program)->opsVector())
        if (op->opId() == csl::kTask)
            taskIds[op->strAttr(ir::attrs::kSymName)] = op->intAttr(ir::attrs::kId);

    for (ir::Operation *op : csl::moduleBody(program)->opsVector()) {
        ir::OpId n = op->opId();
        if (n == csl::kParam) {
            w << "param " << op->strAttr(ir::attrs::kName) << ": i16;\n";
            continue;
        }
        if (n == csl::kImportModule) {
            const std::string &module = op->strAttr(ir::attrs::kModule);
            const char *sym = module == "<memcpy/memcpy>"
                                  ? "sys_mod"
                                  : (module == "stencil_comms.csl"
                                         ? "comms"
                                         : "mod");
            w << "const " << sym << " = @import_module(\"" << module
              << "\");\n";
            continue;
        }
        if (n == csl::kVariable) {
            ir::Type t = ir::typeAttrValue(op->attr(ir::attrs::kType));
            const std::string &name = op->strAttr(ir::attrs::kSymName);
            if (ir::isMemRef(t)) {
                w << "var " << name << " = @zeros(";
                appendMemrefShape(w, t);
                w << ");";
                if (op->hasAttr(ir::attrs::kCommsOwned))
                    w << " // landing buffer managed by comms";
                w << "\n";
            } else if (csl::isPtrType(t)) {
                w << "var " << name << ": [*]f32 = &"
                  << ir::stringAttrValue(op->attr(ir::attrs::kInit)) << ";\n";
            } else {
                int64_t init = 0;
                if (ir::Attribute a = op->attr(ir::attrs::kInit))
                    init = ir::intAttrValue(a);
                w << "var " << name << ": i32 = " << init << ";\n";
            }
            continue;
        }
        if (n == csl::kFunc) {
            w << "\nfn " << op->strAttr(ir::attrs::kSymName) << "() void {\n";
            BodyEmitter body(w, taskIds);
            body.emitBlock(csl::calleeBody(op), 1);
            w << "}\n";
            continue;
        }
        if (n == csl::kTask) {
            ir::Block *body = csl::calleeBody(op);
            w << "\ntask " << op->strAttr(ir::attrs::kSymName) << "(";
            if (body->numArguments() == 1)
                w << "offset: i16";
            w << ") void {\n";
            BodyEmitter emitter(w, taskIds);
            if (body->numArguments() == 1)
                emitter.bindName(body->argument(0), "offset");
            emitter.emitBlock(body, 1);
            w << "}\n";
            continue;
        }
        if (n == csl::kExport)
            continue; // handled below
    }

    // Comptime epilogue: task binding and symbol exports.
    w << "\ncomptime {\n";
    for (const auto &[name, id] : taskIds)
        w << "  @bind_local_task(" << name << ", @get_local_task_id("
          << id << "));\n";
    for (ir::Operation *op : csl::moduleBody(program)->opsVector()) {
        if (op->opId() != csl::kExport)
            continue;
        const std::string &kind = op->strAttr(ir::attrs::kKind);
        w << "  @export_symbol(" << op->strAttr(ir::attrs::kName)
          << (kind == "fn" ? ", fn()void" : "") << ");\n";
    }
    w << "}\n";
    return w.take();
}

std::string
emitLayout(ir::Operation *layout)
{
    CslWriter w;
    w << "// layout.csl — generated layout metaprogram\n";
    w << "// Executed at compile time by the CSL staged compiler to\n";
    w << "// place and specialize the PE programs.\n\n";
    int64_t width = 1;
    int64_t height = 1;
    std::string file = "pe.csl";
    ir::Attribute params;
    for (ir::Operation *op : csl::moduleBody(layout)->opsVector()) {
        if (op->opId() == csl::kSetRectangle) {
            width = op->intAttr(ir::attrs::kWidth);
            height = op->intAttr(ir::attrs::kHeight);
        } else if (op->opId() == csl::kSetTileCode) {
            file = op->strAttr(ir::attrs::kFile);
            params = op->attr(ir::attrs::kParams);
        }
    }
    w << "param memcpy_params: comptime_struct;\n";
    w << "const memcpy = @import_module(\"<memcpy/get_params>\", .{ "
         ".width = "
      << width << ", .height = " << height << " });\n\n";
    w << "layout {\n";
    w << "  @set_rectangle(" << width << ", " << height << ");\n";
    w << "  var x: i16 = 0;\n";
    w << "  while (x < " << width << ") : (x += 1) {\n";
    w << "    var y: i16 = 0;\n";
    w << "    while (y < " << height << ") : (y += 1) {\n";
    w << "      @set_tile_code(x, y, \"" << file << "\", .{";
    if (params && ir::isDictAttr(params)) {
        const ir::AttrStorage &s = *params.impl();
        for (size_t i = 0; i < s.keys.size(); ++i) {
            w << (i ? ", " : " ") << "." << s.keys[i] << " = "
              << ir::Attribute(s.elems[i]).str();
        }
    }
    w << " });\n";
    w << "    }\n";
    w << "  }\n";
    w << "  @export_name(\"f_main\", fn()void);\n";
    w << "}\n";
    return w.take();
}

} // namespace

EmittedCsl
emitCsl(ir::Operation *root)
{
    EmittedCsl out;
    root->walk([&](ir::Operation *op) {
        if (op->opId() != csl::kModule)
            return;
        if (op->strAttr(ir::attrs::kKind) == "program")
            out.programFile = emitProgram(op);
        else
            out.layoutFile = emitLayout(op);
    });
    WSC_ASSERT(!out.programFile.empty(), "no program module to emit");
    return out;
}

} // namespace wsc::codegen
