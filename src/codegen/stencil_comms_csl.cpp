#include "codegen/csl_emitter.h"

namespace wsc::codegen {

/**
 * The CSL source of the runtime communications library (paper §5.6):
 * chunked asynchronous halo exchanges for star-shaped stencils,
 * partitionable communication following Jacquelin et al. This is the
 * `stencil_comms.csl` module generated kernels import; its line count
 * contributes to the "CSL entire" column of Table 1.
 */
static const std::string kStencilCommsCsl = R"CSL(
// stencil_comms.csl — runtime communication library for star-shaped
// stencils of configurable radius and chunked column exchanges.
//
// Strategy (Jacquelin et al., SC'22): every PE broadcasts its (trimmed)
// z-column to the neighbours that need it in each cardinal direction,
// using forward-and-deliver multicast routes; receive completion is
// tracked per chunk across all directions and distances, and a single
// user callback is activated per completed chunk, with a final callback
// once the whole exchange has finished.

param pattern: i16;          // stencil radius (hops per direction)
param chunk_size: i16;       // elements per chunk per section
param num_chunks: i16;       // chunks per column
param z_size: i16;           // full column length
param trim_first: i16;       // leading elements not communicated
param trim_last: i16;        // trailing elements not communicated
param num_sections: i16;     // neighbours delivering to this PE
param is_interior: bool;     // whether this PE computes

param recv_callback: fn(i16)void;
param done_callback: fn()void;

const directions = @import_module("<directions>");
const fabric = @import_module("<fabric>");

// ---------------------------------------------------------------------
// Colors: one data color per direction of travel, plus one control color
// for switch advancement between chunks.
// ---------------------------------------------------------------------
const C_EAST:  color = @get_color(0);
const C_WEST:  color = @get_color(1);
const C_NORTH: color = @get_color(2);
const C_SOUTH: color = @get_color(3);
const C_CTRL:  color = @get_color(4);

const send_colors = [4]color{ C_EAST, C_WEST, C_NORTH, C_SOUTH };

// Input queues bound to the four data colors.
const iq_east  = @get_input_queue(2);
const iq_west  = @get_input_queue(3);
const iq_north = @get_input_queue(4);
const iq_south = @get_input_queue(5);
const oq_data  = @get_output_queue(1);

// ---------------------------------------------------------------------
// Landing buffer: one chunk per section, reused across chunks. The
// buffer is owned by this library; the generated kernel reads it inside
// its receive-chunk callback.
// ---------------------------------------------------------------------
var recv_buffer = @zeros([num_sections * chunk_size]f32);
var send_staging = @zeros([chunk_size]f32);

// Per-exchange state.
var arrivals = @zeros([num_chunks]i16);
var chunks_done: i16 = 0;
var sends_done: i16 = 0;
var exchange_active: bool = false;
var send_base: [*]f32 = &send_staging;

// Per-section promoted coefficients (optional; 1.0 disables).
var coeffs = @constants([16]f32, 1.0);

fn expected_arrivals() i16 {
    if (!is_interior) { return 0; }
    return num_sections;
}

// ---------------------------------------------------------------------
// Sending: one fabout DSD per direction; the column is injected chunk by
// chunk, with a control wavelet advancing the switch position between
// chunks so the forward-and-deliver multicast reaches each distance.
// ---------------------------------------------------------------------
const out_east = @get_dsd(fabout_dsd, .{
    .fabric_color = C_EAST, .extent = chunk_size,
    .output_queue = oq_data,
});
const out_west = @get_dsd(fabout_dsd, .{
    .fabric_color = C_WEST, .extent = chunk_size,
    .output_queue = oq_data,
});
const out_north = @get_dsd(fabout_dsd, .{
    .fabric_color = C_NORTH, .extent = chunk_size,
    .output_queue = oq_data,
});
const out_south = @get_dsd(fabout_dsd, .{
    .fabric_color = C_SOUTH, .extent = chunk_size,
    .output_queue = oq_data,
});

var chunk_index: i16 = 0;

fn send_chunk(dir: i16, chunk: i16) void {
    const begin = trim_first + chunk * chunk_size;
    var src = @get_dsd(mem1d_dsd, .{
        .tensor_access = |i|{chunk_size} -> send_base[i + begin]
    });
    switch (dir) {
        0 => @fmovs(out_east, src, .{ .async = true,
                                      .activate = send_done_task }),
        1 => @fmovs(out_west, src, .{ .async = true,
                                      .activate = send_done_task }),
        2 => @fmovs(out_north, src, .{ .async = true,
                                       .activate = send_done_task }),
        3 => @fmovs(out_south, src, .{ .async = true,
                                       .activate = send_done_task }),
        else => {},
    }
}

// Switch advancement: a control wavelet instructs routers along the path
// to move to their next position (required between chunks; on the WSE2
// the self-transmit position makes this costlier).
fn advance_switches(dir: i16) void {
    const ctrl = @get_dsd(fabout_dsd, .{
        .fabric_color = C_CTRL, .extent = 1, .output_queue = oq_data,
    });
    @mov32(ctrl, directions.switch_advance_payload(dir), .{ .async = true });
}

task send_done_task() void {
    sends_done += 1;
    if (sends_done == 4 * num_chunks) {
        try_finish();
    }
}

// ---------------------------------------------------------------------
// Receiving: a fabin DSD per direction streams wavelets into the landing
// buffer. With promoted coefficients the incoming data is multiplied
// while it lands (@fmacs from the input queue) at zero extra cost —
// interleaving communication and computation.
// ---------------------------------------------------------------------
var recv_section: i16 = 0;

fn land_section(dir: i16, dist: i16, chunk: i16) void {
    const section = directions.section_of(dir, dist);
    const base = section * chunk_size;
    var dst = @get_dsd(mem1d_dsd, .{
        .tensor_access = |i|{chunk_size} -> recv_buffer[i + base]
    });
    const in = fabric.input_dsd(dir, chunk_size);
    // coefficient application while landing (promoted):
    @fmacs(dst, dst, in, coeffs[section], .{ .async = true,
                                             .activate = landed_task });
}

task landed_task() void {
    const chunk = chunk_index;
    arrivals[chunk] += 1;
    if (arrivals[chunk] == expected_arrivals()) {
        chunks_done += 1;
        recv_callback(chunk * chunk_size);
        if (chunks_done == num_chunks) {
            try_finish();
        }
    }
}

fn try_finish() void {
    if (!exchange_active) { return; }
    if (chunks_done < num_chunks and is_interior) { return; }
    if (sends_done < 4 * num_chunks) { return; }
    exchange_active = false;
    done_callback();
}

// ---------------------------------------------------------------------
// Entry point: begin an asynchronous exchange of `buf`.
// ---------------------------------------------------------------------
fn communicate(buf: [*]f32, chunks: i16,
               recv_cb: fn(i16)void, done_cb: fn()void) void {
    exchange_active = true;
    chunks_done = 0;
    sends_done = 0;
    send_base = buf;
    var c: i16 = 0;
    while (c < chunks) : (c += 1) {
        arrivals[c] = 0;
        var d: i16 = 0;
        while (d < 4) : (d += 1) {
            advance_switches(d);
            send_chunk(d, c);
        }
    }
}

// ---------------------------------------------------------------------
// Route configuration, executed at comptime per PE from layout data:
// positions implement forward-and-deliver multicast out to `pattern`
// hops. On WSE2 hardware the injection position must also route the
// stream back up the sender's own ramp (self-transmit); the WSE3
// switching logic removes this requirement, which is the main source of
// its communication advantage.
// ---------------------------------------------------------------------
comptime {
    @set_local_color_config(C_EAST, .{ .routes = .{
        .rx = .{ RAMP, WEST }, .tx = .{ EAST, RAMP },
    }});
    @set_local_color_config(C_WEST, .{ .routes = .{
        .rx = .{ RAMP, EAST }, .tx = .{ WEST, RAMP },
    }});
    @set_local_color_config(C_NORTH, .{ .routes = .{
        .rx = .{ RAMP, SOUTH }, .tx = .{ NORTH, RAMP },
    }});
    @set_local_color_config(C_SOUTH, .{ .routes = .{
        .rx = .{ RAMP, NORTH }, .tx = .{ SOUTH, RAMP },
    }});
    @set_local_color_config(C_CTRL, .{ .routes = .{
        .rx = .{ RAMP }, .tx = .{ EAST, WEST, NORTH, SOUTH },
    }});
    @bind_local_task(send_done_task, @get_local_task_id(20));
    @bind_local_task(landed_task, @get_local_task_id(21));
}
)CSL";

const std::string &
stencilCommsLibrarySource()
{
    return kStencilCommsCsl;
}

} // namespace wsc::codegen
