/**
 * @file
 * Lines-of-code accounting for the Table 1 comparison: generated CSL
 * kernel only, entire CSL (kernel + layout + runtime library), and the
 * DSL source the scientist writes.
 */

#ifndef WSC_CODEGEN_LOC_COUNTER_H
#define WSC_CODEGEN_LOC_COUNTER_H

#include <cstdint>
#include <string>

namespace wsc::codegen {

/** Non-empty, non-comment-only source lines. */
int64_t countLoc(const std::string &source);

/** Table 1 row for one benchmark. */
struct LocRow
{
    std::string benchmark;
    int64_t cslKernelOnly = 0; ///< generated pe.csl
    int64_t cslEntire = 0;     ///< pe.csl + layout.csl + runtime library
    int64_t dsl = 0;           ///< the frontend source
};

} // namespace wsc::codegen

#endif // WSC_CODEGEN_LOC_COUNTER_H
