/**
 * @file
 * CSL code emitter: prints a lowered csl-ir module as CSL (Zig-like)
 * source text — the layout metaprogram file and the PE program file —
 * which is what the pipeline would hand to the Cerebras SDK compiler.
 */

#ifndef WSC_CODEGEN_CSL_EMITTER_H
#define WSC_CODEGEN_CSL_EMITTER_H

#include <string>

#include "ir/operation.h"

namespace wsc::codegen {

/** The two generated CSL source files. */
struct EmittedCsl
{
    std::string layoutFile;  ///< layout.csl (staged-compilation metaprogram)
    std::string programFile; ///< pe.csl (the per-PE program)
};

/**
 * Emit CSL source from the final lowered module (a builtin.module
 * containing the layout and program csl.modules).
 */
EmittedCsl emitCsl(ir::Operation *root);

/** The CSL source of the runtime communications library (§5.6). */
const std::string &stencilCommsLibrarySource();

} // namespace wsc::codegen

#endif // WSC_CODEGEN_CSL_EMITTER_H
