#include "ir/printer.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "ir/operation.h"
#include "support/error.h"

namespace wsc::ir {

namespace {

/** Assigns stable %N / %argN names while printing a tree of ops. */
class PrintState
{
  public:
    std::string
    nameOf(Value v)
    {
        auto it = names_.find(v.impl());
        if (it != names_.end())
            return it->second;
        std::string name = v.isBlockArgument()
                               ? "%arg" + std::to_string(nextArg_++)
                               : "%" + std::to_string(nextResult_++);
        names_.emplace(v.impl(), name);
        return name;
    }

    void print(Operation *op, std::ostream &os, unsigned indent);

  private:
    std::map<ValueImpl *, std::string> names_;
    unsigned nextResult_ = 0;
    unsigned nextArg_ = 0;
};

void
PrintState::print(Operation *op, std::ostream &os, unsigned indent)
{
    std::string pad(indent, ' ');
    os << pad;
    if (op->numResults() > 0) {
        for (unsigned i = 0; i < op->numResults(); ++i)
            os << (i ? ", " : "") << nameOf(op->result(i));
        os << " = ";
    }
    os << "\"" << op->name() << "\"(";
    for (unsigned i = 0; i < op->numOperands(); ++i)
        os << (i ? ", " : "") << nameOf(op->operand(i));
    os << ")";

    if (!op->attrs().empty()) {
        // Stored attributes are sorted by interned id; print them sorted
        // by spelling so the output is stable across interning orders.
        std::vector<std::pair<const std::string *, Attribute>> sorted;
        sorted.reserve(op->attrs().size());
        for (const StoredAttr &a : op->attrs())
            sorted.emplace_back(&op->attrKeyName(a.name), a.value);
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return *a.first < *b.first;
                  });
        os << " {";
        bool first = true;
        for (const auto &[key, value] : sorted) {
            os << (first ? "" : ", ") << *key << " = " << value.str();
            first = false;
        }
        os << "}";
    }

    if (op->numRegions() > 0) {
        os << " (";
        for (unsigned r = 0; r < op->numRegions(); ++r) {
            if (r)
                os << ", ";
            os << "{\n";
            for (Block *block : op->region(r).blocksVector()) {
                os << pad << "^bb";
                if (block->numArguments() > 0) {
                    os << "(";
                    for (unsigned i = 0; i < block->numArguments(); ++i) {
                        Value arg = block->argument(i);
                        os << (i ? ", " : "") << nameOf(arg) << ": "
                           << arg.type().str();
                    }
                    os << ")";
                }
                os << ":\n";
                for (Operation *inner : block->opsVector()) {
                    print(inner, os, indent + 2);
                    os << "\n";
                }
            }
            os << pad << "}";
        }
        os << ")";
    }

    os << " : (";
    for (unsigned i = 0; i < op->numOperands(); ++i)
        os << (i ? ", " : "") << op->operand(i).type().str();
    os << ") -> (";
    for (unsigned i = 0; i < op->numResults(); ++i)
        os << (i ? ", " : "") << op->result(i).type().str();
    os << ")";
}

} // namespace

void
printOp(Operation *op, std::ostream &os)
{
    PrintState state;
    state.print(op, os, 0);
    os << "\n";
}

std::string
printOp(Operation *op)
{
    std::ostringstream os;
    printOp(op, os);
    return os.str();
}

} // namespace wsc::ir
