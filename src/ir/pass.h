/**
 * @file
 * Pass and PassManager: staged pipelines over a module op, optionally
 * verifying the IR after every pass (the paper's pipeline relies on
 * incremental lowering with verified intermediate states).
 */

#ifndef WSC_IR_PASS_H
#define WSC_IR_PASS_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace wsc::ir {

class Context;
class Operation;

/** A transformation applied to a module op. */
class Pass
{
  public:
    explicit Pass(std::string name) : name_(std::move(name)) {}
    virtual ~Pass() = default;

    const std::string &name() const { return name_; }

    /** Run on the (module) op. Throws on unrecoverable errors. */
    virtual void run(Operation *module) = 0;

  private:
    std::string name_;
};

/** A pass defined by a plain function. */
class FunctionPass : public Pass
{
  public:
    FunctionPass(std::string name, std::function<void(Operation *)> fn)
        : Pass(std::move(name)), fn_(std::move(fn))
    {
    }

    void run(Operation *module) override { fn_(module); }

  private:
    std::function<void(Operation *)> fn_;
};

/** Runs a sequence of passes, verifying between stages. */
class PassManager
{
  public:
    explicit PassManager(bool verifyEach = true) : verifyEach_(verifyEach) {}

    void addPass(std::unique_ptr<Pass> pass);
    void addPass(const std::string &name,
                 std::function<void(Operation *)> fn);

    /** Run all passes in order on the module. */
    void run(Operation *module);

    size_t size() const { return passes_.size(); }
    const Pass &pass(size_t i) const { return *passes_[i]; }

    /** Install a callback invoked after each pass (e.g. for IR dumps). */
    void setAfterPassHook(
        std::function<void(const Pass &, Operation *)> hook);

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
    bool verifyEach_;
    std::function<void(const Pass &, Operation *)> afterPass_;
};

} // namespace wsc::ir

#endif // WSC_IR_PASS_H
