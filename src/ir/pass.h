/**
 * @file
 * Pass and PassManager: staged pipelines over a module op, optionally
 * verifying the IR after every pass (the paper's pipeline relies on
 * incremental lowering with verified intermediate states).
 *
 * Error recovery contract: a pass reports malformed input through the
 * context's DiagnosticEngine (emitError/emitFatal, ir/diagnostics.h) and
 * fails by returning ir::failure() or unwinding with DiagnosedError. The
 * PassManager never terminates the process for user errors — run()
 * returns a PipelineResult carrying every captured diagnostic and stops
 * at the first failing pass, leaving the (partially lowered) module
 * intact for post-mortem printing. The context remains fully usable for
 * subsequent compiles.
 */

#ifndef WSC_IR_PASS_H
#define WSC_IR_PASS_H

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "ir/diagnostics.h"

namespace wsc::ir {

class Context;
class Operation;

/** A transformation applied to a module op. */
class Pass
{
  public:
    explicit Pass(std::string name) : name_(std::move(name)) {}
    virtual ~Pass() = default;

    const std::string &name() const { return name_; }

    /**
     * Run on the (module) op. Reports problems through the context's
     * diagnostic engine and returns failure() (or throws DiagnosedError,
     * which the PassManager converts to failure).
     */
    virtual LogicalResult run(Operation *module) = 0;

  private:
    std::string name_;
};

/**
 * A pass defined by a plain function. Accepts both
 * `LogicalResult(Operation *)` callables and legacy `void(Operation *)`
 * ones (wrapped to return success; they fail by throwing).
 */
class FunctionPass : public Pass
{
  public:
    template <typename Fn>
    FunctionPass(std::string name, Fn fn) : Pass(std::move(name))
    {
        if constexpr (std::is_void_v<
                          std::invoke_result_t<Fn &, Operation *>>) {
            fn_ = [f = std::move(fn)](Operation *module) {
                f(module);
                return success();
            };
        } else {
            fn_ = std::move(fn);
        }
    }

    LogicalResult run(Operation *module) override { return fn_(module); }

  private:
    std::function<LogicalResult(Operation *)> fn_;
};

/**
 * Outcome of a PassManager/pipeline run: whether it succeeded, which
 * pass failed (if any), and every diagnostic captured during the run —
 * each stamped with the pass that was active when it was emitted.
 */
struct PipelineResult
{
    bool succeeded = true;
    /** Name of the pass that failed; empty on success. */
    std::string failedPass;
    /** Everything emitted during the run (errors, warnings, remarks). */
    std::vector<Diagnostic> diagnostics;

    explicit operator bool() const { return succeeded; }

    /** The first error diagnostic, or nullptr. */
    const Diagnostic *firstError() const;
    /** Render all diagnostics (multi-line, human-readable). */
    void render(std::ostream &os) const;
    std::string str() const;
};

/** Runs a sequence of passes, verifying between stages. */
class PassManager
{
  public:
    explicit PassManager(bool verifyEach = true) : verifyEach_(verifyEach) {}

    void addPass(std::unique_ptr<Pass> pass);
    template <typename Fn>
    void
    addPass(const std::string &name, Fn fn)
    {
        addPass(std::make_unique<FunctionPass>(name, std::move(fn)));
    }

    /**
     * Run all passes in order on the module, stopping at the first
     * failure. Diagnostics emitted through the module's context engine
     * during the run are captured into the result (the run installs its
     * own scoped handler; any handler installed before the run is
     * shadowed for the duration and restored afterwards).
     */
    PipelineResult run(Operation *module);

    size_t size() const { return passes_.size(); }
    const Pass &pass(size_t i) const { return *passes_[i]; }

    /** Install a callback invoked after each pass (e.g. for IR dumps). */
    void setAfterPassHook(
        std::function<void(const Pass &, Operation *)> hook);

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
    bool verifyEach_;
    std::function<void(const Pass &, Operation *)> afterPass_;
};

} // namespace wsc::ir

#endif // WSC_IR_PASS_H
