/**
 * @file
 * The SSA graph: Value, Operation, Block and Region.
 *
 * Ownership mirrors MLIR: a Region is owned by its parent Operation, a
 * Block by its parent Region, and an Operation by its parent Block. Use-def
 * chains are maintained through Operation's operand mutators, so all
 * operand changes must go through those.
 *
 * All IR nodes live in the per-context arena (see ir/arena.h and
 * docs/architecture.md). An Operation is a single arena block carrying its
 * result ValueImpls, its Regions and its initial operand storage as
 * trailing arrays; blocks chain their operations through intrusive
 * prev/next pointers (no side allocations per op). Erasing an op returns
 * its block to a per-size free list, so `Operation *` and `Value` handles
 * to erased IR may be recycled by later creations — never hold either
 * across a rewrite that can erase them.
 */

#ifndef WSC_IR_OPERATION_H
#define WSC_IR_OPERATION_H

#include <cstdint>
#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "ir/attributes.h"
#include "ir/context.h"
#include "ir/types.h"

namespace wsc::ir {

class Operation;
class Block;
class Region;

/**
 * Use list of one SSA value. Stencil IR values overwhelmingly have one
 * or two uses, so the first two entries are stored inline; longer lists
 * spill to an arena block of the owning context (recycled on growth,
 * abandoned to the arena at destruction — the arena reclaims it when the
 * context dies). Maintained only through Operation's operand mutators.
 */
class UseList
{
  public:
    UseList() = default;
    UseList(const UseList &) = delete;
    UseList &operator=(const UseList &) = delete;

    bool empty() const { return size_ == 0; }
    uint32_t size() const { return size_; }
    Operation *const *begin() const { return data(); }
    Operation *const *end() const { return data() + size_; }
    Operation *operator[](uint32_t i) const { return data()[i]; }

    /** Append a use; spills to `ctx`'s arena beyond two entries. */
    void push_back(Operation *op, Context &ctx);
    /** Remove the first occurrence of `op`; panics when absent. */
    void eraseOne(Operation *op);

  private:
    Operation *const *
    data() const
    {
        return spill_ ? spill_ : inline_;
    }
    Operation **
    data()
    {
        return spill_ ? spill_ : inline_;
    }

    Operation *inline_[2] = {nullptr, nullptr};
    /** Arena-allocated overflow storage (capacity cap_). */
    Operation **spill_ = nullptr;
    uint32_t size_ = 0;
    uint32_t cap_ = 2;
};

/** Storage behind a Value: either an op result or a block argument. */
struct ValueImpl
{
    Type type;
    /** Defining op for results; nullptr for block arguments. */
    Operation *definingOp = nullptr;
    /** Owning block for block arguments; nullptr for results. */
    Block *ownerBlock = nullptr;
    /** Result index or argument index. */
    unsigned index = 0;
    /** One entry per use; an op using the value twice appears twice. */
    UseList users;
};

/** Value-semantics handle to an SSA value. */
class Value
{
  public:
    Value() = default;
    explicit Value(ValueImpl *impl) : impl_(impl) {}

    explicit operator bool() const { return impl_ != nullptr; }
    bool operator==(const Value &other) const = default;

    Type type() const;
    /**
     * In-place type replacement, used by type-conversion passes (e.g.
     * tensorize-z, bufferization). The caller is responsible for
     * re-verifying the IR afterwards.
     */
    void setType(Type newType);
    /** The op defining this value, or nullptr for block arguments. */
    Operation *definingOp() const;
    /** Owning block for block arguments, else nullptr. */
    Block *ownerBlock() const;
    bool isBlockArgument() const;
    unsigned index() const;

    /** Unique users of the value. */
    std::vector<Operation *> users() const;
    bool hasUses() const;
    size_t numUses() const;

    /** Rewrite every use of this value to use `other` instead. */
    void replaceAllUsesWith(Value other);

    ValueImpl *impl() const { return impl_; }

  private:
    ValueImpl *impl_ = nullptr;
};

/**
 * Non-owning view of a contiguous operand list. The view is invalidated
 * by any operand mutation on the op it came from (appendOperand /
 * setOperands may move the storage, and the old block is recycled) —
 * re-fetch after mutating, or copy with vec() first.
 */
class ValueRange
{
  public:
    ValueRange() = default;
    ValueRange(const Value *data, size_t size) : data_(data), size_(size) {}

    const Value *begin() const { return data_; }
    const Value *end() const { return data_ + size_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    Value operator[](size_t i) const { return data_[i]; }

    /** Materialized copy, for callers that store or splice the list. */
    std::vector<Value> vec() const { return {data_, data_ + size_}; }

  private:
    const Value *data_ = nullptr;
    size_t size_ = 0;
};

/**
 * Intrusive, ordered list of the operations attached to a block. The
 * links live inside Operation itself, so attaching an op allocates
 * nothing. Iterators yield `Operation *` and remain stable across
 * insertions and erasures of *other* ops.
 */
class OpList
{
  public:
    class iterator
    {
      public:
        using iterator_category = std::bidirectional_iterator_tag;
        using value_type = Operation *;
        using difference_type = std::ptrdiff_t;

        iterator() = default;
        iterator(const OpList *list, Operation *cur) : list_(list), cur_(cur)
        {
        }

        Operation *operator*() const { return cur_; }
        inline iterator &operator++();
        inline iterator operator++(int);
        inline iterator &operator--();
        bool operator==(const iterator &) const = default;

      private:
        const OpList *list_ = nullptr;
        /** nullptr designates end(). */
        Operation *cur_ = nullptr;
    };
    using const_iterator = iterator;

    iterator begin() const { return {this, head_}; }
    iterator end() const { return {this, nullptr}; }
    bool empty() const { return head_ == nullptr; }
    size_t size() const { return size_; }
    inline Operation &front() const;
    inline Operation &back() const;

  private:
    friend class Block;

    Operation *head_ = nullptr;
    Operation *tail_ = nullptr;
    size_t size_ = 0;
};

/** Builder-facing attribute list (spelled keys); ops carry ~2-5
 *  attributes. Operation::create interns the keys on construction. */
using AttrList = std::vector<std::pair<std::string, Attribute>>;

/** One stored attribute: interned name id + value. */
struct StoredAttr
{
    AttrNameId name;
    Attribute value;
};

/**
 * On-operation attribute storage, sorted by dense name id so probes with
 * a resolved AttrNameId compare integers, not strings.
 *
 * Arena-backed small-vector: entries live in the owning context's arena
 * (capacity doubles from 2; blocks are recycled through the free lists),
 * replacing the former heap std::vector so op creation and cloning stay
 * malloc-free. Only Operation mutates the list; all other code reads
 * through the const pointer iterators.
 */
class StoredAttrList
{
  public:
    using value_type = StoredAttr;
    using const_iterator = const StoredAttr *;

    StoredAttrList() = default;
    StoredAttrList(const StoredAttrList &) = delete;
    StoredAttrList &operator=(const StoredAttrList &) = delete;

    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const StoredAttr &operator[](size_t i) const { return data_[i]; }

  private:
    friend class Operation;

    /// @name Mutation (Operation-internal; entries stay sorted)
    /// @{
    void insertAt(Context &ctx, size_t pos, StoredAttr entry);
    void eraseAt(size_t pos);
    void setValueAt(size_t pos, Attribute value)
    {
        data_[pos].value = value;
    }
    void reserve(Context &ctx, size_t cap);
    /** Return the storage to the context's free lists. */
    void destroy(Context &ctx);
    /// @}

    void grow(Context &ctx, size_t minCap);

    StoredAttr *data_ = nullptr;
    uint32_t size_ = 0;
    uint32_t cap_ = 0;
};

/**
 * A generic, dialect-agnostic operation. Typed op wrappers in the dialect
 * headers provide named accessors on top of this representation.
 *
 * Layout: one arena allocation of
 *   [Operation][ValueImpl x numResults][Region x numRegions][Value x N]
 * where the trailing Values are the initial operand capacity. Operand
 * lists that outgrow it move to a separate arena block; everything is
 * recycled through the context free lists on destruction.
 */
class Operation
{
  public:
    /**
     * Create a detached operation in `ctx`'s arena. The caller (usually
     * OpBuilder) is responsible for inserting it into a block or
     * destroying it.
     */
    static Operation *create(Context &ctx, OpId id,
                             const std::vector<Value> &operands,
                             const std::vector<Type> &resultTypes,
                             const AttrList &attrs, unsigned numRegions);
    /** Variant taking already-interned attributes (cloning); the stored
     *  ids must come from the same context. */
    static Operation *createInterned(Context &ctx, OpId id,
                                     const std::vector<Value> &operands,
                                     const std::vector<Type> &resultTypes,
                                     const StoredAttrList &attrs,
                                     unsigned numRegions);
    static Operation *create(Context &ctx, const std::string &name,
                             const std::vector<Value> &operands,
                             const std::vector<Type> &resultTypes,
                             const AttrList &attrs, unsigned numRegions)
    {
        return create(ctx, OpId::get(name), operands, resultTypes, attrs,
                      numRegions);
    }

    /**
     * Destroy a detached operation (and its nested regions), returning
     * its memory to the context's free lists for reuse.
     */
    static void destroy(Operation *op);

    Operation(const Operation &) = delete;
    Operation &operator=(const Operation &) = delete;

    /** Interned identity; compare against dialect k* ids. */
    OpId opId() const { return id_; }
    /** True when this op has the given interned identity. */
    bool is(OpId id) const { return id_ == id; }
    /** The op name as spelled; a view of the interned string. */
    const std::string &name() const { return id_.str(); }
    Context &context() const { return *ctx_; }

    /// @name Operands
    /// @{
    unsigned numOperands() const { return numOperands_; }
    Value operand(unsigned i) const;
    /** View of the operand list; invalidated by operand mutations. */
    ValueRange operands() const { return {operands_, numOperands_}; }
    void setOperand(unsigned i, Value v);
    void setOperands(const std::vector<Value> &values);
    void appendOperand(Value v);
    void eraseOperand(unsigned i);
    /** Drop all operand uses (used before bulk deletion). */
    void dropAllReferences();
    /// @}

    /// @name Results
    /// @{
    unsigned numResults() const { return numResults_; }
    Value result(unsigned i = 0) const;
    std::vector<Value> results() const;
    bool hasResultUses() const;
    /// @}

    /// @name Attributes
    /// Keys are interned per context; the AttrNameId overloads are the
    /// hot path (integer compares). The string overloads resolve the
    /// key through the context's name pool and delegate.
    /// @{
    Attribute attr(AttrNameId key) const;
    bool hasAttr(AttrNameId key) const { return bool(attr(key)); }
    void setAttr(AttrNameId key, Attribute value);
    void removeAttr(AttrNameId key);

    Attribute attr(const std::string &key) const;
    bool hasAttr(const std::string &key) const;
    void setAttr(const std::string &key, Attribute value);
    void removeAttr(const std::string &key);
    /** Attributes sorted by interned name id. */
    const StoredAttrList &attrs() const { return attrs_; }
    /** Spelling of a stored attribute's name (printing/diagnostics). */
    const std::string &attrKeyName(AttrNameId key) const;

    /** Required int attribute; panics when missing or mistyped. */
    int64_t intAttr(const std::string &key) const;
    int64_t intAttr(AttrNameId key) const;
    /** Required string attribute. */
    const std::string &strAttr(const std::string &key) const;
    const std::string &strAttr(AttrNameId key) const;
    /// @}

    /// @name Regions
    /// @{
    unsigned numRegions() const { return numRegions_; }
    Region &region(unsigned i) const;
    /// @}

    /// @name Position in the IR
    /// @{
    Block *parentBlock() const { return parent_; }
    Operation *parentOp() const;
    /** Nearest enclosing op with the given identity (may be this op). */
    Operation *parentOf(OpId id) const;
    Operation *parentOfName(const std::string &name) const
    {
        return parentOf(OpId::get(name));
    }

    /** Unlink from the parent block and destroy. Results must be unused. */
    void erase();
    /** Unlink from the parent block without destroying. */
    void removeFromParent();
    /** Move this op immediately before `other` (possibly across blocks). */
    void moveBefore(Operation *other);
    /** Move this op to the end of `block`. */
    void moveToEnd(Block *block);
    /** Next op in the parent block, or nullptr. */
    Operation *nextOp() const;
    /** Previous op in the parent block, or nullptr. */
    Operation *prevOp() const;
    /// @}

    /**
     * Visit this op and all nested ops pre-order. The callback must not
     * mutate the structure being walked; collect first when mutating.
     */
    void walk(const std::function<void(Operation *)> &fn);

    /** True when registered as a terminator. */
    bool isTerminator() const;

    /** Render in generic MLIR syntax (delegates to the printer). */
    std::string str() const;

  private:
    friend class Block;
    friend class OpList;
    friend class OpList::iterator;

    Operation(Context &ctx, OpId id);
    ~Operation();

    /// @name Trailing-array accessors (see class comment for the layout)
    /// @{
    ValueImpl *
    resultsBegin() const
    {
        return reinterpret_cast<ValueImpl *>(
            const_cast<Operation *>(this) + 1);
    }
    Region *
    regionsBegin() const
    {
        return reinterpret_cast<Region *>(resultsBegin() + numResults_);
    }
    Value *
    inlineOperandsBegin() const
    {
        // Defined in operation.cpp (needs Region to be complete).
        return inlineOperandsBeginImpl();
    }
    Value *inlineOperandsBeginImpl() const;
    /// @}

    Context *ctx_;
    OpId id_;
    Block *parent_ = nullptr;
    /** Intrusive links of the parent block's OpList. */
    Operation *prevInBlock_ = nullptr;
    Operation *nextInBlock_ = nullptr;
    /** Operand storage: trailing until outgrown, then a separate block. */
    Value *operands_ = nullptr;
    uint32_t numOperands_ = 0;
    uint32_t operandCap_ = 0;
    uint32_t numResults_ = 0;
    uint32_t numRegions_ = 0;
    /** Size of the arena block backing this op (for recycling). */
    uint32_t allocSize_ = 0;
    /** operands_ points at a standalone arena block (must be freed). */
    uint8_t operandsOwned_ = 0;
    StoredAttrList attrs_;

    void growOperands(uint32_t minCap);
    void removeUse(Value v);
    void addUse(Value v);
    void notifyOperandChanged();
    void notifyUseRemoved(Value v);
};

inline OpList::iterator &
OpList::iterator::operator++()
{
    cur_ = cur_->nextInBlock_;
    return *this;
}

inline OpList::iterator
OpList::iterator::operator++(int)
{
    iterator old = *this;
    ++*this;
    return old;
}

inline OpList::iterator &
OpList::iterator::operator--()
{
    cur_ = cur_ ? cur_->prevInBlock_ : list_->tail_;
    return *this;
}

inline Operation &
OpList::front() const
{
    return *head_;
}

inline Operation &
OpList::back() const
{
    return *tail_;
}

/**
 * Arena-backed list of block-argument ValueImpl pointers (the
 * StoredAttrList idiom: capacity doubles from 2 inside the owning
 * context's arena, storage recycles through the free lists). Replaces
 * the former heap std::vector — the last per-op heap allocation on the
 * IR-construction path (Block::addArgument). Only Block mutates it.
 */
class ArgList
{
  public:
    using const_iterator = ValueImpl *const *;

    ArgList() = default;
    ArgList(const ArgList &) = delete;
    ArgList &operator=(const ArgList &) = delete;

    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    ValueImpl *operator[](size_t i) const { return data_[i]; }

  private:
    friend class Block;

    /// @name Mutation (Block-internal)
    /// @{
    void push_back(Context &ctx, ValueImpl *v);
    void eraseAt(size_t pos);
    /** Return the storage to the context's free lists. */
    void destroy(Context &ctx);
    /// @}

    void grow(Context &ctx);

    ValueImpl **data_ = nullptr;
    uint32_t size_ = 0;
    uint32_t cap_ = 0;
};

/** A straight-line sequence of operations with block arguments. */
class Block
{
  public:
    Block(const Block &) = delete;
    Block &operator=(const Block &) = delete;

    Region *parentRegion() const { return parent_; }
    Operation *parentOp() const;

    /// @name Arguments
    /// @{
    Value addArgument(Type type);
    Value argument(unsigned i) const;
    unsigned numArguments() const
    {
        return static_cast<unsigned>(args_.size());
    }
    std::vector<Value> arguments() const;
    void eraseArgument(unsigned i);
    /// @}

    /// @name Operations
    /// @{
    OpList &operations() { return ops_; }
    const OpList &operations() const { return ops_; }
    bool empty() const { return ops_.empty(); }
    size_t size() const { return ops_.size(); }
    Operation &front() const { return ops_.front(); }
    Operation &back() const { return ops_.back(); }
    /** The trailing terminator op; panics when the block is empty. */
    Operation *terminator() const;

    /** Append a detached op. */
    void push_back(Operation *op);
    /** Insert a detached op before `before` (must be in this block). */
    void insertBefore(Operation *before, Operation *op);
    /// @}

    /**
     * Ops in order as a raw-pointer snapshot. Only needed when the loop
     * mutates block structure beyond the op it is visiting; prefer
     * iterating operations() directly in read-only/hot paths.
     */
    std::vector<Operation *> opsVector() const;

  private:
    friend class Operation;
    friend class Region;

    /** Blocks are created through Region::addBlock (arena-allocated). */
    Block() = default;
    ~Block();

    /** Unlink `op` from ops_ without touching op->parent_. */
    void unlink(Operation *op);
    /** Link a detached `op` before `before` (nullptr appends). */
    void link(Operation *before, Operation *op);

    Region *parent_ = nullptr;
    // args_ must outlive ops_ during destruction (ops may use them): the
    // destructor destroys the ops explicitly before args_ is torn down.
    // Argument ValueImpls AND the pointer list itself live in the
    // context arena (placement-new in addArgument, recycled through the
    // free lists on erase/destroy) — no per-argument heap allocation.
    ArgList args_;
    OpList ops_;
};

/** A list of blocks owned by an operation (arena-allocated nodes). */
class Region
{
  public:
    explicit Region(Operation *parent) : parent_(parent) {}
    ~Region();
    Region(const Region &) = delete;
    Region &operator=(const Region &) = delete;

    Operation *parentOp() const { return parent_; }

    bool empty() const { return blocks_.empty(); }
    size_t size() const { return blocks_.size(); }
    Block &front() const { return *blocks_.front(); }
    Block &back() const { return *blocks_.back(); }
    std::vector<Block *> &blocks() { return blocks_; }
    const std::vector<Block *> &blocks() const { return blocks_; }

    /** Append a new empty block (allocated in the context arena). */
    Block *addBlock();
    /** Blocks in order as a raw-pointer snapshot. */
    std::vector<Block *> blocksVector() const { return blocks_; }

    /**
     * Move all blocks of `other` into this region (appended), leaving
     * `other` empty.
     */
    void takeBody(Region &other);

  private:
    Operation *parent_;
    std::vector<Block *> blocks_;
};

/**
 * RAII owner for a top-level (detached) operation, typically the
 * builtin.module produced by a frontend.
 */
class OwningOp
{
  public:
    OwningOp() = default;
    explicit OwningOp(Operation *op) : op_(op) {}
    OwningOp(OwningOp &&other) noexcept : op_(other.op_)
    {
        other.op_ = nullptr;
    }
    OwningOp &operator=(OwningOp &&other) noexcept;
    ~OwningOp();
    OwningOp(const OwningOp &) = delete;
    OwningOp &operator=(const OwningOp &) = delete;

    Operation *get() const { return op_; }
    Operation *operator->() const { return op_; }
    Operation &operator*() const { return *op_; }
    explicit operator bool() const { return op_ != nullptr; }
    Operation *release();

  private:
    Operation *op_ = nullptr;
};

/// @name Symbol-table helpers
/// @{
/** Find the op inside `root`'s first region with sym_name == name. */
Operation *lookupSymbol(Operation *root, const std::string &name);
/// @}

} // namespace wsc::ir

#endif // WSC_IR_OPERATION_H
