/**
 * @file
 * Uniqued, immutable IR types.
 *
 * Types follow the MLIR model: a Type is a value-semantics handle onto
 * storage uniqued inside the Context, so two structurally equal types
 * compare equal by pointer. Storage is generic (a kind name plus integer,
 * type and string parameter lists); each dialect provides typed helper
 * functions on top rather than bespoke storage classes.
 */

#ifndef WSC_IR_TYPES_H
#define WSC_IR_TYPES_H

#include <cstdint>
#include <string>
#include <vector>

namespace wsc::ir {

class Context;

/** Generic uniqued storage for a type. */
struct TypeStorage
{
    /** Kind discriminator, e.g. "f32", "tensor", "stencil.temp". */
    std::string kind;
    /** Integer parameters (shapes, bounds, bit widths). */
    std::vector<int64_t> ints;
    /** Nested type parameters (element types, function signatures). */
    std::vector<const TypeStorage *> types;
    /** String parameters (e.g. DSD kind). */
    std::vector<std::string> strs;
};

/** Value-semantics handle to uniqued type storage. */
class Type
{
  public:
    Type() = default;
    explicit Type(const TypeStorage *impl) : impl_(impl) {}

    explicit operator bool() const { return impl_ != nullptr; }
    bool operator==(const Type &other) const = default;

    const std::string &kind() const;
    const TypeStorage *impl() const { return impl_; }

    /** Render this type in MLIR-like syntax (e.g. "tensor<510xf32>"). */
    std::string str() const;

  private:
    const TypeStorage *impl_ = nullptr;
};

/// @name Builtin type constructors
/// @{
Type getF16Type(Context &ctx);
Type getF32Type(Context &ctx);
Type getF64Type(Context &ctx);
Type getIntegerType(Context &ctx, unsigned width);
Type getI1Type(Context &ctx);
Type getI16Type(Context &ctx);
Type getI32Type(Context &ctx);
Type getIndexType(Context &ctx);

/** Function type: (inputs...) -> (results...). */
Type getFunctionType(Context &ctx, const std::vector<Type> &inputs,
                     const std::vector<Type> &results);

/** Ranked tensor type. A dimension of kDynamic means `?`. */
Type getTensorType(Context &ctx, const std::vector<int64_t> &shape,
                   Type elementType);

/** Ranked memref type. */
Type getMemRefType(Context &ctx, const std::vector<int64_t> &shape,
                   Type elementType);
/// @}

/** Marker for a dynamic dimension in tensor/memref shapes. */
inline constexpr int64_t kDynamic = INT64_MIN;

/// @name Builtin type inspectors
/// @{
bool isFloat(Type t);
bool isInteger(Type t);
bool isIndex(Type t);
bool isFunction(Type t);
bool isTensor(Type t);
bool isMemRef(Type t);
/** True for tensor or memref. */
bool isShaped(Type t);

/** Bit width of a float or integer type. */
unsigned bitWidth(Type t);

/** Shape of a tensor/memref type. */
const std::vector<int64_t> &shapeOf(Type t);
/** Element type of a tensor/memref type. */
Type elementTypeOf(Type t);
/** Total element count of a static shaped type. */
int64_t numElementsOf(Type t);

/** Inputs of a function type. */
std::vector<Type> functionInputs(Type t);
/** Results of a function type. */
std::vector<Type> functionResults(Type t);
/// @}

/**
 * Generic constructor used by dialects to build their own uniqued types.
 * The (kind, ints, types, strs) tuple is the identity of the type.
 */
Type getType(Context &ctx, const std::string &kind,
             const std::vector<int64_t> &ints = {},
             const std::vector<Type> &types = {},
             const std::vector<std::string> &strs = {});

} // namespace wsc::ir

#endif // WSC_IR_TYPES_H
