#include "ir/pass.h"

#include <iostream>
#include <sstream>

#include "ir/context.h"
#include "ir/operation.h"
#include "ir/verifier.h"
#include "support/error.h"

namespace wsc::ir {

//===----------------------------------------------------------------------===
// PipelineResult
//===----------------------------------------------------------------------===

const Diagnostic *
PipelineResult::firstError() const
{
    for (const Diagnostic &d : diagnostics)
        if (d.severity == Severity::Error)
            return &d;
    return nullptr;
}

void
PipelineResult::render(std::ostream &os) const
{
    if (!succeeded && !failedPass.empty())
        os << "compilation failed in pass '" << failedPass << "':\n";
    for (const Diagnostic &d : diagnostics)
        d.render(os);
}

std::string
PipelineResult::str() const
{
    std::ostringstream os;
    render(os);
    std::string text = os.str();
    if (!text.empty() && text.back() == '\n')
        text.pop_back();
    return text;
}

//===----------------------------------------------------------------------===
// PassManager
//===----------------------------------------------------------------------===

void
PassManager::addPass(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
}

PipelineResult
PassManager::run(Operation *module)
{
    PipelineResult result;
    Context &ctx = module->context();
    std::string currentPass;
    size_t errors = 0;
    ScopedDiagnosticHandler capture(
        ctx, [&result, &currentPass, &errors](Diagnostic &&d) {
            if (d.pass.empty())
                d.pass = currentPass;
            if (d.severity == Severity::Error)
                ++errors;
            result.diagnostics.push_back(std::move(d));
        });

    for (const auto &pass : passes_) {
        currentPass = pass->name();
        size_t errorsBefore = errors;
        LogicalResult passResult = success();
        try {
            passResult = pass->run(module);
        } catch (const DiagnosedError &e) {
            // Deep-recursion unwinding: the diagnostic was reported
            // before the throw, unless the exception carries it.
            if (e.hasDiagnostic())
                ctx.diagnostics().report(Diagnostic(e.diagnostic()));
            passResult = failure();
        } catch (const FatalError &e) {
            // Legacy throwing error path (support/error.h): recover it
            // into a diagnostic instead of crossing the pipeline API.
            emitError(ctx) << e.what();
            passResult = failure();
        } catch (const PanicError &e) {
            // An internal invariant tripped — a library bug, but one
            // malformed input must not take down sibling jobs. Report
            // and fail the job; the module may be partially rewritten.
            emitError(ctx) << "internal error (invariant violation): "
                           << e.what();
            passResult = failure();
        }
        // A pass that emitted errors but still returned success is
        // treated as failed: errors are never droppable.
        if (passResult.failed() || errors > errorsBefore) {
            result.succeeded = false;
            result.failedPass = pass->name();
            return result;
        }
        if (verifyEach_ && failed(verify(module))) {
            emitError(ctx) << "IR invalid after pass '" << pass->name()
                           << "'";
            result.succeeded = false;
            result.failedPass = pass->name();
            return result;
        }
        if (afterPass_)
            afterPass_(*pass, module);
    }
    return result;
}

void
PassManager::setAfterPassHook(
    std::function<void(const Pass &, Operation *)> hook)
{
    afterPass_ = std::move(hook);
}

} // namespace wsc::ir
