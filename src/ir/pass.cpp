#include "ir/pass.h"

#include "ir/operation.h"
#include "ir/verifier.h"
#include "support/error.h"

namespace wsc::ir {

void
PassManager::addPass(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
}

void
PassManager::addPass(const std::string &name,
                     std::function<void(Operation *)> fn)
{
    passes_.push_back(std::make_unique<FunctionPass>(name, std::move(fn)));
}

void
PassManager::run(Operation *module)
{
    for (const auto &pass : passes_) {
        try {
            pass->run(module);
        } catch (const FatalError &e) {
            fatal("pass '" + pass->name() + "' failed: " + e.what());
        }
        if (verifyEach_) {
            std::vector<std::string> errors = verifyCollect(module);
            if (!errors.empty()) {
                std::string msg = "IR invalid after pass '" + pass->name() +
                                  "':";
                for (const std::string &e : errors)
                    msg += "\n  - " + e;
                fatal(msg);
            }
        }
        if (afterPass_)
            afterPass_(*pass, module);
    }
}

void
PassManager::setAfterPassHook(
    std::function<void(const Pass &, Operation *)> hook)
{
    afterPass_ = std::move(hook);
}

} // namespace wsc::ir
