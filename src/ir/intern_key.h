/**
 * @file
 * Shared helper for building the binary interning keys of the type and
 * attribute pools. Fields are appended as fixed-width raw bytes (exact
 * bit patterns), with '\x01' framing between variable-length parts.
 */

#ifndef WSC_IR_INTERN_KEY_H
#define WSC_IR_INTERN_KEY_H

#include <string>

namespace wsc::ir {

/** Appends a fixed-width binary field to an interning key. */
template <typename T>
void
appendRaw(std::string &key, const T &v)
{
    key.append(reinterpret_cast<const char *>(&v), sizeof(T));
}

} // namespace wsc::ir

#endif // WSC_IR_INTERN_KEY_H
