/**
 * @file
 * Chunked bump allocator with per-size-class free lists — the backing
 * store for all IR objects owned by an ir::Context.
 *
 * Design (see docs/architecture.md for the ownership rules):
 *
 *  - Memory is carved from pages of `kPageSize` bytes with a bump
 *    pointer. Pages are only released when the arena is destroyed, so
 *    every pointer handed out stays valid for the context's lifetime.
 *    `reset()` rewinds the bump pointer onto the pages already owned
 *    (nothing is returned to the OS), which is what lets a recycled
 *    ir::Context serve its next compile without re-faulting pages.
 *  - `deallocate` does not return memory to the page; it pushes the
 *    block onto a free list for its size class, and the next `allocate`
 *    of the same class pops it. This is what keeps worklist-driven
 *    rewrites (erase op / create op in a loop) from growing the arena
 *    unboundedly.
 *  - All blocks are rounded up to `kAlignment` (16) bytes, which is
 *    also the alignment of every returned pointer. Free lists exist for
 *    classes up to `kMaxRecycledSize`; larger blocks (big dense attrs,
 *    ops with hundreds of operands) are bump-allocated — possibly on a
 *    dedicated page — and are reclaimed only at arena destruction.
 *
 * The arena never runs destructors: callers either place trivially /
 * never-destroyed objects here (interned type/attr storage, whose
 * destructors the Context runs from its registry) or run the destructor
 * themselves before calling `deallocate` (Operation/Block teardown).
 */

#ifndef WSC_IR_ARENA_H
#define WSC_IR_ARENA_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace wsc::ir {

/** Bump allocator with size-class recycling; owned by ir::Context. */
class Arena
{
  public:
    /** Granularity and guaranteed alignment of every allocation. */
    static constexpr size_t kAlignment = 16;
    /** Bytes per bump page (oversized blocks get a dedicated page). */
    static constexpr size_t kPageSize = 64 * 1024;
    /** Largest block size the free lists recycle. */
    static constexpr size_t kMaxRecycledSize = 2048;

    Arena() : freeLists_(kMaxRecycledSize / kAlignment + 1, nullptr) {}
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Returns a `kAlignment`-aligned block of at least `size` bytes,
     * recycled from the matching free list when one is available.
     */
    void *
    allocate(size_t size)
    {
        size = roundUp(size);
        size_t cls = size / kAlignment;
        if (cls < freeLists_.size() && freeLists_[cls]) {
            FreeNode *node = freeLists_[cls];
            freeLists_[cls] = node->next;
            ++recycleHits_;
            return node;
        }
        if (size > kPageSize) {
            // Dedicated page, leaving the current bump window intact.
            // Kept apart from the regular pages so reset() can rewind
            // onto those without double-handing-out a dedicated block.
            oversized_.push_back(
                std::make_unique_for_overwrite<char[]>(size));
            bytesAllocated_ += size;
            return oversized_.back().get();
        }
        if (static_cast<size_t>(end_ - bump_) < size)
            newPage();
        char *out = bump_;
        bump_ += size;
        bytesAllocated_ += size;
        return out;
    }

    /**
     * Returns a block obtained from `allocate(size)` to its size-class
     * free list. The caller must have run any destructor already.
     * Blocks larger than `kMaxRecycledSize` are intentionally dropped
     * (reclaimed when the arena dies).
     */
    void
    deallocate(void *p, size_t size)
    {
        size = roundUp(size);
        size_t cls = size / kAlignment;
        if (cls >= freeLists_.size())
            return;
        FreeNode *node = static_cast<FreeNode *>(p);
        node->next = freeLists_[cls];
        freeLists_[cls] = node;
    }

    /**
     * Rewind to empty without releasing the regular pages: the free
     * lists are cleared, the bump pointer restarts on the first owned
     * page, and subsequent page exhaustion walks the retained pages
     * before mmap'ing new ones. Everything previously allocated becomes
     * invalid — the caller (Context::reset) guarantees no live IR
     * points into the arena. Dedicated oversize pages (> kPageSize,
     * rare) are the one thing returned to the OS.
     */
    void
    reset()
    {
        std::fill(freeLists_.begin(), freeLists_.end(), nullptr);
        oversized_.clear();
        nextPage_ = 0;
        bump_ = end_ = nullptr;
        ++resetCount_;
    }

    /// @name Introspection (tests, allocation-pressure diagnostics)
    /// @{
    /** Cumulative bytes served by the bump pointer (recycles excluded). */
    size_t bytesAllocated() const { return bytesAllocated_; }
    /** Number of pages (regular and dedicated) currently owned. */
    size_t pageCount() const { return pages_.size() + oversized_.size(); }
    /** Allocations served from a free list instead of fresh memory. */
    size_t recycleHits() const { return recycleHits_; }
    /** Times reset() rewound this arena (context recycling). */
    size_t resetCount() const { return resetCount_; }
    /// @}

  private:
    struct FreeNode
    {
        FreeNode *next;
    };
    static_assert(sizeof(FreeNode) <= kAlignment,
                  "free-list node must fit the smallest size class");

    static size_t
    roundUp(size_t n)
    {
        return (n + kAlignment - 1) & ~(kAlignment - 1);
    }

    void
    newPage()
    {
        // The tail of the previous page is abandoned; the waste per page
        // is bounded by the size of the request that failed to fit.
        // After a reset() the already-owned pages are reused in order
        // before any new page is allocated.
        // for_overwrite: callers placement-new into the block, so the
        // value-initializing make_unique would memset every page twice.
        if (nextPage_ == pages_.size())
            pages_.push_back(
                std::make_unique_for_overwrite<char[]>(kPageSize));
        bump_ = pages_[nextPage_].get();
        end_ = bump_ + kPageSize;
        ++nextPage_;
    }

    char *bump_ = nullptr;
    char *end_ = nullptr;
    std::vector<std::unique_ptr<char[]>> pages_;
    /** Dedicated pages for blocks > kPageSize; freed by reset(). */
    std::vector<std::unique_ptr<char[]>> oversized_;
    /** Index into pages_ of the next bump window (reuse after reset). */
    size_t nextPage_ = 0;
    /** Indexed by size / kAlignment; intrusive singly-linked lists. */
    std::vector<FreeNode *> freeLists_;
    size_t bytesAllocated_ = 0;
    size_t recycleHits_ = 0;
    size_t resetCount_ = 0;
};

} // namespace wsc::ir

#endif // WSC_IR_ARENA_H
