/**
 * @file
 * OpBuilder: creates operations at a maintained insertion point.
 */

#ifndef WSC_IR_BUILDER_H
#define WSC_IR_BUILDER_H

#include <string>
#include <utility>
#include <vector>

#include "ir/operation.h"

namespace wsc::ir {

class Context;

/** Creates operations at an insertion point inside a block. */
class OpBuilder
{
  public:
    explicit OpBuilder(Context &ctx) : ctx_(&ctx) {}

    Context &context() const { return *ctx_; }

    /// @name Insertion point management
    /// @{
    void setInsertionPointToStart(Block *block);
    void setInsertionPointToEnd(Block *block);
    /** Insert before the given operation. */
    void setInsertionPoint(Operation *op);
    /** Insert after the given operation. */
    void setInsertionPointAfter(Operation *op);
    void clearInsertionPoint();
    Block *insertionBlock() const { return block_; }
    /// @}

    /**
     * Create an operation and insert it at the insertion point (when set).
     * Returns the created op.
     */
    Operation *create(OpId id, const std::vector<Value> &operands = {},
                      const std::vector<Type> &resultTypes = {},
                      const AttrList &attrs = {}, unsigned numRegions = 0);
    /** Variant taking already-interned attributes (cloning paths). */
    Operation *createInterned(OpId id, const std::vector<Value> &operands,
                              const std::vector<Type> &resultTypes,
                              const StoredAttrList &attrs,
                              unsigned numRegions = 0);
    Operation *create(const std::string &name,
                      const std::vector<Value> &operands = {},
                      const std::vector<Type> &resultTypes = {},
                      const AttrList &attrs = {}, unsigned numRegions = 0)
    {
        return create(OpId::get(name), operands, resultTypes, attrs,
                      numRegions);
    }

    /** Insert a detached op at the insertion point. */
    Operation *insert(Operation *op);

    /** Create a new block at the end of the region and move into it. */
    Block *createBlock(Region &region);

    /** RAII guard restoring the previous insertion point. */
    class InsertionGuard
    {
      public:
        explicit InsertionGuard(OpBuilder &b)
            : builder_(b), block_(b.block_), before_(b.before_),
              hasPoint_(b.hasPoint_)
        {
        }
        ~InsertionGuard()
        {
            builder_.block_ = block_;
            builder_.before_ = before_;
            builder_.hasPoint_ = hasPoint_;
        }
        InsertionGuard(const InsertionGuard &) = delete;
        InsertionGuard &operator=(const InsertionGuard &) = delete;

      private:
        OpBuilder &builder_;
        Block *block_;
        Operation *before_;
        bool hasPoint_;
    };

  private:
    Context *ctx_;
    Block *block_ = nullptr;
    /** Insertion happens before this op; nullptr appends to the block. */
    Operation *before_ = nullptr;
    bool hasPoint_ = false;
};

/// @name Rewrite helpers
/// @{
/**
 * Replace all uses of op's results with `newValues` (size must match) and
 * erase the op.
 */
void replaceOp(Operation *op, const std::vector<Value> &newValues);

/** Erase an op asserting its results are unused. */
void eraseOp(Operation *op);
/// @}

} // namespace wsc::ir

#endif // WSC_IR_BUILDER_H
