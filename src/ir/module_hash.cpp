#include "ir/module_hash.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "ir/attributes.h"
#include "ir/operation.h"
#include "ir/types.h"

namespace wsc::ir {

namespace {

/** Fibonacci-hashed splitmix64 step; the standard 64-bit finalizer. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
hashBytes(uint64_t h, const void *data, size_t n)
{
    // FNV-1a over the bytes, folded through mix64 at the end so short
    // strings still diffuse into all 64 bits.
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i)
        h = (h ^ p[i]) * 0x100000001b3ULL;
    return mix64(h);
}

/**
 * One fingerprinting pass. Uniqued attr/type storage is content-hashed
 * once and memoized by pointer; SSA values get dense numbers in the
 * order they are first seen (definition always precedes use in a walk,
 * so the numbering is the classic SSA value numbering).
 */
class Fingerprinter
{
  public:
    ModuleFingerprint
    run(Operation *root)
    {
        lo_ = 0x77736373766331ULL; // distinct lane seeds
        hi_ = 0x636f6e74656e74ULL;
        hashOp(root);
        return {mix64(lo_), mix64(hi_)};
    }

  private:
    void
    feed(uint64_t v)
    {
        lo_ = mix64(lo_ ^ v);
        hi_ = mix64(hi_ ^ (v * 0xda942042e4dd58b5ULL));
    }

    void
    feedStr(const std::string &s)
    {
        feed(hashBytes(0xcbf29ce484222325ULL, s.data(), s.size()));
    }

    uint64_t
    hashType(const TypeStorage *t)
    {
        if (!t)
            return 0x7479706530ULL;
        auto it = typeMemo_.find(t);
        if (it != typeMemo_.end())
            return it->second;
        uint64_t h = hashBytes(0x74ULL, t->kind.data(), t->kind.size());
        for (int64_t v : t->ints)
            h = mix64(h ^ static_cast<uint64_t>(v));
        for (const TypeStorage *nested : t->types)
            h = mix64(h ^ hashType(nested));
        for (const std::string &s : t->strs)
            h = hashBytes(h, s.data(), s.size());
        typeMemo_.emplace(t, h);
        return h;
    }

    uint64_t
    hashAttr(const AttrStorage *a)
    {
        if (!a)
            return 0x6174747230ULL;
        auto it = attrMemo_.find(a);
        if (it != attrMemo_.end())
            return it->second;
        uint64_t h = hashBytes(0x61ULL, a->kind.data(), a->kind.size());
        h = mix64(h ^ static_cast<uint64_t>(a->i));
        uint64_t fbits;
        static_assert(sizeof(fbits) == sizeof(a->f));
        std::memcpy(&fbits, &a->f, sizeof(fbits));
        h = mix64(h ^ fbits);
        h = hashBytes(h, a->s.data(), a->s.size());
        h = mix64(h ^ hashType(a->type.impl()));
        for (const AttrStorage *e : a->elems)
            h = mix64(h ^ hashAttr(e));
        for (const std::string &k : a->keys)
            h = hashBytes(h, k.data(), k.size());
        for (double v : a->values) {
            uint64_t bits;
            std::memcpy(&bits, &v, sizeof(bits));
            h = mix64(h ^ bits);
        }
        attrMemo_.emplace(a, h);
        return h;
    }

    uint64_t
    valueNumber(const Value &v)
    {
        auto [it, inserted] =
            valueIds_.emplace(v.impl(), valueIds_.size());
        (void)inserted;
        return it->second;
    }

    void
    hashOp(Operation *op)
    {
        feed(0x6f70ULL); // op marker
        feedStr(op->name());

        // Attributes sorted by *spelling*, not by per-context dense id:
        // the dense order depends on the context's full interning
        // history, which differs between pooled contexts with different
        // pasts. Ops carry a handful of attrs, so the sort is cheap.
        const StoredAttrList &attrs = op->attrs();
        sortScratch_.clear();
        for (const StoredAttr &sa : attrs)
            sortScratch_.push_back(&sa);
        std::sort(sortScratch_.begin(), sortScratch_.end(),
                  [op](const StoredAttr *a, const StoredAttr *b) {
                      return op->attrKeyName(a->name) <
                             op->attrKeyName(b->name);
                  });
        feed(attrs.size());
        for (const StoredAttr *sa : sortScratch_) {
            feedStr(op->attrKeyName(sa->name));
            feed(hashAttr(sa->value.impl()));
        }

        feed(op->numOperands());
        for (const Value &operand : op->operands()) {
            feed(valueNumber(operand));
            feed(hashType(operand.type().impl()));
        }

        feed(op->numResults());
        for (unsigned i = 0; i < op->numResults(); ++i) {
            Value r = op->result(i);
            feed(valueNumber(r));
            feed(hashType(r.type().impl()));
        }

        feed(op->numRegions());
        for (unsigned ri = 0; ri < op->numRegions(); ++ri) {
            Region &region = op->region(ri);
            feed(0x726567ULL); // region marker
            feed(region.size());
            for (Block *block : region.blocks()) {
                feed(0x626c6bULL); // block marker
                feed(block->numArguments());
                for (unsigned ai = 0; ai < block->numArguments(); ++ai) {
                    Value arg = block->argument(ai);
                    feed(valueNumber(arg));
                    feed(hashType(arg.type().impl()));
                }
                for (Operation *nested : block->operations())
                    hashOp(nested);
                feed(0x656e64ULL); // block end
            }
        }
    }

    uint64_t lo_ = 0;
    uint64_t hi_ = 0;
    std::unordered_map<const TypeStorage *, uint64_t> typeMemo_;
    std::unordered_map<const AttrStorage *, uint64_t> attrMemo_;
    std::unordered_map<const ValueImpl *, uint64_t> valueIds_;
    std::vector<const StoredAttr *> sortScratch_;
};

} // namespace

std::string
ModuleFingerprint::str() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

ModuleFingerprint
fingerprintModule(Operation *root)
{
    Fingerprinter fp;
    return fp.run(root);
}

} // namespace wsc::ir
