/**
 * @file
 * Structural fingerprinting of IR modules — the content-addressing key
 * of the compile service's artifact cache (src/service/artifact_cache.h).
 *
 * The fingerprint is computed over the module's *content*, not its
 * memory: op names by spelling, attributes and types by recursive
 * content (memoized per uniqued storage pointer), SSA structure by a
 * deterministic value numbering assigned in walk order. Two modules
 * built from the same input therefore fingerprint identically even when
 * they live in different contexts (whose intern pools assigned different
 * dense ids and arena addresses) — which is exactly what lets a pool of
 * recycled per-job contexts share one content-addressed cache.
 *
 * The 128-bit width keeps accidental collisions out of reach for any
 * realistic cache population; the two lanes are independently seeded
 * mixes over the same byte stream.
 */

#ifndef WSC_IR_MODULE_HASH_H
#define WSC_IR_MODULE_HASH_H

#include <cstdint>
#include <string>

namespace wsc::ir {

class Operation;

/** 128-bit structural module hash (two independently seeded lanes). */
struct ModuleFingerprint
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool operator==(const ModuleFingerprint &) const = default;

    /** 32 hex digits, for logs and cache keys in reports. */
    std::string str() const;
};

/**
 * Fingerprint `root` (any op, typically the builtin.module a frontend
 * emitted). Read-only; does not touch the context's intern pools.
 */
ModuleFingerprint fingerprintModule(Operation *root);

} // namespace wsc::ir

#endif // WSC_IR_MODULE_HASH_H
