/**
 * @file
 * Recoverable compiler diagnostics: severity-tagged messages carrying a
 * rendered IR location, attached notes, and a per-context handler stack.
 *
 * The engine replaces process-terminating `fatal()` calls on the compile
 * paths (verifier, transforms, frontends, codegen). Errors are *data*: a
 * pass that detects malformed input emits a diagnostic through its
 * context's engine and unwinds — either by returning a failed
 * LogicalResult, or (from deep recursion) by throwing DiagnosedError,
 * which the PassManager converts into a failed PipelineResult. The
 * module is left intact for post-mortem printing, and the context stays
 * usable: a subsequent valid compile in the same context is unaffected.
 *
 * Handlers form a stack so nested consumers compose: a pipeline job
 * installs a collector for its own run while an outer daemon-level
 * handler keeps receiving anything emitted outside a job. Contexts are
 * single-threaded (one pipeline job per context), so the engine needs no
 * locking; concurrent jobs each own a context and therefore an engine.
 *
 * `fatal()` remains legal only in main()-adjacent driver code and the
 * simulator's report path — never on library compile paths.
 */

#ifndef WSC_IR_DIAGNOSTICS_H
#define WSC_IR_DIAGNOSTICS_H

#include <cstdint>
#include <exception>
#include <functional>
#include <iosfwd>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace wsc::ir {

class Block;
class Context;
class DiagnosticEngine;
class Operation;
class Value;

//===----------------------------------------------------------------------===
// LogicalResult
//===----------------------------------------------------------------------===

/** Success/failure of a recoverable operation (pass, verifier, parse). */
class LogicalResult
{
  public:
    static LogicalResult success() { return LogicalResult(true); }
    static LogicalResult failure() { return LogicalResult(false); }

    bool succeeded() const { return succeeded_; }
    bool failed() const { return !succeeded_; }

  private:
    explicit LogicalResult(bool succeeded) : succeeded_(succeeded) {}

    bool succeeded_;
};

inline LogicalResult success() { return LogicalResult::success(); }
inline LogicalResult failure() { return LogicalResult::failure(); }
inline bool succeeded(LogicalResult r) { return r.succeeded(); }
inline bool failed(LogicalResult r) { return r.failed(); }

//===----------------------------------------------------------------------===
// Diagnostic
//===----------------------------------------------------------------------===

/** Diagnostic severity, ordered by weight. */
enum class Severity
{
    Remark,
    Warning,
    Error,
    /** Attached to a parent diagnostic, never reported on its own. */
    Note,
};

/** The spelling used by render() ("error", "warning", ...). */
const char *severityName(Severity severity);

/**
 * One diagnostic: severity, message, and a location rendered *at emission
 * time* (ops may be erased or the module destroyed before the diagnostic
 * is consumed, so no IR pointers are retained). Notes attach context
 * lines below the parent diagnostic.
 */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /** Where: "'csl.task' @recv0 in 'csl_wrapper.module'", or a
     *  frontend position like "fortran:3:12". Empty when unknown. */
    std::string location;
    /** One-line render of the offending op (truncated), if any. */
    std::string snippet;
    /** The pass that was running, stamped by the PassManager. */
    std::string pass;
    std::string message;
    std::vector<Diagnostic> notes;

    Diagnostic() = default;
    Diagnostic(Severity s, std::string msg)
        : severity(s), message(std::move(msg))
    {
    }

    /** Stream-append to the message. */
    template <typename T>
    Diagnostic &
    operator<<(T &&v)
    {
        std::ostringstream os;
        os << std::forward<T>(v);
        message += os.str();
        return *this;
    }

    /**
     * Append a note (optionally located at `op`) and return it for
     * further streaming. The reference is invalidated by the next
     * attachNote call.
     */
    Diagnostic &attachNote(std::string msg = {}, Operation *op = nullptr);

    /** Multi-line human-readable rendering (includes notes). */
    void render(std::ostream &os) const;
    std::string str() const;
};

//===----------------------------------------------------------------------===
// DiagnosticEngine
//===----------------------------------------------------------------------===

/**
 * Per-context diagnostic sink with a scoped handler stack. The top
 * handler receives every reported diagnostic; with no handler installed,
 * diagnostics render to stderr (so nothing is ever silently dropped).
 */
class DiagnosticEngine
{
  public:
    using Handler = std::function<void(Diagnostic &&)>;

    /** Deliver `diag` to the active handler (or stderr). */
    void report(Diagnostic &&diag);

    /** Install `handler` as the active sink until popHandler(). */
    void pushHandler(Handler handler);
    void popHandler();
    size_t handlerDepth() const { return handlers_.size(); }

    /** Errors reported through this engine since construction. */
    uint64_t errorCount() const { return errorCount_; }

    /**
     * Forget all counters (context recycling). Legal only with no
     * handler installed; Context::reset asserts that before calling.
     */
    void
    reset()
    {
        handlers_.clear();
        errorCount_ = 0;
    }

  private:
    std::vector<Handler> handlers_;
    uint64_t errorCount_ = 0;
};

/** RAII installation of a diagnostic handler on a context's engine. */
class ScopedDiagnosticHandler
{
  public:
    ScopedDiagnosticHandler(Context &ctx, DiagnosticEngine::Handler handler);
    ScopedDiagnosticHandler(DiagnosticEngine &engine,
                            DiagnosticEngine::Handler handler);
    ~ScopedDiagnosticHandler();
    ScopedDiagnosticHandler(const ScopedDiagnosticHandler &) = delete;
    ScopedDiagnosticHandler &operator=(const ScopedDiagnosticHandler &) =
        delete;

  private:
    DiagnosticEngine &engine_;
};

/** Scoped handler that collects diagnostics into a vector. */
class DiagnosticCollector
{
  public:
    explicit DiagnosticCollector(Context &ctx);
    explicit DiagnosticCollector(DiagnosticEngine &engine);
    ~DiagnosticCollector();
    DiagnosticCollector(const DiagnosticCollector &) = delete;
    DiagnosticCollector &operator=(const DiagnosticCollector &) = delete;

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }
    std::vector<Diagnostic> take() { return std::move(diags_); }
    bool hadError() const;

  private:
    DiagnosticEngine &engine_;
    std::vector<Diagnostic> diags_;
};

//===----------------------------------------------------------------------===
// InFlightDiagnostic and emission helpers
//===----------------------------------------------------------------------===

/**
 * A diagnostic being built by an emit* call. Streams with `<<`, takes
 * notes, and reports itself to the engine when destroyed (end of the
 * full expression / scope). Converts to LogicalResult so error emission
 * can be returned directly: `return emitError(op) << "...";`.
 */
class InFlightDiagnostic
{
  public:
    InFlightDiagnostic(DiagnosticEngine *engine, Diagnostic diag)
        : engine_(engine), diag_(std::move(diag))
    {
    }
    InFlightDiagnostic(InFlightDiagnostic &&other) noexcept
        : engine_(other.engine_), reported_(other.reported_),
          diag_(std::move(other.diag_))
    {
        other.reported_ = true;
    }
    ~InFlightDiagnostic() { report(); }
    InFlightDiagnostic(const InFlightDiagnostic &) = delete;
    InFlightDiagnostic &operator=(const InFlightDiagnostic &) = delete;

    template <typename T>
    InFlightDiagnostic &
    operator<<(T &&v)
    {
        diag_ << std::forward<T>(v);
        return *this;
    }

    /** Attach a note; see Diagnostic::attachNote. */
    Diagnostic &
    attachNote(std::string msg = {}, Operation *op = nullptr)
    {
        return diag_.attachNote(std::move(msg), op);
    }

    /** Deliver to the engine now (idempotent; destructor calls this). */
    void report();

    /** Steal the diagnostic without reporting it. */
    Diagnostic take();

    operator LogicalResult() const
    {
        return diag_.severity == Severity::Error ? failure() : success();
    }

  private:
    DiagnosticEngine *engine_;
    bool reported_ = false;
    Diagnostic diag_;
};

/** Emit a diagnostic located at `op` through its context's engine. */
InFlightDiagnostic emitError(Operation *op, std::string msg = {});
InFlightDiagnostic emitWarning(Operation *op, std::string msg = {});
InFlightDiagnostic emitRemark(Operation *op, std::string msg = {});

/** Emit located at a block (renders its parent op). */
InFlightDiagnostic emitError(Block *block, std::string msg = {});
/** Emit located at a value (defining op, or owner block argument). */
InFlightDiagnostic emitError(Value value, std::string msg = {});
/** Emit without an IR location (configuration-level errors). */
InFlightDiagnostic emitError(Context &ctx, std::string msg = {});

/** Render `op`'s location the way emitError would (for tests/tools). */
std::string diagnosticLocation(Operation *op);

//===----------------------------------------------------------------------===
// DiagnosedError
//===----------------------------------------------------------------------===

/**
 * Unwinding vehicle for error sites buried in deep recursion, where
 * threading LogicalResult through every frame is impractical. Two forms:
 *
 *  - `DiagnosedError()`: the diagnostic has already been reported to a
 *    context's engine; the exception is an empty control-flow signal.
 *  - `DiagnosedError(diag)`: carries the diagnostic itself, for code
 *    with no context at hand (frontends parsing raw text).
 *
 * The PassManager (and checked frontend entry points) catch this type
 * and convert it into a failed result; it must not escape to users.
 */
class DiagnosedError : public std::exception
{
  public:
    DiagnosedError() : rendered_("error already reported") {}
    explicit DiagnosedError(Diagnostic diag);

    const char *what() const noexcept override { return rendered_.c_str(); }

    bool hasDiagnostic() const { return hasDiag_; }
    const Diagnostic &diagnostic() const { return diag_; }
    Diagnostic takeDiagnostic() { return std::move(diag_); }

  private:
    Diagnostic diag_;
    bool hasDiag_ = false;
    std::string rendered_;
};

/**
 * Report an error at `op` and unwind with DiagnosedError. Drop-in
 * replacement for `fatal()` at compile-path sites below a pass.
 */
[[noreturn]] void emitFatal(Operation *op, const std::string &msg);
/** Location-less variant (configuration errors inside a pass). */
[[noreturn]] void emitFatal(Context &ctx, const std::string &msg);

} // namespace wsc::ir

#endif // WSC_IR_DIAGNOSTICS_H
