#include "ir/types.h"

#include <sstream>

#include "ir/context.h"
#include "support/error.h"

namespace wsc::ir {

const std::string &
Type::kind() const
{
    WSC_ASSERT(impl_, "kind() on null type");
    return impl_->kind;
}

std::string
Type::str() const
{
    if (!impl_)
        return "<<null-type>>";
    const TypeStorage &s = *impl_;
    // Builtin scalar kinds print as their kind name.
    if (s.kind == "f16" || s.kind == "f32" || s.kind == "f64" ||
        s.kind == "index")
        return s.kind;
    if (s.kind == "int")
        return "i" + std::to_string(s.ints[0]);
    std::ostringstream os;
    if (s.kind == "tensor" || s.kind == "memref") {
        os << s.kind << "<";
        for (int64_t d : s.ints) {
            if (d == kDynamic)
                os << "?x";
            else
                os << d << "x";
        }
        os << Type(s.types[0]).str() << ">";
        return os.str();
    }
    if (s.kind == "function") {
        size_t n_inputs = s.ints[0];
        os << "(";
        for (size_t i = 0; i < n_inputs; ++i)
            os << (i ? ", " : "") << Type(s.types[i]).str();
        os << ") -> (";
        for (size_t i = n_inputs; i < s.types.size(); ++i)
            os << (i != n_inputs ? ", " : "") << Type(s.types[i]).str();
        os << ")";
        return os.str();
    }
    // Dialect types: !kind<ints | types | strs>.
    os << "!" << s.kind;
    if (s.ints.empty() && s.types.empty() && s.strs.empty())
        return os.str();
    os << "<";
    bool first = true;
    for (int64_t v : s.ints) {
        os << (first ? "" : ",") << v;
        first = false;
    }
    for (const TypeStorage *t : s.types) {
        os << (first ? "" : ",") << Type(t).str();
        first = false;
    }
    for (const std::string &str : s.strs) {
        os << (first ? "" : ",") << str;
        first = false;
    }
    os << ">";
    return os.str();
}

Type
getType(Context &ctx, const std::string &kind,
        const std::vector<int64_t> &ints, const std::vector<Type> &types,
        const std::vector<std::string> &strs)
{
    TypeStorage proto;
    proto.kind = kind;
    proto.ints = ints;
    for (Type t : types) {
        WSC_ASSERT(t, "null nested type in getType(" << kind << ")");
        proto.types.push_back(t.impl());
    }
    proto.strs = strs;
    return Type(ctx.uniqueType(proto));
}

Type
getF16Type(Context &ctx)
{
    return getType(ctx, "f16");
}

Type
getF32Type(Context &ctx)
{
    return getType(ctx, "f32");
}

Type
getF64Type(Context &ctx)
{
    return getType(ctx, "f64");
}

Type
getIntegerType(Context &ctx, unsigned width)
{
    return getType(ctx, "int", {static_cast<int64_t>(width)});
}

Type
getI1Type(Context &ctx)
{
    return getIntegerType(ctx, 1);
}

Type
getI16Type(Context &ctx)
{
    return getIntegerType(ctx, 16);
}

Type
getI32Type(Context &ctx)
{
    return getIntegerType(ctx, 32);
}

Type
getIndexType(Context &ctx)
{
    return getType(ctx, "index");
}

Type
getFunctionType(Context &ctx, const std::vector<Type> &inputs,
                const std::vector<Type> &results)
{
    std::vector<Type> all = inputs;
    all.insert(all.end(), results.begin(), results.end());
    return getType(ctx, "function",
                   {static_cast<int64_t>(inputs.size())}, all);
}

Type
getTensorType(Context &ctx, const std::vector<int64_t> &shape,
              Type elementType)
{
    return getType(ctx, "tensor", shape, {elementType});
}

Type
getMemRefType(Context &ctx, const std::vector<int64_t> &shape,
              Type elementType)
{
    return getType(ctx, "memref", shape, {elementType});
}

bool
isFloat(Type t)
{
    if (!t)
        return false;
    const std::string &k = t.kind();
    return k == "f16" || k == "f32" || k == "f64";
}

bool
isInteger(Type t)
{
    return t && t.kind() == "int";
}

bool
isIndex(Type t)
{
    return t && t.kind() == "index";
}

bool
isFunction(Type t)
{
    return t && t.kind() == "function";
}

bool
isTensor(Type t)
{
    return t && t.kind() == "tensor";
}

bool
isMemRef(Type t)
{
    return t && t.kind() == "memref";
}

bool
isShaped(Type t)
{
    return isTensor(t) || isMemRef(t);
}

unsigned
bitWidth(Type t)
{
    WSC_ASSERT(t, "bitWidth of null type");
    const std::string &k = t.kind();
    if (k == "f16")
        return 16;
    if (k == "f32")
        return 32;
    if (k == "f64")
        return 64;
    if (k == "int")
        return static_cast<unsigned>(t.impl()->ints[0]);
    panic("bitWidth: unsupported type " + t.str());
}

const std::vector<int64_t> &
shapeOf(Type t)
{
    WSC_ASSERT(isShaped(t), "shapeOf on non-shaped type " << t.str());
    return t.impl()->ints;
}

Type
elementTypeOf(Type t)
{
    WSC_ASSERT(isShaped(t), "elementTypeOf on non-shaped type " << t.str());
    return Type(t.impl()->types[0]);
}

int64_t
numElementsOf(Type t)
{
    int64_t n = 1;
    for (int64_t d : shapeOf(t)) {
        WSC_ASSERT(d != kDynamic, "numElementsOf on dynamic shape");
        n *= d;
    }
    return n;
}

std::vector<Type>
functionInputs(Type t)
{
    WSC_ASSERT(isFunction(t), "functionInputs on non-function type");
    const TypeStorage &s = *t.impl();
    std::vector<Type> out;
    for (size_t i = 0; i < static_cast<size_t>(s.ints[0]); ++i)
        out.push_back(Type(s.types[i]));
    return out;
}

std::vector<Type>
functionResults(Type t)
{
    WSC_ASSERT(isFunction(t), "functionResults on non-function type");
    const TypeStorage &s = *t.impl();
    std::vector<Type> out;
    for (size_t i = static_cast<size_t>(s.ints[0]); i < s.types.size(); ++i)
        out.push_back(Type(s.types[i]));
    return out;
}

} // namespace wsc::ir
