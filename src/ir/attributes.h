/**
 * @file
 * Uniqued, immutable IR attributes (compile-time constants attached to ops).
 *
 * Like types, attributes are value-semantics handles onto storage uniqued
 * in the Context. The storage is generic; dialects compose dictionary and
 * array attributes rather than defining bespoke storage.
 */

#ifndef WSC_IR_ATTRIBUTES_H
#define WSC_IR_ATTRIBUTES_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ir/types.h"

namespace wsc::ir {

class Context;
class Attribute;

/** Generic uniqued storage for an attribute. */
struct AttrStorage
{
    /** Kind discriminator: "int", "float", "string", "unit", "type",
     *  "array", "dict", "dense". */
    std::string kind;
    int64_t i = 0;
    double f = 0.0;
    std::string s;
    Type type;
    std::vector<const AttrStorage *> elems;
    /** Keys for "dict" attributes, parallel to elems. */
    std::vector<std::string> keys;
    /** Element payload for "dense" attributes. */
    std::vector<double> values;
};

/** Value-semantics handle to uniqued attribute storage. */
class Attribute
{
  public:
    Attribute() = default;
    explicit Attribute(const AttrStorage *impl) : impl_(impl) {}

    explicit operator bool() const { return impl_ != nullptr; }
    bool operator==(const Attribute &other) const = default;

    const std::string &kind() const;
    const AttrStorage *impl() const { return impl_; }

    /** Render this attribute in MLIR-like syntax. */
    std::string str() const;

  private:
    const AttrStorage *impl_ = nullptr;
};

/// @name Attribute constructors
/// @{
Attribute getIntAttr(Context &ctx, int64_t value, Type type = Type());
Attribute getFloatAttr(Context &ctx, double value, Type type = Type());
Attribute getStringAttr(Context &ctx, const std::string &value);
Attribute getUnitAttr(Context &ctx);
Attribute getTypeAttr(Context &ctx, Type type);
Attribute getArrayAttr(Context &ctx, const std::vector<Attribute> &elems);
Attribute getDictAttr(Context &ctx,
                      const std::vector<std::pair<std::string, Attribute>>
                          &entries);
/** Dense constant over a shaped type (splat if values.size() == 1). */
Attribute getDenseAttr(Context &ctx, Type shapedType,
                       const std::vector<double> &values);
/// @}

/// @name Attribute inspectors
/// @{
bool isIntAttr(Attribute a);
bool isFloatAttr(Attribute a);
bool isStringAttr(Attribute a);
bool isUnitAttr(Attribute a);
bool isTypeAttr(Attribute a);
bool isArrayAttr(Attribute a);
bool isDictAttr(Attribute a);
bool isDenseAttr(Attribute a);

int64_t intAttrValue(Attribute a);
double floatAttrValue(Attribute a);
const std::string &stringAttrValue(Attribute a);
Type typeAttrValue(Attribute a);
std::vector<Attribute> arrayAttrValue(Attribute a);
/** Dictionary lookup; returns null attribute when absent. */
Attribute dictAttrGet(Attribute a, const std::string &key);
const std::vector<double> &denseAttrValues(Attribute a);
Type attrType(Attribute a);

/** Convenience: array-of-int attribute from raw values. */
Attribute getIntArrayAttr(Context &ctx, const std::vector<int64_t> &values);
/** Convenience: extract raw ints from an array-of-int attribute. */
std::vector<int64_t> intArrayAttrValue(Attribute a);
/// @}

/**
 * Generic constructor for dialect-specific attribute kinds. The full field
 * tuple is the identity of the attribute.
 */
Attribute getAttr(Context &ctx, const AttrStorage &proto);

} // namespace wsc::ir

#endif // WSC_IR_ATTRIBUTES_H
