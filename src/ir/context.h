/**
 * @file
 * The Context owns all uniqued IR objects (types, attributes) and the
 * registry of known operations with their verification hooks.
 */

#ifndef WSC_IR_CONTEXT_H
#define WSC_IR_CONTEXT_H

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "ir/attributes.h"
#include "ir/types.h"

namespace wsc::ir {

class Operation;

/** Static information registered for each operation name. */
struct OpInfo
{
    /** Whether this op terminates a block. */
    bool isTerminator = false;
    /**
     * Op-specific structural verifier. Returns an empty string on success
     * or a diagnostic message on failure.
     */
    std::function<std::string(Operation *)> verify;
};

/**
 * Owns uniqued types/attributes and the op registry. All IR built against
 * a context must not outlive it.
 */
class Context
{
  public:
    Context() = default;
    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    /** Intern type storage; returns existing storage when already present. */
    const TypeStorage *uniqueType(const TypeStorage &proto);
    /** Intern attribute storage. */
    const AttrStorage *uniqueAttr(const AttrStorage &proto);

    /** Register an operation name with its static info. */
    void registerOp(const std::string &name, OpInfo info);
    /** Look up op info; returns nullptr for unregistered ops. */
    const OpInfo *opInfo(const std::string &name) const;
    /** Whether the op name has been registered by some dialect. */
    bool isRegisteredOp(const std::string &name) const;

    /** Record that a dialect has been loaded (idempotence guard). */
    bool markDialectLoaded(const std::string &dialect);

  private:
    std::unordered_map<std::string, std::unique_ptr<TypeStorage>> typePool_;
    std::unordered_map<std::string, std::unique_ptr<AttrStorage>> attrPool_;
    std::map<std::string, OpInfo> opRegistry_;
    std::set<std::string> loadedDialects_;
};

} // namespace wsc::ir

#endif // WSC_IR_CONTEXT_H
