/**
 * @file
 * The Context owns all uniqued IR objects (types, attributes) and the
 * registry of known operations with their verification hooks.
 *
 * Operation names are interned process-wide into dense OpId handles so
 * that op identity tests compile down to an integer compare and the
 * per-context op registry is an array lookup instead of a string-keyed
 * map probe (see src/ir/README.md).
 */

#ifndef WSC_IR_CONTEXT_H
#define WSC_IR_CONTEXT_H

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/arena.h"
#include "ir/attributes.h"
#include "ir/diagnostics.h"
#include "ir/types.h"

namespace wsc::ir {

class Operation;

/**
 * Dense integer handle for an interned operation name. Ids are assigned
 * process-wide (first `get` wins the slot), so two OpIds from different
 * contexts compare equal iff they spell the same op name. The interned
 * string outlives every IR object, so `str()` references are stable.
 */
class OpId
{
  public:
    constexpr OpId() = default;

    /** Intern `name`, returning its dense id (idempotent). */
    static OpId get(std::string_view name);

    /** The interned spelling; storage lives for the whole process. */
    const std::string &str() const;

    /** Implicit view for APIs that take the op name as a string. */
    operator const std::string &() const { return str(); }

    bool valid() const { return id_ != kInvalid; }
    uint32_t raw() const { return id_; }

    friend bool operator==(OpId a, OpId b) { return a.id_ == b.id_; }
    friend bool operator!=(OpId a, OpId b) { return a.id_ != b.id_; }
    friend bool operator<(OpId a, OpId b) { return a.id_ < b.id_; }

  private:
    static constexpr uint32_t kInvalid = 0xffffffffu;

    uint32_t id_ = kInvalid;
};

/** Prints the interned spelling (used by diagnostics and gtest). */
std::ostream &operator<<(std::ostream &os, OpId id);

/**
 * Dense integer handle for an attribute name interned in one Context.
 * Attribute maps on operations store (AttrNameId, Attribute) pairs sorted
 * by id, so probes with a resolved id compare integers instead of
 * strings. Ids are per-context (ops never migrate between contexts).
 */
class AttrNameId
{
  public:
    constexpr AttrNameId() = default;

    bool valid() const { return id_ != kInvalid; }
    uint32_t raw() const { return id_; }

    friend bool operator==(AttrNameId a, AttrNameId b)
    {
        return a.id_ == b.id_;
    }
    friend bool operator!=(AttrNameId a, AttrNameId b)
    {
        return a.id_ != b.id_;
    }
    friend bool operator<(AttrNameId a, AttrNameId b)
    {
        return a.id_ < b.id_;
    }

    /** Construct from a raw id — for the well-known constants below and
     *  Context; elsewhere obtain ids through Context::internAttrName. */
    explicit constexpr AttrNameId(uint32_t id) : id_(id) {}

  private:
    static constexpr uint32_t kInvalid = 0xffffffffu;

    uint32_t id_ = kInvalid;
};

/**
 * Well-known attribute names, pre-interned by every Context in this
 * exact order so the constants below are valid in any context. Hot
 * probe sites (emitter, dialect accessors, symbol lookup) use these to
 * skip the name-pool hash probe entirely.
 */
namespace attrs {

/** Spellings in id order; Context's constructor interns them. */
constexpr const char *kWellKnownNames[] = {
    "value",      "var",       "sym_name",    "kind",
    "callee",     "task",      "predicate",   "offset",
    "length",     "stride",    "wrap",        "type",
    "init",       "via_ptr",   "z_dim",       "z_offset",
    "section",    "num_chunks","name",        "id",
    "recv_cb",    "done_cb",   "recv_buffer", "coeffs",
    "z_size",     "trim_first","trim_last",   "static_size",
    "static_offset", "function_type", "module", "init_as",
    "swaps",      "width",     "height",      "topology",
    "params",     "result_fields", "comms_owned", "result_buffer",
    "program_name", "pattern", "member",      "file",
    "comptime_role_site", "comptime_role", "chunk_len", "arg_names",
    "accesses",
};

inline constexpr AttrNameId kValue{0};
inline constexpr AttrNameId kVar{1};
inline constexpr AttrNameId kSymName{2};
inline constexpr AttrNameId kKind{3};
inline constexpr AttrNameId kCallee{4};
inline constexpr AttrNameId kTask{5};
inline constexpr AttrNameId kPredicate{6};
inline constexpr AttrNameId kOffset{7};
inline constexpr AttrNameId kLength{8};
inline constexpr AttrNameId kStride{9};
inline constexpr AttrNameId kWrap{10};
inline constexpr AttrNameId kType{11};
inline constexpr AttrNameId kInit{12};
inline constexpr AttrNameId kViaPtr{13};
inline constexpr AttrNameId kZDim{14};
inline constexpr AttrNameId kZOffset{15};
inline constexpr AttrNameId kSection{16};
inline constexpr AttrNameId kNumChunks{17};
inline constexpr AttrNameId kName{18};
inline constexpr AttrNameId kId{19};
inline constexpr AttrNameId kRecvCb{20};
inline constexpr AttrNameId kDoneCb{21};
inline constexpr AttrNameId kRecvBuffer{22};
inline constexpr AttrNameId kCoeffs{23};
inline constexpr AttrNameId kZSize{24};
inline constexpr AttrNameId kTrimFirst{25};
inline constexpr AttrNameId kTrimLast{26};
inline constexpr AttrNameId kStaticSize{27};
inline constexpr AttrNameId kStaticOffset{28};
inline constexpr AttrNameId kFunctionType{29};
inline constexpr AttrNameId kModule{30};
inline constexpr AttrNameId kInitAs{31};
inline constexpr AttrNameId kSwaps{32};
inline constexpr AttrNameId kWidth{33};
inline constexpr AttrNameId kHeight{34};
inline constexpr AttrNameId kTopology{35};
inline constexpr AttrNameId kParams{36};
inline constexpr AttrNameId kResultFields{37};
inline constexpr AttrNameId kCommsOwned{38};
inline constexpr AttrNameId kResultBuffer{39};
inline constexpr AttrNameId kProgramName{40};
inline constexpr AttrNameId kPattern{41};
inline constexpr AttrNameId kMember{42};
inline constexpr AttrNameId kFile{43};
inline constexpr AttrNameId kComptimeRoleSite{44};
inline constexpr AttrNameId kComptimeRole{45};
inline constexpr AttrNameId kChunkLen{46};
inline constexpr AttrNameId kArgNames{47};
inline constexpr AttrNameId kAccesses{48};

} // namespace attrs

/** Static information registered for each operation name. */
struct OpInfo
{
    /** Whether this op terminates a block. */
    bool isTerminator = false;
    /**
     * Op-specific structural verifier. Returns an empty string on success
     * or a diagnostic message on failure.
     */
    std::function<std::string(Operation *)> verify;
};

/**
 * Observes structural IR mutations within a context. The worklist rewrite
 * driver installs one for the duration of a pattern run; when none is
 * installed the notification sites are a single null-pointer test.
 */
class IRListener
{
  public:
    virtual ~IRListener() = default;
    /** `op` was attached to a block (creation, move, splice). */
    virtual void notifyAttached(Operation *op) = 0;
    /** `op` is about to be destroyed; drop any references to it. */
    virtual void notifyDestroyed(Operation *op) = 0;
    /** One of `op`'s operands was re-pointed at a new value. */
    virtual void notifyOperandChanged(Operation *op) = 0;
    /**
     * A use of `def`'s result was dropped (operand overwrite or erase),
     * changing the use counts patterns may be gated on. `def` is the
     * defining op of the value that lost the use (block-argument values
     * report nothing). Remaining users can be reached through `def`.
     */
    virtual void notifyValueUseRemoved(Operation *def) = 0;
};

/**
 * Owns uniqued types/attributes and the op registry. All IR built against
 * a context must not outlive it.
 */
class Context
{
  public:
    Context();
    ~Context();
    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    /// @name Arena allocation
    /// All IR object memory (operations, blocks, interned type/attr
    /// storage) lives in a per-context bump arena (see ir/arena.h):
    /// pointers stay valid until the context dies, and erased objects
    /// are recycled through per-size free lists instead of the heap.
    /// @{

    /** The raw arena (introspection: page count, bytes, recycle hits). */
    Arena &arena() { return arena_; }

    /**
     * Recycle this context for its next compile: drops every interned
     * type/attribute/attr-name, the diagnostic state and the arena
     * contents wholesale — without releasing the arena's pages — so a
     * pooled context (service/context_pool.h) serves repeat compiles
     * with zero page re-faulting and plateaued memory.
     *
     * What survives a reset: the op registry, the loaded-dialect marks
     * (dialects register process-stable OpIds and stateless hooks, so
     * re-registration is unnecessary) and the arena's pages.
     *
     * Contract: every IR object built in this context (all OwningOp
     * modules, detached ops, printers holding Values) must already be
     * destroyed, and no diagnostic handler may still be installed —
     * the arena rewind invalidates all of it at once.
     */
    void reset();

    /**
     * Raw arena bytes for objects with explicitly managed lifetime
     * (Operation/Block teardown runs destructors itself and then calls
     * deallocateBytes to recycle the block).
     */
    void *allocateBytes(size_t size) { return arena_.allocate(size); }
    /** Recycle a block from allocateBytes; destructors must be done. */
    void deallocateBytes(void *p, size_t size) { arena_.deallocate(p, size); }

    /**
     * Construct a `T` in the arena with context lifetime: the object is
     * never individually freed, and its destructor (when non-trivial) is
     * run at context destruction. Use for interned/canonical storage,
     * not for objects that are erased and recycled (those go through
     * allocateBytes/deallocateBytes with caller-run destructors).
     */
    template <typename T, typename... Args>
    T *
    allocate(Args &&...args)
    {
        static_assert(alignof(T) <= Arena::kAlignment,
                      "over-aligned types are not supported by the arena");
        void *mem = arena_.allocate(sizeof(T));
        T *obj = new (mem) T(std::forward<Args>(args)...);
        if constexpr (!std::is_trivially_destructible_v<T>)
            arenaDtors_.push_back(
                {[](void *p) { static_cast<T *>(p)->~T(); }, obj});
        return obj;
    }
    /// @}

    /** Intern type storage; returns existing storage when already present. */
    const TypeStorage *uniqueType(const TypeStorage &proto);
    /** Intern attribute storage. */
    const AttrStorage *uniqueAttr(const AttrStorage &proto);

    /// @name Attribute-name interning
    /// Attribute keys on operations are dense per-context ids; the
    /// spelling is kept only for diagnostics and printing.
    /// @{
    /** Intern an attribute name (idempotent). */
    AttrNameId internAttrName(std::string_view name);
    /** Look up without interning; invalid id when never interned. */
    AttrNameId findAttrName(std::string_view name) const;
    /** The interned spelling; stable for the context's lifetime. */
    const std::string &attrName(AttrNameId id) const;
    /// @}

    /** Register an operation with its static info (dialect-load time). */
    void registerOp(OpId id, OpInfo info);
    void registerOp(const std::string &name, OpInfo info)
    {
        registerOp(OpId::get(name), std::move(info));
    }
    /** Look up op info; returns nullptr for unregistered ops. */
    const OpInfo *opInfo(OpId id) const
    {
        return id.raw() < opRegistry_.size() && registered_[id.raw()]
                   ? &opRegistry_[id.raw()]
                   : nullptr;
    }
    const OpInfo *opInfo(const std::string &name) const
    {
        return opInfo(OpId::get(name));
    }
    /** Whether the op has been registered by some dialect. */
    bool isRegisteredOp(OpId id) const { return opInfo(id) != nullptr; }
    bool isRegisteredOp(const std::string &name) const
    {
        return isRegisteredOp(OpId::get(name));
    }

    /** Record that a dialect has been loaded (idempotence guard). */
    bool markDialectLoaded(const std::string &dialect);

    /** Install a mutation listener (nullptr to remove). At most one. */
    void setListener(IRListener *listener) { listener_ = listener; }
    IRListener *listener() const { return listener_; }

    /**
     * The context's diagnostic engine (see ir/diagnostics.h). One engine
     * per context means concurrent pipeline jobs — one context each —
     * capture their own diagnostic streams without synchronization.
     */
    DiagnosticEngine &diagnostics() { return diagEngine_; }

    /** Sizes of the intern pools (reset-plateau tests, telemetry). */
    struct InternStats
    {
        size_t types = 0;
        size_t attrs = 0;
        size_t attrNames = 0;
    };
    InternStats
    internStats() const
    {
        return {typePool_.size(), attrPool_.size(), attrNames_.size()};
    }

  private:
    /**
     * Declared first so every other member (whose keys/values point into
     * arena memory) is destroyed before the pages are released.
     */
    Arena arena_;
    /** (destructor, object) pairs run in reverse order by ~Context. */
    std::vector<std::pair<void (*)(void *), void *>> arenaDtors_;
    /**
     * Interning pools: keys are views of key bytes copied into the arena
     * on first insertion (pointer-stable, no owning copy per entry), and
     * the canonical storage they map to is arena-placed.
     */
    std::unordered_map<std::string_view, const TypeStorage *> typePool_;
    std::unordered_map<std::string_view, const AttrStorage *> attrPool_;
    /** Attribute-name pool: deque keeps the spelling storage stable, so
     *  the map keys are views of the stored strings. */
    std::deque<std::string> attrNames_;
    std::unordered_map<std::string_view, uint32_t> attrNameIds_;
    /** Reusable interning-key buffer; probes allocate nothing. */
    std::string keyScratch_;
    /** Indexed by OpId::raw(); registered_ marks occupied slots. */
    std::vector<OpInfo> opRegistry_;
    std::vector<uint8_t> registered_;
    std::set<std::string> loadedDialects_;
    IRListener *listener_ = nullptr;
    DiagnosticEngine diagEngine_;
};

} // namespace wsc::ir

#endif // WSC_IR_CONTEXT_H
