#include "ir/diagnostics.h"

#include <iostream>

#include "ir/attributes.h"
#include "ir/context.h"
#include "ir/operation.h"
#include "ir/printer.h"
#include "support/error.h"

namespace wsc::ir {

//===----------------------------------------------------------------------===
// Rendering
//===----------------------------------------------------------------------===

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Remark: return "remark";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
      case Severity::Note: return "note";
    }
    return "error";
}

namespace {

/** The op's symbol name when it carries one. */
std::string
symbolOf(Operation *op)
{
    Attribute sym = op->attr(attrs::kSymName);
    if (sym && isStringAttr(sym))
        return stringAttrValue(sym);
    return {};
}

/** First line of the generic-syntax render, truncated. */
std::string
snippetOf(Operation *op)
{
    constexpr size_t kMaxSnippet = 160;
    std::string text = printOp(op);
    size_t eol = text.find('\n');
    if (eol != std::string::npos)
        text.resize(eol);
    if (text.size() > kMaxSnippet) {
        text.resize(kMaxSnippet);
        text += " ...";
    }
    return text;
}

Diagnostic
locatedAt(Operation *op, Severity severity, std::string msg)
{
    Diagnostic d(severity, std::move(msg));
    d.location = diagnosticLocation(op);
    d.snippet = snippetOf(op);
    return d;
}

void
renderOne(std::ostream &os, const Diagnostic &d, int indent)
{
    for (int i = 0; i < indent; ++i)
        os << "  ";
    os << severityName(d.severity) << ": ";
    if (!d.location.empty())
        os << d.location << ": ";
    os << d.message;
    if (!d.pass.empty())
        os << "  [pass: " << d.pass << "]";
    os << "\n";
    if (!d.snippet.empty()) {
        for (int i = 0; i < indent; ++i)
            os << "  ";
        os << "  at: " << d.snippet << "\n";
    }
    for (const Diagnostic &note : d.notes)
        renderOne(os, note, indent + 1);
}

} // namespace

std::string
diagnosticLocation(Operation *op)
{
    std::string loc = "'" + op->name() + "'";
    if (std::string sym = symbolOf(op); !sym.empty())
        loc += " @" + sym;
    // Attribute the nearest enclosing symbol (or plain parent) so the
    // reader can find the op in a large module.
    for (Operation *parent = op->parentOp(); parent;
         parent = parent->parentOp()) {
        std::string sym = symbolOf(parent);
        if (!sym.empty() || !parent->parentOp()) {
            loc += " in '" + parent->name() + "'";
            if (!sym.empty())
                loc += " @" + sym;
            break;
        }
    }
    return loc;
}

Diagnostic &
Diagnostic::attachNote(std::string msg, Operation *op)
{
    Diagnostic note(Severity::Note, std::move(msg));
    if (op) {
        note.location = diagnosticLocation(op);
        note.snippet = snippetOf(op);
    }
    notes.push_back(std::move(note));
    return notes.back();
}

void
Diagnostic::render(std::ostream &os) const
{
    renderOne(os, *this, 0);
}

std::string
Diagnostic::str() const
{
    std::ostringstream os;
    render(os);
    std::string text = os.str();
    if (!text.empty() && text.back() == '\n')
        text.pop_back();
    return text;
}

//===----------------------------------------------------------------------===
// DiagnosticEngine
//===----------------------------------------------------------------------===

void
DiagnosticEngine::report(Diagnostic &&diag)
{
    if (diag.severity == Severity::Error)
        ++errorCount_;
    if (handlers_.empty()) {
        diag.render(std::cerr);
        return;
    }
    handlers_.back()(std::move(diag));
}

void
DiagnosticEngine::pushHandler(Handler handler)
{
    handlers_.push_back(std::move(handler));
}

void
DiagnosticEngine::popHandler()
{
    WSC_ASSERT(!handlers_.empty(),
               "popHandler on an empty diagnostic-handler stack");
    handlers_.pop_back();
}

ScopedDiagnosticHandler::ScopedDiagnosticHandler(
    Context &ctx, DiagnosticEngine::Handler handler)
    : ScopedDiagnosticHandler(ctx.diagnostics(), std::move(handler))
{
}

ScopedDiagnosticHandler::ScopedDiagnosticHandler(
    DiagnosticEngine &engine, DiagnosticEngine::Handler handler)
    : engine_(engine)
{
    engine_.pushHandler(std::move(handler));
}

ScopedDiagnosticHandler::~ScopedDiagnosticHandler()
{
    engine_.popHandler();
}

DiagnosticCollector::DiagnosticCollector(Context &ctx)
    : DiagnosticCollector(ctx.diagnostics())
{
}

DiagnosticCollector::DiagnosticCollector(DiagnosticEngine &engine)
    : engine_(engine)
{
    engine_.pushHandler(
        [this](Diagnostic &&d) { diags_.push_back(std::move(d)); });
}

DiagnosticCollector::~DiagnosticCollector()
{
    engine_.popHandler();
}

bool
DiagnosticCollector::hadError() const
{
    for (const Diagnostic &d : diags_)
        if (d.severity == Severity::Error)
            return true;
    return false;
}

//===----------------------------------------------------------------------===
// InFlightDiagnostic and emission
//===----------------------------------------------------------------------===

void
InFlightDiagnostic::report()
{
    if (reported_)
        return;
    reported_ = true;
    if (engine_)
        engine_->report(std::move(diag_));
}

Diagnostic
InFlightDiagnostic::take()
{
    reported_ = true;
    return std::move(diag_);
}

InFlightDiagnostic
emitError(Operation *op, std::string msg)
{
    return {&op->context().diagnostics(),
            locatedAt(op, Severity::Error, std::move(msg))};
}

InFlightDiagnostic
emitWarning(Operation *op, std::string msg)
{
    return {&op->context().diagnostics(),
            locatedAt(op, Severity::Warning, std::move(msg))};
}

InFlightDiagnostic
emitRemark(Operation *op, std::string msg)
{
    return {&op->context().diagnostics(),
            locatedAt(op, Severity::Remark, std::move(msg))};
}

InFlightDiagnostic
emitError(Block *block, std::string msg)
{
    Operation *parent = block->parentOp();
    if (parent)
        return emitError(parent, std::move(msg));
    Diagnostic d(Severity::Error, std::move(msg));
    d.location = "<detached block>";
    return {nullptr, std::move(d)};
}

InFlightDiagnostic
emitError(Value value, std::string msg)
{
    if (Operation *def = value.definingOp())
        return emitError(def, std::move(msg));
    Block *owner = value.ownerBlock();
    InFlightDiagnostic diag = emitError(owner, std::move(msg));
    diag << " (block argument #" << value.index() << ")";
    return diag;
}

InFlightDiagnostic
emitError(Context &ctx, std::string msg)
{
    return {&ctx.diagnostics(),
            Diagnostic(Severity::Error, std::move(msg))};
}

//===----------------------------------------------------------------------===
// DiagnosedError / emitFatal
//===----------------------------------------------------------------------===

DiagnosedError::DiagnosedError(Diagnostic diag)
    : diag_(std::move(diag)), hasDiag_(true), rendered_(diag_.str())
{
}

void
emitFatal(Operation *op, const std::string &msg)
{
    emitError(op, msg).report();
    throw DiagnosedError();
}

void
emitFatal(Context &ctx, const std::string &msg)
{
    emitError(ctx, msg).report();
    throw DiagnosedError();
}

} // namespace wsc::ir
