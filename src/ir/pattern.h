/**
 * @file
 * Worklist rewrite-pattern driver. Patterns are callables that inspect an
 * op and either rewrite it (returning true) or leave it alone (false).
 * The driver seeds a worklist with every op, then re-enqueues only ops a
 * rewrite can have invalidated (tracked through the context's IRListener)
 * until a fixpoint is reached.
 */

#ifndef WSC_IR_PATTERN_H
#define WSC_IR_PATTERN_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "ir/builder.h"

namespace wsc::ir {

/**
 * A rewrite pattern. The builder is positioned immediately before `op`.
 * Returns true when the IR was changed. A pattern that erases or replaces
 * `op` must not touch it afterwards.
 */
using RewritePattern = std::function<bool(Operation *op, OpBuilder &b)>;

/** A named pattern, for diagnostics. */
struct NamedPattern
{
    std::string name;
    RewritePattern apply;
};

/**
 * Apply patterns to all ops under `root` (exclusive of root itself) until
 * no pattern applies. Returns true when any change was made. Throws when
 * `maxIterations` rewrites do not converge (a looping pattern).
 */
bool applyPatternsGreedily(Operation *root,
                           const std::vector<NamedPattern> &patterns,
                           int maxIterations = 100000);

/// @name Pattern profiling
/// @{
/** Hit/miss counters of one named pattern across driver runs. */
struct PatternStat
{
    uint64_t hits = 0;   ///< apply() returned true (a rewrite happened)
    uint64_t misses = 0; ///< apply() returned false
};

/**
 * Accumulated per-pattern counters since the last resetPatternStats().
 * The driver counts into a local table and merges once per run (under
 * an internal mutex — concurrent compile-service jobs merge safely),
 * so the rewrite loop stays free of string lookups. The returned
 * reference is unsynchronized: read it only while no driver is
 * running; concurrency-safe reporting goes through dumpPatternStats.
 */
const std::map<std::string, PatternStat> &patternStats();
void resetPatternStats();

/** Print a hits/misses table, widest-traffic patterns first. */
void dumpPatternStats(std::ostream &os);

/** True when the WSC_PATTERN_STATS environment variable is set (the
 *  pipeline then dumps the table to stderr after running). */
bool patternStatsRequested();
/// @}

} // namespace wsc::ir

#endif // WSC_IR_PATTERN_H
