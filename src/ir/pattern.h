/**
 * @file
 * Worklist rewrite-pattern driver. Patterns are callables that inspect an
 * op and either rewrite it (returning true) or leave it alone (false).
 * The driver seeds a worklist with every op, then re-enqueues only ops a
 * rewrite can have invalidated (tracked through the context's IRListener)
 * until a fixpoint is reached.
 */

#ifndef WSC_IR_PATTERN_H
#define WSC_IR_PATTERN_H

#include <functional>
#include <string>
#include <vector>

#include "ir/builder.h"

namespace wsc::ir {

/**
 * A rewrite pattern. The builder is positioned immediately before `op`.
 * Returns true when the IR was changed. A pattern that erases or replaces
 * `op` must not touch it afterwards.
 */
using RewritePattern = std::function<bool(Operation *op, OpBuilder &b)>;

/** A named pattern, for diagnostics. */
struct NamedPattern
{
    std::string name;
    RewritePattern apply;
};

/**
 * Apply patterns to all ops under `root` (exclusive of root itself) until
 * no pattern applies. Returns true when any change was made. Throws when
 * `maxIterations` rewrites do not converge (a looping pattern).
 */
bool applyPatternsGreedily(Operation *root,
                           const std::vector<NamedPattern> &patterns,
                           int maxIterations = 100000);

} // namespace wsc::ir

#endif // WSC_IR_PATTERN_H
