#include "ir/attributes.h"

#include <sstream>

#include "ir/context.h"
#include "ir/intern_key.h"
#include "support/error.h"

namespace wsc::ir {

const std::string &
Attribute::kind() const
{
    WSC_ASSERT(impl_, "kind() on null attribute");
    return impl_->kind;
}

std::string
Attribute::str() const
{
    if (!impl_)
        return "<<null-attr>>";
    const AttrStorage &s = *impl_;
    std::ostringstream os;
    if (s.kind == "int") {
        os << s.i;
        if (s.type)
            os << " : " << s.type.str();
        return os.str();
    }
    if (s.kind == "float") {
        os << s.f;
        if (s.type)
            os << " : " << s.type.str();
        return os.str();
    }
    if (s.kind == "string")
        return "\"" + s.s + "\"";
    if (s.kind == "unit")
        return "unit";
    if (s.kind == "type")
        return s.type.str();
    if (s.kind == "array") {
        os << "[";
        for (size_t i = 0; i < s.elems.size(); ++i)
            os << (i ? ", " : "") << Attribute(s.elems[i]).str();
        os << "]";
        return os.str();
    }
    if (s.kind == "dict") {
        os << "{";
        for (size_t i = 0; i < s.elems.size(); ++i)
            os << (i ? ", " : "") << s.keys[i] << " = "
               << Attribute(s.elems[i]).str();
        os << "}";
        return os.str();
    }
    if (s.kind == "dense") {
        os << "dense<";
        if (s.values.size() == 1) {
            os << s.values[0];
        } else {
            os << "[";
            for (size_t i = 0; i < s.values.size(); ++i)
                os << (i ? ", " : "") << s.values[i];
            os << "]";
        }
        os << "> : " << s.type.str();
        return os.str();
    }
    // Dialect attributes: #kind<...> with generic payload.
    os << "#" << s.kind;
    os << "<" << s.s;
    for (size_t i = 0; i < s.elems.size(); ++i)
        os << (i || !s.s.empty() ? "," : "") << Attribute(s.elems[i]).str();
    os << ">";
    return os.str();
}

/** Serializes `s` into `key` (cleared first); shared with context.cpp. */
void
internalAttrKeyInto(const AttrStorage &s, std::string &key)
{
    key.clear();
    key += s.kind;
    key += '\x01';
    appendRaw(key, s.i);
    appendRaw(key, s.f);
    key += s.s;
    key += '\x01';
    appendRaw(key, s.type.impl());
    for (const AttrStorage *e : s.elems)
        appendRaw(key, e);
    key += '\x01';
    for (const std::string &k : s.keys) {
        key += k;
        key += ',';
    }
    key += '\x01';
    for (double v : s.values)
        appendRaw(key, v);
}

Attribute
getAttr(Context &ctx, const AttrStorage &proto)
{
    return Attribute(ctx.uniqueAttr(proto));
}

Attribute
getIntAttr(Context &ctx, int64_t value, Type type)
{
    AttrStorage s;
    s.kind = "int";
    s.i = value;
    s.type = type;
    return getAttr(ctx, s);
}

Attribute
getFloatAttr(Context &ctx, double value, Type type)
{
    AttrStorage s;
    s.kind = "float";
    s.f = value;
    s.type = type;
    return getAttr(ctx, s);
}

Attribute
getStringAttr(Context &ctx, const std::string &value)
{
    AttrStorage s;
    s.kind = "string";
    s.s = value;
    return getAttr(ctx, s);
}

Attribute
getUnitAttr(Context &ctx)
{
    AttrStorage s;
    s.kind = "unit";
    return getAttr(ctx, s);
}

Attribute
getTypeAttr(Context &ctx, Type type)
{
    AttrStorage s;
    s.kind = "type";
    s.type = type;
    return getAttr(ctx, s);
}

Attribute
getArrayAttr(Context &ctx, const std::vector<Attribute> &elems)
{
    AttrStorage s;
    s.kind = "array";
    for (Attribute a : elems) {
        WSC_ASSERT(a, "null element in array attribute");
        s.elems.push_back(a.impl());
    }
    return getAttr(ctx, s);
}

Attribute
getDictAttr(Context &ctx,
            const std::vector<std::pair<std::string, Attribute>> &entries)
{
    AttrStorage s;
    s.kind = "dict";
    for (const auto &[key, value] : entries) {
        WSC_ASSERT(value, "null value in dict attribute for key " << key);
        s.keys.push_back(key);
        s.elems.push_back(value.impl());
    }
    return getAttr(ctx, s);
}

Attribute
getDenseAttr(Context &ctx, Type shapedType, const std::vector<double> &values)
{
    WSC_ASSERT(isShaped(shapedType),
               "dense attribute requires a shaped type");
    AttrStorage s;
    s.kind = "dense";
    s.type = shapedType;
    s.values = values;
    return getAttr(ctx, s);
}

bool
isIntAttr(Attribute a)
{
    return a && a.kind() == "int";
}

bool
isFloatAttr(Attribute a)
{
    return a && a.kind() == "float";
}

bool
isStringAttr(Attribute a)
{
    return a && a.kind() == "string";
}

bool
isUnitAttr(Attribute a)
{
    return a && a.kind() == "unit";
}

bool
isTypeAttr(Attribute a)
{
    return a && a.kind() == "type";
}

bool
isArrayAttr(Attribute a)
{
    return a && a.kind() == "array";
}

bool
isDictAttr(Attribute a)
{
    return a && a.kind() == "dict";
}

bool
isDenseAttr(Attribute a)
{
    return a && a.kind() == "dense";
}

int64_t
intAttrValue(Attribute a)
{
    WSC_ASSERT(isIntAttr(a), "intAttrValue on " << a.str());
    return a.impl()->i;
}

double
floatAttrValue(Attribute a)
{
    WSC_ASSERT(isFloatAttr(a), "floatAttrValue on " << a.str());
    return a.impl()->f;
}

const std::string &
stringAttrValue(Attribute a)
{
    WSC_ASSERT(isStringAttr(a), "stringAttrValue on " << a.str());
    return a.impl()->s;
}

Type
typeAttrValue(Attribute a)
{
    WSC_ASSERT(isTypeAttr(a), "typeAttrValue on " << a.str());
    return a.impl()->type;
}

std::vector<Attribute>
arrayAttrValue(Attribute a)
{
    WSC_ASSERT(isArrayAttr(a), "arrayAttrValue on " << a.str());
    std::vector<Attribute> out;
    for (const AttrStorage *e : a.impl()->elems)
        out.push_back(Attribute(e));
    return out;
}

Attribute
dictAttrGet(Attribute a, const std::string &key)
{
    WSC_ASSERT(isDictAttr(a), "dictAttrGet on " << a.str());
    const AttrStorage &s = *a.impl();
    for (size_t i = 0; i < s.keys.size(); ++i)
        if (s.keys[i] == key)
            return Attribute(s.elems[i]);
    return Attribute();
}

const std::vector<double> &
denseAttrValues(Attribute a)
{
    WSC_ASSERT(isDenseAttr(a), "denseAttrValues on " << a.str());
    return a.impl()->values;
}

Type
attrType(Attribute a)
{
    WSC_ASSERT(a, "attrType on null attribute");
    return a.impl()->type;
}

Attribute
getIntArrayAttr(Context &ctx, const std::vector<int64_t> &values)
{
    std::vector<Attribute> elems;
    elems.reserve(values.size());
    for (int64_t v : values)
        elems.push_back(getIntAttr(ctx, v));
    return getArrayAttr(ctx, elems);
}

std::vector<int64_t>
intArrayAttrValue(Attribute a)
{
    std::vector<int64_t> out;
    for (Attribute e : arrayAttrValue(a))
        out.push_back(intAttrValue(e));
    return out;
}

} // namespace wsc::ir
