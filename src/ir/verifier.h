/**
 * @file
 * IR structural verifier: SSA visibility, block terminators, parent links
 * and per-op registered invariants.
 *
 * Failures are recoverable: `verify` emits one located diagnostic per
 * problem through the root's context engine and returns ir::failure()
 * instead of terminating the process. `verifyCollect` keeps the legacy
 * plain-string form for tools that want the raw list.
 */

#ifndef WSC_IR_VERIFIER_H
#define WSC_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/diagnostics.h"

namespace wsc::ir {

class Operation;

/** Collect all verification errors under `root` (inclusive), as plain
 *  strings. Emits nothing through the diagnostic engine. */
std::vector<std::string> verifyCollect(Operation *root);

/**
 * Verify `root` and everything beneath it. Each violation is emitted as
 * an error diagnostic located at the offending op; returns failure() if
 * any were found. Never throws, never aborts.
 */
LogicalResult verify(Operation *root);

/** Verify and return true on success (no diagnostics emitted). */
bool verifies(Operation *root);

} // namespace wsc::ir

#endif // WSC_IR_VERIFIER_H
