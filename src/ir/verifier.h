/**
 * @file
 * IR structural verifier: SSA visibility, block terminators, parent links
 * and per-op registered invariants.
 */

#ifndef WSC_IR_VERIFIER_H
#define WSC_IR_VERIFIER_H

#include <string>
#include <vector>

namespace wsc::ir {

class Operation;

/** Collect all verification errors under `root` (inclusive). */
std::vector<std::string> verifyCollect(Operation *root);

/** Verify and throw FatalError listing all diagnostics on failure. */
void verify(Operation *root);

/** Verify and return true on success (no throw). */
bool verifies(Operation *root);

} // namespace wsc::ir

#endif // WSC_IR_VERIFIER_H
