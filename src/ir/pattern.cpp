#include "ir/pattern.h"

#include <algorithm>
#include <mutex>
#include <ostream>
#include <unordered_set>

#include "ir/context.h"
#include "support/env.h"
#include "support/error.h"

namespace wsc::ir {

namespace {

/**
 * Global accumulator behind patternStats(). Drivers are per-context
 * and single-threaded, but the compile service runs one driver per
 * worker concurrently, and they all merge here — so every access to
 * the store takes this mutex.
 */
std::map<std::string, PatternStat> &
patternStatsStore()
{
    static std::map<std::string, PatternStat> stats;
    return stats;
}

std::mutex &
patternStatsMutex()
{
    static std::mutex mu;
    return mu;
}

/**
 * Worklist rewrite driver (see src/ir/README.md).
 *
 * The worklist is seeded with every op under the root in pre-order and
 * drained from the front, so the first pass visits ops in the same order
 * the previous collect-and-rescan driver did. After a successful rewrite
 * only the ops a rewrite can have invalidated are re-enqueued:
 *
 *  - newly attached ops (created, moved or spliced — via notifyAttached),
 *  - ops whose operands were re-pointed (users of replaced values — via
 *    notifyOperandChanged),
 *  - the matched op itself when it survived, and its parent chain's
 *    nearest enclosing op (a rewrite can make an enclosing op's pattern
 *    newly applicable).
 *
 * Destroyed ops are dropped through notifyDestroyed, which removes them
 * from the membership set; stale queue entries are skipped on pop. A
 * popped op is also re-checked to still live under the root, so ops
 * moved into detached temporaries are not rewritten prematurely.
 */
class Worklist : public IRListener
{
  public:
    void
    push(Operation *op)
    {
        if (inList_.insert(op).second)
            queue_.push_back(op);
    }

    /** Next live op, or nullptr when drained. */
    Operation *
    pop()
    {
        while (head_ < queue_.size()) {
            Operation *op = queue_[head_++];
            if (head_ > kCompactAt) {
                queue_.erase(queue_.begin(),
                             queue_.begin() +
                                 static_cast<ptrdiff_t>(head_));
                head_ = 0;
            }
            auto it = inList_.find(op);
            if (it == inList_.end())
                continue; // Erased (or moved) since it was enqueued.
            inList_.erase(it);
            return op;
        }
        return nullptr;
    }

    bool
    destroyedInLastRewrite(Operation *op) const
    {
        return destroyed_.count(op) > 0;
    }

    void clearRewriteLog() { destroyed_.clear(); }

    // --- IRListener -----------------------------------------------------
    void
    notifyAttached(Operation *op) override
    {
        // Erased ops are recycled through the context arena's free lists,
        // so a newly attached op may alias the address of an op destroyed
        // earlier in the same rewrite. Attachment proves it is alive.
        destroyed_.erase(op);
        push(op);
    }

    void
    notifyDestroyed(Operation *op) override
    {
        inList_.erase(op);
        destroyed_.insert(op);
        // Erasing a user changes the use counts of its operands'
        // values: the producers may now be dead, and patterns on the
        // surviving sibling users gated on numUses() may have become
        // applicable. Operand uses are still intact at this point of
        // ~Operation.
        for (const Value &v : op->operands()) {
            if (Operation *def = v.definingOp())
                if (!destroyed_.count(def))
                    push(def);
            for (Operation *user : v.impl()->users)
                if (user != op && !destroyed_.count(user))
                    push(user);
        }
    }

    void notifyOperandChanged(Operation *op) override { push(op); }

    void
    notifyValueUseRemoved(Operation *def) override
    {
        if (destroyed_.count(def))
            return;
        // The producer may be newly dead; its remaining users' use-count
        // gates may be newly satisfied.
        push(def);
        for (unsigned i = 0; i < def->numResults(); ++i)
            for (Operation *user : def->result(i).impl()->users)
                if (!destroyed_.count(user))
                    push(user);
    }

  private:
    static constexpr size_t kCompactAt = 4096;

    std::vector<Operation *> queue_;
    size_t head_ = 0;
    std::unordered_set<Operation *> inList_;
    /** Ops destroyed since clearRewriteLog (pointer identity only). */
    std::unordered_set<Operation *> destroyed_;
};

/** Seed the worklist with all ops strictly below root, pre-order. */
void
seed(Operation *root, Worklist &worklist)
{
    for (unsigned r = 0; r < root->numRegions(); ++r)
        for (Block *block : root->region(r).blocks())
            for (Operation *op : block->operations()) {
                worklist.push(op);
                seed(op, worklist);
            }
}

/** Whether op is attached below root (strictly). */
bool
isUnderRoot(Operation *op, Operation *root)
{
    for (Operation *p = op->parentOp(); p; p = p->parentOp())
        if (p == root)
            return true;
    return false;
}

/** RAII guard installing a listener on a context. */
class ListenerScope
{
  public:
    ListenerScope(Context &ctx, IRListener *listener) : ctx_(ctx)
    {
        WSC_ASSERT(ctx.listener() == nullptr,
                   "nested pattern drivers on one context");
        ctx_.setListener(listener);
    }
    ~ListenerScope() { ctx_.setListener(nullptr); }
    ListenerScope(const ListenerScope &) = delete;
    ListenerScope &operator=(const ListenerScope &) = delete;

  private:
    Context &ctx_;
};

} // namespace

const std::map<std::string, PatternStat> &
patternStats()
{
    return patternStatsStore();
}

void
resetPatternStats()
{
    std::lock_guard<std::mutex> lock(patternStatsMutex());
    patternStatsStore().clear();
}

void
dumpPatternStats(std::ostream &os)
{
    std::vector<std::pair<std::string, PatternStat>> rows;
    {
        std::lock_guard<std::mutex> lock(patternStatsMutex());
        rows.assign(patternStatsStore().begin(),
                    patternStatsStore().end());
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  uint64_t ta = a.second.hits + a.second.misses;
                  uint64_t tb = b.second.hits + b.second.misses;
                  return ta != tb ? ta > tb : a.first < b.first;
              });
    os << "pattern hit/miss counters (worklist rewrite driver):\n";
    for (const auto &[name, stat] : rows)
        os << "  " << name << ": " << stat.hits << " hits, "
           << stat.misses << " misses\n";
}

bool
patternStatsRequested()
{
    return envFlag("WSC_PATTERN_STATS");
}

bool
applyPatternsGreedily(Operation *root,
                      const std::vector<NamedPattern> &patterns,
                      int maxIterations)
{
    OpBuilder builder(root->context());
    Worklist worklist;
    ListenerScope scope(root->context(), &worklist);
    seed(root, worklist);

    // Counters are positional during the run (no string lookups in the
    // rewrite loop) and merged into the named table once at the end —
    // through a scope guard, so a non-convergence panic still reports
    // the diverging pattern's traffic.
    std::vector<PatternStat> counts(patterns.size());
    struct MergeGuard
    {
        const std::vector<NamedPattern> &patterns;
        const std::vector<PatternStat> &counts;
        ~MergeGuard()
        {
            std::lock_guard<std::mutex> lock(patternStatsMutex());
            std::map<std::string, PatternStat> &stats =
                patternStatsStore();
            for (size_t p = 0; p < patterns.size(); ++p) {
                PatternStat &s = stats[patterns[p].name];
                s.hits += counts[p].hits;
                s.misses += counts[p].misses;
            }
        }
    } mergeGuard{patterns, counts};

    bool anyChange = false;
    int rewrites = 0;
    while (Operation *op = worklist.pop()) {
        if (!isUnderRoot(op, root))
            continue;
        for (size_t p = 0; p < patterns.size(); ++p) {
            const NamedPattern &pattern = patterns[p];
            builder.setInsertionPoint(op);
            Operation *parent = op->parentOp();
            worklist.clearRewriteLog();
            if (!pattern.apply(op, builder)) {
                counts[p].misses++;
                continue;
            }
            counts[p].hits++;
            anyChange = true;
            if (++rewrites >= maxIterations)
                panic("applyPatternsGreedily did not converge after " +
                      std::to_string(maxIterations) + " rewrites");
            // Revisit the matched op (another pattern may now apply) and
            // its parent, unless the rewrite destroyed them.
            if (!worklist.destroyedInLastRewrite(op))
                worklist.push(op);
            if (parent && parent != root &&
                !worklist.destroyedInLastRewrite(parent))
                worklist.push(parent);
            break;
        }
    }
    return anyChange;
}

} // namespace wsc::ir
