#include "ir/pattern.h"

#include "ir/context.h"
#include "support/error.h"

namespace wsc::ir {

namespace {

/** Collect all ops strictly below root, pre-order. */
void
collect(Operation *root, std::vector<Operation *> &out)
{
    for (unsigned r = 0; r < root->numRegions(); ++r)
        for (Block *block : root->region(r).blocksVector())
            for (Operation *op : block->opsVector()) {
                out.push_back(op);
                collect(op, out);
            }
}

} // namespace

bool
applyPatternsGreedily(Operation *root,
                      const std::vector<NamedPattern> &patterns,
                      int maxIterations)
{
    OpBuilder builder(root->context());
    bool anyChange = false;
    for (int iter = 0; iter < maxIterations; ++iter) {
        bool changed = false;
        std::vector<Operation *> ops;
        collect(root, ops);
        for (Operation *op : ops) {
            for (const NamedPattern &pattern : patterns) {
                builder.setInsertionPoint(op);
                if (pattern.apply(op, builder)) {
                    changed = true;
                    break; // Op may be gone; rescan from a fresh worklist.
                }
            }
            if (changed)
                break;
        }
        if (!changed)
            return anyChange;
        anyChange = true;
    }
    panic("applyPatternsGreedily did not converge after " +
          std::to_string(maxIterations) + " iterations");
}

} // namespace wsc::ir
