#include "ir/builder.h"

#include "ir/context.h"
#include "support/error.h"

namespace wsc::ir {

void
OpBuilder::setInsertionPointToStart(Block *block)
{
    block_ = block;
    before_ = block->empty() ? nullptr : &block->front();
    hasPoint_ = true;
}

void
OpBuilder::setInsertionPointToEnd(Block *block)
{
    block_ = block;
    before_ = nullptr;
    hasPoint_ = true;
}

void
OpBuilder::setInsertionPoint(Operation *op)
{
    WSC_ASSERT(op->parentBlock(), "setInsertionPoint on detached op");
    block_ = op->parentBlock();
    before_ = op;
    hasPoint_ = true;
}

void
OpBuilder::setInsertionPointAfter(Operation *op)
{
    WSC_ASSERT(op->parentBlock(), "setInsertionPointAfter on detached op");
    block_ = op->parentBlock();
    before_ = op->nextOp();
    hasPoint_ = true;
}

void
OpBuilder::clearInsertionPoint()
{
    block_ = nullptr;
    before_ = nullptr;
    hasPoint_ = false;
}

Operation *
OpBuilder::create(OpId id, const std::vector<Value> &operands,
                  const std::vector<Type> &resultTypes, const AttrList &attrs,
                  unsigned numRegions)
{
    Operation *op = Operation::create(*ctx_, id, operands, resultTypes,
                                      attrs, numRegions);
    if (hasPoint_)
        insert(op);
    return op;
}

Operation *
OpBuilder::createInterned(OpId id, const std::vector<Value> &operands,
                          const std::vector<Type> &resultTypes,
                          const StoredAttrList &attrs, unsigned numRegions)
{
    Operation *op = Operation::createInterned(*ctx_, id, operands,
                                              resultTypes, attrs,
                                              numRegions);
    if (hasPoint_)
        insert(op);
    return op;
}

Operation *
OpBuilder::insert(Operation *op)
{
    WSC_ASSERT(hasPoint_ && block_, "insert without insertion point");
    if (before_ == nullptr) {
        block_->push_back(op);
    } else {
        block_->insertBefore(before_, op);
    }
    return op;
}

Block *
OpBuilder::createBlock(Region &region)
{
    Block *block = region.addBlock();
    setInsertionPointToEnd(block);
    return block;
}

void
replaceOp(Operation *op, const std::vector<Value> &newValues)
{
    WSC_ASSERT(op->numResults() == newValues.size(),
               "replaceOp value count mismatch on " << op->name());
    for (unsigned i = 0; i < op->numResults(); ++i)
        op->result(i).replaceAllUsesWith(newValues[i]);
    op->erase();
}

void
eraseOp(Operation *op)
{
    op->erase();
}

} // namespace wsc::ir
