#include "ir/context.h"

#include <cstring>
#include <deque>
#include <mutex>
#include <ostream>

#include "ir/intern_key.h"

#include "support/error.h"

namespace wsc::ir {

//===----------------------------------------------------------------------===
// OpId interning
//===----------------------------------------------------------------------===

namespace {

/**
 * Process-wide op-name pool. A deque keeps the interned strings at stable
 * addresses, so the index map can key string_views into them and OpId::str
 * can hand out references that never move.
 */
struct OpNamePool
{
    std::mutex mu;
    std::unordered_map<std::string_view, uint32_t> index;
    std::deque<std::string> names;
};

OpNamePool &
opNamePool()
{
    static OpNamePool pool;
    return pool;
}

} // namespace

OpId
OpId::get(std::string_view name)
{
    OpNamePool &pool = opNamePool();
    std::lock_guard<std::mutex> lock(pool.mu);
    auto it = pool.index.find(name);
    OpId id;
    if (it != pool.index.end()) {
        id.id_ = it->second;
        return id;
    }
    id.id_ = static_cast<uint32_t>(pool.names.size());
    pool.names.emplace_back(name);
    pool.index.emplace(pool.names.back(), id.id_);
    return id;
}

const std::string &
OpId::str() const
{
    WSC_ASSERT(valid(), "str() on an invalid OpId");
    // The deque guarantees the returned reference stays valid forever,
    // but its internal block map mutates on insert, so reads take the
    // pool lock too.
    OpNamePool &pool = opNamePool();
    std::lock_guard<std::mutex> lock(pool.mu);
    return pool.names[id_];
}

std::ostream &
operator<<(std::ostream &os, OpId id)
{
    return os << (id.valid() ? id.str() : std::string("<invalid-op>"));
}

//===----------------------------------------------------------------------===
// Context
//===----------------------------------------------------------------------===

// Defined in attributes.cpp; serializes an AttrStorage into an interning key.
void internalAttrKeyInto(const AttrStorage &s, std::string &key);

static void
typeKeyInto(const TypeStorage &s, std::string &key)
{
    key.clear();
    key += s.kind;
    key += '\x01';
    for (int64_t v : s.ints)
        appendRaw(key, v);
    key += '\x01';
    for (const TypeStorage *t : s.types)
        appendRaw(key, t);
    key += '\x01';
    for (const std::string &str : s.strs) {
        key += str;
        key += ',';
    }
}

Context::Context()
{
    // Pre-intern the well-known attribute names so the attrs::k*
    // constants are valid in every context (ids are assigned in array
    // order, starting from 0).
    for (const char *name : attrs::kWellKnownNames) {
        AttrNameId id = internAttrName(name);
        WSC_ASSERT(id.raw() < std::size(attrs::kWellKnownNames),
                   "well-known attribute ids must be dense");
    }
}

void
Context::reset()
{
    WSC_ASSERT(diagEngine_.handlerDepth() == 0,
               "Context::reset with a diagnostic handler still installed");
    // Same teardown order as ~Context: registered destructors first
    // (interned storage with heap members), then every structure whose
    // keys or values point into arena memory, then the arena rewind.
    for (auto it = arenaDtors_.rbegin(); it != arenaDtors_.rend(); ++it)
        it->first(it->second);
    arenaDtors_.clear();
    typePool_.clear();
    attrPool_.clear();
    attrNames_.clear();
    attrNameIds_.clear();
    keyScratch_.clear();
    keyScratch_.shrink_to_fit();
    listener_ = nullptr;
    diagEngine_.reset();
    arena_.reset();
    // The op registry and loaded-dialect marks survive (OpIds are
    // process-stable and the hooks are stateless), so a recycled
    // context needs no dialect re-registration. Re-intern the
    // well-known attribute names in the canonical order.
    for (const char *name : attrs::kWellKnownNames)
        internAttrName(name);
}

Context::~Context()
{
    // Interned storage is arena-placed and never individually freed; run
    // the registered destructors (newest first) before the members —
    // including the arena pages — are torn down.
    for (auto it = arenaDtors_.rbegin(); it != arenaDtors_.rend(); ++it)
        it->first(it->second);
}

/** Copies the scratch key into the arena, returning a stable view. */
static std::string_view
internKeyBytes(Arena &arena, const std::string &key)
{
    if (key.empty())
        return {};
    char *mem = static_cast<char *>(arena.allocate(key.size()));
    std::memcpy(mem, key.data(), key.size());
    return {mem, key.size()};
}

const TypeStorage *
Context::uniqueType(const TypeStorage &proto)
{
    typeKeyInto(proto, keyScratch_);
    auto it = typePool_.find(std::string_view(keyScratch_));
    if (it != typePool_.end())
        return it->second;
    const TypeStorage *storage = allocate<TypeStorage>(proto);
    typePool_.emplace(internKeyBytes(arena_, keyScratch_), storage);
    return storage;
}

const AttrStorage *
Context::uniqueAttr(const AttrStorage &proto)
{
    internalAttrKeyInto(proto, keyScratch_);
    auto it = attrPool_.find(std::string_view(keyScratch_));
    if (it != attrPool_.end())
        return it->second;
    const AttrStorage *storage = allocate<AttrStorage>(proto);
    attrPool_.emplace(internKeyBytes(arena_, keyScratch_), storage);
    return storage;
}

AttrNameId
Context::internAttrName(std::string_view name)
{
    auto it = attrNameIds_.find(name);
    if (it != attrNameIds_.end())
        return AttrNameId(it->second);
    uint32_t id = static_cast<uint32_t>(attrNames_.size());
    attrNames_.emplace_back(name);
    attrNameIds_.emplace(std::string_view(attrNames_.back()), id);
    return AttrNameId(id);
}

AttrNameId
Context::findAttrName(std::string_view name) const
{
    auto it = attrNameIds_.find(name);
    return it == attrNameIds_.end() ? AttrNameId()
                                    : AttrNameId(it->second);
}

const std::string &
Context::attrName(AttrNameId id) const
{
    WSC_ASSERT(id.valid() && id.raw() < attrNames_.size(),
               "invalid attribute-name id " << id.raw());
    return attrNames_[id.raw()];
}

void
Context::registerOp(OpId id, OpInfo info)
{
    WSC_ASSERT(id.valid(), "registerOp with invalid id");
    if (id.raw() >= opRegistry_.size()) {
        opRegistry_.resize(id.raw() + 1);
        registered_.resize(id.raw() + 1, 0);
    }
    opRegistry_[id.raw()] = std::move(info);
    registered_[id.raw()] = 1;
}

bool
Context::markDialectLoaded(const std::string &dialect)
{
    return loadedDialects_.insert(dialect).second;
}

} // namespace wsc::ir
