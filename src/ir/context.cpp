#include "ir/context.h"

#include <sstream>

#include "support/error.h"

namespace wsc::ir {

// Defined in attributes.cpp; serializes an AttrStorage into an interning key.
std::string internalAttrKey(const AttrStorage &s);

static std::string
typeKey(const TypeStorage &s)
{
    std::ostringstream os;
    os << s.kind << '\x01';
    for (int64_t v : s.ints)
        os << v << ',';
    os << '\x01';
    for (const TypeStorage *t : s.types)
        os << t << ',';
    os << '\x01';
    for (const std::string &str : s.strs)
        os << str << ',';
    return os.str();
}

const TypeStorage *
Context::uniqueType(const TypeStorage &proto)
{
    std::string key = typeKey(proto);
    auto it = typePool_.find(key);
    if (it != typePool_.end())
        return it->second.get();
    auto storage = std::make_unique<TypeStorage>(proto);
    const TypeStorage *raw = storage.get();
    typePool_.emplace(std::move(key), std::move(storage));
    return raw;
}

const AttrStorage *
Context::uniqueAttr(const AttrStorage &proto)
{
    std::string key = internalAttrKey(proto);
    auto it = attrPool_.find(key);
    if (it != attrPool_.end())
        return it->second.get();
    auto storage = std::make_unique<AttrStorage>(proto);
    const AttrStorage *raw = storage.get();
    attrPool_.emplace(std::move(key), std::move(storage));
    return raw;
}

void
Context::registerOp(const std::string &name, OpInfo info)
{
    opRegistry_[name] = std::move(info);
}

const OpInfo *
Context::opInfo(const std::string &name) const
{
    auto it = opRegistry_.find(name);
    return it == opRegistry_.end() ? nullptr : &it->second;
}

bool
Context::isRegisteredOp(const std::string &name) const
{
    return opRegistry_.count(name) > 0;
}

bool
Context::markDialectLoaded(const std::string &dialect)
{
    return loadedDialects_.insert(dialect).second;
}

} // namespace wsc::ir
