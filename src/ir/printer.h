/**
 * @file
 * Textual printer producing MLIR generic-syntax output. Used for debugging
 * and for structural assertions in tests.
 */

#ifndef WSC_IR_PRINTER_H
#define WSC_IR_PRINTER_H

#include <ostream>
#include <string>

namespace wsc::ir {

class Operation;

/** Print `op` (recursively) to the stream in generic MLIR syntax. */
void printOp(Operation *op, std::ostream &os);

/** Print `op` to a string. */
std::string printOp(Operation *op);

} // namespace wsc::ir

#endif // WSC_IR_PRINTER_H
