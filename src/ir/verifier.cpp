#include "ir/verifier.h"

#include <unordered_set>

#include "ir/context.h"
#include "ir/operation.h"

namespace wsc::ir {

namespace {

/** Walks the IR accumulating (op, message) violations. */
class Verifier
{
  public:
    struct Violation
    {
        Operation *op;
        std::string message;
    };

    void
    error(Operation *op, std::string msg)
    {
        violations_.push_back({op, std::move(msg)});
    }

    /**
     * Verify `op`, with `visible` holding the set of values defined in
     * enclosing scopes (dominating this op).
     */
    void
    verifyOp(Operation *op, std::unordered_set<ValueImpl *> &visible)
    {
        // Operand visibility (SSA dominance in structured IR).
        for (unsigned i = 0; i < op->numOperands(); ++i) {
            Value v = op->operand(i);
            if (!visible.count(v.impl())) {
                error(op, "operand #" + std::to_string(i) +
                              " is not visible at its use (SSA violation)");
            }
        }
        // Parent links of regions/blocks.
        for (unsigned r = 0; r < op->numRegions(); ++r) {
            Region &region = op->region(r);
            if (region.parentOp() != op)
                error(op, "region parent link corrupted");
            for (Block *block : region.blocks()) {
                if (block->parentRegion() != &region)
                    error(op, "block parent link corrupted");
                verifyBlock(block, visible);
            }
        }
        // Registered per-op invariants.
        const OpInfo *info = op->context().opInfo(op->opId());
        if (info && info->verify) {
            std::string msg = info->verify(op);
            if (!msg.empty())
                error(op, std::move(msg));
        }
    }

    void
    verifyBlock(Block *block, std::unordered_set<ValueImpl *> &visible)
    {
        std::vector<ValueImpl *> introduced;
        for (unsigned i = 0; i < block->numArguments(); ++i) {
            visible.insert(block->argument(i).impl());
            introduced.push_back(block->argument(i).impl());
        }
        size_t i = 0, numOps = block->size();
        for (Operation *op : block->operations()) {
            if (op->parentBlock() != block)
                error(op, "op parent link corrupted");
            if (op->isTerminator() && i + 1 != numOps)
                error(op, "terminator is not the last op in its block");
            verifyOp(op, visible);
            for (unsigned r = 0; r < op->numResults(); ++r) {
                visible.insert(op->result(r).impl());
                introduced.push_back(op->result(r).impl());
            }
            ++i;
        }
        for (ValueImpl *v : introduced)
            visible.erase(v);
    }

    std::vector<Violation> takeViolations() { return std::move(violations_); }

  private:
    std::vector<Violation> violations_;
};

std::vector<Verifier::Violation>
collectViolations(Operation *root)
{
    Verifier verifier;
    std::unordered_set<ValueImpl *> visible;
    verifier.verifyOp(root, visible);
    return verifier.takeViolations();
}

} // namespace

std::vector<std::string>
verifyCollect(Operation *root)
{
    std::vector<std::string> errors;
    for (const Verifier::Violation &v : collectViolations(root))
        errors.push_back("'" + v.op->name() + "': " + v.message);
    return errors;
}

LogicalResult
verify(Operation *root)
{
    std::vector<Verifier::Violation> violations = collectViolations(root);
    for (Verifier::Violation &v : violations)
        emitError(v.op) << v.message;
    return violations.empty() ? success() : failure();
}

bool
verifies(Operation *root)
{
    return collectViolations(root).empty();
}

} // namespace wsc::ir
