#include "ir/operation.h"

#include <algorithm>
#include <cstring>
#include <new>
#include <utility>

#include "ir/context.h"
#include "ir/printer.h"
#include "support/error.h"

namespace wsc::ir {

//===----------------------------------------------------------------------===
// UseList
//===----------------------------------------------------------------------===

void
UseList::push_back(Operation *op, Context &ctx)
{
    if (size_ == cap_) {
        uint32_t newCap = cap_ * 2;
        auto **arr = static_cast<Operation **>(
            ctx.allocateBytes(newCap * sizeof(Operation *)));
        std::memcpy(arr, data(), size_ * sizeof(Operation *));
        if (spill_)
            ctx.deallocateBytes(spill_, cap_ * sizeof(Operation *));
        spill_ = arr;
        cap_ = newCap;
    }
    data()[size_++] = op;
}

void
UseList::eraseOne(Operation *op)
{
    Operation **arr = data();
    for (uint32_t i = 0; i < size_; ++i) {
        if (arr[i] == op) {
            std::memmove(arr + i, arr + i + 1,
                         (size_ - i - 1) * sizeof(Operation *));
            --size_;
            return;
        }
    }
    panic("use-list corruption: erasing an unrecorded use");
}

//===----------------------------------------------------------------------===
// Value
//===----------------------------------------------------------------------===

Type
Value::type() const
{
    WSC_ASSERT(impl_, "type() on null value");
    return impl_->type;
}

void
Value::setType(Type newType)
{
    WSC_ASSERT(impl_ && newType, "setType requires a valid value and type");
    impl_->type = newType;
}

Operation *
Value::definingOp() const
{
    WSC_ASSERT(impl_, "definingOp() on null value");
    return impl_->definingOp;
}

Block *
Value::ownerBlock() const
{
    WSC_ASSERT(impl_, "ownerBlock() on null value");
    return impl_->ownerBlock;
}

bool
Value::isBlockArgument() const
{
    WSC_ASSERT(impl_, "isBlockArgument() on null value");
    return impl_->ownerBlock != nullptr;
}

unsigned
Value::index() const
{
    WSC_ASSERT(impl_, "index() on null value");
    return impl_->index;
}

std::vector<Operation *>
Value::users() const
{
    WSC_ASSERT(impl_, "users() on null value");
    std::vector<Operation *> unique;
    for (Operation *user : impl_->users)
        if (std::find(unique.begin(), unique.end(), user) == unique.end())
            unique.push_back(user);
    return unique;
}

bool
Value::hasUses() const
{
    WSC_ASSERT(impl_, "hasUses() on null value");
    return !impl_->users.empty();
}

size_t
Value::numUses() const
{
    WSC_ASSERT(impl_, "numUses() on null value");
    return impl_->users.size();
}

void
Value::replaceAllUsesWith(Value other)
{
    WSC_ASSERT(impl_ && other, "replaceAllUsesWith requires valid values");
    if (*this == other)
        return;
    // Users mutate as we go; snapshot first.
    std::vector<Operation *> users(impl_->users.begin(),
                                   impl_->users.end());
    for (Operation *user : users) {
        for (unsigned i = 0, e = user->numOperands(); i < e; ++i)
            if (user->operand(i) == *this)
                user->setOperand(i, other);
    }
}

//===----------------------------------------------------------------------===
// StoredAttrList
//===----------------------------------------------------------------------===

void
StoredAttrList::grow(Context &ctx, size_t minCap)
{
    size_t newCap = std::max<size_t>(cap_ ? size_t{cap_} * 2 : 2, minCap);
    auto *data = static_cast<StoredAttr *>(
        ctx.allocateBytes(newCap * sizeof(StoredAttr)));
    for (uint32_t i = 0; i < size_; ++i) {
        new (data + i) StoredAttr(std::move(data_[i]));
        data_[i].~StoredAttr();
    }
    if (data_)
        ctx.deallocateBytes(data_, cap_ * sizeof(StoredAttr));
    data_ = data;
    cap_ = static_cast<uint32_t>(newCap);
}

void
StoredAttrList::reserve(Context &ctx, size_t cap)
{
    if (cap > cap_)
        grow(ctx, cap);
}

void
StoredAttrList::insertAt(Context &ctx, size_t pos, StoredAttr entry)
{
    if (size_ == cap_)
        grow(ctx, size_ + 1);
    new (data_ + size_) StoredAttr();
    for (size_t i = size_; i > pos; --i)
        data_[i] = data_[i - 1];
    data_[pos] = std::move(entry);
    ++size_;
}

void
StoredAttrList::eraseAt(size_t pos)
{
    for (size_t i = pos; i + 1 < size_; ++i)
        data_[i] = data_[i + 1];
    data_[--size_].~StoredAttr();
}

void
StoredAttrList::destroy(Context &ctx)
{
    for (uint32_t i = 0; i < size_; ++i)
        data_[i].~StoredAttr();
    if (data_)
        ctx.deallocateBytes(data_, cap_ * sizeof(StoredAttr));
    data_ = nullptr;
    size_ = 0;
    cap_ = 0;
}

//===----------------------------------------------------------------------===
// ArgList
//===----------------------------------------------------------------------===

void
ArgList::grow(Context &ctx)
{
    size_t newCap = cap_ ? size_t{cap_} * 2 : 2;
    auto **data = static_cast<ValueImpl **>(
        ctx.allocateBytes(newCap * sizeof(ValueImpl *)));
    for (uint32_t i = 0; i < size_; ++i)
        data[i] = data_[i];
    if (data_)
        ctx.deallocateBytes(data_, cap_ * sizeof(ValueImpl *));
    data_ = data;
    cap_ = static_cast<uint32_t>(newCap);
}

void
ArgList::push_back(Context &ctx, ValueImpl *v)
{
    if (size_ == cap_)
        grow(ctx);
    data_[size_++] = v;
}

void
ArgList::eraseAt(size_t pos)
{
    for (size_t i = pos; i + 1 < size_; ++i)
        data_[i] = data_[i + 1];
    --size_;
}

void
ArgList::destroy(Context &ctx)
{
    if (data_)
        ctx.deallocateBytes(data_, cap_ * sizeof(ValueImpl *));
    data_ = nullptr;
    size_ = 0;
    cap_ = 0;
}

//===----------------------------------------------------------------------===
// Operation
//===----------------------------------------------------------------------===

Operation::Operation(Context &ctx, OpId id) : ctx_(&ctx), id_(id) {}

Value *
Operation::inlineOperandsBeginImpl() const
{
    return reinterpret_cast<Value *>(regionsBegin() + numRegions_);
}

Operation *
Operation::create(Context &ctx, OpId id, const std::vector<Value> &operands,
                  const std::vector<Type> &resultTypes, const AttrList &attrs,
                  unsigned numRegions)
{
    // One arena block: op header, result ValueImpls, Regions and the
    // initial operand array (see the layout note in operation.h).
    size_t bytes = sizeof(Operation) +
                   resultTypes.size() * sizeof(ValueImpl) +
                   numRegions * sizeof(Region) +
                   operands.size() * sizeof(Value);
    void *mem = ctx.allocateBytes(bytes);
    auto *op = new (mem) Operation(ctx, id);
    op->allocSize_ = static_cast<uint32_t>(bytes);
    op->numResults_ = static_cast<uint32_t>(resultTypes.size());
    for (uint32_t i = 0; i < op->numResults_; ++i) {
        WSC_ASSERT(resultTypes[i], "null result type creating " << id.str());
        ValueImpl *impl = new (op->resultsBegin() + i) ValueImpl();
        impl->type = resultTypes[i];
        impl->definingOp = op;
        impl->index = i;
    }
    op->numRegions_ = numRegions;
    for (uint32_t i = 0; i < numRegions; ++i)
        new (op->regionsBegin() + i) Region(op);
    op->operands_ = op->inlineOperandsBegin();
    op->operandCap_ = static_cast<uint32_t>(operands.size());
    for (Value v : operands) {
        WSC_ASSERT(v, "null operand creating " << id.str());
        new (op->operands_ + op->numOperands_++) Value(v);
        op->addUse(v);
    }
    op->attrs_.reserve(ctx, attrs.size());
    for (const auto &[key, value] : attrs)
        op->setAttr(key, value);
    return op;
}

Operation *
Operation::createInterned(Context &ctx, OpId id,
                          const std::vector<Value> &operands,
                          const std::vector<Type> &resultTypes,
                          const StoredAttrList &attrs, unsigned numRegions)
{
    Operation *op =
        create(ctx, id, operands, resultTypes, AttrList{}, numRegions);
    op->attrs_.reserve(ctx, attrs.size());
    for (const StoredAttr &a : attrs)
        op->setAttr(a.name, a.value);
    return op;
}

void
Operation::destroy(Operation *op)
{
    WSC_ASSERT(op->parent_ == nullptr, "destroy() on attached op");
    Context &ctx = *op->ctx_;
    uint32_t bytes = op->allocSize_;
    op->~Operation();
    ctx.deallocateBytes(op, bytes);
}

Operation::~Operation()
{
    if (IRListener *listener = ctx_->listener())
        listener->notifyDestroyed(this);
    // Destroy nested regions before dropping operand uses so inner ops
    // (destroyed region-by-region) unregister their own references while
    // the values they may use in enclosing scopes are still alive.
    for (uint32_t i = numRegions_; i > 0; --i)
        regionsBegin()[i - 1].~Region();
    numRegions_ = 0;
    for (uint32_t i = 0; i < numOperands_; ++i)
        removeUse(operands_[i]);
    numOperands_ = 0;
    if (operandsOwned_)
        ctx_->deallocateBytes(operands_,
                              operandCap_ * sizeof(Value));
    for (uint32_t i = 0; i < numResults_; ++i) {
        ValueImpl &result = resultsBegin()[i];
        WSC_ASSERT(result.users.empty(),
                   "destroying op `" << name() << "` with live result uses");
        result.~ValueImpl();
    }
    numResults_ = 0;
    attrs_.destroy(*ctx_);
}

Value
Operation::operand(unsigned i) const
{
    WSC_ASSERT(i < numOperands_,
               "operand index " << i << " out of range on " << name());
    return operands_[i];
}

void
Operation::addUse(Value v)
{
    v.impl()->users.push_back(this, *ctx_);
}

void
Operation::removeUse(Value v)
{
    v.impl()->users.eraseOne(this);
}

void
Operation::notifyOperandChanged()
{
    if (IRListener *listener = ctx_->listener())
        listener->notifyOperandChanged(this);
}

void
Operation::notifyUseRemoved(Value v)
{
    IRListener *listener = ctx_->listener();
    if (listener && !v.isBlockArgument())
        listener->notifyValueUseRemoved(v.definingOp());
}

void
Operation::setOperand(unsigned i, Value v)
{
    WSC_ASSERT(i < numOperands_, "setOperand out of range on " << name());
    WSC_ASSERT(v, "setOperand with null value on " << name());
    Value old = operands_[i];
    removeUse(old);
    operands_[i] = v;
    addUse(v);
    notifyOperandChanged();
    if (old != v)
        notifyUseRemoved(old);
}

void
Operation::setOperands(const std::vector<Value> &values)
{
    std::vector<Value> old(operands_, operands_ + numOperands_);
    for (uint32_t i = 0; i < numOperands_; ++i)
        removeUse(operands_[i]);
    numOperands_ = 0;
    for (Value v : values)
        appendOperand(v);
    for (Value v : old)
        notifyUseRemoved(v);
}

void
Operation::growOperands(uint32_t minCap)
{
    uint32_t newCap = operandCap_ ? operandCap_ * 2 : 4;
    if (newCap < minCap)
        newCap = minCap;
    Value *arr = static_cast<Value *>(
        ctx_->allocateBytes(newCap * sizeof(Value)));
    std::memcpy(arr, operands_, numOperands_ * sizeof(Value));
    if (operandsOwned_)
        ctx_->deallocateBytes(operands_, operandCap_ * sizeof(Value));
    operands_ = arr;
    operandCap_ = newCap;
    operandsOwned_ = 1;
}

void
Operation::appendOperand(Value v)
{
    WSC_ASSERT(v, "appendOperand with null value on " << name());
    if (numOperands_ == operandCap_)
        growOperands(numOperands_ + 1);
    new (operands_ + numOperands_++) Value(v);
    addUse(v);
    notifyOperandChanged();
}

void
Operation::eraseOperand(unsigned i)
{
    WSC_ASSERT(i < numOperands_,
               "eraseOperand out of range on " << name());
    Value old = operands_[i];
    removeUse(old);
    std::memmove(operands_ + i, operands_ + i + 1,
                 (numOperands_ - i - 1) * sizeof(Value));
    --numOperands_;
    notifyOperandChanged();
    notifyUseRemoved(old);
}

void
Operation::dropAllReferences()
{
    for (uint32_t i = 0; i < numOperands_; ++i)
        removeUse(operands_[i]);
    numOperands_ = 0;
    for (uint32_t r = 0; r < numRegions_; ++r)
        for (Block *block : regionsBegin()[r].blocks())
            for (Operation *op : block->operations())
                op->dropAllReferences();
}

Value
Operation::result(unsigned i) const
{
    WSC_ASSERT(i < numResults_,
               "result index " << i << " out of range on " << name());
    return Value(resultsBegin() + i);
}

std::vector<Value>
Operation::results() const
{
    std::vector<Value> out;
    out.reserve(numResults_);
    for (uint32_t i = 0; i < numResults_; ++i)
        out.push_back(Value(resultsBegin() + i));
    return out;
}

bool
Operation::hasResultUses() const
{
    for (uint32_t i = 0; i < numResults_; ++i)
        if (!resultsBegin()[i].users.empty())
            return true;
    return false;
}

namespace {

/** First attrs_ entry with name id >= `key` (sorted by id). */
StoredAttrList::const_iterator
attrLowerBound(const StoredAttrList &attrs, AttrNameId key)
{
    return std::lower_bound(attrs.begin(), attrs.end(), key,
                            [](const StoredAttr &entry, AttrNameId k) {
                                return entry.name < k;
                            });
}

} // namespace

Attribute
Operation::attr(AttrNameId key) const
{
    if (!key.valid())
        return Attribute();
    auto it = attrLowerBound(attrs_, key);
    return it != attrs_.end() && it->name == key ? it->value
                                                 : Attribute();
}

void
Operation::setAttr(AttrNameId key, Attribute value)
{
    WSC_ASSERT(value, "setAttr(" << ctx_->attrName(key)
                                 << ") with null attribute");
    auto it = attrLowerBound(attrs_, key);
    size_t pos = static_cast<size_t>(it - attrs_.begin());
    if (it != attrs_.end() && it->name == key) {
        attrs_.setValueAt(pos, value);
        return;
    }
    attrs_.insertAt(*ctx_, pos, {key, value});
}

void
Operation::removeAttr(AttrNameId key)
{
    if (!key.valid())
        return;
    auto it = attrLowerBound(attrs_, key);
    if (it != attrs_.end() && it->name == key)
        attrs_.eraseAt(static_cast<size_t>(it - attrs_.begin()));
}

Attribute
Operation::attr(const std::string &key) const
{
    return attr(ctx_->findAttrName(key));
}

bool
Operation::hasAttr(const std::string &key) const
{
    return bool(attr(key));
}

void
Operation::setAttr(const std::string &key, Attribute value)
{
    setAttr(ctx_->internAttrName(key), value);
}

void
Operation::removeAttr(const std::string &key)
{
    removeAttr(ctx_->findAttrName(key));
}

const std::string &
Operation::attrKeyName(AttrNameId key) const
{
    return ctx_->attrName(key);
}

int64_t
Operation::intAttr(const std::string &key) const
{
    Attribute a = attr(key);
    WSC_ASSERT(a, "missing int attribute `" << key << "` on " << name());
    return intAttrValue(a);
}

int64_t
Operation::intAttr(AttrNameId key) const
{
    Attribute a = attr(key);
    WSC_ASSERT(a, "missing int attribute `" << ctx_->attrName(key)
                                            << "` on " << name());
    return intAttrValue(a);
}

const std::string &
Operation::strAttr(const std::string &key) const
{
    Attribute a = attr(key);
    WSC_ASSERT(a, "missing string attribute `" << key << "` on " << name());
    return stringAttrValue(a);
}

const std::string &
Operation::strAttr(AttrNameId key) const
{
    Attribute a = attr(key);
    WSC_ASSERT(a, "missing string attribute `"
                      << ctx_->attrName(key) << "` on " << name());
    return stringAttrValue(a);
}

Region &
Operation::region(unsigned i) const
{
    WSC_ASSERT(i < numRegions_,
               "region index " << i << " out of range on " << name());
    return regionsBegin()[i];
}

Operation *
Operation::parentOp() const
{
    return parent_ ? parent_->parentOp() : nullptr;
}

Operation *
Operation::parentOf(OpId id) const
{
    for (auto *op = const_cast<Operation *>(this); op; op = op->parentOp())
        if (op->id_ == id)
            return op;
    return nullptr;
}

void
Operation::erase()
{
    WSC_ASSERT(parent_, "erase() on detached op " << name());
    WSC_ASSERT(!hasResultUses(),
               "erase() on op `" << name() << "` with live result uses");
    removeFromParent();
    destroy(this);
}

void
Operation::removeFromParent()
{
    WSC_ASSERT(parent_, "removeFromParent() on detached op");
    parent_->unlink(this);
    parent_ = nullptr;
}

void
Operation::moveBefore(Operation *other)
{
    WSC_ASSERT(other->parent_, "moveBefore target is detached");
    removeFromParent();
    other->parent_->insertBefore(other, this);
}

void
Operation::moveToEnd(Block *block)
{
    removeFromParent();
    block->push_back(this);
}

Operation *
Operation::nextOp() const
{
    WSC_ASSERT(parent_, "nextOp() on detached op");
    return nextInBlock_;
}

Operation *
Operation::prevOp() const
{
    WSC_ASSERT(parent_, "prevOp() on detached op");
    return prevInBlock_;
}

void
Operation::walk(const std::function<void(Operation *)> &fn)
{
    fn(this);
    for (uint32_t r = 0; r < numRegions_; ++r)
        for (Block *block : regionsBegin()[r].blocks())
            for (Operation *op : block->operations())
                op->walk(fn);
}

bool
Operation::isTerminator() const
{
    const OpInfo *info = ctx_->opInfo(id_);
    return info && info->isTerminator;
}

std::string
Operation::str() const
{
    return printOp(const_cast<Operation *>(this));
}

//===----------------------------------------------------------------------===
// Block
//===----------------------------------------------------------------------===

Block::~Block()
{
    // Destroy ops from the back so that each op's operands (earlier ops'
    // results or block arguments) are still alive when it unregisters its
    // uses.
    while (ops_.tail_) {
        Operation *op = ops_.tail_;
        unlink(op);
        op->parent_ = nullptr;
        Operation::destroy(op);
    }
    Context &ctx = parent_->parentOp()->context();
    for (ValueImpl *impl : args_) {
        impl->~ValueImpl();
        ctx.deallocateBytes(impl, sizeof(ValueImpl));
    }
    args_.destroy(ctx);
}

void
Block::unlink(Operation *op)
{
    WSC_ASSERT(op->parent_ == this, "unlink of op from another block");
    if (op->prevInBlock_)
        op->prevInBlock_->nextInBlock_ = op->nextInBlock_;
    else
        ops_.head_ = op->nextInBlock_;
    if (op->nextInBlock_)
        op->nextInBlock_->prevInBlock_ = op->prevInBlock_;
    else
        ops_.tail_ = op->prevInBlock_;
    op->prevInBlock_ = nullptr;
    op->nextInBlock_ = nullptr;
    --ops_.size_;
}

void
Block::link(Operation *before, Operation *op)
{
    if (before == nullptr) {
        op->prevInBlock_ = ops_.tail_;
        op->nextInBlock_ = nullptr;
        if (ops_.tail_)
            ops_.tail_->nextInBlock_ = op;
        else
            ops_.head_ = op;
        ops_.tail_ = op;
    } else {
        op->prevInBlock_ = before->prevInBlock_;
        op->nextInBlock_ = before;
        if (before->prevInBlock_)
            before->prevInBlock_->nextInBlock_ = op;
        else
            ops_.head_ = op;
        before->prevInBlock_ = op;
    }
    ++ops_.size_;
    op->parent_ = this;
}

Operation *
Block::parentOp() const
{
    return parent_ ? parent_->parentOp() : nullptr;
}

Value
Block::addArgument(Type type)
{
    WSC_ASSERT(type, "addArgument with null type");
    Context &ctx = parent_->parentOp()->context();
    auto *impl = new (ctx.allocateBytes(sizeof(ValueImpl))) ValueImpl();
    impl->type = type;
    impl->ownerBlock = this;
    impl->index = static_cast<unsigned>(args_.size());
    args_.push_back(ctx, impl);
    return Value(impl);
}

Value
Block::argument(unsigned i) const
{
    WSC_ASSERT(i < args_.size(), "block argument index out of range");
    return Value(args_[i]);
}

std::vector<Value>
Block::arguments() const
{
    std::vector<Value> out;
    out.reserve(args_.size());
    for (ValueImpl *a : args_)
        out.push_back(Value(a));
    return out;
}

void
Block::eraseArgument(unsigned i)
{
    WSC_ASSERT(i < args_.size(), "eraseArgument index out of range");
    WSC_ASSERT(args_[i]->users.empty(),
               "eraseArgument on argument with live uses");
    Context &ctx = parent_->parentOp()->context();
    ValueImpl *impl = args_[i];
    args_.eraseAt(i);
    impl->~ValueImpl();
    ctx.deallocateBytes(impl, sizeof(ValueImpl));
    for (unsigned j = i; j < args_.size(); ++j)
        args_[j]->index = j;
}

Operation *
Block::terminator() const
{
    WSC_ASSERT(!ops_.empty(), "terminator() on empty block");
    return &ops_.back();
}

void
Block::push_back(Operation *op)
{
    WSC_ASSERT(op->parent_ == nullptr, "push_back of attached op");
    link(nullptr, op);
    if (IRListener *listener = op->ctx_->listener())
        listener->notifyAttached(op);
}

void
Block::insertBefore(Operation *before, Operation *op)
{
    WSC_ASSERT(before->parent_ == this,
               "insertBefore anchor not in this block");
    WSC_ASSERT(op->parent_ == nullptr, "insertBefore of attached op");
    link(before, op);
    if (IRListener *listener = op->ctx_->listener())
        listener->notifyAttached(op);
}

std::vector<Operation *>
Block::opsVector() const
{
    std::vector<Operation *> out;
    out.reserve(ops_.size());
    for (Operation *op : ops_)
        out.push_back(op);
    return out;
}

//===----------------------------------------------------------------------===
// Region
//===----------------------------------------------------------------------===

Region::~Region()
{
    // Blocks are destroyed in order (matching the former std::list
    // semantics); cross-block value uses must already be dropped
    // (dropAllReferences) when they exist.
    Context &ctx = parent_->context();
    for (Block *block : blocks_) {
        block->~Block();
        ctx.deallocateBytes(block, sizeof(Block));
    }
    blocks_.clear();
}

Block *
Region::addBlock()
{
    Context &ctx = parent_->context();
    Block *block = new (ctx.allocateBytes(sizeof(Block))) Block();
    block->parent_ = this;
    blocks_.push_back(block);
    return block;
}

void
Region::takeBody(Region &other)
{
    for (Block *block : other.blocks_) {
        block->parent_ = this;
        blocks_.push_back(block);
    }
    other.blocks_.clear();
}

//===----------------------------------------------------------------------===
// OwningOp
//===----------------------------------------------------------------------===

OwningOp &
OwningOp::operator=(OwningOp &&other) noexcept
{
    if (this != &other) {
        if (op_) {
            op_->dropAllReferences();
            Operation::destroy(op_);
        }
        op_ = other.op_;
        other.op_ = nullptr;
    }
    return *this;
}

OwningOp::~OwningOp()
{
    if (op_) {
        op_->dropAllReferences();
        Operation::destroy(op_);
    }
}

Operation *
OwningOp::release()
{
    Operation *op = op_;
    op_ = nullptr;
    return op;
}

//===----------------------------------------------------------------------===
// Symbol helpers
//===----------------------------------------------------------------------===

Operation *
lookupSymbol(Operation *root, const std::string &name)
{
    WSC_ASSERT(root->numRegions() >= 1, "lookupSymbol on region-less op");
    for (Block *block : root->region(0).blocks())
        for (Operation *op : block->operations()) {
            Attribute sym = op->attr(attrs::kSymName);
            if (sym && isStringAttr(sym) && stringAttrValue(sym) == name)
                return op;
        }
    return nullptr;
}

} // namespace wsc::ir
