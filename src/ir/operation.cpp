#include "ir/operation.h"

#include <algorithm>

#include "ir/context.h"
#include "ir/printer.h"
#include "support/error.h"

namespace wsc::ir {

//===----------------------------------------------------------------------===
// Value
//===----------------------------------------------------------------------===

Type
Value::type() const
{
    WSC_ASSERT(impl_, "type() on null value");
    return impl_->type;
}

void
Value::setType(Type newType)
{
    WSC_ASSERT(impl_ && newType, "setType requires a valid value and type");
    impl_->type = newType;
}

Operation *
Value::definingOp() const
{
    WSC_ASSERT(impl_, "definingOp() on null value");
    return impl_->definingOp;
}

Block *
Value::ownerBlock() const
{
    WSC_ASSERT(impl_, "ownerBlock() on null value");
    return impl_->ownerBlock;
}

bool
Value::isBlockArgument() const
{
    WSC_ASSERT(impl_, "isBlockArgument() on null value");
    return impl_->ownerBlock != nullptr;
}

unsigned
Value::index() const
{
    WSC_ASSERT(impl_, "index() on null value");
    return impl_->index;
}

std::vector<Operation *>
Value::users() const
{
    WSC_ASSERT(impl_, "users() on null value");
    std::vector<Operation *> unique;
    for (Operation *user : impl_->users)
        if (std::find(unique.begin(), unique.end(), user) == unique.end())
            unique.push_back(user);
    return unique;
}

bool
Value::hasUses() const
{
    WSC_ASSERT(impl_, "hasUses() on null value");
    return !impl_->users.empty();
}

size_t
Value::numUses() const
{
    WSC_ASSERT(impl_, "numUses() on null value");
    return impl_->users.size();
}

void
Value::replaceAllUsesWith(Value other)
{
    WSC_ASSERT(impl_ && other, "replaceAllUsesWith requires valid values");
    if (*this == other)
        return;
    // Users mutate as we go; snapshot first.
    std::vector<Operation *> users = impl_->users;
    for (Operation *user : users) {
        for (unsigned i = 0, e = user->numOperands(); i < e; ++i)
            if (user->operand(i) == *this)
                user->setOperand(i, other);
    }
}

//===----------------------------------------------------------------------===
// Operation
//===----------------------------------------------------------------------===

Operation::Operation(Context &ctx, OpId id) : ctx_(&ctx), id_(id) {}

Operation *
Operation::create(Context &ctx, OpId id, const std::vector<Value> &operands,
                  const std::vector<Type> &resultTypes, const AttrList &attrs,
                  unsigned numRegions)
{
    auto *op = new Operation(ctx, id);
    op->operands_.reserve(operands.size());
    for (Value v : operands) {
        WSC_ASSERT(v, "null operand creating " << id.str());
        op->operands_.push_back(v);
        op->addUse(v);
    }
    for (unsigned i = 0; i < resultTypes.size(); ++i) {
        WSC_ASSERT(resultTypes[i], "null result type creating " << id.str());
        auto impl = std::make_unique<ValueImpl>();
        impl->type = resultTypes[i];
        impl->definingOp = op;
        impl->index = i;
        op->results_.push_back(std::move(impl));
    }
    for (const auto &[key, value] : attrs)
        op->setAttr(key, value);
    for (unsigned i = 0; i < numRegions; ++i)
        op->regions_.push_back(std::make_unique<Region>(op));
    return op;
}

void
Operation::destroy(Operation *op)
{
    WSC_ASSERT(op->parent_ == nullptr, "destroy() on attached op");
    delete op;
}

Operation::~Operation()
{
    if (IRListener *listener = ctx_->listener())
        listener->notifyDestroyed(this);
    // Drop operand uses before anything else so producers see no dangling
    // users. Nested regions are destroyed by the regions_ member afterward;
    // their ops drop their own references in their destructors (inner ops
    // are destroyed before the values they may use in enclosing scopes).
    regions_.clear();
    for (unsigned i = 0; i < operands_.size(); ++i)
        removeUse(operands_[i]);
    operands_.clear();
    for (auto &result : results_)
        WSC_ASSERT(result->users.empty(),
                   "destroying op `" << name() << "` with live result uses");
}

Value
Operation::operand(unsigned i) const
{
    WSC_ASSERT(i < operands_.size(),
               "operand index " << i << " out of range on " << name());
    return operands_[i];
}

void
Operation::addUse(Value v)
{
    v.impl()->users.push_back(this);
}

void
Operation::removeUse(Value v)
{
    auto &users = v.impl()->users;
    auto it = std::find(users.begin(), users.end(), this);
    WSC_ASSERT(it != users.end(), "use-list corruption on " << name());
    users.erase(it);
}

void
Operation::notifyOperandChanged()
{
    if (IRListener *listener = ctx_->listener())
        listener->notifyOperandChanged(this);
}

void
Operation::notifyUseRemoved(Value v)
{
    IRListener *listener = ctx_->listener();
    if (listener && !v.isBlockArgument())
        listener->notifyValueUseRemoved(v.definingOp());
}

void
Operation::setOperand(unsigned i, Value v)
{
    WSC_ASSERT(i < operands_.size(), "setOperand out of range on " << name());
    WSC_ASSERT(v, "setOperand with null value on " << name());
    Value old = operands_[i];
    removeUse(old);
    operands_[i] = v;
    addUse(v);
    notifyOperandChanged();
    if (old != v)
        notifyUseRemoved(old);
}

void
Operation::setOperands(const std::vector<Value> &values)
{
    std::vector<Value> old = operands_;
    for (Value v : operands_)
        removeUse(v);
    operands_.clear();
    for (Value v : values)
        appendOperand(v);
    for (Value v : old)
        notifyUseRemoved(v);
}

void
Operation::appendOperand(Value v)
{
    WSC_ASSERT(v, "appendOperand with null value on " << name());
    operands_.push_back(v);
    addUse(v);
    notifyOperandChanged();
}

void
Operation::eraseOperand(unsigned i)
{
    WSC_ASSERT(i < operands_.size(),
               "eraseOperand out of range on " << name());
    Value old = operands_[i];
    removeUse(old);
    operands_.erase(operands_.begin() + i);
    notifyOperandChanged();
    notifyUseRemoved(old);
}

void
Operation::dropAllReferences()
{
    for (Value v : operands_)
        removeUse(v);
    operands_.clear();
    for (auto &region : regions_)
        for (auto &block : region->blocks())
            for (auto &op : block->operations())
                op->dropAllReferences();
}

Value
Operation::result(unsigned i) const
{
    WSC_ASSERT(i < results_.size(),
               "result index " << i << " out of range on " << name());
    return Value(results_[i].get());
}

std::vector<Value>
Operation::results() const
{
    std::vector<Value> out;
    out.reserve(results_.size());
    for (const auto &r : results_)
        out.push_back(Value(r.get()));
    return out;
}

bool
Operation::hasResultUses() const
{
    for (const auto &r : results_)
        if (!r->users.empty())
            return true;
    return false;
}

namespace {

/** First attrs_ entry with key >= `key` (the list is sorted by key). */
AttrList::const_iterator
attrLowerBound(const AttrList &attrs, const std::string &key)
{
    return std::lower_bound(attrs.begin(), attrs.end(), key,
                            [](const auto &entry, const std::string &k) {
                                return entry.first < k;
                            });
}

} // namespace

Attribute
Operation::attr(const std::string &key) const
{
    auto it = attrLowerBound(attrs_, key);
    return it != attrs_.end() && it->first == key ? it->second
                                                  : Attribute();
}

bool
Operation::hasAttr(const std::string &key) const
{
    auto it = attrLowerBound(attrs_, key);
    return it != attrs_.end() && it->first == key;
}

void
Operation::setAttr(const std::string &key, Attribute value)
{
    WSC_ASSERT(value, "setAttr(" << key << ") with null attribute");
    auto it = attrLowerBound(attrs_, key);
    if (it != attrs_.end() && it->first == key) {
        attrs_[static_cast<size_t>(it - attrs_.begin())].second = value;
        return;
    }
    attrs_.insert(attrs_.begin() + (it - attrs_.begin()), {key, value});
}

void
Operation::removeAttr(const std::string &key)
{
    auto it = attrLowerBound(attrs_, key);
    if (it != attrs_.end() && it->first == key)
        attrs_.erase(attrs_.begin() + (it - attrs_.begin()));
}

int64_t
Operation::intAttr(const std::string &key) const
{
    Attribute a = attr(key);
    WSC_ASSERT(a, "missing int attribute `" << key << "` on " << name());
    return intAttrValue(a);
}

const std::string &
Operation::strAttr(const std::string &key) const
{
    Attribute a = attr(key);
    WSC_ASSERT(a, "missing string attribute `" << key << "` on " << name());
    return stringAttrValue(a);
}

Region &
Operation::region(unsigned i) const
{
    WSC_ASSERT(i < regions_.size(),
               "region index " << i << " out of range on " << name());
    return *regions_[i];
}

Operation *
Operation::parentOp() const
{
    return parent_ ? parent_->parentOp() : nullptr;
}

Operation *
Operation::parentOf(OpId id) const
{
    for (auto *op = const_cast<Operation *>(this); op; op = op->parentOp())
        if (op->id_ == id)
            return op;
    return nullptr;
}

void
Operation::erase()
{
    WSC_ASSERT(parent_, "erase() on detached op " << name());
    WSC_ASSERT(!hasResultUses(),
               "erase() on op `" << name() << "` with live result uses");
    Block *block = parent_;
    parent_ = nullptr;
    block->ops_.erase(self_); // Deletes this.
}

void
Operation::removeFromParent()
{
    WSC_ASSERT(parent_, "removeFromParent() on detached op");
    Block *block = parent_;
    self_->release();
    block->ops_.erase(self_);
    parent_ = nullptr;
}

void
Operation::moveBefore(Operation *other)
{
    WSC_ASSERT(other->parent_, "moveBefore target is detached");
    removeFromParent();
    other->parent_->insertBefore(other, this);
}

void
Operation::moveToEnd(Block *block)
{
    removeFromParent();
    block->push_back(this);
}

Operation *
Operation::nextOp() const
{
    WSC_ASSERT(parent_, "nextOp() on detached op");
    auto it = self_;
    ++it;
    return it == parent_->ops_.end() ? nullptr : it->get();
}

Operation *
Operation::prevOp() const
{
    WSC_ASSERT(parent_, "prevOp() on detached op");
    if (self_ == parent_->ops_.begin())
        return nullptr;
    auto it = self_;
    --it;
    return it->get();
}

void
Operation::walk(const std::function<void(Operation *)> &fn)
{
    fn(this);
    for (auto &region : regions_)
        for (auto &block : region->blocks())
            for (auto &op : block->operations())
                op->walk(fn);
}

bool
Operation::isTerminator() const
{
    const OpInfo *info = ctx_->opInfo(id_);
    return info && info->isTerminator;
}

std::string
Operation::str() const
{
    return printOp(const_cast<Operation *>(this));
}

//===----------------------------------------------------------------------===
// Block
//===----------------------------------------------------------------------===

Block::~Block()
{
    // Destroy ops from the back so that each op's operands (earlier ops'
    // results or block arguments) are still alive when it unregisters its
    // uses.
    while (!ops_.empty())
        ops_.pop_back();
}

Operation *
Block::parentOp() const
{
    return parent_ ? parent_->parentOp() : nullptr;
}

Value
Block::addArgument(Type type)
{
    WSC_ASSERT(type, "addArgument with null type");
    auto impl = std::make_unique<ValueImpl>();
    impl->type = type;
    impl->ownerBlock = this;
    impl->index = static_cast<unsigned>(args_.size());
    Value v(impl.get());
    args_.push_back(std::move(impl));
    return v;
}

Value
Block::argument(unsigned i) const
{
    WSC_ASSERT(i < args_.size(), "block argument index out of range");
    return Value(args_[i].get());
}

std::vector<Value>
Block::arguments() const
{
    std::vector<Value> out;
    out.reserve(args_.size());
    for (const auto &a : args_)
        out.push_back(Value(a.get()));
    return out;
}

void
Block::eraseArgument(unsigned i)
{
    WSC_ASSERT(i < args_.size(), "eraseArgument index out of range");
    WSC_ASSERT(args_[i]->users.empty(),
               "eraseArgument on argument with live uses");
    args_.erase(args_.begin() + i);
    for (unsigned j = i; j < args_.size(); ++j)
        args_[j]->index = j;
}

Operation *
Block::terminator() const
{
    WSC_ASSERT(!ops_.empty(), "terminator() on empty block");
    return ops_.back().get();
}

void
Block::push_back(Operation *op)
{
    WSC_ASSERT(op->parent_ == nullptr, "push_back of attached op");
    ops_.push_back(std::unique_ptr<Operation>(op));
    op->parent_ = this;
    op->self_ = std::prev(ops_.end());
    if (IRListener *listener = op->ctx_->listener())
        listener->notifyAttached(op);
}

void
Block::insertBefore(Operation *before, Operation *op)
{
    WSC_ASSERT(before->parent_ == this,
               "insertBefore anchor not in this block");
    WSC_ASSERT(op->parent_ == nullptr, "insertBefore of attached op");
    auto it = ops_.insert(before->self_, std::unique_ptr<Operation>(op));
    op->parent_ = this;
    op->self_ = it;
    if (IRListener *listener = op->ctx_->listener())
        listener->notifyAttached(op);
}

std::vector<Operation *>
Block::opsVector() const
{
    std::vector<Operation *> out;
    out.reserve(ops_.size());
    for (const auto &op : ops_)
        out.push_back(op.get());
    return out;
}

//===----------------------------------------------------------------------===
// Region
//===----------------------------------------------------------------------===

Block *
Region::addBlock()
{
    auto block = std::make_unique<Block>();
    block->parent_ = this;
    Block *raw = block.get();
    blocks_.push_back(std::move(block));
    return raw;
}

std::vector<Block *>
Region::blocksVector() const
{
    std::vector<Block *> out;
    out.reserve(blocks_.size());
    for (const auto &b : blocks_)
        out.push_back(b.get());
    return out;
}

void
Region::takeBody(Region &other)
{
    for (auto &block : other.blocks_) {
        block->parent_ = this;
        blocks_.push_back(std::move(block));
    }
    other.blocks_.clear();
}

//===----------------------------------------------------------------------===
// OwningOp
//===----------------------------------------------------------------------===

OwningOp &
OwningOp::operator=(OwningOp &&other) noexcept
{
    if (this != &other) {
        if (op_) {
            op_->dropAllReferences();
            Operation::destroy(op_);
        }
        op_ = other.op_;
        other.op_ = nullptr;
    }
    return *this;
}

OwningOp::~OwningOp()
{
    if (op_) {
        op_->dropAllReferences();
        Operation::destroy(op_);
    }
}

Operation *
OwningOp::release()
{
    Operation *op = op_;
    op_ = nullptr;
    return op;
}

//===----------------------------------------------------------------------===
// Symbol helpers
//===----------------------------------------------------------------------===

Operation *
lookupSymbol(Operation *root, const std::string &name)
{
    WSC_ASSERT(root->numRegions() >= 1, "lookupSymbol on region-less op");
    for (auto &block : root->region(0).blocks())
        for (auto &op : block->operations()) {
            Attribute sym = op->attr("sym_name");
            if (sym && isStringAttr(sym) && stringAttrValue(sym) == name)
                return op.get();
        }
    return nullptr;
}

} // namespace wsc::ir
