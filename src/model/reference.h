/**
 * @file
 * Scalar reference executor: evaluates an fe::Program directly on 3-D
 * f32 arrays, with the same boundary semantics as the compiled WSE code
 * (a point is updated only when every access of its update stays in
 * bounds; boundary points keep their values). Used as the correctness
 * oracle for the full pipeline + simulator stack.
 */

#ifndef WSC_MODEL_REFERENCE_H
#define WSC_MODEL_REFERENCE_H

#include <cstdint>
#include <vector>

#include "frontends/benchmarks.h"
#include "frontends/sym.h"

namespace wsc::model {

/** Runs a stencil program on plain arrays. */
class ReferenceExecutor
{
  public:
    ReferenceExecutor(const fe::Program &program, const fe::InitFn &init);

    /** Advance `steps` timesteps. */
    void run(int64_t steps);

    /** Field contents, indexed x-major: ((x * ny) + y) * nz + z. */
    const std::vector<float> &field(size_t f) const { return data_[f]; }
    float at(size_t f, int64_t x, int64_t y, int64_t z) const;

    const fe::Grid &grid() const { return grid_; }

  private:
    float evalAt(const fe::ExprNode *node, int64_t x, int64_t y,
                 int64_t z, const std::vector<std::vector<float>> &cur,
                 const std::vector<std::vector<float>> &next) const;
    bool inBounds(const fe::ExprNode *node, int64_t x, int64_t y,
                  int64_t z) const;

    const fe::Program &program_;
    fe::Grid grid_;
    std::vector<std::vector<float>> data_;
};

} // namespace wsc::model

#endif // WSC_MODEL_REFERENCE_H
