/**
 * @file
 * Wafer-scale performance extrapolation (DESIGN.md §4): functionally
 * simulate a small PE sub-grid, measure steady-state per-timestep cycles
 * on an interior PE (every interior PE executes an identical task
 * schedule), and extrapolate wafer throughput for the full problem size.
 * A test validates the extrapolation against direct whole-grid
 * simulations at sizes where both are feasible.
 */

#ifndef WSC_MODEL_WAFER_MODEL_H
#define WSC_MODEL_WAFER_MODEL_H

#include <cstdint>
#include <string>

#include "frontends/benchmarks.h"
#include "model/flops.h"
#include "wse/arch_params.h"

namespace wsc::model {

/** Options for one measurement run. */
struct MeasureOptions
{
    /** Simulated sub-grid edge (0 = derive from the stencil radius). */
    int simGrid = 0;
    /** Timesteps to simulate. */
    int64_t steps = 10;
    /** Leading steps excluded from the steady-state window. */
    int64_t warmupSteps = 3;
};

/** Measured + extrapolated performance of one benchmark on one arch. */
struct WaferPerf
{
    std::string benchmark;
    std::string arch;
    int64_t problemNx = 0;
    int64_t problemNy = 0;
    int64_t problemNz = 0;
    /** Steady-state cycles per timestep on an interior PE. */
    double cyclesPerStep = 0.0;
    /** Wafer throughput in giga grid-points per second (whole domain
     *  per iteration, the paper's GPts/s). */
    double gptsPerSec = 0.0;
    /** Extrapolated FP32 FLOP/s. */
    double flopsPerSec = 0.0;
    /** Static per-PE work profile (roofline inputs). */
    WorkProfile work;
    /** Per-PE memory in use (bytes), for the 48 kB budget. */
    size_t peMemoryBytes = 0;
    /** Task activations per PE per step (steady state). */
    double taskActivationsPerStep = 0.0;
};

/**
 * Compile `bench` through the full pipeline, simulate it on a small
 * sub-grid of `arch`, and extrapolate to the full problem size
 * (bench.program.grid() gives nx, ny, nz).
 */
WaferPerf measureBenchmark(const fe::Benchmark &bench,
                           const wse::ArchParams &arch,
                           const MeasureOptions &options = {});

/**
 * Same measurement against an already-lowered module (used by ablation
 * benches that tweak pipeline options).
 */
WaferPerf measureLoweredModule(ir::Operation *module,
                               const fe::Benchmark &bench,
                               const wse::ArchParams &arch,
                               const MeasureOptions &options = {});

} // namespace wsc::model

#endif // WSC_MODEL_WAFER_MODEL_H
