#include "model/roofline.h"

#include <algorithm>

namespace wsc::model {

double
Roof::attainable(double intensity) const
{
    return std::min(peakFlops, intensity * bandwidth);
}

} // namespace wsc::model
