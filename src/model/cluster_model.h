/**
 * @file
 * Analytic throughput models of the Figure 6 baselines: 128 Nvidia A100
 * GPUs (Tursa) and 128 dual-EPYC-7742 nodes (ARCHER2), substituting for
 * the Bisbas et al. measurements this repository cannot re-run.
 *
 * Both baselines are memory-bound for finite-difference stencils (the
 * paper's own Figure 7 argument), so a bandwidth-limited model with a
 * kernel efficiency (achieved fraction of STREAM bandwidth) and a
 * strong-scaling efficiency (halo exchange overhead at 128 devices)
 * captures their throughput to first order. The efficiency constants
 * are calibrated against the published absolute numbers from the
 * paper's source [5] (see DESIGN.md §1).
 */

#ifndef WSC_MODEL_CLUSTER_MODEL_H
#define WSC_MODEL_CLUSTER_MODEL_H

#include <string>

namespace wsc::model {

/** A bandwidth-limited cluster baseline. */
struct ClusterSpec
{
    std::string name;
    /** STREAM-class memory bandwidth per device, bytes/s. */
    double perDeviceBandwidth = 0.0;
    /** Peak FP32 FLOP/s per device (for the roofline plot). */
    double perDevicePeakFlops = 0.0;
    int devices = 1;
    /** Fraction of bandwidth a real stencil kernel achieves. */
    double kernelEfficiency = 1.0;
    /** Strong-scaling efficiency at `devices` (halo overhead). */
    double scalingEfficiency = 1.0;

    /** Modelled throughput in GPts/s for a kernel moving
     *  `bytesPerPoint` to/from memory per updated point. */
    double gptsPerSec(double bytesPerPoint) const;
    /** Modelled FLOP/s given the kernel's FLOPs per point. */
    double flopsPerSec(double flopsPerPoint, double bytesPerPoint) const;
};

/** 128 x A100-80 on Tursa (MPI + OpenACC, Bisbas et al. setup). */
ClusterSpec tursaA100Cluster();
/** A single A100 (for the Figure 7 roofline point). */
ClusterSpec singleA100();
/** 128 dual-EPYC-7742 nodes of the ARCHER2 Cray-EX (MPI + OpenMP). */
ClusterSpec archer2CpuCluster();

/**
 * Memory traffic per updated point of the acoustic kernel on a
 * cache-based machine: read u and u_prev, write u_next, plus an
 * effective fraction of the halo re-reads that miss cache.
 */
double acousticBytesPerPointCacheMachine();

} // namespace wsc::model

#endif // WSC_MODEL_CLUSTER_MODEL_H
