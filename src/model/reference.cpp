#include "model/reference.h"

#include "support/error.h"

namespace wsc::model {

ReferenceExecutor::ReferenceExecutor(const fe::Program &program,
                                     const fe::InitFn &init)
    : program_(program), grid_(program.grid())
{
    size_t points = static_cast<size_t>(grid_.nx * grid_.ny * grid_.nz);
    data_.assign(program.numFields(), std::vector<float>(points, 0.0f));
    for (size_t f = 0; f < program.numFields(); ++f)
        for (int64_t x = 0; x < grid_.nx; ++x)
            for (int64_t y = 0; y < grid_.ny; ++y)
                for (int64_t z = 0; z < grid_.nz; ++z)
                    data_[f][static_cast<size_t>(
                        (x * grid_.ny + y) * grid_.nz + z)] =
                        init(static_cast<int>(f), x, y, z);
}

float
ReferenceExecutor::at(size_t f, int64_t x, int64_t y, int64_t z) const
{
    return data_[f][static_cast<size_t>((x * grid_.ny + y) * grid_.nz +
                                        z)];
}

bool
ReferenceExecutor::inBounds(const fe::ExprNode *node, int64_t x, int64_t y,
                            int64_t z) const
{
    if (!node)
        return true;
    if (node->kind == fe::ExprKind::Access) {
        int64_t ax = x + node->dx;
        int64_t ay = y + node->dy;
        int64_t az = z + node->dz;
        if (ax < 0 || ax >= grid_.nx || ay < 0 || ay >= grid_.ny ||
            az < 0 || az >= grid_.nz)
            return false;
    }
    return inBounds(node->lhs.get(), x, y, z) &&
           inBounds(node->rhs.get(), x, y, z);
}

float
ReferenceExecutor::evalAt(const fe::ExprNode *node, int64_t x, int64_t y,
                          int64_t z,
                          const std::vector<std::vector<float>> &cur,
                          const std::vector<std::vector<float>> &next)
    const
{
    switch (node->kind) {
      case fe::ExprKind::Const:
        return static_cast<float>(node->value);
      case fe::ExprKind::Access: {
        const std::vector<std::vector<float>> &src =
            node->next ? next : cur;
        size_t idx = static_cast<size_t>(
            ((x + node->dx) * grid_.ny + (y + node->dy)) * grid_.nz +
            (z + node->dz));
        return src[static_cast<size_t>(node->field)][idx];
      }
      case fe::ExprKind::Add:
        return evalAt(node->lhs.get(), x, y, z, cur, next) +
               evalAt(node->rhs.get(), x, y, z, cur, next);
      case fe::ExprKind::Sub:
        return evalAt(node->lhs.get(), x, y, z, cur, next) -
               evalAt(node->rhs.get(), x, y, z, cur, next);
      case fe::ExprKind::Mul:
        return evalAt(node->lhs.get(), x, y, z, cur, next) *
               evalAt(node->rhs.get(), x, y, z, cur, next);
      case fe::ExprKind::Div:
        return evalAt(node->lhs.get(), x, y, z, cur, next) /
               evalAt(node->rhs.get(), x, y, z, cur, next);
    }
    panic("unreachable expression kind");
}

void
ReferenceExecutor::run(int64_t steps)
{
    for (int64_t s = 0; s < steps; ++s) {
        // next starts as a copy: non-updated points keep their values.
        std::vector<std::vector<float>> next = data_;
        for (size_t f = 0; f < program_.numFields(); ++f) {
            const auto &update = program_.update(f);
            if (!update)
                continue;
            const fe::ExprNode *node = update->node().get();
            if (node->kind == fe::ExprKind::Access && node->dx == 0 &&
                node->dy == 0 && node->dz == 0 && !node->next) {
                // Pure rotation: the whole field takes the source's
                // begin-of-step contents.
                next[f] = data_[static_cast<size_t>(node->field)];
                continue;
            }
            for (int64_t x = 0; x < grid_.nx; ++x)
                for (int64_t y = 0; y < grid_.ny; ++y)
                    for (int64_t z = 0; z < grid_.nz; ++z) {
                        if (!inBounds(node, x, y, z))
                            continue;
                        next[f][static_cast<size_t>(
                            (x * grid_.ny + y) * grid_.nz + z)] =
                            evalAt(node, x, y, z, data_, next);
                    }
        }
        data_ = std::move(next);
    }
}

} // namespace wsc::model
