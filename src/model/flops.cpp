#include "model/flops.h"

#include <map>
#include <set>

#include "dialects/csl.h"
#include "support/error.h"

namespace wsc::model {

namespace {

namespace csl = dialects::csl;

/** Iteration length of a DSD builtin's destination operand. */
int64_t
dsdLength(ir::Value v)
{
    ir::Operation *def = v.definingOp();
    WSC_ASSERT(def, "DSD operand without a defining op");
    if (def->opId() == csl::kGetMemDsd)
        return def->intAttr(ir::attrs::kLength);
    if (def->opId() == csl::kIncrementDsdOffset ||
        def->opId() == csl::kSetDsdLength ||
        def->opId() == csl::kSetDsdBaseAddr)
        return dsdLength(def->operand(0));
    panic("cannot derive DSD length from " + def->name());
}

/** DSD work of one callable body. */
void
accumulateBody(ir::Operation *callable, uint64_t multiplier,
               WorkProfile &out)
{
    callable->walk([&](ir::Operation *op) {
        ir::OpId n = op->opId();
        int flopsPerElem = -1;
        int bytesPerElem = 12;
        if (n == csl::kFadds || n == csl::kFsubs || n == csl::kFmuls) {
            flopsPerElem = 1;
        } else if (n == csl::kFmacs) {
            flopsPerElem = 2;
        } else if (n == csl::kFmovs) {
            flopsPerElem = 0;
            bytesPerElem = 8;
        }
        if (flopsPerElem < 0)
            return;
        uint64_t elems =
            static_cast<uint64_t>(dsdLength(op->operand(0)));
        out.flops += multiplier * elems *
                     static_cast<uint64_t>(flopsPerElem);
        out.memBytes += multiplier * elems *
                        static_cast<uint64_t>(bytesPerElem);
    });
}

} // namespace

WorkProfile
analyzeProgramWork(ir::Operation *root)
{
    ir::Operation *program = nullptr;
    if (root->opId() == csl::kModule &&
        root->strAttr(ir::attrs::kKind) == "program") {
        program = root;
    } else {
        root->walk([&](ir::Operation *op) {
            if (op->opId() == csl::kModule &&
                op->strAttr(ir::attrs::kKind) == "program")
                program = op;
        });
    }
    WSC_ASSERT(program, "no program module to analyze");

    // Receive-chunk callbacks run once per chunk per step.
    std::map<std::string, int64_t> recvMultiplier;
    WorkProfile out;
    program->walk([&](ir::Operation *op) {
        if (op->opId() != csl::kCommsExchange)
            return;
        csl::CommsExchangeSpec spec = csl::commsExchangeSpec(op);
        recvMultiplier[spec.recvCallback] = spec.numChunks;
        // Fabric injection: one stream per distinct travel direction per
        // chunk, commElems elements per column overall.
        std::set<std::pair<int, int>> travelDirs;
        for (const auto &[dx, dy] : spec.accesses) {
            int tx = dx > 0 ? -1 : (dx < 0 ? 1 : 0);
            int ty = dy > 0 ? -1 : (dy < 0 ? 1 : 0);
            travelDirs.insert({tx, ty});
        }
        uint64_t commElems = static_cast<uint64_t>(
            spec.zSize - spec.trimFirst - spec.trimLast);
        out.fabricBytes += travelDirs.size() * commElems * 4;
        out.pointsPerPe += commElems;
        // Coefficients promoted into the communication path execute one
        // multiply per landed element (at zero cycle cost, but they are
        // arithmetic the kernel performs).
        uint64_t nontrivialCoeffs = 0;
        for (double c : spec.coeffs)
            if (c != 1.0)
                nontrivialCoeffs++;
        out.flops += nontrivialCoeffs * commElems;
        // Algorithmic traffic: the landed halo sections are read once,
        // one input column is read and one result column written.
        out.algoMemBytes += spec.accesses.size() * commElems * 4;
        out.algoMemBytes += 2 * commElems * 4;
    });

    for (ir::Operation *op : csl::moduleBody(program)->opsVector()) {
        if (op->opId() != csl::kFunc && op->opId() != csl::kTask)
            continue;
        const std::string &name = op->strAttr(ir::attrs::kSymName);
        if (name == "f_main" || name == "for_post0")
            continue; // once per run, not per step
        uint64_t multiplier = 1;
        auto it = recvMultiplier.find(name);
        if (it != recvMultiplier.end())
            multiplier = static_cast<uint64_t>(it->second);
        accumulateBody(op, multiplier, out);
    }
    return out;
}

} // namespace wsc::model
