/**
 * @file
 * Static per-step work accounting derived from the lowered csl-ir
 * program: FLOPs, local-memory traffic and fabric traffic per PE per
 * timestep. Used by the roofline (Figure 7) and the wafer throughput
 * model.
 */

#ifndef WSC_MODEL_FLOPS_H
#define WSC_MODEL_FLOPS_H

#include <cstdint>

#include "ir/operation.h"

namespace wsc::model {

/** Per-interior-PE, per-timestep work of a lowered program. */
struct WorkProfile
{
    uint64_t flops = 0;
    /** DSD local-memory traffic in bytes (per-op instruction traffic:
     *  every builtin's reads + writes, intermediates included). */
    uint64_t memBytes = 0;
    /**
     * Algorithmic memory traffic in bytes: the essential field reads,
     * result writes and received-halo reads per step — the accounting
     * roofline studies (incl. the paper's Figure 7) use. Intermediate
     * DSD traffic through the accumulator is excluded.
     */
    uint64_t algoMemBytes = 0;
    /** Fabric injection traffic in bytes (outgoing streams). */
    uint64_t fabricBytes = 0;
    /** Grid points computed per PE per step (interior column length). */
    uint64_t pointsPerPe = 0;

    /** Instruction-traffic arithmetic intensity. */
    double
    memArithmeticIntensity() const
    {
        return memBytes ? static_cast<double>(flops) / memBytes : 0.0;
    }
    /** Algorithmic arithmetic intensity (Figure 7 convention). */
    double
    algoMemArithmeticIntensity() const
    {
        return algoMemBytes ? static_cast<double>(flops) / algoMemBytes
                            : 0.0;
    }
    double
    fabricArithmeticIntensity() const
    {
        return fabricBytes ? static_cast<double>(flops) / fabricBytes
                           : 0.0;
    }
    double
    flopsPerPoint() const
    {
        return pointsPerPe ? static_cast<double>(flops) / pointsPerPe
                           : 0.0;
    }
};

/**
 * Analyze a lowered program (builtin.module with csl.modules, or the
 * program module itself): walks every function/task, multiplying
 * receive-chunk task work by the chunk count.
 */
WorkProfile analyzeProgramWork(ir::Operation *root);

} // namespace wsc::model

#endif // WSC_MODEL_FLOPS_H
