/**
 * @file
 * Roofline math (Figure 7): attainable performance given arithmetic
 * intensity, peak compute and a bandwidth ceiling; classification into
 * memory-/fabric-/compute-bound regimes.
 */

#ifndef WSC_MODEL_ROOFLINE_H
#define WSC_MODEL_ROOFLINE_H

#include <string>

namespace wsc::model {

/** One machine roof: peak FLOP/s and a bandwidth in bytes/s. */
struct Roof
{
    std::string name;
    double peakFlops = 0.0;
    double bandwidth = 0.0;

    /** AI at which the roof transitions to compute-bound. */
    double ridgeIntensity() const { return peakFlops / bandwidth; }
    /** Attainable FLOP/s at a given arithmetic intensity. */
    double attainable(double intensity) const;
    /** True when a kernel at this AI is limited by the bandwidth. */
    bool isBandwidthBound(double intensity) const
    {
        return intensity < ridgeIntensity();
    }
};

/** One plotted point of Figure 7. */
struct RooflinePoint
{
    std::string label;
    double intensity = 0.0;       ///< FLOP/byte
    double achievedFlops = 0.0;   ///< measured FLOP/s
    bool computeBound = false;    ///< w.r.t. the roof it was plotted on
};

} // namespace wsc::model

#endif // WSC_MODEL_ROOFLINE_H
