#include "model/wafer_model.h"

#include <algorithm>
#include <cmath>

#include "dialects/all.h"
#include "interp/csl_interpreter.h"
#include "support/error.h"
#include "transforms/pipeline.h"
#include "wse/simulator.h"

namespace wsc::model {

namespace {

/** Maximum (x, y) stencil radius over the program's updates. */
int
xyRadius(const fe::Program &program)
{
    int r = 1;
    for (size_t f = 0; f < program.numFields(); ++f) {
        if (!program.update(f))
            continue;
        int rx = 0;
        int ry = 0;
        int rz = 0;
        program.update(f)->radius(rx, ry, rz);
        r = std::max({r, rx, ry});
    }
    return r;
}

} // namespace

WaferPerf
measureLoweredModule(ir::Operation *module, const fe::Benchmark &bench,
                     const wse::ArchParams &arch,
                     const MeasureOptions &options)
{
    const fe::Grid &grid = bench.program.grid();
    int radius = xyRadius(bench.program);
    int simGrid = options.simGrid > 0 ? options.simGrid
                                      : std::max(4 * radius + 1, 7);
    simGrid = static_cast<int>(
        std::min<int64_t>({simGrid, grid.nx, grid.ny}));

    wse::Simulator sim(arch, simGrid, simGrid);
    interp::CslProgramInstance instance(sim, module);
    for (size_t f = 0; f < bench.program.numFields(); ++f) {
        int fi = static_cast<int>(f);
        auto init = bench.init;
        instance.setFieldInit(bench.program.fieldName(f),
                              [init, fi](int x, int y, int z) {
                                  return init(fi, x, y, z);
                              });
    }
    instance.configure();
    instance.launch();
    sim.run(4000000000ULL);

    WaferPerf perf;
    perf.benchmark = bench.name;
    perf.arch = arch.name;
    perf.problemNx = grid.nx;
    perf.problemNy = grid.ny;
    perf.problemNz = grid.nz;
    perf.work = analyzeProgramWork(module);
    int cx = simGrid / 2;
    perf.peMemoryBytes = instance.memoryBytesUsed(cx, cx);

    // Steady-state cycles per step from the interior PE's step markers.
    const std::vector<wse::Cycles> &marks = instance.stepMarks(cx, cx);
    int64_t steps = bench.program.timesteps();
    if (marks.size() >= 3) {
        size_t w = std::min<size_t>(
            static_cast<size_t>(options.warmupSteps), marks.size() - 2);
        perf.cyclesPerStep =
            static_cast<double>(marks.back() - marks[w]) /
            static_cast<double>(marks.size() - 1 - w);
    } else {
        // Single-iteration programs (UVKBE): total runtime is the step.
        perf.cyclesPerStep = static_cast<double>(sim.now()) /
                             static_cast<double>(std::max<int64_t>(
                                 steps, 1));
    }

    double secPerStep = perf.cyclesPerStep / (arch.clockGHz * 1e9);
    double pointsPerStep = static_cast<double>(grid.nx) * grid.ny *
                           grid.nz;
    perf.gptsPerSec = pointsPerStep / secPerStep / 1e9;

    // FLOP/s: interior PEs carry the compute.
    double interiorPes =
        static_cast<double>(std::max<int64_t>(grid.nx - 2 * radius, 1)) *
        static_cast<double>(std::max<int64_t>(grid.ny - 2 * radius, 1));
    perf.flopsPerSec = static_cast<double>(perf.work.flops) *
                       interiorPes / secPerStep;

    perf.taskActivationsPerStep =
        static_cast<double>(sim.pe(cx, cx).taskActivations()) /
        static_cast<double>(std::max<int64_t>(steps, 1));
    return perf;
}

WaferPerf
measureBenchmark(const fe::Benchmark &bench, const wse::ArchParams &arch,
                 const MeasureOptions &options)
{
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    ir::PipelineResult result = transforms::runPipeline(module.get());
    if (!result)
        fatal("wafer model: benchmark failed to compile:\n" +
              result.str());
    return measureLoweredModule(module.get(), bench, arch, options);
}

} // namespace wsc::model
