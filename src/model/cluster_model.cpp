#include "model/cluster_model.h"

namespace wsc::model {

double
ClusterSpec::gptsPerSec(double bytesPerPoint) const
{
    double perDevice = perDeviceBandwidth * kernelEfficiency /
                       bytesPerPoint;
    return perDevice * devices * scalingEfficiency / 1e9;
}

double
ClusterSpec::flopsPerSec(double flopsPerPoint, double bytesPerPoint) const
{
    return gptsPerSec(bytesPerPoint) * 1e9 * flopsPerPoint;
}

ClusterSpec
tursaA100Cluster()
{
    ClusterSpec s;
    s.name = "128 x A100 (Tursa, MPI+OpenACC)";
    s.perDeviceBandwidth = 2.04e12; // HBM2e, the paper's Figure 7 value
    s.perDevicePeakFlops = 17.59e12;
    s.devices = 128;
    // OpenACC stencil without time tiling: ~35% of STREAM.
    s.kernelEfficiency = 0.35;
    // Strong scaling at 128 GPUs (1158^3 split): halo traffic and MPI
    // latency dominate the small per-GPU subdomains.
    s.scalingEfficiency = 0.22;
    return s;
}

ClusterSpec
singleA100()
{
    ClusterSpec s;
    s.name = "1 x A100";
    s.perDeviceBandwidth = 2.04e12;
    s.perDevicePeakFlops = 17.59e12;
    s.devices = 1;
    s.kernelEfficiency = 0.35;
    s.scalingEfficiency = 1.0;
    return s;
}

ClusterSpec
archer2CpuCluster()
{
    ClusterSpec s;
    s.name = "128 x dual EPYC 7742 (ARCHER2, MPI+OpenMP)";
    // Dual-socket Rome: ~380 GB/s STREAM per node.
    s.perDeviceBandwidth = 3.8e11;
    s.perDevicePeakFlops = 2.0 * 64 * 2.25e9 * 16; // 2 sockets FP32 FMA
    s.devices = 128;
    // OpenMP stencil kernels reach about half of STREAM.
    s.kernelEfficiency = 0.50;
    // Larger per-node subdomains (1024^3 over 128 nodes) scale better
    // than the GPU case.
    s.scalingEfficiency = 0.58;
    return s;
}

double
acousticBytesPerPointCacheMachine()
{
    // Read u (streamed once thanks to caches), read u_prev, write
    // u_next, plus ~25% halo/cache-miss overhead on u.
    return (4.0 + 4.0 + 4.0) * 1.33;
}

} // namespace wsc::model
