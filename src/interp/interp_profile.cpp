#include "interp/interp_profile.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>

namespace wsc::interp {

namespace {

const char *const kOpcodeNames[] = {
#define WSC_INTERP_NAME(name) #name,
    WSC_INTERP_OPCODE_LIST(WSC_INTERP_NAME)
#undef WSC_INTERP_NAME
};

} // namespace

const char *
opcodeName(Opcode op)
{
    return kOpcodeNames[static_cast<size_t>(op)];
}

bool
opcodeFromName(std::string_view name, Opcode &out)
{
    for (size_t i = 0; i < kNumOpcodes; ++i) {
        if (name == kOpcodeNames[i]) {
            out = static_cast<Opcode>(i);
            return true;
        }
    }
    return false;
}

uint64_t
InterpProfile::total() const
{
    uint64_t sum = 0;
    for (size_t i = 0; i < kNumOpcodes; ++i)
        sum += opTotal(static_cast<Opcode>(i));
    return sum;
}

void
InterpProfile::dump(std::ostream &os) const
{
    os << "=== csl interpreter opcode histogram ("
       << total() << " executed) ===\n";
    std::vector<std::pair<uint64_t, size_t>> ops;
    for (size_t i = 0; i < kNumOpcodes; ++i)
        if (uint64_t n = opTotal(static_cast<Opcode>(i)))
            ops.emplace_back(n, i);
    std::sort(ops.rbegin(), ops.rend());
    for (const auto &[n, i] : ops)
        os << "  " << std::left << std::setw(24)
           << kOpcodeNames[i] << std::right << std::setw(12) << n
           << "\n";

    os << "=== hot opcode pairs (intra-body adjacency) ===\n";
    std::vector<std::pair<uint64_t, std::pair<size_t, size_t>>> pairs;
    for (size_t a = 0; a < kNumOpcodes; ++a)
        for (size_t b = 0; b < kNumOpcodes; ++b)
            if (uint64_t n = pairTotal(static_cast<Opcode>(a),
                                       static_cast<Opcode>(b)))
                pairs.push_back({n, {a, b}});
    std::sort(pairs.rbegin(), pairs.rend());
    size_t shown = 0;
    for (const auto &[n, ab] : pairs) {
        if (shown++ == 20)
            break;
        std::string pair = std::string(kOpcodeNames[ab.first]) + "+" +
                           kOpcodeNames[ab.second];
        os << "  " << std::left << std::setw(40) << pair << std::right
           << std::setw(12) << n << "\n";
    }
}

void
InterpProfile::writeProfile(std::ostream &os) const
{
    os << "# wsc csl-interpreter opcode-pair profile v1\n";
    for (size_t a = 0; a < kNumOpcodes; ++a)
        for (size_t b = 0; b < kNumOpcodes; ++b)
            if (uint64_t n = pairTotal(static_cast<Opcode>(a),
                                       static_cast<Opcode>(b)))
                os << "pair " << kOpcodeNames[a] << " "
                   << kOpcodeNames[b] << " " << n << "\n";
}

bool
readProfile(std::istream &is, std::vector<ProfiledPair> &out)
{
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string tag, first, second;
        uint64_t count = 0;
        if (!(fields >> tag >> first >> second >> count))
            return false;
        if (tag != "pair")
            return false;
        ProfiledPair pair;
        // Names from older/newer opcode sets are skipped, not errors.
        if (!opcodeFromName(first, pair.first) ||
            !opcodeFromName(second, pair.second))
            continue;
        pair.count = count;
        if (count > 0)
            out.push_back(pair);
    }
    return true;
}

} // namespace wsc::interp
