/**
 * @file
 * The pre-decoded instruction set of the csl-ir interpreter.
 *
 * The opcode list is an X-macro so the enum, the printable names and the
 * computed-goto dispatch table (csl_interpreter.cpp) are generated from
 * one definition and can never drift out of sync. Order matters: the
 * enumerator value indexes the dispatch table.
 *
 * Base opcodes mirror the csl/arith/scf ops the interpreter executes.
 * `Fused*` opcodes are superinstructions: statically-detected hot
 * opcode pairs collapsed into one instruction at configure() time (see
 * the fusion table in csl_interpreter.cpp and docs/architecture.md §8).
 */

#ifndef WSC_INTERP_INTERP_OPCODES_H
#define WSC_INTERP_INTERP_OPCODES_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wsc::interp {

// clang-format off
#define WSC_INTERP_OPCODE_LIST(X)                                       \
    X(Constant)                                                         \
    X(Add)                                                              \
    X(Sub)                                                              \
    X(Mul)                                                              \
    X(Div)                                                              \
    X(Cmp)                                                              \
    X(If)                                                               \
    X(Return)                                                           \
    X(LoadScalar)                                                       \
    X(LoadBuffer)                                                       \
    X(LoadBufferViaPtr)                                                 \
    X(LoadPtr)                                                          \
    X(StoreScalar)                                                      \
    X(StorePtr)                                                         \
    X(AddressOf)                                                        \
    X(GetMemDsd)                                                        \
    X(GetMemDsdViaPtr)                                                  \
    X(IncrementDsdOffset)                                               \
    X(SetDsdLength)                                                     \
    X(Fadds)                                                            \
    X(Fsubs)                                                            \
    X(Fmuls)                                                            \
    X(Fmovs)                                                            \
    X(Fmacs)                                                            \
    X(Call)                                                             \
    X(Activate)                                                         \
    X(CommsExchange)                                                    \
    X(UnblockCmdStream)                                                 \
    X(Nop)                                                              \
    X(Unsupported)                                                      \
    X(FusedCmpIf)                                                       \
    X(FusedConstStoreScalar)                                            \
    X(FusedAddStoreScalar)                                              \
    X(FusedLoadScalarFmacs)                                             \
    X(FusedIncDsdSetLen)                                                \
    X(FusedGetMemDsdInc)
// clang-format on

enum class Opcode : uint8_t
{
#define WSC_INTERP_ENUM(name) name,
    WSC_INTERP_OPCODE_LIST(WSC_INTERP_ENUM)
#undef WSC_INTERP_ENUM
};

constexpr size_t kNumOpcodes = 0
#define WSC_INTERP_COUNT(name) +1
    WSC_INTERP_OPCODE_LIST(WSC_INTERP_COUNT)
#undef WSC_INTERP_COUNT
    ;

/** Printable opcode name (profile dumps, fusion-profile files). */
const char *opcodeName(Opcode op);

/** Reverse of opcodeName(); false when `name` spells no opcode. */
bool opcodeFromName(std::string_view name, Opcode &out);

} // namespace wsc::interp

#endif // WSC_INTERP_INTERP_OPCODES_H
