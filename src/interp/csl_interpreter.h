/**
 * @file
 * The csl-ir interpreter: instantiates a lowered csl.module program on
 * every PE of a simulated WSE and executes it under the simulator's
 * timing model. This stands in for the Cerebras SDK compiler + hardware:
 * the very IR the CSL printer emits as source code is executed, so the
 * generated program structure (tasks, callbacks, DSD builtins, chunked
 * exchanges) is what gets measured.
 */

#ifndef WSC_INTERP_CSL_INTERPRETER_H
#define WSC_INTERP_CSL_INTERPRETER_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comms/star_comm.h"
#include "ir/operation.h"
#include "wse/dsd.h"
#include "wse/simulator.h"

namespace wsc::interp {

/** Host-side initial condition for one field: value at (x, y, z). */
using FieldInitFn = std::function<float(int x, int y, int z)>;

/** One program instance mapped across the simulated PE grid. */
class CslProgramInstance
{
  public:
    /**
     * `root` is either the final builtin.module (layout + program
     * csl.modules) or the program csl.module itself. The IR must outlive
     * this instance.
     */
    CslProgramInstance(wse::Simulator &sim, ir::Operation *root);

    /** Host data transfer: set a field's initial contents. Must be
     *  called before configure(). */
    void setFieldInit(const std::string &field, FieldInitFn init);

    /** Allocate variables, wire the runtime comms library, register
     *  tasks on every PE. */
    void configure();

    /** Host launch: invoke f_main on every PE (memcpy RPC). */
    void launch();

    /**
     * Read back a field column through the result mapping (resolves
     * pointer rotation). Falls back to the field's own buffer when the
     * program records no result for it.
     */
    std::vector<float> readFieldColumn(const std::string &field, int x,
                                       int y);

    /** PEs that returned control to the host (unblock_cmd_stream). */
    uint64_t unblockCount() const { return unblockCount_; }

    /** Dispatch timestamps of for_cond0 on a PE (per-step markers). */
    const std::vector<wse::Cycles> &stepMarks(int x, int y) const;

    /** The runtime communication sites (for statistics). */
    const std::vector<std::unique_ptr<comms::StarComm>> &commSites() const
    {
        return comms_;
    }

    /** Per-PE memory in use after configure (bytes), for reporting. */
    size_t memoryBytesUsed(int x, int y);

  private:
    struct RtValue
    {
        enum class Kind { None, Num, Buffer, DsdVal, Ptr };
        Kind kind = Kind::None;
        double num = 0.0;
        std::string str; ///< buffer name (Buffer) or target (Ptr)
        wse::Dsd dsd;
    };

    struct PeEnv
    {
        /** Pointer-variable targets (buffer names). */
        std::map<std::string, std::string> ptrs;
    };

    using SsaEnv = std::map<ir::ValueImpl *, RtValue>;

    void execBody(ir::Block *block, SsaEnv &env, PeEnv &peEnv,
                  wse::TaskContext &ctx);
    RtValue evalOperand(const SsaEnv &env, ir::Value v) const;
    wse::DsdOperand asDsdOperand(const RtValue &v) const;
    void runCallable(const std::string &name, PeEnv &peEnv,
                     wse::TaskContext &ctx);
    bool interiorEverywhere(int x, int y) const;

    wse::Simulator &sim_;
    ir::Operation *program_ = nullptr;
    std::map<std::string, ir::Operation *> callables_;
    std::map<std::string, ir::Operation *> variables_;
    std::map<std::string, FieldInitFn> fieldInits_;
    std::vector<std::unique_ptr<comms::StarComm>> comms_;
    /** comms site index per csl.comms_exchange op. */
    std::map<ir::Operation *, size_t> commSiteOf_;
    /** comms site per receive-callback task name. */
    std::map<std::string, size_t> commOfRecvCb_;
    std::vector<PeEnv> peEnvs_;
    std::vector<std::vector<wse::Cycles>> stepMarks_;
    uint64_t unblockCount_ = 0;
    bool configured_ = false;
};

} // namespace wsc::interp

#endif // WSC_INTERP_CSL_INTERPRETER_H
