/**
 * @file
 * The csl-ir interpreter: instantiates a lowered csl.module program on
 * every PE of a simulated WSE and executes it under the simulator's
 * timing model. This stands in for the Cerebras SDK compiler + hardware:
 * the very IR the CSL printer emits as source code is executed, so the
 * generated program structure (tasks, callbacks, DSD builtins, chunked
 * exchanges) is what gets measured.
 *
 * Execution is tiered (docs/architecture.md §8). configure() compiles
 * every callable body once into a flat vector of opcode + operand-slot
 * instructions (SSA values become dense slot indices, attributes and
 * comms specs are resolved up front), then:
 *
 *  - Tier 1 — dispatch. The per-PE hot loop is token-threaded
 *    (computed goto, one indirect branch per handler) on GCC/Clang; a
 *    portable switch loop is the build-time fallback and stays
 *    selectable at run time (`WSC_INTERP_DISPATCH=switch`). Both are
 *    generated from one handler definition file
 *    (csl_exec_handlers.inc), so they cannot diverge.
 *  - Tier 2 — superinstructions. A configure-time pass fuses hot
 *    adjacent opcode pairs (e.g. Cmp+If, LoadScalar+Fmacs) into single
 *    fused instructions with pre-combined operands. The pair table is
 *    built in, or selected from an opcode-pair profile captured on a
 *    prior run (`WSC_INTERP_STATS=1` + `WSC_INTERP_PROFILE_OUT`, fed
 *    back through `WSC_INTERP_PROFILE` — the PGO loop).
 *    `WSC_INTERP_NO_FUSE=1` disables fusion.
 *  - Tier 3 — pre-resolved cold checks. Scalar handles are validated
 *    and buffer data pointers cached per PE at configure() time, so
 *    the hot handlers perform no validity checks or name lookups.
 *
 * The original tree-walking evaluator is kept behind
 * setReferenceMode(true) as the semantic oracle: every tier must match
 * it bit for bit (`ctest -L interp`).
 */

#ifndef WSC_INTERP_CSL_INTERPRETER_H
#define WSC_INTERP_CSL_INTERPRETER_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comms/star_comm.h"
#include "dialects/csl.h"
#include "interp/interp_opcodes.h"
#include "interp/interp_profile.h"
#include "ir/operation.h"
#include "wse/dsd.h"
#include "wse/simulator.h"

namespace wsc::interp {

/** Host-side initial condition for one field: value at (x, y, z). */
using FieldInitFn = std::function<float(int x, int y, int z)>;

/** Dispatch strategy request (resolved at configure()). */
enum class DispatchKind : uint8_t
{
    Auto,     ///< Threaded when compiled in, else the switch loop.
    Threaded, ///< Token-threaded computed goto (falls back to Switch
              ///< when the build has no computed-goto support).
    Switch,   ///< Portable for(;;)+switch loop.
};

/**
 * Execution-tier knobs, applied at configure(). Environment variables
 * override the programmatic values (they are the field-tuning
 * interface): WSC_INTERP_DISPATCH=threaded|switch, WSC_INTERP_NO_FUSE,
 * WSC_INTERP_STATS, WSC_INTERP_PROFILE (PGO input path).
 */
struct InterpTuning
{
    DispatchKind dispatch = DispatchKind::Auto;
    /** Run the superinstruction pass (tier 2). */
    bool fuse = true;
    /** Collect the opcode/pair profile (selects the counting dispatch
     *  variant; ~2x slower, bit-identical results). */
    bool collectStats = false;
    /** Fusion-pair profile file from a prior stats run; empty selects
     *  the built-in default pair table. */
    std::string profilePath;
};

/** One program instance mapped across the simulated PE grid. */
class CslProgramInstance
{
  public:
    /**
     * `root` is either the final builtin.module (layout + program
     * csl.modules) or the program csl.module itself. The IR must outlive
     * this instance.
     */
    CslProgramInstance(wse::Simulator &sim, ir::Operation *root);

    /** Dumps the execution profile when stats collection was on (the
     *  `WSC_INTERP_STATS` teardown report / `WSC_INTERP_PROFILE_OUT`
     *  artifact). */
    ~CslProgramInstance();

    /** Host data transfer: set a field's initial contents. Must be
     *  called before configure(). */
    void setFieldInit(const std::string &field, FieldInitFn init);

    /**
     * Execute through the reference tree-walking evaluator instead of
     * the pre-decoded instruction stream. Must be called before
     * configure(). Both modes are semantically identical (asserted by
     * the dispatch-equivalence tests); the reference mode exists as the
     * oracle for those tests.
     */
    void setReferenceMode(bool on);

    /** Select execution tiers. Must be called before configure();
     *  environment variables override individual fields there. */
    void setTuning(const InterpTuning &tuning);

    /** True when this build contains the computed-goto dispatcher. */
    static bool threadedDispatchAvailable();

    /** The dispatch variant configure() resolved to: "threaded",
     *  "switch", "counting" or "reference" ("" before configure). */
    const char *resolvedDispatch() const;

    /** Superinstruction sites the fusion pass created (0 when fusion
     *  is off — or when nothing matched). */
    uint32_t fusedCount() const { return fusedCount_; }

    /** The execution profile; non-null only when stats collection was
     *  enabled at configure(). */
    const InterpProfile *profile() const { return profile_.get(); }

    /** Allocate variables, wire the runtime comms library, register
     *  tasks on every PE. */
    void configure();

    /** Host launch: invoke f_main on every PE (memcpy RPC). */
    void launch();

    /**
     * Read back a field column through the result mapping (resolves
     * pointer rotation). Falls back to the field's own buffer when the
     * program records no result for it.
     */
    std::vector<float> readFieldColumn(const std::string &field, int x,
                                       int y);

    /** PEs that returned control to the host (unblock_cmd_stream). */
    uint64_t unblockCount() const
    {
        return unblockCount_.load(std::memory_order_relaxed);
    }

    /** Frame-arena telemetry summed over PEs: (acquires, heap-backed
     *  frames created). Steady state acquires without creating. */
    std::pair<uint64_t, uint64_t> frameStats() const;

    /** Dispatch timestamps of for_cond0 on a PE (per-step markers). */
    const std::vector<wse::Cycles> &stepMarks(int x, int y) const;

    /** The runtime communication sites (for statistics). */
    const std::vector<std::unique_ptr<comms::StarComm>> &commSites() const
    {
        return comms_;
    }

    /** Per-PE memory in use after configure (bytes), for reporting. */
    size_t memoryBytesUsed(int x, int y);

  private:
    struct RtValue
    {
        enum class Kind { None, Num, Buffer, DsdVal, Ptr };
        Kind kind = Kind::None;
        double num = 0.0;
        /** Dense buffer handle (compiled mode): the buffer (Buffer,
         *  DsdVal) or the pointer target (Ptr). */
        wse::BufferId buf;
        std::string str; ///< buffer name / target (reference mode only)
        /** DSD view; for Buffer/Ptr kinds only dsd.buf is meaningful
         *  (the cached data pointer riding with the handle). */
        wse::Dsd dsd;
    };

    struct PeEnv
    {
        /** Pointer-variable targets (buffer names). */
        std::map<std::string, std::string> ptrs;
    };

    /// @name Pre-decoded form
    /// @{

    /** Comparison predicates, pre-decoded from the string attribute. */
    enum class CmpPred : uint8_t { Lt, Le, Gt, Ge, Eq, Ne };

    struct Instr
    {
        Opcode op = Opcode::Nop;
        CmpPred pred = CmpPred::Lt;
        /** Result slot; -1 when the op produces nothing. */
        int32_t dst = -1;
        /** Operand slots (fused opcodes repurpose c/d for the second
         *  half's operands — see the fusion table). */
        int32_t a = -1, b = -1, c = -1, d = -1;
        /** Constant payload. */
        double imm = 0.0;
        /** DSD shape (GetMemDsd); wrap 0 = no broadcast wrap. */
        int64_t offset = 0, length = 0, stride = 1, wrap = 0;
        /** Variable table index (loads/stores/DSDs/addressof). */
        int32_t var = -1;
        /** Task table index (Activate). */
        int32_t task = -1;
        /** Nested bodies: then/else for If, callee for Call. */
        int32_t body0 = -1, body1 = -1;
        /** Comms site index (CommsExchange). */
        uint32_t site = 0;
        /** Pooled string payload (diagnostics only). */
        const std::string *str = nullptr;
    };

    struct CompiledBody
    {
        /** Instruction stream; always terminated by a Return sentinel
         *  so fall-through dispatch never runs off the end. */
        std::vector<Instr> code;
        /** Slot count; meaningful on callable roots only. */
        uint32_t numSlots = 0;
        /** Callable entry-block argument slots, in order. */
        std::vector<int32_t> argSlots;
    };

    /**
     * Recycled stack of RtValue slot frames: the exec loop gets its
     * frame from here instead of constructing a std::vector per
     * activation — after warmup, task dispatch performs zero heap
     * allocations. Frames are vectors so nested activations (csl.call)
     * simply pop another one; released frames keep their capacity.
     */
    struct FrameStack
    {
        std::vector<std::vector<RtValue>> pool;
        uint64_t acquires = 0;
        /** Acquires that allocated (empty pool or capacity growth). */
        uint64_t fresh = 0;

        std::vector<RtValue> acquire(uint32_t n);
        void
        release(std::vector<RtValue> &&frame)
        {
            pool.push_back(std::move(frame));
        }
    };

    /**
     * Per-PE pre-resolved dense handles, built once at configure():
     * the opcode loop touches no strings, and (tier 3) scalar handles
     * are pre-validated and buffer data pointers pre-resolved so the
     * hot handlers carry no per-access checks.
     */
    struct PeRt
    {
        /** Scalar handle per var-table index (invalid = not a scalar;
         *  validated at configure for every scalar-accessing instr). */
        std::vector<wse::ScalarId> scalarId;
        /** Buffer handle per var-table index (invalid = no buffer). */
        std::vector<wse::BufferId> bufferId;
        /** Buffer data per var-table index (nullptr = no buffer);
         *  stable for the run — Pe buffer slots live in a deque. */
        std::vector<std::vector<float> *> bufferData;
        /** Pointer-variable target buffer per var-table index; mutated
         *  by StorePtr at run time (pointer rotation). */
        std::vector<wse::BufferId> ptrTarget;
        /** Data of ptrTarget, kept in lock step by StorePtr. */
        std::vector<std::vector<float> *> ptrData;
        /** Task handle per task-table index (Activate targets). */
        std::vector<wse::TaskId> taskId;
        /** Receive / done callback task per comms site. */
        std::vector<wse::TaskId> commRecv;
        std::vector<wse::TaskId> commDone;
        /** Recycled activation frames (see FrameStack). */
        FrameStack frames;
    };

    class Compiler;
    friend class Compiler;

    /** The dispatch variant resolved at configure(). */
    enum class ExecVariant : uint8_t { Threaded, Switch, Counting };

    void compileProgram();
    /** Tier 2: collapse enabled adjacent pairs into fused opcodes. */
    void fuseBodies();
    /** Append the Return sentinel every dispatch variant relies on. */
    void sealBodies();
    /** Tier 3: validate scalar handles and cache buffer data for one
     *  PE's dense tables (panics at configure, not mid-run). */
    void resolveColdChecks(wse::Pe &pe, PeRt &rt);

    /** Dispatch-variant front door (selects the resolved variant). */
    void execCompiled(int bodyIdx, std::vector<RtValue> &slots,
                      PeEnv &peEnv, PeRt &peRt, wse::TaskContext &ctx);
    void execSwitch(int bodyIdx, std::vector<RtValue> &slots,
                    PeEnv &peEnv, PeRt &peRt, wse::TaskContext &ctx);
    void execThreaded(int bodyIdx, std::vector<RtValue> &slots,
                      PeEnv &peEnv, PeRt &peRt, wse::TaskContext &ctx);
    void execCounting(int bodyIdx, std::vector<RtValue> &slots,
                      PeEnv &peEnv, PeRt &peRt, wse::TaskContext &ctx);
    void runCompiledCallable(int bodyIdx, PeEnv &peEnv, PeRt &peRt,
                             wse::TaskContext &ctx);
    /// @}

    using SsaEnv = std::map<ir::ValueImpl *, RtValue>;

    void execBody(ir::Block *block, SsaEnv &env, PeEnv &peEnv,
                  wse::TaskContext &ctx);
    RtValue evalOperand(const SsaEnv &env, ir::Value v) const;
    wse::DsdOperand asDsdOperand(const RtValue &v) const;
    void runCallable(const std::string &name, PeEnv &peEnv,
                     wse::TaskContext &ctx);
    bool interiorEverywhere(int x, int y) const;

    wse::Simulator &sim_;
    ir::Operation *program_ = nullptr;
    std::map<std::string, ir::Operation *> callables_;
    std::map<std::string, ir::Operation *> variables_;
    std::map<std::string, FieldInitFn> fieldInits_;
    std::vector<std::unique_ptr<comms::StarComm>> comms_;
    /** comms site index per csl.comms_exchange op. */
    std::map<ir::Operation *, size_t> commSiteOf_;
    /** comms site per receive-callback task name. */
    std::map<std::string, size_t> commOfRecvCb_;
    std::vector<PeEnv> peEnvs_;
    std::vector<std::vector<wse::Cycles>> stepMarks_;
    /** Atomic: incremented from any shard's worker thread. */
    std::atomic<uint64_t> unblockCount_{0};
    /**
     * Per-PE unblock_cmd_stream flag feeding the deadlock diagnosis
     * (each entry is only written by its own PE's events). Valid after
     * launch(); the quiescence probe names PEs whose flag never set.
     */
    std::vector<char> peUnblocked_;
    bool configured_ = false;
    bool launched_ = false;
    bool referenceMode_ = false;

    /// @name Execution tiers (resolved at configure)
    /// @{
    InterpTuning tuning_;
    ExecVariant variant_ = ExecVariant::Switch;
    uint32_t fusedCount_ = 0;
    /** Enabled fusion rules (index into the rule table). */
    std::vector<uint8_t> enabledRules_;
    std::unique_ptr<InterpProfile> profile_;
    /// @}

    /// @name Compiled program (shared across PEs)
    /// @{
    /** Intern a variable name into the var table. */
    int32_t varIdx(const std::string &name);
    /** Intern a task name into the task table. */
    int32_t taskIdx(const std::string &name);

    std::vector<CompiledBody> bodies_;
    std::map<std::string, int> bodyOf_;
    std::vector<std::string> varNames_;
    std::map<std::string, int32_t> varIndex_;
    /** Activate-target task names (per-PE handles live in PeRt). */
    std::vector<std::string> taskNames_;
    std::map<std::string, int32_t> taskIndex_;
    /** Receive / done callback names per comms site. */
    std::vector<std::pair<std::string, std::string>> siteCbNames_;
    std::deque<std::string> stringPool_;
    std::vector<PeRt> peRts_;
    /// @}
};

} // namespace wsc::interp

#endif // WSC_INTERP_CSL_INTERPRETER_H
