/**
 * @file
 * The csl-ir interpreter: instantiates a lowered csl.module program on
 * every PE of a simulated WSE and executes it under the simulator's
 * timing model. This stands in for the Cerebras SDK compiler + hardware:
 * the very IR the CSL printer emits as source code is executed, so the
 * generated program structure (tasks, callbacks, DSD builtins, chunked
 * exchanges) is what gets measured.
 *
 * Execution is pre-decoded: configure() compiles every callable body once
 * into a flat vector of opcode + operand-slot instructions (SSA values
 * become dense slot indices, attributes and comms specs are resolved
 * up front), and the per-PE, per-cycle hot loop is a switch over the
 * opcode. The original tree-walking evaluator is kept behind
 * setReferenceMode(true) as the semantic oracle for equivalence tests.
 */

#ifndef WSC_INTERP_CSL_INTERPRETER_H
#define WSC_INTERP_CSL_INTERPRETER_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comms/star_comm.h"
#include "dialects/csl.h"
#include "ir/operation.h"
#include "wse/dsd.h"
#include "wse/simulator.h"

namespace wsc::interp {

/** Host-side initial condition for one field: value at (x, y, z). */
using FieldInitFn = std::function<float(int x, int y, int z)>;

/** One program instance mapped across the simulated PE grid. */
class CslProgramInstance
{
  public:
    /**
     * `root` is either the final builtin.module (layout + program
     * csl.modules) or the program csl.module itself. The IR must outlive
     * this instance.
     */
    CslProgramInstance(wse::Simulator &sim, ir::Operation *root);

    /** Host data transfer: set a field's initial contents. Must be
     *  called before configure(). */
    void setFieldInit(const std::string &field, FieldInitFn init);

    /**
     * Execute through the reference tree-walking evaluator instead of
     * the pre-decoded instruction stream. Must be called before
     * configure(). Both modes are semantically identical (asserted by
     * the dispatch-equivalence tests); the reference mode exists as the
     * oracle for those tests.
     */
    void setReferenceMode(bool on);

    /** Allocate variables, wire the runtime comms library, register
     *  tasks on every PE. */
    void configure();

    /** Host launch: invoke f_main on every PE (memcpy RPC). */
    void launch();

    /**
     * Read back a field column through the result mapping (resolves
     * pointer rotation). Falls back to the field's own buffer when the
     * program records no result for it.
     */
    std::vector<float> readFieldColumn(const std::string &field, int x,
                                       int y);

    /** PEs that returned control to the host (unblock_cmd_stream). */
    uint64_t unblockCount() const
    {
        return unblockCount_.load(std::memory_order_relaxed);
    }

    /** Frame-arena telemetry summed over PEs: (acquires, heap-backed
     *  frames created). Steady state acquires without creating. */
    std::pair<uint64_t, uint64_t> frameStats() const;

    /** Dispatch timestamps of for_cond0 on a PE (per-step markers). */
    const std::vector<wse::Cycles> &stepMarks(int x, int y) const;

    /** The runtime communication sites (for statistics). */
    const std::vector<std::unique_ptr<comms::StarComm>> &commSites() const
    {
        return comms_;
    }

    /** Per-PE memory in use after configure (bytes), for reporting. */
    size_t memoryBytesUsed(int x, int y);

  private:
    struct RtValue
    {
        enum class Kind { None, Num, Buffer, DsdVal, Ptr };
        Kind kind = Kind::None;
        double num = 0.0;
        /** Dense buffer handle (compiled mode): the buffer (Buffer,
         *  DsdVal) or the pointer target (Ptr). */
        wse::BufferId buf;
        std::string str; ///< buffer name / target (reference mode only)
        wse::Dsd dsd;
    };

    struct PeEnv
    {
        /** Pointer-variable targets (buffer names). */
        std::map<std::string, std::string> ptrs;
    };

    /// @name Pre-decoded form
    /// @{
    enum class Opcode : uint8_t
    {
        Constant,
        Add,
        Sub,
        Mul,
        Div,
        Cmp,
        If,
        Return,
        LoadScalar,
        LoadBuffer,
        LoadBufferViaPtr,
        LoadPtr,
        StoreVar,
        AddressOf,
        GetMemDsd,
        GetMemDsdViaPtr,
        IncrementDsdOffset,
        SetDsdLength,
        Fadds,
        Fsubs,
        Fmuls,
        Fmovs,
        Fmacs,
        Call,
        Activate,
        CommsExchange,
        UnblockCmdStream,
        Nop,
        Unsupported,
    };

    /** Comparison predicates, pre-decoded from the string attribute. */
    enum class CmpPred : uint8_t { Lt, Le, Gt, Ge, Eq, Ne };

    struct Instr
    {
        Opcode op = Opcode::Nop;
        CmpPred pred = CmpPred::Lt;
        bool hasWrap = false;
        /** Result slot; -1 when the op produces nothing. */
        int32_t dst = -1;
        /** Operand slots. */
        int32_t a = -1, b = -1, c = -1, d = -1;
        /** Constant payload. */
        double imm = 0.0;
        /** DSD shape (GetMemDsd). */
        int64_t offset = 0, length = 0, stride = 1, wrap = 0;
        /** Variable table index (loads/stores/DSDs/addressof). */
        int32_t var = -1;
        /** Task table index (Activate). */
        int32_t task = -1;
        /** Nested bodies: then/else for If, callee for Call. */
        int32_t body0 = -1, body1 = -1;
        /** Comms site index (CommsExchange). */
        uint32_t site = 0;
        /** Pooled string payload (diagnostics only). */
        const std::string *str = nullptr;
    };

    struct CompiledBody
    {
        std::vector<Instr> code;
        /** Slot count; meaningful on callable roots only. */
        uint32_t numSlots = 0;
        /** Callable entry-block argument slots, in order. */
        std::vector<int32_t> argSlots;
    };

    /**
     * Recycled stack of RtValue slot frames: execCompiled gets its
     * frame from here instead of constructing a std::vector per
     * activation — after warmup, task dispatch performs zero heap
     * allocations. Frames are vectors so nested activations (csl.call)
     * simply pop another one; released frames keep their capacity.
     */
    struct FrameStack
    {
        std::vector<std::vector<RtValue>> pool;
        uint64_t acquires = 0;
        /** Acquires that allocated (empty pool or capacity growth). */
        uint64_t fresh = 0;

        std::vector<RtValue> acquire(uint32_t n);
        void
        release(std::vector<RtValue> &&frame)
        {
            pool.push_back(std::move(frame));
        }
    };

    /**
     * Per-PE pre-resolved dense handles, built once at configure():
     * the opcode loop touches no strings.
     */
    struct PeRt
    {
        /** Scalar handle per var-table index (invalid = not a scalar). */
        std::vector<wse::ScalarId> scalarId;
        /** Buffer handle per var-table index (invalid = no buffer). */
        std::vector<wse::BufferId> bufferId;
        /** Pointer-variable target buffer per var-table index; mutated
         *  by StoreVar at run time (pointer rotation). */
        std::vector<wse::BufferId> ptrTarget;
        /** Task handle per task-table index (Activate targets). */
        std::vector<wse::TaskId> taskId;
        /** Receive / done callback task per comms site. */
        std::vector<wse::TaskId> commRecv;
        std::vector<wse::TaskId> commDone;
        /** Recycled activation frames (see FrameStack). */
        FrameStack frames;
    };

    class Compiler;
    friend class Compiler;

    void compileProgram();
    void execCompiled(int bodyIdx, std::vector<RtValue> &slots,
                      PeEnv &peEnv, PeRt &peRt, wse::TaskContext &ctx);
    void runCompiledCallable(int bodyIdx, PeEnv &peEnv, PeRt &peRt,
                             wse::TaskContext &ctx);
    /// @}

    using SsaEnv = std::map<ir::ValueImpl *, RtValue>;

    void execBody(ir::Block *block, SsaEnv &env, PeEnv &peEnv,
                  wse::TaskContext &ctx);
    RtValue evalOperand(const SsaEnv &env, ir::Value v) const;
    wse::DsdOperand asDsdOperand(const RtValue &v) const;
    void runCallable(const std::string &name, PeEnv &peEnv,
                     wse::TaskContext &ctx);
    bool interiorEverywhere(int x, int y) const;

    wse::Simulator &sim_;
    ir::Operation *program_ = nullptr;
    std::map<std::string, ir::Operation *> callables_;
    std::map<std::string, ir::Operation *> variables_;
    std::map<std::string, FieldInitFn> fieldInits_;
    std::vector<std::unique_ptr<comms::StarComm>> comms_;
    /** comms site index per csl.comms_exchange op. */
    std::map<ir::Operation *, size_t> commSiteOf_;
    /** comms site per receive-callback task name. */
    std::map<std::string, size_t> commOfRecvCb_;
    std::vector<PeEnv> peEnvs_;
    std::vector<std::vector<wse::Cycles>> stepMarks_;
    /** Atomic: incremented from any shard's worker thread. */
    std::atomic<uint64_t> unblockCount_{0};
    /**
     * Per-PE unblock_cmd_stream flag feeding the deadlock diagnosis
     * (each entry is only written by its own PE's events). Valid after
     * launch(); the quiescence probe names PEs whose flag never set.
     */
    std::vector<char> peUnblocked_;
    bool configured_ = false;
    bool launched_ = false;
    bool referenceMode_ = false;

    /// @name Compiled program (shared across PEs)
    /// @{
    /** Intern a variable name into the var table. */
    int32_t varIdx(const std::string &name);
    /** Intern a task name into the task table. */
    int32_t taskIdx(const std::string &name);

    std::vector<CompiledBody> bodies_;
    std::map<std::string, int> bodyOf_;
    std::vector<std::string> varNames_;
    std::map<std::string, int32_t> varIndex_;
    /** Activate-target task names (per-PE handles live in PeRt). */
    std::vector<std::string> taskNames_;
    std::map<std::string, int32_t> taskIndex_;
    /** Receive / done callback names per comms site. */
    std::vector<std::pair<std::string, std::string>> siteCbNames_;
    std::deque<std::string> stringPool_;
    std::vector<PeRt> peRts_;
    /// @}
};

} // namespace wsc::interp

#endif // WSC_INTERP_CSL_INTERPRETER_H
