#include "interp/csl_interpreter.h"

#include <set>

#include "dialects/arith.h"
#include "dialects/csl.h"
#include "dialects/scf.h"
#include "support/error.h"

namespace wsc::interp {

namespace {

namespace csl = dialects::csl;
namespace ar = dialects::arith;
namespace scf = dialects::scf;

/** Find the program csl.module under root (or root itself). */
ir::Operation *
findProgramModule(ir::Operation *root)
{
    if (root->name() == csl::kModule &&
        root->strAttr("kind") == "program")
        return root;
    ir::Operation *program = nullptr;
    root->walk([&](ir::Operation *op) {
        if (op->name() == csl::kModule &&
            op->strAttr("kind") == "program")
            program = op;
    });
    WSC_ASSERT(program, "no program csl.module found");
    return program;
}

} // namespace

CslProgramInstance::CslProgramInstance(wse::Simulator &sim,
                                       ir::Operation *root)
    : sim_(sim), program_(findProgramModule(root))
{
    peEnvs_.resize(static_cast<size_t>(sim.width()) * sim.height());
    stepMarks_.resize(peEnvs_.size());
}

void
CslProgramInstance::setFieldInit(const std::string &field, FieldInitFn init)
{
    WSC_ASSERT(!configured_, "setFieldInit after configure");
    fieldInits_[field] = std::move(init);
}

bool
CslProgramInstance::interiorEverywhere(int x, int y) const
{
    for (const auto &comm : comms_)
        if (comm->expectedSections(x, y) == 0)
            return false;
    return true;
}

void
CslProgramInstance::configure()
{
    WSC_ASSERT(!configured_, "configure called twice");
    configured_ = true;

    // --- Collect module structure ---------------------------------------
    std::vector<ir::Operation *> commsOps;
    for (ir::Operation *op : csl::moduleBody(program_)->opsVector()) {
        if (op->name() == csl::kFunc || op->name() == csl::kTask)
            callables_[op->strAttr("sym_name")] = op;
        else if (op->name() == csl::kVariable)
            variables_[op->strAttr("sym_name")] = op;
    }
    program_->walk([&](ir::Operation *op) {
        if (op->name() == csl::kCommsExchange)
            commsOps.push_back(op);
    });

    // --- Runtime communication sites ------------------------------------
    for (size_t i = 0; i < commsOps.size(); ++i) {
        csl::CommsExchangeSpec spec =
            csl::commsExchangeSpec(commsOps[i]);
        comms::StarCommConfig config;
        for (const auto &[dx, dy] : spec.accesses)
            config.accesses.push_back(
                {static_cast<int>(dx), static_cast<int>(dy)});
        config.accesses = comms::canonicalAccessOrder(config.accesses);
        config.zSize = spec.zSize;
        config.numChunks = spec.numChunks;
        config.trimFirst = spec.trimFirst;
        config.trimLast = spec.trimLast;
        config.coeffs = spec.coeffs;
        config.recvBufferName = spec.recvBufferName;
        config.baseColor = static_cast<wse::Color>(4 * i);
        comms_.push_back(
            std::make_unique<comms::StarComm>(sim_, config));
        commSiteOf_[commsOps[i]] = i;
        commOfRecvCb_[spec.recvCallback] = i;
    }

    // Buffer-rotation pool: the initial targets of all pointer
    // variables. On boundary (non-computing) PEs the host loads every
    // pool buffer with the primary wavefield's boundary-condition data,
    // making pointer rotation value-neutral there.
    std::set<std::string> rotationPool;
    std::string primaryField;
    for (const auto &[name, var] : variables_) {
        ir::Type type = ir::typeAttrValue(var->attr("type"));
        if (!csl::isPtrType(type))
            continue;
        std::string target = ir::stringAttrValue(var->attr("init"));
        rotationPool.insert(target);
        if (name == "ptr_iter0")
            primaryField = target;
    }

    // --- Per-PE state ----------------------------------------------------
    for (int x = 0; x < sim_.width(); ++x) {
        for (int y = 0; y < sim_.height(); ++y) {
            wse::Pe &pe = sim_.pe(x, y);
            PeEnv &env =
                peEnvs_[static_cast<size_t>(x) * sim_.height() + y];
            bool boundaryPe = !interiorEverywhere(x, y);

            for (const auto &[name, var] : variables_) {
                ir::Type type = ir::typeAttrValue(var->attr("type"));
                if (var->hasAttr("comms_owned"))
                    continue; // StarComm::setup allocates these.
                if (ir::isMemRef(type)) {
                    std::vector<float> &buf = pe.allocBuffer(
                        name,
                        static_cast<size_t>(ir::numElementsOf(type)));
                    // Host data transfer: fields get their own init;
                    // result buffers inherit from their target field;
                    // rotation-pool buffers on boundary PEs all carry
                    // the primary field's boundary condition.
                    std::string initField;
                    if (fieldInits_.count(name))
                        initField = name;
                    else if (var->hasAttr("init_as"))
                        initField = var->strAttr("init_as");
                    if (boundaryPe && !primaryField.empty() &&
                        rotationPool.count(name))
                        initField = primaryField;
                    auto it = fieldInits_.find(initField);
                    if (it != fieldInits_.end()) {
                        for (size_t z = 0; z < buf.size(); ++z)
                            buf[z] = it->second(x, y,
                                                static_cast<int>(z));
                    }
                } else if (csl::isPtrType(type)) {
                    env.ptrs[name] =
                        ir::stringAttrValue(var->attr("init"));
                } else {
                    int64_t init = 0;
                    if (ir::Attribute a = var->attr("init"))
                        init = ir::intAttrValue(a);
                    pe.scalar(name) = static_cast<double>(init);
                }
            }
        }
    }

    // StarComm setup after variables (its receive buffers count towards
    // the same 48 kB).
    for (auto &comm : comms_)
        comm->setup();

    // Comptime role flags depend on the comm sites' view of the grid.
    for (int x = 0; x < sim_.width(); ++x) {
        for (int y = 0; y < sim_.height(); ++y) {
            wse::Pe &pe = sim_.pe(x, y);
            for (const auto &[name, var] : variables_) {
                if (var->hasAttr("comptime_role"))
                    pe.scalar(name) =
                        interiorEverywhere(x, y) ? 1.0 : 0.0;
                if (ir::Attribute site = var->attr("comptime_role_site")) {
                    size_t idx =
                        commOfRecvCb_.at(ir::stringAttrValue(site));
                    pe.scalar(name) =
                        comms_[idx]->expectedSections(x, y) > 0 ? 1.0
                                                                : 0.0;
                }
            }
            // Register every callable as an activatable task.
            for (const auto &[name, op] : callables_) {
                std::string taskName = name;
                pe.registerTask(
                    taskName, wse::TaskKind::Local,
                    [this, op, x, y, taskName](wse::TaskContext &ctx) {
                        PeEnv &penv =
                            peEnvs_[static_cast<size_t>(x) *
                                        sim_.height() +
                                    y];
                        if (taskName == "for_cond0")
                            stepMarks_[static_cast<size_t>(x) *
                                           sim_.height() +
                                       y]
                                .push_back(ctx.startCycle());
                        SsaEnv env;
                        ir::Block *body = csl::calleeBody(op);
                        if (body->numArguments() == 1) {
                            // Receive-chunk callback: bind the chunk
                            // offset provided by the comms library.
                            size_t site = commOfRecvCb_.at(taskName);
                            RtValue offset;
                            offset.kind = RtValue::Kind::Num;
                            offset.num = static_cast<double>(
                                comms_[site]->popCompletedChunkOffset(
                                    ctx.pe()));
                            env[body->argument(0).impl()] = offset;
                        }
                        execBody(body, env, penv, ctx);
                    });
            }
        }
    }
}

void
CslProgramInstance::launch()
{
    WSC_ASSERT(configured_, "launch before configure");
    for (int x = 0; x < sim_.width(); ++x)
        for (int y = 0; y < sim_.height(); ++y)
            sim_.pe(x, y).activate("f_main", 0);
}

CslProgramInstance::RtValue
CslProgramInstance::evalOperand(const SsaEnv &env, ir::Value v) const
{
    auto it = env.find(v.impl());
    WSC_ASSERT(it != env.end(), "use of an unevaluated SSA value");
    return it->second;
}

wse::DsdOperand
CslProgramInstance::asDsdOperand(const RtValue &v) const
{
    if (v.kind == RtValue::Kind::DsdVal)
        return wse::DsdOperand::fromDsd(v.dsd);
    WSC_ASSERT(v.kind == RtValue::Kind::Num,
               "builtin operand must be a DSD or scalar");
    return wse::DsdOperand::fromScalar(static_cast<float>(v.num));
}

void
CslProgramInstance::runCallable(const std::string &name, PeEnv &peEnv,
                                wse::TaskContext &ctx)
{
    auto it = callables_.find(name);
    WSC_ASSERT(it != callables_.end(), "call of unknown symbol " << name);
    SsaEnv env;
    execBody(csl::calleeBody(it->second), env, peEnv, ctx);
}

void
CslProgramInstance::execBody(ir::Block *block, SsaEnv &env, PeEnv &peEnv,
                             wse::TaskContext &ctx)
{
    wse::Pe &pe = ctx.pe();
    for (ir::Operation *op : block->opsVector()) {
        const std::string &n = op->name();
        if (n == ar::kConstant) {
            RtValue v;
            v.kind = RtValue::Kind::Num;
            ir::Attribute a = op->attr("value");
            v.num = ir::isFloatAttr(a) ? ir::floatAttrValue(a)
                                       : static_cast<double>(
                                             ir::intAttrValue(a));
            env[op->result().impl()] = v;
            continue;
        }
        if (n == ar::kAddI || n == ar::kSubI || n == ar::kMulI ||
            n == ar::kAddF || n == ar::kSubF || n == ar::kMulF ||
            n == ar::kDivF) {
            double a = evalOperand(env, op->operand(0)).num;
            double b = evalOperand(env, op->operand(1)).num;
            double r = 0.0;
            if (n == ar::kAddI || n == ar::kAddF)
                r = a + b;
            else if (n == ar::kSubI || n == ar::kSubF)
                r = a - b;
            else if (n == ar::kMulI || n == ar::kMulF)
                r = a * b;
            else
                r = a / b;
            RtValue v;
            v.kind = RtValue::Kind::Num;
            v.num = r;
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == ar::kCmpI) {
            double a = evalOperand(env, op->operand(0)).num;
            double b = evalOperand(env, op->operand(1)).num;
            const std::string &p = op->strAttr("predicate");
            bool r = p == "lt"   ? a < b
                     : p == "le" ? a <= b
                     : p == "gt" ? a > b
                     : p == "ge" ? a >= b
                     : p == "eq" ? a == b
                                 : a != b;
            RtValue v;
            v.kind = RtValue::Kind::Num;
            v.num = r ? 1.0 : 0.0;
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == scf::kIf) {
            bool cond = evalOperand(env, op->operand(0)).num != 0.0;
            ctx.consume(1);
            ir::Block *branch = cond ? scf::ifThenBlock(op)
                                     : (op->region(1).empty()
                                            ? nullptr
                                            : scf::ifElseBlock(op));
            if (branch)
                execBody(branch, env, peEnv, ctx);
            continue;
        }
        if (n == scf::kYield)
            continue;
        if (n == csl::kReturn)
            return;
        if (n == csl::kLoadVar) {
            const std::string &var = op->strAttr("var");
            ir::Type t = op->result().type();
            RtValue v;
            if (ir::isMemRef(t)) {
                v.kind = RtValue::Kind::Buffer;
                v.str = op->hasAttr("via_ptr") ? peEnv.ptrs.at(var) : var;
            } else if (csl::isPtrType(t)) {
                v.kind = RtValue::Kind::Ptr;
                v.str = peEnv.ptrs.at(var);
            } else {
                v.kind = RtValue::Kind::Num;
                v.num = pe.scalar(var);
            }
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == csl::kStoreVar) {
            const std::string &var = op->strAttr("var");
            RtValue v = evalOperand(env, op->operand(0));
            if (v.kind == RtValue::Kind::Ptr ||
                v.kind == RtValue::Kind::Buffer)
                peEnv.ptrs[var] = v.str;
            else
                pe.scalar(var) = v.num;
            ctx.consume(1);
            continue;
        }
        if (n == csl::kAddressOf) {
            RtValue v;
            v.kind = RtValue::Kind::Ptr;
            v.str = op->strAttr("var");
            env[op->result().impl()] = v;
            continue;
        }
        if (n == csl::kGetMemDsd) {
            const std::string &var = op->strAttr("var");
            std::string bufName =
                op->hasAttr("via_ptr") ? peEnv.ptrs.at(var) : var;
            RtValue v;
            v.kind = RtValue::Kind::DsdVal;
            v.str = bufName;
            v.dsd.buf = &pe.buffer(bufName);
            v.dsd.offset = op->intAttr("offset");
            v.dsd.length = op->intAttr("length");
            v.dsd.stride = op->intAttr("stride");
            if (op->hasAttr("wrap"))
                v.dsd.wrap = op->intAttr("wrap");
            env[op->result().impl()] = v;
            ctx.consume(2); // DSD configuration is cheap but not free.
            continue;
        }
        if (n == csl::kIncrementDsdOffset) {
            RtValue v = evalOperand(env, op->operand(0));
            double delta = evalOperand(env, op->operand(1)).num;
            v.dsd.offset += static_cast<int64_t>(delta);
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == csl::kSetDsdLength) {
            RtValue v = evalOperand(env, op->operand(0));
            v.dsd.length = static_cast<int64_t>(
                evalOperand(env, op->operand(1)).num);
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == csl::kFadds || n == csl::kFsubs || n == csl::kFmuls) {
            wse::Dsd dest = evalOperand(env, op->operand(0)).dsd;
            wse::DsdOperand a =
                asDsdOperand(evalOperand(env, op->operand(1)));
            wse::DsdOperand b =
                asDsdOperand(evalOperand(env, op->operand(2)));
            if (n == csl::kFadds)
                wse::fadds(ctx, dest, a, b);
            else if (n == csl::kFsubs)
                wse::fsubs(ctx, dest, a, b);
            else
                wse::fmuls(ctx, dest, a, b);
            continue;
        }
        if (n == csl::kFmovs) {
            wse::Dsd dest = evalOperand(env, op->operand(0)).dsd;
            wse::DsdOperand src =
                asDsdOperand(evalOperand(env, op->operand(1)));
            wse::fmovs(ctx, dest, src);
            continue;
        }
        if (n == csl::kFmacs) {
            wse::Dsd dest = evalOperand(env, op->operand(0)).dsd;
            wse::DsdOperand a =
                asDsdOperand(evalOperand(env, op->operand(1)));
            wse::DsdOperand b =
                asDsdOperand(evalOperand(env, op->operand(2)));
            double scalar = evalOperand(env, op->operand(3)).num;
            wse::fmacs(ctx, dest, a, b, static_cast<float>(scalar));
            continue;
        }
        if (n == csl::kCall) {
            runCallable(op->strAttr("callee"), peEnv, ctx);
            ctx.consume(2);
            continue;
        }
        if (n == csl::kActivate) {
            pe.activate(op->strAttr("task"), ctx.currentCycle());
            ctx.consume(2);
            continue;
        }
        if (n == csl::kCommsExchange) {
            size_t site = commSiteOf_.at(op);
            RtValue send = evalOperand(env, op->operand(0));
            WSC_ASSERT(send.kind == RtValue::Kind::DsdVal,
                       "comms_exchange expects a DSD operand");
            csl::CommsExchangeSpec spec = csl::commsExchangeSpec(op);
            comms_[site]->exchange(ctx, send.str, spec.recvCallback,
                                   spec.doneCallback);
            ctx.consume(4);
            continue;
        }
        if (n == csl::kUnblockCmdStream) {
            unblockCount_++;
            continue;
        }
        if (n == csl::kImportModule || n == csl::kMemberCall ||
            n == csl::kExport || n == csl::kParam) {
            // Comptime / host-interface constructs: no runtime effect in
            // the interpreter.
            for (ir::Value r : op->results()) {
                RtValue v;
                v.kind = RtValue::Kind::None;
                env[r.impl()] = v;
            }
            continue;
        }
        panic("csl interpreter: unsupported op " + n);
    }
}

std::vector<float>
CslProgramInstance::readFieldColumn(const std::string &field, int x, int y)
{
    // Resolve through the program's result mapping.
    std::string var = field;
    bool viaPtr = false;
    if (ir::Attribute results = program_->attr("result_fields")) {
        for (ir::Attribute entry : ir::arrayAttrValue(results)) {
            if (ir::stringAttrValue(ir::dictAttrGet(entry, "field")) ==
                field) {
                var = ir::stringAttrValue(ir::dictAttrGet(entry, "var"));
                viaPtr =
                    ir::intAttrValue(ir::dictAttrGet(entry, "via_ptr")) !=
                    0;
            }
        }
    }
    PeEnv &env = peEnvs_[static_cast<size_t>(x) * sim_.height() + y];
    std::string bufName = viaPtr ? env.ptrs.at(var) : var;
    return sim_.pe(x, y).buffer(bufName);
}

const std::vector<wse::Cycles> &
CslProgramInstance::stepMarks(int x, int y) const
{
    return stepMarks_[static_cast<size_t>(x) * sim_.height() + y];
}

size_t
CslProgramInstance::memoryBytesUsed(int x, int y)
{
    return sim_.pe(x, y).memoryBytesUsed();
}

} // namespace wsc::interp
