#include "interp/csl_interpreter.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>

#include "dialects/arith.h"
#include "dialects/csl.h"
#include "dialects/scf.h"
#include "support/env.h"
#include "support/error.h"

// Tier-1 dispatch: token-threaded computed goto where the compiler has
// it, with the portable switch loop as the build-time fallback (also
// run-time selectable via WSC_INTERP_DISPATCH=switch). Define
// WSC_INTERP_NO_COMPUTED_GOTO to force the fallback on a GNU-compatible
// compiler (the CMake option WSC_INTERP_FORCE_SWITCH does this).
#if (defined(__GNUC__) || defined(__clang__)) &&                        \
    !defined(WSC_INTERP_NO_COMPUTED_GOTO)
#define WSC_HAVE_COMPUTED_GOTO 1
#else
#define WSC_HAVE_COMPUTED_GOTO 0
#endif

namespace wsc::interp {

namespace {

namespace csl = dialects::csl;
namespace ar = dialects::arith;
namespace scf = dialects::scf;

/** Find the program csl.module under root (or root itself). */
ir::Operation *
findProgramModule(ir::Operation *root)
{
    if (root->is(csl::kModule) && root->strAttr(ir::attrs::kKind) == "program")
        return root;
    ir::Operation *program = nullptr;
    root->walk([&](ir::Operation *op) {
        if (op->is(csl::kModule) && op->strAttr(ir::attrs::kKind) == "program")
            program = op;
    });
    WSC_ASSERT(program, "no program csl.module found");
    return program;
}

/**
 * The superinstruction table (tier 2): adjacent (first, second) pairs
 * the fusion pass may collapse. Whether a rule is applied is decided at
 * configure() time — all of them by default, or only the pairs present
 * in a WSC_INTERP_PROFILE dump (the PGO loop). The operand-matching
 * condition lives in ruleMatches() inside fuseBodies().
 */
struct FusionRule
{
    Opcode first;
    Opcode second;
    Opcode fused;
};

constexpr FusionRule kFusionRules[] = {
    {Opcode::Cmp, Opcode::If, Opcode::FusedCmpIf},
    {Opcode::GetMemDsd, Opcode::IncrementDsdOffset,
     Opcode::FusedGetMemDsdInc},
    {Opcode::IncrementDsdOffset, Opcode::SetDsdLength,
     Opcode::FusedIncDsdSetLen},
    {Opcode::LoadScalar, Opcode::Fmacs, Opcode::FusedLoadScalarFmacs},
    {Opcode::Constant, Opcode::StoreScalar,
     Opcode::FusedConstStoreScalar},
    {Opcode::Add, Opcode::StoreScalar, Opcode::FusedAddStoreScalar},
};

constexpr size_t kNumFusionRules =
    sizeof(kFusionRules) / sizeof(kFusionRules[0]);

} // namespace

CslProgramInstance::CslProgramInstance(wse::Simulator &sim,
                                       ir::Operation *root)
    : sim_(sim), program_(findProgramModule(root))
{
    peEnvs_.resize(static_cast<size_t>(sim.width()) * sim.height());
    stepMarks_.resize(peEnvs_.size());
}

CslProgramInstance::~CslProgramInstance()
{
    if (!profile_)
        return;
    // Programmatic collectors read profile() themselves; the teardown
    // report and the PGO artifact are the env-driven paths.
    if (envFlag("WSC_INTERP_STATS"))
        profile_->dump(std::cerr);
    std::string path = envStr("WSC_INTERP_PROFILE_OUT");
    if (!path.empty()) {
        std::ofstream os(path);
        if (os)
            profile_->writeProfile(os);
        else
            std::cerr << "wsc: cannot write interpreter profile `"
                      << path << "`\n";
    }
}

void
CslProgramInstance::setFieldInit(const std::string &field, FieldInitFn init)
{
    WSC_ASSERT(!configured_, "setFieldInit after configure");
    fieldInits_[field] = std::move(init);
}

void
CslProgramInstance::setReferenceMode(bool on)
{
    WSC_ASSERT(!configured_, "setReferenceMode after configure");
    referenceMode_ = on;
}

void
CslProgramInstance::setTuning(const InterpTuning &tuning)
{
    WSC_ASSERT(!configured_, "setTuning after configure");
    tuning_ = tuning;
}

bool
CslProgramInstance::threadedDispatchAvailable()
{
    return WSC_HAVE_COMPUTED_GOTO != 0;
}

const char *
CslProgramInstance::resolvedDispatch() const
{
    if (!configured_)
        return "";
    if (referenceMode_)
        return "reference";
    switch (variant_) {
    case ExecVariant::Threaded:
        return "threaded";
    case ExecVariant::Switch:
        return "switch";
    case ExecVariant::Counting:
        return "counting";
    }
    return "";
}

bool
CslProgramInstance::interiorEverywhere(int x, int y) const
{
    for (const auto &comm : comms_)
        if (comm->expectedSections(x, y) == 0)
            return false;
    return true;
}

//===----------------------------------------------------------------------===
// Pre-decode compiler
//===----------------------------------------------------------------------===

/**
 * Compiles callable bodies into flat instruction vectors. SSA values get
 * dense slot indices (per callable, shared with nested scf.if bodies);
 * attributes, comparison predicates and comms specs are resolved once.
 */
class CslProgramInstance::Compiler
{
  public:
    explicit Compiler(CslProgramInstance &self) : self_(self) {}

    void
    compileCallable(const std::string &name, ir::Operation *callable)
    {
        slotIndex_.clear();
        nextSlot_ = 0;
        int idx = self_.bodyOf_.at(name);
        ir::Block *body = csl::calleeBody(callable);
        for (unsigned i = 0; i < body->numArguments(); ++i)
            self_.bodies_[idx].argSlots.push_back(
                slotOf(body->argument(i).impl()));
        compileInto(idx, body);
        self_.bodies_[idx].numSlots = nextSlot_;
    }

  private:
    int32_t
    slotOf(ir::ValueImpl *v)
    {
        auto [it, inserted] = slotIndex_.try_emplace(v, nextSlot_);
        if (inserted)
            nextSlot_++;
        return it->second;
    }

    int32_t varIdx(const std::string &name) { return self_.varIdx(name); }

    int
    newBody()
    {
        self_.bodies_.emplace_back();
        return static_cast<int>(self_.bodies_.size() - 1);
    }

    void
    compileInto(int bodyIdx, ir::Block *block)
    {
        std::vector<Instr> code;
        code.reserve(block->size());
        for (ir::Operation *op : block->operations())
            compileOp(op, code);
        self_.bodies_[bodyIdx].code = std::move(code);
    }

    void
    compileOp(ir::Operation *op, std::vector<Instr> &code)
    {
        ir::OpId n = op->opId();
        Instr ins;
        if (n == ar::kConstant) {
            ir::Attribute a = op->attr(ir::attrs::kValue);
            ins.op = Opcode::Constant;
            ins.dst = slotOf(op->result().impl());
            ins.imm = ir::isFloatAttr(a)
                          ? ir::floatAttrValue(a)
                          : static_cast<double>(ir::intAttrValue(a));
            code.push_back(ins);
            return;
        }
        if (n == ar::kAddI || n == ar::kAddF || n == ar::kSubI ||
            n == ar::kSubF || n == ar::kMulI || n == ar::kMulF ||
            n == ar::kDivF) {
            ins.op = (n == ar::kAddI || n == ar::kAddF) ? Opcode::Add
                     : (n == ar::kSubI || n == ar::kSubF)
                         ? Opcode::Sub
                         : (n == ar::kDivF) ? Opcode::Div : Opcode::Mul;
            ins.a = slotOf(op->operand(0).impl());
            ins.b = slotOf(op->operand(1).impl());
            ins.dst = slotOf(op->result().impl());
            code.push_back(ins);
            return;
        }
        if (n == ar::kCmpI) {
            const std::string &p = op->strAttr(ir::attrs::kPredicate);
            ins.op = Opcode::Cmp;
            ins.pred = p == "lt"   ? CmpPred::Lt
                       : p == "le" ? CmpPred::Le
                       : p == "gt" ? CmpPred::Gt
                       : p == "ge" ? CmpPred::Ge
                       : p == "eq" ? CmpPred::Eq
                                   : CmpPred::Ne;
            ins.a = slotOf(op->operand(0).impl());
            ins.b = slotOf(op->operand(1).impl());
            ins.dst = slotOf(op->result().impl());
            code.push_back(ins);
            return;
        }
        if (n == scf::kIf) {
            ins.op = Opcode::If;
            ins.a = slotOf(op->operand(0).impl());
            ins.body0 = newBody();
            compileInto(ins.body0, scf::ifThenBlock(op));
            if (!op->region(1).empty()) {
                ins.body1 = newBody();
                compileInto(ins.body1, scf::ifElseBlock(op));
            }
            code.push_back(ins);
            return;
        }
        if (n == scf::kYield)
            return;
        if (n == csl::kReturn) {
            ins.op = Opcode::Return;
            code.push_back(ins);
            return;
        }
        if (n == csl::kLoadVar) {
            ir::Type t = op->result().type();
            ins.var = varIdx(op->strAttr(ir::attrs::kVar));
            ins.dst = slotOf(op->result().impl());
            if (ir::isMemRef(t))
                ins.op = op->hasAttr(ir::attrs::kViaPtr) ? Opcode::LoadBufferViaPtr
                                                : Opcode::LoadBuffer;
            else if (csl::isPtrType(t))
                ins.op = Opcode::LoadPtr;
            else
                ins.op = Opcode::LoadScalar;
            code.push_back(ins);
            return;
        }
        if (n == csl::kStoreVar) {
            // Split by the operand's static type so the hot handlers
            // skip the runtime kind dispatch: memref/ptr operands
            // retarget the pointer variable, everything else stores a
            // scalar (Kind::None comptime values store 0.0, exactly as
            // the unsplit opcode did).
            ir::Type t = op->operand(0).type();
            ins.op = (ir::isMemRef(t) || csl::isPtrType(t))
                         ? Opcode::StorePtr
                         : Opcode::StoreScalar;
            ins.var = varIdx(op->strAttr(ir::attrs::kVar));
            ins.a = slotOf(op->operand(0).impl());
            code.push_back(ins);
            return;
        }
        if (n == csl::kAddressOf) {
            ins.op = Opcode::AddressOf;
            ins.var = varIdx(op->strAttr(ir::attrs::kVar));
            ins.dst = slotOf(op->result().impl());
            code.push_back(ins);
            return;
        }
        if (n == csl::kGetMemDsd) {
            ins.op = op->hasAttr(ir::attrs::kViaPtr) ? Opcode::GetMemDsdViaPtr
                                            : Opcode::GetMemDsd;
            ins.var = varIdx(op->strAttr(ir::attrs::kVar));
            ins.dst = slotOf(op->result().impl());
            ins.offset = op->intAttr(ir::attrs::kOffset);
            ins.length = op->intAttr(ir::attrs::kLength);
            ins.stride = op->intAttr(ir::attrs::kStride);
            // wrap 0 (the Dsd default) when the attribute is absent, so
            // the handler assigns unconditionally.
            ins.wrap = op->hasAttr(ir::attrs::kWrap)
                           ? op->intAttr(ir::attrs::kWrap)
                           : 0;
            code.push_back(ins);
            return;
        }
        if (n == csl::kIncrementDsdOffset || n == csl::kSetDsdLength) {
            ins.op = n == csl::kIncrementDsdOffset
                         ? Opcode::IncrementDsdOffset
                         : Opcode::SetDsdLength;
            ins.a = slotOf(op->operand(0).impl());
            ins.b = slotOf(op->operand(1).impl());
            ins.dst = slotOf(op->result().impl());
            code.push_back(ins);
            return;
        }
        if (n == csl::kFadds || n == csl::kFsubs || n == csl::kFmuls ||
            n == csl::kFmacs) {
            ins.op = n == csl::kFadds   ? Opcode::Fadds
                     : n == csl::kFsubs ? Opcode::Fsubs
                     : n == csl::kFmuls ? Opcode::Fmuls
                                        : Opcode::Fmacs;
            ins.a = slotOf(op->operand(0).impl());
            ins.b = slotOf(op->operand(1).impl());
            ins.c = slotOf(op->operand(2).impl());
            if (n == csl::kFmacs)
                ins.d = slotOf(op->operand(3).impl());
            code.push_back(ins);
            return;
        }
        if (n == csl::kFmovs) {
            ins.op = Opcode::Fmovs;
            ins.a = slotOf(op->operand(0).impl());
            ins.b = slotOf(op->operand(1).impl());
            code.push_back(ins);
            return;
        }
        if (n == csl::kCall) {
            const std::string &callee = op->strAttr(ir::attrs::kCallee);
            auto it = self_.bodyOf_.find(callee);
            ins.op = Opcode::Call;
            ins.body0 = it == self_.bodyOf_.end() ? -1 : it->second;
            ins.str = pooled(callee);
            code.push_back(ins);
            return;
        }
        if (n == csl::kActivate) {
            ins.op = Opcode::Activate;
            ins.task = self_.taskIdx(op->strAttr(ir::attrs::kTask));
            code.push_back(ins);
            return;
        }
        if (n == csl::kCommsExchange) {
            ins.op = Opcode::CommsExchange;
            ins.a = slotOf(op->operand(0).impl());
            ins.site = static_cast<uint32_t>(self_.commSiteOf_.at(op));
            code.push_back(ins);
            return;
        }
        if (n == csl::kUnblockCmdStream) {
            ins.op = Opcode::UnblockCmdStream;
            code.push_back(ins);
            return;
        }
        if (n == csl::kImportModule || n == csl::kMemberCall ||
            n == csl::kExport || n == csl::kParam) {
            // Comptime / host-interface constructs: results stay
            // Kind::None (the slots' default), no instruction needed.
            for (ir::Value r : op->results())
                slotOf(r.impl());
            return;
        }
        // Unknown op: preserve the reference semantics of panicking only
        // if and when the op is actually executed.
        for (ir::Value r : op->results())
            slotOf(r.impl());
        ins.op = Opcode::Unsupported;
        ins.str = pooled(op->name());
        code.push_back(ins);
    }

    const std::string *
    pooled(const std::string &s)
    {
        self_.stringPool_.push_back(s);
        return &self_.stringPool_.back();
    }

    CslProgramInstance &self_;
    std::map<ir::ValueImpl *, int32_t> slotIndex_;
    uint32_t nextSlot_ = 0;
};

int32_t
CslProgramInstance::varIdx(const std::string &name)
{
    auto [it, inserted] = varIndex_.try_emplace(
        name, static_cast<int32_t>(varNames_.size()));
    if (inserted)
        varNames_.push_back(name);
    return it->second;
}

int32_t
CslProgramInstance::taskIdx(const std::string &name)
{
    auto [it, inserted] = taskIndex_.try_emplace(
        name, static_cast<int32_t>(taskNames_.size()));
    if (inserted)
        taskNames_.push_back(name);
    return it->second;
}

void
CslProgramInstance::compileProgram()
{
    // Two passes so csl.call sites can resolve forward references.
    for (const auto &[name, op] : callables_) {
        bodyOf_[name] = static_cast<int>(bodies_.size());
        bodies_.emplace_back();
    }
    Compiler compiler(*this);
    for (const auto &[name, op] : callables_)
        compiler.compileCallable(name, op);
    fuseBodies();
    sealBodies();
}

void
CslProgramInstance::fuseBodies()
{
    if (enabledRules_.empty())
        return;

    // Operand condition: the pair only fuses when the second half
    // consumes the first half's result (the fused handlers hard-wire
    // that dataflow). The result slot is still written, so any later
    // reader of the intermediate value stays correct.
    auto ruleMatches = [](const Instr &f, const Instr &s,
                          const FusionRule &r) {
        if (f.op != r.first || s.op != r.second)
            return false;
        if (r.fused == Opcode::FusedLoadScalarFmacs)
            return s.d == f.dst; // fmacs scalar operand
        return s.a == f.dst;
    };

    auto buildFused = [](const Instr &f, const Instr &s, Opcode op) {
        Instr x;
        x.op = op;
        switch (op) {
        case Opcode::FusedCmpIf:
            x.pred = f.pred;
            x.a = f.a;
            x.b = f.b;
            x.dst = f.dst;
            x.body0 = s.body0;
            x.body1 = s.body1;
            break;
        case Opcode::FusedConstStoreScalar:
            x.dst = f.dst;
            x.imm = f.imm;
            x.var = s.var;
            break;
        case Opcode::FusedAddStoreScalar:
            x.a = f.a;
            x.b = f.b;
            x.dst = f.dst;
            x.var = s.var;
            break;
        case Opcode::FusedLoadScalarFmacs:
            x.var = f.var;
            x.dst = f.dst;
            x.a = s.a;
            x.b = s.b;
            x.c = s.c;
            break;
        case Opcode::FusedIncDsdSetLen:
            x.a = f.a;
            x.b = f.b;
            x.dst = f.dst;
            x.c = s.b;
            x.d = s.dst;
            break;
        case Opcode::FusedGetMemDsdInc:
            x.var = f.var;
            x.dst = f.dst;
            x.offset = f.offset;
            x.length = f.length;
            x.stride = f.stride;
            x.wrap = f.wrap;
            x.b = s.b;
            x.c = s.dst;
            break;
        default:
            WSC_ASSERT(false, "not a fused opcode");
        }
        return x;
    };

    // Greedy left-to-right, non-overlapping; rule order is priority
    // when two rules could claim the same pair.
    for (CompiledBody &body : bodies_) {
        std::vector<Instr> out;
        out.reserve(body.code.size());
        size_t i = 0;
        while (i < body.code.size()) {
            bool fused = false;
            if (i + 1 < body.code.size()) {
                for (uint8_t ri : enabledRules_) {
                    const FusionRule &r = kFusionRules[ri];
                    if (ruleMatches(body.code[i], body.code[i + 1], r)) {
                        out.push_back(
                            buildFused(body.code[i], body.code[i + 1],
                                       r.fused));
                        fusedCount_++;
                        i += 2;
                        fused = true;
                        break;
                    }
                }
            }
            if (!fused)
                out.push_back(body.code[i++]);
        }
        body.code = std::move(out);
    }
}

void
CslProgramInstance::sealBodies()
{
    // Fall-through dispatch never bounds-checks: every body ends in an
    // explicit Return. Return's semantics are identical to falling off
    // the end, so sealing is bit-exact (and covers empty scf.if arms).
    Instr ret;
    ret.op = Opcode::Return;
    for (CompiledBody &body : bodies_)
        body.code.push_back(ret);
}

//===----------------------------------------------------------------------===
// Configuration
//===----------------------------------------------------------------------===

void
CslProgramInstance::configure()
{
    WSC_ASSERT(!configured_, "configure called twice");
    // The reference evaluator probes IR attributes at run time; the IR
    // context is not safe to touch from shard worker threads.
    WSC_ASSERT(!referenceMode_ || sim_.shardCount() == 1,
               "reference mode requires the sequential (single-shard) "
               "simulator");
    configured_ = true;

    // Deadlock introspection: after launch(), any PE that has not
    // reached unblock_cmd_stream by the time the event queues drain is
    // stuck mid-program (a halted dependency, a lost wavelet, ...).
    // Gated on launched_ so configure-without-launch runs stay clean.
    sim_.addQuiescenceProbe([this](std::vector<wse::BlockedPeInfo> &out) {
        if (!launched_)
            return;
        for (int x = 0; x < sim_.width(); ++x)
            for (int y = 0; y < sim_.height(); ++y)
                if (!peUnblocked_[sim_.pe(x, y).id()])
                    out.push_back({x, y,
                                   "program incomplete: "
                                   "unblock_cmd_stream not reached",
                                   0, false});
    });

    // --- Execution-tier resolution ---------------------------------------
    // Environment overrides the programmatic tuning; the counting
    // variant (stats) trumps the dispatch choice since it is its own
    // loop. Resolved before compileProgram() so the fusion pass sees
    // the final rule set.
    if (!referenceMode_) {
        if (const char *d = std::getenv("WSC_INTERP_DISPATCH")) {
            std::string s = d;
            if (s == "switch")
                tuning_.dispatch = DispatchKind::Switch;
            else if (s == "threaded")
                tuning_.dispatch = DispatchKind::Threaded;
            else if (!s.empty())
                std::cerr << "wsc: unknown WSC_INTERP_DISPATCH `" << s
                          << "` (threaded|switch); ignored\n";
        }
        if (envFlag("WSC_INTERP_NO_FUSE"))
            tuning_.fuse = false;
        if (envFlag("WSC_INTERP_STATS"))
            tuning_.collectStats = true;
        if (std::string p = envStr("WSC_INTERP_PROFILE"); !p.empty())
            tuning_.profilePath = p;

        variant_ = tuning_.collectStats ? ExecVariant::Counting
                   : tuning_.dispatch != DispatchKind::Switch &&
                           threadedDispatchAvailable()
                       ? ExecVariant::Threaded
                       : ExecVariant::Switch;
        if (tuning_.collectStats)
            profile_ = std::make_unique<InterpProfile>();

        enabledRules_.clear();
        if (tuning_.fuse) {
            std::vector<ProfiledPair> pairs;
            bool haveProfile = false;
            if (!tuning_.profilePath.empty()) {
                std::ifstream is(tuning_.profilePath);
                if (is && readProfile(is, pairs)) {
                    haveProfile = true;
                } else {
                    std::cerr << "wsc: cannot read interpreter profile `"
                              << tuning_.profilePath
                              << "`; using the built-in fusion table\n";
                }
            }
            for (uint8_t i = 0; i < kNumFusionRules; ++i) {
                if (!haveProfile) {
                    enabledRules_.push_back(i);
                    continue;
                }
                // PGO: enable exactly the pairs the profile saw.
                for (const ProfiledPair &p : pairs) {
                    if (p.first == kFusionRules[i].first &&
                        p.second == kFusionRules[i].second) {
                        enabledRules_.push_back(i);
                        break;
                    }
                }
            }
        }
    }

    // --- Collect module structure ---------------------------------------
    std::vector<ir::Operation *> commsOps;
    for (ir::Operation *op : csl::moduleBody(program_)->operations()) {
        if (op->is(csl::kFunc) || op->is(csl::kTask))
            callables_[op->strAttr(ir::attrs::kSymName)] = op;
        else if (op->is(csl::kVariable))
            variables_[op->strAttr(ir::attrs::kSymName)] = op;
    }
    program_->walk([&](ir::Operation *op) {
        if (op->is(csl::kCommsExchange))
            commsOps.push_back(op);
    });

    // --- Runtime communication sites ------------------------------------
    for (size_t i = 0; i < commsOps.size(); ++i) {
        csl::CommsExchangeSpec spec =
            csl::commsExchangeSpec(commsOps[i]);
        comms::StarCommConfig config;
        for (const auto &[dx, dy] : spec.accesses)
            config.accesses.push_back(
                {static_cast<int>(dx), static_cast<int>(dy)});
        config.accesses = comms::canonicalAccessOrder(config.accesses);
        config.zSize = spec.zSize;
        config.numChunks = spec.numChunks;
        config.trimFirst = spec.trimFirst;
        config.trimLast = spec.trimLast;
        config.coeffs = spec.coeffs;
        config.recvBufferName = spec.recvBufferName;
        config.baseColor = static_cast<wse::Color>(4 * i);
        comms_.push_back(
            std::make_unique<comms::StarComm>(sim_, config));
        commSiteOf_[commsOps[i]] = i;
        commOfRecvCb_[spec.recvCallback] = i;
        siteCbNames_.emplace_back(spec.recvCallback, spec.doneCallback);
    }

    // --- Pre-decode every callable (shared across PEs) -------------------
    if (!referenceMode_) {
        compileProgram();
        // Intern every module variable so per-PE handle tables cover
        // names the host touches (readFieldColumn) even when the code
        // never mentions them.
        for (const auto &[name, var] : variables_)
            varIdx(name);
    }

    // Buffer-rotation pool: the initial targets of all pointer
    // variables. On boundary (non-computing) PEs the host loads every
    // pool buffer with the primary wavefield's boundary-condition data,
    // making pointer rotation value-neutral there.
    std::set<std::string> rotationPool;
    std::string primaryField;
    for (const auto &[name, var] : variables_) {
        ir::Type type = ir::typeAttrValue(var->attr(ir::attrs::kType));
        if (!csl::isPtrType(type))
            continue;
        std::string target = ir::stringAttrValue(var->attr(ir::attrs::kInit));
        rotationPool.insert(target);
        if (name == "ptr_iter0")
            primaryField = target;
    }

    // --- Per-PE state ----------------------------------------------------
    for (int x = 0; x < sim_.width(); ++x) {
        for (int y = 0; y < sim_.height(); ++y) {
            wse::Pe &pe = sim_.pe(x, y);
            PeEnv &env =
                peEnvs_[static_cast<size_t>(x) * sim_.height() + y];
            bool boundaryPe = !interiorEverywhere(x, y);

            for (const auto &[name, var] : variables_) {
                ir::Type type = ir::typeAttrValue(var->attr(ir::attrs::kType));
                if (var->hasAttr(ir::attrs::kCommsOwned))
                    continue; // StarComm::setup allocates these.
                if (ir::isMemRef(type)) {
                    std::vector<float> &buf = pe.allocBuffer(
                        name,
                        static_cast<size_t>(ir::numElementsOf(type)));
                    // Host data transfer: fields get their own init;
                    // result buffers inherit from their target field;
                    // rotation-pool buffers on boundary PEs all carry
                    // the primary field's boundary condition.
                    std::string initField;
                    if (fieldInits_.count(name))
                        initField = name;
                    else if (var->hasAttr(ir::attrs::kInitAs))
                        initField = var->strAttr(ir::attrs::kInitAs);
                    if (boundaryPe && !primaryField.empty() &&
                        rotationPool.count(name))
                        initField = primaryField;
                    auto it = fieldInits_.find(initField);
                    if (it != fieldInits_.end()) {
                        for (size_t z = 0; z < buf.size(); ++z)
                            buf[z] = it->second(x, y,
                                                static_cast<int>(z));
                    }
                } else if (csl::isPtrType(type)) {
                    env.ptrs[name] =
                        ir::stringAttrValue(var->attr(ir::attrs::kInit));
                } else {
                    int64_t init = 0;
                    if (ir::Attribute a = var->attr(ir::attrs::kInit))
                        init = ir::intAttrValue(a);
                    pe.scalar(name) = static_cast<double>(init);
                }
            }
        }
    }

    // StarComm setup after variables (its receive buffers count towards
    // the same 48 kB).
    for (auto &comm : comms_)
        comm->setup();

    // Comptime role flags depend on the comm sites' view of the grid.
    // Tasks are registered next, and then the per-PE dense-handle tables
    // (PeRt) are resolved once — after StarComm::setup so library-owned
    // receive buffers resolve, and after registration so activation
    // targets resolve. The opcode loop never touches a string.
    if (!referenceMode_)
        peRts_.resize(peEnvs_.size());
    for (int x = 0; x < sim_.width(); ++x) {
        for (int y = 0; y < sim_.height(); ++y) {
            wse::Pe &pe = sim_.pe(x, y);
            size_t peIdx = static_cast<size_t>(x) * sim_.height() + y;
            for (const auto &[name, var] : variables_) {
                if (var->hasAttr(ir::attrs::kComptimeRole))
                    pe.scalar(name) =
                        interiorEverywhere(x, y) ? 1.0 : 0.0;
                if (ir::Attribute site = var->attr(ir::attrs::kComptimeRoleSite)) {
                    size_t idx =
                        commOfRecvCb_.at(ir::stringAttrValue(site));
                    pe.scalar(name) =
                        comms_[idx]->expectedSections(x, y) > 0 ? 1.0
                                                                : 0.0;
                }
            }

            // Register every callable as an activatable task. Body
            // index, step-marker role and comms site are resolved here,
            // once, instead of per activation.
            for (const auto &[name, op] : callables_) {
                const bool marksStep = name == "for_cond0";
                if (referenceMode_) {
                    std::string taskName = name;
                    pe.registerTask(
                        taskName, wse::TaskKind::Local,
                        [this, op, peIdx, marksStep,
                         taskName](wse::TaskContext &ctx) {
                            if (marksStep)
                                stepMarks_[peIdx].push_back(
                                    ctx.startCycle());
                            SsaEnv env;
                            ir::Block *body = csl::calleeBody(op);
                            if (body->numArguments() == 1) {
                                // Receive-chunk callback: bind the chunk
                                // offset provided by the comms library.
                                size_t site = commOfRecvCb_.at(taskName);
                                RtValue offset;
                                offset.kind = RtValue::Kind::Num;
                                offset.num = static_cast<double>(
                                    comms_[site]
                                        ->popCompletedChunkOffset(
                                            ctx.pe()));
                                env[body->argument(0).impl()] = offset;
                            }
                            execBody(body, env, peEnvs_[peIdx], ctx);
                        });
                    continue;
                }
                const int bodyIdx = bodyOf_.at(name);
                const bool wantsOffset =
                    bodies_[bodyIdx].argSlots.size() == 1;
                int site = -1;
                if (wantsOffset) {
                    // Resolved lazily-diagnosed: a 1-argument task that
                    // is not a registered receive callback only errors
                    // if it is actually activated (as before PR 2).
                    auto it = commOfRecvCb_.find(name);
                    site = it != commOfRecvCb_.end()
                               ? static_cast<int>(it->second)
                               : -1;
                }
                pe.registerTask(
                    name, wse::TaskKind::Local,
                    [this, bodyIdx, site, wantsOffset, peIdx,
                     marksStep](wse::TaskContext &ctx) {
                        if (marksStep)
                            stepMarks_[peIdx].push_back(
                                ctx.startCycle());
                        const CompiledBody &cb = bodies_[bodyIdx];
                        PeRt &rt = peRts_[peIdx];
                        std::vector<RtValue> slots =
                            rt.frames.acquire(cb.numSlots);
                        if (wantsOffset) {
                            WSC_ASSERT(
                                site >= 0,
                                "task with a chunk-offset argument is "
                                "not a comms receive callback");
                            // Receive-chunk callback: bind the chunk
                            // offset provided by the comms library.
                            RtValue &offset = slots[cb.argSlots[0]];
                            offset.kind = RtValue::Kind::Num;
                            offset.num = static_cast<double>(
                                comms_[site]->popCompletedChunkOffset(
                                    ctx.pe()));
                        }
                        execCompiled(bodyIdx, slots, peEnvs_[peIdx],
                                     rt, ctx);
                        rt.frames.release(std::move(slots));
                    });
            }

            if (referenceMode_)
                continue;

            // --- Dense-handle tables (the resolve-once step) ---------
            PeRt &rt = peRts_[peIdx];
            rt.scalarId.assign(varNames_.size(), {});
            rt.bufferId.assign(varNames_.size(), {});
            rt.ptrTarget.assign(varNames_.size(), {});
            for (size_t i = 0; i < varNames_.size(); ++i) {
                const std::string &name = varNames_[i];
                bool isBufOrPtr = false;
                auto vit = variables_.find(name);
                if (vit != variables_.end()) {
                    ir::Type t =
                        ir::typeAttrValue(vit->second->attr(ir::attrs::kType));
                    isBufOrPtr = ir::isMemRef(t) || csl::isPtrType(t);
                    if (csl::isPtrType(t))
                        rt.ptrTarget[i] = pe.bufferId(
                            ir::stringAttrValue(
                                vit->second->attr(ir::attrs::kInit)));
                }
                if (wse::BufferId buf = pe.findBuffer(name);
                    buf.valid())
                    rt.bufferId[i] = buf;
                else if (!isBufOrPtr)
                    rt.scalarId[i] = pe.scalarId(name);
            }
            rt.taskId.reserve(taskNames_.size());
            for (const std::string &task : taskNames_)
                rt.taskId.push_back(pe.taskId(task));
            rt.commRecv.reserve(comms_.size());
            rt.commDone.reserve(comms_.size());
            for (const auto &[recvCb, doneCb] : siteCbNames_) {
                rt.commRecv.push_back(pe.taskId(recvCb));
                rt.commDone.push_back(pe.taskId(doneCb));
            }
            resolveColdChecks(pe, rt);
        }
    }
}

void
CslProgramInstance::resolveColdChecks(wse::Pe &pe, PeRt &rt)
{
    // Tier 3, part 1: cache every buffer's data vector. Pe stores
    // buffer slots in a deque, so the pointers are stable for the run.
    // A variable with no live buffer travels as nullptr and panics on
    // first element access (Dsd::at) — the same program point the
    // per-access guard used to fire at, one instruction later.
    rt.bufferData.assign(varNames_.size(), nullptr);
    rt.ptrData.assign(varNames_.size(), nullptr);
    for (size_t i = 0; i < varNames_.size(); ++i) {
        if (rt.bufferId[i].valid())
            rt.bufferData[i] = &pe.buffer(rt.bufferId[i]);
        if (rt.ptrTarget[i].valid())
            rt.ptrData[i] = &pe.buffer(rt.ptrTarget[i]);
    }

    // Tier 3, part 2: every scalar-accessing instruction must hold a
    // valid handle NOW — the handlers use unchecked access and never
    // fall back to name interning. A scalar op naming a buffer is a
    // type-inconsistent program; diagnose it here, not mid-run.
    for (const CompiledBody &body : bodies_) {
        for (const Instr &ins : body.code) {
            switch (ins.op) {
            case Opcode::LoadScalar:
            case Opcode::StoreScalar:
            case Opcode::FusedConstStoreScalar:
            case Opcode::FusedAddStoreScalar:
            case Opcode::FusedLoadScalarFmacs:
                WSC_ASSERT(rt.scalarId[ins.var].valid(),
                           "scalar access to non-scalar variable `"
                               << varNames_[ins.var] << "`");
                break;
            default:
                break;
            }
        }
    }
}

void
CslProgramInstance::launch()
{
    WSC_ASSERT(configured_, "launch before configure");
    launched_ = true;
    peUnblocked_.assign(
        static_cast<size_t>(sim_.width()) * sim_.height(), 0);
    for (int x = 0; x < sim_.width(); ++x)
        for (int y = 0; y < sim_.height(); ++y)
            sim_.pe(x, y).activate("f_main", 0);
}

//===----------------------------------------------------------------------===
// Pre-decoded execution (the per-PE, per-cycle hot loop)
//===----------------------------------------------------------------------===

std::vector<CslProgramInstance::RtValue>
CslProgramInstance::FrameStack::acquire(uint32_t n)
{
    acquires++;
    if (pool.empty()) {
        fresh++;
        return std::vector<RtValue>(n);
    }
    std::vector<RtValue> frame = std::move(pool.back());
    pool.pop_back();
    if (frame.capacity() < n)
        fresh++; // Growing past the recycled capacity allocates.
    frame.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
        RtValue &v = frame[i];
        v.kind = RtValue::Kind::None;
        v.num = 0.0;
        v.buf = {};
        // A stale dsd (notably wrap) must not leak into a body whose
        // GetMemDsd omits the optional attributes.
        v.dsd = wse::Dsd{};
    }
    return frame;
}

std::pair<uint64_t, uint64_t>
CslProgramInstance::frameStats() const
{
    uint64_t acquires = 0;
    uint64_t fresh = 0;
    for (const PeRt &rt : peRts_) {
        acquires += rt.frames.acquires;
        fresh += rt.frames.fresh;
    }
    return {acquires, fresh};
}

void
CslProgramInstance::runCompiledCallable(int bodyIdx, PeEnv &peEnv,
                                        PeRt &peRt, wse::TaskContext &ctx)
{
    std::vector<RtValue> slots =
        peRt.frames.acquire(bodies_[bodyIdx].numSlots);
    execCompiled(bodyIdx, slots, peEnv, peRt, ctx);
    peRt.frames.release(std::move(slots));
}

void
CslProgramInstance::execCompiled(int bodyIdx, std::vector<RtValue> &slots,
                                 PeEnv &peEnv, PeRt &peRt,
                                 wse::TaskContext &ctx)
{
    // One predictable branch per task activation / csl.call; nested
    // scf.if recursion stays inside the selected variant.
    switch (variant_) {
    case ExecVariant::Threaded:
        execThreaded(bodyIdx, slots, peEnv, peRt, ctx);
        break;
    case ExecVariant::Switch:
        execSwitch(bodyIdx, slots, peEnv, peRt, ctx);
        break;
    case ExecVariant::Counting:
        execCounting(bodyIdx, slots, peEnv, peRt, ctx);
        break;
    }
}

#if WSC_HAVE_COMPUTED_GOTO

void
CslProgramInstance::execThreaded(int bodyIdx,
                                 std::vector<RtValue> &slots,
                                 PeEnv &peEnv, PeRt &peRt,
                                 wse::TaskContext &ctx)
{
    wse::Pe &pe = ctx.pe();
    const Instr *pc = bodies_[bodyIdx].code.data();
    // Token-threaded dispatch: the opcode IS the index into a label
    // table, and every handler jumps straight to the next handler — one
    // indirect branch per instruction, no loop head, and a per-opcode
    // branch target the predictor can learn pairwise patterns from.
    static const void *const kDispatch[] = {
#define WSC_INTERP_LABEL_ADDR(name) &&L_##name,
        WSC_INTERP_OPCODE_LIST(WSC_INTERP_LABEL_ADDR)
#undef WSC_INTERP_LABEL_ADDR
    };
    static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                  kNumOpcodes);
    goto *kDispatch[static_cast<size_t>(pc->op)];

#define WSC_CASE(name)                                                  \
    L_##name : {                                                        \
        const Instr &ins = *pc;                                         \
        (void)ins;
#define WSC_NEXT()                                                      \
    ++pc;                                                               \
    goto *kDispatch[static_cast<size_t>(pc->op)];                       \
    }
#define WSC_IF_RECURSE(body) execThreaded(body, slots, peEnv, peRt, ctx)
#include "interp/csl_exec_handlers.inc"
#undef WSC_CASE
#undef WSC_NEXT
#undef WSC_IF_RECURSE
}

#else // !WSC_HAVE_COMPUTED_GOTO

void
CslProgramInstance::execThreaded(int bodyIdx,
                                 std::vector<RtValue> &slots,
                                 PeEnv &peEnv, PeRt &peRt,
                                 wse::TaskContext &ctx)
{
    // This build has no computed goto; the portable loop is the tier.
    execSwitch(bodyIdx, slots, peEnv, peRt, ctx);
}

#endif // WSC_HAVE_COMPUTED_GOTO

void
CslProgramInstance::execSwitch(int bodyIdx, std::vector<RtValue> &slots,
                               PeEnv &peEnv, PeRt &peRt,
                               wse::TaskContext &ctx)
{
    wse::Pe &pe = ctx.pe();
    const Instr *pc = bodies_[bodyIdx].code.data();
    for (;;) {
        switch (pc->op) {
#define WSC_CASE(name)                                                  \
    case Opcode::name: {                                                \
        const Instr &ins = *pc;                                         \
        (void)ins;
#define WSC_NEXT()                                                      \
    ++pc;                                                               \
    }                                                                   \
    break;
#define WSC_IF_RECURSE(body) execSwitch(body, slots, peEnv, peRt, ctx)
#include "interp/csl_exec_handlers.inc"
#undef WSC_CASE
#undef WSC_NEXT
#undef WSC_IF_RECURSE
        }
    }
}

void
CslProgramInstance::execCounting(int bodyIdx,
                                 std::vector<RtValue> &slots,
                                 PeEnv &peEnv, PeRt &peRt,
                                 wse::TaskContext &ctx)
{
    // The stats variant: the switch loop plus an opcode/pair counter at
    // the loop head. `prev` is per-invocation, so pairs are intra-body
    // static adjacencies — exactly what the fusion pass can act on.
    wse::Pe &pe = ctx.pe();
    const Instr *pc = bodies_[bodyIdx].code.data();
    InterpProfile &prof = *profile_;
    uint8_t prev = InterpProfile::kNoPrev;
    for (;;) {
        prof.note(prev, pc->op);
        prev = static_cast<uint8_t>(pc->op);
        switch (pc->op) {
#define WSC_CASE(name)                                                  \
    case Opcode::name: {                                                \
        const Instr &ins = *pc;                                         \
        (void)ins;
#define WSC_NEXT()                                                      \
    ++pc;                                                               \
    }                                                                   \
    break;
#define WSC_IF_RECURSE(body) execCounting(body, slots, peEnv, peRt, ctx)
#include "interp/csl_exec_handlers.inc"
#undef WSC_CASE
#undef WSC_NEXT
#undef WSC_IF_RECURSE
        }
    }
}

//===----------------------------------------------------------------------===
// Reference tree-walking evaluator (the semantic oracle)
//===----------------------------------------------------------------------===

CslProgramInstance::RtValue
CslProgramInstance::evalOperand(const SsaEnv &env, ir::Value v) const
{
    auto it = env.find(v.impl());
    WSC_ASSERT(it != env.end(), "use of an unevaluated SSA value");
    return it->second;
}

wse::DsdOperand
CslProgramInstance::asDsdOperand(const RtValue &v) const
{
    if (v.kind == RtValue::Kind::DsdVal)
        return wse::DsdOperand::fromDsd(v.dsd);
    WSC_ASSERT(v.kind == RtValue::Kind::Num,
               "builtin operand must be a DSD or scalar");
    return wse::DsdOperand::fromScalar(static_cast<float>(v.num));
}

void
CslProgramInstance::runCallable(const std::string &name, PeEnv &peEnv,
                                wse::TaskContext &ctx)
{
    auto it = callables_.find(name);
    WSC_ASSERT(it != callables_.end(), "call of unknown symbol " << name);
    SsaEnv env;
    execBody(csl::calleeBody(it->second), env, peEnv, ctx);
}

void
CslProgramInstance::execBody(ir::Block *block, SsaEnv &env, PeEnv &peEnv,
                             wse::TaskContext &ctx)
{
    wse::Pe &pe = ctx.pe();
    for (ir::Operation *op : block->operations()) {
        ir::OpId n = op->opId();
        if (n == ar::kConstant) {
            RtValue v;
            v.kind = RtValue::Kind::Num;
            ir::Attribute a = op->attr(ir::attrs::kValue);
            v.num = ir::isFloatAttr(a) ? ir::floatAttrValue(a)
                                       : static_cast<double>(
                                             ir::intAttrValue(a));
            env[op->result().impl()] = v;
            continue;
        }
        if (n == ar::kAddI || n == ar::kSubI || n == ar::kMulI ||
            n == ar::kAddF || n == ar::kSubF || n == ar::kMulF ||
            n == ar::kDivF) {
            double a = evalOperand(env, op->operand(0)).num;
            double b = evalOperand(env, op->operand(1)).num;
            double r = 0.0;
            if (n == ar::kAddI || n == ar::kAddF)
                r = a + b;
            else if (n == ar::kSubI || n == ar::kSubF)
                r = a - b;
            else if (n == ar::kMulI || n == ar::kMulF)
                r = a * b;
            else
                r = a / b;
            RtValue v;
            v.kind = RtValue::Kind::Num;
            v.num = r;
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == ar::kCmpI) {
            double a = evalOperand(env, op->operand(0)).num;
            double b = evalOperand(env, op->operand(1)).num;
            const std::string &p = op->strAttr(ir::attrs::kPredicate);
            bool r = p == "lt"   ? a < b
                     : p == "le" ? a <= b
                     : p == "gt" ? a > b
                     : p == "ge" ? a >= b
                     : p == "eq" ? a == b
                                 : a != b;
            RtValue v;
            v.kind = RtValue::Kind::Num;
            v.num = r ? 1.0 : 0.0;
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == scf::kIf) {
            bool cond = evalOperand(env, op->operand(0)).num != 0.0;
            ctx.consume(1);
            ir::Block *branch = cond ? scf::ifThenBlock(op)
                                     : (op->region(1).empty()
                                            ? nullptr
                                            : scf::ifElseBlock(op));
            if (branch)
                execBody(branch, env, peEnv, ctx);
            continue;
        }
        if (n == scf::kYield)
            continue;
        if (n == csl::kReturn)
            return;
        if (n == csl::kLoadVar) {
            const std::string &var = op->strAttr(ir::attrs::kVar);
            ir::Type t = op->result().type();
            RtValue v;
            if (ir::isMemRef(t)) {
                v.kind = RtValue::Kind::Buffer;
                v.str = op->hasAttr(ir::attrs::kViaPtr) ? peEnv.ptrs.at(var) : var;
            } else if (csl::isPtrType(t)) {
                v.kind = RtValue::Kind::Ptr;
                v.str = peEnv.ptrs.at(var);
            } else {
                v.kind = RtValue::Kind::Num;
                v.num = pe.scalar(var);
            }
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == csl::kStoreVar) {
            const std::string &var = op->strAttr(ir::attrs::kVar);
            RtValue v = evalOperand(env, op->operand(0));
            if (v.kind == RtValue::Kind::Ptr ||
                v.kind == RtValue::Kind::Buffer)
                peEnv.ptrs[var] = v.str;
            else
                pe.scalar(var) = v.num;
            ctx.consume(1);
            continue;
        }
        if (n == csl::kAddressOf) {
            RtValue v;
            v.kind = RtValue::Kind::Ptr;
            v.str = op->strAttr(ir::attrs::kVar);
            env[op->result().impl()] = v;
            continue;
        }
        if (n == csl::kGetMemDsd) {
            const std::string &var = op->strAttr(ir::attrs::kVar);
            std::string bufName =
                op->hasAttr(ir::attrs::kViaPtr) ? peEnv.ptrs.at(var) : var;
            RtValue v;
            v.kind = RtValue::Kind::DsdVal;
            v.str = bufName;
            v.dsd.buf = &pe.buffer(bufName);
            v.dsd.offset = op->intAttr(ir::attrs::kOffset);
            v.dsd.length = op->intAttr(ir::attrs::kLength);
            v.dsd.stride = op->intAttr(ir::attrs::kStride);
            if (op->hasAttr(ir::attrs::kWrap))
                v.dsd.wrap = op->intAttr(ir::attrs::kWrap);
            env[op->result().impl()] = v;
            ctx.consume(2); // DSD configuration is cheap but not free.
            continue;
        }
        if (n == csl::kIncrementDsdOffset) {
            RtValue v = evalOperand(env, op->operand(0));
            double delta = evalOperand(env, op->operand(1)).num;
            v.dsd.offset += static_cast<int64_t>(delta);
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == csl::kSetDsdLength) {
            RtValue v = evalOperand(env, op->operand(0));
            v.dsd.length = static_cast<int64_t>(
                evalOperand(env, op->operand(1)).num);
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == csl::kFadds || n == csl::kFsubs || n == csl::kFmuls) {
            wse::Dsd dest = evalOperand(env, op->operand(0)).dsd;
            wse::DsdOperand a =
                asDsdOperand(evalOperand(env, op->operand(1)));
            wse::DsdOperand b =
                asDsdOperand(evalOperand(env, op->operand(2)));
            if (n == csl::kFadds)
                wse::fadds(ctx, dest, a, b);
            else if (n == csl::kFsubs)
                wse::fsubs(ctx, dest, a, b);
            else
                wse::fmuls(ctx, dest, a, b);
            continue;
        }
        if (n == csl::kFmovs) {
            wse::Dsd dest = evalOperand(env, op->operand(0)).dsd;
            wse::DsdOperand src =
                asDsdOperand(evalOperand(env, op->operand(1)));
            wse::fmovs(ctx, dest, src);
            continue;
        }
        if (n == csl::kFmacs) {
            wse::Dsd dest = evalOperand(env, op->operand(0)).dsd;
            wse::DsdOperand a =
                asDsdOperand(evalOperand(env, op->operand(1)));
            wse::DsdOperand b =
                asDsdOperand(evalOperand(env, op->operand(2)));
            double scalar = evalOperand(env, op->operand(3)).num;
            wse::fmacs(ctx, dest, a, b, static_cast<float>(scalar));
            continue;
        }
        if (n == csl::kCall) {
            runCallable(op->strAttr(ir::attrs::kCallee), peEnv, ctx);
            ctx.consume(2);
            continue;
        }
        if (n == csl::kActivate) {
            pe.activate(op->strAttr(ir::attrs::kTask), ctx.currentCycle());
            ctx.consume(2);
            continue;
        }
        if (n == csl::kCommsExchange) {
            size_t site = commSiteOf_.at(op);
            RtValue send = evalOperand(env, op->operand(0));
            WSC_ASSERT(send.kind == RtValue::Kind::DsdVal,
                       "comms_exchange expects a DSD operand");
            csl::CommsExchangeSpec spec = csl::commsExchangeSpec(op);
            comms_[site]->exchange(ctx, send.str, spec.recvCallback,
                                   spec.doneCallback);
            ctx.consume(4);
            continue;
        }
        if (n == csl::kUnblockCmdStream) {
            unblockCount_++;
            peUnblocked_[pe.id()] = 1;
            continue;
        }
        if (n == csl::kImportModule || n == csl::kMemberCall ||
            n == csl::kExport || n == csl::kParam) {
            // Comptime / host-interface constructs: no runtime effect in
            // the interpreter.
            for (ir::Value r : op->results()) {
                RtValue v;
                v.kind = RtValue::Kind::None;
                env[r.impl()] = v;
            }
            continue;
        }
        panic("csl interpreter: unsupported op " + n.str());
    }
}

//===----------------------------------------------------------------------===
// Host readback
//===----------------------------------------------------------------------===

std::vector<float>
CslProgramInstance::readFieldColumn(const std::string &field, int x, int y)
{
    // Resolve through the program's result mapping.
    std::string var = field;
    bool viaPtr = false;
    if (ir::Attribute results = program_->attr(ir::attrs::kResultFields)) {
        for (ir::Attribute entry : ir::arrayAttrValue(results)) {
            if (ir::stringAttrValue(ir::dictAttrGet(entry, "field")) ==
                field) {
                var = ir::stringAttrValue(ir::dictAttrGet(entry, "var"));
                viaPtr =
                    ir::intAttrValue(ir::dictAttrGet(entry, "via_ptr")) !=
                    0;
            }
        }
    }
    size_t peIdx = static_cast<size_t>(x) * sim_.height() + y;
    if (!referenceMode_ && viaPtr) {
        // Compiled mode tracks pointer rotation in the dense-handle
        // tables, not the (reference-mode) string environment.
        auto it = varIndex_.find(var);
        WSC_ASSERT(it != varIndex_.end(), "unknown pointer variable `"
                                              << var << "`");
        return sim_.pe(x, y).buffer(
            peRts_[peIdx].ptrTarget[it->second]);
    }
    PeEnv &env = peEnvs_[peIdx];
    std::string bufName = viaPtr ? env.ptrs.at(var) : var;
    return sim_.pe(x, y).buffer(bufName);
}

const std::vector<wse::Cycles> &
CslProgramInstance::stepMarks(int x, int y) const
{
    return stepMarks_[static_cast<size_t>(x) * sim_.height() + y];
}

size_t
CslProgramInstance::memoryBytesUsed(int x, int y)
{
    return sim_.pe(x, y).memoryBytesUsed();
}

} // namespace wsc::interp
