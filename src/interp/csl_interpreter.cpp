#include "interp/csl_interpreter.h"

#include <set>

#include "dialects/arith.h"
#include "dialects/csl.h"
#include "dialects/scf.h"
#include "support/error.h"

namespace wsc::interp {

namespace {

namespace csl = dialects::csl;
namespace ar = dialects::arith;
namespace scf = dialects::scf;

/** Find the program csl.module under root (or root itself). */
ir::Operation *
findProgramModule(ir::Operation *root)
{
    if (root->is(csl::kModule) && root->strAttr(ir::attrs::kKind) == "program")
        return root;
    ir::Operation *program = nullptr;
    root->walk([&](ir::Operation *op) {
        if (op->is(csl::kModule) && op->strAttr(ir::attrs::kKind) == "program")
            program = op;
    });
    WSC_ASSERT(program, "no program csl.module found");
    return program;
}

} // namespace

CslProgramInstance::CslProgramInstance(wse::Simulator &sim,
                                       ir::Operation *root)
    : sim_(sim), program_(findProgramModule(root))
{
    peEnvs_.resize(static_cast<size_t>(sim.width()) * sim.height());
    stepMarks_.resize(peEnvs_.size());
}

void
CslProgramInstance::setFieldInit(const std::string &field, FieldInitFn init)
{
    WSC_ASSERT(!configured_, "setFieldInit after configure");
    fieldInits_[field] = std::move(init);
}

void
CslProgramInstance::setReferenceMode(bool on)
{
    WSC_ASSERT(!configured_, "setReferenceMode after configure");
    referenceMode_ = on;
}

bool
CslProgramInstance::interiorEverywhere(int x, int y) const
{
    for (const auto &comm : comms_)
        if (comm->expectedSections(x, y) == 0)
            return false;
    return true;
}

//===----------------------------------------------------------------------===
// Pre-decode compiler
//===----------------------------------------------------------------------===

/**
 * Compiles callable bodies into flat instruction vectors. SSA values get
 * dense slot indices (per callable, shared with nested scf.if bodies);
 * attributes, comparison predicates and comms specs are resolved once.
 */
class CslProgramInstance::Compiler
{
  public:
    explicit Compiler(CslProgramInstance &self) : self_(self) {}

    void
    compileCallable(const std::string &name, ir::Operation *callable)
    {
        slotIndex_.clear();
        nextSlot_ = 0;
        int idx = self_.bodyOf_.at(name);
        ir::Block *body = csl::calleeBody(callable);
        for (unsigned i = 0; i < body->numArguments(); ++i)
            self_.bodies_[idx].argSlots.push_back(
                slotOf(body->argument(i).impl()));
        compileInto(idx, body);
        self_.bodies_[idx].numSlots = nextSlot_;
    }

  private:
    int32_t
    slotOf(ir::ValueImpl *v)
    {
        auto [it, inserted] = slotIndex_.try_emplace(v, nextSlot_);
        if (inserted)
            nextSlot_++;
        return it->second;
    }

    int32_t varIdx(const std::string &name) { return self_.varIdx(name); }

    int
    newBody()
    {
        self_.bodies_.emplace_back();
        return static_cast<int>(self_.bodies_.size() - 1);
    }

    void
    compileInto(int bodyIdx, ir::Block *block)
    {
        std::vector<Instr> code;
        code.reserve(block->size());
        for (ir::Operation *op : block->operations())
            compileOp(op, code);
        self_.bodies_[bodyIdx].code = std::move(code);
    }

    void
    compileOp(ir::Operation *op, std::vector<Instr> &code)
    {
        ir::OpId n = op->opId();
        Instr ins;
        if (n == ar::kConstant) {
            ir::Attribute a = op->attr(ir::attrs::kValue);
            ins.op = Opcode::Constant;
            ins.dst = slotOf(op->result().impl());
            ins.imm = ir::isFloatAttr(a)
                          ? ir::floatAttrValue(a)
                          : static_cast<double>(ir::intAttrValue(a));
            code.push_back(ins);
            return;
        }
        if (n == ar::kAddI || n == ar::kAddF || n == ar::kSubI ||
            n == ar::kSubF || n == ar::kMulI || n == ar::kMulF ||
            n == ar::kDivF) {
            ins.op = (n == ar::kAddI || n == ar::kAddF) ? Opcode::Add
                     : (n == ar::kSubI || n == ar::kSubF)
                         ? Opcode::Sub
                         : (n == ar::kDivF) ? Opcode::Div : Opcode::Mul;
            ins.a = slotOf(op->operand(0).impl());
            ins.b = slotOf(op->operand(1).impl());
            ins.dst = slotOf(op->result().impl());
            code.push_back(ins);
            return;
        }
        if (n == ar::kCmpI) {
            const std::string &p = op->strAttr(ir::attrs::kPredicate);
            ins.op = Opcode::Cmp;
            ins.pred = p == "lt"   ? CmpPred::Lt
                       : p == "le" ? CmpPred::Le
                       : p == "gt" ? CmpPred::Gt
                       : p == "ge" ? CmpPred::Ge
                       : p == "eq" ? CmpPred::Eq
                                   : CmpPred::Ne;
            ins.a = slotOf(op->operand(0).impl());
            ins.b = slotOf(op->operand(1).impl());
            ins.dst = slotOf(op->result().impl());
            code.push_back(ins);
            return;
        }
        if (n == scf::kIf) {
            ins.op = Opcode::If;
            ins.a = slotOf(op->operand(0).impl());
            ins.body0 = newBody();
            compileInto(ins.body0, scf::ifThenBlock(op));
            if (!op->region(1).empty()) {
                ins.body1 = newBody();
                compileInto(ins.body1, scf::ifElseBlock(op));
            }
            code.push_back(ins);
            return;
        }
        if (n == scf::kYield)
            return;
        if (n == csl::kReturn) {
            ins.op = Opcode::Return;
            code.push_back(ins);
            return;
        }
        if (n == csl::kLoadVar) {
            ir::Type t = op->result().type();
            ins.var = varIdx(op->strAttr(ir::attrs::kVar));
            ins.dst = slotOf(op->result().impl());
            if (ir::isMemRef(t))
                ins.op = op->hasAttr(ir::attrs::kViaPtr) ? Opcode::LoadBufferViaPtr
                                                : Opcode::LoadBuffer;
            else if (csl::isPtrType(t))
                ins.op = Opcode::LoadPtr;
            else
                ins.op = Opcode::LoadScalar;
            code.push_back(ins);
            return;
        }
        if (n == csl::kStoreVar) {
            ins.op = Opcode::StoreVar;
            ins.var = varIdx(op->strAttr(ir::attrs::kVar));
            ins.a = slotOf(op->operand(0).impl());
            code.push_back(ins);
            return;
        }
        if (n == csl::kAddressOf) {
            ins.op = Opcode::AddressOf;
            ins.var = varIdx(op->strAttr(ir::attrs::kVar));
            ins.dst = slotOf(op->result().impl());
            code.push_back(ins);
            return;
        }
        if (n == csl::kGetMemDsd) {
            ins.op = op->hasAttr(ir::attrs::kViaPtr) ? Opcode::GetMemDsdViaPtr
                                            : Opcode::GetMemDsd;
            ins.var = varIdx(op->strAttr(ir::attrs::kVar));
            ins.dst = slotOf(op->result().impl());
            ins.offset = op->intAttr(ir::attrs::kOffset);
            ins.length = op->intAttr(ir::attrs::kLength);
            ins.stride = op->intAttr(ir::attrs::kStride);
            if (op->hasAttr(ir::attrs::kWrap)) {
                ins.hasWrap = true;
                ins.wrap = op->intAttr(ir::attrs::kWrap);
            }
            code.push_back(ins);
            return;
        }
        if (n == csl::kIncrementDsdOffset || n == csl::kSetDsdLength) {
            ins.op = n == csl::kIncrementDsdOffset
                         ? Opcode::IncrementDsdOffset
                         : Opcode::SetDsdLength;
            ins.a = slotOf(op->operand(0).impl());
            ins.b = slotOf(op->operand(1).impl());
            ins.dst = slotOf(op->result().impl());
            code.push_back(ins);
            return;
        }
        if (n == csl::kFadds || n == csl::kFsubs || n == csl::kFmuls ||
            n == csl::kFmacs) {
            ins.op = n == csl::kFadds   ? Opcode::Fadds
                     : n == csl::kFsubs ? Opcode::Fsubs
                     : n == csl::kFmuls ? Opcode::Fmuls
                                        : Opcode::Fmacs;
            ins.a = slotOf(op->operand(0).impl());
            ins.b = slotOf(op->operand(1).impl());
            ins.c = slotOf(op->operand(2).impl());
            if (n == csl::kFmacs)
                ins.d = slotOf(op->operand(3).impl());
            code.push_back(ins);
            return;
        }
        if (n == csl::kFmovs) {
            ins.op = Opcode::Fmovs;
            ins.a = slotOf(op->operand(0).impl());
            ins.b = slotOf(op->operand(1).impl());
            code.push_back(ins);
            return;
        }
        if (n == csl::kCall) {
            const std::string &callee = op->strAttr(ir::attrs::kCallee);
            auto it = self_.bodyOf_.find(callee);
            ins.op = Opcode::Call;
            ins.body0 = it == self_.bodyOf_.end() ? -1 : it->second;
            ins.str = pooled(callee);
            code.push_back(ins);
            return;
        }
        if (n == csl::kActivate) {
            ins.op = Opcode::Activate;
            ins.task = self_.taskIdx(op->strAttr(ir::attrs::kTask));
            code.push_back(ins);
            return;
        }
        if (n == csl::kCommsExchange) {
            ins.op = Opcode::CommsExchange;
            ins.a = slotOf(op->operand(0).impl());
            ins.site = static_cast<uint32_t>(self_.commSiteOf_.at(op));
            code.push_back(ins);
            return;
        }
        if (n == csl::kUnblockCmdStream) {
            ins.op = Opcode::UnblockCmdStream;
            code.push_back(ins);
            return;
        }
        if (n == csl::kImportModule || n == csl::kMemberCall ||
            n == csl::kExport || n == csl::kParam) {
            // Comptime / host-interface constructs: results stay
            // Kind::None (the slots' default), no instruction needed.
            for (ir::Value r : op->results())
                slotOf(r.impl());
            return;
        }
        // Unknown op: preserve the reference semantics of panicking only
        // if and when the op is actually executed.
        for (ir::Value r : op->results())
            slotOf(r.impl());
        ins.op = Opcode::Unsupported;
        ins.str = pooled(op->name());
        code.push_back(ins);
    }

    const std::string *
    pooled(const std::string &s)
    {
        self_.stringPool_.push_back(s);
        return &self_.stringPool_.back();
    }

    CslProgramInstance &self_;
    std::map<ir::ValueImpl *, int32_t> slotIndex_;
    uint32_t nextSlot_ = 0;
};

int32_t
CslProgramInstance::varIdx(const std::string &name)
{
    auto [it, inserted] = varIndex_.try_emplace(
        name, static_cast<int32_t>(varNames_.size()));
    if (inserted)
        varNames_.push_back(name);
    return it->second;
}

int32_t
CslProgramInstance::taskIdx(const std::string &name)
{
    auto [it, inserted] = taskIndex_.try_emplace(
        name, static_cast<int32_t>(taskNames_.size()));
    if (inserted)
        taskNames_.push_back(name);
    return it->second;
}

void
CslProgramInstance::compileProgram()
{
    // Two passes so csl.call sites can resolve forward references.
    for (const auto &[name, op] : callables_) {
        bodyOf_[name] = static_cast<int>(bodies_.size());
        bodies_.emplace_back();
    }
    Compiler compiler(*this);
    for (const auto &[name, op] : callables_)
        compiler.compileCallable(name, op);
}

//===----------------------------------------------------------------------===
// Configuration
//===----------------------------------------------------------------------===

void
CslProgramInstance::configure()
{
    WSC_ASSERT(!configured_, "configure called twice");
    // The reference evaluator probes IR attributes at run time; the IR
    // context is not safe to touch from shard worker threads.
    WSC_ASSERT(!referenceMode_ || sim_.threads() == 1,
               "reference mode requires a single-threaded simulator");
    configured_ = true;

    // Deadlock introspection: after launch(), any PE that has not
    // reached unblock_cmd_stream by the time the event queues drain is
    // stuck mid-program (a halted dependency, a lost wavelet, ...).
    // Gated on launched_ so configure-without-launch runs stay clean.
    sim_.addQuiescenceProbe([this](std::vector<wse::BlockedPeInfo> &out) {
        if (!launched_)
            return;
        for (int x = 0; x < sim_.width(); ++x)
            for (int y = 0; y < sim_.height(); ++y)
                if (!peUnblocked_[sim_.pe(x, y).id()])
                    out.push_back({x, y,
                                   "program incomplete: "
                                   "unblock_cmd_stream not reached",
                                   0, false});
    });

    // --- Collect module structure ---------------------------------------
    std::vector<ir::Operation *> commsOps;
    for (ir::Operation *op : csl::moduleBody(program_)->operations()) {
        if (op->is(csl::kFunc) || op->is(csl::kTask))
            callables_[op->strAttr(ir::attrs::kSymName)] = op;
        else if (op->is(csl::kVariable))
            variables_[op->strAttr(ir::attrs::kSymName)] = op;
    }
    program_->walk([&](ir::Operation *op) {
        if (op->is(csl::kCommsExchange))
            commsOps.push_back(op);
    });

    // --- Runtime communication sites ------------------------------------
    for (size_t i = 0; i < commsOps.size(); ++i) {
        csl::CommsExchangeSpec spec =
            csl::commsExchangeSpec(commsOps[i]);
        comms::StarCommConfig config;
        for (const auto &[dx, dy] : spec.accesses)
            config.accesses.push_back(
                {static_cast<int>(dx), static_cast<int>(dy)});
        config.accesses = comms::canonicalAccessOrder(config.accesses);
        config.zSize = spec.zSize;
        config.numChunks = spec.numChunks;
        config.trimFirst = spec.trimFirst;
        config.trimLast = spec.trimLast;
        config.coeffs = spec.coeffs;
        config.recvBufferName = spec.recvBufferName;
        config.baseColor = static_cast<wse::Color>(4 * i);
        comms_.push_back(
            std::make_unique<comms::StarComm>(sim_, config));
        commSiteOf_[commsOps[i]] = i;
        commOfRecvCb_[spec.recvCallback] = i;
        siteCbNames_.emplace_back(spec.recvCallback, spec.doneCallback);
    }

    // --- Pre-decode every callable (shared across PEs) -------------------
    if (!referenceMode_) {
        compileProgram();
        // Intern every module variable so per-PE handle tables cover
        // names the host touches (readFieldColumn) even when the code
        // never mentions them.
        for (const auto &[name, var] : variables_)
            varIdx(name);
    }

    // Buffer-rotation pool: the initial targets of all pointer
    // variables. On boundary (non-computing) PEs the host loads every
    // pool buffer with the primary wavefield's boundary-condition data,
    // making pointer rotation value-neutral there.
    std::set<std::string> rotationPool;
    std::string primaryField;
    for (const auto &[name, var] : variables_) {
        ir::Type type = ir::typeAttrValue(var->attr(ir::attrs::kType));
        if (!csl::isPtrType(type))
            continue;
        std::string target = ir::stringAttrValue(var->attr(ir::attrs::kInit));
        rotationPool.insert(target);
        if (name == "ptr_iter0")
            primaryField = target;
    }

    // --- Per-PE state ----------------------------------------------------
    for (int x = 0; x < sim_.width(); ++x) {
        for (int y = 0; y < sim_.height(); ++y) {
            wse::Pe &pe = sim_.pe(x, y);
            PeEnv &env =
                peEnvs_[static_cast<size_t>(x) * sim_.height() + y];
            bool boundaryPe = !interiorEverywhere(x, y);

            for (const auto &[name, var] : variables_) {
                ir::Type type = ir::typeAttrValue(var->attr(ir::attrs::kType));
                if (var->hasAttr(ir::attrs::kCommsOwned))
                    continue; // StarComm::setup allocates these.
                if (ir::isMemRef(type)) {
                    std::vector<float> &buf = pe.allocBuffer(
                        name,
                        static_cast<size_t>(ir::numElementsOf(type)));
                    // Host data transfer: fields get their own init;
                    // result buffers inherit from their target field;
                    // rotation-pool buffers on boundary PEs all carry
                    // the primary field's boundary condition.
                    std::string initField;
                    if (fieldInits_.count(name))
                        initField = name;
                    else if (var->hasAttr(ir::attrs::kInitAs))
                        initField = var->strAttr(ir::attrs::kInitAs);
                    if (boundaryPe && !primaryField.empty() &&
                        rotationPool.count(name))
                        initField = primaryField;
                    auto it = fieldInits_.find(initField);
                    if (it != fieldInits_.end()) {
                        for (size_t z = 0; z < buf.size(); ++z)
                            buf[z] = it->second(x, y,
                                                static_cast<int>(z));
                    }
                } else if (csl::isPtrType(type)) {
                    env.ptrs[name] =
                        ir::stringAttrValue(var->attr(ir::attrs::kInit));
                } else {
                    int64_t init = 0;
                    if (ir::Attribute a = var->attr(ir::attrs::kInit))
                        init = ir::intAttrValue(a);
                    pe.scalar(name) = static_cast<double>(init);
                }
            }
        }
    }

    // StarComm setup after variables (its receive buffers count towards
    // the same 48 kB).
    for (auto &comm : comms_)
        comm->setup();

    // Comptime role flags depend on the comm sites' view of the grid.
    // Tasks are registered next, and then the per-PE dense-handle tables
    // (PeRt) are resolved once — after StarComm::setup so library-owned
    // receive buffers resolve, and after registration so activation
    // targets resolve. The opcode loop never touches a string.
    if (!referenceMode_)
        peRts_.resize(peEnvs_.size());
    for (int x = 0; x < sim_.width(); ++x) {
        for (int y = 0; y < sim_.height(); ++y) {
            wse::Pe &pe = sim_.pe(x, y);
            size_t peIdx = static_cast<size_t>(x) * sim_.height() + y;
            for (const auto &[name, var] : variables_) {
                if (var->hasAttr(ir::attrs::kComptimeRole))
                    pe.scalar(name) =
                        interiorEverywhere(x, y) ? 1.0 : 0.0;
                if (ir::Attribute site = var->attr(ir::attrs::kComptimeRoleSite)) {
                    size_t idx =
                        commOfRecvCb_.at(ir::stringAttrValue(site));
                    pe.scalar(name) =
                        comms_[idx]->expectedSections(x, y) > 0 ? 1.0
                                                                : 0.0;
                }
            }

            // Register every callable as an activatable task. Body
            // index, step-marker role and comms site are resolved here,
            // once, instead of per activation.
            for (const auto &[name, op] : callables_) {
                const bool marksStep = name == "for_cond0";
                if (referenceMode_) {
                    std::string taskName = name;
                    pe.registerTask(
                        taskName, wse::TaskKind::Local,
                        [this, op, peIdx, marksStep,
                         taskName](wse::TaskContext &ctx) {
                            if (marksStep)
                                stepMarks_[peIdx].push_back(
                                    ctx.startCycle());
                            SsaEnv env;
                            ir::Block *body = csl::calleeBody(op);
                            if (body->numArguments() == 1) {
                                // Receive-chunk callback: bind the chunk
                                // offset provided by the comms library.
                                size_t site = commOfRecvCb_.at(taskName);
                                RtValue offset;
                                offset.kind = RtValue::Kind::Num;
                                offset.num = static_cast<double>(
                                    comms_[site]
                                        ->popCompletedChunkOffset(
                                            ctx.pe()));
                                env[body->argument(0).impl()] = offset;
                            }
                            execBody(body, env, peEnvs_[peIdx], ctx);
                        });
                    continue;
                }
                const int bodyIdx = bodyOf_.at(name);
                const bool wantsOffset =
                    bodies_[bodyIdx].argSlots.size() == 1;
                int site = -1;
                if (wantsOffset) {
                    // Resolved lazily-diagnosed: a 1-argument task that
                    // is not a registered receive callback only errors
                    // if it is actually activated (as before PR 2).
                    auto it = commOfRecvCb_.find(name);
                    site = it != commOfRecvCb_.end()
                               ? static_cast<int>(it->second)
                               : -1;
                }
                pe.registerTask(
                    name, wse::TaskKind::Local,
                    [this, bodyIdx, site, wantsOffset, peIdx,
                     marksStep](wse::TaskContext &ctx) {
                        if (marksStep)
                            stepMarks_[peIdx].push_back(
                                ctx.startCycle());
                        const CompiledBody &cb = bodies_[bodyIdx];
                        PeRt &rt = peRts_[peIdx];
                        std::vector<RtValue> slots =
                            rt.frames.acquire(cb.numSlots);
                        if (wantsOffset) {
                            WSC_ASSERT(
                                site >= 0,
                                "task with a chunk-offset argument is "
                                "not a comms receive callback");
                            // Receive-chunk callback: bind the chunk
                            // offset provided by the comms library.
                            RtValue &offset = slots[cb.argSlots[0]];
                            offset.kind = RtValue::Kind::Num;
                            offset.num = static_cast<double>(
                                comms_[site]->popCompletedChunkOffset(
                                    ctx.pe()));
                        }
                        execCompiled(bodyIdx, slots, peEnvs_[peIdx],
                                     rt, ctx);
                        rt.frames.release(std::move(slots));
                    });
            }

            if (referenceMode_)
                continue;

            // --- Dense-handle tables (the resolve-once step) ---------
            PeRt &rt = peRts_[peIdx];
            rt.scalarId.assign(varNames_.size(), {});
            rt.bufferId.assign(varNames_.size(), {});
            rt.ptrTarget.assign(varNames_.size(), {});
            for (size_t i = 0; i < varNames_.size(); ++i) {
                const std::string &name = varNames_[i];
                bool isBufOrPtr = false;
                auto vit = variables_.find(name);
                if (vit != variables_.end()) {
                    ir::Type t =
                        ir::typeAttrValue(vit->second->attr(ir::attrs::kType));
                    isBufOrPtr = ir::isMemRef(t) || csl::isPtrType(t);
                    if (csl::isPtrType(t))
                        rt.ptrTarget[i] = pe.bufferId(
                            ir::stringAttrValue(
                                vit->second->attr(ir::attrs::kInit)));
                }
                if (wse::BufferId buf = pe.findBuffer(name);
                    buf.valid())
                    rt.bufferId[i] = buf;
                else if (!isBufOrPtr)
                    rt.scalarId[i] = pe.scalarId(name);
            }
            rt.taskId.reserve(taskNames_.size());
            for (const std::string &task : taskNames_)
                rt.taskId.push_back(pe.taskId(task));
            rt.commRecv.reserve(comms_.size());
            rt.commDone.reserve(comms_.size());
            for (const auto &[recvCb, doneCb] : siteCbNames_) {
                rt.commRecv.push_back(pe.taskId(recvCb));
                rt.commDone.push_back(pe.taskId(doneCb));
            }
        }
    }
}

void
CslProgramInstance::launch()
{
    WSC_ASSERT(configured_, "launch before configure");
    launched_ = true;
    peUnblocked_.assign(
        static_cast<size_t>(sim_.width()) * sim_.height(), 0);
    for (int x = 0; x < sim_.width(); ++x)
        for (int y = 0; y < sim_.height(); ++y)
            sim_.pe(x, y).activate("f_main", 0);
}

//===----------------------------------------------------------------------===
// Pre-decoded execution (the per-PE, per-cycle hot loop)
//===----------------------------------------------------------------------===

std::vector<CslProgramInstance::RtValue>
CslProgramInstance::FrameStack::acquire(uint32_t n)
{
    acquires++;
    if (pool.empty()) {
        fresh++;
        return std::vector<RtValue>(n);
    }
    std::vector<RtValue> frame = std::move(pool.back());
    pool.pop_back();
    if (frame.capacity() < n)
        fresh++; // Growing past the recycled capacity allocates.
    frame.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
        RtValue &v = frame[i];
        v.kind = RtValue::Kind::None;
        v.num = 0.0;
        v.buf = {};
        // A stale dsd (notably wrap) must not leak into a body whose
        // GetMemDsd omits the optional attributes.
        v.dsd = wse::Dsd{};
    }
    return frame;
}

std::pair<uint64_t, uint64_t>
CslProgramInstance::frameStats() const
{
    uint64_t acquires = 0;
    uint64_t fresh = 0;
    for (const PeRt &rt : peRts_) {
        acquires += rt.frames.acquires;
        fresh += rt.frames.fresh;
    }
    return {acquires, fresh};
}

void
CslProgramInstance::runCompiledCallable(int bodyIdx, PeEnv &peEnv,
                                        PeRt &peRt, wse::TaskContext &ctx)
{
    std::vector<RtValue> slots =
        peRt.frames.acquire(bodies_[bodyIdx].numSlots);
    execCompiled(bodyIdx, slots, peEnv, peRt, ctx);
    peRt.frames.release(std::move(slots));
}

void
CslProgramInstance::execCompiled(int bodyIdx, std::vector<RtValue> &slots,
                                 PeEnv &peEnv, PeRt &peRt,
                                 wse::TaskContext &ctx)
{
    wse::Pe &pe = ctx.pe();
    for (const Instr &ins : bodies_[bodyIdx].code) {
        switch (ins.op) {
        case Opcode::Constant: {
            RtValue &v = slots[ins.dst];
            v.kind = RtValue::Kind::Num;
            v.num = ins.imm;
            break;
        }
        case Opcode::Add:
        case Opcode::Sub:
        case Opcode::Mul:
        case Opcode::Div: {
            double a = slots[ins.a].num;
            double b = slots[ins.b].num;
            RtValue &v = slots[ins.dst];
            v.kind = RtValue::Kind::Num;
            v.num = ins.op == Opcode::Add   ? a + b
                    : ins.op == Opcode::Sub ? a - b
                    : ins.op == Opcode::Mul ? a * b
                                            : a / b;
            ctx.consume(1);
            break;
        }
        case Opcode::Cmp: {
            double a = slots[ins.a].num;
            double b = slots[ins.b].num;
            bool r = ins.pred == CmpPred::Lt   ? a < b
                     : ins.pred == CmpPred::Le ? a <= b
                     : ins.pred == CmpPred::Gt ? a > b
                     : ins.pred == CmpPred::Ge ? a >= b
                     : ins.pred == CmpPred::Eq ? a == b
                                               : a != b;
            RtValue &v = slots[ins.dst];
            v.kind = RtValue::Kind::Num;
            v.num = r ? 1.0 : 0.0;
            ctx.consume(1);
            break;
        }
        case Opcode::If: {
            bool cond = slots[ins.a].num != 0.0;
            ctx.consume(1);
            int branch = cond ? ins.body0 : ins.body1;
            if (branch >= 0)
                execCompiled(branch, slots, peEnv, peRt, ctx);
            break;
        }
        case Opcode::Return:
            return;
        case Opcode::LoadScalar: {
            RtValue &v = slots[ins.dst];
            v.kind = RtValue::Kind::Num;
            wse::ScalarId sid = peRt.scalarId[ins.var];
            v.num = sid.valid() ? pe.scalar(sid)
                                : pe.scalar(varNames_[ins.var]);
            ctx.consume(1);
            break;
        }
        case Opcode::LoadBuffer: {
            RtValue &v = slots[ins.dst];
            v.kind = RtValue::Kind::Buffer;
            v.buf = peRt.bufferId[ins.var];
            ctx.consume(1);
            break;
        }
        case Opcode::LoadBufferViaPtr: {
            RtValue &v = slots[ins.dst];
            v.kind = RtValue::Kind::Buffer;
            v.buf = peRt.ptrTarget[ins.var];
            ctx.consume(1);
            break;
        }
        case Opcode::LoadPtr: {
            RtValue &v = slots[ins.dst];
            v.kind = RtValue::Kind::Ptr;
            v.buf = peRt.ptrTarget[ins.var];
            ctx.consume(1);
            break;
        }
        case Opcode::StoreVar: {
            const RtValue &v = slots[ins.a];
            if (v.kind == RtValue::Kind::Ptr ||
                v.kind == RtValue::Kind::Buffer) {
                peRt.ptrTarget[ins.var] = v.buf;
            } else {
                wse::ScalarId sid = peRt.scalarId[ins.var];
                if (sid.valid())
                    pe.scalar(sid) = v.num;
                else
                    pe.scalar(varNames_[ins.var]) = v.num;
            }
            ctx.consume(1);
            break;
        }
        case Opcode::AddressOf: {
            RtValue &v = slots[ins.dst];
            v.kind = RtValue::Kind::Ptr;
            v.buf = peRt.bufferId[ins.var];
            break;
        }
        case Opcode::GetMemDsd:
        case Opcode::GetMemDsdViaPtr: {
            RtValue &v = slots[ins.dst];
            v.kind = RtValue::Kind::DsdVal;
            wse::BufferId buf = ins.op == Opcode::GetMemDsd
                                    ? peRt.bufferId[ins.var]
                                    : peRt.ptrTarget[ins.var];
            v.buf = buf;
            v.dsd.buf = &pe.buffer(buf);
            v.dsd.offset = ins.offset;
            v.dsd.length = ins.length;
            v.dsd.stride = ins.stride;
            if (ins.hasWrap)
                v.dsd.wrap = ins.wrap;
            ctx.consume(2); // DSD configuration is cheap but not free.
            break;
        }
        case Opcode::IncrementDsdOffset: {
            RtValue v = slots[ins.a];
            v.dsd.offset += static_cast<int64_t>(slots[ins.b].num);
            slots[ins.dst] = std::move(v);
            ctx.consume(1);
            break;
        }
        case Opcode::SetDsdLength: {
            RtValue v = slots[ins.a];
            v.dsd.length = static_cast<int64_t>(slots[ins.b].num);
            slots[ins.dst] = std::move(v);
            ctx.consume(1);
            break;
        }
        case Opcode::Fadds:
        case Opcode::Fsubs:
        case Opcode::Fmuls: {
            wse::Dsd dest = slots[ins.a].dsd;
            wse::DsdOperand a = asDsdOperand(slots[ins.b]);
            wse::DsdOperand b = asDsdOperand(slots[ins.c]);
            if (ins.op == Opcode::Fadds)
                wse::fadds(ctx, dest, a, b);
            else if (ins.op == Opcode::Fsubs)
                wse::fsubs(ctx, dest, a, b);
            else
                wse::fmuls(ctx, dest, a, b);
            break;
        }
        case Opcode::Fmovs: {
            wse::Dsd dest = slots[ins.a].dsd;
            wse::fmovs(ctx, dest, asDsdOperand(slots[ins.b]));
            break;
        }
        case Opcode::Fmacs: {
            wse::Dsd dest = slots[ins.a].dsd;
            wse::DsdOperand a = asDsdOperand(slots[ins.b]);
            wse::DsdOperand b = asDsdOperand(slots[ins.c]);
            double scalar = slots[ins.d].num;
            wse::fmacs(ctx, dest, a, b, static_cast<float>(scalar));
            break;
        }
        case Opcode::Call: {
            WSC_ASSERT(ins.body0 >= 0,
                       "call of unknown symbol " << *ins.str);
            runCompiledCallable(ins.body0, peEnv, peRt, ctx);
            ctx.consume(2);
            break;
        }
        case Opcode::Activate: {
            pe.activate(peRt.taskId[ins.task], ctx.currentCycle());
            ctx.consume(2);
            break;
        }
        case Opcode::CommsExchange: {
            const RtValue &send = slots[ins.a];
            WSC_ASSERT(send.kind == RtValue::Kind::DsdVal,
                       "comms_exchange expects a DSD operand");
            comms_[ins.site]->exchange(ctx, send.buf,
                                       peRt.commRecv[ins.site],
                                       peRt.commDone[ins.site]);
            ctx.consume(4);
            break;
        }
        case Opcode::UnblockCmdStream:
            unblockCount_.fetch_add(1, std::memory_order_relaxed);
            peUnblocked_[pe.id()] = 1;
            break;
        case Opcode::Nop:
            break;
        case Opcode::Unsupported:
            panic("csl interpreter: unsupported op " + *ins.str);
        }
    }
}

//===----------------------------------------------------------------------===
// Reference tree-walking evaluator (the semantic oracle)
//===----------------------------------------------------------------------===

CslProgramInstance::RtValue
CslProgramInstance::evalOperand(const SsaEnv &env, ir::Value v) const
{
    auto it = env.find(v.impl());
    WSC_ASSERT(it != env.end(), "use of an unevaluated SSA value");
    return it->second;
}

wse::DsdOperand
CslProgramInstance::asDsdOperand(const RtValue &v) const
{
    if (v.kind == RtValue::Kind::DsdVal)
        return wse::DsdOperand::fromDsd(v.dsd);
    WSC_ASSERT(v.kind == RtValue::Kind::Num,
               "builtin operand must be a DSD or scalar");
    return wse::DsdOperand::fromScalar(static_cast<float>(v.num));
}

void
CslProgramInstance::runCallable(const std::string &name, PeEnv &peEnv,
                                wse::TaskContext &ctx)
{
    auto it = callables_.find(name);
    WSC_ASSERT(it != callables_.end(), "call of unknown symbol " << name);
    SsaEnv env;
    execBody(csl::calleeBody(it->second), env, peEnv, ctx);
}

void
CslProgramInstance::execBody(ir::Block *block, SsaEnv &env, PeEnv &peEnv,
                             wse::TaskContext &ctx)
{
    wse::Pe &pe = ctx.pe();
    for (ir::Operation *op : block->operations()) {
        ir::OpId n = op->opId();
        if (n == ar::kConstant) {
            RtValue v;
            v.kind = RtValue::Kind::Num;
            ir::Attribute a = op->attr(ir::attrs::kValue);
            v.num = ir::isFloatAttr(a) ? ir::floatAttrValue(a)
                                       : static_cast<double>(
                                             ir::intAttrValue(a));
            env[op->result().impl()] = v;
            continue;
        }
        if (n == ar::kAddI || n == ar::kSubI || n == ar::kMulI ||
            n == ar::kAddF || n == ar::kSubF || n == ar::kMulF ||
            n == ar::kDivF) {
            double a = evalOperand(env, op->operand(0)).num;
            double b = evalOperand(env, op->operand(1)).num;
            double r = 0.0;
            if (n == ar::kAddI || n == ar::kAddF)
                r = a + b;
            else if (n == ar::kSubI || n == ar::kSubF)
                r = a - b;
            else if (n == ar::kMulI || n == ar::kMulF)
                r = a * b;
            else
                r = a / b;
            RtValue v;
            v.kind = RtValue::Kind::Num;
            v.num = r;
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == ar::kCmpI) {
            double a = evalOperand(env, op->operand(0)).num;
            double b = evalOperand(env, op->operand(1)).num;
            const std::string &p = op->strAttr(ir::attrs::kPredicate);
            bool r = p == "lt"   ? a < b
                     : p == "le" ? a <= b
                     : p == "gt" ? a > b
                     : p == "ge" ? a >= b
                     : p == "eq" ? a == b
                                 : a != b;
            RtValue v;
            v.kind = RtValue::Kind::Num;
            v.num = r ? 1.0 : 0.0;
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == scf::kIf) {
            bool cond = evalOperand(env, op->operand(0)).num != 0.0;
            ctx.consume(1);
            ir::Block *branch = cond ? scf::ifThenBlock(op)
                                     : (op->region(1).empty()
                                            ? nullptr
                                            : scf::ifElseBlock(op));
            if (branch)
                execBody(branch, env, peEnv, ctx);
            continue;
        }
        if (n == scf::kYield)
            continue;
        if (n == csl::kReturn)
            return;
        if (n == csl::kLoadVar) {
            const std::string &var = op->strAttr(ir::attrs::kVar);
            ir::Type t = op->result().type();
            RtValue v;
            if (ir::isMemRef(t)) {
                v.kind = RtValue::Kind::Buffer;
                v.str = op->hasAttr(ir::attrs::kViaPtr) ? peEnv.ptrs.at(var) : var;
            } else if (csl::isPtrType(t)) {
                v.kind = RtValue::Kind::Ptr;
                v.str = peEnv.ptrs.at(var);
            } else {
                v.kind = RtValue::Kind::Num;
                v.num = pe.scalar(var);
            }
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == csl::kStoreVar) {
            const std::string &var = op->strAttr(ir::attrs::kVar);
            RtValue v = evalOperand(env, op->operand(0));
            if (v.kind == RtValue::Kind::Ptr ||
                v.kind == RtValue::Kind::Buffer)
                peEnv.ptrs[var] = v.str;
            else
                pe.scalar(var) = v.num;
            ctx.consume(1);
            continue;
        }
        if (n == csl::kAddressOf) {
            RtValue v;
            v.kind = RtValue::Kind::Ptr;
            v.str = op->strAttr(ir::attrs::kVar);
            env[op->result().impl()] = v;
            continue;
        }
        if (n == csl::kGetMemDsd) {
            const std::string &var = op->strAttr(ir::attrs::kVar);
            std::string bufName =
                op->hasAttr(ir::attrs::kViaPtr) ? peEnv.ptrs.at(var) : var;
            RtValue v;
            v.kind = RtValue::Kind::DsdVal;
            v.str = bufName;
            v.dsd.buf = &pe.buffer(bufName);
            v.dsd.offset = op->intAttr(ir::attrs::kOffset);
            v.dsd.length = op->intAttr(ir::attrs::kLength);
            v.dsd.stride = op->intAttr(ir::attrs::kStride);
            if (op->hasAttr(ir::attrs::kWrap))
                v.dsd.wrap = op->intAttr(ir::attrs::kWrap);
            env[op->result().impl()] = v;
            ctx.consume(2); // DSD configuration is cheap but not free.
            continue;
        }
        if (n == csl::kIncrementDsdOffset) {
            RtValue v = evalOperand(env, op->operand(0));
            double delta = evalOperand(env, op->operand(1)).num;
            v.dsd.offset += static_cast<int64_t>(delta);
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == csl::kSetDsdLength) {
            RtValue v = evalOperand(env, op->operand(0));
            v.dsd.length = static_cast<int64_t>(
                evalOperand(env, op->operand(1)).num);
            env[op->result().impl()] = v;
            ctx.consume(1);
            continue;
        }
        if (n == csl::kFadds || n == csl::kFsubs || n == csl::kFmuls) {
            wse::Dsd dest = evalOperand(env, op->operand(0)).dsd;
            wse::DsdOperand a =
                asDsdOperand(evalOperand(env, op->operand(1)));
            wse::DsdOperand b =
                asDsdOperand(evalOperand(env, op->operand(2)));
            if (n == csl::kFadds)
                wse::fadds(ctx, dest, a, b);
            else if (n == csl::kFsubs)
                wse::fsubs(ctx, dest, a, b);
            else
                wse::fmuls(ctx, dest, a, b);
            continue;
        }
        if (n == csl::kFmovs) {
            wse::Dsd dest = evalOperand(env, op->operand(0)).dsd;
            wse::DsdOperand src =
                asDsdOperand(evalOperand(env, op->operand(1)));
            wse::fmovs(ctx, dest, src);
            continue;
        }
        if (n == csl::kFmacs) {
            wse::Dsd dest = evalOperand(env, op->operand(0)).dsd;
            wse::DsdOperand a =
                asDsdOperand(evalOperand(env, op->operand(1)));
            wse::DsdOperand b =
                asDsdOperand(evalOperand(env, op->operand(2)));
            double scalar = evalOperand(env, op->operand(3)).num;
            wse::fmacs(ctx, dest, a, b, static_cast<float>(scalar));
            continue;
        }
        if (n == csl::kCall) {
            runCallable(op->strAttr(ir::attrs::kCallee), peEnv, ctx);
            ctx.consume(2);
            continue;
        }
        if (n == csl::kActivate) {
            pe.activate(op->strAttr(ir::attrs::kTask), ctx.currentCycle());
            ctx.consume(2);
            continue;
        }
        if (n == csl::kCommsExchange) {
            size_t site = commSiteOf_.at(op);
            RtValue send = evalOperand(env, op->operand(0));
            WSC_ASSERT(send.kind == RtValue::Kind::DsdVal,
                       "comms_exchange expects a DSD operand");
            csl::CommsExchangeSpec spec = csl::commsExchangeSpec(op);
            comms_[site]->exchange(ctx, send.str, spec.recvCallback,
                                   spec.doneCallback);
            ctx.consume(4);
            continue;
        }
        if (n == csl::kUnblockCmdStream) {
            unblockCount_++;
            peUnblocked_[pe.id()] = 1;
            continue;
        }
        if (n == csl::kImportModule || n == csl::kMemberCall ||
            n == csl::kExport || n == csl::kParam) {
            // Comptime / host-interface constructs: no runtime effect in
            // the interpreter.
            for (ir::Value r : op->results()) {
                RtValue v;
                v.kind = RtValue::Kind::None;
                env[r.impl()] = v;
            }
            continue;
        }
        panic("csl interpreter: unsupported op " + n.str());
    }
}

//===----------------------------------------------------------------------===
// Host readback
//===----------------------------------------------------------------------===

std::vector<float>
CslProgramInstance::readFieldColumn(const std::string &field, int x, int y)
{
    // Resolve through the program's result mapping.
    std::string var = field;
    bool viaPtr = false;
    if (ir::Attribute results = program_->attr(ir::attrs::kResultFields)) {
        for (ir::Attribute entry : ir::arrayAttrValue(results)) {
            if (ir::stringAttrValue(ir::dictAttrGet(entry, "field")) ==
                field) {
                var = ir::stringAttrValue(ir::dictAttrGet(entry, "var"));
                viaPtr =
                    ir::intAttrValue(ir::dictAttrGet(entry, "via_ptr")) !=
                    0;
            }
        }
    }
    size_t peIdx = static_cast<size_t>(x) * sim_.height() + y;
    if (!referenceMode_ && viaPtr) {
        // Compiled mode tracks pointer rotation in the dense-handle
        // tables, not the (reference-mode) string environment.
        auto it = varIndex_.find(var);
        WSC_ASSERT(it != varIndex_.end(), "unknown pointer variable `"
                                              << var << "`");
        return sim_.pe(x, y).buffer(
            peRts_[peIdx].ptrTarget[it->second]);
    }
    PeEnv &env = peEnvs_[peIdx];
    std::string bufName = viaPtr ? env.ptrs.at(var) : var;
    return sim_.pe(x, y).buffer(bufName);
}

const std::vector<wse::Cycles> &
CslProgramInstance::stepMarks(int x, int y) const
{
    return stepMarks_[static_cast<size_t>(x) * sim_.height() + y];
}

size_t
CslProgramInstance::memoryBytesUsed(int x, int y)
{
    return sim_.pe(x, y).memoryBytesUsed();
}

} // namespace wsc::interp
