/**
 * @file
 * Opcode and opcode-pair execution profile for the csl-ir interpreter.
 *
 * Collection is the interpreter's counting dispatch variant, enabled by
 * `WSC_INTERP_STATS=1` (or InterpTuning::collectStats): every executed
 * instruction bumps its per-opcode counter and, within a body, the
 * (previous, current) pair counter. Pairs are intra-body only — exactly
 * the adjacencies the superinstruction fusion pass can act on — so a
 * dump doubles as the input of the PGO loop: capture with fusion off,
 * feed the file back through `WSC_INTERP_PROFILE` and configure() fuses
 * precisely the pairs the profile saw (see docs/architecture.md §8).
 *
 * Counters are relaxed atomics: shard worker threads increment
 * concurrently, and profile runs only need totals, not ordering.
 */

#ifndef WSC_INTERP_INTERP_PROFILE_H
#define WSC_INTERP_INTERP_PROFILE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "interp/interp_opcodes.h"

namespace wsc::interp {

/** Aggregated execution counts of one CslProgramInstance. */
class InterpProfile
{
  public:
    /** Sentinel "no previous opcode" (body entry). */
    static constexpr uint8_t kNoPrev = static_cast<uint8_t>(kNumOpcodes);

    /** Count one executed instruction following `prev` (kNoPrev at body
     *  entry skips the pair counter). Hot only in stats runs. */
    void
    note(uint8_t prev, Opcode op)
    {
        size_t cur = static_cast<size_t>(op);
        opCount_[cur].fetch_add(1, std::memory_order_relaxed);
        if (prev != kNoPrev)
            pairCount_[static_cast<size_t>(prev) * kNumOpcodes + cur]
                .fetch_add(1, std::memory_order_relaxed);
    }

    uint64_t
    opTotal(Opcode op) const
    {
        return opCount_[static_cast<size_t>(op)].load(
            std::memory_order_relaxed);
    }

    uint64_t
    pairTotal(Opcode a, Opcode b) const
    {
        return pairCount_[static_cast<size_t>(a) * kNumOpcodes +
                          static_cast<size_t>(b)]
            .load(std::memory_order_relaxed);
    }

    /** All executed instructions. */
    uint64_t total() const;

    /** Human-readable histogram: per-opcode counts and the hottest
     *  pairs, sorted by traffic. */
    void dump(std::ostream &os) const;

    /** Machine-readable pair profile (the PGO artifact): one
     *  `pair <first> <second> <count>` line per non-zero pair. */
    void writeProfile(std::ostream &os) const;

  private:
    std::array<std::atomic<uint64_t>, kNumOpcodes> opCount_{};
    std::array<std::atomic<uint64_t>, kNumOpcodes * kNumOpcodes>
        pairCount_{};
};

/** One (first, second) pair read back from a profile file. */
struct ProfiledPair
{
    Opcode first;
    Opcode second;
    uint64_t count;
};

/**
 * Parse a writeProfile() artifact. Unknown opcode names are skipped
 * (profiles survive opcode-set evolution); a malformed line aborts the
 * parse and returns false. An empty result with `true` is a valid
 * profile that saw no pairs.
 */
bool readProfile(std::istream &is, std::vector<ProfiledPair> &out);

} // namespace wsc::interp

#endif // WSC_INTERP_INTERP_PROFILE_H
