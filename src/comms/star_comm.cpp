#include "comms/star_comm.h"

#include <algorithm>

#include "support/error.h"

namespace wsc::comms {

namespace {

/** Source direction of an access offset (direction of the source PE). */
wse::Direction
accessDirection(const Access &a)
{
    WSC_ASSERT((a.dx == 0) != (a.dy == 0),
               "access offsets must be axis-aligned, got (" << a.dx << ", "
                                                            << a.dy << ")");
    if (a.dx > 0)
        return wse::Direction::East;
    if (a.dx < 0)
        return wse::Direction::West;
    if (a.dy < 0)
        return wse::Direction::North;
    return wse::Direction::South;
}

int
directionRank(wse::Direction d)
{
    switch (d) {
      case wse::Direction::East:
        return 0;
      case wse::Direction::West:
        return 1;
      case wse::Direction::North:
        return 2;
      case wse::Direction::South:
        return 3;
    }
    panic("unreachable direction");
}

/** Direction a stream travels so that the access's source is the sender:
 * data for access (dx, dy) travels from the source towards (-dx, -dy). */
wse::Direction
travelDirection(const Access &a)
{
    Access reversed{-a.dx, -a.dy};
    return accessDirection(reversed);
}

} // namespace

std::vector<Access>
canonicalAccessOrder(std::vector<Access> accesses)
{
    std::sort(accesses.begin(), accesses.end(),
              [](const Access &a, const Access &b) {
                  int ra = directionRank(accessDirection(a));
                  int rb = directionRank(accessDirection(b));
                  if (ra != rb)
                      return ra < rb;
                  return a.distance() < b.distance();
              });
    return accesses;
}

StarComm::StarComm(wse::Simulator &sim, StarCommConfig config)
    : sim_(sim), config_(std::move(config))
{
    WSC_ASSERT(!config_.accesses.empty(), "exchange without accesses");
    for (const Access &a : config_.accesses)
        WSC_ASSERT(a.distance() >= 1 && a.distance() < 32,
                   "access distance " << a.distance()
                                      << " exceeds the 31-hop routes");
    WSC_ASSERT(config_.zSize > 0, "exchange with empty column");
    WSC_ASSERT(config_.numChunks >= 1, "numChunks must be >= 1");
    WSC_ASSERT(commElems() > 0, "trims leave nothing to communicate");
    WSC_ASSERT(config_.coeffs.empty() ||
                   config_.coeffs.size() == config_.accesses.size(),
               "coeffs must match accesses");
    std::vector<Access> canonical = canonicalAccessOrder(config_.accesses);
    WSC_ASSERT(canonical == config_.accesses,
               "accesses must be in canonical order");

    size_t numPes =
        static_cast<size_t>(sim_.width()) * sim_.height();
    states_.resize(numPes);
    expected_.resize(numPes);
    for (int x = 0; x < sim_.width(); ++x)
        for (int y = 0; y < sim_.height(); ++y)
            expected_[static_cast<size_t>(x) * sim_.height() + y] =
                computeExpectedSections(x, y);

    // Group deliveries by travel direction once; every exchange reuses
    // this plan.
    for (size_t i = 0; i < config_.accesses.size(); ++i) {
        const Access &a = config_.accesses[i];
        wse::Direction dir = travelDirection(a);
        PlanEntry *entry = nullptr;
        for (PlanEntry &e : plan_)
            if (e.dir == dir)
                entry = &e;
        if (!entry) {
            plan_.push_back({dir, {}});
            entry = &plan_.back();
        }
        entry->sections.emplace_back(a.distance(),
                                     static_cast<int>(i));
    }
    for (PlanEntry &e : plan_)
        std::sort(e.sections.begin(), e.sections.end());
}

int64_t
StarComm::commElems() const
{
    return config_.zSize - config_.trimFirst - config_.trimLast;
}

int64_t
StarComm::chunkElems() const
{
    return (commElems() + config_.numChunks - 1) / config_.numChunks;
}

int
StarComm::sectionIndex(int dx, int dy) const
{
    for (size_t i = 0; i < config_.accesses.size(); ++i)
        if (config_.accesses[i].dx == dx && config_.accesses[i].dy == dy)
            return static_cast<int>(i);
    return -1;
}

int64_t
StarComm::recvBufferBytes() const
{
    return numSections() * chunkElems() *
           static_cast<int64_t>(sizeof(float));
}

int
StarComm::computeExpectedSections(int x, int y) const
{
    // A PE computes (and therefore receives) only when every one of its
    // sources exists; otherwise it is a boundary PE that only feeds its
    // neighbours.
    for (const Access &a : config_.accesses) {
        int sx = x + a.dx;
        int sy = y + a.dy;
        if (sx < 0 || sx >= sim_.width() || sy < 0 || sy >= sim_.height())
            return 0;
    }
    return static_cast<int>(config_.accesses.size());
}

int
StarComm::expectedSections(int x, int y) const
{
    return expected_[static_cast<size_t>(x) * sim_.height() + y];
}

const wse::Router &
StarComm::router(int x, int y) const
{
    WSC_ASSERT(setupDone_, "router() before setup");
    return routers_[static_cast<size_t>(x) * sim_.height() + y];
}

StarComm::PeState &
StarComm::state(int x, int y)
{
    return states_[static_cast<size_t>(x) * sim_.height() + y];
}

void
StarComm::setup()
{
    WSC_ASSERT(!setupDone_, "setup() called twice");
    setupDone_ = true;

    // Router color configuration: one color per direction of travel used
    // by this exchange site, with an injection position and a
    // forward-and-deliver position (advanced by switches between roles).
    bool selfTransmit = sim_.params().switchRequiresSelfTransmit;
    std::set<wse::Direction> travelDirs;
    int maxDistance = 0;
    for (const Access &a : config_.accesses) {
        travelDirs.insert(travelDirection(a));
        maxDistance = std::max(maxDistance, a.distance());
    }
    routers_.resize(static_cast<size_t>(sim_.width()) * sim_.height());
    for (int x = 0; x < sim_.width(); ++x) {
        for (int y = 0; y < sim_.height(); ++y) {
            wse::Router &router =
                routers_[static_cast<size_t>(x) * sim_.height() + y];
            for (wse::Direction dir : travelDirs) {
                wse::Color color = static_cast<wse::Color>(
                    config_.baseColor + directionRank(dir));
                wse::RouteConfig route = wse::makeStarRoute(
                    dir, /*isSender=*/true, /*isTerminal=*/false,
                    selfTransmit);
                wse::RouteConfig recvRoute = wse::makeStarRoute(
                    dir, /*isSender=*/false,
                    /*isTerminal=*/maxDistance == 1, selfTransmit);
                route.positions.push_back(recvRoute.positions[0]);
                router.configure(color, route);
            }
        }
    }

    // Receive buffers: one chunk per section, reused across chunks — the
    // memory saving that csl_stencil.apply chunking enables. The dense
    // handle is resolved once here; receive callbacks use it directly.
    for (int x = 0; x < sim_.width(); ++x)
        for (int y = 0; y < sim_.height(); ++y)
            state(x, y).recvBuf = sim_.pe(x, y).allocBufferId(
                config_.recvBufferName,
                static_cast<size_t>(numSections() * chunkElems()));

    // Deadlock introspection: when the event queues drain, any PE still
    // inside an exchange is waiting for data that will never arrive —
    // name it and what it got so far (this StarComm must outlive the
    // simulator runs, which every call site already guarantees).
    sim_.addQuiescenceProbe([this](std::vector<wse::BlockedPeInfo> &out) {
        for (int x = 0; x < sim_.width(); ++x) {
            for (int y = 0; y < sim_.height(); ++y) {
                PeState &st = state(x, y);
                if (!st.exchangeActive)
                    continue;
                int done = config_.perSectionCallbacks
                               ? st.announcedDeliveries
                               : st.completedChunks;
                int total =
                    config_.perSectionCallbacks
                        ? expectedSections(x, y) *
                              static_cast<int>(config_.numChunks)
                        : static_cast<int>(config_.numChunks);
                out.push_back(
                    {x, y,
                     strcat("halo exchange epoch ", st.activeEpoch, ": ",
                            done, "/", total,
                            config_.perSectionCallbacks ? " sections"
                                                        : " chunks",
                            " complete"),
                     st.exchangeStart, false});
            }
        }
    });
}

void
StarComm::exchange(wse::TaskContext &ctx, const std::string &sendBufName,
                   const std::string &recvCb, const std::string &doneCb)
{
    wse::Pe &pe = ctx.pe();
    exchange(ctx, pe.bufferId(sendBufName), pe.taskId(recvCb),
             pe.taskId(doneCb));
}

void
StarComm::exchange(wse::TaskContext &ctx, wse::BufferId sendBufId,
                   wse::TaskId recvCb, wse::TaskId doneCb)
{
    WSC_ASSERT(setupDone_, "exchange before setup");
    wse::Pe &pe = ctx.pe();
    int x = pe.x();
    int y = pe.y();
    PeState &st = state(x, y);
    WSC_ASSERT(!st.exchangeActive,
               "overlapping exchanges on PE (" << x << ", " << y << ")");

    st.exchangeActive = true;
    st.recvCb = recvCb;
    st.doneCb = doneCb;
    st.activeEpoch++;
    st.exchangeStart = ctx.currentCycle();
    st.completedChunks = 0;
    st.announcedDeliveries = 0;
    st.stats.exchangesStarted++;

    const int64_t epoch = st.activeEpoch;
    const int64_t nChunks = config_.numChunks;
    const int64_t chunk = chunkElems();
    const int64_t total = commElems();
    std::vector<float> &sendBuf = pe.buffer(sendBufId);
    WSC_ASSERT(static_cast<int64_t>(sendBuf.size()) >= config_.zSize,
               "send buffer smaller than column");

    wse::Cycles t = ctx.currentCycle();
    wse::Cycles lastInject = t;
    for (int64_t c = 0; c < nChunks; ++c) {
        int64_t begin = config_.trimFirst + c * chunk;
        int64_t len = std::min(chunk, total - c * chunk);
        // One recycled ring slot per chunk: every direction's stream,
        // every delivery event and every receiver stash reference the
        // same buffer (wse/payload.h); nothing is copied per delivery.
        wse::PayloadRef payload = pe.payloadPool().acquire();
        payload.mutableData().assign(sendBuf.begin() + begin,
                                     sendBuf.begin() + begin + len);
        for (const PlanEntry &entry : plan_) {
            // Only deliver to PEs that actually compute.
            uint32_t deliverMask = 0;
            auto [sx, sy] = wse::directionStep(entry.dir);
            for (const auto &[dist, sectionIdx] : entry.sections) {
                int rx = x + sx * dist;
                int ry = y + sy * dist;
                if (rx < 0 || rx >= sim_.width() || ry < 0 ||
                    ry >= sim_.height())
                    continue;
                if (expectedSections(rx, ry) > 0)
                    deliverMask |= 1u << dist;
            }
            if (deliverMask == 0)
                continue;
            // Switch positions advance between chunks.
            sim_.fabric().switchReconfig(x, y, entry.dir, t);
            const PlanEntry *sections = &entry; // Stable for the run.
            auto deliver = std::make_shared<const wse::DeliveryFn>(
                [this, sections, c, epoch](
                    const wse::StreamDelivery &delivery,
                    const std::vector<float> &data) {
                    int section = -1;
                    for (const auto &[dist, idx] : sections->sections)
                        if (dist == delivery.distance)
                            section = idx;
                    WSC_ASSERT(section >= 0,
                               "delivery at unexpected distance");
                    onDelivery(delivery, data, section, c, epoch);
                });
            wse::Cycles injected = sim_.fabric().sendStream(
                x, y, entry.dir, deliverMask, payload, t,
                std::move(deliver));
            lastInject = std::max(lastInject, injected);
        }
    }

    EpochState &es = st.epochs[epoch];
    if (es.arrivals.empty()) {
        es.arrivals.assign(nChunks, 0);
        es.announced.assign(nChunks, 0);
        es.announcedSections.assign(
            nChunks,
            std::vector<char>(config_.accesses.size(), 0));
        es.stash.resize(nChunks);
    }
    es.senderInjectDone = lastInject;

    int expected = expectedSections(x, y);
    if (expected == 0) {
        // Boundary PE: nothing to receive; done once sends are injected.
        st.exchangeActive = false;
        pruneEpochs(st, epoch);
        pe.activate(doneCb, lastInject);
        st.stats.doneCallbacks++;
        return;
    }

    // Arm the exchange watchdog: if the receives have not completed by
    // the deadline the wait is extended with backoff, then the exchange
    // degrades rather than hanging the program (wse/fault.h). Off by
    // default (exchangeTimeoutCycles == 0) — no events, no reordering.
    if (sim_.options().exchangeTimeoutCycles > 0)
        scheduleTimeout(pe, epoch, /*attempt=*/0, ctx.currentCycle());

    // Drain completions that arrived before this exchange started (a
    // neighbour running ahead; the hardware equivalent is data waiting in
    // the input queues).
    if (config_.perSectionCallbacks) {
        for (int64_t c = 0; c < nChunks; ++c) {
            for (size_t s = 0; s < config_.accesses.size(); ++s) {
                if (static_cast<int64_t>(es.stash.size()) > c &&
                    es.stash[c].size() > s && es.stash[c][s].valid() &&
                    !es.announcedSections[c][s])
                    announceSection(pe, st, es, c,
                                    static_cast<int>(s), pe.now());
            }
        }
    } else {
        for (int64_t c = 0; c < nChunks; ++c) {
            if (es.arrivals[c] == expected && !es.announced[c])
                announceChunk(pe, st, es, c, pe.now());
        }
    }
}

void
StarComm::announceChunk(wse::Pe &pe, PeState &st, EpochState &es, int64_t c,
                        wse::Cycles readyAt)
{
    es.announced[c] = 1;
    st.pendingChunks.push_back({st.activeEpoch, c});
    pe.activate(st.recvCb, readyAt);
    st.stats.recvCallbacks++;
    st.completedChunks++;
    if (st.completedChunks == config_.numChunks)
        finishExchange(pe, st, es, readyAt);
}

void
StarComm::announceSection(wse::Pe &pe, PeState &st, EpochState &es,
                          int64_t c, int section, wse::Cycles readyAt)
{
    es.announcedSections[c][static_cast<size_t>(section)] = 1;
    st.pendingSections.push_back({st.activeEpoch, c, section});
    pe.activate(st.recvCb, readyAt);
    st.stats.recvCallbacks++;
    st.announcedDeliveries++;
    int expected = expectedSections(pe.x(), pe.y());
    if (st.announcedDeliveries ==
        expected * static_cast<int>(config_.numChunks))
        finishExchange(pe, st, es, readyAt);
}

void
StarComm::finishExchange(wse::Pe &pe, PeState &st, EpochState &es,
                         wse::Cycles readyAt)
{
    wse::Cycles doneAt = std::max(readyAt, es.senderInjectDone);
    wse::TaskId doneCb = st.doneCb;
    int64_t epoch = st.activeEpoch;
    st.exchangeActive = false;
    // Keep recent epoch stashes alive until their chunks have been
    // consumed by the receive callbacks (FIFO task order guarantees
    // consumption before the exchange after next).
    pruneEpochs(st, epoch);
    pe.activate(doneCb, doneAt);
    st.stats.doneCallbacks++;
}

const StarCommStats &
StarComm::stats() const
{
    statsCache_ = StarCommStats{};
    for (const PeState &st : states_) {
        statsCache_.exchangesStarted += st.stats.exchangesStarted;
        statsCache_.chunksDelivered += st.stats.chunksDelivered;
        statsCache_.recvCallbacks += st.stats.recvCallbacks;
        statsCache_.doneCallbacks += st.stats.doneCallbacks;
        statsCache_.timeouts += st.stats.timeouts;
        statsCache_.degradedExchanges += st.stats.degradedExchanges;
    }
    return statsCache_;
}

void
StarComm::scheduleTimeout(wse::Pe &pe, int64_t epoch, int attempt,
                          wse::Cycles from)
{
    wse::Cycles wait = sim_.options().exchangeTimeoutCycles
                       << static_cast<unsigned>(attempt);
    int x = pe.x();
    int y = pe.y();
    pe.shard().push(pe.id(), from + wait, [this, x, y, epoch, attempt] {
        onExchangeTimeout(sim_.pe(x, y), epoch, attempt);
    });
}

void
StarComm::onExchangeTimeout(wse::Pe &pe, int64_t epoch, int attempt)
{
    PeState &st = state(pe.x(), pe.y());
    if (!st.exchangeActive || st.activeEpoch != epoch)
        return; // The exchange completed in time: the timer is stale.
    st.stats.timeouts++;
    pe.shard().faultStats().exchangeTimeouts++;
    if (attempt < sim_.options().exchangeMaxRetries) {
        // Extend the deadline with exponential backoff: a degraded
        // (slow) link deserves more patience than a dead one.
        scheduleTimeout(pe, epoch, attempt + 1, pe.now());
        return;
    }
    degradeExchange(pe, st, st.epochs.at(epoch), pe.now());
}

void
StarComm::degradeExchange(wse::Pe &pe, PeState &st, EpochState &es,
                          wse::Cycles readyAt)
{
    es.degraded = true;
    st.stats.degradedExchanges++;
    pe.shard().faultStats().exchangesDegraded++;
    sim_.noteDegradedPe(pe.id());
    // Size the stashes so the materialization paths can probe sections
    // that never arrived (resize preserves the pinned slots).
    for (auto &chunkStash : es.stash)
        chunkStash.resize(config_.accesses.size());
    // Announce everything still outstanding: the receive callbacks run
    // over whatever sections made it, the pop paths zero-fill the rest,
    // and the last announcement fires finishExchange as usual — the
    // program continues instead of deadlocking on a dead neighbour.
    if (config_.perSectionCallbacks) {
        for (int64_t c = 0; c < config_.numChunks; ++c)
            for (size_t s = 0; s < config_.accesses.size(); ++s)
                if (!es.announcedSections[c][s])
                    announceSection(pe, st, es, c, static_cast<int>(s),
                                    readyAt);
    } else {
        for (int64_t c = 0; c < config_.numChunks; ++c)
            if (!es.announced[c])
                announceChunk(pe, st, es, c, readyAt);
    }
}

void
StarComm::pruneEpochs(PeState &st, int64_t currentEpoch)
{
    for (auto it = st.epochs.begin(); it != st.epochs.end();) {
        if (it->first + 2 < currentEpoch)
            it = st.epochs.erase(it);
        else
            ++it;
    }
}

void
StarComm::onDelivery(const wse::StreamDelivery &delivery,
                     const std::vector<float> &payload, int accessIdx,
                     int64_t chunkIdx, int64_t senderEpoch)
{
    wse::Pe &pe = sim_.pe(delivery.peX, delivery.peY);
    PeState &st = state(delivery.peX, delivery.peY);
    // The sender's epoch counter aligns with the receiver's because every
    // PE performs the same sequence of exchanges on this site.
    EpochState &es = st.epochs[senderEpoch];
    if (es.arrivals.empty()) {
        es.arrivals.assign(config_.numChunks, 0);
        es.announced.assign(config_.numChunks, 0);
        es.announcedSections.assign(
            config_.numChunks,
            std::vector<char>(config_.accesses.size(), 0));
        es.stash.resize(config_.numChunks);
    }
    es.stash[chunkIdx].resize(config_.accesses.size());
    // Pin the payload slot instead of copying the floats; the slot
    // returns to its ring when the receive callback materializes it.
    es.stash[chunkIdx][accessIdx] = delivery.payload;
    es.arrivals[chunkIdx]++;
    st.stats.chunksDelivered++;
    (void)payload;

    int expected = expectedSections(delivery.peX, delivery.peY);
    WSC_ASSERT(expected > 0, "delivery to a non-computing PE");
    WSC_ASSERT(es.arrivals[chunkIdx] <= expected, "duplicate delivery");
    bool active =
        st.exchangeActive && senderEpoch == st.activeEpoch;
    if (config_.perSectionCallbacks) {
        if (active && !es.announcedSections[chunkIdx][accessIdx])
            announceSection(pe, st, es, chunkIdx, accessIdx,
                            delivery.completeAt);
    } else if (es.arrivals[chunkIdx] == expected && active &&
               !es.announced[chunkIdx]) {
        announceChunk(pe, st, es, chunkIdx, delivery.completeAt);
    }
}

int64_t
StarComm::popCompletedChunkOffset(wse::Pe &pe)
{
    PeState &st = state(pe.x(), pe.y());
    WSC_ASSERT(!st.pendingChunks.empty(),
               "receive callback without a completed chunk");
    auto [epoch, chunkIdx] = st.pendingChunks.front();
    st.pendingChunks.pop_front();

    // Materialize the chunk into the receive buffer (the hardware's
    // landing step), applying promoted coefficients at zero extra cost —
    // the comms/compute interleaving of §5.7.
    EpochState &es = st.epochs.at(epoch);
    std::vector<float> &recv = pe.buffer(st.recvBuf);
    int64_t chunk = chunkElems();
    for (size_t s = 0; s < config_.accesses.size(); ++s) {
        wse::PayloadRef &pinned = es.stash[chunkIdx][s];
        if (!pinned.valid()) {
            // Only a degraded exchange announces incomplete chunks: the
            // section never arrived and its slice reads as zeros.
            WSC_ASSERT(es.degraded, "announced chunk missing a section");
            for (int64_t i = 0; i < chunk; ++i)
                recv[s * chunk + static_cast<size_t>(i)] = 0.0f;
            continue;
        }
        const std::vector<float> &data = pinned.data();
        float coeff = config_.coeffs.empty()
                          ? 1.0f
                          : static_cast<float>(config_.coeffs[s]);
        for (size_t i = 0; i < data.size(); ++i)
            recv[s * chunk + i] = data[i] * coeff;
        // Zero any tail when the final chunk is short.
        for (size_t i = data.size(); i < static_cast<size_t>(chunk); ++i)
            recv[s * chunk + i] = 0.0f;
        pinned.reset(); // Return the slot to its sender's ring.
    }
    // Offset is accumulator-relative (interior index space): the chunk
    // covers [chunkIdx * chunkElems, +chunkElems) of the communicated
    // range.
    return chunkIdx * chunk;
}

std::pair<int, int64_t>
StarComm::popCompletedSection(wse::Pe &pe)
{
    PeState &st = state(pe.x(), pe.y());
    WSC_ASSERT(!st.pendingSections.empty(),
               "receive callback without a landed section");
    auto [epoch, chunkIdx, section] = st.pendingSections.front();
    st.pendingSections.pop_front();

    EpochState &es = st.epochs.at(epoch);
    std::vector<float> &recv = pe.buffer(st.recvBuf);
    int64_t chunk = chunkElems();
    wse::PayloadRef &pinned =
        es.stash[chunkIdx][static_cast<size_t>(section)];
    if (!pinned.valid()) {
        // Degraded exchange: the section never arrived (see above).
        WSC_ASSERT(es.degraded, "announced section missing its payload");
        for (int64_t i = 0; i < chunk; ++i)
            recv[section * chunk + i] = 0.0f;
        return {section, chunkIdx * chunk};
    }
    const std::vector<float> &data = pinned.data();
    float coeff = config_.coeffs.empty()
                      ? 1.0f
                      : static_cast<float>(
                            config_.coeffs[static_cast<size_t>(section)]);
    for (size_t i = 0; i < data.size(); ++i)
        recv[section * chunk + static_cast<int64_t>(i)] =
            data[i] * coeff;
    for (size_t i = data.size(); i < static_cast<size_t>(chunk); ++i)
        recv[section * chunk + static_cast<int64_t>(i)] = 0.0f;
    pinned.reset(); // Return the slot to its sender's ring.
    return {section, chunkIdx * chunk};
}

} // namespace wsc::comms
