/**
 * @file
 * The runtime communications library (paper §5.6): chunked asynchronous
 * halo exchanges for star-shaped stencils of up to radius 3+ at variable
 * stencil sizes, following the partitionable strategy of Jacquelin et al.
 *
 * One StarComm instance serves one csl.comms_exchange site: it owns the
 * per-PE receive buffer, the router color configuration, and the arrival
 * bookkeeping that drives the user-provided receive-chunk and
 * done-exchange callbacks.
 *
 * Properties the paper credits for the generated code's edge over the
 * hand-written kernel are expressed here as configuration:
 *  - only data required by the calculation is communicated (the access
 *    list and the trim of unused leading/trailing column values);
 *  - communication can proceed in a single chunk when memory allows;
 *  - a single receive-chunk task per chunk (not per direction), roughly
 *    halving task activations;
 *  - coefficients can be applied to incoming data at zero cost while it
 *    lands (comms/compute interleaving).
 */

#ifndef WSC_COMMS_STAR_COMM_H
#define WSC_COMMS_STAR_COMM_H

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "wse/pe.h"
#include "wse/router.h"
#include "wse/simulator.h"

namespace wsc::comms {

/** One remote access: the axis-aligned offset of the source PE. */
struct Access
{
    int dx = 0;
    int dy = 0;

    bool operator==(const Access &other) const = default;
    int distance() const { return dx != 0 ? std::abs(dx) : std::abs(dy); }
};

/**
 * Canonical ordering of accesses: by source direction (E, W, N, S), then
 * by distance. The lowering pass and the receive-buffer layout must agree
 * on this order.
 */
std::vector<Access> canonicalAccessOrder(std::vector<Access> accesses);

/** Configuration of one exchange site. */
struct StarCommConfig
{
    /** Remote offsets the stencil accesses (canonically ordered). */
    std::vector<Access> accesses;
    /** Full column length. */
    int64_t zSize = 0;
    /** Number of chunks the column is split into. */
    int64_t numChunks = 1;
    /** Leading column elements not required remotely (not sent). */
    int64_t trimFirst = 0;
    /** Trailing column elements not required remotely (not sent). */
    int64_t trimLast = 0;
    /**
     * Coefficients applied to incoming data while it lands, one per
     * access (same order); empty disables promotion.
     */
    std::vector<double> coeffs;
    /** Name of the per-PE receive buffer this instance allocates. */
    std::string recvBufferName = "recv_buffer";
    /** First router color used by this exchange site. */
    wse::Color baseColor = 0;
    /**
     * When set, the receive callback is activated once per landed
     * (section, chunk) instead of once per completed chunk — the task
     * structure of the hand-written kernel (per-direction tasks), which
     * roughly doubles activations (paper §6.1).
     */
    bool perSectionCallbacks = false;
};

/** Per-instance communication statistics. */
struct StarCommStats
{
    uint64_t exchangesStarted = 0;
    uint64_t chunksDelivered = 0;
    uint64_t recvCallbacks = 0;
    uint64_t doneCallbacks = 0;
    /** Exchange watchdog firings (wse/fault.h; 0 without faults). */
    uint64_t timeouts = 0;
    /** Exchanges completed degraded (missing sections zero-filled). */
    uint64_t degradedExchanges = 0;
};

/** One exchange site of the runtime library. */
class StarComm
{
  public:
    StarComm(wse::Simulator &sim, StarCommConfig config);

    const StarCommConfig &config() const { return config_; }

    /**
     * Allocate receive buffers and configure router colors on every PE.
     * Must be called once before the first exchange.
     */
    void setup();

    /**
     * Start an exchange from a running task on ctx's PE: sends the
     * chunked (trimmed) column of `sendBuf`, then activates
     * `recvCb` once per chunk as it completes and `doneCb` at the end.
     * The caller's generated receive-chunk task obtains the chunk offset
     * via popCompletedChunkOffset().
     *
     * The handle overload is the hot path: callers that pre-resolve the
     * buffer and callback tasks once (interpreter configure, baseline
     * registration) incur no string lookups per exchange. The string
     * overload resolves on ctx's PE and delegates.
     */
    void exchange(wse::TaskContext &ctx, wse::BufferId sendBuf,
                  wse::TaskId recvCb, wse::TaskId doneCb);
    void exchange(wse::TaskContext &ctx, const std::string &sendBufName,
                  const std::string &recvCb, const std::string &doneCb);

    /** Elements of one chunk (per access section). */
    int64_t chunkElems() const;
    /** Elements communicated per column (zSize - trims). */
    int64_t commElems() const;
    /** Number of receive-buffer sections (== accesses). */
    int64_t numSections() const
    {
        return static_cast<int64_t>(config_.accesses.size());
    }
    /** Section index of an access offset; -1 when absent. */
    int sectionIndex(int dx, int dy) const;
    /** Bytes of PE memory the receive buffer occupies. */
    int64_t recvBufferBytes() const;

    /**
     * Inside a receive-chunk callback: the accumulator-relative offset of
     * the chunk being processed (chunkIndex * chunkElems).
     */
    int64_t popCompletedChunkOffset(wse::Pe &pe);

    /**
     * Per-section mode: the (section, accumulator-relative offset) of the
     * landed piece being processed.
     */
    std::pair<int, int64_t> popCompletedSection(wse::Pe &pe);

    /** Aggregate statistics, summed across PEs on each call. */
    const StarCommStats &stats() const;

    /** Router of PE (x, y), for inspecting the configured routes. */
    const wse::Router &router(int x, int y) const;

    /** Expected number of arriving sections for PE (x, y); 0 marks a
     *  boundary (non-computing) PE. */
    int expectedSections(int x, int y) const;

  private:
    /**
     * Bookkeeping for one exchange epoch on one PE. Data arriving before
     * the PE has started the matching exchange is stashed here — the
     * hardware equivalent of wavelets waiting in the input queues.
     */
    struct EpochState
    {
        std::vector<int> arrivals;         ///< per chunk index
        std::vector<char> announced;       ///< recvCb issued per chunk
        /** Per-section mode: callback issued per (chunk, section). */
        std::vector<std::vector<char>> announcedSections;
        /** stash[chunk][section] pins the landed payload slot (no copy)
         *  until the receive callback materializes it. */
        std::vector<std::vector<wse::PayloadRef>> stash;
        wse::Cycles senderInjectDone = 0;
        /**
         * Set when the exchange watchdog gave up waiting: outstanding
         * chunks were force-announced and their missing sections read
         * as zeros (graceful degradation under injected faults).
         */
        bool degraded = false;
    };

    struct PeState
    {
        int64_t activeEpoch = 0;
        bool exchangeActive = false;
        /** Cycle the active exchange started (watchdog/diagnosis). */
        wse::Cycles exchangeStart = 0;
        int completedChunks = 0;
        int announcedDeliveries = 0;
        /** Callback tasks of the active exchange (resolved handles). */
        wse::TaskId recvCb;
        wse::TaskId doneCb;
        /** This PE's receive buffer (resolved once at setup()). */
        wse::BufferId recvBuf;
        std::map<int64_t, EpochState> epochs;
        /** (epoch, chunk) queue feeding popCompletedChunkOffset. */
        std::deque<std::pair<int64_t, int64_t>> pendingChunks;
        /** (epoch, chunk, section) queue for per-section mode. */
        std::deque<std::tuple<int64_t, int64_t, int>> pendingSections;
        /** Shard-safe statistics: counters live with the PE that
         *  increments them; stats() sums across PEs. */
        StarCommStats stats;
    };

    /** One send plan entry: all sections travelling one direction. */
    struct PlanEntry
    {
        wse::Direction dir;
        /** (distance, section index), ascending by distance. */
        std::vector<std::pair<int, int>> sections;
    };

    PeState &state(int x, int y);
    int computeExpectedSections(int x, int y) const;
    void onDelivery(const wse::StreamDelivery &delivery,
                    const std::vector<float> &payload, int accessIdx,
                    int64_t chunkIdx, int64_t senderEpoch);
    void announceChunk(wse::Pe &pe, PeState &st, EpochState &es, int64_t c,
                       wse::Cycles readyAt);
    void announceSection(wse::Pe &pe, PeState &st, EpochState &es,
                         int64_t c, int section, wse::Cycles readyAt);
    void finishExchange(wse::Pe &pe, PeState &st, EpochState &es,
                        wse::Cycles readyAt);
    void pruneEpochs(PeState &st, int64_t currentEpoch);

    /// @name Exchange watchdog (wse/fault.h)
    /// Armed per exchange when SimOptions::exchangeTimeoutCycles > 0.
    /// Timers are events owned by the waiting PE, so they replay
    /// identically at any thread count and shard tiling; a timer that
    /// fires after its exchange completed is stale and does nothing.
    /// @{
    /** Arm attempt `attempt`'s deadline, `timeout << attempt` cycles
     *  after `from` (exponential backoff). */
    void scheduleTimeout(wse::Pe &pe, int64_t epoch, int attempt,
                         wse::Cycles from);
    void onExchangeTimeout(wse::Pe &pe, int64_t epoch, int attempt);
    /**
     * Give up on the active exchange: announce every outstanding chunk
     * (or section) so the program continues, with never-delivered
     * sections zero-filled at materialization. Records the PE as
     * degraded on the SimReport.
     */
    void degradeExchange(wse::Pe &pe, PeState &st, EpochState &es,
                         wse::Cycles readyAt);
    /// @}

    wse::Simulator &sim_;
    StarCommConfig config_;
    std::vector<PeState> states_;
    /** Expected arriving sections per PE (0 marks a boundary PE). */
    std::vector<int> expected_;
    /** Deliveries grouped by travel direction (derived from config). */
    std::vector<PlanEntry> plan_;
    std::vector<wse::Router> routers_;
    /** Merged-stats cache refreshed by stats(). */
    mutable StarCommStats statsCache_;
    bool setupDone_ = false;
};

} // namespace wsc::comms

#endif // WSC_COMMS_STAR_COMM_H
