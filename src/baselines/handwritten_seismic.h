/**
 * @file
 * The hand-written 25-point seismic kernel (Jacquelin et al., shipped in
 * Cerebras' csl-examples) recreated directly against the simulator
 * runtime — the Figure 5 comparator. It reproduces the documented
 * characteristics of that implementation relative to the generated code
 * (paper §6.1):
 *   - communication in two chunks (vs. one);
 *   - the full column is transmitted, including the first/last values
 *     the calculation never uses (no trimming);
 *   - per-(direction, distance) receive tasks, roughly doubling task
 *     activations;
 *   - written for the WSE2's switch configuration (runs on the WSE2
 *     parameter set only, like the original).
 */

#ifndef WSC_BASELINES_HANDWRITTEN_SEISMIC_H
#define WSC_BASELINES_HANDWRITTEN_SEISMIC_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "comms/star_comm.h"
#include "wse/simulator.h"

namespace wsc::baselines {

/** Configuration of the hand-written kernel. */
struct HandwrittenSeismicConfig
{
    int64_t nz = 450;
    int64_t timesteps = 10;
    /** The original uses two chunks. */
    int64_t numChunks = 2;
};

/** The hand-coded CSL program, instantiated on every simulated PE. */
class HandwrittenSeismic
{
  public:
    HandwrittenSeismic(wse::Simulator &sim,
                       HandwrittenSeismicConfig config);

    /** Initial conditions for p (field 0) and p_prev (field 1). */
    void setInit(std::function<float(int f, int x, int y, int z)> init);

    void configure();
    void launch();

    /** Final pressure column (resolving the buffer rotation). */
    std::vector<float> readP(int x, int y);

    /** for_cond dispatch markers on a PE (per-step timing). */
    const std::vector<wse::Cycles> &stepMarks(int x, int y) const;

    const comms::StarComm &comm() const { return *comm_; }

  private:
    struct PeState
    {
        // Triple buffering by dense-handle rotation (resolved once at
        // configure; no string lookups during the run).
        wse::BufferId pBuf;
        wse::BufferId pPrevBuf;
        wse::BufferId pNextBuf;
        wse::BufferId accBuf;
        wse::BufferId recvBuf;
        wse::TaskId forCondTask;
        wse::TaskId recvTask;
        wse::TaskId doneTask;
        int64_t step = 0;
        bool interior = true;
    };

    PeState &state(int x, int y);
    void registerTasks(int x, int y);
    /** seq_kernel body: zero the accumulator, start the exchange. */
    void pe_seq(wse::TaskContext &ctx, int x, int y);

    wse::Simulator &sim_;
    HandwrittenSeismicConfig config_;
    std::unique_ptr<comms::StarComm> comm_;
    std::function<float(int, int, int, int)> init_;
    std::vector<PeState> states_;
    std::vector<std::vector<wse::Cycles>> stepMarks_;
};

} // namespace wsc::baselines

#endif // WSC_BASELINES_HANDWRITTEN_SEISMIC_H
