#include "baselines/handwritten_seismic.h"

#include "frontends/benchmarks.h"
#include "support/error.h"
#include "wse/dsd.h"

namespace wsc::baselines {

namespace {

/** The 16 remote accesses of the 25-point star, canonical order. */
std::vector<comms::Access>
seismicAccesses()
{
    std::vector<comms::Access> accesses;
    for (int d = 1; d <= 4; ++d) {
        accesses.push_back({d, 0});
        accesses.push_back({-d, 0});
        accesses.push_back({0, -d});
        accesses.push_back({0, d});
    }
    return comms::canonicalAccessOrder(accesses);
}

} // namespace

HandwrittenSeismic::HandwrittenSeismic(wse::Simulator &sim,
                                       HandwrittenSeismicConfig config)
    : sim_(sim), config_(config)
{
    states_.resize(static_cast<size_t>(sim.width()) * sim.height());
    stepMarks_.resize(states_.size());

    comms::StarCommConfig comm;
    comm.accesses = seismicAccesses();
    comm.zSize = config_.nz;
    comm.numChunks = config_.numChunks;
    // The hand-written kernel transmits the full column, including the
    // first and last values the calculation never uses.
    comm.trimFirst = 0;
    comm.trimLast = 0;
    // No coefficient promotion: the receive tasks apply coefficients.
    comm.coeffs.clear();
    comm.recvBufferName = "hw_recv";
    // Per-(direction, distance) receive tasks, as in the original.
    comm.perSectionCallbacks = true;
    comm_ = std::make_unique<comms::StarComm>(sim_, comm);
}

void
HandwrittenSeismic::setInit(
    std::function<float(int f, int x, int y, int z)> init)
{
    init_ = std::move(init);
}

HandwrittenSeismic::PeState &
HandwrittenSeismic::state(int x, int y)
{
    return states_[static_cast<size_t>(x) * sim_.height() + y];
}

void
HandwrittenSeismic::configure()
{
    WSC_ASSERT(init_, "setInit must be called before configure");
    for (int x = 0; x < sim_.width(); ++x) {
        for (int y = 0; y < sim_.height(); ++y) {
            wse::Pe &pe = sim_.pe(x, y);
            size_t nz = static_cast<size_t>(config_.nz);
            PeState &st = state(x, y);
            st.pBuf = pe.allocBufferId("p", nz);
            st.pPrevBuf = pe.allocBufferId("p_prev", nz);
            st.pNextBuf = pe.allocBufferId("p_next", nz);
            st.accBuf = pe.allocBufferId("hw_acc", nz);
            std::vector<float> &p = pe.buffer(st.pBuf);
            std::vector<float> &pPrev = pe.buffer(st.pPrevBuf);
            std::vector<float> &pNext = pe.buffer(st.pNextBuf);
            st.interior = comm_->expectedSections(x, y) > 0;
            for (size_t z = 0; z < nz; ++z) {
                int zi = static_cast<int>(z);
                // Boundary PEs carry the p boundary condition in every
                // buffer (value-neutral rotation).
                p[z] = init_(0, x, y, zi);
                pPrev[z] = init_(st.interior ? 1 : 0, x, y, zi);
                pNext[z] = init_(0, x, y, zi);
            }
            registerTasks(x, y);
        }
    }
    comm_->setup();
    // The receive buffer is allocated by the comms library's setup, so
    // its handle resolves only now.
    for (int x = 0; x < sim_.width(); ++x)
        for (int y = 0; y < sim_.height(); ++y)
            state(x, y).recvBuf = sim_.pe(x, y).bufferId("hw_recv");
}

void
HandwrittenSeismic::registerTasks(int x, int y)
{
    wse::Pe &pe = sim_.pe(x, y);
    const fe::SeismicCoefficients sc = fe::seismicCoefficients();
    const int64_t nz = config_.nz;
    const int64_t rz = 4;
    const int64_t interior = nz - 2 * rz;
    const int64_t chunk = comm_->chunkElems();

    PeState &registeredState = state(x, y);

    // for_cond: step < T ? seq : post
    registeredState.forCondTask = pe.registerTask(
        "for_cond", wse::TaskKind::Local,
        [this, x, y](wse::TaskContext &ctx) {
            stepMarks_[static_cast<size_t>(x) * sim_.height() + y]
                .push_back(ctx.startCycle());
            PeState &st = state(x, y);
            ctx.consume(4);
            if (st.step < config_.timesteps)
                pe_seq(ctx, x, y);
            else
                ctx.consume(2); // unblock, return to host
        });

    // Receive task: one activation per landed (direction, distance)
    // section; applies the coefficient and accumulates — twice the task
    // traffic of the generated code's per-chunk callback.
    registeredState.recvTask = pe.registerTask(
        "recv_dir", wse::TaskKind::Local,
        [this, x, y, chunk, sc](wse::TaskContext &ctx) {
            wse::Pe &pe = ctx.pe();
            PeState &st = state(x, y);
            auto [section, offset] = comm_->popCompletedSection(pe);
            const comms::Access &a = comm_->config().accesses[
                static_cast<size_t>(section)];
            float coeff = static_cast<float>(sc.k[a.distance() - 1]);
            std::vector<float> &recv = pe.buffer(st.recvBuf);
            wse::Dsd accD{&pe.buffer(st.accBuf), offset, chunk, 1};
            wse::Dsd secD{&recv, section * chunk, chunk, 1};
            // acc += coeff * section (separate pointer per section).
            wse::fmacs(ctx, accD, wse::DsdOperand::fromDsd(accD),
                       wse::DsdOperand::fromDsd(secD), coeff);
        });

    // done: local compute + time integration, then next step.
    registeredState.doneTask = pe.registerTask(
        "done_dir", wse::TaskKind::Local,
        [this, x, y, nz, rz, interior, sc](wse::TaskContext &ctx) {
            wse::Pe &pe = ctx.pe();
            PeState &st = state(x, y);
            if (st.interior) {
                std::vector<float> &p = pe.buffer(st.pBuf);
                std::vector<float> &pPrev = pe.buffer(st.pPrevBuf);
                std::vector<float> &pNext = pe.buffer(st.pNextBuf);
                std::vector<float> &acc = pe.buffer(st.accBuf);
                wse::Dsd accI{&acc, rz, interior, 1};
                wse::Dsd pI{&p, rz, interior, 1};
                wse::Dsd prevI{&pPrev, rz, interior, 1};
                wse::Dsd nextI{&pNext, rz, interior, 1};
                // z-axis contributions.
                for (int d = 1; d <= 4; ++d) {
                    float c = static_cast<float>(sc.k[d - 1]);
                    wse::fmacs(ctx, accI,
                               wse::DsdOperand::fromDsd(accI),
                               wse::DsdOperand::fromDsd(pI.shifted(d)),
                               c);
                    wse::fmacs(ctx, accI,
                               wse::DsdOperand::fromDsd(accI),
                               wse::DsdOperand::fromDsd(pI.shifted(-d)),
                               c);
                }
                // centre + time integration:
                // p_next = 2p - p_prev + acc + k0 * p
                wse::fmacs(ctx, accI, wse::DsdOperand::fromDsd(accI),
                           wse::DsdOperand::fromDsd(pI),
                           static_cast<float>(sc.k0));
                wse::fmacs(ctx, nextI, wse::DsdOperand::fromDsd(accI),
                           wse::DsdOperand::fromDsd(pI), 2.0f);
                wse::fsubs(ctx, nextI, wse::DsdOperand::fromDsd(nextI),
                           wse::DsdOperand::fromDsd(prevI));
                // z-boundary copy-through.
                wse::Dsd nextLo{&pNext, 0, rz, 1};
                wse::Dsd pLo{&p, 0, rz, 1};
                wse::fmovs(ctx, nextLo, wse::DsdOperand::fromDsd(pLo));
                wse::Dsd nextHi{&pNext, nz - rz, rz, 1};
                wse::Dsd pHi{&p, nz - rz, rz, 1};
                wse::fmovs(ctx, nextHi, wse::DsdOperand::fromDsd(pHi));
            }
            // step++, rotate buffers, loop.
            st.step++;
            wse::BufferId oldPrev = st.pPrevBuf;
            st.pPrevBuf = st.pBuf;
            st.pBuf = st.pNextBuf;
            st.pNextBuf = oldPrev;
            ctx.consume(8);
            ctx.pe().activate(st.forCondTask, ctx.currentCycle());
        });
}

void
HandwrittenSeismic::pe_seq(wse::TaskContext &ctx, int x, int y)
{
    wse::Pe &pe = ctx.pe();
    PeState &st = state(x, y);
    // Zero the accumulator, then start the exchange of the full column.
    std::vector<float> &acc = pe.buffer(st.accBuf);
    wse::Dsd accD{&acc, 0, static_cast<int64_t>(acc.size()), 1};
    wse::fmovs(ctx, accD, wse::DsdOperand::fromScalar(0.0f));
    comm_->exchange(ctx, st.pBuf, st.recvTask, st.doneTask);
}

void
HandwrittenSeismic::launch()
{
    for (int x = 0; x < sim_.width(); ++x)
        for (int y = 0; y < sim_.height(); ++y)
            sim_.pe(x, y).activate(state(x, y).forCondTask, 0);
}

std::vector<float>
HandwrittenSeismic::readP(int x, int y)
{
    return sim_.pe(x, y).buffer(state(x, y).pBuf);
}

const std::vector<wse::Cycles> &
HandwrittenSeismic::stepMarks(int x, int y) const
{
    return stepMarks_[static_cast<size_t>(x) * sim_.height() + y];
}

} // namespace wsc::baselines
