/**
 * @file
 * lower-memref-to-dsd (paper §5.5): generates CSL Data Structure
 * Descriptor definitions on top of the buffer references, so that the
 * compute builtins iterate memory through native hardware support.
 *
 * Exposes materializeDsd(), which resolves a chain of buffer views
 * (csl.load_var, memref.subview, csl_stencil.access) into a
 * csl.get_mem_dsd (+ csl.increment_dsd_offset for dynamic offsets), and
 * the cleanup pass that removes the consumed memref-level view ops.
 */

#ifndef WSC_TRANSFORMS_MEMREF_TO_DSD_H
#define WSC_TRANSFORMS_MEMREF_TO_DSD_H

#include <memory>

#include "ir/builder.h"
#include "ir/pass.h"

namespace wsc::transforms {

/**
 * Emit DSD-construction ops for a memref-typed buffer view at the
 * builder's insertion point. `iterLength` > 0 overrides the iteration
 * count; `wrap` > 0 requests a broadcast DSD whose addressing wraps
 * every `wrap` elements (the one-shot reduction trick).
 */
ir::Value materializeDsd(ir::OpBuilder &b, ir::Value memrefValue,
                         int64_t iterLength = 0, int64_t wrap = 0);

/** Remove view ops left dead after DSD materialization. */
std::unique_ptr<ir::Pass> createMemrefToDsdCleanupPass();

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_MEMREF_TO_DSD_H
