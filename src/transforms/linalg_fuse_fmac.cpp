#include "transforms/linalg_fuse_fmac.h"

#include "dialects/arith.h"
#include "dialects/linalg.h"
#include "dialects/memref.h"
#include "ir/pattern.h"
#include "support/error.h"

namespace wsc::transforms {

namespace {

namespace ar = dialects::arith;
namespace ln = dialects::linalg;
namespace mr = dialects::memref;

/** Is `v` a dense splat constant? Returns its value through `out`. */
bool
isSplatConstant(ir::Value v, double &out)
{
    ir::Operation *def = v.definingOp();
    if (!def || def->opId() != ar::kConstant)
        return false;
    ir::Attribute attr = def->attr(ir::attrs::kValue);
    if (ir::isDenseAttr(attr) && ir::denseAttrValues(attr).size() == 1) {
        out = ir::denseAttrValues(attr)[0];
        return true;
    }
    if (ir::isFloatAttr(attr)) {
        out = ir::floatAttrValue(attr);
        return true;
    }
    return false;
}

/**
 * linalg.add(x, t) -> d where t = linalg.mul(a, c) with splat c and t a
 * single-purpose temporary becomes linalg.fmac(x, a, c) -> d.
 */
bool
fuseMulAdd(ir::Operation *op, ir::OpBuilder &b)
{
    if (op->opId() != ln::kAdd)
        return false;
    for (int ti = 0; ti < 2; ++ti) {
        ir::Value t = op->operand(ti);
        ir::Value x = op->operand(1 - ti);
        ir::Operation *talloc = t.definingOp();
        if (!talloc || talloc->opId() != mr::kAlloc || t.numUses() != 2)
            continue;
        // Find the mul writing t.
        ir::Operation *mul = nullptr;
        for (ir::Operation *user : t.users()) {
            if (user->opId() == ln::kMul && user->operand(2) == t)
                mul = user;
        }
        if (!mul || mul == op)
            continue;
        double coeff = 0.0;
        ir::Value a;
        if (isSplatConstant(mul->operand(1), coeff) &&
            mul->operand(0) != t) {
            a = mul->operand(0);
        } else if (isSplatConstant(mul->operand(0), coeff) &&
                   mul->operand(1) != t) {
            a = mul->operand(1);
        } else {
            continue;
        }
        ir::Value out = op->operand(2);
        b.setInsertionPoint(op);
        ir::Value scalar = ar::createConstantF32(b, coeff);
        ln::createFmac(b, x, a, scalar, out);
        op->erase();
        mul->erase();
        return true;
    }
    return false;
}

/** Remove dead allocs and constants left behind by fusion. */
bool
dce(ir::Operation *op, ir::OpBuilder &)
{
    if (op->numResults() == 0 || op->hasResultUses())
        return false;
    if (op->opId() == mr::kAlloc || op->opId() == ar::kConstant) {
        op->erase();
        return true;
    }
    return false;
}

} // namespace

std::unique_ptr<ir::Pass>
createLinalgFuseFmacPass()
{
    return std::make_unique<ir::FunctionPass>(
        "linalg-fuse-multiply-add", [](ir::Operation *module) {
            std::vector<ir::NamedPattern> patterns = {
                {"fuse-mul-add", fuseMulAdd},
                {"dce", dce},
            };
            ir::applyPatternsGreedily(module, patterns);
        });
}

} // namespace wsc::transforms
