#include "transforms/lower_csl_wrapper.h"

#include "dialects/csl.h"
#include "dialects/csl_wrapper.h"
#include "support/error.h"
#include "transforms/utils.h"

namespace wsc::transforms {

namespace {

namespace cw = dialects::csl_wrapper;
namespace csl = dialects::csl;

void
lowerWrapper(ir::Operation *wrapper)
{
    ir::Context &ctx = wrapper->context();
    auto [width, height] = cw::moduleExtent(wrapper);
    std::vector<cw::Param> params = cw::moduleParams(wrapper);

    ir::OpBuilder b(ctx);
    b.setInsertionPoint(wrapper);

    // --- Layout metaprogram module ---
    ir::Operation *layout = csl::createModule(b, "layout", "layout");
    {
        ir::OpBuilder lb(ctx);
        lb.setInsertionPointToEnd(csl::moduleBody(layout));
        lb.create(csl::kSetRectangle, {}, {},
                  {{"width", ir::getIntAttr(ctx, width)},
                   {"height", ir::getIntAttr(ctx, height)}});
        std::vector<std::pair<std::string, ir::Attribute>> paramDict;
        for (const cw::Param &p : params)
            paramDict.emplace_back(p.name, ir::getIntAttr(ctx, p.value));
        lb.create(csl::kSetTileCode, {}, {},
                  {{"file",
                    ir::getStringAttr(
                        ctx, wrapper->strAttr(ir::attrs::kProgramName))},
                   {"params", ir::getDictAttr(ctx, paramDict)}});
    }

    // --- PE program module ---
    ir::Operation *program = csl::createModule(b, "program", "pe");
    program->setAttr("width", ir::getIntAttr(ctx, width));
    program->setAttr("height", ir::getIntAttr(ctx, height));
    if (ir::Attribute results = wrapper->attr(ir::attrs::kResultFields))
        program->setAttr("result_fields", results);
    {
        ir::OpBuilder pb(ctx);
        pb.setInsertionPointToEnd(csl::moduleBody(program));
        for (const cw::Param &p : params)
            csl::createParam(pb, p.name, ir::getI16Type(ctx), p.value);
        // Move the generated program ops across.
        std::vector<ir::Operation *> ops =
            cw::programBlock(wrapper)->opsVector();
        for (ir::Operation *op : ops)
            op->moveToEnd(csl::moduleBody(program));
    }

    // The layout region's ops die with the wrapper.
    wrapper->walk([](ir::Operation *op) { op->dropAllReferences(); });
    wrapper->dropAllReferences();
    wrapper->erase();
}

} // namespace

std::unique_ptr<ir::Pass>
createLowerCslWrapperPass()
{
    return std::make_unique<ir::FunctionPass>(
        "lower-csl-wrapper", [](ir::Operation *module) {
            for (ir::Operation *wrapper : collectOps(module, cw::kModule))
                lowerWrapper(wrapper);
        });
}

} // namespace wsc::transforms
