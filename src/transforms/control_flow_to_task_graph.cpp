#include "transforms/control_flow_to_task_graph.h"

#include <algorithm>

#include "dialects/arith.h"
#include "dialects/csl.h"
#include "dialects/csl_stencil.h"
#include "dialects/csl_wrapper.h"
#include "dialects/func.h"
#include "dialects/memref.h"
#include "dialects/scf.h"
#include "dialects/stencil.h"
#include "ir/diagnostics.h"
#include "support/error.h"
#include "transforms/lower_apply_to_actors.h"
#include "transforms/utils.h"

namespace wsc::transforms {

namespace {

namespace cs = dialects::csl_stencil;
namespace cw = dialects::csl_wrapper;
namespace csl = dialects::csl;
namespace fn = dialects::func;
namespace ar = dialects::arith;
namespace mr = dialects::memref;
namespace scf = dialects::scf;
namespace st = dialects::stencil;

/** Parsed structure of the kernel function. */
struct KernelStructure
{
    /** Applies before any loop (single-iteration programs). */
    std::vector<ir::Operation *> topApplies;
    /** The timestep loop (or null). */
    ir::Operation *forOp = nullptr;
    /** Applies inside the loop, in order. */
    std::vector<ir::Operation *> loopApplies;
    /** (value stored, field argument index). */
    std::vector<std::pair<ir::Value, unsigned>> stores;
    /** Field buffer name per function argument. */
    std::vector<std::string> fieldNames;
};

int64_t
constantValueOf(ir::Value v)
{
    ir::Operation *def = v.definingOp();
    WSC_ASSERT(def && def->opId() == ar::kConstant,
               "expected a constant loop bound");
    return ir::intAttrValue(def->attr(ir::attrs::kValue));
}

KernelStructure
parseKernel(ir::Operation *kernel)
{
    KernelStructure out;
    ir::Block *body = fn::funcBody(kernel);

    // Field names from the frontend (attribute), else f<i>.
    ir::Type fnType = ir::typeAttrValue(kernel->attr(ir::attrs::kFunctionType));
    size_t numArgs = ir::functionInputs(fnType).size();
    if (ir::Attribute names = kernel->attr(ir::attrs::kArgNames)) {
        for (ir::Attribute a : ir::arrayAttrValue(names))
            out.fieldNames.push_back(ir::stringAttrValue(a));
    }
    while (out.fieldNames.size() < numArgs)
        out.fieldNames.push_back("f" +
                                 std::to_string(out.fieldNames.size()));

    for (ir::Operation *op : body->opsVector()) {
        ir::OpId name = op->opId();
        if (name == st::kLoad || name == ar::kConstant ||
            name == mr::kAlloc || name == fn::kReturn)
            continue;
        if (name == cs::kApply) {
            out.topApplies.push_back(op);
        } else if (name == scf::kFor) {
            WSC_ASSERT(!out.forOp, "expected at most one timestep loop");
            out.forOp = op;
            for (ir::Operation *inner : scf::forBody(op)->opsVector()) {
                if (inner->opId() == cs::kApply)
                    out.loopApplies.push_back(inner);
                else if (inner->opId() != mr::kAlloc &&
                         inner->opId() != ar::kConstant &&
                         inner->opId() != scf::kYield)
                    ir::emitFatal(inner,
                                  "unsupported op inside the timestep "
                                  "loop (expected stencil.apply, "
                                  "memref.alloc, arith.constant or "
                                  "scf.yield)");
            }
        } else if (name == st::kStore) {
            ir::Value field = op->operand(1);
            WSC_ASSERT(field.isBlockArgument(),
                       "stores must target kernel fields");
            out.stores.emplace_back(op->operand(0), field.index());
        } else {
            ir::emitFatal(op, "unsupported op at kernel top level");
        }
    }
    WSC_ASSERT(out.topApplies.empty() || out.loopApplies.empty(),
               "mixing top-level applies with a timestep loop is not "
               "supported");
    return out;
}

/** Element length (column size) of a stencil temp value. */
std::vector<int64_t>
columnShape(ir::Value temp)
{
    ir::Type elem = st::stencilElementTypeOf(temp.type());
    WSC_ASSERT(ir::isTensor(elem), "expected a tensorized temp");
    return ir::shapeOf(elem);
}

void
lowerKernel(ir::Operation *wrapper, ir::Operation *kernel)
{
    ir::Context &ctx = wrapper->context();
    KernelStructure ks = parseKernel(kernel);
    ActorLoweringState state(wrapper);

    // --- Module-level declarations -------------------------------------
    ir::Block *body = fn::funcBody(kernel);

    // Field buffers.
    for (size_t i = 0; i < ks.fieldNames.size(); ++i) {
        ir::Value arg = body->argument(static_cast<unsigned>(i));
        ir::Type elem = st::stencilElementTypeOf(arg.type());
        state.declareBuffer(ks.fieldNames[i], ir::shapeOf(elem));
    }
    // Loads bind temps to field buffers.
    for (ir::Operation *load : collectOps(kernel, st::kLoad)) {
        ir::Value field = load->operand(0);
        WSC_ASSERT(field.isBlockArgument(), "load of a non-field value");
        state.bufOf[load->result().impl()] =
            BufRef{ks.fieldNames[field.index()], false};
    }

    bool hasLoop = ks.forOp != nullptr;
    const std::vector<ir::Operation *> &applies =
        hasLoop ? ks.loopApplies : ks.topApplies;

    // Result buffers (one per apply).
    for (size_t k = 0; k < applies.size(); ++k) {
        std::string outName = "out" + std::to_string(k);
        state.declareBuffer(outName, columnShape(applies[k]->result()));
        if (hasLoop) {
            std::string ptrName = "ptr_out" + std::to_string(k);
            state.declarePtr(ptrName, outName);
            state.bufOf[applies[k]->result().impl()] =
                BufRef{ptrName, true};
        } else {
            state.bufOf[applies[k]->result().impl()] =
                BufRef{outName, false};
        }
    }

    // Loop-carried values become pointer variables.
    std::vector<std::string> slotVars;
    std::vector<std::string> slotInitField;
    if (hasLoop) {
        std::vector<ir::Value> inits = scf::forIterInits(ks.forOp);
        std::vector<ir::Value> iterArgs = scf::forIterArgs(ks.forOp);
        for (size_t i = 0; i < inits.size(); ++i) {
            BufRef initRef = state.bufOf.at(inits[i].impl());
            slotInitField.push_back(initRef.var);
            WSC_ASSERT(!initRef.viaPtr,
                       "loop inits must be direct buffers");
            std::string ptrName = "ptr_iter" + std::to_string(i);
            state.declarePtr(ptrName, initRef.var);
            state.bufOf[iterArgs[i].impl()] = BufRef{ptrName, true};
            // After the loop, the rotated pointer holds the result.
            state.bufOf[ks.forOp->result(static_cast<unsigned>(i))
                            .impl()] = BufRef{ptrName, true};
            slotVars.push_back(ptrName);
        }
        for (size_t k = 0; k < applies.size(); ++k)
            slotVars.push_back("ptr_out" + std::to_string(k));
        state.declareScalar("step", 0);
    }

    // --- Imports and exports -------------------------------------------
    {
        ir::OpBuilder b = state.moduleBuilder();
        csl::createImportModule(b, "<memcpy/memcpy>");
        csl::createImportModule(b, "stencil_comms.csl");
        csl::createExport(b, "f_main", "fn");
        for (const std::string &name : ks.fieldNames)
            csl::createExport(b, name, "var");
    }

    // --- The actors per apply ------------------------------------------
    for (size_t k = 0; k < applies.size(); ++k) {
        std::string continuation;
        if (k + 1 < applies.size())
            continuation = "seq_kernel" + std::to_string(k + 1);
        else
            continuation = hasLoop ? "for_inc0" : "for_post0";
        lowerApplyToActors(state, applies[k], static_cast<int64_t>(k),
                           continuation);
    }

    // Result buffers inherit the initial condition of the field whose
    // rotation slot (or store target) they feed, so that points the
    // stencil never updates keep boundary-condition values exactly as a
    // sequential execution would.
    {
        auto setInitAs = [&](const std::string &bufName,
                             const std::string &fieldName) {
            for (ir::Operation *op :
                 cw::programBlock(wrapper)->opsVector()) {
                if (op->opId() == csl::kVariable &&
                    op->strAttr(ir::attrs::kSymName) == bufName) {
                    op->setAttr("init_as",
                                ir::getStringAttr(ctx, fieldName));
                    return;
                }
            }
        };
        for (size_t k = 0; k < applies.size(); ++k) {
            std::string fieldName;
            if (hasLoop) {
                std::vector<ir::Value> yields =
                    scf::forBody(ks.forOp)->terminator()->operands().vec();
                for (size_t j = 0; j < yields.size(); ++j)
                    if (yields[j] == applies[k]->result())
                        fieldName = slotInitField[j];
            } else {
                for (const auto &[value, fieldIdx] : ks.stores)
                    if (value == applies[k]->result())
                        fieldName = ks.fieldNames[fieldIdx];
            }
            if (!fieldName.empty())
                setInitAs("out" + std::to_string(k), fieldName);
        }
    }

    // --- The control-flow task graph -----------------------------------
    if (hasLoop) {
        int64_t lb = constantValueOf(ks.forOp->operand(0));
        int64_t ub = constantValueOf(ks.forOp->operand(1));
        int64_t step = constantValueOf(ks.forOp->operand(2));
        WSC_ASSERT(lb == 0 && step == 1,
                   "timestep loops must run 0..T step 1");

        // for_cond0: step < T ? seq_kernel0 : for_post0.
        {
            ir::OpBuilder mb = state.moduleBuilder();
            ir::Operation *task = csl::createTask(
                mb, "for_cond0", "local", state.nextTaskId++);
            ir::OpBuilder b(ctx);
            b.setInsertionPointToEnd(csl::calleeBody(task));
            ir::Value stepVal =
                csl::createLoadVar(b, "step", ir::getI32Type(ctx));
            ir::Value limit = ar::createConstantI32(b, ub);
            ir::Value cond = ar::createCmpI(b, "lt", stepVal, limit);
            ir::Operation *ifOp = scf::createIf(b, cond);
            ir::OpBuilder tb(ctx);
            tb.setInsertionPointToEnd(scf::ifThenBlock(ifOp));
            csl::createCall(tb, "seq_kernel0");
            scf::createYield(tb);
            ir::OpBuilder eb(ctx);
            eb.setInsertionPointToEnd(scf::ifElseBlock(ifOp));
            csl::createCall(eb, "for_post0");
            scf::createYield(eb);
            csl::createReturn(b);
        }

        // for_inc0: step += 1; rotate the buffer pointers; re-activate.
        {
            ir::OpBuilder mb = state.moduleBuilder();
            ir::Operation *fnOp = csl::createFunc(mb, "for_inc0");
            ir::OpBuilder b(ctx);
            b.setInsertionPointToEnd(csl::calleeBody(fnOp));
            ir::Value stepVal =
                csl::createLoadVar(b, "step", ir::getI32Type(ctx));
            ir::Value one = ar::createConstantI32(b, 1);
            ir::Value next = ar::createAddI(b, stepVal, one);
            csl::createStoreVar(b, "step", next);

            // Static pointer rotation derived from the yield permutation:
            // iter slot i takes the slot of yield operand i; result slots
            // take the leftovers.
            std::vector<ir::Value> yields =
                scf::forBody(ks.forOp)->terminator()->operands().vec();
            std::vector<ir::Value> iterArgs = scf::forIterArgs(ks.forOp);
            size_t nIter = iterArgs.size();
            auto slotOf = [&](ir::Value v) -> int {
                for (size_t i = 0; i < nIter; ++i)
                    if (v == iterArgs[i])
                        return static_cast<int>(i);
                for (size_t k = 0; k < applies.size(); ++k)
                    if (v == applies[k]->result())
                        return static_cast<int>(nIter + k);
                panic("yield operand is neither an iter arg nor an "
                      "apply result");
            };
            std::vector<int> newSlotSource(slotVars.size(), -1);
            std::vector<bool> used(slotVars.size(), false);
            for (size_t i = 0; i < yields.size(); ++i) {
                int src = slotOf(yields[i]);
                newSlotSource[i] = src;
                used[static_cast<size_t>(src)] = true;
            }
            size_t cursor = 0;
            for (size_t s = nIter; s < slotVars.size(); ++s) {
                while (cursor < used.size() && used[cursor])
                    cursor++;
                WSC_ASSERT(cursor < used.size(),
                           "pointer rotation ran out of buffers");
                newSlotSource[s] = static_cast<int>(cursor);
                used[cursor] = true;
            }
            // Load all current pointers, then store the new assignment.
            // (Boundary PEs also rotate; the layout stage loads every
            // buffer of the rotation pool with the boundary-condition
            // data there, so rotation is value-neutral for them.)
            std::vector<ir::Value> current;
            for (const std::string &var : slotVars) {
                ir::Type pointee = ir::getMemRefType(
                    ctx, state.bufferShape(var), ir::getF32Type(ctx));
                current.push_back(csl::createLoadVar(
                    b, var, csl::getPtrType(ctx, pointee)));
            }
            for (size_t s = 0; s < slotVars.size(); ++s) {
                if (newSlotSource[s] == static_cast<int>(s))
                    continue;
                csl::createStoreVar(
                    b, slotVars[s],
                    current[static_cast<size_t>(newSlotSource[s])]);
            }
            csl::createActivate(b, "for_cond0");
            csl::createReturn(b);
        }
    }

    // for_post0: return control to the host.
    {
        ir::OpBuilder mb = state.moduleBuilder();
        ir::Operation *fnOp = csl::createFunc(mb, "for_post0");
        ir::OpBuilder b(ctx);
        b.setInsertionPointToEnd(csl::calleeBody(fnOp));
        csl::createUnblockCmdStream(b);
        csl::createReturn(b);
    }

    // f_main: the host-callable entry point.
    {
        ir::OpBuilder mb = state.moduleBuilder();
        ir::Operation *fnOp = csl::createFunc(mb, "f_main");
        ir::OpBuilder b(ctx);
        b.setInsertionPointToEnd(csl::calleeBody(fnOp));
        if (hasLoop)
            csl::createActivate(b, "for_cond0");
        else
            csl::createCall(b, "seq_kernel0");
        csl::createReturn(b);
    }

    // --- Result mapping for the host (stencil.store) --------------------
    {
        std::vector<ir::Attribute> entries;
        for (const auto &[value, fieldIdx] : ks.stores) {
            BufRef ref = state.bufOf.at(value.impl());
            entries.push_back(ir::getDictAttr(
                ctx,
                {{"field",
                  ir::getStringAttr(ctx, ks.fieldNames[fieldIdx])},
                 {"var", ir::getStringAttr(ctx, ref.var)},
                 {"via_ptr", ir::getIntAttr(ctx, ref.viaPtr ? 1 : 0)}}));
        }
        wrapper->setAttr("result_fields", ir::getArrayAttr(ctx, entries));
    }

    // The kernel function has been fully absorbed into the task graph.
    kernel->walk([](ir::Operation *op) { op->dropAllReferences(); });
    kernel->dropAllReferences();
    kernel->erase();
}

} // namespace

std::unique_ptr<ir::Pass>
createControlFlowToTaskGraphPass()
{
    return std::make_unique<ir::FunctionPass>(
        "control-flow-to-task-graph", [](ir::Operation *module) {
            for (ir::Operation *wrapper :
                 collectOps(module, cw::kModule)) {
                ir::Operation *kernel = nullptr;
                for (ir::Operation *op :
                     cw::programBlock(wrapper)->opsVector())
                    if (op->opId() == fn::kFunc)
                        kernel = op;
                if (kernel)
                    lowerKernel(wrapper, kernel);
            }
        });
}

} // namespace wsc::transforms
