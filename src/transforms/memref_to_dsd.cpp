#include "transforms/memref_to_dsd.h"

#include <numeric>

#include "dialects/arith.h"
#include "dialects/csl.h"
#include "dialects/csl_stencil.h"
#include "dialects/memref.h"
#include "dialects/stencil.h"
#include "ir/diagnostics.h"
#include "ir/pattern.h"
#include "support/error.h"

namespace wsc::transforms {

namespace {

namespace csl = dialects::csl;
namespace cs = dialects::csl_stencil;
namespace mr = dialects::memref;
namespace ar = dialects::arith;

/** Fully resolved buffer view. */
struct ViewChain
{
    std::string var;
    bool viaPtr = false;
    int64_t offset = 0;
    ir::Value dynOffset; ///< optional runtime offset (chunk index)
    int64_t length = 0;
    /** Total elements of the underlying buffer. */
    int64_t bufLen = 0;
};

int64_t
numElems(ir::Type memrefType)
{
    const std::vector<int64_t> &shape = ir::shapeOf(memrefType);
    return std::accumulate(shape.begin(), shape.end(), int64_t{1},
                           std::multiplies<int64_t>());
}

ViewChain
resolveChain(ir::Value v)
{
    ir::Operation *def = v.definingOp();
    WSC_ASSERT(def, "cannot resolve a block argument to a buffer view");
    if (def->opId() == csl::kLoadVar) {
        ViewChain c;
        c.var = def->strAttr(ir::attrs::kVar);
        c.viaPtr = def->hasAttr(ir::attrs::kViaPtr);
        c.length = numElems(v.type());
        c.bufLen = c.length;
        return c;
    }
    if (def->opId() == mr::kSubview) {
        ViewChain c = resolveChain(def->operand(0));
        c.offset += def->intAttr(ir::attrs::kStaticOffset);
        if (def->numOperands() > 1) {
            WSC_ASSERT(!c.dynOffset, "stacked dynamic offsets");
            c.dynOffset = def->operand(1);
        }
        c.length = def->intAttr(ir::attrs::kStaticSize);
        return c;
    }
    if (def->opId() == cs::kAccess) {
        ViewChain c = resolveChain(def->operand(0));
        int64_t viewLen = numElems(v.type());
        if (def->hasAttr(ir::attrs::kSection)) {
            // Receive-buffer section: contiguous chunk-length slices.
            c.offset += def->intAttr(ir::attrs::kSection) *
                        def->intAttr(ir::attrs::kChunkLen);
            c.length = viewLen;
            return c;
        }
        // z-shifted interior view of a column buffer: the interior of
        // length I sits centred in the column; dz shifts within it.
        std::vector<int64_t> off = dialects::stencil::accessOffset(def);
        WSC_ASSERT(off.size() == 3 && off[0] == 0 && off[1] == 0,
                   "unresolved remote access during DSD lowering");
        int64_t base = (c.length - viewLen) / 2 + off[2];
        WSC_ASSERT(base >= 0 && base + viewLen <= c.length,
                   "z-shifted view exceeds the column");
        c.offset += base;
        c.length = viewLen;
        return c;
    }
    ir::emitFatal(def, "cannot lower memref chain rooted at this op (not "
                       "a csl.load_var / memref.subview / "
                       "csl_stencil.access chain)");
}

} // namespace

ir::Value
materializeDsd(ir::OpBuilder &b, ir::Value memrefValue, int64_t iterLength,
               int64_t wrap)
{
    ViewChain c = resolveChain(memrefValue);
    int64_t length = iterLength > 0 ? iterLength : c.length;
    ir::Value dsd = csl::createGetMemDsd(b, c.var, c.offset, length,
                                         /*stride=*/1, c.viaPtr);
    if (wrap > 0)
        dsd.definingOp()->setAttr("wrap",
                                  ir::getIntAttr(b.context(), wrap));
    if (c.dynOffset)
        dsd = csl::createIncrementDsdOffset(b, dsd, c.dynOffset);
    return dsd;
}

std::unique_ptr<ir::Pass>
createMemrefToDsdCleanupPass()
{
    return std::make_unique<ir::FunctionPass>(
        "lower-memref-to-dsd-cleanup", [](ir::Operation *module) {
            std::vector<ir::NamedPattern> patterns = {
                {"dce-views",
                 [](ir::Operation *op, ir::OpBuilder &) {
                     ir::OpId n = op->opId();
                     bool view = n == mr::kSubview ||
                                 n == cs::kAccess ||
                                 n == csl::kLoadVar ||
                                 n == ar::kConstant;
                     if (!view || op->hasResultUses())
                         return false;
                     op->erase();
                     return true;
                 }},
            };
            ir::applyPatternsGreedily(module, patterns);
        });
}

} // namespace wsc::transforms
