/**
 * @file
 * varith passes (paper §5.7):
 *  - arith-to-varith: collapse trees of arith.addf (resp. mulf) into a
 *    single variadic varith op, simplifying later splitting of the
 *    computation between remotely- and locally-held data;
 *  - varith-fuse-repeated-operands: rewrite k>=2 identical addends into a
 *    multiplication by k (three DSD additions become one multiplication
 *    in the Acoustic kernel);
 *  - varith-to-arith: expand leftover varith ops back into binary chains
 *    (used by lowerings that want binary form).
 */

#ifndef WSC_TRANSFORMS_VARITH_TRANSFORMS_H
#define WSC_TRANSFORMS_VARITH_TRANSFORMS_H

#include <memory>

#include "ir/pass.h"

namespace wsc::transforms {

std::unique_ptr<ir::Pass> createArithToVarithPass();
std::unique_ptr<ir::Pass> createVarithFuseRepeatedOperandsPass();
std::unique_ptr<ir::Pass> createVarithToArithPass();

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_VARITH_TRANSFORMS_H
