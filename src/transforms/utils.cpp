#include "transforms/utils.h"

#include "support/error.h"

namespace wsc::transforms {

std::vector<ir::Operation *>
collectOps(ir::Operation *root, ir::OpId id)
{
    std::vector<ir::Operation *> out;
    root->walk([&](ir::Operation *op) {
        if (op != root && op->is(id))
            out.push_back(op);
    });
    return out;
}

ir::Operation *
findOp(ir::Operation *root, ir::OpId id)
{
    std::vector<ir::Operation *> ops = collectOps(root, id);
    return ops.empty() ? nullptr : ops.front();
}

ir::Value
mapValue(const std::unordered_map<ir::ValueImpl *, ir::Value> &mapping, ir::Value v)
{
    auto it = mapping.find(v.impl());
    return it == mapping.end() ? v : it->second;
}

ir::Operation *
cloneOp(ir::OpBuilder &b, ir::Operation *op,
        std::unordered_map<ir::ValueImpl *, ir::Value> &mapping)
{
    WSC_ASSERT(op->numRegions() == 0,
               "cloneOp does not support regions (op " << op->name()
                                                       << ")");
    std::vector<ir::Value> operands;
    for (ir::Value v : op->operands())
        operands.push_back(mapValue(mapping, v));
    std::vector<ir::Type> resultTypes;
    for (ir::Value r : op->results())
        resultTypes.push_back(r.type());
    ir::Operation *clone = b.createInterned(op->opId(), operands,
                                            resultTypes, op->attrs());
    for (unsigned i = 0; i < op->numResults(); ++i)
        mapping[op->result(i).impl()] = clone->result(i);
    return clone;
}

std::vector<ir::Value>
inlineBlockBody(ir::OpBuilder &b, ir::Block *source,
                std::unordered_map<ir::ValueImpl *, ir::Value> &mapping)
{
    std::vector<ir::Operation *> ops = source->opsVector();
    WSC_ASSERT(!ops.empty(), "inlining an empty block");
    for (size_t i = 0; i + 1 < ops.size(); ++i)
        cloneOp(b, ops[i], mapping);
    std::vector<ir::Value> results;
    for (ir::Value v : ops.back()->operands())
        results.push_back(mapValue(mapping, v));
    return results;
}

} // namespace wsc::transforms
