#include "transforms/distribute_stencil.h"

#include <map>

#include <set>

#include "dialects/dmp.h"
#include "dialects/stencil.h"
#include "ir/diagnostics.h"
#include "support/error.h"
#include "transforms/utils.h"

namespace wsc::transforms {

namespace {

namespace st = dialects::stencil;
namespace dmp = dialects::dmp;

void
distributeApply(ir::Operation *apply)
{
    ir::Block *body = st::applyBody(apply);

    // Remote access offsets per operand index.
    std::map<unsigned, std::set<std::pair<int64_t, int64_t>>> remote;
    for (ir::Operation *op : collectOps(apply, st::kAccess)) {
        ir::Value source = op->operand(0);
        if (!source.isBlockArgument() || source.ownerBlock() != body)
            continue;
        std::vector<int64_t> offset = st::accessOffset(op);
        WSC_ASSERT(offset.size() == 3,
                   "distribute-stencil expects 3-D accesses");
        int64_t dx = offset[0];
        int64_t dy = offset[1];
        int64_t dz = offset[2];
        if (dx == 0 && dy == 0)
            continue; // Local column access.
        if (dx != 0 && dy != 0)
            ir::emitFatal(op, "box-shaped stencils (diagonal accesses) "
                              "are not supported by the communication "
                              "library");
        if (dz != 0)
            ir::emitFatal(op, "remote accesses must not have a z offset "
                              "(star-shaped stencils only)");
        remote[source.index()].insert({dx, dy});
    }
    if (remote.empty())
        return;

    // Grid topology from the first operand's (x, y) bounds.
    st::Bounds bounds = st::boundsOf(apply->operand(0).type());
    WSC_ASSERT(bounds.rank() == 3, "expected 3-D stencil bounds");
    int64_t nx = bounds.size(0);
    int64_t ny = bounds.size(1);

    ir::OpBuilder b(apply->context());
    b.setInsertionPoint(apply);
    for (const auto &[operandIdx, offsets] : remote) {
        std::vector<dmp::Exchange> swaps;
        for (const auto &[dx, dy] : offsets)
            swaps.push_back(
                dmp::Exchange{dx, dy, std::max(std::abs(dx),
                                               std::abs(dy))});
        ir::Value swapped =
            dmp::createSwap(b, apply->operand(operandIdx), swaps, nx, ny);
        apply->setOperand(operandIdx, swapped);
    }
}

} // namespace

std::unique_ptr<ir::Pass>
createDistributeStencilPass()
{
    return std::make_unique<ir::FunctionPass>(
        "distribute-stencil", [](ir::Operation *module) {
            for (ir::Operation *apply : collectOps(module, st::kApply))
                distributeApply(apply);
        });
}

} // namespace wsc::transforms
