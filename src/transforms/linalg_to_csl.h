/**
 * @file
 * lower-linalg-to-csl (paper §5.5): lowers linalg DPS compute ops to
 * CSL's high-throughput DSD arithmetic builtins (@fadds, @fsubs, @fmuls,
 * @fmovs, @fmacs), rather than generating element loops.
 *
 * Includes the §5.7 one-shot reduction: when the same reduction function
 * applies across the entire stencil shape (a run of accumulating adds
 * over every receive-buffer section), the accumulator DSD is broadcast
 * with a virtual wrap dimension matching the communication buffer and
 * the whole buffer is reduced in a single builtin call. Heterogeneous
 * per-section processing falls back to individual builtin calls.
 */

#ifndef WSC_TRANSFORMS_LINALG_TO_CSL_H
#define WSC_TRANSFORMS_LINALG_TO_CSL_H

#include <memory>

#include "ir/pass.h"

namespace wsc::transforms {

struct LinalgToCslOptions
{
    /** Disable the one-shot broadcast reduction (ablation). */
    bool disableOneShotReduction = false;
};

std::unique_ptr<ir::Pass> createLinalgToCslPass(
    LinalgToCslOptions options = {});

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_LINALG_TO_CSL_H
