/**
 * @file
 * Group 4a (paper §5.4): lowering csl_stencil.apply to the actor
 * execution model. Each apply's remote-data and local-data sub-regions
 * become software actors (CSL local tasks): the receive-chunk region is
 * activated each time a chunk of remote data completes, the
 * done-exchange region once when the whole exchange has finished; the
 * continuation of the program is invoked from the latter.
 *
 * This header exposes the shared lowering state and per-apply helpers
 * used by the control-flow-to-task-graph pass (Group 4b), which owns the
 * overall program structure.
 */

#ifndef WSC_TRANSFORMS_LOWER_APPLY_TO_ACTORS_H
#define WSC_TRANSFORMS_LOWER_APPLY_TO_ACTORS_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/builder.h"
#include "ir/operation.h"

namespace wsc::transforms {

/** A reference to a module-level buffer, possibly through a pointer
 *  variable (double/triple-buffer rotation). */
struct BufRef
{
    std::string var;
    bool viaPtr = false;
};

/** Shared state of the group-4 lowering of one csl_wrapper.module. */
class ActorLoweringState
{
  public:
    explicit ActorLoweringState(ir::Operation *wrapper);

    ir::Context &ctx() const;
    ir::Operation *wrapper() const { return wrapper_; }
    ir::Block *programBlock() const;

    /// @name Module-level declarations
    /// @{
    /**
     * Declare an f32 buffer variable of the given shape. `paddedElems`
     * (when larger than the shape) over-allocates the underlying buffer
     * while views keep the logical shape — used for accumulators whose
     * final chunk is shorter than the chunk stride.
     */
    void declareBuffer(const std::string &name,
                       const std::vector<int64_t> &shape,
                       bool commsOwned = false, int64_t paddedElems = 0);
    /** Declare a pointer variable initialized to point at a buffer. */
    void declarePtr(const std::string &name, const std::string &target);
    /** Declare an integer scalar variable. */
    void declareScalar(const std::string &name, int64_t init);
    /** Shape of a declared buffer (pointer variables resolve to their
     *  initial target's shape). */
    const std::vector<int64_t> &bufferShape(const std::string &name) const;
    /// @}

    /** Builder appending ops at the end of the program block. */
    ir::OpBuilder moduleBuilder();

    /** Load a buffer reference inside a function/task body. */
    ir::Value loadBufRef(ir::OpBuilder &b, const BufRef &ref);

    /** Value-to-buffer assignment built by the structural pass
     *  (lookup-only: keyed by dense value identity, never iterated). */
    std::unordered_map<ir::ValueImpl *, BufRef> bufOf;

    /** Next free local-task id. */
    int64_t nextTaskId = 0;
    /** Next free scratch-buffer id (unique across all tasks). */
    int64_t nextScratchId = 0;

  private:
    ir::Operation *wrapper_;
    std::unordered_map<std::string, std::vector<int64_t>> bufferShapes_;
    std::unordered_map<std::string, std::string> ptrTargets_;
};

/**
 * Lower one csl_stencil.apply into its actors. Creates (for applies with
 * remote exchanges):
 *   csl.func seq_kernel<k>   — zeroes the accumulator, starts the
 *                              asynchronous exchange, returns;
 *   csl.task recv_cb<k>      — the receive-chunk software actor;
 *   csl.task done_cb<k>      — the done-exchange software actor, calling
 *                              `continuation` at its end.
 * Applies without remote data lower to a single synchronous seq_kernel.
 */
void lowerApplyToActors(ActorLoweringState &state, ir::Operation *apply,
                        int64_t index, const std::string &continuation);

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_LOWER_APPLY_TO_ACTORS_H
