#include "transforms/bufferize.h"

#include "dialects/arith.h"
#include "dialects/csl_stencil.h"
#include "dialects/memref.h"
#include "dialects/stencil.h"
#include "dialects/tensor.h"
#include "support/error.h"
#include "transforms/utils.h"

namespace wsc::transforms {

namespace {

namespace cs = dialects::csl_stencil;
namespace ar = dialects::arith;
namespace mr = dialects::memref;
namespace tn = dialects::tensor;

ir::Type
toMemRef(ir::Context &ctx, ir::Type t)
{
    if (!ir::isTensor(t))
        return t;
    return ir::getMemRefType(ctx, ir::shapeOf(t), ir::elementTypeOf(t));
}

/** Retype all tensor values in a block (args and results) to memrefs. */
void
bufferizeBlock(ir::Block *block)
{
    ir::Context &ctx = block->parentOp()->context();
    for (unsigned i = 0; i < block->numArguments(); ++i) {
        ir::Value arg = block->argument(i);
        arg.setType(toMemRef(ctx, arg.type()));
    }
    for (ir::Operation *op : block->opsVector()) {
        if (op->opId() == ar::kConstant) {
            ir::Attribute v = op->attr(ir::attrs::kValue);
            if (ir::isDenseAttr(v) && ir::isTensor(ir::attrType(v))) {
                op->setAttr("value",
                            ir::getDenseAttr(ctx,
                                             toMemRef(ctx,
                                                      ir::attrType(v)),
                                             ir::denseAttrValues(v)));
            }
        }
        for (ir::Value r : op->results())
            r.setType(toMemRef(ctx, r.type()));
    }
}

/** Rewrite tensor.insert_slice into a subview + copy pair. */
void
lowerInsertSlice(ir::Operation *insert)
{
    ir::OpBuilder b(insert->context());
    b.setInsertionPoint(insert);
    ir::Value source = insert->operand(0);
    ir::Value dest = insert->operand(1);
    ir::Value offset = insert->operand(2);
    int64_t size = insert->intAttr(ir::attrs::kStaticSize);
    ir::Value sub = mr::createSubview(b, dest, 0, size, offset);
    mr::createCopy(b, source, sub);
    ir::replaceOp(insert, {dest});
}

void
bufferizeApply(ir::Operation *apply)
{
    ir::Context &ctx = apply->context();

    // Accumulator init: tensor.empty -> memref.alloc.
    ir::Value acc = apply->operand(1);
    ir::Operation *accDef = acc.definingOp();
    if (accDef && accDef->opId() == tn::kEmpty) {
        ir::OpBuilder b(ctx);
        b.setInsertionPoint(accDef);
        ir::Value alloc =
            mr::createAlloc(b, toMemRef(ctx, acc.type()));
        acc.replaceAllUsesWith(alloc);
        ir::eraseOp(accDef);
    } else {
        acc.setType(toMemRef(ctx, acc.type()));
    }

    bufferizeBlock(cs::applyRecvBlock(apply));
    bufferizeBlock(cs::applyDoneBlock(apply));

    for (ir::Operation *op : collectOps(apply, tn::kInsertSlice))
        lowerInsertSlice(op);
}

} // namespace

std::unique_ptr<ir::Pass>
createBufferizePass()
{
    return std::make_unique<ir::FunctionPass>(
        "csl-stencil-bufferize", [](ir::Operation *module) {
            for (ir::Operation *apply : collectOps(module, cs::kApply))
                bufferizeApply(apply);
        });
}

} // namespace wsc::transforms
