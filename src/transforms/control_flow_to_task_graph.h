/**
 * @file
 * Group 4b (paper §5.4): converting the top-level control flow enclosing
 * csl_stencil.apply operations into a control-flow task graph of software
 * actors — callable zero-parameter functions and local tasks.
 *
 * A timestep scf.for loop becomes the Figure-1 structure:
 *
 *   f_main            — host-callable entry, activates for_cond0
 *   for_cond0 (task)  — step < timesteps ? seq_kernel0 : for_post0
 *   seq_kernel<k>     — one per apply; starts the async exchange
 *   receive_chunk_cb<k>, done_exchange_cb<k> — per-apply actors (4a)
 *   for_inc0          — step += 1, buffer-pointer rotation, re-activate
 *   for_post0         — returns control to the host (unblock_cmd_stream)
 *
 * Loop-carried stencil temporaries become module-level buffers accessed
 * through pointer variables; the scf.yield permutation compiles into a
 * static pointer rotation in for_inc0 (double/triple buffering without
 * copies). Successive applies without a loop chain through their done
 * callbacks (the continuation-passing rewrite the paper's §2.1 calls the
 * continuation complexity problem).
 */

#ifndef WSC_TRANSFORMS_CONTROL_FLOW_TO_TASK_GRAPH_H
#define WSC_TRANSFORMS_CONTROL_FLOW_TO_TASK_GRAPH_H

#include <memory>

#include "ir/pass.h"

namespace wsc::transforms {

std::unique_ptr<ir::Pass> createControlFlowToTaskGraphPass();

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_CONTROL_FLOW_TO_TASK_GRAPH_H
