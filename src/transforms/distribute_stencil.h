/**
 * @file
 * distribute-stencil (paper §5.1, first transformation of Group 1):
 * decomposes the stencil across the WSE's two-dimensional PE grid and
 * makes remote data dependencies explicit by inserting dmp.swap ops
 * before each stencil.apply. Reuses the abstract decomposition logic of
 * the MPI-oriented pass from Bisbas et al.
 *
 * The decomposition assigns one column of z values per PE, so any access
 * with a non-zero (x, y) offset is a remote dependency; star-shaped
 * stencils (at most one non-zero axis per access, z offsets local-only)
 * are required, matching the communication library's capability.
 */

#ifndef WSC_TRANSFORMS_DISTRIBUTE_STENCIL_H
#define WSC_TRANSFORMS_DISTRIBUTE_STENCIL_H

#include <memory>

#include "ir/pass.h"

namespace wsc::transforms {

std::unique_ptr<ir::Pass> createDistributeStencilPass();

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_DISTRIBUTE_STENCIL_H
