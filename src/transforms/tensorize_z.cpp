#include "transforms/tensorize_z.h"

#include <algorithm>

#include "dialects/arith.h"
#include "dialects/func.h"
#include "dialects/stencil.h"
#include "dialects/varith.h"
#include "ir/diagnostics.h"
#include "support/error.h"
#include "transforms/utils.h"

namespace wsc::transforms {

namespace {

namespace st = dialects::stencil;
namespace ar = dialects::arith;
namespace va = dialects::varith;

/** Convert a 3-D stencil field/temp type to its 2-D tensorized form. */
ir::Type
tensorize3DType(ir::Context &ctx, ir::Type t)
{
    if (!st::isFieldType(t) && !st::isTempType(t))
        return t;
    st::Bounds bounds = st::boundsOf(t);
    if (bounds.rank() != 3)
        return t;
    ir::Type elem = st::stencilElementTypeOf(t);
    WSC_ASSERT(ir::isFloat(elem), "tensorize-z expects scalar elements");
    int64_t z = bounds.size(2);
    ir::Type column = ir::getTensorType(ctx, {z}, elem);
    st::Bounds bounds2{{bounds.lb[0], bounds.lb[1]},
                       {bounds.ub[0], bounds.ub[1]}};
    return st::isFieldType(t) ? st::getFieldType(ctx, bounds2, column)
                              : st::getTempType(ctx, bounds2, column);
}

/** Tensorize the inside of one apply. Returns the z radius rz. */
void
tensorizeApplyBody(ir::Operation *apply)
{
    ir::Context &ctx = apply->context();
    ir::Block *body = st::applyBody(apply);

    // Full column length from the first operand.
    ir::Type tempType = apply->operand(0).type();
    ir::Type column = st::stencilElementTypeOf(tempType);
    WSC_ASSERT(ir::isTensor(column),
               "tensorize-z: operands must be tensorized first");
    int64_t z = ir::shapeOf(column)[0];

    // rz = max |dz| over the body accesses.
    int64_t rz = 0;
    for (ir::Operation *op : collectOps(apply, st::kAccess)) {
        std::vector<int64_t> offset = st::accessOffset(op);
        WSC_ASSERT(offset.size() == 3, "expected 3-D access offsets");
        rz = std::max(rz, std::abs(offset[2]));
    }
    int64_t interior = z - 2 * rz;
    WSC_ASSERT(interior > 0, "z radius leaves no interior");
    ir::Type interiorType =
        ir::getTensorType(ctx, {interior}, ir::getF32Type(ctx));

    apply->setAttr("z_dim", ir::getIntAttr(ctx, z));
    apply->setAttr("z_offset", ir::getIntAttr(ctx, rz));

    // Body block arguments take the (already converted) operand types.
    for (unsigned i = 0; i < apply->numOperands(); ++i)
        body->argument(i).setType(apply->operand(i).type());

    for (ir::Operation *op : body->opsVector()) {
        if (op->opId() == st::kAccess) {
            op->result().setType(interiorType);
        } else if (op->opId() == ar::kConstant) {
            ir::Attribute v = op->attr(ir::attrs::kValue);
            WSC_ASSERT(ir::isFloatAttr(v),
                       "unexpected constant in apply body");
            op->setAttr("value",
                        ir::getDenseAttr(ctx, interiorType,
                                         {ir::floatAttrValue(v)}));
            op->result().setType(interiorType);
        } else if (ar::isBinaryFloatOp(op) || op->opId() == va::kAdd ||
                   op->opId() == va::kMul) {
            op->result().setType(interiorType);
        } else if (op->opId() == st::kReturn) {
            // Nothing to change.
        } else {
            ir::emitFatal(op, "unsupported op in apply body");
        }
    }
}

} // namespace

std::unique_ptr<ir::Pass>
createTensorizeZPass()
{
    return std::make_unique<ir::FunctionPass>(
        "tensorize-z", [](ir::Operation *module) {
            ir::Context &ctx = module->context();
            // First rewrite all structural stencil types in place: block
            // arguments and op results anywhere under the module.
            module->walk([&](ir::Operation *op) {
                for (unsigned r = 0; r < op->numRegions(); ++r)
                    for (ir::Block *block : op->region(r).blocksVector())
                        for (unsigned i = 0; i < block->numArguments();
                             ++i) {
                            ir::Value arg = block->argument(i);
                            arg.setType(
                                tensorize3DType(ctx, arg.type()));
                        }
                for (ir::Value result : op->results())
                    result.setType(tensorize3DType(ctx, result.type()));
                // Function signatures carry types in an attribute.
                if (op->opId() == dialects::func::kFunc) {
                    ir::Type fn =
                        ir::typeAttrValue(op->attr(ir::attrs::kFunctionType));
                    std::vector<ir::Type> inputs;
                    for (ir::Type t : ir::functionInputs(fn))
                        inputs.push_back(tensorize3DType(ctx, t));
                    std::vector<ir::Type> results;
                    for (ir::Type t : ir::functionResults(fn))
                        results.push_back(tensorize3DType(ctx, t));
                    op->setAttr("function_type",
                                ir::getTypeAttr(
                                    ctx, ir::getFunctionType(ctx, inputs,
                                                             results)));
                }
            });
            // Then rewrite the apply bodies to interior-length tensors.
            for (ir::Operation *apply : collectOps(module, st::kApply))
                tensorizeApplyBody(apply);
        });
}

} // namespace wsc::transforms
