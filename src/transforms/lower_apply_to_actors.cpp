#include "transforms/lower_apply_to_actors.h"

#include <algorithm>
#include <unordered_map>

#include "dialects/arith.h"
#include "dialects/csl.h"
#include "dialects/csl_stencil.h"
#include "dialects/csl_wrapper.h"
#include "dialects/linalg.h"
#include "dialects/memref.h"
#include "dialects/scf.h"
#include "dialects/stencil.h"
#include "support/error.h"
#include "transforms/utils.h"

namespace wsc::transforms {

namespace {

namespace cs = dialects::csl_stencil;
namespace cw = dialects::csl_wrapper;
namespace csl = dialects::csl;
namespace ar = dialects::arith;
namespace ln = dialects::linalg;
namespace mr = dialects::memref;
namespace scf = dialects::scf;

} // namespace

ActorLoweringState::ActorLoweringState(ir::Operation *wrapper)
    : wrapper_(wrapper)
{
    WSC_ASSERT(wrapper->opId() == cw::kModule,
               "ActorLoweringState requires a csl_wrapper.module");
}

ir::Context &
ActorLoweringState::ctx() const
{
    return wrapper_->context();
}

ir::Block *
ActorLoweringState::programBlock() const
{
    return cw::programBlock(wrapper_);
}

void
ActorLoweringState::declareBuffer(const std::string &name,
                                  const std::vector<int64_t> &shape,
                                  bool commsOwned, int64_t paddedElems)
{
    WSC_ASSERT(!bufferShapes_.count(name),
               "buffer `" << name << "` declared twice");
    bufferShapes_[name] = shape;
    int64_t elems = 1;
    for (int64_t d : shape)
        elems *= d;
    // The variable's type governs the allocation size; views through
    // loadBufRef use the logical shape.
    std::vector<int64_t> allocShape =
        paddedElems > elems ? std::vector<int64_t>{paddedElems} : shape;
    ir::OpBuilder b = moduleBuilder();
    ir::Type type =
        ir::getMemRefType(ctx(), allocShape, ir::getF32Type(ctx()));
    ir::Operation *var = csl::createVariable(b, name, type);
    if (commsOwned)
        var->setAttr("comms_owned", ir::getUnitAttr(ctx()));
}

void
ActorLoweringState::declarePtr(const std::string &name,
                               const std::string &target)
{
    WSC_ASSERT(bufferShapes_.count(target),
               "pointer target `" << target << "` unknown");
    ptrTargets_[name] = target;
    ir::OpBuilder b = moduleBuilder();
    ir::Type pointee = ir::getMemRefType(ctx(), bufferShapes_.at(target),
                                         ir::getF32Type(ctx()));
    csl::createVariable(b, name, csl::getPtrType(ctx(), pointee),
                        ir::getStringAttr(ctx(), target));
}

void
ActorLoweringState::declareScalar(const std::string &name, int64_t init)
{
    ir::OpBuilder b = moduleBuilder();
    csl::createVariable(b, name, ir::getI32Type(ctx()),
                        ir::getIntAttr(ctx(), init));
}

const std::vector<int64_t> &
ActorLoweringState::bufferShape(const std::string &name) const
{
    auto it = bufferShapes_.find(name);
    if (it != bufferShapes_.end())
        return it->second;
    auto pt = ptrTargets_.find(name);
    WSC_ASSERT(pt != ptrTargets_.end(), "unknown buffer `" << name << "`");
    return bufferShapes_.at(pt->second);
}

ir::OpBuilder
ActorLoweringState::moduleBuilder()
{
    ir::OpBuilder b(ctx());
    b.setInsertionPointToEnd(programBlock());
    return b;
}

ir::Value
ActorLoweringState::loadBufRef(ir::OpBuilder &b, const BufRef &ref)
{
    ir::Type type = ir::getMemRefType(ctx(), bufferShape(ref.var),
                                      ir::getF32Type(ctx()));
    ir::Value v = csl::createLoadVar(b, ref.var, type);
    if (ref.viaPtr)
        v.definingOp()->setAttr("via_ptr", ir::getUnitAttr(ctx()));
    return v;
}

namespace {

/**
 * Clone one apply region into a task body.
 * `argBindings` maps the region block arguments to values created in the
 * task prologue (load_var results, the task argument, ...).
 */
void
cloneRegionInto(ActorLoweringState &state, ir::Block *source,
                ir::OpBuilder &b,
                std::unordered_map<ir::ValueImpl *, ir::Value> argBindings,
                ir::Operation *apply, int64_t index,
                const BufRef &resultRef)
{
    std::vector<dialects::dmp::Exchange> exchanges =
        cs::applyExchanges(apply);
    int64_t chunkLen = 0;
    {
        // Chunk length from the receive block's buffer argument shape.
        ir::Type bufType = cs::applyRecvBlock(apply)->argument(0).type();
        const std::vector<int64_t> &shape = ir::shapeOf(bufType);
        chunkLen = shape.size() == 2 ? shape[1] : 0;
    }

    std::unordered_map<ir::ValueImpl *, ir::Value> mapping = std::move(argBindings);
    for (ir::Operation *op : source->opsVector()) {
        if (op->opId() == cs::kYield)
            continue; // The task body simply ends.
        if (op->opId() == mr::kAlloc) {
            // Static allocation: every buffer becomes a module variable.
            if (op->hasAttr(ir::attrs::kResultBuffer)) {
                // The result buffer is a full column; the computed
                // interior sits centred within it.
                ir::Value out = state.loadBufRef(b, resultRef);
                int64_t outLen = ir::shapeOf(out.type())[0];
                int64_t resLen = ir::shapeOf(op->result().type())[0];
                ir::Value view = out;
                if (outLen != resLen) {
                    WSC_ASSERT((outLen - resLen) % 2 == 0,
                               "result interior not centred");
                    view = mr::createSubview(b, out, (outLen - resLen) / 2,
                                             resLen);
                }
                mapping[op->result().impl()] = view;
                continue;
            }
            std::string name = "scratch" + std::to_string(index) + "_" +
                               std::to_string(state.nextScratchId++);
            state.declareBuffer(name, ir::shapeOf(op->result().type()));
            mapping[op->result().impl()] =
                state.loadBufRef(b, BufRef{name, false});
            continue;
        }
        if (op->opId() == cs::kAccess) {
            ir::Operation *clone = cloneOp(b, op, mapping);
            // Annotate receive-buffer accesses with their section index
            // so the DSD lowering can address the landing area.
            std::vector<int64_t> off =
                dialects::stencil::accessOffset(clone);
            if (off.size() == 2) {
                for (size_t s = 0; s < exchanges.size(); ++s) {
                    if (exchanges[s].dx == off[0] &&
                        exchanges[s].dy == off[1]) {
                        clone->setAttr(
                            "section",
                            ir::getIntAttr(state.ctx(),
                                           static_cast<int64_t>(s)));
                        clone->setAttr("chunk_len",
                                       ir::getIntAttr(state.ctx(),
                                                      chunkLen));
                        break;
                    }
                }
            }
            continue;
        }
        cloneOp(b, op, mapping);
    }
}

/**
 * Open a `if (is_interior<k> != 0)` guard: the local-data compute only
 * runs on PEs whose every remote source exists (the role the layout
 * stage bakes in as a comptime parameter; boundary PEs only feed their
 * neighbours). Returns a builder positioned inside the guard.
 */
ir::OpBuilder
emitRoleGuard(ActorLoweringState &state, ir::OpBuilder &b,
              const std::string &roleVar)
{
    ir::Context &ctx = state.ctx();
    ir::Value role = csl::createLoadVar(b, roleVar, ir::getI32Type(ctx));
    ir::Value zero = ar::createConstantI32(b, 0);
    ir::Value cond = ar::createCmpI(b, "ne", role, zero);
    ir::Operation *guard = scf::createIf(b, cond);
    ir::OpBuilder eb(ctx);
    eb.setInsertionPointToEnd(scf::ifElseBlock(guard));
    scf::createYield(eb);
    ir::OpBuilder gb(ctx);
    gb.setInsertionPointToEnd(scf::ifThenBlock(guard));
    return gb;
}

/**
 * Copy the z-boundary layers of the input column into the result column.
 * With buffer rotation the result buffer becomes the next step's input,
 * so its z-boundary must carry the (Dirichlet) boundary values forward;
 * the computed interior only covers [rz, z - rz).
 */
void
emitBoundaryCopyThrough(ActorLoweringState &state, ir::OpBuilder &b,
                        const BufRef &inputRef, const BufRef &resultRef,
                        int64_t rz)
{
    if (rz <= 0)
        return;
    const std::vector<int64_t> &inShape = state.bufferShape(inputRef.var);
    const std::vector<int64_t> &outShape =
        state.bufferShape(resultRef.var);
    if (inShape != outShape)
        return; // Interior-length partial results have no boundary.
    int64_t z = inShape[0];
    ir::Value in = state.loadBufRef(b, inputRef);
    ir::Value out = state.loadBufRef(b, resultRef);
    ln::createCopy(b, mr::createSubview(b, in, 0, rz),
                   mr::createSubview(b, out, 0, rz));
    ln::createCopy(b, mr::createSubview(b, in, z - rz, rz),
                   mr::createSubview(b, out, z - rz, rz));
}

} // namespace

void
lowerApplyToActors(ActorLoweringState &state, ir::Operation *apply,
                   int64_t index, const std::string &continuation)
{
    ir::Context &ctx = state.ctx();
    std::vector<dialects::dmp::Exchange> exchanges =
        cs::applyExchanges(apply);
    int64_t sections = static_cast<int64_t>(exchanges.size());
    std::string suffix = std::to_string(index);
    std::string accName = "acc" + suffix;
    std::string recvName = "recv_buffer" + suffix;

    ir::Block *recvBlock = cs::applyRecvBlock(apply);
    ir::Block *doneBlock = cs::applyDoneBlock(apply);
    int64_t interior =
        ir::shapeOf(recvBlock->argument(2).type())[0];
    int64_t zDim = apply->intAttr(ir::attrs::kZDim);
    int64_t rz = apply->intAttr(ir::attrs::kZOffset);
    int64_t numChunks = cs::applyNumChunks(apply);
    int64_t chunkLen = (interior + numChunks - 1) / numChunks;

    BufRef inputRef = state.bufOf.at(apply->operand(0).impl());
    BufRef resultRef = state.bufOf.at(apply->result().impl());

    // The accumulator is padded to a whole number of chunks so that a
    // short final chunk's landing never overruns it.
    state.declareBuffer(accName, {interior}, /*commsOwned=*/false,
                        /*paddedElems=*/numChunks * chunkLen);
    if (sections > 0) {
        state.declareBuffer(recvName, {sections, chunkLen},
                            /*commsOwned=*/true);
    }
    // Per-apply compile-time role flag (see emitRoleGuard).
    std::string roleVar = "is_interior" + suffix;
    {
        ir::OpBuilder mb = state.moduleBuilder();
        ir::Operation *var = csl::createVariable(
            mb, roleVar, ir::getI32Type(ctx), ir::getIntAttr(ctx, 1));
        if (sections > 0)
            var->setAttr("comptime_role_site",
                         ir::getStringAttr(ctx,
                                           "receive_chunk_cb" + suffix));
    }

    // --- seq_kernel<index> ---
    {
        ir::OpBuilder mb = state.moduleBuilder();
        ir::Operation *fn =
            csl::createFunc(mb, "seq_kernel" + suffix);
        ir::OpBuilder b(ctx);
        b.setInsertionPointToEnd(csl::calleeBody(fn));
        if (sections > 0) {
            // Zero the accumulator (Figure 1's @fmovs(acc, 0.0)).
            ir::Value zero = ar::createConstantF32(b, 0.0);
            ir::Value acc =
                state.loadBufRef(b, BufRef{accName, false});
            ln::createFill(b, zero, acc);
            ir::Value send = state.loadBufRef(b, inputRef);
            csl::CommsExchangeSpec spec;
            spec.recvCallback = "receive_chunk_cb" + suffix;
            spec.doneCallback = "done_exchange_cb" + suffix;
            spec.recvBufferName = recvName;
            for (const auto &e : exchanges)
                spec.accesses.emplace_back(e.dx, e.dy);
            spec.numChunks = numChunks;
            spec.pattern = 0;
            for (const auto &e : exchanges)
                spec.pattern =
                    std::max({spec.pattern, std::abs(e.dx),
                              std::abs(e.dy)});
            spec.zSize = zDim;
            spec.trimFirst = rz;
            spec.trimLast = rz;
            if (ir::Attribute coeffs = apply->attr(ir::attrs::kCoeffs))
                spec.coeffs = ir::denseAttrValues(coeffs);
            csl::createCommsExchange(b, send, spec);
            csl::createReturn(b);
        } else {
            // No remote data: the kernel runs synchronously (on
            // computing PEs).
            ir::OpBuilder gb = emitRoleGuard(state, b, roleVar);
            std::unordered_map<ir::ValueImpl *, ir::Value> bindings;
            bindings[doneBlock->argument(0).impl()] =
                state.loadBufRef(gb, inputRef);
            ir::Value acc = state.loadBufRef(gb, BufRef{accName, false});
            bindings[doneBlock->argument(1).impl()] = acc;
            for (unsigned i = 2; i < doneBlock->numArguments(); ++i)
                bindings[doneBlock->argument(i).impl()] =
                    state.loadBufRef(
                        gb, state.bufOf.at(apply->operand(i).impl()));
            cloneRegionInto(state, doneBlock, gb, bindings, apply, index,
                            resultRef);
            emitBoundaryCopyThrough(state, gb, inputRef, resultRef, rz);
            scf::createYield(gb);
            csl::createCall(b, continuation);
            csl::createReturn(b);
        }
    }

    if (sections == 0)
        return;

    // --- receive_chunk_cb<index> (per-chunk software actor) ---
    {
        ir::OpBuilder mb = state.moduleBuilder();
        ir::Operation *task = csl::createTask(
            mb, "receive_chunk_cb" + suffix, "local",
            state.nextTaskId++, {ir::getIndexType(ctx)});
        ir::OpBuilder b(ctx);
        b.setInsertionPointToEnd(csl::calleeBody(task));
        std::unordered_map<ir::ValueImpl *, ir::Value> bindings;
        bindings[recvBlock->argument(0).impl()] =
            state.loadBufRef(b, BufRef{recvName, false});
        bindings[recvBlock->argument(1).impl()] =
            csl::calleeBody(task)->argument(0);
        bindings[recvBlock->argument(2).impl()] =
            state.loadBufRef(b, BufRef{accName, false});
        cloneRegionInto(state, recvBlock, b, bindings, apply, index,
                        resultRef);
        csl::createReturn(b);
    }

    // --- done_exchange_cb<index> (exchange-complete software actor) ---
    {
        ir::OpBuilder mb = state.moduleBuilder();
        ir::Operation *task = csl::createTask(
            mb, "done_exchange_cb" + suffix, "local",
            state.nextTaskId++);
        ir::OpBuilder b(ctx);
        b.setInsertionPointToEnd(csl::calleeBody(task));
        ir::OpBuilder gb = emitRoleGuard(state, b, roleVar);
        std::unordered_map<ir::ValueImpl *, ir::Value> bindings;
        bindings[doneBlock->argument(0).impl()] =
            state.loadBufRef(gb, inputRef);
        bindings[doneBlock->argument(1).impl()] =
            state.loadBufRef(gb, BufRef{accName, false});
        for (unsigned i = 2; i < doneBlock->numArguments(); ++i)
            bindings[doneBlock->argument(i).impl()] =
                state.loadBufRef(
                    gb, state.bufOf.at(apply->operand(i).impl()));
        cloneRegionInto(state, doneBlock, gb, bindings, apply, index,
                        resultRef);
        emitBoundaryCopyThrough(state, gb, inputRef, resultRef, rz);
        scf::createYield(gb);
        // The remainder of the program continues from here.
        csl::createCall(b, continuation);
        csl::createReturn(b);
    }
}

} // namespace wsc::transforms
