#include "transforms/arith_to_linalg.h"

#include <set>
#include <unordered_map>

#include "dialects/arith.h"
#include "dialects/csl_stencil.h"
#include "dialects/linalg.h"
#include "dialects/memref.h"
#include "dialects/varith.h"
#include "support/error.h"
#include "transforms/utils.h"

namespace wsc::transforms {

namespace {

namespace cs = dialects::csl_stencil;
namespace ar = dialects::arith;
namespace va = dialects::varith;
namespace mr = dialects::memref;
namespace ln = dialects::linalg;

bool
isConvertibleArith(ir::Operation *op)
{
    return ar::isBinaryFloatOp(op) || op->opId() == va::kAdd ||
           op->opId() == va::kMul;
}

/** Is the value a splat (dense single-element) float constant? */
bool
isSplatConstOperand(ir::Value v)
{
    ir::Operation *def = v.definingOp();
    return def && ar::isFloatConstant(def);
}

/** Converts one apply region block to DPS form. */
class RegionConverter
{
  public:
    RegionConverter(ir::Block *block, ir::Value accArg, bool isDoneRegion)
        : block_(block), accArg_(accArg), isDone_(isDoneRegion),
          builder_(block->parentOp()->context())
    {
    }

    void
    run()
    {
        owned_.insert(accArg_.impl());
        collectSinks();
        std::vector<ir::Operation *> toErase;
        for (ir::Operation *op : block_->opsVector()) {
            if (op->opId() == mr::kSubview) {
                // Subviews of the accumulator are in-place destinations.
                if (resolve(op->operand(0)) == accArg_)
                    owned_.insert(op->result().impl());
                continue;
            }
            if (isConvertibleArith(op)) {
                // Ops folded into a copy sink must be emitted at the
                // copy's position, where the destination view exists.
                auto sinkIt = sinkCopyOf_.find(op);
                builder_.setInsertionPoint(
                    sinkIt != sinkCopyOf_.end() ? sinkIt->second : op);
                convert(op);
                toErase.push_back(op);
                continue;
            }
            if (op->opId() == mr::kCopy && !sinkCopies_.count(op)) {
                // Plain data movement (single-section receive region).
                builder_.setInsertionPoint(op);
                ln::createCopy(builder_, resolve(op->operand(0)),
                               resolve(op->operand(1)));
                toErase.push_back(op);
            }
        }
        // Terminator operands now reference buffers.
        ir::Operation *yield = block_->terminator();
        for (unsigned i = 0; i < yield->numOperands(); ++i)
            yield->setOperand(i, resolve(yield->operand(i)));

        if (isDone_)
            retargetResult(yield);

        for (ir::Operation *copy : sinkCopies_)
            toErase.push_back(copy);
        for (auto it = toErase.rbegin(); it != toErase.rend(); ++it)
            (*it)->erase();
        // Dead constants.
        bool changed = true;
        while (changed) {
            changed = false;
            for (ir::Operation *op : block_->opsVector()) {
                if (op->isTerminator() || op->numResults() == 0 ||
                    op->hasResultUses())
                    continue;
                if (op->opId() == ar::kConstant ||
                    op->opId() == mr::kAlloc ||
                    op->opId() == mr::kSubview ||
                    op->opId() == cs::kAccess) {
                    op->erase();
                    changed = true;
                }
            }
        }
    }

  private:
    /** memref.copy ops that sink a single-use arith result. */
    void
    collectSinks()
    {
        for (ir::Operation *op : block_->opsVector()) {
            if (op->opId() != mr::kCopy)
                continue;
            ir::Operation *def = op->operand(0).definingOp();
            if (def && isConvertibleArith(def) &&
                op->operand(0).numUses() == 1) {
                sinks_[def] = op->operand(1);
                sinkCopies_.insert(op);
                sinkCopyOf_[def] = op;
            }
        }
    }

    ir::Value
    resolve(ir::Value v)
    {
        auto it = buf_.find(v.impl());
        return it == buf_.end() ? v : it->second;
    }

    /** Destination buffer for an op's result. */
    ir::Value
    chooseOut(ir::Operation *op, bool &fresh)
    {
        auto sinkIt = sinks_.find(op);
        if (sinkIt != sinks_.end()) {
            fresh = false; // Accumulator slices are zero-initialized.
            return sinkIt->second;
        }
        for (ir::Value operand : op->operands()) {
            ir::Value r = resolve(operand);
            if (owned_.count(r.impl()) && operand.numUses() == 1) {
                fresh = false;
                return r;
            }
        }
        ir::Value out = mr::createAlloc(builder_, op->result().type());
        owned_.insert(out.impl());
        fresh = true;
        return out;
    }

    void
    convert(ir::Operation *op)
    {
        bool fresh = false;
        ir::Value out = chooseOut(op, fresh);
        ir::OpId n = op->opId();
        if (n == va::kAdd) {
            // Accumulate term by term; destination either pre-holds a
            // partial sum (when it aliases an operand) or is zeroed.
            bool destAliasesOperand = false;
            for (ir::Value operand : op->operands())
                if (resolve(operand) == out)
                    destAliasesOperand = true;
            if (fresh && !destAliasesOperand) {
                ir::Value zero = ar::createConstantF32(builder_, 0.0);
                ln::createFill(builder_, zero, out);
            }
            for (ir::Value operand : op->operands()) {
                ir::Value r = resolve(operand);
                if (r == out)
                    continue;
                ln::createBinary(builder_, ln::kAdd, out, r, out);
            }
        } else if (n == va::kMul && op->numOperands() == 2 &&
                   (isSplatConstOperand(op->operand(0)) ||
                    isSplatConstOperand(op->operand(1)))) {
            // Multiply by a splat constant lowers directly — this is the
            // form linalg-fuse-multiply-add turns into @fmacs.
            bool firstIsConst = isSplatConstOperand(op->operand(0));
            ir::Value cst = op->operand(firstIsConst ? 0 : 1);
            ir::Value other = op->operand(firstIsConst ? 1 : 0);
            ln::createBinary(builder_, ln::kMul, resolve(other),
                             resolve(cst), out);
        } else if (n == va::kMul) {
            // Seed the destination with the operand that aliases it (if
            // any), otherwise copy the first factor in.
            std::vector<ir::Value> rest;
            bool seeded = false;
            for (ir::Value operand : op->operands()) {
                ir::Value r = resolve(operand);
                if (!seeded && r == out) {
                    seeded = true;
                    continue;
                }
                rest.push_back(r);
            }
            size_t start = 0;
            if (!seeded) {
                ln::createCopy(builder_, rest[0], out);
                start = 1;
            }
            for (size_t i = start; i < rest.size(); ++i) {
                WSC_ASSERT(rest[i] != out,
                           "varith.mul aliases the destination twice");
                ln::createBinary(builder_, ln::kMul, out, rest[i], out);
            }
        } else {
            ir::OpId dps = n == ar::kAddF   ? ln::kAdd
                           : n == ar::kSubF ? ln::kSub
                           : n == ar::kMulF ? ln::kMul
                                            : ln::kDiv;
            ln::createBinary(builder_, dps, resolve(op->operand(0)),
                             resolve(op->operand(1)), out);
        }
        buf_[op->result().impl()] = out;
    }

    /**
     * Give the region's final value a dedicated result buffer so it
     * survives the next timestep's accumulator reset.
     */
    void
    retargetResult(ir::Operation *yield)
    {
        ir::Value resultBuf = yield->operand(0);
        builder_.setInsertionPointToStart(block_);
        ir::Value res =
            mr::createAlloc(builder_, resultBuf.type());
        res.definingOp()->setAttr(
            "result_buffer",
            ir::getUnitAttr(block_->parentOp()->context()));
        // The last DPS op writing resultBuf writes to `res` instead.
        ir::Operation *lastWriter = nullptr;
        for (ir::Operation *op : block_->opsVector()) {
            if (!ln::isLinalgOp(op))
                continue;
            unsigned outIdx = op->numOperands() - 1;
            if (op->operand(outIdx) == resultBuf)
                lastWriter = op;
        }
        if (lastWriter) {
            lastWriter->setOperand(lastWriter->numOperands() - 1, res);
        } else {
            builder_.setInsertionPoint(yield);
            ln::createCopy(builder_, resultBuf, res);
        }
        yield->setOperand(0, res);
    }

    ir::Block *block_;
    ir::Value accArg_;
    bool isDone_;
    ir::OpBuilder builder_;
    std::unordered_map<ir::ValueImpl *, ir::Value> buf_;
    std::set<ir::ValueImpl *> owned_;
    std::unordered_map<ir::Operation *, ir::Value> sinks_;
    std::set<ir::Operation *> sinkCopies_;
    std::unordered_map<ir::Operation *, ir::Operation *> sinkCopyOf_;
};

} // namespace

std::unique_ptr<ir::Pass>
createArithToLinalgPass()
{
    return std::make_unique<ir::FunctionPass>(
        "arith-to-linalg", [](ir::Operation *module) {
            for (ir::Operation *apply : collectOps(module, cs::kApply)) {
                ir::Block *recv = cs::applyRecvBlock(apply);
                RegionConverter(recv, recv->argument(2), false).run();
                ir::Block *done = cs::applyDoneBlock(apply);
                RegionConverter(done, done->argument(1), true).run();
            }
        });
}

} // namespace wsc::transforms
