/**
 * @file
 * wrap-in-csl-wrapper (paper §5.2): generates the layout metaprogram that
 * maps kernels onto the WSE's PE grid, packaging it with the PE program
 * and program-wide compile-time parameters extracted from the
 * csl_stencil ops (a domain-agnostic wrapper populated with
 * domain-specific information).
 */

#ifndef WSC_TRANSFORMS_CSL_WRAPPER_HOIST_H
#define WSC_TRANSFORMS_CSL_WRAPPER_HOIST_H

#include <memory>

#include "ir/pass.h"

namespace wsc::transforms {

std::unique_ptr<ir::Pass> createCslWrapperHoistPass();

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_CSL_WRAPPER_HOIST_H
