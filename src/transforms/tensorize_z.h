/**
 * @file
 * tensorize-z (paper §5.1, second transformation of Group 1): transforms
 * the three-dimensional grid of f32 scalars into a two-dimensional grid
 * of f32 tensors, so that each stencil element (a z-column tensor) maps
 * onto an individual PE. Value semantics are preserved and arith ops
 * become rank-polymorphic over the column tensors.
 *
 * Conventions established here and relied on downstream:
 *  - stencil field/temp types become 2-D with a tensor<zxf32> element;
 *  - each apply receives `z_dim` (full column length) and `z_offset`
 *    (its local z radius rz) attributes;
 *  - body values are tensors of the *interior* length z - 2*rz; an
 *    access offset keeps its third entry dz, meaning the z-shifted
 *    interior slice [rz+dz, rz+dz+interior) of the source column;
 *  - the computed interior is placed at [rz, z-rz) of the result column,
 *    z-boundary cells retaining their previous (boundary-condition)
 *    values.
 */

#ifndef WSC_TRANSFORMS_TENSORIZE_Z_H
#define WSC_TRANSFORMS_TENSORIZE_Z_H

#include <memory>

#include "ir/pass.h"

namespace wsc::transforms {

std::unique_ptr<ir::Pass> createTensorizeZPass();

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_TENSORIZE_Z_H
