#include "transforms/pipeline.h"

#include <iostream>

#include "ir/pattern.h"
#include "transforms/arith_to_linalg.h"
#include "transforms/bufferize.h"
#include "transforms/control_flow_to_task_graph.h"
#include "transforms/csl_wrapper_hoist.h"
#include "transforms/distribute_stencil.h"
#include "transforms/linalg_fuse_fmac.h"
#include "transforms/linalg_to_csl.h"
#include "transforms/lower_csl_wrapper.h"
#include "transforms/memref_to_dsd.h"
#include "transforms/stencil_inlining.h"
#include "transforms/stencil_to_csl_stencil.h"
#include "transforms/tensorize_z.h"
#include "transforms/varith_transforms.h"

namespace wsc::transforms {

uint64_t
PipelineOptions::fingerprint() const
{
    // splitmix64 chain over the artifact-relevant fields; field order
    // is the schema, so appending new options keeps old hashes stable.
    auto mix = [](uint64_t x) {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    };
    uint64_t h = 0x706970656f707473ULL; // "pipeopts"
    h = mix(h ^ (enableStencilInlining ? 1 : 0));
    h = mix(h ^ (enableVarithFusion ? 1 : 0));
    h = mix(h ^ (enableCoeffPromotion ? 1 : 0));
    h = mix(h ^ (enableOneShotReduction ? 1 : 0));
    h = mix(h ^ (enableFmacFusion ? 1 : 0));
    h = mix(h ^ static_cast<uint64_t>(recvBufferBudgetBytes));
    h = mix(h ^ static_cast<uint64_t>(forceNumChunks));
    return h;
}

ir::PassManager
buildPipeline(const PipelineOptions &options)
{
    ir::PassManager pm(options.verifyEach);

    // Optimization at the stencil level (§5.7).
    if (options.enableStencilInlining)
        pm.addPass(createStencilInliningPass());
    pm.addPass(createArithToVarithPass());
    if (options.enableVarithFusion)
        pm.addPass(createVarithFuseRepeatedOperandsPass());

    // Group 1: decomposition and data dependencies (§5.1).
    pm.addPass(createDistributeStencilPass());
    pm.addPass(createTensorizeZPass());

    // Group 2: placement and communication (§5.2).
    StencilToCslStencilOptions s2cs;
    s2cs.recvBufferBudgetBytes = options.recvBufferBudgetBytes;
    s2cs.forceNumChunks = options.forceNumChunks;
    s2cs.disableCoeffPromotion = !options.enableCoeffPromotion;
    pm.addPass(createStencilToCslStencilPass(s2cs));
    pm.addPass(createCslWrapperHoistPass());

    // Group 3: memory realization within a PE (§5.3).
    pm.addPass(createBufferizePass());
    pm.addPass(createArithToLinalgPass());
    if (options.enableFmacFusion)
        pm.addPass(createLinalgFuseFmacPass());

    // Group 4: map to the actor execution model (§5.4).
    pm.addPass(createControlFlowToTaskGraphPass());

    // Group 5: lowering to csl-ir (§5.5).
    LinalgToCslOptions l2c;
    l2c.disableOneShotReduction = !options.enableOneShotReduction;
    pm.addPass(createLinalgToCslPass(l2c));
    pm.addPass(createMemrefToDsdCleanupPass());
    pm.addPass(createLowerCslWrapperPass());

    return pm;
}

ir::PipelineResult
runPipeline(ir::Operation *module, const PipelineOptions &options)
{
    ir::PassManager pm = buildPipeline(options);
    ir::PipelineResult result = pm.run(module);
    if (options.dumpPatternStats || ir::patternStatsRequested())
        ir::dumpPatternStats(std::cerr);
    return result;
}

} // namespace wsc::transforms
