/**
 * @file
 * Shared helpers for the lowering passes.
 */

#ifndef WSC_TRANSFORMS_UTILS_H
#define WSC_TRANSFORMS_UTILS_H

#include <functional>
#include <unordered_map>
#include <string>
#include <vector>

#include "ir/builder.h"
#include "ir/operation.h"

namespace wsc::transforms {

/** Collect all ops under `root` (exclusive) with the given identity. */
std::vector<ir::Operation *> collectOps(ir::Operation *root, ir::OpId id);

/** The first op with the given identity, or nullptr. */
ir::Operation *findOp(ir::Operation *root, ir::OpId id);

/**
 * Clone `op` (without regions) at the builder's insertion point,
 * mapping operands through `mapping` (falling back to the original
 * value). Results are entered into `mapping`.
 */
ir::Operation *cloneOp(ir::OpBuilder &b, ir::Operation *op,
                       std::unordered_map<ir::ValueImpl *, ir::Value> &mapping);

/** Map a value through `mapping`, defaulting to itself. */
ir::Value mapValue(const std::unordered_map<ir::ValueImpl *, ir::Value> &mapping,
                   ir::Value v);

/**
 * Clone every op of `source` except its terminator into the builder's
 * insertion point, extending `mapping`. Returns the operands of the
 * terminator, mapped.
 */
std::vector<ir::Value> inlineBlockBody(
    ir::OpBuilder &b, ir::Block *source,
    std::unordered_map<ir::ValueImpl *, ir::Value> &mapping);

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_UTILS_H
