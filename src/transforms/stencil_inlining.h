/**
 * @file
 * stencil-inlining (paper §5.7): merges consecutive stencil.apply ops into
 * a single fused kernel, removing host-device context switches between
 * stencils. An apply whose results are consumed only by one later apply is
 * inlined into it, composing access offsets. For UVKBE this fuses all
 * applies into one operation.
 */

#ifndef WSC_TRANSFORMS_STENCIL_INLINING_H
#define WSC_TRANSFORMS_STENCIL_INLINING_H

#include <memory>

#include "ir/pass.h"

namespace wsc::transforms {

std::unique_ptr<ir::Pass> createStencilInliningPass();

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_STENCIL_INLINING_H
