#include "transforms/stencil_to_csl_stencil.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <unordered_map>

#include "dialects/arith.h"
#include "dialects/csl_stencil.h"
#include "dialects/dmp.h"
#include "dialects/stencil.h"
#include "dialects/tensor.h"
#include "dialects/varith.h"
#include "ir/diagnostics.h"
#include "support/error.h"
#include "transforms/utils.h"

namespace wsc::transforms {

namespace {

namespace st = dialects::stencil;
namespace cs = dialects::csl_stencil;
namespace ar = dialects::arith;
namespace va = dialects::varith;
namespace dmp = dialects::dmp;
namespace tn = dialects::tensor;

/** Classification of a body value w.r.t. the communicated operand. */
enum class Purity { Const, Local, Remote, Mixed };

Purity
combine(Purity a, Purity b)
{
    if (a == Purity::Mixed || b == Purity::Mixed)
        return Purity::Mixed;
    if (a == Purity::Const)
        return b;
    if (b == Purity::Const)
        return a;
    if (a == b)
        return a;
    return Purity::Mixed;
}

struct BodyAnalysis
{
    std::unordered_map<ir::ValueImpl *, Purity> purity;
    /** The single varith.add where remote meets local (may be null). */
    ir::Operation *mixingOp = nullptr;
    /** Remote-pure operands of the mixing op (the remote terms). */
    std::vector<ir::Value> remoteTerms;
    /** The remaining (local/const) operands of the mixing op. */
    std::vector<ir::Value> localTerms;
};

/** Is this op a remote access on the communicated block argument? */
bool
isRemoteAccess(ir::Operation *op, ir::Block *body, unsigned commIdx)
{
    if (op->opId() != st::kAccess && op->opId() != cs::kAccess)
        return false;
    ir::Value src = op->operand(0);
    if (!src.isBlockArgument() || src.ownerBlock() != body ||
        src.index() != commIdx)
        return false;
    std::vector<int64_t> offset = st::accessOffset(op);
    return offset.size() >= 2 && (offset[0] != 0 || offset[1] != 0);
}

/** Analyze a stencil.apply body (see header step 3). */
BodyAnalysis
analyzeBody(ir::Operation *apply, unsigned commIdx)
{
    BodyAnalysis out;
    ir::Block *body = st::applyBody(apply);
    for (ir::Operation *op : body->opsVector()) {
        if (op->opId() == st::kReturn)
            continue;
        Purity p;
        if (op->opId() == st::kAccess) {
            p = isRemoteAccess(op, body, commIdx) ? Purity::Remote
                                                  : Purity::Local;
        } else if (op->opId() == ar::kConstant) {
            p = Purity::Const;
        } else {
            p = Purity::Const;
            for (ir::Value v : op->operands()) {
                auto it = out.purity.find(v.impl());
                Purity vp = it == out.purity.end() ? Purity::Local
                                                   : it->second;
                p = combine(p, vp);
            }
            // The op where remote meets local must be a varith.add (the
            // accumulator combination point) and must be unique.
            bool createsMix = p == Purity::Mixed;
            for (ir::Value v : op->operands()) {
                auto it = out.purity.find(v.impl());
                if (it != out.purity.end() && it->second == Purity::Mixed)
                    createsMix = false; // Mixed-ness merely propagates.
            }
            if (createsMix) {
                if (out.mixingOp) {
                    ir::InFlightDiagnostic diag = ir::emitError(
                        op, "more than one point mixes remote and local "
                            "data; cannot split the kernel");
                    diag.attachNote("first mixing point was here",
                                    out.mixingOp);
                    diag.report();
                    throw ir::DiagnosedError();
                }
                if (op->opId() != va::kAdd)
                    ir::emitFatal(op,
                                  "remote and local data must combine "
                                  "through addition (varith.add)");
                out.mixingOp = op;
            }
        }
        for (ir::Value r : op->results())
            out.purity[r.impl()] = p;
    }

    if (out.mixingOp) {
        for (ir::Value v : out.mixingOp->operands()) {
            Purity p = out.purity.at(v.impl());
            if (p == Purity::Remote)
                out.remoteTerms.push_back(v);
            else
                out.localTerms.push_back(v);
        }
    } else {
        // No mixing point: the returned value may be remote-pure.
        ir::Operation *ret = body->terminator();
        WSC_ASSERT(ret->numOperands() == 1,
                   "expected single-result apply");
        ir::Value result = ret->operand(0);
        Purity p = out.purity.count(result.impl())
                       ? out.purity.at(result.impl())
                       : Purity::Local;
        if (p == Purity::Remote) {
            ir::Operation *def = result.definingOp();
            if (def && def->opId() == va::kAdd) {
                out.mixingOp = def;
                for (ir::Value v : def->operands())
                    out.remoteTerms.push_back(v);
            } else {
                out.remoteTerms.push_back(result);
            }
        }
    }
    return out;
}

/** Try to see a remote term as coefficient * access. */
struct PromotedTerm
{
    ir::Operation *access = nullptr;
    double coeff = 1.0;
    bool ok = false;
};

PromotedTerm
matchPromotableTerm(ir::Value term)
{
    PromotedTerm out;
    ir::Operation *def = term.definingOp();
    if (!def)
        return out;
    if (def->opId() == st::kAccess) {
        out.access = def;
        out.ok = term.numUses() == 1;
        return out;
    }
    if (def->opId() == ar::kMulF || def->opId() == va::kMul) {
        if (def->numOperands() != 2)
            return out;
        for (int i = 0; i < 2; ++i) {
            ir::Operation *a = def->operand(i).definingOp();
            ir::Operation *c = def->operand(1 - i).definingOp();
            if (a && a->opId() == st::kAccess && c &&
                ar::isFloatConstant(c)) {
                out.access = a;
                out.coeff = ar::floatConstantValue(c);
                out.ok = def->result().numUses() == 1 &&
                         def->operand(i).numUses() == 1;
                return out;
            }
        }
    }
    return out;
}

/** Smallest chunk count whose receive buffer fits the budget.
 *  `apply` locates the diagnostic when no count fits. */
int64_t
chooseNumChunks(ir::Operation *apply, int64_t sections, int64_t commElems,
                int64_t budgetBytes)
{
    if (sections == 0)
        return 1;
    auto fits = [&](int64_t n) {
        int64_t chunk = (commElems + n - 1) / n;
        return sections * chunk * 4 <= budgetBytes;
    };
    // Prefer chunk counts that divide the column evenly.
    for (int64_t n = 1; n <= commElems; ++n)
        if (commElems % n == 0 && fits(n))
            return n;
    for (int64_t n = 1; n <= commElems; ++n)
        if (fits(n))
            return n;
    ir::emitFatal(apply,
                  "no chunk count fits the receive-buffer budget (" +
                      std::to_string(sections) + " sections x " +
                      std::to_string(commElems) + " elems, budget " +
                      std::to_string(budgetBytes) + " bytes)");
}

/** Section index of an access offset within the canonical exchanges. */
int
sectionOf(const std::vector<dmp::Exchange> &exchanges,
          const std::vector<int64_t> &offset)
{
    for (size_t i = 0; i < exchanges.size(); ++i)
        if (exchanges[i].dx == offset[0] && exchanges[i].dy == offset[1])
            return static_cast<int>(i);
    return -1;
}

/** Retype a just-cloned region-0 op to chunk-length tensors. */
void
retypeForChunk(ir::Operation *op, ir::Type chunkType)
{
    ir::Context &ctx = op->context();
    if (op->opId() == ar::kConstant) {
        ir::Attribute v = op->attr(ir::attrs::kValue);
        WSC_ASSERT(ir::isDenseAttr(v), "expected dense constant");
        op->setAttr("value",
                    ir::getDenseAttr(ctx, chunkType,
                                     ir::denseAttrValues(v)));
    }
    for (ir::Value r : op->results())
        r.setType(chunkType);
}

/** Convert one apply with at most one communicated operand. */
void
convertApply(ir::Operation *apply, ir::Operation *swap,
             unsigned commIdx, const StencilToCslStencilOptions &options)
{
    ir::Context &ctx = apply->context();
    ir::Block *body = st::applyBody(apply);
    ir::Operation *ret = body->terminator();
    ir::Type interiorType = ret->operand(0).type();
    WSC_ASSERT(ir::isTensor(interiorType),
               "apply must be tensorized before conversion");
    int64_t interior = ir::shapeOf(interiorType)[0];
    int64_t rz = apply->hasAttr(ir::attrs::kZOffset) ? apply->intAttr(ir::attrs::kZOffset)
                                            : 0;
    int64_t zDim = apply->hasAttr(ir::attrs::kZDim)
                       ? apply->intAttr(ir::attrs::kZDim)
                       : interior + 2 * rz;

    std::vector<dmp::Exchange> exchanges =
        cs::canonicalExchangeOrder(dmp::swapExchanges(swap));
    std::pair<int64_t, int64_t> topology = dmp::swapTopology(swap);
    int64_t sections = static_cast<int64_t>(exchanges.size());
    int64_t numChunks =
        options.forceNumChunks > 0
            ? options.forceNumChunks
            : chooseNumChunks(apply, sections, interior,
                              options.recvBufferBudgetBytes);
    int64_t chunkLen = (interior + numChunks - 1) / numChunks;

    BodyAnalysis analysis = analyzeBody(apply, commIdx);

    // Coefficient promotion (step 4).
    std::vector<double> coeffs(static_cast<size_t>(sections), 0.0);
    bool promote = !options.disableCoeffPromotion && sections > 0;
    std::vector<PromotedTerm> promoted;
    std::set<int> seenSections;
    for (ir::Value term : analysis.remoteTerms) {
        PromotedTerm p = matchPromotableTerm(term);
        int section = -1;
        if (p.ok)
            section = sectionOf(exchanges, st::accessOffset(p.access));
        if (!p.ok || section < 0 || seenSections.count(section)) {
            promote = false;
            break;
        }
        seenSections.insert(section);
        coeffs[static_cast<size_t>(section)] = p.coeff;
        promoted.push_back(p);
    }
    // Promotion must cover every section exactly once.
    if (promote &&
        seenSections.size() != static_cast<size_t>(sections))
        promote = false;

    ir::OpBuilder b(ctx);
    b.setInsertionPoint(apply);

    // Accumulator init (bufferized later into a zeroed buffer).
    ir::Value acc = tn::createEmpty(
        b, ir::getTensorType(ctx, {interior}, ir::getF32Type(ctx)));

    std::vector<ir::Value> others;
    std::vector<unsigned> otherIdx;
    for (unsigned i = 0; i < apply->numOperands(); ++i) {
        if (i == commIdx)
            continue;
        others.push_back(apply->operand(i));
        otherIdx.push_back(i);
    }

    ir::Type chunkType =
        ir::getTensorType(ctx, {chunkLen}, ir::getF32Type(ctx));
    ir::Type recvChunkType = ir::getTensorType(
        ctx, {sections, chunkLen}, ir::getF32Type(ctx));
    ir::Value input = swap ? swap->operand(0) : apply->operand(commIdx);

    ir::Operation *newApply = cs::createApply(
        b, input, acc, others, exchanges, numChunks, topology,
        apply->result().type(), recvChunkType);
    newApply->setAttr("z_dim", ir::getIntAttr(ctx, zDim));
    newApply->setAttr("z_offset", ir::getIntAttr(ctx, rz));
    if (promote) {
        ir::Type coeffType = ir::getTensorType(ctx, {sections},
                                               ir::getF32Type(ctx));
        newApply->setAttr("coeffs",
                          ir::getDenseAttr(ctx, coeffType, coeffs));
    }

    // ---- Region 0: receive-chunk ----
    ir::Block *recv = cs::applyRecvBlock(newApply);
    ir::Value bufArg = recv->argument(0);
    ir::Value offsetArg = recv->argument(1);
    ir::Value accArg = recv->argument(2);
    ir::OpBuilder rb(ctx);
    rb.setInsertionPointToEnd(recv);
    if (sections == 0) {
        cs::createYield(rb, {accArg});
    } else {
        std::vector<ir::Value> parts;
        if (promote) {
            // Coefficients already applied while landing: just gather the
            // per-section chunk slices.
            for (const dmp::Exchange &e : exchanges)
                parts.push_back(cs::createAccess(rb, bufArg, {e.dx, e.dy},
                                                 chunkType));
        } else {
            // Clone each remote term chunk-wise, redirecting accesses to
            // the receive buffer.
            std::unordered_map<ir::ValueImpl *, ir::Value> mapping;
            for (ir::Operation *op : body->opsVector()) {
                if (op->numResults() != 1)
                    continue;
                auto it = analysis.purity.find(op->result().impl());
                Purity p = it == analysis.purity.end() ? Purity::Local
                                                       : it->second;
                if (p != Purity::Remote && p != Purity::Const)
                    continue;
                if (op->opId() == st::kAccess) {
                    if (isRemoteAccess(op, body, commIdx)) {
                        std::vector<int64_t> off = st::accessOffset(op);
                        mapping[op->result().impl()] = cs::createAccess(
                            rb, bufArg, {off[0], off[1]}, chunkType);
                    }
                    continue;
                }
                ir::Operation *clone = cloneOp(rb, op, mapping);
                retypeForChunk(clone, chunkType);
            }
            for (ir::Value t : analysis.remoteTerms)
                parts.push_back(mapValue(mapping, t));
        }
        ir::Value sum = parts.size() == 1
                            ? parts[0]
                            : va::createVariadic(rb, va::kAdd, parts);
        ir::Value inserted =
            tn::createInsertSlice(rb, sum, accArg, offsetArg, chunkLen);
        cs::createYield(rb, {inserted});
        // Constants cloned for local terms are dead here; prune them.
        bool recvChanged = true;
        while (recvChanged) {
            recvChanged = false;
            for (ir::Operation *op : recv->opsVector()) {
                if (op->isTerminator() || op->hasResultUses() ||
                    op->numResults() == 0)
                    continue;
                op->erase();
                recvChanged = true;
            }
        }
    }

    // ---- Region 1: done-exchange ----
    ir::Block *done = cs::applyDoneBlock(newApply);
    ir::OpBuilder db(ctx);
    db.setInsertionPointToEnd(done);
    std::unordered_map<ir::ValueImpl *, ir::Value> mapping;
    mapping[body->argument(commIdx).impl()] = done->argument(0);
    for (size_t i = 0; i < otherIdx.size(); ++i)
        mapping[body->argument(otherIdx[i]).impl()] =
            done->argument(static_cast<unsigned>(2 + i));

    for (ir::Operation *op : body->opsVector()) {
        if (op->opId() == st::kReturn) {
            std::vector<ir::Value> results;
            for (ir::Value v : op->operands()) {
                auto it = analysis.purity.find(v.impl());
                // A remote-pure result (stencil with no local part) is
                // exactly the accumulator.
                if (it != analysis.purity.end() &&
                    it->second == Purity::Remote)
                    results.push_back(done->argument(1));
                else
                    results.push_back(mapValue(mapping, v));
            }
            cs::createYield(db, results);
            continue;
        }
        // Skip remote-pure ops: their work happened in region 0.
        if (op->numResults() == 1 &&
            analysis.purity.count(op->result().impl()) &&
            analysis.purity.at(op->result().impl()) == Purity::Remote)
            continue;
        if (op == analysis.mixingOp) {
            std::vector<ir::Value> operands;
            for (ir::Value v : analysis.localTerms)
                operands.push_back(mapValue(mapping, v));
            operands.push_back(done->argument(1)); // the accumulator
            ir::Value combined =
                operands.size() == 1
                    ? operands[0]
                    : va::createVariadic(db, va::kAdd, operands);
            mapping[op->result().impl()] = combined;
            continue;
        }
        if (op->opId() == st::kAccess) {
            ir::Value src = mapValue(mapping, op->operand(0));
            mapping[op->result().impl()] = cs::createAccess(
                db, src, st::accessOffset(op), op->result().type());
            continue;
        }
        cloneOp(db, op, mapping);
    }

    // Remove region-1 ops whose results are unused (constants that only
    // fed remote terms).
    bool changed = true;
    while (changed) {
        changed = false;
        for (ir::Operation *op : done->opsVector()) {
            if (op->isTerminator() || op->hasResultUses() ||
                op->numResults() == 0)
                continue;
            op->erase();
            changed = true;
        }
    }

    ir::replaceOp(apply, {newApply->result()});
    if (swap && !swap->hasResultUses())
        ir::eraseOp(swap);
}

/** Split an apply with multiple communicated operands (see header). */
void
splitApply(ir::Operation *apply,
           const std::vector<std::pair<unsigned, ir::Operation *>>
               &swappedOperands)
{
    ir::Context &ctx = apply->context();
    ir::Block *body = st::applyBody(apply);
    unsigned commIdx = swappedOperands.front().first;

    BodyAnalysis analysis = analyzeBody(apply, commIdx);
    WSC_ASSERT(analysis.mixingOp,
               "splitApply requires a mixing varith.add");
    ir::Operation *ret = body->terminator();
    ir::Type interiorType = ret->operand(0).type();

    // Partial apply: only the remote terms of operand commIdx.
    ir::OpBuilder b(ctx);
    b.setInsertionPoint(apply);
    st::Bounds bounds2 = st::boundsOf(apply->result().type());
    ir::Type partialType =
        st::getTempType(ctx, bounds2, interiorType);
    ir::Operation *partial = st::createApply(
        b, {apply->operand(commIdx)}, {partialType});
    if (apply->hasAttr(ir::attrs::kZDim))
        partial->setAttr("z_dim", apply->attr(ir::attrs::kZDim));
    if (apply->hasAttr(ir::attrs::kZOffset))
        partial->setAttr("z_offset", apply->attr(ir::attrs::kZOffset));

    ir::Block *pBody = st::applyBody(partial);
    ir::OpBuilder pb(ctx);
    pb.setInsertionPointToEnd(pBody);
    std::unordered_map<ir::ValueImpl *, ir::Value> pMapping;
    pMapping[body->argument(commIdx).impl()] = pBody->argument(0);
    std::set<ir::ValueImpl *> remoteSet;
    for (ir::Value t : analysis.remoteTerms)
        remoteSet.insert(t.impl());
    for (ir::Operation *op : body->opsVector()) {
        if (op->opId() == st::kReturn)
            continue;
        if (op->numResults() != 1)
            continue;
        Purity p = analysis.purity.at(op->result().impl());
        if (p != Purity::Remote && p != Purity::Const)
            continue;
        if (op->opId() == st::kAccess) {
            if (isRemoteAccess(op, body, commIdx))
                pMapping[op->result().impl()] = st::createAccess(
                    pb, pBody->argument(0), st::accessOffset(op));
            continue;
        }
        cloneOp(pb, op, pMapping);
    }
    std::vector<ir::Value> parts;
    for (ir::Value t : analysis.remoteTerms)
        parts.push_back(mapValue(pMapping, t));
    ir::Value sum = parts.size() == 1
                        ? parts[0]
                        : va::createVariadic(pb, va::kAdd, parts);
    st::createReturn(pb, {sum});
    // Dead-code cleanup (constants cloned but unused).
    bool changed = true;
    while (changed) {
        changed = false;
        for (ir::Operation *op : pBody->opsVector()) {
            if (op->isTerminator() || op->hasResultUses() ||
                op->numResults() == 0)
                continue;
            op->erase();
            changed = true;
        }
    }

    // Rest apply: original body minus the remote terms of commIdx, with
    // the partial result accessed at offset zero joining the mix. The
    // commIdx operand stays available — *unswapped* — because the body
    // may still access it locally (its remote accesses moved into the
    // partial); taking the swap input keeps the rest apply at one
    // communicated operand fewer.
    std::vector<ir::Value> restOperands;
    for (unsigned i = 0; i < apply->numOperands(); ++i) {
        ir::Value operand = apply->operand(i);
        if (i == commIdx) {
            ir::Operation *def = operand.definingOp();
            WSC_ASSERT(def && def->opId() == dmp::kSwap,
                       "split operand must be swapped");
            operand = def->operand(0);
        }
        restOperands.push_back(operand);
    }
    restOperands.push_back(partial->result());
    ir::Operation *rest =
        st::createApply(b, restOperands, {apply->result().type()});
    if (apply->hasAttr(ir::attrs::kZDim))
        rest->setAttr("z_dim", apply->attr(ir::attrs::kZDim));
    if (apply->hasAttr(ir::attrs::kZOffset))
        rest->setAttr("z_offset", apply->attr(ir::attrs::kZOffset));

    ir::Block *rBody = st::applyBody(rest);
    ir::OpBuilder rbld(ctx);
    rbld.setInsertionPointToEnd(rBody);
    std::unordered_map<ir::ValueImpl *, ir::Value> rMapping;
    for (unsigned i = 0; i < apply->numOperands(); ++i)
        rMapping[body->argument(i).impl()] = rBody->argument(i);
    ir::Value partialArg =
        rBody->argument(apply->numOperands());

    for (ir::Operation *op : body->opsVector()) {
        if (op->opId() == st::kReturn) {
            std::vector<ir::Value> results;
            for (ir::Value v : op->operands())
                results.push_back(mapValue(rMapping, v));
            st::createReturn(rbld, results);
            continue;
        }
        if (op->numResults() == 1 &&
            analysis.purity.at(op->result().impl()) == Purity::Remote)
            continue;
        if (op == analysis.mixingOp) {
            std::vector<ir::Value> operands;
            for (ir::Value v : analysis.localTerms)
                operands.push_back(mapValue(rMapping, v));
            operands.push_back(
                st::createAccess(rbld, partialArg, {0, 0, 0}));
            ir::Value combined =
                operands.size() == 1
                    ? operands[0]
                    : va::createVariadic(rbld, va::kAdd, operands);
            rMapping[op->result().impl()] = combined;
            continue;
        }
        cloneOp(rbld, op, rMapping);
    }
    changed = true;
    while (changed) {
        changed = false;
        for (ir::Operation *op : rBody->opsVector()) {
            if (op->isTerminator() || op->hasResultUses() ||
                op->numResults() == 0)
                continue;
            op->erase();
            changed = true;
        }
    }

    ir::replaceOp(apply, {rest->result()});
}

/** dmp.swap feeding operand i of the apply, or nullptr. */
ir::Operation *
swapFor(ir::Operation *apply, unsigned i)
{
    ir::Operation *def = apply->operand(i).definingOp();
    return def && def->opId() == dmp::kSwap ? def : nullptr;
}

} // namespace

std::unique_ptr<ir::Pass>
createStencilToCslStencilPass(StencilToCslStencilOptions options)
{
    return std::make_unique<ir::FunctionPass>(
        "convert-stencil-to-csl-stencil", [options](ir::Operation *module) {
            bool progress = true;
            while (progress) {
                progress = false;
                for (ir::Operation *apply :
                     collectOps(module, st::kApply)) {
                    std::vector<std::pair<unsigned, ir::Operation *>>
                        swapped;
                    for (unsigned i = 0; i < apply->numOperands(); ++i)
                        if (ir::Operation *swap = swapFor(apply, i))
                            swapped.emplace_back(i, swap);
                    if (swapped.size() > 1) {
                        splitApply(apply, swapped);
                        progress = true;
                        break;
                    }
                    unsigned commIdx =
                        swapped.empty() ? 0 : swapped.front().first;
                    ir::Operation *swap =
                        swapped.empty() ? nullptr : swapped.front().second;
                    if (!swap)
                        continue; // Local-only applies stay for now.
                    convertApply(apply, swap, commIdx, options);
                    progress = true;
                    break;
                }
            }
        });
}

} // namespace wsc::transforms
