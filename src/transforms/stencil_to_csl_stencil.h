/**
 * @file
 * convert-stencil-to-csl-stencil (paper §5.2): replaces dmp.swap ops with
 * csl_stencil communication and splits each stencil.apply into the
 * receive-chunk / done-exchange structure of csl_stencil.apply.
 *
 * Sub-steps, matching the paper's description:
 *  1. applies with more than one communicated operand (produced by
 *     stencil-inlining, e.g. UVKBE's fused kernel) are split back into a
 *     chain of applies, one per buffer communication, enabling
 *     interleaving of communication and computation;
 *  2. each dmp.swap becomes a csl_stencil.prefetch describing the receive
 *     buffer, which is then merged into the csl_stencil.apply;
 *  3. the body is split: remote-access terms move into the receive-chunk
 *     region (reduced chunk-by-chunk into the accumulator), local terms
 *     into the done-exchange region;
 *  4. where every remote term is `coefficient * access`, the coefficients
 *     are promoted onto the op (later applied to incoming data at zero
 *     overhead — the comms/compute interleaving optimization of §5.7);
 *  5. num_chunks is chosen as the smallest count whose receive buffer
 *     fits the configured memory budget.
 */

#ifndef WSC_TRANSFORMS_STENCIL_TO_CSL_STENCIL_H
#define WSC_TRANSFORMS_STENCIL_TO_CSL_STENCIL_H

#include <cstdint>
#include <memory>

#include "ir/pass.h"

namespace wsc::transforms {

struct StencilToCslStencilOptions
{
    /** Per-PE memory budget for one receive buffer, in bytes. */
    int64_t recvBufferBudgetBytes = 32 * 1024;
    /** Force a specific chunk count (0 = derive from the budget). */
    int64_t forceNumChunks = 0;
    /** Disable coefficient promotion (ablation). */
    bool disableCoeffPromotion = false;
};

std::unique_ptr<ir::Pass> createStencilToCslStencilPass(
    StencilToCslStencilOptions options = {});

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_STENCIL_TO_CSL_STENCIL_H
