#include "transforms/varith_transforms.h"

#include <algorithm>

#include "dialects/arith.h"
#include "dialects/varith.h"
#include "ir/pattern.h"
#include "support/error.h"

namespace wsc::transforms {

namespace {

namespace ar = dialects::arith;
namespace va = dialects::varith;

/** arith op -> varith counterpart (add/mul only); invalid id otherwise. */
ir::OpId
varithCounterpart(ir::OpId id)
{
    if (id == ar::kAddF)
        return va::kAdd;
    if (id == ar::kMulF)
        return va::kMul;
    return ir::OpId();
}

/** Variadic kind (varith.add/varith.mul) of an op; invalid id otherwise. */
ir::OpId
variadicKind(ir::OpId id)
{
    if (id == ar::kAddF || id == va::kAdd)
        return va::kAdd;
    if (id == ar::kMulF || id == va::kMul)
        return va::kMul;
    return ir::OpId();
}

/** Fuse (varith|arith) op into an enclosing varith-compatible user. */
bool
fuseIntoVariadic(ir::Operation *op, ir::OpBuilder &b)
{
    ir::OpId target = variadicKind(op->opId());
    if (!target.valid())
        return false;

    // Collect operands, flattening any producer of the same kind whose
    // only user is this op.
    bool flattened = false;
    std::vector<ir::Value> flat;
    for (ir::Value v : op->operands()) {
        ir::Operation *def = v.definingOp();
        if (def && variadicKind(def->opId()) == target &&
            v.numUses() == 1) {
            for (ir::Value inner : def->operands())
                flat.push_back(inner);
            flattened = true;
        } else {
            flat.push_back(v);
        }
    }
    bool isBinaryArith = varithCounterpart(op->opId()).valid();
    if (!flattened && !isBinaryArith)
        return false;

    ir::Value fused = va::createVariadic(b, target, flat);
    ir::replaceOp(op, {fused});
    // Producers left without uses are cleaned up by the dce pattern.
    return true;
}

/** varith-fuse-repeated-operands: k identical addends -> mulf by k. */
bool
fuseRepeatedAddends(ir::Operation *op, ir::OpBuilder &b)
{
    if (op->opId() != va::kAdd)
        return false;
    // Count occurrences preserving first-seen order.
    std::vector<std::pair<ir::Value, int>> counts;
    for (ir::Value v : op->operands()) {
        bool found = false;
        for (auto &[value, count] : counts) {
            if (value == v) {
                count++;
                found = true;
                break;
            }
        }
        if (!found)
            counts.emplace_back(v, 1);
    }
    bool any = std::any_of(counts.begin(), counts.end(),
                           [](const auto &p) { return p.second >= 2; });
    if (!any)
        return false;

    std::vector<ir::Value> operands;
    for (auto &[value, count] : counts) {
        if (count == 1) {
            operands.push_back(value);
            continue;
        }
        ir::Value k;
        if (ir::isTensor(value.type())) {
            k = ar::createDenseConstant(b, value.type(),
                                        static_cast<double>(count));
        } else {
            k = ar::createConstantF32(b, static_cast<double>(count));
        }
        operands.push_back(ar::createMulF(b, value, k));
    }
    if (operands.size() == 1) {
        ir::replaceOp(op, {operands[0]});
    } else {
        ir::Value fused = va::createVariadic(b, va::kAdd, operands);
        ir::replaceOp(op, {fused});
    }
    return true;
}

/** Erase ops with no uses and no side effects (dead arith/varith). */
bool
dce(ir::Operation *op, ir::OpBuilder &)
{
    ir::OpId n = op->opId();
    bool pure = n == ar::kAddF || n == ar::kSubF || n == ar::kMulF ||
                n == ar::kDivF || n == ar::kConstant || n == va::kAdd ||
                n == va::kMul;
    if (!pure || op->hasResultUses())
        return false;
    ir::eraseOp(op);
    return true;
}

} // namespace

std::unique_ptr<ir::Pass>
createArithToVarithPass()
{
    return std::make_unique<ir::FunctionPass>(
        "arith-to-varith", [](ir::Operation *module) {
            std::vector<ir::NamedPattern> patterns = {
                {"fuse-into-variadic", fuseIntoVariadic},
                {"dce", dce},
            };
            ir::applyPatternsGreedily(module, patterns);
        });
}

std::unique_ptr<ir::Pass>
createVarithFuseRepeatedOperandsPass()
{
    return std::make_unique<ir::FunctionPass>(
        "varith-fuse-repeated-operands", [](ir::Operation *module) {
            std::vector<ir::NamedPattern> patterns = {
                {"fuse-repeated-addends", fuseRepeatedAddends},
                {"dce", dce},
            };
            ir::applyPatternsGreedily(module, patterns);
        });
}

std::unique_ptr<ir::Pass>
createVarithToArithPass()
{
    return std::make_unique<ir::FunctionPass>(
        "varith-to-arith", [](ir::Operation *module) {
            std::vector<ir::NamedPattern> patterns = {
                {"expand-varith",
                 [](ir::Operation *op, ir::OpBuilder &b) {
                     if (op->opId() != va::kAdd && op->opId() != va::kMul)
                         return false;
                     ir::OpId binary = op->opId() == va::kAdd
                                           ? ar::kAddF
                                           : ar::kMulF;
                     ir::Value acc = op->operand(0);
                     for (unsigned i = 1; i < op->numOperands(); ++i)
                         acc = ar::createBinary(b, binary, acc,
                                                op->operand(i));
                     ir::replaceOp(op, {acc});
                     return true;
                 }},
            };
            ir::applyPatternsGreedily(module, patterns);
        });
}

} // namespace wsc::transforms
