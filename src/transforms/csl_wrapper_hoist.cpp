#include "transforms/csl_wrapper_hoist.h"

#include <algorithm>

#include "dialects/arith.h"
#include "dialects/builtin.h"
#include "dialects/csl_stencil.h"
#include "dialects/csl_wrapper.h"
#include "dialects/func.h"
#include "support/error.h"
#include "transforms/utils.h"

namespace wsc::transforms {

namespace {

namespace cs = dialects::csl_stencil;
namespace cw = dialects::csl_wrapper;
namespace fn = dialects::func;
namespace ar = dialects::arith;

} // namespace

std::unique_ptr<ir::Pass>
createCslWrapperHoistPass()
{
    return std::make_unique<ir::FunctionPass>(
        "wrap-in-csl-wrapper", [](ir::Operation *module) {
            ir::Context &ctx = module->context();
            ir::Operation *kernel = findOp(module, fn::kFunc);
            WSC_ASSERT(kernel, "no kernel function to wrap");

            // Program-wide parameters from the csl_stencil ops.
            int64_t width = 1;
            int64_t height = 1;
            int64_t zDim = 1;
            int64_t numChunks = 1;
            int64_t pattern = 1;
            for (ir::Operation *apply : collectOps(module, cs::kApply)) {
                std::vector<int64_t> topo =
                    ir::intArrayAttrValue(apply->attr(ir::attrs::kTopology));
                width = std::max(width, topo[0]);
                height = std::max(height, topo[1]);
                zDim = std::max(zDim, apply->intAttr(ir::attrs::kZDim));
                numChunks =
                    std::max(numChunks, apply->intAttr(ir::attrs::kNumChunks));
                for (const auto &e : cs::applyExchanges(apply))
                    pattern = std::max(
                        {pattern, std::abs(e.dx), std::abs(e.dy)});
            }

            std::vector<cw::Param> params = {
                {"z_dim", zDim},
                {"num_chunks", numChunks},
                {"pattern", pattern},
            };

            ir::OpBuilder b(ctx);
            b.setInsertionPointToStart(
                dialects::builtin::moduleBody(module));
            ir::Operation *wrapper =
                cw::createModule(b, width, height, params, "pe.csl");

            // Layout region: imports parameterized by the fabric extent
            // and the communication pattern (the metaprogram that CSL's
            // staged compilation executes).
            ir::Block *layout = cw::layoutBlock(wrapper);
            ir::OpBuilder lb(ctx);
            lb.setInsertionPointToEnd(layout);
            ir::Value patternConst = ar::createConstantI16(lb, pattern);
            ir::Value chunksConst = ar::createConstantI16(lb, numChunks);
            cw::createImport(lb, "<memcpy/get_params>",
                             {{"width", layout->argument(2)},
                              {"height", layout->argument(3)}});
            cw::createImport(lb, "routes.csl",
                             {{"pattern", patternConst},
                              {"peWidth", layout->argument(2)},
                              {"peHeight", layout->argument(3)},
                              {"chunks", chunksConst}});
            cw::createYield(lb, {});

            // The kernel becomes the PE program.
            kernel->removeFromParent();
            cw::programBlock(wrapper)->push_back(kernel);
        });
}

} // namespace wsc::transforms
