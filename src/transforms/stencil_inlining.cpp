#include "transforms/stencil_inlining.h"

#include <algorithm>
#include <unordered_map>

#include "dialects/stencil.h"
#include "support/error.h"
#include "transforms/utils.h"

namespace wsc::transforms {

namespace {

namespace st = dialects::stencil;

/** Clones a stencil.apply body, inlining accesses to a producer apply. */
class InlineCloner
{
  public:
    InlineCloner(ir::OpBuilder &b, ir::Operation *producer,
                 ir::Operation *consumer,
                 const std::unordered_map<ir::ValueImpl *, ir::Value> &argMapping)
        : b_(b), producer_(producer), consumer_(consumer),
          argMapping_(argMapping)
    {
    }

    /**
     * Clone the consumer body into the builder's block; producer-result
     * accesses are expanded into shifted clones of the producer body.
     */
    std::vector<ir::Value>
    run()
    {
        std::unordered_map<ir::ValueImpl *, ir::Value> mapping = argMapping_;
        ir::Block *body = st::applyBody(consumer_);
        std::vector<ir::Operation *> ops = body->opsVector();
        for (size_t i = 0; i + 1 < ops.size(); ++i)
            cloneConsumerOp(ops[i], mapping);
        std::vector<ir::Value> results;
        for (ir::Value v : ops.back()->operands())
            results.push_back(mapValue(mapping, v));
        return results;
    }

  private:
    /** Is `v` the consumer block argument bound to a producer result? */
    int
    producerResultIndex(ir::Value v)
    {
        if (!v.isBlockArgument() ||
            v.ownerBlock() != st::applyBody(consumer_))
            return -1;
        ir::Value operand = consumer_->operand(v.index());
        if (!operand.definingOp() || operand.definingOp() != producer_)
            return -1;
        return static_cast<int>(operand.index());
    }

    void
    cloneConsumerOp(ir::Operation *op,
                    std::unordered_map<ir::ValueImpl *, ir::Value> &mapping)
    {
        if (op->opId() == st::kAccess) {
            int resultIdx = producerResultIndex(op->operand(0));
            if (resultIdx >= 0) {
                std::vector<int64_t> shift = st::accessOffset(op);
                mapping[op->result().impl()] =
                    inlineProducer(resultIdx, shift, mapping);
                return;
            }
        }
        cloneOp(b_, op, mapping);
    }

    /**
     * Inline the producer body shifted by `shift`, returning the value of
     * its `resultIdx`-th returned result.
     */
    ir::Value
    inlineProducer(int resultIdx, const std::vector<int64_t> &shift,
                   const std::unordered_map<ir::ValueImpl *, ir::Value> &outerMapping)
    {
        // Map producer block args to the values visible in the new body:
        // the producer's operands, mapped through the consumer arg map.
        std::unordered_map<ir::ValueImpl *, ir::Value> mapping;
        ir::Block *pBody = st::applyBody(producer_);
        for (unsigned i = 0; i < producer_->numOperands(); ++i)
            mapping[pBody->argument(i).impl()] =
                mapValue(outerMapping, producer_->operand(i));

        std::vector<ir::Operation *> ops = pBody->opsVector();
        for (size_t i = 0; i + 1 < ops.size(); ++i) {
            ir::Operation *op = ops[i];
            if (op->opId() == st::kAccess) {
                // Compose offsets: producer access shifted by the
                // consumer access offset.
                std::vector<int64_t> offset = st::accessOffset(op);
                WSC_ASSERT(offset.size() == shift.size(),
                           "access rank mismatch during inlining");
                for (size_t d = 0; d < offset.size(); ++d)
                    offset[d] += shift[d];
                ir::Value source = mapValue(mapping, op->operand(0));
                mapping[op->result().impl()] =
                    st::createAccess(b_, source, offset);
                continue;
            }
            cloneOp(b_, op, mapping);
        }
        ir::Operation *ret = ops.back();
        WSC_ASSERT(ret->opId() == st::kReturn,
                   "apply body must end in stencil.return");
        return mapValue(mapping, ret->operand(resultIdx));
    }

    ir::OpBuilder &b_;
    ir::Operation *producer_;
    ir::Operation *consumer_;
    std::unordered_map<ir::ValueImpl *, ir::Value> argMapping_;
};

/** Find a (producer, consumer) pair eligible for inlining. */
std::pair<ir::Operation *, ir::Operation *>
findInliningCandidate(ir::Operation *module)
{
    for (ir::Operation *producer : collectOps(module, st::kApply)) {
        // Every result use must be the same later apply in the same block.
        ir::Operation *consumer = nullptr;
        bool eligible = true;
        bool hasUse = false;
        for (ir::Value r : producer->results()) {
            for (ir::Operation *user : r.users()) {
                hasUse = true;
                if (user->opId() != st::kApply ||
                    user->parentBlock() != producer->parentBlock() ||
                    (consumer && user != consumer)) {
                    eligible = false;
                    break;
                }
                consumer = user;
            }
            if (!eligible)
                break;
        }
        if (eligible && hasUse && consumer)
            return {producer, consumer};
    }
    return {nullptr, nullptr};
}

/** Perform one producer-into-consumer inlining step. */
void
inlineOnce(ir::Operation *producer, ir::Operation *consumer)
{
    ir::OpBuilder b(producer->context());

    // New operand list: consumer operands that aren't producer results,
    // then producer operands not already present.
    std::vector<ir::Value> newOperands;
    std::unordered_map<ir::ValueImpl *, ir::Value> argMapping; // old arg -> new arg
    auto addOperand = [&](ir::Value v) -> int {
        for (size_t i = 0; i < newOperands.size(); ++i)
            if (newOperands[i] == v)
                return static_cast<int>(i);
        newOperands.push_back(v);
        return static_cast<int>(newOperands.size() - 1);
    };
    for (unsigned i = 0; i < consumer->numOperands(); ++i) {
        ir::Value v = consumer->operand(i);
        if (v.definingOp() == producer)
            continue;
        addOperand(v);
    }
    for (unsigned i = 0; i < producer->numOperands(); ++i)
        addOperand(producer->operand(i));

    std::vector<ir::Type> resultTypes;
    for (ir::Value r : consumer->results())
        resultTypes.push_back(r.type());

    b.setInsertionPoint(consumer);
    ir::Operation *fused = st::createApply(b, newOperands, resultTypes);

    // Bind old consumer args (for non-producer operands) to new args.
    ir::Block *newBody = st::applyBody(fused);
    ir::Block *oldBody = st::applyBody(consumer);
    for (unsigned i = 0; i < consumer->numOperands(); ++i) {
        ir::Value v = consumer->operand(i);
        if (v.definingOp() == producer)
            continue;
        int idx = addOperand(v);
        argMapping[oldBody->argument(i).impl()] =
            newBody->argument(static_cast<unsigned>(idx));
    }
    // Bind producer block args indirectly: the cloner maps producer
    // operands through this map, so bind operand values to new args.
    std::unordered_map<ir::ValueImpl *, ir::Value> operandToArg;
    for (size_t i = 0; i < newOperands.size(); ++i)
        operandToArg[newOperands[i].impl()] =
            newBody->argument(static_cast<unsigned>(i));
    for (const auto &[key, value] : operandToArg)
        argMapping.emplace(key, value);

    ir::OpBuilder bodyBuilder(producer->context());
    bodyBuilder.setInsertionPointToEnd(newBody);
    InlineCloner cloner(bodyBuilder, producer, consumer, argMapping);
    std::vector<ir::Value> results = cloner.run();
    st::createReturn(bodyBuilder, results);

    ir::replaceOp(consumer, fused->results());
    ir::eraseOp(producer);
}

} // namespace

std::unique_ptr<ir::Pass>
createStencilInliningPass()
{
    return std::make_unique<ir::FunctionPass>(
        "stencil-inlining", [](ir::Operation *module) {
            while (true) {
                auto [producer, consumer] = findInliningCandidate(module);
                if (!producer)
                    return;
                inlineOnce(producer, consumer);
            }
        });
}

} // namespace wsc::transforms
