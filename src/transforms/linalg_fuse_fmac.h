/**
 * @file
 * linalg-fuse-multiply-add (paper §5.7): identifies multiplication and
 * addition pairs that can be combined into CSL's @fmacs fused
 * multiply-accumulate. Due to the prevalence of multiply-then-add in
 * stencils this converts most of the compute to fmac form, which both
 * halves the DSD operation count and removes intermediate buffers.
 */

#ifndef WSC_TRANSFORMS_LINALG_FUSE_FMAC_H
#define WSC_TRANSFORMS_LINALG_FUSE_FMAC_H

#include <memory>

#include "ir/pass.h"

namespace wsc::transforms {

std::unique_ptr<ir::Pass> createLinalgFuseFmacPass();

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_LINALG_FUSE_FMAC_H
