/**
 * @file
 * arith-to-linalg (paper §5.3): converts value-form arithmetic (arith,
 * varith) over memref-typed data into Destination-Passing-Style linalg
 * ops, reusing buffers to make best use of the limited PE memory:
 *  - a varith.add feeding a buffer accumulates term-by-term into the
 *    destination (linalg.add / linalg.fmac for `access * coefficient`
 *    terms), relying on the accumulator being zero-initialized;
 *  - remaining arith ops reuse a single-use operand buffer in place,
 *    exactly as in the paper's Listing 5;
 *  - the done-exchange region's final value is retargeted to a dedicated
 *    result buffer so that it survives the next timestep's accumulator
 *    reset.
 */

#ifndef WSC_TRANSFORMS_ARITH_TO_LINALG_H
#define WSC_TRANSFORMS_ARITH_TO_LINALG_H

#include <memory>

#include "ir/pass.h"

namespace wsc::transforms {

std::unique_ptr<ir::Pass> createArithToLinalgPass();

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_ARITH_TO_LINALG_H
