#include "transforms/linalg_to_csl.h"

#include <set>

#include "dialects/arith.h"
#include "dialects/csl.h"
#include "dialects/csl_stencil.h"
#include "dialects/linalg.h"
#include "dialects/memref.h"
#include "ir/diagnostics.h"
#include "support/error.h"
#include "transforms/memref_to_dsd.h"
#include "transforms/utils.h"

namespace wsc::transforms {

namespace {

namespace csl = dialects::csl;
namespace cs = dialects::csl_stencil;
namespace ln = dialects::linalg;
namespace ar = dialects::arith;

/** Operand for a builtin: DSD value or scalar f32 value. */
ir::Value
lowerOperand(ir::OpBuilder &b, ir::Value v)
{
    ir::Operation *def = v.definingOp();
    if (def && def->opId() == ar::kConstant) {
        ir::Attribute attr = def->attr(ir::attrs::kValue);
        if (ir::isDenseAttr(attr) &&
            ir::denseAttrValues(attr).size() == 1)
            return ar::createConstantF32(b, ir::denseAttrValues(attr)[0]);
        if (ir::isFloatAttr(attr))
            return v;
    }
    if (ir::isFloat(v.type()))
        return v;
    return materializeDsd(b, v);
}

/**
 * Detect a run of accumulating adds covering every receive-buffer
 * section in order: add(dest, section0) -> dest; add(dest, section1) ->
 * dest; ... with dest a subview of the accumulator. Returns the ops of
 * the run (empty when the pattern does not apply).
 */
std::vector<ir::Operation *>
matchOneShotRun(ir::Block *block)
{
    std::vector<ir::Operation *> run;
    int64_t expectedSection = 0;
    ir::Value dest;
    int64_t sections = -1;
    for (ir::Operation *op : block->opsVector()) {
        if (op->opId() != ln::kAdd)
            continue;
        ir::Value out = op->operand(2);
        if (op->operand(0) != out)
            return {};
        ir::Operation *accessOp = op->operand(1).definingOp();
        if (!accessOp || accessOp->opId() != cs::kAccess ||
            !accessOp->hasAttr(ir::attrs::kSection))
            return {};
        if (run.empty()) {
            dest = out;
            // Section count from the receive buffer shape.
            ir::Value buf = accessOp->operand(0);
            sections = ir::shapeOf(buf.type())[0];
        } else if (out != dest) {
            return {};
        }
        if (accessOp->intAttr(ir::attrs::kSection) != expectedSection)
            return {};
        expectedSection++;
        run.push_back(op);
    }
    if (run.empty() ||
        expectedSection != sections)
        return {};
    return run;
}

/** Lower the receive-chunk run as one wrapped-broadcast fadds. */
void
lowerOneShot(const std::vector<ir::Operation *> &run)
{
    ir::Operation *first = run.front();
    ir::OpBuilder b(first->context());
    b.setInsertionPoint(first);
    ir::Value dest = first->operand(2);
    ir::Operation *accessOp = first->operand(1).definingOp();
    ir::Value recvBuf = accessOp->operand(0);
    const std::vector<int64_t> &shape = ir::shapeOf(recvBuf.type());
    int64_t sections = shape[0];
    int64_t chunkLen = shape[1];

    // acc[offset + (i % C)] += recv[i] for i in [0, S*C).
    ir::Value accDsd =
        materializeDsd(b, dest, sections * chunkLen, chunkLen);
    ir::Value recvDsd = materializeDsd(b, recvBuf, sections * chunkLen);
    csl::createBuiltin(b, csl::kFadds, {accDsd, accDsd, recvDsd});
    for (ir::Operation *op : run)
        op->erase();
}

void
lowerLinalgOp(ir::Operation *op)
{
    ir::OpBuilder b(op->context());
    b.setInsertionPoint(op);
    ir::OpId n = op->opId();
    if (n == ln::kFill) {
        ir::Value dest = materializeDsd(b, op->operand(1));
        ir::Value scalar = lowerOperand(b, op->operand(0));
        csl::createBuiltin(b, csl::kFmovs, {dest, scalar});
    } else if (n == ln::kCopy) {
        ir::Value dest = materializeDsd(b, op->operand(1));
        ir::Value src = lowerOperand(b, op->operand(0));
        csl::createBuiltin(b, csl::kFmovs, {dest, src});
    } else if (n == ln::kFmac) {
        // linalg.fmac(addend, mulend, scalar) -> out becomes
        // @fmacs(out, addend, mulend, scalar).
        ir::Value dest = materializeDsd(b, op->operand(3));
        ir::Value addend = lowerOperand(b, op->operand(0));
        ir::Value mulend = lowerOperand(b, op->operand(1));
        ir::Value scalar = lowerOperand(b, op->operand(2));
        csl::createBuiltin(b, csl::kFmacs,
                           {dest, addend, mulend, scalar});
    } else {
        ir::OpId builtin = n == ln::kAdd   ? csl::kFadds
                           : n == ln::kSub ? csl::kFsubs
                           : n == ln::kMul ? csl::kFmuls
                                           : ir::OpId();
        if (!builtin.valid())
            ir::emitFatal(op, "no CSL DSD builtin for this linalg op");
        ir::Value dest = materializeDsd(b, op->operand(2));
        ir::Value a = lowerOperand(b, op->operand(0));
        ir::Value c = lowerOperand(b, op->operand(1));
        csl::createBuiltin(b, builtin, {dest, a, c});
    }
    op->erase();
}

} // namespace

std::unique_ptr<ir::Pass>
createLinalgToCslPass(LinalgToCslOptions options)
{
    return std::make_unique<ir::FunctionPass>(
        "lower-linalg-to-csl", [options](ir::Operation *module) {
            // One-shot reductions in receive-chunk tasks first.
            if (!options.disableOneShotReduction) {
                for (ir::Operation *task :
                     collectOps(module, csl::kTask)) {
                    ir::Block *body = csl::calleeBody(task);
                    std::vector<ir::Operation *> run =
                        matchOneShotRun(body);
                    if (!run.empty())
                        lowerOneShot(run);
                }
            }
            // Remaining linalg ops lower individually.
            std::vector<ir::Operation *> worklist;
            module->walk([&](ir::Operation *op) {
                if (ln::isLinalgOp(op))
                    worklist.push_back(op);
            });
            for (ir::Operation *op : worklist)
                lowerLinalgOp(op);
            // The comms entry point takes a DSD of the send column.
            for (ir::Operation *comms :
                 collectOps(module, csl::kCommsExchange)) {
                if (csl::isDsdType(comms->operand(0).type()))
                    continue;
                ir::OpBuilder b(comms->context());
                b.setInsertionPoint(comms);
                comms->setOperand(0,
                                  materializeDsd(b, comms->operand(0)));
            }
        });
}

} // namespace wsc::transforms
