/**
 * @file
 * csl-stencil-bufferize (paper §5.3): converts the value-semantics tensor
 * IR inside csl_stencil.apply regions into reference semantics, mapping
 * tensors to memrefs. CSL's mathematical operations follow
 * Destination-Passing Style, operating on physical memory passed as
 * operands; this pass establishes the memory view:
 *  - the accumulator init (tensor.empty) becomes a memref.alloc;
 *  - region block arguments and body values are retyped to memrefs;
 *  - tensor.insert_slice of the chunk sum becomes a memref.subview of
 *    the accumulator that subsequent DPS ops write into.
 */

#ifndef WSC_TRANSFORMS_BUFFERIZE_H
#define WSC_TRANSFORMS_BUFFERIZE_H

#include <memory>

#include "ir/pass.h"

namespace wsc::transforms {

std::unique_ptr<ir::Pass> createBufferizePass();

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_BUFFERIZE_H
